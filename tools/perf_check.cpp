// perf_check — perf-regression gate over BenchReport JSON records.
//
//   perf_check --baseline results/bench_serve_baseline.json
//              --fresh results/bench_serve.json [--max-regress 1.5]
//
// Compares every metric the two records share. Direction comes from the
// metric-name suffix (the BenchReport naming contract):
//   *_rps, *_mbps        higher is better  (ratio = baseline / fresh)
//   *_us, *_ms, *_ns     lower is better   (ratio = fresh / baseline)
//   anything else        informational only, never gates
// A metric regresses when its ratio exceeds --max-regress (default 1.5;
// generous because bench machines and CI runners are noisy — this gate
// catches order-of-magnitude mistakes, not 5% drift).
//
// A *gated* metric (one whose suffix gives it a direction) that exists
// in the baseline but not in the fresh record is itself a failure: a
// renamed or deleted bench row silently un-gates the very number the
// baseline was committed to protect. Informational metrics may come and
// go freely.
//
// Prints a comparison table plus the provenance of both records (git
// rev, worker threads, bench config) so a failure report is
// self-contained. Exit codes: 0 all gated metrics within threshold,
// 1 at least one regression, 2 I/O or parse trouble (missing file,
// malformed JSON, records from different benches), 3 a gated baseline
// metric is missing from the fresh record.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "serve/json.hpp"

namespace {

using namespace perspector;

struct Record {
  std::string path;
  std::string bench;
  std::string git_rev;
  std::string threads;
  std::string instructions;
  serve::json::Value root;
};

[[noreturn]] void die(const std::string& message) {
  std::cerr << "perf_check: " << message << "\n";
  std::exit(2);
}

std::string string_or(const serve::json::Value* value,
                      const std::string& fallback) {
  return value && value->is_string() ? value->string : fallback;
}

std::string number_as_string(const serve::json::Value* value) {
  if (!value || !value->is_number()) return "?";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", value->number);
  return buf;
}

Record load_record(const std::string& path) {
  std::ifstream in(path);
  if (!in) die("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();

  Record record;
  record.path = path;
  try {
    record.root = serve::json::parse(buffer.str());
  } catch (const std::exception& e) {
    die("malformed JSON in '" + path + "': " + e.what());
  }
  if (!record.root.is_object() || !record.root.find("metrics")) {
    die("'" + path + "' is not a BenchReport record (no \"metrics\" object)");
  }
  record.bench = string_or(record.root.find("bench"), "?");
  record.git_rev = string_or(record.root.find("git_rev"), "?");
  if (const auto* machine = record.root.find("machine")) {
    record.threads = number_as_string(machine->find("threads"));
  }
  if (const auto* config = record.root.find("config")) {
    record.instructions = number_as_string(config->find("instructions"));
  }
  return record;
}

bool ends_with(const std::string& name, const std::string& suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

enum class Direction { HigherBetter, LowerBetter, Info };

Direction direction_of(const std::string& name) {
  if (ends_with(name, "_rps") || ends_with(name, "_mbps") || name == "rps") {
    return Direction::HigherBetter;
  }
  if (ends_with(name, "_us") || ends_with(name, "_ms") ||
      ends_with(name, "_ns")) {
    return Direction::LowerBetter;
  }
  return Direction::Info;
}

std::string format_value(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string fresh_path;
  double max_regress = 1.5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--fresh" && i + 1 < argc) {
      fresh_path = argv[++i];
    } else if (arg == "--max-regress" && i + 1 < argc) {
      max_regress = std::strtod(argv[++i], nullptr);
    } else {
      std::cerr << "usage: perf_check --baseline <record.json> "
                   "--fresh <record.json> [--max-regress <factor>]\n";
      return 2;
    }
  }
  if (baseline_path.empty() || fresh_path.empty()) {
    std::cerr << "perf_check: --baseline and --fresh are both required\n";
    return 2;
  }
  if (!(max_regress > 1.0)) {
    std::cerr << "perf_check: --max-regress must be > 1.0\n";
    return 2;
  }

  const Record baseline = load_record(baseline_path);
  const Record fresh = load_record(fresh_path);
  if (baseline.bench != fresh.bench) {
    die("records are from different benches: '" + baseline.bench + "' vs '" +
        fresh.bench + "'");
  }

  std::cout << "perf_check: bench " << fresh.bench << ", threshold "
            << format_value(max_regress) << "x\n"
            << "  baseline: " << baseline.path << " (rev " << baseline.git_rev
            << ", threads " << baseline.threads << ", instructions "
            << baseline.instructions << ")\n"
            << "  fresh:    " << fresh.path << " (rev " << fresh.git_rev
            << ", threads " << fresh.threads << ", instructions "
            << fresh.instructions << ")\n\n";
  if (baseline.threads != fresh.threads ||
      baseline.instructions != fresh.instructions) {
    std::cout << "note: records were produced with different thread counts "
                 "or bench configs; ratios may not be meaningful\n\n";
  }

  const auto* baseline_metrics = baseline.root.find("metrics");
  const auto* fresh_metrics = fresh.root.find("metrics");
  core::Table table({"metric", "baseline", "fresh", "ratio", "status"});
  std::vector<std::string> regressions;
  std::vector<std::string> missing_gated;
  for (const auto& [name, base_value] : baseline_metrics->members) {
    if (!base_value.is_number()) continue;
    const auto* fresh_value = fresh_metrics->find(name);
    const Direction direction = direction_of(name);
    if (!fresh_value || !fresh_value->is_number()) {
      const bool gated = direction != Direction::Info;
      table.add_row({name, format_value(base_value.number), "-", "-",
                     gated ? "MISSING FROM FRESH" : "missing in fresh"});
      if (gated) missing_gated.push_back(name);
      continue;
    }
    if (direction == Direction::Info) {
      table.add_row({name, format_value(base_value.number),
                     format_value(fresh_value->number), "-", "info"});
      continue;
    }
    if (!(base_value.number > 0.0) || !(fresh_value->number > 0.0)) {
      table.add_row({name, format_value(base_value.number),
                     format_value(fresh_value->number), "-",
                     "skipped (non-positive)"});
      continue;
    }
    // ratio > 1 always means "fresh is worse", whichever the direction.
    const double ratio = direction == Direction::HigherBetter
                             ? base_value.number / fresh_value->number
                             : fresh_value->number / base_value.number;
    const bool regressed = ratio > max_regress;
    table.add_row({name, format_value(base_value.number),
                   format_value(fresh_value->number), format_value(ratio),
                   regressed ? "REGRESSED" : "ok"});
    if (regressed) regressions.push_back(name);
  }
  for (const auto& [name, value] : fresh_metrics->members) {
    if (value.is_number() && !baseline_metrics->find(name)) {
      table.add_row(
          {name, "-", format_value(value.number), "-", "new in fresh"});
    }
  }

  std::cout << table.to_text();
  if (!missing_gated.empty()) {
    // Reported ahead of regressions: a vanished gate is worse than a
    // tripped one, because nothing else will ever trip it again.
    std::cout << "\n" << missing_gated.size()
              << " gated metric(s) missing from fresh:";
    for (const auto& name : missing_gated) std::cout << " " << name;
    std::cout << "\n(a renamed or deleted bench row un-gates its baseline;"
                 " refresh the baseline deliberately instead)\n";
    return 3;
  }
  if (!regressions.empty()) {
    std::cout << "\n" << regressions.size() << " metric(s) regressed beyond "
              << format_value(max_regress) << "x:";
    for (const auto& name : regressions) std::cout << " " << name;
    std::cout << "\n";
    return 1;
  }
  std::cout << "\nno regressions beyond " << format_value(max_regress)
            << "x\n";
  return 0;
}
