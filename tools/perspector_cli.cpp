// perspector — command-line front end.
//
//   perspector suites
//       List the built-in suite models.
//   perspector demo [--suite <name>] [--instructions N]
//       Simulate a built-in suite and print the full report.
//   perspector score --csv <aggregates.csv> [--series <series.csv>]
//       Score one suite from CSV counter data (see core/io.hpp formats).
//   perspector compare --csv <a.csv> --csv <b.csv> ... [--events all|llc|tlb|branch]
//       Score several suites together (joint normalization) and rank them.
//   perspector subset --csv <file.csv> --size K [--method lhs|random|prior]
//       Select a representative subset and report the score deviation.
//
// Observability (any command): --trace <file.json> writes a Chrome
// trace-event JSON of the run and prints a per-phase timing table;
// --metrics prints the obs counter/distribution tables.
//
// Exit codes: 0 success, 1 usage error, 2 runtime failure.
#include <algorithm>
#include <cctype>
#include <cstring>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/counter_matrix.hpp"
#include "core/event_group.hpp"
#include "core/io.hpp"
#include "core/perspector.hpp"
#include "core/ranking.hpp"
#include "core/report.hpp"
#include "core/subset.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/thread_pool.hpp"
#include "suites/suite_factory.hpp"

namespace {

using namespace perspector;

/// Bad command-line input: reported as a usage message with exit code 1,
/// unlike runtime failures (exit 2).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;  // --key value

  std::optional<std::string> get(const std::string& key) const {
    for (const auto& [k, v] : options) {
      if (k == key) return v;
    }
    return std::nullopt;
  }
  bool has(const std::string& key) const { return get(key).has_value(); }
  std::vector<std::string> get_all(const std::string& key) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : options) {
      if (k == key) out.push_back(v);
    }
    return out;
  }
};

// Flags that take no value; everything else is --key <value>.
const std::set<std::string>& boolean_flags() {
  static const std::set<std::string> flags = {"metrics"};
  return flags;
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (boolean_flags().count(key)) {
        args.options.emplace_back(key, "1");
        continue;
      }
      if (i + 1 >= argc) {
        throw UsageError("option '" + token + "' needs a value");
      }
      args.options.emplace_back(key, argv[++i]);
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

/// Strict non-negative integer parse for --size/--instructions/--seed:
/// rejects signs, whitespace, and trailing junk (std::stoull would accept
/// "-1" by wrapping, and "12abc" by truncating).
std::uint64_t parse_u64(const std::string& text, const std::string& flag) {
  if (text.empty() ||
      !std::all_of(text.begin(), text.end(),
                   [](unsigned char ch) { return std::isdigit(ch); })) {
    throw UsageError("option '--" + flag +
                     "' expects a non-negative integer, got '" + text + "'");
  }
  try {
    return std::stoull(text);
  } catch (const std::out_of_range&) {
    throw UsageError("option '--" + flag + "' value '" + text +
                     "' is out of range");
  }
}

int usage() {
  std::cerr <<
      "usage: perspector <command> [options]\n"
      "  suites                                   list built-in suite models\n"
      "  demo    [--suite <name>] [--instructions N]\n"
      "  score   --csv <agg.csv> [--series <ser.csv>] [--events all|llc|tlb|branch]\n"
      "  compare --csv <a.csv> --csv <b.csv> ... [--events all|llc|tlb|branch]\n"
      "  subset  --csv <agg.csv> --size K [--method lhs|random|prior] [--seed S]\n"
      "observability (any command):\n"
      "  --trace <file.json>   write Chrome trace JSON + per-phase timing table\n"
      "  --metrics             print pipeline counters/distributions\n"
      "parallelism (any command):\n"
      "  --threads N           worker threads (default: hardware concurrency,\n"
      "                        or PERSPECTOR_THREADS; 1 = fully serial).\n"
      "                        Output is bit-identical for every N.\n";
  return 1;
}

sim::SuiteSpec builtin_suite(const std::string& name,
                             const suites::SuiteBuildOptions& build) {
  if (name == "parsec") return suites::parsec(build);
  if (name == "spec17") return suites::spec17(build);
  if (name == "ligra") return suites::ligra(build);
  if (name == "lmbench") return suites::lmbench(build);
  if (name == "nbench") return suites::nbench(build);
  if (name == "sgxgauge") return suites::sgxgauge(build);
  if (name == "riotbench") return suites::riotbench(build);
  if (name == "sebs") return suites::sebs(build);
  if (name == "comb") return suites::comb(build);
  if (name == "splash2") return suites::splash2(build);
  throw std::runtime_error("unknown built-in suite '" + name +
                           "' (try: perspector suites)");
}

int cmd_suites() {
  std::cout << "built-in suite models:\n"
            << "  parsec     13 multi-phase parallel applications\n"
            << "  spec17     43 CPU/memory workloads (rate + speed)\n"
            << "  ligra      12 graph algorithms on a shared framework\n"
            << "  lmbench    14 OS/memory micro-probes\n"
            << "  nbench     10 steady-state CPU kernels\n"
            << "  sgxgauge   10 real-world applications\n"
            << "  riotbench   8 IoT stream-processing operators\n"
            << "  sebs        8 serverless functions (cold starts)\n"
            << "  comb        6 edge media/inference pipelines\n"
            << "  splash2    12 1995-era HPC kernels (PARSEC's predecessor)\n";
  return 0;
}

int cmd_demo(const Args& args) {
  suites::SuiteBuildOptions build;
  build.instructions_per_workload = 500'000;
  if (const auto n = args.get("instructions")) {
    build.instructions_per_workload = parse_u64(*n, "instructions");
  }
  const std::string name = args.get("suite").value_or("nbench");
  const auto spec = builtin_suite(name, build);

  sim::SimOptions sim_options;
  sim_options.sample_interval =
      std::max<std::uint64_t>(build.instructions_per_workload / 100, 1);
  std::cerr << "simulating " << spec.name << " ("
            << spec.workloads.size() << " workloads, "
            << build.instructions_per_workload << " instructions each)...\n";
  const auto data = core::collect_counters(
      spec, sim::MachineConfig::xeon_e2186g(), sim_options);
  const auto scores = core::Perspector().score_suite(data);
  std::cout << core::suite_report(data, scores);
  return 0;
}

core::CounterMatrix load_csv(const Args& args, const std::string& csv) {
  if (const auto series = args.get("series")) {
    return core::read_with_series_csv(csv, csv, *series);
  }
  return core::read_aggregates_csv(csv, csv);
}

core::EventGroup event_group(const std::string& name) {
  if (name == "all") return core::EventGroup::all();
  if (name == "llc") return core::EventGroup::llc();
  if (name == "tlb") return core::EventGroup::tlb();
  if (name == "branch") return core::EventGroup::branch();
  throw UsageError("unknown event group '" + name + "'");
}

int cmd_score(const Args& args) {
  const auto csv = args.get("csv");
  if (!csv) return usage();
  // Focused scoring works the same as in `compare`: restrict every metric
  // to the selected event group before scoring. Parsed before any I/O so
  // flag mistakes fail fast as usage errors.
  core::PerspectorOptions options;
  options.events = event_group(args.get("events").value_or("all"));
  const auto data = load_csv(args, *csv);
  const auto scores = core::Perspector(options).score_suite(data);
  std::cout << core::suite_report(data, scores);
  return 0;
}

int cmd_compare(const Args& args) {
  const auto csvs = args.get_all("csv");
  if (csvs.size() < 2) {
    std::cerr << "compare needs at least two --csv files\n";
    return 1;
  }
  std::vector<core::CounterMatrix> data;
  for (const auto& csv : csvs) {
    data.push_back(core::read_aggregates_csv(csv, csv));
  }
  core::PerspectorOptions options;
  options.events = event_group(args.get("events").value_or("all"));
  const auto scores = core::Perspector(options).score_suites(data);
  std::cout << core::scores_table(scores).to_text() << core::score_legend()
            << "\n\n";

  const auto ranked = core::rank_suites(scores);
  core::Table table({"rank", "suite", "grade"});
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    table.add_row({std::to_string(i + 1), ranked[i].suite,
                   core::format_double(ranked[i].grade, 3)});
  }
  std::cout << table.to_text();
  return 0;
}

int cmd_subset(const Args& args) {
  const auto csv = args.get("csv");
  if (!csv) return usage();

  core::SubsetOptions options;
  options.target_size = parse_u64(args.get("size").value_or("8"), "size");
  if (const auto seed = args.get("seed")) {
    options.seed = parse_u64(*seed, "seed");
  }
  const std::string method = args.get("method").value_or("lhs");
  if (method == "lhs") {
    options.method = core::SubsetMethod::Lhs;
  } else if (method == "random") {
    options.method = core::SubsetMethod::Random;
  } else if (method == "prior") {
    options.method = core::SubsetMethod::HierarchicalPrior;
  } else {
    throw UsageError("unknown subset method '" + method + "'");
  }
  const auto data = load_csv(args, *csv);

  core::PerspectorOptions scoring;
  scoring.compute_trend = data.has_series();
  const auto result = core::generate_subset(data, options, scoring);
  std::cout << "selected " << result.names.size() << " of "
            << data.num_workloads() << " workloads ("
            << core::to_string(options.method) << "):\n";
  for (const auto& name : result.names) std::cout << "  " << name << "\n";
  std::cout << "mean score deviation vs full suite: "
            << core::format_double(result.mean_deviation_pct, 2) << "%\n";
  return 0;
}

// After a successful command: per-phase timings (either flag), the trace
// file (--trace), and the metrics tables (--metrics).
void emit_observability(const Args& args) {
  const auto trace_path = args.get("trace");
  const bool metrics = args.has("metrics");
  if (!trace_path && !metrics) return;

  const auto& tracer = obs::Tracer::instance();
  const auto summary = tracer.phase_summary();
  if (!summary.empty()) {
    std::cout << "\n--- per-phase timing (nested spans overlap) ---\n"
              << core::phase_timing_table(summary).to_text();
  }
  if (metrics) {
    std::cout << "\n--- pipeline metrics ---\n"
              << core::counters_table(obs::counters_snapshot()).to_text();
    const auto distributions = obs::distributions_snapshot();
    if (!distributions.empty()) {
      std::cout << "\n" << core::distributions_table(distributions).to_text();
    }
  }
  if (trace_path) {
    tracer.write_chrome_trace(*trace_path);
    std::cerr << "trace written to " << *trace_path
              << " (load in chrome://tracing or https://ui.perfetto.dev)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Args args = parse_args(argc, argv);
    if (args.has("trace") || args.has("metrics")) {
      obs::Tracer::instance().enable();
    }
    // --threads beats PERSPECTOR_THREADS beats hardware concurrency; the
    // strict parse keeps "--threads 1x" a usage error, and 0 is rejected
    // because "--threads 1" is the documented serial escape hatch.
    if (const auto threads = args.get("threads")) {
      const std::uint64_t n = parse_u64(*threads, "threads");
      if (n == 0) {
        throw UsageError("option '--threads' must be >= 1 (1 = serial)");
      }
      par::set_thread_count(static_cast<std::size_t>(n));
    }

    int rc;
    if (command == "suites") {
      rc = cmd_suites();
    } else if (command == "demo") {
      rc = cmd_demo(args);
    } else if (command == "score") {
      rc = cmd_score(args);
    } else if (command == "compare") {
      rc = cmd_compare(args);
    } else if (command == "subset") {
      rc = cmd_subset(args);
    } else {
      std::cerr << "unknown command '" << command << "'\n";
      return usage();
    }
    if (rc == 0) emit_observability(args);
    return rc;
  } catch (const UsageError& e) {
    std::cerr << "perspector: " << e.what() << "\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "perspector: " << e.what() << "\n";
    return 2;
  }
}
