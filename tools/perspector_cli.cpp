// perspector — command-line front end.
//
//   perspector suites
//       List the built-in suite models.
//   perspector demo [--suite <name>] [--instructions N]
//       Simulate a built-in suite and print the full report.
//   perspector score --csv <aggregates.csv> [--series <series.csv>]
//       Score one suite from CSV counter data (see core/io.hpp formats).
//   perspector compare --csv <a.csv> --csv <b.csv> ... [--events all|llc|tlb|branch]
//       Score several suites together (joint normalization) and rank them.
//   perspector subset --csv <file.csv> --size K [--method lhs|random|prior]
//       Select a representative subset and report the score deviation.
//   perspector serve [--port N | --stdio]
//       Run the resident scoring service (NDJSON protocol, see README).
//   perspector client --port N (--suite <name> | --csv <file>)
//       Scripted client for the scoring service.
//
// `perspector help` and `perspector <command> --help` print usage and
// exit 0; genuine usage errors print usage and exit 1.
//
// Observability (any command): --trace <file.json> writes a Chrome
// trace-event JSON of the run and prints a per-phase timing table;
// --metrics prints the obs counter/distribution tables.
//
// Exit codes: 0 success, 1 usage error, 2 runtime failure, 3 (client
// only) server answered at least one request with an error.
#include <sys/socket.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/counter_matrix.hpp"
#include "core/event_group.hpp"
#include "core/io.hpp"
#include "core/perspector.hpp"
#include "core/ranking.hpp"
#include "core/report.hpp"
#include "core/subset.hpp"
#include "jobs/job.hpp"
#include "jobs/search.hpp"
#include "obs/histogram.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/thread_pool.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"

namespace {

using namespace perspector;

/// Bad command-line input: reported as a usage message with exit code 1,
/// unlike runtime failures (exit 2).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;  // --key value

  std::optional<std::string> get(const std::string& key) const {
    for (const auto& [k, v] : options) {
      if (k == key) return v;
    }
    return std::nullopt;
  }
  bool has(const std::string& key) const { return get(key).has_value(); }
  std::vector<std::string> get_all(const std::string& key) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : options) {
      if (k == key) out.push_back(v);
    }
    return out;
  }
};

// Flags that take no value; everything else is --key <value>.
const std::set<std::string>& boolean_flags() {
  static const std::set<std::string> flags = {
      "metrics", "stdio", "ping", "stats", "shutdown", "verify",
      "no-io-thread", "submit", "follow", "job-list", "shard-stats"};
  return flags;
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (boolean_flags().count(key)) {
        args.options.emplace_back(key, "1");
        continue;
      }
      if (i + 1 >= argc) {
        throw UsageError("option '" + token + "' needs a value");
      }
      args.options.emplace_back(key, argv[++i]);
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

/// Strict non-negative integer parse for --size/--instructions/--seed:
/// rejects signs, whitespace, and trailing junk (std::stoull would accept
/// "-1" by wrapping, and "12abc" by truncating).
std::uint64_t parse_u64(const std::string& text, const std::string& flag) {
  if (text.empty() ||
      !std::all_of(text.begin(), text.end(),
                   [](unsigned char ch) { return std::isdigit(ch); })) {
    throw UsageError("option '--" + flag +
                     "' expects a non-negative integer, got '" + text + "'");
  }
  try {
    return std::stoull(text);
  } catch (const std::out_of_range&) {
    throw UsageError("option '--" + flag + "' value '" + text +
                     "' is out of range");
  }
}

const char* general_usage_text() {
  return
      "usage: perspector <command> [options]\n"
      "  suites                                   list built-in suite models\n"
      "  demo    [--suite <name>] [--instructions N]\n"
      "  score   --csv <agg.csv> [--series <ser.csv>] [--events all|llc|tlb|branch]\n"
      "  compare --csv <a.csv> --csv <b.csv> ... [--events all|llc|tlb|branch]\n"
      "  subset  --csv <agg.csv> --size K [--method lhs|random|prior] [--seed S]\n"
      "          [--search scored [--suite <name>] [--candidates N]]\n"
      "  ingest  --csv <agg.csv> [--chunk-kb N] [--no-io-thread] [--verify]\n"
      "  serve   [--port N | --stdio] [--workers N] [--cache-dir PATH] ...\n"
      "  client  --port N (--suite <name> | --csv <file> | --input <file>)\n"
      "          [--load-suite NAME | --add-workload NAME |\n"
      "           --drop-workload NAME --workload W | --append-samples NAME]\n"
      "          [--submit [--follow] | --watch JOB | --job-status JOB |\n"
      "           --job-cancel JOB | --job-list]\n"
      "          [--repeat K] ...\n"
      "  help    [<command>]                      this message, or per-command usage\n"
      "observability (any command):\n"
      "  --trace <file.json>   write Chrome trace JSON + per-phase timing table\n"
      "  --metrics             print pipeline counters/distributions/histograms\n"
      "  --metrics-json <path> write the full metrics snapshot as JSON (same\n"
      "                        object the serve 'metrics' op returns)\n"
      "  --log-level <level>   off|error|warn|info|debug structured NDJSON\n"
      "                        logging to stderr (default off; PERSPECTOR_LOG\n"
      "                        env sets the same)\n"
      "  --log-file <path>     append log lines to a file instead of stderr\n"
      "parallelism (any command):\n"
      "  --threads N           worker threads (default: hardware concurrency,\n"
      "                        or PERSPECTOR_THREADS; 1 = fully serial).\n"
      "                        Output is bit-identical for every N.\n";
}

/// Per-command usage text; empty for unknown commands.
std::string command_usage_text(const std::string& command) {
  if (command == "suites") {
    return "usage: perspector suites\n"
           "  List the built-in suite models available to demo/serve.\n";
  }
  if (command == "demo") {
    return "usage: perspector demo [--suite <name>] [--instructions N]\n"
           "  Simulate a built-in suite (default: nbench, 500000 instructions\n"
           "  per workload) and print its full scoring report.\n";
  }
  if (command == "score") {
    return "usage: perspector score --csv <agg.csv> [--series <ser.csv>]\n"
           "                        [--events all|llc|tlb|branch]\n"
           "  Score one suite from CSV counter data. The aggregate file is\n"
           "  'workload,<counter>,...'; the optional series file is the long\n"
           "  'workload,counter,sample,value' format (enables TrendScore).\n";
  }
  if (command == "compare") {
    return "usage: perspector compare --csv <a.csv> --csv <b.csv> ...\n"
           "                          [--events all|llc|tlb|branch]\n"
           "  Score several suites together (joint normalization) and rank\n"
           "  them by overall grade.\n";
  }
  if (command == "subset") {
    return "usage: perspector subset --csv <agg.csv> --size K\n"
           "                         [--method lhs|random|prior] [--seed S]\n"
           "       perspector subset --search scored --size K\n"
           "                         (--suite <name> [--instructions N]\n"
           "                          | --csv <agg.csv> [--series <ser.csv>])\n"
           "                         [--candidates N] [--seed S]\n"
           "                         [--events all|llc|tlb|branch]\n"
           "  Select a representative K-workload subset and report the mean\n"
           "  score deviation against the full suite.\n"
           "  --search scored runs the async-job candidate search (the same\n"
           "  code path 'serve' jobs execute) synchronously and prints the\n"
           "  reference result:\n"
           "      subset: <name> <name> ...\n"
           "      deviation_pct: <value>\n"
           "  byte-identical to what 'client --submit --follow' prints for\n"
           "  the same spec, so scripts can diff served against one-shot.\n"
           "  --candidates N   LHS candidates to evaluate (default 64)\n";
  }
  if (command == "ingest") {
    return "usage: perspector ingest --csv <agg.csv> [--chunk-kb N]\n"
           "                         [--no-io-thread] [--verify]\n"
           "  Parse an aggregates CSV through the streaming reader (chunked\n"
           "  IO-thread pipeline, zero per-field allocation) and print the\n"
           "  parsed shape and throughput.\n"
           "  --chunk-kb N     chunk size in KiB (default 1024)\n"
           "  --no-io-thread   read chunks inline instead of overlapping a\n"
           "                   dedicated IO thread with parsing\n"
           "  --verify         also parse via the slurp reader and confirm\n"
           "                   the two matrices are byte-identical\n";
  }
  if (command == "serve") {
    return "usage: perspector serve [--port N | --stdio] [--threads N]\n"
           "                        [--cache-mb N] [--max-queue N]\n"
           "                        [--max-batch N] [--deadline-ms N]\n"
           "                        [--workers N] [--cache-dir PATH]\n"
           "  Run the resident scoring service. Default transport is loopback\n"
           "  TCP (--port 0 picks a free port and prints it); --stdio speaks\n"
           "  the same newline-delimited-JSON protocol over stdin/stdout.\n"
           "  --cache-mb N      result-cache budget in MiB (default 64; 0 off)\n"
           "  --max-queue N     admission queue depth (default 64); overflow\n"
           "                    is answered with a structured 'overloaded' error\n"
           "  --max-batch N     max score requests per engine pass (default 16)\n"
           "  --deadline-ms N   default queue-wait deadline (default 0 = none)\n"
           "  --slow-ms N       warn-log requests slower than N ms (default 0\n"
           "                    = off; needs --log-level warn or higher)\n"
           "  --workers N       fork N single-threaded worker processes and\n"
           "                    shard requests across them by content digest\n"
           "                    (default 0 = score in-process); crashed\n"
           "                    workers are restarted, responses are\n"
           "                    byte-identical at any worker count\n"
           "  --cache-dir PATH  disk-backed result store (survives restarts;\n"
           "                    one live process per directory)\n"
           "  --store-mb N      on-disk budget for --cache-dir (default 256)\n"
           "  Async jobs (generate_submit/job_status/job_watch/job_cancel/\n"
           "  job_list ops; see README 'Async jobs'):\n"
           "  --jobs-dir PATH   per-job checkpoint logs; a restarted worker\n"
           "                    resumes its jobs from here (empty = jobs run\n"
           "                    without checkpoints and cannot resume)\n"
           "  --job-queue N     max active (queued+running) jobs before\n"
           "                    submits get a structured 'overloaded' error\n"
           "                    (default 256)\n"
           "  --jobs-per-client N  fair-share cap on active jobs per client\n"
           "                    bucket (default 64)\n"
           "  --checkpoint-every N  candidates between checkpoints (default\n"
           "                    16; 0 = checkpoint only at terminal states)\n"
           "  SIGTERM (or EOF in --stdio mode) drains admitted requests and\n"
           "  exits 0. Add --metrics to print the serve.* counters on exit.\n";
  }
  if (command == "client") {
    return "usage: perspector client --port N [--host H]\n"
           "                         (--suite <name> [--instructions N]\n"
           "                          | --csv <file> [--series <file>]\n"
           "                          | --input <file>)\n"
           "                         [--load-suite NAME | --add-workload NAME\n"
           "                          | --drop-workload NAME --workload W\n"
           "                          | --append-samples NAME]\n"
           "                         [--events all|llc|tlb|branch]\n"
           "                         [--repeat K] [--deadline-ms N]\n"
           "                         [--submit [--follow] [--size K]\n"
           "                          [--candidates N] [--seed S]\n"
           "                          [--client NAME]\n"
           "                          | --watch JOB | --job-status JOB\n"
           "                          | --job-cancel JOB | --job-list]\n"
           "                         [--watch-interval-ms N]\n"
           "                         [--ping] [--metrics] [--stats]\n"
           "                         [--shard-stats] [--shutdown]\n"
           "  Scripted client for 'perspector serve'. Pipelines K copies of\n"
           "  the score request (default 1), prints each report to stdout\n"
           "  (byte-identical to the one-shot command), and cache/error\n"
           "  status (with each response's trace id) to stderr.\n"
           "  --input <file> streams the CSV through the chunked ingest\n"
           "  reader and sends the parsed matrix as a lossless inline\n"
           "  request (large files never buffer twice as raw text).\n"
           "  Live-suite mutation flags send one mutate request before any\n"
           "  scores: --load-suite/--add-workload take their payload from\n"
           "  --csv/--series, --append-samples from --series, and\n"
           "  --drop-workload names the victim via --workload. A later\n"
           "  '--suite NAME' score resolves the resident suite by name.\n"
           "  --metrics appends a server-counter request, --stats a\n"
           "  latency-histogram request (p50/p90/p99/p99.9), --shard-stats\n"
           "  a worker-topology request ('worker.N.pid P' lines; router\n"
           "  tier), --shutdown asks the server to exit after responding.\n"
           "  Async-job flags switch to a lockstep conversation (one request,\n"
           "  one response): --submit sends a generate_submit built from\n"
           "  --suite/--csv plus --size/--candidates/--seed/--client and\n"
           "  prints 'job: <id>'; --follow then polls job_watch every\n"
           "  --watch-interval-ms (default 100) until the job finishes,\n"
           "  streaming progress to stderr and printing the final\n"
           "  'subset:'/'deviation_pct:' lines (byte-identical to\n"
           "  'subset --search scored'). --watch JOB resumes watching an\n"
           "  existing job; --job-status/--job-cancel/--job-list print one\n"
           "  status line per job.\n"
           "  Exits 0 when every response was ok, 3 otherwise.\n";
  }
  if (command == "help") {
    return "usage: perspector help [<command>]\n";
  }
  return {};
}

int usage() {
  std::cerr << general_usage_text();
  return 1;
}

int cmd_help(int argc, char** argv) {
  if (argc >= 3) {
    const std::string text = command_usage_text(argv[2]);
    if (!text.empty()) {
      std::cout << text;
      return 0;
    }
    std::cerr << "unknown command '" << argv[2] << "'\n";
    std::cerr << general_usage_text();
    return 1;
  }
  std::cout << general_usage_text();
  return 0;
}

int cmd_suites() {
  std::cout << "built-in suite models:\n"
            << "  parsec     13 multi-phase parallel applications\n"
            << "  spec17     43 CPU/memory workloads (rate + speed)\n"
            << "  ligra      12 graph algorithms on a shared framework\n"
            << "  lmbench    14 OS/memory micro-probes\n"
            << "  nbench     10 steady-state CPU kernels\n"
            << "  sgxgauge   10 real-world applications\n"
            << "  riotbench   8 IoT stream-processing operators\n"
            << "  sebs        8 serverless functions (cold starts)\n"
            << "  comb        6 edge media/inference pipelines\n"
            << "  splash2    12 1995-era HPC kernels (PARSEC's predecessor)\n";
  return 0;
}

int cmd_demo(const Args& args) {
  std::uint64_t instructions = 500'000;
  if (const auto n = args.get("instructions")) {
    instructions = parse_u64(*n, "instructions");
  }
  const std::string name = args.get("suite").value_or("nbench");
  std::cerr << "simulating " << name << " (" << instructions
            << " instructions per workload)...\n";
  // The same helper the serving engine uses, so `demo` and a served
  // built-in request are byte-identical by construction.
  const auto data = serve::simulate_builtin(name, instructions);
  const auto scores = core::Perspector().score_suite(data);
  std::cout << core::suite_report(data, scores);
  return 0;
}

core::CounterMatrix load_csv(const Args& args, const std::string& csv) {
  if (const auto series = args.get("series")) {
    return core::read_with_series_csv(csv, csv, *series);
  }
  return core::read_aggregates_csv(csv, csv);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open '" + path + "' for reading");
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

core::EventGroup event_group(const std::string& name) {
  if (name == "all") return core::EventGroup::all();
  if (name == "llc") return core::EventGroup::llc();
  if (name == "tlb") return core::EventGroup::tlb();
  if (name == "branch") return core::EventGroup::branch();
  throw UsageError("unknown event group '" + name + "'");
}

int cmd_score(const Args& args) {
  const auto csv = args.get("csv");
  if (!csv) return usage();
  // Focused scoring works the same as in `compare`: restrict every metric
  // to the selected event group before scoring. Parsed before any I/O so
  // flag mistakes fail fast as usage errors.
  core::PerspectorOptions options;
  options.events = event_group(args.get("events").value_or("all"));
  const auto data = load_csv(args, *csv);
  const auto scores = core::Perspector(options).score_suite(data);
  std::cout << core::suite_report(data, scores);
  return 0;
}

int cmd_compare(const Args& args) {
  const auto csvs = args.get_all("csv");
  if (csvs.size() < 2) {
    std::cerr << "compare needs at least two --csv files\n";
    return 1;
  }
  std::vector<core::CounterMatrix> data;
  for (const auto& csv : csvs) {
    data.push_back(core::read_aggregates_csv(csv, csv));
  }
  core::PerspectorOptions options;
  options.events = event_group(args.get("events").value_or("all"));
  const auto scores = core::Perspector(options).score_suites(data);
  std::cout << core::scores_table(scores).to_text() << core::score_legend()
            << "\n\n";

  const auto ranked = core::rank_suites(scores);
  core::Table table({"rank", "suite", "grade"});
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    table.add_row({std::to_string(i + 1), ranked[i].suite,
                   core::format_double(ranked[i].grade, 3)});
  }
  std::cout << table.to_text();
  return 0;
}

/// `subset --search scored`: the one-shot reference for the async-job
/// search. Builds the same JobSpec a served generate_submit would carry,
/// runs jobs::run_search synchronously, and prints exactly the two lines
/// the job client prints for a finished job — so the serve smoke test
/// can diff a kill-and-resume served search against this output.
int cmd_subset_search(const Args& args) {
  const std::string mode = args.get("search").value_or("scored");
  if (mode != "scored") {
    throw UsageError("unknown --search mode '" + mode + "' (only: scored)");
  }
  jobs::JobSpec spec;
  const auto suite = args.get("suite");
  const auto csv = args.get("csv");
  if ((suite ? 1 : 0) + (csv ? 1 : 0) != 1) {
    throw UsageError(
        "subset --search scored needs exactly one of --suite or --csv");
  }
  if (suite) {
    spec.builtin = *suite;
    if (const auto n = args.get("instructions")) {
      spec.instructions = parse_u64(*n, "instructions");
    }
  } else {
    spec.csv_name = *csv;
    spec.csv_text = read_file(*csv);
    if (const auto series = args.get("series")) {
      spec.series_text = read_file(*series);
    }
  }
  spec.events = args.get("events").value_or("all");
  spec.target_size = parse_u64(args.get("size").value_or("8"), "size");
  spec.candidates =
      parse_u64(args.get("candidates").value_or("64"), "candidates");
  if (spec.candidates == 0) {
    throw UsageError("option '--candidates' must be >= 1");
  }
  if (const auto seed = args.get("seed")) {
    spec.seed = parse_u64(*seed, "seed");
  }
  const auto best = jobs::run_search(spec);
  if (!best.valid) throw std::runtime_error("search produced no candidate");
  std::cout << "subset:";
  for (const std::string& name : best.names) std::cout << ' ' << name;
  std::cout << "\n";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", best.deviation_pct);
  std::cout << "deviation_pct: " << buf << "\n";
  return 0;
}

int cmd_subset(const Args& args) {
  if (args.has("search")) return cmd_subset_search(args);
  const auto csv = args.get("csv");
  if (!csv) return usage();

  core::SubsetOptions options;
  options.target_size = parse_u64(args.get("size").value_or("8"), "size");
  if (const auto seed = args.get("seed")) {
    options.seed = parse_u64(*seed, "seed");
  }
  const std::string method = args.get("method").value_or("lhs");
  if (method == "lhs") {
    options.method = core::SubsetMethod::Lhs;
  } else if (method == "random") {
    options.method = core::SubsetMethod::Random;
  } else if (method == "prior") {
    options.method = core::SubsetMethod::HierarchicalPrior;
  } else {
    throw UsageError("unknown subset method '" + method + "'");
  }
  const auto data = load_csv(args, *csv);

  core::PerspectorOptions scoring;
  scoring.compute_trend = data.has_series();
  const auto result = core::generate_subset(data, options, scoring);
  std::cout << "selected " << result.names.size() << " of "
            << data.num_workloads() << " workloads ("
            << core::to_string(options.method) << "):\n";
  for (const auto& name : result.names) std::cout << "  " << name << "\n";
  std::cout << "mean score deviation vs full suite: "
            << core::format_double(result.mean_deviation_pct, 2) << "%\n";
  return 0;
}

/// Field-wise equality of two counter matrices (CounterMatrix has no
/// operator==; bit-exact doubles are the whole point of the check).
bool matrices_identical(const core::CounterMatrix& a,
                        const core::CounterMatrix& b) {
  if (a.workload_names() != b.workload_names()) return false;
  if (a.counter_names() != b.counter_names()) return false;
  if (!(a.values() == b.values())) return false;
  if (a.has_series() != b.has_series()) return false;
  if (!a.has_series()) return true;
  for (std::size_t w = 0; w < a.num_workloads(); ++w) {
    for (std::size_t c = 0; c < a.num_counters(); ++c) {
      if (a.series(w, c) != b.series(w, c)) return false;
    }
  }
  return true;
}

int cmd_ingest(const Args& args) {
  const auto csv = args.get("csv");
  if (!csv) return usage();
  core::StreamedReadOptions options;
  if (const auto kb = args.get("chunk-kb")) {
    const std::uint64_t n = parse_u64(*kb, "chunk-kb");
    if (n == 0) throw UsageError("option '--chunk-kb' must be >= 1");
    options.chunk_bytes = static_cast<std::size_t>(n) << 10;
  }
  options.io_thread = !args.has("no-io-thread");

  const auto started = std::chrono::steady_clock::now();
  const auto data = core::read_aggregates_csv_streamed(*csv, *csv, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  std::cout << "parsed " << data.num_workloads() << " workloads x "
            << data.num_counters() << " counters from " << *csv << "\n";
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(*csv, ec);
  if (!ec && elapsed > 0.0) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "%.1f MiB in %.3f s (%.1f MiB/s, chunk %zu KiB, io-thread "
                  "%s)\n",
                  static_cast<double>(bytes) / 1048576.0, elapsed,
                  static_cast<double>(bytes) / 1048576.0 / elapsed,
                  options.chunk_bytes >> 10, options.io_thread ? "on" : "off");
    std::cout << line;
  }
  if (args.has("verify")) {
    const auto slurped = core::read_aggregates_csv_slurp(*csv, *csv);
    if (!matrices_identical(data, slurped)) {
      throw std::runtime_error(
          "verify failed: streamed and slurped matrices differ");
    }
    std::cout << "verify: streamed matrix is identical to the slurp "
                 "reader's\n";
  }
  return 0;
}

// ---- serve / client -------------------------------------------------------

volatile std::sig_atomic_t g_terminate = 0;

void handle_terminate(int) { g_terminate = 1; }

void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_terminate;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking calls must wake up
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  std::signal(SIGPIPE, SIG_IGN);
}

int cmd_serve(const Args& args) {
  serve::EngineOptions engine_options;
  if (const auto mb = args.get("cache-mb")) {
    engine_options.cache_bytes = parse_u64(*mb, "cache-mb") << 20;
  }
  serve::SessionOptions session;
  if (const auto n = args.get("max-queue")) {
    session.max_queue = parse_u64(*n, "max-queue");
    if (session.max_queue == 0) {
      throw UsageError("option '--max-queue' must be >= 1");
    }
  }
  if (const auto n = args.get("max-batch")) {
    session.max_batch = parse_u64(*n, "max-batch");
    if (session.max_batch == 0) {
      throw UsageError("option '--max-batch' must be >= 1");
    }
  }
  if (const auto n = args.get("deadline-ms")) {
    session.default_deadline_ms = parse_u64(*n, "deadline-ms");
  }
  if (const auto n = args.get("slow-ms")) {
    session.slow_request_ms = parse_u64(*n, "slow-ms");
  }
  // Async-job scheduler knobs. These ride inside EngineOptions, so the
  // router path below inherits them (every worker checkpoints into the
  // shared --jobs-dir and resumes from it after a respawn).
  if (const auto dir = args.get("jobs-dir")) {
    engine_options.jobs.checkpoint_dir = *dir;
  }
  if (const auto n = args.get("job-queue")) {
    engine_options.jobs.max_active = parse_u64(*n, "job-queue");
    if (engine_options.jobs.max_active == 0) {
      throw UsageError("option '--job-queue' must be >= 1");
    }
  }
  if (const auto n = args.get("jobs-per-client")) {
    engine_options.jobs.max_active_per_client =
        parse_u64(*n, "jobs-per-client");
    if (engine_options.jobs.max_active_per_client == 0) {
      throw UsageError("option '--jobs-per-client' must be >= 1");
    }
  }
  if (const auto n = args.get("checkpoint-every")) {
    // 0 is meaningful: checkpoint only at terminal transitions.
    engine_options.jobs.checkpoint_every = parse_u64(*n, "checkpoint-every");
  }
  if (args.has("stdio") && args.has("port")) {
    throw UsageError("--stdio and --port are mutually exclusive");
  }

  std::size_t workers = 0;  // 0 = in-process Engine, no router tier
  if (const auto n = args.get("workers")) {
    workers = parse_u64(*n, "workers");
    if (workers > 64) throw UsageError("option '--workers' must be <= 64");
  }
  std::string cache_dir;
  if (const auto dir = args.get("cache-dir")) cache_dir = *dir;
  std::uint64_t store_bytes = 256ull << 20;
  if (const auto mb = args.get("store-mb")) {
    store_bytes = parse_u64(*mb, "store-mb") << 20;
  }

  install_signal_handlers();
  session.terminate = &g_terminate;

  // Workers must fork before the serving threads/caches warm up, so the
  // backend is constructed before any transport work begins.
  std::unique_ptr<serve::ScoreBackend> backend;
  if (workers > 0) {
    serve::RouterOptions router_options;
    router_options.workers = workers;
    router_options.engine = engine_options;
    router_options.router_cache_bytes = engine_options.cache_bytes;
    router_options.cache_dir = cache_dir;
    router_options.store_bytes = store_bytes;
    backend = std::make_unique<serve::Router>(router_options);
  } else {
    engine_options.cache_dir = cache_dir;
    engine_options.store_bytes = store_bytes;
    backend = std::make_unique<serve::Engine>(engine_options);
  }

  if (args.has("stdio")) {
    serve::run_stdio_server(*backend, session);
    return 0;
  }
  serve::ServerOptions server;
  server.session = session;
  if (const auto port = args.get("port")) {
    const std::uint64_t value = parse_u64(*port, "port");
    if (value > 65535) throw UsageError("option '--port' must be <= 65535");
    server.port = static_cast<std::uint16_t>(value);
  }
  serve::run_tcp_server(*backend, server);
  return 0;
}

int cmd_client(const Args& args) {
  serve::ClientRun run;
  run.host = args.get("host").value_or("127.0.0.1");
  const auto port = args.get("port");
  if (!port) throw UsageError("client needs --port (see: perspector serve)");
  const std::uint64_t port_value = parse_u64(*port, "port");
  if (port_value == 0 || port_value > 65535) {
    throw UsageError("option '--port' must be in 1..65535");
  }
  run.port = static_cast<std::uint16_t>(port_value);

  // Async-job flags put the client in job mode: a lockstep conversation
  // (serve/client.hpp) instead of the pipelined score burst. --csv and
  // --suite then describe the submit payload, not a score request.
  const auto watch_id = args.get("watch");
  const auto status_id = args.get("job-status");
  const auto cancel_id = args.get("job-cancel");
  const int job_flags = (args.has("submit") ? 1 : 0) + (watch_id ? 1 : 0) +
                        (status_id ? 1 : 0) + (cancel_id ? 1 : 0) +
                        (args.has("job-list") ? 1 : 0);
  if (job_flags > 1) {
    throw UsageError(
        "--submit, --watch, --job-status, --job-cancel and --job-list are "
        "mutually exclusive");
  }
  if (job_flags == 1) {
    serve::ClientJob job;
    job.submit = args.has("submit");
    job.follow = args.has("follow");
    if (job.follow && !job.submit) {
      throw UsageError("'--follow' needs --submit (use --watch JOB instead)");
    }
    if (watch_id) job.watch = *watch_id;
    if (status_id) job.status = *status_id;
    if (cancel_id) job.cancel = *cancel_id;
    job.list = args.has("job-list");
    if (job.submit) {
      const auto suite = args.get("suite");
      const auto csv = args.get("csv");
      if ((suite ? 1 : 0) + (csv ? 1 : 0) != 1) {
        throw UsageError("'--submit' needs exactly one of --suite or --csv");
      }
      if (suite) {
        job.suite = *suite;
        if (const auto n = args.get("instructions")) {
          job.instructions = parse_u64(*n, "instructions");
        }
      } else {
        job.name = *csv;
        job.csv_text = read_file(*csv);
        if (const auto series = args.get("series")) {
          job.series_text = read_file(*series);
        }
      }
      job.events = args.get("events").value_or("all");
      job.size = parse_u64(args.get("size").value_or("8"), "size");
      job.candidates =
          parse_u64(args.get("candidates").value_or("64"), "candidates");
      if (job.candidates == 0) {
        throw UsageError("option '--candidates' must be >= 1");
      }
      if (const auto seed = args.get("seed")) {
        job.seed = parse_u64(*seed, "seed");
      }
      job.client = args.get("client").value_or("");
    }
    if (const auto n = args.get("watch-interval-ms")) {
      job.watch_interval_ms = parse_u64(*n, "watch-interval-ms");
    }
    run.job = std::move(job);
    run.shutdown = args.has("shutdown");
    std::signal(SIGPIPE, SIG_IGN);
    return serve::run_client(run, std::cout, std::cerr);
  }

  // Live-suite mutation flags (at most one per invocation); the payload
  // rides on --csv/--series, which then belong to the mutation rather
  // than the score request.
  const auto load_suite = args.get("load-suite");
  const auto add_workload = args.get("add-workload");
  const auto drop_workload = args.get("drop-workload");
  const auto append_samples = args.get("append-samples");
  const int mutate_flags = (load_suite ? 1 : 0) + (add_workload ? 1 : 0) +
                           (drop_workload ? 1 : 0) + (append_samples ? 1 : 0);
  if (mutate_flags > 1) {
    throw UsageError(
        "--load-suite, --add-workload, --drop-workload and --append-samples "
        "are mutually exclusive");
  }
  const auto suite = args.get("suite");
  const auto csv = args.get("csv");
  const auto input = args.get("input");
  const auto series = args.get("series");
  if (mutate_flags == 1) {
    serve::ClientMutate mutate;
    mutate.events = args.get("events").value_or("all");
    if (const auto n = args.get("deadline-ms")) {
      mutate.deadline_ms = parse_u64(*n, "deadline-ms");
    }
    if (load_suite || add_workload) {
      mutate.op = load_suite ? "load_suite" : "add_workload";
      mutate.suite = load_suite ? *load_suite : *add_workload;
      if (!csv) {
        throw UsageError("'--" + std::string(load_suite ? "load-suite"
                                                        : "add-workload") +
                         "' needs --csv <payload>");
      }
      mutate.csv_text = read_file(*csv);
      if (series) mutate.series_text = read_file(*series);
    } else if (drop_workload) {
      mutate.op = "drop_workload";
      mutate.suite = *drop_workload;
      const auto victim = args.get("workload");
      if (!victim) {
        throw UsageError("'--drop-workload' needs --workload <name>");
      }
      mutate.workload = *victim;
    } else {
      mutate.op = "append_samples";
      mutate.suite = *append_samples;
      if (!series) {
        throw UsageError("'--append-samples' needs --series <payload>");
      }
      mutate.series_text = read_file(*series);
    }
    run.mutations.push_back(std::move(mutate));
  }

  // Score request: --suite names a built-in (or a resident suite loaded
  // above), --csv ships raw CSV text, --input streams a CSV through the
  // chunked ingest reader and ships the parsed matrix losslessly.
  const bool csv_is_payload = mutate_flags == 1 && !drop_workload;
  const bool csv_scores = csv && !csv_is_payload;
  if ((suite ? 1 : 0) + (csv_scores ? 1 : 0) + (input ? 1 : 0) > 1) {
    throw UsageError("--suite, --csv and --input are mutually exclusive");
  }
  if (suite || csv_scores || input) {
    serve::ClientScore score;
    if (suite) {
      score.builtin = *suite;
      if (const auto n = args.get("instructions")) {
        score.instructions = parse_u64(*n, "instructions");
      }
    } else if (input) {
      // Stream the file through the ingest pipeline, then forward the
      // parsed matrix as lossless (%.17g) CSV — byte-identical scoring
      // to --csv, without the server re-validating a giant raw payload.
      score.name = *input;
      score.csv_text = core::write_aggregates_csv_text(
          core::read_aggregates_csv_streamed(*input, *input));
    } else {
      score.name = *csv;
      score.csv_text = read_file(*csv);
      if (series) score.series_text = read_file(*series);
    }
    score.events = args.get("events").value_or("all");
    if (const auto n = args.get("deadline-ms")) {
      score.deadline_ms = parse_u64(*n, "deadline-ms");
    }
    run.score = score;
    run.repeat = parse_u64(args.get("repeat").value_or("1"), "repeat");
    if (run.repeat == 0) throw UsageError("option '--repeat' must be >= 1");
  }
  run.ping = args.has("ping");
  run.metrics = args.has("metrics");
  run.stats = args.has("stats");
  run.shard_stats = args.has("shard-stats");
  run.shutdown = args.has("shutdown");
  if (run.mutations.empty() && !run.score && !run.ping && !run.metrics &&
      !run.stats && !run.shard_stats && !run.shutdown) {
    throw UsageError(
        "client needs something to send: --suite/--csv/--input, a mutation "
        "flag, --ping, --metrics, --stats, --shard-stats, or --shutdown");
  }

  std::signal(SIGPIPE, SIG_IGN);
  return serve::run_client(run, std::cout, std::cerr);
}

// After a successful command: per-phase timings (either flag), the trace
// file (--trace), the metrics tables (--metrics), and the machine-readable
// snapshot (--metrics-json).
void emit_observability(const Args& args) {
  const auto trace_path = args.get("trace");
  const auto metrics_json = args.get("metrics-json");
  const bool metrics = args.has("metrics");
  if (!trace_path && !metrics && !metrics_json) return;

  const auto& tracer = obs::Tracer::instance();
  const auto summary = tracer.phase_summary();
  if (!summary.empty() && (trace_path || metrics)) {
    std::cout << "\n--- per-phase timing (nested spans overlap) ---\n"
              << core::phase_timing_table(summary).to_text();
  }
  if (metrics) {
    std::cout << "\n--- pipeline metrics ---\n"
              << core::counters_table(obs::counters_snapshot()).to_text();
    const auto distributions = obs::distributions_snapshot();
    if (!distributions.empty()) {
      std::cout << "\n" << core::distributions_table(distributions).to_text();
    }
    const auto histograms = obs::histograms_snapshot();
    if (!histograms.empty()) {
      std::cout << "\n" << core::histograms_table(histograms).to_text();
    }
  }
  if (metrics_json) {
    // Byte-for-byte the serve `metrics` op's response (without an id), so
    // one-shot runs and served runs can be diffed with the same tooling.
    std::ofstream out(*metrics_json);
    if (!out) {
      throw std::runtime_error("cannot open '" + *metrics_json +
                               "' for writing");
    }
    out << serve::serialize_metrics("");
    std::cerr << "metrics snapshot written to " << *metrics_json << "\n";
  }
  if (trace_path) {
    tracer.write_chrome_trace(*trace_path);
    std::cerr << "trace written to " << *trace_path
              << " (load in chrome://tracing or https://ui.perfetto.dev)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    return cmd_help(argc, argv);
  }
  // `<command> --help` prints that command's usage and exits 0, before
  // flag parsing can mistake "--help" for an option missing its value.
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      const std::string text = command_usage_text(command);
      std::cout << (text.empty() ? general_usage_text() : text.c_str());
      return 0;
    }
  }
  try {
    const Args args = parse_args(argc, argv);
    if (args.has("trace") || args.has("metrics")) {
      obs::Tracer::instance().enable();
    }
    // --log-level beats PERSPECTOR_LOG (which Logger::instance() already
    // consumed); --log-file redirects the NDJSON stream away from stderr.
    if (const auto level = args.get("log-level")) {
      const auto parsed = obs::parse_log_level(*level);
      if (!parsed) {
        throw UsageError(
            "option '--log-level' expects off|error|warn|info|debug, got '" +
            *level + "'");
      }
      obs::Logger::instance().set_level(*parsed);
    }
    if (const auto path = args.get("log-file")) {
      if (!obs::Logger::instance().set_path(*path)) {
        throw std::runtime_error("cannot open log file '" + *path + "'");
      }
    }
    // --threads beats PERSPECTOR_THREADS beats hardware concurrency; the
    // strict parse keeps "--threads 1x" a usage error, and 0 is rejected
    // because "--threads 1" is the documented serial escape hatch.
    if (const auto threads = args.get("threads")) {
      const std::uint64_t n = parse_u64(*threads, "threads");
      if (n == 0) {
        throw UsageError("option '--threads' must be >= 1 (1 = serial)");
      }
      par::set_thread_count(static_cast<std::size_t>(n));
    }

    int rc;
    if (command == "suites") {
      rc = cmd_suites();
    } else if (command == "demo") {
      rc = cmd_demo(args);
    } else if (command == "score") {
      rc = cmd_score(args);
    } else if (command == "compare") {
      rc = cmd_compare(args);
    } else if (command == "subset") {
      rc = cmd_subset(args);
    } else if (command == "ingest") {
      rc = cmd_ingest(args);
    } else if (command == "serve") {
      rc = cmd_serve(args);
    } else if (command == "client") {
      rc = cmd_client(args);
    } else {
      std::cerr << "unknown command '" << command << "'\n";
      return usage();
    }
    if (rc == 0 || command == "client") emit_observability(args);
    return rc;
  } catch (const UsageError& e) {
    std::cerr << "perspector: " << e.what() << "\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "perspector: " << e.what() << "\n";
    return 2;
  }
}
