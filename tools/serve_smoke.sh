#!/bin/sh
# End-to-end smoke test for `perspector serve` over TCP, run by CI after
# the release build:
#
#   1. start the server on an ephemeral port and parse the printed port;
#   2. score spec17 and parsec through the client, twice each;
#   3. assert via the metrics op that the second round was served from
#      the result cache (serve.cache_hit >= 2) and that the request
#      latency distribution and histogram were populated;
#   4. assert via the stats op that serve.request.latency reports a
#      positive p99;
#   5. SIGTERM the server and assert it drains and exits 0.
#
# Usage: tools/serve_smoke.sh [path-to-perspector-binary]
set -eu

BIN="${1:-./build/tools/perspector}"
LOG="$(mktemp)"
OUT="$(mktemp)"
trap 'rm -f "$LOG" "$OUT"; kill "$SERVER_PID" 2>/dev/null || true' EXIT

"$BIN" serve --port 0 --max-queue 8 >"$LOG" 2>&1 &
SERVER_PID=$!

# Wait for the listening line (the port is kernel-assigned).
i=0
until grep -q "serve: listening" "$LOG"; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "FAIL: server never printed its listening line" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.1
done
PORT=$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$LOG" | head -1)
echo "server up on port $PORT (pid $SERVER_PID)"

# Round 1: cold — both suites computed.
"$BIN" client --port "$PORT" --suite spec17 --instructions 20000 >/dev/null
"$BIN" client --port "$PORT" --suite parsec --instructions 20000 >/dev/null

# Round 2: warm — identical requests must be cache hits. The reports must
# also be byte-identical to the equivalent one-shot runs.
"$BIN" client --port "$PORT" --suite spec17 --instructions 20000 >"$OUT"
"$BIN" demo --suite spec17 --instructions 20000 2>/dev/null \
  | cmp - "$OUT" || { echo "FAIL: served spec17 report differs from one-shot" >&2; exit 1; }
"$BIN" client --port "$PORT" --suite parsec --instructions 20000 >/dev/null

METRICS="$(mktemp)"
"$BIN" client --port "$PORT" --metrics 2>/dev/null >"$METRICS"
HITS=$(awk '$1 == "serve.cache_hit" { print $2 }' "$METRICS")
echo "serve.cache_hit = ${HITS:-0}"
if [ "${HITS:-0}" -lt 2 ]; then
  rm -f "$METRICS"
  echo "FAIL: expected the second round to hit the result cache" >&2
  exit 1
fi

# The latency distribution must have counted every scored request.
DIST_COUNT=$(awk '$1 == "serve.request_us.count" { print $2 }' "$METRICS")
rm -f "$METRICS"
echo "serve.request_us.count = ${DIST_COUNT:-0}"
if [ "${DIST_COUNT:-0}" -lt 4 ]; then
  echo "FAIL: request latency distribution missing from metrics" >&2
  exit 1
fi

# The stats op must expose latency percentiles from the histogram.
P99=$("$BIN" client --port "$PORT" --stats 2>/dev/null \
  | awk '$1 == "serve.request.latency.p99" { print $2 }')
echo "serve.request.latency.p99 = ${P99:-missing} us"
case "${P99:-}" in
  ''|0|0.*) echo "FAIL: stats op reported no positive p99 latency" >&2
            exit 1 ;;
esac

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$SERVER_PID"
RC=0
wait "$SERVER_PID" || RC=$?
if [ "$RC" -ne 0 ]; then
  echo "FAIL: server exited $RC on SIGTERM" >&2
  cat "$LOG" >&2
  exit 1
fi
echo "serve smoke OK (clean SIGTERM drain, cache hits confirmed)"
