#!/bin/sh
# End-to-end smoke tests for `perspector serve` over TCP, run by CI
# after the release build (and, for the restart phase, by ctest).
#
# Phase "basic" — the single-process engine:
#   1. start the server on an ephemeral port and parse the printed port;
#   2. score spec17 and parsec through the client, twice each;
#   3. score one CSV file through both --csv (raw payload) and --input
#      (client-side streamed ingest) and require byte-identical reports;
#   4. assert via the metrics op that the second round was served from
#      the result cache (serve.cache_hit >= 2) and that the request
#      latency distribution and histogram were populated;
#   5. assert via the stats op that serve.request.latency reports a
#      positive p99;
#   6. SIGTERM the server and assert it drains and exits 0.
#
# Phase "restart" — the multi-worker tier and its disk-backed store:
#   1. start `serve --workers 2 --cache-dir <dir>`, score two suites
#      twice (second round = router-cache hits), saving the responses;
#   2. SIGKILL the whole tier — no destructor, no store flush;
#   3. restart with the same --cache-dir and assert the same requests
#      come back byte-identical AND from disk (store.hits > 0 in the
#      merged metrics): tail-replay recovery must have rebuilt the
#      store from the unflushed segment files;
#   4. SIGTERM the restarted server and assert a clean drain.
#
# Phase "jobs" — the async-job subsystem surviving a worker SIGKILL:
#   1. compute the uninterrupted reference subset with
#      `subset --search scored` (the one-shot twin of a served job);
#   2. start `serve --workers 2 --jobs-dir <dir> --checkpoint-every 4`,
#      submit the same spec as an async job, and note the owning worker
#      from the submit response's worker=N;
#   3. SIGKILL that worker's pid (found via --shard-stats) mid-job;
#   4. watch the job to completion: the router must respawn the worker
#      (restarts >= 1 in --shard-stats), the respawned worker must
#      resume the job from its checkpoint log, and the final
#      'subset:'/'deviation_pct:' lines must be byte-identical to the
#      uninterrupted reference.
#
# Usage: tools/serve_smoke.sh [path-to-perspector-binary] [basic|restart|jobs|all]
set -eu

BIN="${1:-./build/tools/perspector}"
PHASE="${2:-all}"
LOG="$(mktemp)"
OUT="$(mktemp)"
CACHE_DIR=""
SERVER_PID=""
trap 'rm -f "$LOG" "$OUT"; [ -z "$CACHE_DIR" ] || rm -rf "$CACHE_DIR"; [ -z "$SERVER_PID" ] || kill -9 "$SERVER_PID" 2>/dev/null || true' EXIT

# start_server <serve-args...> — launches the server, waits for the
# listening line, and sets SERVER_PID / PORT.
start_server() {
  : >"$LOG"
  "$BIN" serve --port 0 "$@" >"$LOG" 2>&1 &
  SERVER_PID=$!
  i=0
  until grep -q "serve: listening" "$LOG"; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "FAIL: server never printed its listening line" >&2
      cat "$LOG" >&2
      exit 1
    fi
    sleep 0.1
  done
  PORT=$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' "$LOG" | head -1)
  echo "server up on port $PORT (pid $SERVER_PID)"
}

run_restart_phase() {
  CACHE_DIR="$(mktemp -d)"
  PRE1="$CACHE_DIR/pre1" PRE2="$CACHE_DIR/pre2"
  POST1="$CACHE_DIR/post1" POST2="$CACHE_DIR/post2"

  start_server --workers 2 --cache-dir "$CACHE_DIR/store" --max-queue 8

  # Round 1 computes in the workers; round 2 must be served by the
  # router's cache. The round-2 bytes are the reference transcripts.
  "$BIN" client --port "$PORT" --suite lmbench --instructions 20000 >/dev/null
  "$BIN" client --port "$PORT" --suite sebs --instructions 20000 >/dev/null
  "$BIN" client --port "$PORT" --suite lmbench --instructions 20000 >"$PRE1"
  "$BIN" client --port "$PORT" --suite sebs --instructions 20000 >"$PRE2"

  # Kill the tier outright: no shutdown path runs, the store's index
  # watermark is stale, and the tail of the segment file is unflushed.
  kill -9 "$SERVER_PID"
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
  echo "tier SIGKILLed; restarting against the same store"

  start_server --workers 2 --cache-dir "$CACHE_DIR/store" --max-queue 8
  "$BIN" client --port "$PORT" --suite lmbench --instructions 20000 >"$POST1"
  "$BIN" client --port "$PORT" --suite sebs --instructions 20000 >"$POST2"
  cmp "$PRE1" "$POST1" || { echo "FAIL: lmbench response differs after restart" >&2; exit 1; }
  cmp "$PRE2" "$POST2" || { echo "FAIL: sebs response differs after restart" >&2; exit 1; }

  # Both post-restart answers must have come from the disk store (the
  # restarted router's memory cache started empty).
  STORE_HITS=$("$BIN" client --port "$PORT" --metrics 2>/dev/null \
    | awk '$1 == "store.hits" { print $2 }')
  echo "store.hits = ${STORE_HITS:-0}"
  if [ "${STORE_HITS:-0}" -lt 2 ]; then
    echo "FAIL: post-restart responses were not served from the store" >&2
    exit 1
  fi

  kill -TERM "$SERVER_PID"
  RC=0
  wait "$SERVER_PID" || RC=$?
  SERVER_PID=""
  if [ "$RC" -ne 0 ]; then
    echo "FAIL: restarted tier exited $RC on SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
  fi
  rm -rf "$CACHE_DIR"
  CACHE_DIR=""
  echo "restart smoke OK (byte-identical responses, served from disk)"
}

run_jobs_phase() {
  CACHE_DIR="$(mktemp -d)"
  REF="$CACHE_DIR/ref" GOT="$CACHE_DIR/got" SUBMIT_ERR="$CACHE_DIR/submit.err"

  # The job spec, shared between the one-shot reference and the served
  # submit. Enough candidates that the SIGKILL lands mid-search.
  SPEC="--suite nbench --size 4 --candidates 48 --instructions 50000"

  echo "computing uninterrupted reference subset..."
  # shellcheck disable=SC2086
  "$BIN" subset --search scored $SPEC >"$REF"

  start_server --workers 2 --jobs-dir "$CACHE_DIR/jobs" --checkpoint-every 4

  # shellcheck disable=SC2086
  JOB_ID=$("$BIN" client --port "$PORT" --submit $SPEC 2>"$SUBMIT_ERR" \
    | sed -n 's/^job: //p')
  WORKER=$(sed -n 's/.*worker=\([0-9]*\).*/\1/p' "$SUBMIT_ERR")
  if [ -z "$JOB_ID" ] || [ -z "$WORKER" ]; then
    echo "FAIL: submit did not return a job id and owning worker" >&2
    cat "$SUBMIT_ERR" >&2
    exit 1
  fi
  echo "job $JOB_ID owned by worker $WORKER"

  OWNER_PID=$("$BIN" client --port "$PORT" --shard-stats 2>/dev/null \
    | awk -v key="worker.$WORKER.pid" '$1 == key { print $2 }')
  if [ -z "$OWNER_PID" ]; then
    echo "FAIL: shard_stats did not report worker $WORKER's pid" >&2
    exit 1
  fi

  kill -9 "$OWNER_PID"
  echo "SIGKILLed owning worker (pid $OWNER_PID) mid-job"

  # The watch must ride out the death: the router retries the (idempotent)
  # job ops against the respawned worker, which resumes from the shared
  # checkpoint directory and finishes the search.
  if ! "$BIN" client --port "$PORT" --watch "$JOB_ID" >"$GOT" 2>"$CACHE_DIR/watch.err"; then
    echo "FAIL: watch after worker SIGKILL did not complete cleanly" >&2
    cat "$CACHE_DIR/watch.err" >&2
    cat "$GOT" >&2
    exit 1
  fi
  cmp "$REF" "$GOT" || {
    echo "FAIL: resumed job's subset differs from the uninterrupted run" >&2
    echo "--- reference:" >&2; cat "$REF" >&2
    echo "--- resumed:" >&2; cat "$GOT" >&2
    exit 1
  }

  RESTARTS=$("$BIN" client --port "$PORT" --shard-stats 2>/dev/null \
    | awk -v key="worker.$WORKER.restarts" '$1 == key { print $2 }')
  echo "worker.$WORKER.restarts = ${RESTARTS:-0}"
  if [ "${RESTARTS:-0}" -lt 1 ]; then
    echo "FAIL: router never restarted the SIGKILLed worker" >&2
    exit 1
  fi

  kill -TERM "$SERVER_PID"
  RC=0
  wait "$SERVER_PID" || RC=$?
  SERVER_PID=""
  if [ "$RC" -ne 0 ]; then
    echo "FAIL: tier exited $RC on SIGTERM after the jobs phase" >&2
    cat "$LOG" >&2
    exit 1
  fi
  rm -rf "$CACHE_DIR"
  CACHE_DIR=""
  echo "jobs smoke OK (worker killed mid-job, resumed byte-identical)"
}

if [ "$PHASE" = "restart" ]; then
  run_restart_phase
  exit 0
fi
if [ "$PHASE" = "jobs" ]; then
  run_jobs_phase
  exit 0
fi

start_server --max-queue 8

# Round 1: cold — both suites computed.
"$BIN" client --port "$PORT" --suite spec17 --instructions 20000 >/dev/null
"$BIN" client --port "$PORT" --suite parsec --instructions 20000 >/dev/null

# Round 2: warm — identical requests must be cache hits. The reports must
# also be byte-identical to the equivalent one-shot runs.
"$BIN" client --port "$PORT" --suite spec17 --instructions 20000 >"$OUT"
"$BIN" demo --suite spec17 --instructions 20000 2>/dev/null \
  | cmp - "$OUT" || { echo "FAIL: served spec17 report differs from one-shot" >&2; exit 1; }
"$BIN" client --port "$PORT" --suite parsec --instructions 20000 >/dev/null

# Streamed ingest leg: --input parses the CSV through the chunked
# reader client-side and forwards the matrix as lossless CSV; the
# server's report must be byte-identical to shipping the raw file
# with --csv. Values carry fractions so the re-serialization path
# (%.17g round-trip) is actually exercised, not just integers.
INPUT_CSV="$(mktemp)"
INPUT_OUT="$(mktemp)"
cat >"$INPUT_CSV" <<'EOF'
workload,cpu-cycles,branch-instructions,branch-misses,dtlb_misses.walk_pending,cycle_activity.stalls_mem_any,page-faults,dTLB-loads,dTLB-stores,dTLB-load-misses,dTLB-store-misses,LLC-loads,LLC-stores,LLC-load-misses,LLC-store-misses
alpha,100000.5,20000.25,400.125,50,3000.75,12,15000,8000.5,120.25,60,900.5,450.125,90,45.75
beta,200000.25,40000.5,800.5,100.25,6000,24.5,30000.75,16000,240.5,120.125,1800,900.25,180.5,90
gamma,150000,30000.125,600.75,75.5,4500.25,18,22500.5,12000.75,180,90.5,1350.25,675,135.125,67.5
delta,250000.75,50000,1000.25,125,7500.5,30.25,37500,20000.125,300.75,150,2250.5,1125.75,225,112.5
epsilon,175000.5,35000.75,700,87.125,5250,21.5,26250.25,14000,210.125,105.75,1575,787.5,157.25,78.125
zeta,225000,45000.25,900.625,112.5,6750.125,27,33750.5,18000.25,270,135.625,2025.75,1012.125,202.5,101.25
EOF
"$BIN" client --port "$PORT" --csv "$INPUT_CSV" >"$INPUT_OUT"
"$BIN" client --port "$PORT" --input "$INPUT_CSV" \
  | cmp - "$INPUT_OUT" || {
    rm -f "$INPUT_CSV" "$INPUT_OUT"
    echo "FAIL: --input report differs from --csv for the same file" >&2
    exit 1
  }
rm -f "$INPUT_CSV" "$INPUT_OUT"
echo "--input streamed report matches --csv"

METRICS="$(mktemp)"
"$BIN" client --port "$PORT" --metrics 2>/dev/null >"$METRICS"
HITS=$(awk '$1 == "serve.cache_hit" { print $2 }' "$METRICS")
echo "serve.cache_hit = ${HITS:-0}"
if [ "${HITS:-0}" -lt 2 ]; then
  rm -f "$METRICS"
  echo "FAIL: expected the second round to hit the result cache" >&2
  exit 1
fi

# The latency distribution must have counted every scored request.
DIST_COUNT=$(awk '$1 == "serve.request_us.count" { print $2 }' "$METRICS")
rm -f "$METRICS"
echo "serve.request_us.count = ${DIST_COUNT:-0}"
if [ "${DIST_COUNT:-0}" -lt 4 ]; then
  echo "FAIL: request latency distribution missing from metrics" >&2
  exit 1
fi

# The stats op must expose latency percentiles from the histogram.
P99=$("$BIN" client --port "$PORT" --stats 2>/dev/null \
  | awk '$1 == "serve.request.latency.p99" { print $2 }')
echo "serve.request.latency.p99 = ${P99:-missing} us"
case "${P99:-}" in
  ''|0|0.*) echo "FAIL: stats op reported no positive p99 latency" >&2
            exit 1 ;;
esac

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$SERVER_PID"
RC=0
wait "$SERVER_PID" || RC=$?
SERVER_PID=""
if [ "$RC" -ne 0 ]; then
  echo "FAIL: server exited $RC on SIGTERM" >&2
  cat "$LOG" >&2
  exit 1
fi
echo "serve smoke OK (clean SIGTERM drain, cache hits confirmed)"

if [ "$PHASE" = "all" ]; then
  run_restart_phase
  run_jobs_phase
fi
