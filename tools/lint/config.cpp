#include "lint/config.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace perspector::lint {

namespace {

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// True when `prefix` matches `path` on whole component boundaries.
bool component_prefix(const std::string& prefix, const std::string& path) {
  if (path.size() < prefix.size()) return false;
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

}  // namespace

void LayerConfig::add(std::string prefix, int rank) {
  while (!prefix.empty() && prefix.back() == '/') prefix.pop_back();
  entries_.emplace_back(std::move(prefix), rank);
  // Longest prefix first so rank_of's first match is the best match.
  std::sort(entries_.begin(), entries_.end(),
            [](const auto& a, const auto& b) {
              return a.first.size() > b.first.size();
            });
}

std::optional<int> LayerConfig::rank_of(const std::string& path) const {
  for (const auto& [prefix, rank] : entries_) {
    if (component_prefix(prefix, path)) return rank;
  }
  return std::nullopt;
}

std::optional<std::string> LayerConfig::prefix_of(
    const std::string& path) const {
  for (const auto& [prefix, rank] : entries_) {
    if (component_prefix(prefix, path)) return prefix;
  }
  return std::nullopt;
}

LayerConfig parse_layers(const std::string& text) {
  LayerConfig config;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = strip(raw.substr(0, raw.find('#')));
    if (line.empty()) continue;
    std::istringstream fields(line);
    int rank = 0;
    std::string prefix, extra;
    if (!(fields >> rank >> prefix) || (fields >> extra)) {
      throw std::runtime_error("layers.conf line " + std::to_string(line_no) +
                               ": expected '<rank> <prefix>', got '" + line +
                               "'");
    }
    config.add(std::move(prefix), rank);
  }
  return config;
}

std::vector<BaselineEntry> parse_baseline(const std::string& text) {
  std::vector<BaselineEntry> entries;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = strip(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto fail = [&] {
      throw std::runtime_error("baseline line " + std::to_string(line_no) +
                               ": expected '<path>:<line>: <rule-id>', got '" +
                               line + "'");
    };
    const std::size_t first = line.find(':');
    if (first == std::string::npos) fail();
    const std::size_t second = line.find(':', first + 1);
    if (second == std::string::npos) fail();
    BaselineEntry entry;
    entry.file = line.substr(0, first);
    try {
      entry.line = std::stoi(line.substr(first + 1, second - first - 1));
    } catch (const std::exception&) {
      fail();
    }
    std::istringstream rest(line.substr(second + 1));
    if (!(rest >> entry.rule)) fail();
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace perspector::lint
