#include "lint/rules.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "lint/reach.hpp"

namespace perspector::lint {

namespace {

bool has_prefix(const std::string& path, const std::string& prefix) {
  return path.compare(0, prefix.size(), prefix) == 0;
}

bool is_header(const std::string& path) {
  return path.ends_with(".hpp") || path.ends_with(".h");
}

// R1 subsystem tables. Scoring dirs are where container iteration order
// or reduced precision can leak into the published score doubles.
const char* const kScoringDirs[] = {"src/core/", "src/cluster/",
                                    "src/dtw/",  "src/pca/",
                                    "src/stats/", "src/sampling/"};
// Wall-clock reads are legitimate in observability, benchmarks, and
// tools; src/serve/server.cpp is the one production file allowed to read
// the clock (the injection seam the fake-clock tests replace).
const char* const kClockAllowDirs[] = {"src/obs/", "bench/", "tools/"};
const char* const kClockAllowFiles[] = {"src/serve/server.cpp"};

bool in_any_dir(const std::string& path, const char* const (&dirs)[6]) {
  for (const char* d : dirs) {
    if (has_prefix(path, d)) return true;
  }
  return false;
}

bool clock_allowed(const std::string& path) {
  for (const char* d : kClockAllowDirs) {
    if (has_prefix(path, d)) return true;
  }
  for (const char* f : kClockAllowFiles) {
    if (path == f) return true;
  }
  return false;
}

/// Functions an assert() condition may call without tripping hyg-assert:
/// const accessors and pure math only.
const std::set<std::string>& pure_functions() {
  static const std::set<std::string> kPure = {
      "size",     "empty",   "isfinite", "isnan",   "isinf",  "abs",
      "fabs",     "sqrt",    "min",      "max",     "count",  "contains",
      "find",     "begin",   "end",      "cbegin",  "cend",   "data",
      "c_str",    "length",  "front",    "back",    "at",     "get",
      "has_value", "value",  "load",     "rows",    "cols",   "first",
      "second",   "distance", "tie",     "isspace", "isdigit"};
  return kPure;
}

/// Emits findings for one file, honoring `lint:allow` on the finding's
/// line or the line directly above it.
class Emitter {
 public:
  Emitter(const LexedFile& file, std::vector<Finding>& out)
      : file_(file), out_(out) {}

  void emit(int line, const std::string& rule, std::string message) {
    if (allowed(line, rule) || allowed(line - 1, rule)) return;
    out_.push_back(Finding{file_.path, line, rule, std::move(message)});
  }

 private:
  bool allowed(int line, const std::string& rule) const {
    const auto it = file_.allows.find(line);
    return it != file_.allows.end() && it->second.count(rule) > 0;
  }

  const LexedFile& file_;
  std::vector<Finding>& out_;
};

bool is_ident(const Token& t, const char* text) {
  return t.kind == Token::Kind::Identifier && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == Token::Kind::Punct && t.text == text;
}

// ---------------------------------------------------------------------------
// R1: determinism

void check_determinism(const LexedFile& f, Emitter& em) {
  const bool scoring = in_any_dir(f.path, kScoringDirs);
  const bool clocks_ok = clock_allowed(f.path);
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::Identifier) continue;
    const std::string& id = t[i].text;
    if (id == "rand" || id == "srand" || id == "random_device") {
      em.emit(t[i].line, "det-rand",
              "'" + id + "' is nondeterministic; use a seeded stats::Rng");
      continue;
    }
    if (!clocks_ok) {
      if (id == "clock_gettime" || id == "gettimeofday") {
        em.emit(t[i].line, "det-clock",
                "'" + id + "' reads the wall clock in a deterministic path");
        continue;
      }
      if (id == "time" && i + 1 < t.size() && is_punct(t[i + 1], "(")) {
        em.emit(t[i].line, "det-clock",
                "'time()' reads the wall clock in a deterministic path");
        continue;
      }
      if ((id == "steady_clock" || id == "system_clock" ||
           id == "high_resolution_clock") &&
          i + 2 < t.size() && is_punct(t[i + 1], "::") &&
          is_ident(t[i + 2], "now")) {
        em.emit(t[i].line, "det-clock",
                "'" + id + "::now()' reads the clock in a deterministic "
                "path (inject a clock instead)");
        continue;
      }
    }
    if (scoring) {
      if (id == "unordered_map" || id == "unordered_set") {
        em.emit(t[i].line, "det-hash",
                "'" + id + "' in a scoring subsystem: iteration order can "
                "leak into results; use std::map or a sorted vector");
        continue;
      }
      if (id == "float") {
        em.emit(t[i].line, "det-float",
                "'float' in a scoring subsystem violates the double-only "
                "scoring policy");
        continue;
      }
    }
  }
  if (scoring) {
    for (const Include& inc : f.includes) {
      if (inc.path == "unordered_map" || inc.path == "unordered_set") {
        em.emit(inc.line, "det-hash",
                "#include <" + inc.path + "> in a scoring subsystem");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R3: parallel safety

void check_concurrency_query(const LexedFile& f, Emitter& em) {
  if (has_prefix(f.path, "src/par/")) return;
  for (const Token& t : f.tokens) {
    if (is_ident(t, "hardware_concurrency")) {
      em.emit(t.line, "par-concurrency",
              "hardware_concurrency outside src/par/ bypasses the "
              "explicit-threads policy (use par::resolve_threads)");
    }
  }
}

/// Statement head [b, e): does it declare something immutable or
/// non-variable that par-global must skip?
bool head_is_skippable(const std::vector<Token>& t, std::size_t b,
                       std::size_t e) {
  if (b >= e) return true;
  static const std::set<std::string> kSkipLead = {
      "namespace", "using",  "typedef", "template", "friend",
      "static_assert", "extern", "class", "struct", "union",
      "enum", "public", "private", "protected", "asm"};
  if (t[b].kind == Token::Kind::Identifier && kSkipLead.count(t[b].text)) {
    return true;
  }
  for (std::size_t i = b; i < e; ++i) {
    if (t[i].kind == Token::Kind::Identifier &&
        (t[i].text == "const" || t[i].text == "constexpr" ||
         t[i].text == "constinit" || t[i].text == "thread_local" ||
         t[i].text == "operator")) {
      return true;
    }
    if (is_punct(t[i], "(")) return true;  // function (or function pointer)
  }
  // A variable declaration head ends in the variable's name.
  return t[e - 1].kind != Token::Kind::Identifier;
}

void check_globals_and_statics(const LexedFile& f, Emitter& em) {
  if (!has_prefix(f.path, "src/")) return;
  enum class Brace { Namespace, Type, Func, Other };
  // Other braces (initializers, default arguments) interrupt a statement
  // rather than ending it, so they save and restore the statement state.
  struct Scope {
    Brace kind;
    std::size_t saved_stmt_start;
    bool saved_analyzed;
  };
  std::vector<Scope> stack;
  const auto& t = f.tokens;

  const auto at_namespace_scope = [&] {
    return std::all_of(stack.begin(), stack.end(), [](const Scope& s) {
      return s.kind == Brace::Namespace;
    });
  };
  const auto in_function = [&] {
    return std::any_of(stack.begin(), stack.end(), [](const Scope& s) {
      return s.kind == Brace::Func || s.kind == Brace::Other;
    });
  };

  const auto flag_global = [&](std::size_t b, std::size_t e) {
    if (head_is_skippable(t, b, e)) return;
    const Token& name = t[e - 1];
    em.emit(name.line, "par-global",
            "mutable namespace-scope variable '" + name.text +
                "' is shared across pool workers; make it const, "
                "thread_local, or inject it");
  };

  std::size_t stmt_start = 0;
  bool analyzed = false;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Function-local `static` (checked regardless of statement state).
    if (is_ident(t[i], "static") && in_function()) {
      bool mutable_static = true;
      bool saw_paren_first = false;
      std::size_t j = i + 1;
      for (; j < t.size(); ++j) {
        if (is_punct(t[j], "(")) {
          saw_paren_first = true;  // a declarator like `static T f(...)`
          break;
        }
        if (is_punct(t[j], ";") || is_punct(t[j], "=") ||
            is_punct(t[j], "{")) {
          break;
        }
        if (t[j].kind == Token::Kind::Identifier &&
            (t[j].text == "const" || t[j].text == "constexpr" ||
             t[j].text == "constinit" || t[j].text == "thread_local")) {
          mutable_static = false;
        }
        if (is_punct(t[j], "&")) mutable_static = false;  // static reference
      }
      if (mutable_static && !saw_paren_first && j < t.size()) {
        em.emit(t[i].line, "par-static",
                "mutable function-local static is shared across pool "
                "workers; hoist it behind a lock or make it thread_local");
      }
    }

    if (t[i].kind != Token::Kind::Punct) continue;
    const std::string& p = t[i].text;
    if (p == ";") {
      if (at_namespace_scope() && !analyzed) flag_global(stmt_start, i);
      stmt_start = i + 1;
      analyzed = false;
    } else if (p == "=") {
      // Declaration head ends at the initializer.
      if (at_namespace_scope() && !analyzed) flag_global(stmt_start, i);
      analyzed = true;
    } else if (p == "{") {
      Brace kind = Brace::Other;
      // An initializer/default-argument brace follows `=`, `,`, `(`, `{`,
      // or `return`; it continues the current statement.
      const bool initializer =
          i > 0 && (is_punct(t[i - 1], "=") || is_punct(t[i - 1], ",") ||
                    is_punct(t[i - 1], "(") || is_punct(t[i - 1], "{") ||
                    is_ident(t[i - 1], "return"));
      if (!initializer) {
        bool head_has_paren = false, head_has_type_kw = false,
             head_has_ns = false;
        for (std::size_t k = stmt_start; k < i; ++k) {
          if (is_punct(t[k], "(")) head_has_paren = true;
          if (t[k].kind == Token::Kind::Identifier) {
            const std::string& id = t[k].text;
            if (id == "namespace") head_has_ns = true;
            if (id == "class" || id == "struct" || id == "union" ||
                id == "enum") {
              head_has_type_kw = true;
            }
          }
        }
        if (head_has_ns) {
          kind = Brace::Namespace;
        } else if (head_has_type_kw && !head_has_paren) {
          kind = Brace::Type;
        } else if (head_has_paren) {
          kind = Brace::Func;
        } else if (at_namespace_scope() && !analyzed) {
          // Brace-init global: `int x{0};` — the head is a declaration.
          flag_global(stmt_start, i);
          analyzed = true;
        }
      }
      stack.push_back(Scope{kind, stmt_start, analyzed});
      stmt_start = i + 1;
      analyzed = false;
    } else if (p == "}") {
      if (!stack.empty()) {
        const Scope top = stack.back();
        stack.pop_back();
        if (top.kind == Brace::Other) {
          // The interrupted statement resumes after the initializer.
          stmt_start = top.saved_stmt_start;
          analyzed = top.saved_analyzed;
          continue;
        }
      }
      stmt_start = i + 1;
      analyzed = false;
    }
  }
}

// ---------------------------------------------------------------------------
// R4: hygiene

void check_guard(const LexedFile& f, Emitter& em) {
  if (!is_header(f.path)) return;
  if (f.has_pragma_once || f.has_include_guard) return;
  if (f.tokens.empty() && f.includes.empty()) return;
  em.emit(1, "hyg-guard",
          "header has neither #pragma once nor an include guard");
}

void check_assert(const LexedFile& f, Emitter& em) {
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "assert") || !is_punct(t[i + 1], "(")) continue;
    int depth = 1;
    for (std::size_t j = i + 2; j < t.size() && depth > 0; ++j) {
      if (is_punct(t[j], "(")) {
        ++depth;
        // A call: the identifier right before this paren.
        if (j > 0 && t[j - 1].kind == Token::Kind::Identifier &&
            !pure_functions().count(t[j - 1].text)) {
          em.emit(t[i].line, "hyg-assert",
                  "assert() calls '" + t[j - 1].text +
                      "' which is not on the pure-function allowlist; "
                      "side effects vanish in NDEBUG builds");
          break;
        }
        continue;
      }
      if (is_punct(t[j], ")")) {
        --depth;
        continue;
      }
      if (is_punct(t[j], "++") || is_punct(t[j], "--") ||
          is_punct(t[j], "=")) {
        em.emit(t[i].line, "hyg-assert",
                "assert() condition contains '" + t[j].text +
                    "'; side effects vanish in NDEBUG builds");
        break;
      }
    }
  }
}

/// hyg-log: raw stderr writes inside src/ bypass the leveled, rate-limited
/// NDJSON logger (src/obs/log.hpp). The logger's own sink is exempt, and
/// the rule only covers src/ — tools, benches, and tests print freely.
void check_log_discipline(const LexedFile& f, Emitter& em) {
  if (!has_prefix(f.path, "src/")) return;
  if (has_prefix(f.path, "src/obs/log")) return;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_ident(t[i], "cerr")) {
      em.emit(t[i].line, "hyg-log",
              "raw std::cerr write in src/; route it through obs::log_* "
              "so output is leveled, rate-limited NDJSON");
      continue;
    }
    if (is_ident(t[i], "fprintf")) {
      // `fprintf(stderr, ...)` — stderr is the first argument, so it sits
      // within a couple of tokens of the call.
      for (std::size_t j = i + 1; j < t.size() && j <= i + 3; ++j) {
        if (is_ident(t[j], "stderr")) {
          em.emit(t[i].line, "hyg-log",
                  "fprintf(stderr, ...) in src/; route it through "
                  "obs::log_* so output is leveled, rate-limited NDJSON");
          break;
        }
        if (is_punct(t[j], ",") || is_punct(t[j], ")")) break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R2: layering

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// Resolves a quoted include against the walked file set. Quoted includes
/// are written relative to an include root (src/, tools/) or the
/// including file's own directory.
std::string resolve_include(
    const std::string& includer, const std::string& inc,
    const std::map<std::string, const LexedFile*>& by_path) {
  const std::string candidates[] = {dirname_of(includer) + "/" + inc, inc,
                                    "src/" + inc, "tools/" + inc,
                                    "tests/" + inc};
  for (const std::string& c : candidates) {
    if (by_path.count(c)) return c;
  }
  // Unresolved (fixture or partial walk): assume the src/ include root so
  // rank checks still work on in-memory sources.
  return "src/" + inc;
}

void check_layering(const std::vector<LexedFile>& files,
                    const LayerConfig& layers,
                    std::vector<Finding>& findings) {
  std::map<std::string, const LexedFile*> by_path;
  for (const LexedFile& f : files) by_path.emplace(f.path, &f);

  // layer-order: every quoted edge must point strictly downward.
  for (const LexedFile& f : files) {
    const auto rank = layers.rank_of(f.path);
    Emitter em(f, findings);
    for (const Include& inc : f.includes) {
      if (inc.angled) continue;
      const std::string target = resolve_include(f.path, inc.path, by_path);
      const auto target_rank = layers.rank_of(target);
      if (!rank || !target_rank) continue;  // unranked side: no constraint
      const auto prefix = layers.prefix_of(f.path);
      const auto target_prefix = layers.prefix_of(target);
      if (*prefix == *target_prefix) continue;  // within one layer dir
      if (*target_rank > *rank) {
        em.emit(inc.line, "layer-order",
                *prefix + " (rank " + std::to_string(*rank) +
                    ") must not include " + *target_prefix + " (rank " +
                    std::to_string(*target_rank) + "): \"" + inc.path +
                    "\"");
      } else if (*target_rank == *rank) {
        em.emit(inc.line, "layer-order",
                *prefix + " and " + *target_prefix +
                    " share rank " + std::to_string(*rank) +
                    "; peer layers must not include each other: \"" +
                    inc.path + "\"");
      }
    }
  }

  // layer-cycle: DFS over resolved quoted edges between walked files.
  std::map<std::string, std::vector<std::pair<std::string, int>>> graph;
  for (const LexedFile& f : files) {
    auto& edges = graph[f.path];
    for (const Include& inc : f.includes) {
      if (inc.angled) continue;
      const std::string target = resolve_include(f.path, inc.path, by_path);
      if (by_path.count(target) && target != f.path) {
        edges.emplace_back(target, inc.line);
      }
    }
  }
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> path_stack;
  const std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = 1;
        path_stack.push_back(node);
        for (const auto& [next, line] : graph[node]) {
          if (color[next] == 2) continue;
          if (color[next] == 1) {
            // Found a cycle: render it from `next` around to `node`.
            std::string cycle;
            bool in_cycle = false;
            for (const std::string& p : path_stack) {
              if (p == next) in_cycle = true;
              if (in_cycle) cycle += p + " -> ";
            }
            cycle += next;
            Emitter em(*by_path.at(node), findings);
            em.emit(line, "layer-cycle", "include cycle: " + cycle);
            continue;
          }
          dfs(next);
        }
        path_stack.pop_back();
        color[node] = 2;
      };
  for (const auto& [node, edges] : graph) {
    if (color[node] == 0) dfs(node);
  }
}

}  // namespace

std::string to_string(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": " +
         finding.rule + ": " + finding.message;
}

namespace {

std::vector<Finding> run_all(const std::vector<SourceFile>& files,
                             const LayerConfig& layers,
                             const DeepConfig* deep) {
  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  for (const SourceFile& f : files) lexed.push_back(lex(f.path, f.text));

  std::vector<Finding> findings;
  for (const LexedFile& f : lexed) {
    Emitter em(f, findings);
    check_determinism(f, em);
    check_concurrency_query(f, em);
    check_globals_and_statics(f, em);
    check_guard(f, em);
    check_assert(f, em);
    check_log_discipline(f, em);
  }
  check_layering(lexed, layers, findings);

  if (deep != nullptr) {
    const SymbolTable table = build_symbols(lexed);
    const CallGraph graph = build_callgraph(table, lexed);
    const SeamConfig seams =
        parse_seams(deep->seams_text, deep->seams_path, findings);
    run_reach_rules(lexed, table, graph, seams, deep->seams_path, findings);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

}  // namespace

std::vector<Finding> run_rules(const std::vector<SourceFile>& files,
                               const LayerConfig& layers) {
  return run_all(files, layers, nullptr);
}

std::vector<Finding> run_rules(const std::vector<SourceFile>& files,
                               const LayerConfig& layers,
                               const DeepConfig& deep) {
  return run_all(files, layers, &deep);
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const std::vector<BaselineEntry>& baseline,
                                    std::vector<BaselineEntry>* unused) {
  std::vector<bool> used(baseline.size(), false);
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    bool matched = false;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (baseline[i].file == f.file && baseline[i].line == f.line &&
          baseline[i].rule == f.rule) {
        used[i] = true;
        matched = true;
        break;
      }
    }
    if (!matched) kept.push_back(std::move(f));
  }
  if (unused != nullptr) {
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (!used[i]) unused->push_back(baseline[i]);
    }
  }
  return kept;
}

}  // namespace perspector::lint
