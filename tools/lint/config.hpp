// perspector_lint configuration: the layer-rank table (layers.conf) that
// drives the R2 layering rule, and the baseline file of grandfathered
// findings that lets the tool land green and ratchet from there.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace perspector::lint {

/// Layer table: each entry maps a path prefix (e.g. "src/core") to a
/// rank. An include edge is legal only from a higher rank to a strictly
/// lower rank, or within one prefix; equal-rank edges across different
/// prefixes are cycles-in-waiting and are rejected too. Paths with no
/// matching prefix (tests/, tools/, bench/) are unranked consumers and may
/// include anything.
class LayerConfig {
 public:
  void add(std::string prefix, int rank);

  /// Rank via longest-prefix match; nullopt when unranked. A prefix
  /// matches whole path components only ("src/core" matches
  /// "src/core/io.cpp" but not "src/core_utils/x.cpp").
  std::optional<int> rank_of(const std::string& path) const;

  /// The matched prefix itself (for "within one directory" checks).
  std::optional<std::string> prefix_of(const std::string& path) const;

  bool empty() const { return entries_.empty(); }

 private:
  std::vector<std::pair<std::string, int>> entries_;  // prefix -> rank
};

/// Parses layers.conf text: one `<rank> <prefix>` pair per line, '#'
/// comments and blank lines ignored. Throws std::runtime_error on a
/// malformed line (bad config must not silently disable the rule).
LayerConfig parse_layers(const std::string& text);

/// One grandfathered finding: an exact `path:line: rule-id` triple.
struct BaselineEntry {
  std::string file;
  int line = 0;
  std::string rule;

  friend bool operator==(const BaselineEntry&, const BaselineEntry&) =
      default;
};

/// Parses baseline.txt: one `path:line: rule-id` per line ('#' comments
/// and blank lines ignored; anything after the rule id is ignored so
/// entries can carry a justification). Throws on malformed lines.
std::vector<BaselineEntry> parse_baseline(const std::string& text);

}  // namespace perspector::lint
