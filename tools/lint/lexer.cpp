#include "lint/lexer.hpp"

#include <cctype>
#include <cstddef>

namespace perspector::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Extracts every `<marker>(a, b)` occurrence from a comment's text and
/// records the ids against `line` in `into`.
void scan_marker(const std::string& comment, const std::string& marker,
                 int line, std::map<int, std::set<std::string>>& into) {
  std::size_t pos = 0;
  while ((pos = comment.find(marker, pos)) != std::string::npos) {
    pos += marker.size();
    std::string id;
    for (; pos < comment.size() && comment[pos] != ')'; ++pos) {
      const char c = comment[pos];
      if (c == ',' || c == ' ' || c == '\t') {
        if (!id.empty()) into[line].insert(id);
        id.clear();
      } else {
        id.push_back(c);
      }
    }
    if (!id.empty()) into[line].insert(id);
  }
}

/// lint:allow suppressions and lint:seam boundary declarations.
void scan_allow(const std::string& comment, int line, LexedFile& out) {
  scan_marker(comment, "lint:allow(", line, out.allows);
  scan_marker(comment, "lint:seam(", line, out.seams);
}

class Lexer {
 public:
  Lexer(const std::string& text, LexedFile& out) : text_(text), out_(out) {}

  void run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        at_line_start_ = true;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        preprocessor_line();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        number();
        continue;
      }
      punct();
    }
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void emit(Token::Kind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void line_comment() {
    const int start_line = line_;
    std::size_t end = text_.find('\n', pos_);
    if (end == std::string::npos) end = text_.size();
    scan_allow(text_.substr(pos_, end - pos_), start_line, out_);
    pos_ = end;  // the '\n' is handled by run()
  }

  void block_comment() {
    const int start_line = line_;
    const std::size_t body = pos_ + 2;
    std::size_t end = text_.find("*/", body);
    if (end == std::string::npos) end = text_.size();
    scan_allow(text_.substr(body, end - body), start_line, out_);
    for (std::size_t i = body; i < end; ++i) {
      if (text_[i] == '\n') ++line_;
    }
    pos_ = end + 2 <= text_.size() ? end + 2 : text_.size();
  }

  /// Ordinary string literal starting at the current `"`.
  void string_literal() {
    const int start_line = line_;
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        if (text_[pos_ + 1] == '\n') ++line_;
        pos_ += 2;
        continue;
      }
      ++pos_;
      if (c == '"') break;
      if (c == '\n') ++line_;  // unterminated; keep the count honest
    }
    emit(Token::Kind::String, "", start_line);
  }

  /// Raw string literal; `pos_` is at the `"` following an R prefix.
  void raw_string_literal() {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < text_.size() && text_[pos_] != '(') {
      delim.push_back(text_[pos_]);
      ++pos_;
    }
    ++pos_;  // '('
    const std::string closer = ")" + delim + "\"";
    std::size_t end = text_.find(closer, pos_);
    if (end == std::string::npos) end = text_.size();
    for (std::size_t i = pos_; i < end && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line_;
    }
    pos_ = end + closer.size() <= text_.size() ? end + closer.size()
                                               : text_.size();
    emit(Token::Kind::String, "", start_line);
  }

  void char_literal() {
    const int start_line = line_;
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        pos_ += 2;
        continue;
      }
      ++pos_;
      if (c == '\'' || c == '\n') {
        if (c == '\n') ++line_;
        break;
      }
    }
    emit(Token::Kind::Char, "", start_line);
  }

  void identifier() {
    const int start_line = line_;
    std::string id;
    while (pos_ < text_.size() && ident_char(text_[pos_])) {
      id.push_back(text_[pos_]);
      ++pos_;
    }
    // Raw-string prefix? (R"..., u8R"..., uR"..., LR"...)
    if (pos_ < text_.size() && text_[pos_] == '"' && !id.empty() &&
        id.back() == 'R' &&
        (id == "R" || id == "u8R" || id == "uR" || id == "LR")) {
      raw_string_literal();
      return;
    }
    emit(Token::Kind::Identifier, std::move(id), start_line);
  }

  void number() {
    const int start_line = line_;
    std::string num;
    // Good enough for rule purposes: digits, hex letters, dots, exponent
    // signs, and suffixes all fold into one Number token.
    while (pos_ < text_.size() &&
           (ident_char(text_[pos_]) || text_[pos_] == '.' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && !num.empty() &&
             (num.back() == 'e' || num.back() == 'E' || num.back() == 'p' ||
              num.back() == 'P')))) {
      num.push_back(text_[pos_]);
      ++pos_;
    }
    emit(Token::Kind::Number, std::move(num), start_line);
  }

  void punct() {
    const int start_line = line_;
    const char c = text_[pos_];
    const char n = peek(1);
    // Two-char operators that rules must not confuse with their one-char
    // prefixes (`==` vs assignment `=`, `::` scoping, `++`/`--`).
    static constexpr const char* kPairs[] = {
        "::", "++", "--", "->", "==", "!=", "<=", ">=", "+=", "-=",
        "*=", "/=", "%=", "&=", "|=", "^=", "&&", "||", "<<", ">>"};
    for (const char* pair : kPairs) {
      if (c == pair[0] && n == pair[1]) {
        emit(Token::Kind::Punct, pair, start_line);
        pos_ += 2;
        return;
      }
    }
    emit(Token::Kind::Punct, std::string(1, c), start_line);
    ++pos_;
  }

  /// Consumes one logical preprocessor line (backslash continuations and
  /// trailing comments included) and records includes / pragma once /
  /// include-guard directives.
  void preprocessor_line() {
    const int start_line = line_;
    std::string logical;  // directive text with comments removed
    ++pos_;               // '#'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        if (!logical.empty() && logical.back() == '\\') {
          logical.pop_back();
          ++line_;
          ++pos_;
          continue;
        }
        break;  // run() consumes the newline
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        logical.push_back(' ');
        continue;
      }
      logical.push_back(c);
      ++pos_;
    }
    parse_directive(logical, start_line);
    at_line_start_ = true;
  }

  void parse_directive(const std::string& body, int line) {
    std::size_t i = 0;
    auto skip_ws = [&] {
      while (i < body.size() && (body[i] == ' ' || body[i] == '\t')) ++i;
    };
    auto word = [&] {
      std::string w;
      skip_ws();
      while (i < body.size() && ident_char(body[i])) w.push_back(body[i++]);
      return w;
    };
    const std::string directive = word();
    if (directive == "include") {
      skip_ws();
      if (i >= body.size()) return;
      const char open = body[i];
      const char close = open == '<' ? '>' : '"';
      if (open != '<' && open != '"') return;
      ++i;
      std::string path;
      while (i < body.size() && body[i] != close) path.push_back(body[i++]);
      out_.includes.push_back(Include{std::move(path), open == '<', line});
    } else if (directive == "pragma") {
      if (word() == "once") out_.has_pragma_once = true;
    } else if (directive == "ifndef") {
      if (directive_count_ == 0) guard_macro_ = word();
    } else if (directive == "define") {
      if (directive_count_ == 1 && !guard_macro_.empty() &&
          word() == guard_macro_) {
        out_.has_include_guard = true;
      }
    }
    ++directive_count_;
  }

  const std::string& text_;
  LexedFile& out_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  int directive_count_ = 0;
  std::string guard_macro_;
};

}  // namespace

LexedFile lex(const std::string& path, const std::string& text) {
  LexedFile out;
  out.path = path;
  Lexer(text, out).run();
  return out;
}

}  // namespace perspector::lint
