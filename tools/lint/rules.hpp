// perspector_lint rule engine. Rules encode the invariants the runtime
// tests rely on (DESIGN.md sections 8-10) so a violation fails at lint
// time instead of as a flaky byte-identity diff:
//
//   R1 determinism
//     det-rand   std::rand / srand / random_device anywhere walked
//     det-clock  time()/clock_gettime/gettimeofday/<clock>::now() outside
//                the clock allowlist (src/obs/, bench/, tools/, and the
//                src/serve/server.cpp clock-injection seam)
//     det-hash   unordered_map/unordered_set in the scoring subsystems
//                (iteration order can leak into summation order)
//     det-float  `float` in the scoring subsystems (double-only policy)
//   R2 layering (ranks from tools/lint/layers.conf)
//     layer-order  quoted-include edge to an equal or higher rank
//     layer-cycle  cycle in the quoted-include graph
//   R3 parallel safety (src/ only; the ThreadPool slot-ownership model
//      assumes no shared mutable statics)
//     par-global       mutable non-const, non-thread_local namespace-scope
//                      variable
//     par-static       mutable function-local static (references are
//                      exempt: a static reference owns no state — the
//                      referent is checked where it is defined)
//     par-concurrency  hardware_concurrency outside src/par/
//   R4 hygiene
//     hyg-guard   header with neither #pragma once nor an include guard
//     hyg-assert  assert() whose condition has side effects (++/--/
//                 assignment or a call to a function outside the pure
//                 allowlist)
//     hyg-log     raw std::cerr or fprintf(stderr, ...) in src/ outside
//                 src/obs/log* (route through the leveled obs logger;
//                 tools/, bench/, tests/ print freely)
//
// Suppression: `// lint:allow(rule-id): why` on the finding's line or the
// line directly above. Grandfathered findings go to tools/lint/baseline.txt.
#pragma once

#include <string>
#include <vector>

#include "lint/config.hpp"
#include "lint/lexer.hpp"

namespace perspector::lint {

struct SourceFile {
  std::string path;  // repo-relative, forward slashes
  std::string text;
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// Renders "file:line: rule-id: message" (the one output format).
std::string to_string(const Finding& finding);

/// Runs every rule over `files` and returns the findings sorted by
/// (file, line, rule), with `lint:allow` suppressions already applied.
/// The include graph (layer-order / layer-cycle) is built from quoted
/// includes resolved against the set of paths in `files`; unresolved
/// quoted includes are still rank-checked as if rooted at src/.
std::vector<Finding> run_rules(const std::vector<SourceFile>& files,
                               const LayerConfig& layers);

/// Cross-TU analysis inputs (the contents of tools/lint/seams.conf and
/// its path, used in stale-entry findings).
struct DeepConfig {
  std::string seams_text;
  std::string seams_path = "tools/lint/seams.conf";
};

/// As above, plus the transitive rules (block-serve-loop, det-taint,
/// seam-config) over the cross-TU call graph (see reach.hpp).
std::vector<Finding> run_rules(const std::vector<SourceFile>& files,
                               const LayerConfig& layers,
                               const DeepConfig& deep);

/// Removes findings matched by a baseline entry (exact file:line:rule).
/// When `unused` is non-null it receives the entries that matched
/// nothing — a stale baseline that should be pruned.
std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const std::vector<BaselineEntry>& baseline,
                                    std::vector<BaselineEntry>* unused);

}  // namespace perspector::lint
