#include "lint/reach.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

namespace perspector::lint {

namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == Token::Kind::Identifier && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == Token::Kind::Punct && t.text == text;
}

constexpr const char* kBlockRule = "block-serve-loop";
constexpr const char* kTaintRule = "det-taint";
constexpr const char* kConfigRule = "seam-config";

std::vector<std::string> split_components(const std::string& name) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t sep = name.find("::", start);
    if (sep == std::string::npos) {
      parts.push_back(name.substr(start));
      return parts;
    }
    parts.push_back(name.substr(start, sep - start));
    start = sep + 2;
  }
}

/// One marker: a blocking primitive or nondeterminism source in a body.
struct Marker {
  int line = 0;
  std::string what;
};

/// Markers that can stall the cooperative serve loop.
std::vector<Marker> blocking_markers(const LexedFile& file,
                                     const Function& fn) {
  std::vector<Marker> out;
  const auto& t = file.tokens;
  const std::size_t end = std::min(fn.body_end, t.size());
  for (std::size_t i = fn.body_begin; i < end; ++i) {
    if (t[i].kind != Token::Kind::Identifier) continue;
    const std::string& id = t[i].text;
    const bool call_next = i + 1 < end && is_punct(t[i + 1], "(");
    if (call_next &&
        (id == "fsync" || id == "fdatasync" || id == "msync" ||
         id == "usleep" || id == "nanosleep" || id == "fread" ||
         id == "fopen" || id == "freopen" || id == "popen" ||
         id == "sleep")) {
      out.push_back(Marker{t[i].line, id});
      continue;
    }
    if (id == "sleep_for" || id == "sleep_until") {
      out.push_back(Marker{t[i].line, id});
      continue;
    }
    if (id == "system" && call_next && i > fn.body_begin &&
        is_punct(t[i - 1], "::")) {
      out.push_back(Marker{t[i].line, "system"});
      continue;
    }
    if (id == "ifstream" || id == "ofstream" || id == "fstream") {
      out.push_back(Marker{t[i].line, id});
      continue;
    }
    // Global `::read(fd, ...)` / `::recv` / `::pread`: the one-token
    // qualifier distinguishes them from methods named read.
    if ((id == "read" || id == "recv" || id == "pread") && call_next &&
        i > fn.body_begin && is_punct(t[i - 1], "::") &&
        (i < 2 || t[i - 2].kind != Token::Kind::Identifier)) {
      out.push_back(Marker{t[i].line, "::" + id});
    }
  }
  return out;
}

/// Markers that make an execution nondeterministic.
std::vector<Marker> nondet_markers(const LexedFile& file,
                                   const Function& fn) {
  std::vector<Marker> out;
  const auto& t = file.tokens;
  const std::size_t end = std::min(fn.body_end, t.size());
  for (std::size_t i = fn.body_begin; i < end; ++i) {
    if (t[i].kind != Token::Kind::Identifier) continue;
    const std::string& id = t[i].text;
    const bool call_next = i + 1 < end && is_punct(t[i + 1], "(");
    if (call_next && (id == "rand" || id == "srand" || id == "rand_r" ||
                      id == "get_id")) {
      out.push_back(Marker{t[i].line, id});
      continue;
    }
    if (id == "random_device") {
      out.push_back(Marker{t[i].line, id});
      continue;
    }
    if (id == "clock_gettime" || id == "gettimeofday") {
      out.push_back(Marker{t[i].line, id});
      continue;
    }
    if ((id == "steady_clock" || id == "system_clock" ||
         id == "high_resolution_clock") &&
        i + 2 < end && is_punct(t[i + 1], "::") && is_ident(t[i + 2], "now")) {
      out.push_back(Marker{t[i].line, id + "::now"});
      continue;
    }
    // Pointer hashing: std::hash<T*> — iteration/grouping by address.
    if (id == "hash" && i + 1 < end && is_punct(t[i + 1], "<")) {
      int depth = 1;
      for (std::size_t j = i + 2; j < std::min(end, i + 16) && depth > 0;
           ++j) {
        if (is_punct(t[j], "<")) ++depth;
        if (is_punct(t[j], ">")) --depth;
        if (is_punct(t[j], "*")) {
          out.push_back(Marker{t[i].line, "hash<T*>"});
          break;
        }
      }
    }
  }
  for (const auto& [line, var] : fn.unordered_uses) {
    out.push_back(Marker{line, var + " (unordered container)"});
  }
  return out;
}

/// Readable function name: the repo namespace prefix adds no signal.
std::string short_name(const std::string& qualified) {
  static const std::string kPrefix = "perspector::";
  if (qualified.compare(0, kPrefix.size(), kPrefix) == 0) {
    return qualified.substr(kPrefix.size());
  }
  return qualified;
}

class ReachChecker {
 public:
  ReachChecker(const std::vector<LexedFile>& files, const SymbolTable& table,
               const CallGraph& graph, const SeamConfig& seams,
               const std::string& seams_path, std::vector<Finding>& findings)
      : files_(files),
        table_(table),
        graph_(graph),
        seams_(seams),
        seams_path_(seams_path),
        findings_(findings) {}

  void run() {
    check_rule(kBlockRule, blocking_markers,
               "can block the cooperative serve loop");
    check_rule(kTaintRule, nondet_markers,
               "taints scoring with nondeterminism");
    check_annotations();
  }

 private:
  /// Does file-level metadata `map` mark rule `rule` on the function's
  /// definition line or the line above it?
  static bool marked(const std::map<int, std::set<std::string>>& map,
                     int line, const std::string& rule) {
    for (const int l : {line, line - 1}) {
      const auto it = map.find(l);
      if (it != map.end() && it->second.count(rule)) return true;
    }
    return false;
  }

  bool fn_has_seam(const Function& fn, const std::string& rule) const {
    return marked(files_[fn.file_index].seams, fn.line, rule);
  }
  bool fn_has_allow(const Function& fn, const std::string& rule) const {
    return marked(files_[fn.file_index].allows, fn.line, rule);
  }
  bool line_allowed(const LexedFile& f, int line,
                    const std::string& rule) const {
    return marked(f.allows, line, rule);
  }

  void check_rule(const std::string& rule,
                  std::vector<Marker> (*markers)(const LexedFile&,
                                                 const Function&),
                  const std::string& consequence) {
    // Resolve conf entries for this rule; stale entries are findings.
    std::vector<std::size_t> roots;
    std::set<std::size_t> seam_fns;
    for (const SeamEntry& entry : seams_.entries) {
      if (entry.rule != rule) continue;
      bool matched = false;
      for (std::size_t i = 0; i < table_.functions.size(); ++i) {
        const Function& fn = table_.functions[i];
        if (!fn.defined || !pattern_matches(entry.pattern, fn.qualified)) {
          continue;
        }
        matched = true;
        if (entry.is_root) {
          roots.push_back(i);
        } else {
          seam_fns.insert(i);
          // A declared seam must carry the code-side annotation too.
          if (!fn_has_seam(fn, rule)) {
            findings_.push_back(Finding{
                fn.file, fn.line, kConfigRule,
                "'" + short_name(fn.qualified) + "' is a declared " + rule +
                    " seam (seams.conf:" + std::to_string(entry.line) +
                    ") but its definition lacks a lint:seam(" + rule +
                    ") annotation"});
          }
        }
      }
      if (!matched) {
        findings_.push_back(Finding{
            seams_path_, entry.line, kConfigRule,
            "stale seams.conf entry: pattern '" + entry.pattern +
                "' matches no function definition"});
      }
    }
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());

    // BFS from the roots; seams and allow-marked functions bound the
    // traversal (an allow on the function suppresses its whole subtree).
    std::map<std::size_t, std::size_t> parent;
    std::set<std::size_t> visited;
    std::deque<std::size_t> queue;
    for (const std::size_t r : roots) {
      if (fn_has_allow(table_.functions[r], rule)) continue;
      if (visited.insert(r).second) queue.push_back(r);
    }
    while (!queue.empty()) {
      const std::size_t cur = queue.front();
      queue.pop_front();
      for (const CallEdge& e : graph_.edges[cur]) {
        if (visited.count(e.callee)) continue;
        const Function& callee = table_.functions[e.callee];
        if (seam_fns.count(e.callee)) continue;
        if (fn_has_allow(callee, rule)) continue;
        visited.insert(e.callee);
        parent.emplace(e.callee, cur);
        queue.push_back(e.callee);
      }
    }

    // Scan every reached body for markers.
    std::set<std::tuple<std::string, int, std::string>> emitted;
    for (const std::size_t i : visited) {
      const Function& fn = table_.functions[i];
      const LexedFile& file = files_[fn.file_index];
      for (const Marker& m : markers(file, fn)) {
        if (line_allowed(file, m.line, rule)) continue;
        if (!emitted.emplace(fn.file, m.line, m.what).second) continue;
        findings_.push_back(Finding{fn.file, m.line, rule,
                                    "'" + m.what + "' " + consequence +
                                        "; path: " + render_path(i, parent)});
      }
    }
  }

  std::string render_path(std::size_t fn,
                          const std::map<std::size_t, std::size_t>& parent)
      const {
    std::vector<std::string> chain;
    std::size_t cur = fn;
    while (true) {
      chain.push_back(short_name(table_.functions[cur].qualified));
      const auto it = parent.find(cur);
      if (it == parent.end()) break;
      cur = it->second;
    }
    std::reverse(chain.begin(), chain.end());
    std::string out;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (i > 0) out += " -> ";
      out += chain[i];
    }
    return out;
  }

  /// Every lint:seam annotation must name a known transitive rule and be
  /// matched by a seams.conf entry — one-sided seams are findings.
  void check_annotations() {
    for (const LexedFile& f : files_) {
      for (const auto& [line, rules] : f.seams) {
        for (const std::string& rule : rules) {
          if (rule != kBlockRule && rule != kTaintRule) {
            findings_.push_back(Finding{
                f.path, line, kConfigRule,
                "lint:seam names unknown rule '" + rule +
                    "' (transitive rules: block-serve-loop, det-taint)"});
            continue;
          }
          // The annotated function: defined on this line or the next.
          const Function* fn = nullptr;
          for (const Function& cand : table_.functions) {
            if (cand.defined && cand.file == f.path &&
                (cand.line == line || cand.line == line + 1)) {
              fn = &cand;
              break;
            }
          }
          if (fn == nullptr) {
            findings_.push_back(
                Finding{f.path, line, kConfigRule,
                        "lint:seam(" + rule +
                            ") is not attached to a function definition"});
            continue;
          }
          bool in_conf = false;
          for (const SeamEntry& entry : seams_.entries) {
            if (!entry.is_root && entry.rule == rule &&
                pattern_matches(entry.pattern, fn->qualified)) {
              in_conf = true;
              break;
            }
          }
          if (!in_conf) {
            findings_.push_back(Finding{
                f.path, line, kConfigRule,
                "lint:seam(" + rule + ") on '" + short_name(fn->qualified) +
                    "' has no matching seam entry in " + seams_path_});
          }
        }
      }
    }
  }

  const std::vector<LexedFile>& files_;
  const SymbolTable& table_;
  const CallGraph& graph_;
  const SeamConfig& seams_;
  const std::string& seams_path_;
  std::vector<Finding>& findings_;
};

}  // namespace

SeamConfig parse_seams(const std::string& text, const std::string& path,
                       std::vector<Finding>& findings) {
  SeamConfig config;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string kind, rule, pattern, extra;
    if (!(fields >> kind)) continue;  // blank
    fields >> rule >> pattern;
    if ((kind != "root" && kind != "seam") || rule.empty() ||
        pattern.empty() || (fields >> extra)) {
      findings.push_back(Finding{
          path, line_no, "seam-config",
          "malformed line (expected: root|seam <rule> <pattern>)"});
      continue;
    }
    config.entries.push_back(
        SeamEntry{kind == "root", rule, pattern, line_no});
  }
  return config;
}

bool pattern_matches(const std::string& pattern,
                     const std::string& qualified) {
  std::vector<std::string> want = split_components(pattern);
  const std::vector<std::string> have = split_components(qualified);
  const bool wildcard = !want.empty() && want.back() == "*";
  if (wildcard) want.pop_back();
  if (want.empty() || want.size() > have.size()) return false;
  if (!wildcard) {
    // Component-suffix match aligned to the end of the qualified name.
    return std::equal(want.begin(), want.end(),
                      have.end() - static_cast<std::ptrdiff_t>(want.size()));
  }
  // `Class::*`: the components appear consecutively with at least one
  // component (the method name) after them.
  for (std::size_t start = 0; start + want.size() < have.size(); ++start) {
    if (std::equal(want.begin(), want.end(),
                   have.begin() + static_cast<std::ptrdiff_t>(start))) {
      return true;
    }
  }
  return false;
}

void run_reach_rules(const std::vector<LexedFile>& files,
                     const SymbolTable& table, const CallGraph& graph,
                     const SeamConfig& seams, const std::string& seams_path,
                     std::vector<Finding>& findings) {
  ReachChecker(files, table, graph, seams, seams_path, findings).run();
}

}  // namespace perspector::lint
