#include "lint/symbols.hpp"

#include <algorithm>

namespace perspector::lint {

namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == Token::Kind::Identifier && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == Token::Kind::Punct && t.text == text;
}

/// Keywords that look like calls when followed by '(' but are not.
const std::set<std::string>& call_keywords() {
  static const std::set<std::string> kKeywords = {
      "if",       "while",    "for",          "switch",  "return",
      "sizeof",   "alignof",  "alignas",      "decltype", "typeid",
      "catch",    "throw",    "new",          "delete",  "static_assert",
      "noexcept", "case",     "co_return",    "co_await", "co_yield",
      "requires", "explicit", "static_cast",  "const_cast",
      "dynamic_cast", "reinterpret_cast", "defined"};
  return kKeywords;
}

/// Type/declaration keywords that must not be mistaken for type names
/// when inferring a declared variable's type.
const std::set<std::string>& type_keywords() {
  static const std::set<std::string> kKeywords = {
      "const",    "constexpr", "constinit", "static",   "inline",
      "mutable",  "volatile",  "register",  "extern",   "thread_local",
      "typename", "struct",    "class",     "union",    "enum",
      "unsigned", "signed",    "long",      "short",    "friend",
      "virtual",  "explicit",  "using",     "typedef",  "return",
      "new",      "throw",     "operator",  "template", "public",
      "private",  "protected", "if",        "while",    "for",
      "switch",   "case",      "else",      "do",       "goto",
      "co_return", "co_await", "sizeof",    "delete",   "namespace"};
  return kKeywords;
}

const std::set<std::string>& unordered_types() {
  static const std::set<std::string> kTypes = {"unordered_map",
                                               "unordered_set",
                                               "unordered_multimap",
                                               "unordered_multiset"};
  return kTypes;
}

/// Joins non-empty name components with "::".
std::string join_qualified(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (p.empty()) continue;
    if (!out.empty()) out += "::";
    out += p;
  }
  return out;
}

/// Walks one file's token stream, growing the symbol table. Run twice:
/// pass 1 collects classes tree-wide, pass 2 (with classes complete)
/// collects function definitions, call sites, and typed-variable uses.
class FileScanner {
 public:
  FileScanner(const LexedFile& file, int file_index, SymbolTable& table,
              bool collect_classes, bool collect_functions)
      : file_(file),
        file_index_(file_index),
        table_(table),
        collect_classes_(collect_classes),
        collect_functions_(collect_functions) {}

  void run() {
    const auto& t = file_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind == Token::Kind::Punct) {
        const std::string& p = t[i].text;
        if (p == ";") {
          on_statement_end(i);
          stmt_start_ = i + 1;
          continue;
        }
        if (p == "{") {
          on_open_brace(i);
          continue;
        }
        if (p == "}") {
          on_close_brace(i);
          continue;
        }
      }
      if (collect_functions_ && current_func_ != kNone &&
          t[i].kind == Token::Kind::Identifier) {
        scan_body_identifier(i);
      }
    }
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  struct Frame {
    enum class Kind { Namespace, Type, Func, Other };
    Kind kind = Kind::Other;
    std::string name;              // namespace path piece or class name
    std::string class_qualified;   // Type frames: key into table_.classes
    std::size_t func_index = kNone;  // Func frames
    std::size_t saved_stmt_start = 0;
    std::size_t saved_func = kNone;
  };

  const Token& tok(std::size_t i) const { return file_.tokens[i]; }

  bool in_function_or_block() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Frame::Kind::Func || it->kind == Frame::Kind::Other) {
        return true;
      }
      if (it->kind == Frame::Kind::Type ||
          it->kind == Frame::Kind::Namespace) {
        return false;
      }
    }
    return false;
  }

  /// Innermost Type frame not separated by a Func frame (the class whose
  /// member declarations we are reading).
  const Frame* enclosing_type() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Frame::Kind::Type) return &*it;
      if (it->kind == Frame::Kind::Func) return nullptr;
    }
    return nullptr;
  }

  std::vector<std::string> namespace_path() const {
    std::vector<std::string> parts;
    for (const Frame& f : stack_) {
      if (f.kind == Frame::Kind::Namespace && !f.name.empty()) {
        parts.push_back(f.name);
      }
      if (f.kind == Frame::Kind::Type && !f.name.empty()) {
        parts.push_back(f.name);
      }
    }
    return parts;
  }

  bool in_anonymous_namespace() const {
    return std::any_of(stack_.begin(), stack_.end(), [](const Frame& f) {
      return f.kind == Frame::Kind::Namespace && f.name.empty();
    });
  }

  // -- statement-head helpers -----------------------------------------------

  /// The head [stmt_start_, end) classified the way the brace tracker
  /// needs: does it start a namespace, a type, or a function?
  bool head_has(std::size_t end, const char* kw) const {
    for (std::size_t k = stmt_start_; k < end; ++k) {
      if (is_ident(tok(k), kw)) return true;
    }
    return false;
  }

  /// Index of the parameter-list '(' in [stmt_start_, end), or kNone.
  /// Angle-bracket depth is tracked so template arguments (which may
  /// contain parentheses, e.g. std::function<void()>) are skipped.
  std::size_t find_param_paren(std::size_t end) const {
    int angle = 0;
    for (std::size_t k = stmt_start_; k < end; ++k) {
      const Token& t = tok(k);
      if (t.kind == Token::Kind::Punct) {
        if (t.text == "<") {
          // '<' opens template args only after a name or another '>'.
          if (k > stmt_start_ &&
              (tok(k - 1).kind == Token::Kind::Identifier ||
               is_punct(tok(k - 1), ">"))) {
            ++angle;
          }
        } else if (t.text == ">" && angle > 0) {
          --angle;
        } else if (t.text == ">>" && angle > 0) {
          angle = angle >= 2 ? angle - 2 : 0;
        } else if (t.text == "(" && angle == 0) {
          // The parameter paren follows the function's name token (an
          // identifier, or the symbol of an operator function).
          if (k > stmt_start_ &&
              (tok(k - 1).kind == Token::Kind::Identifier ||
               (tok(k - 1).kind == Token::Kind::Punct &&
                k >= 2 && is_ident(tok(k - 2), "operator")) ||
               is_ident(tok(k - 1), "operator"))) {
            return k;
          }
          return kNone;  // grouping paren: not a declarator we handle
        }
      }
    }
    return kNone;
  }

  /// Matching ')' for the '(' at `open` (token indices), or kNone.
  std::size_t match_paren(std::size_t open, std::size_t limit) const {
    int depth = 0;
    for (std::size_t k = open; k < limit; ++k) {
      if (is_punct(tok(k), "(")) ++depth;
      if (is_punct(tok(k), ")")) {
        if (--depth == 0) return k;
      }
    }
    return kNone;
  }

  /// Reads the declarator name ending just before `paren`: the name
  /// itself (identifier, ~dtor, operator symbol) plus any A::B::
  /// qualifiers in front of it. Returns false if no name is present.
  bool read_declarator(std::size_t paren, std::string& name,
                       std::vector<std::string>& quals, int& line) const {
    std::size_t k = paren;  // token after the name, scanning backwards
    if (k == stmt_start_) return false;
    const Token& prev = tok(k - 1);
    if (prev.kind == Token::Kind::Identifier) {
      if (prev.text == "operator") {
        name = "operator()";  // `operator()(...)` — paren follows directly
        line = prev.line;
        k -= 1;
      } else {
        name = prev.text;
        line = prev.line;
        k -= 1;
        // operator name? `operator ==` lexes as Ident(operator) Punct(==).
        if (k > stmt_start_ && is_ident(tok(k - 1), "operator")) {
          return false;  // `operator int()` conversions: skip entirely
        }
      }
    } else if (prev.kind == Token::Kind::Punct) {
      // Operator function: collect the symbol tokens back to `operator`.
      std::string sym;
      std::size_t j = k;
      while (j > stmt_start_ && tok(j - 1).kind == Token::Kind::Punct &&
             tok(j - 1).text != ")" && tok(j - 1).text != "]") {
        sym = tok(j - 1).text + sym;
        --j;
      }
      if (j == stmt_start_ || !is_ident(tok(j - 1), "operator")) return false;
      name = "operator" + sym;
      line = tok(j - 1).line;
      k = j - 1;
    } else {
      return false;
    }
    // Destructor tilde.
    if (k > stmt_start_ && is_punct(tok(k - 1), "~")) {
      name = "~" + name;
      k -= 1;
    }
    // Qualifiers: Ident :: Ident :: name
    while (k >= stmt_start_ + 2 && is_punct(tok(k - 1), "::") &&
           tok(k - 2).kind == Token::Kind::Identifier) {
      quals.insert(quals.begin(), tok(k - 2).text);
      k -= 2;
    }
    if (call_keywords().count(name) || type_keywords().count(name)) {
      return false;
    }
    return true;
  }

  /// Infers a declared variable's type by scanning backwards from the
  /// variable name at `var` (skipping &, *, and balanced <...>). Returns
  /// "" when no plausible type name precedes it.
  std::string type_before(std::size_t var) const {
    std::size_t k = var;
    while (k > 0) {
      const Token& p = tok(k - 1);
      if (is_punct(p, "&") || is_punct(p, "*") || is_punct(p, "&&")) {
        --k;
        continue;
      }
      if (is_punct(p, ">") || is_punct(p, ">>")) {
        // Skip balanced template arguments backwards, remembering the
        // last identifier inside them (the pointee of a smart pointer).
        const std::size_t args_end = k - 1;
        int depth = p.text == ">>" ? 2 : 1;
        --k;
        while (k > 0 && depth > 0) {
          const Token& q = tok(k - 1);
          if (is_punct(q, ">")) ++depth;
          if (is_punct(q, ">>")) depth += 2;
          if (is_punct(q, "<")) --depth;
          --k;
        }
        // `std::unique_ptr<jobs::Scheduler> jobs_` declares a Scheduler
        // for resolution purposes: unwrap the wrapper one level.
        if (k > 0 && tok(k - 1).kind == Token::Kind::Identifier) {
          const std::string& outer = tok(k - 1).text;
          if (outer == "unique_ptr" || outer == "shared_ptr" ||
              outer == "weak_ptr" || outer == "optional") {
            std::string inner;
            int d = 0;
            for (std::size_t j = k; j < args_end; ++j) {
              if (is_punct(tok(j), "<")) ++d;
              if (is_punct(tok(j), ">")) --d;
              if (is_punct(tok(j), ",") && d == 1) break;
              if (d >= 1 && tok(j).kind == Token::Kind::Identifier) {
                inner = tok(j).text;
              }
            }
            if (!inner.empty()) return inner;
          }
        }
        continue;
      }
      if (p.kind == Token::Kind::Identifier) {
        if (p.text == "auto") return "auto";
        if (type_keywords().count(p.text)) {
          --k;  // e.g. `const X& v` — keep walking to reach X
          continue;
        }
        // `a.b(...)` receivers and `a->b` are not declarations.
        if (k >= 2 && (is_punct(tok(k - 2), ".") ||
                       is_punct(tok(k - 2), "->"))) {
          return std::string();
        }
        return p.text;
      }
      return std::string();
    }
    return std::string();
  }

  // -- class collection (pass 1) --------------------------------------------

  /// Parses `class X : public A, private b::B {` heads. Returns the
  /// class's unqualified name ("" = anonymous/unnamed).
  std::string parse_type_head(std::size_t brace,
                              std::vector<std::string>& bases) const {
    std::size_t kw = kNone;
    for (std::size_t k = stmt_start_; k < brace; ++k) {
      if (is_ident(tok(k), "class") || is_ident(tok(k), "struct") ||
          is_ident(tok(k), "union") || is_ident(tok(k), "enum")) {
        kw = k;  // last type keyword wins (`enum class X`)
      }
    }
    if (kw == kNone) return std::string();
    std::string name;
    std::size_t k = kw + 1;
    if (k < brace && tok(k).kind == Token::Kind::Identifier) {
      name = tok(k).text;
      ++k;
    }
    // Base clause: after ':', identifiers minus access keywords; keep the
    // last component of qualified names, skip template arguments.
    while (k < brace && !is_punct(tok(k), ":")) ++k;
    std::string last_ident;
    int angle = 0;
    for (++k; k < brace; ++k) {
      const Token& t = tok(k);
      if (is_punct(t, "<")) ++angle;
      if (is_punct(t, ">")) angle = angle > 0 ? angle - 1 : 0;
      if (angle > 0) continue;
      if (t.kind == Token::Kind::Identifier) {
        if (t.text == "public" || t.text == "protected" ||
            t.text == "private" || t.text == "virtual") {
          continue;
        }
        last_ident = t.text;
      } else if (is_punct(t, ",")) {
        if (!last_ident.empty()) bases.push_back(last_ident);
        last_ident.clear();
      }
    }
    if (!last_ident.empty()) bases.push_back(last_ident);
    return name;
  }

  /// Records one member declaration statement [stmt_start_, end) of the
  /// enclosing class: a method name (head contains a parameter paren) or
  /// a member variable with its inferred type.
  void on_class_member_statement(std::size_t end) {
    const Frame* type = enclosing_type();
    if (type == nullptr || type->class_qualified.empty()) return;
    auto it = table_.classes.find(type->class_qualified);
    if (it == table_.classes.end()) return;
    ClassInfo& cls = it->second;

    // Access labels don't end a statement (only ';' does), so the first
    // member after `private:` shares its statement with the label — skip
    // past any leading access specifiers instead of bailing.
    std::size_t start = stmt_start_;
    while (start + 1 < end && is_punct(tok(start + 1), ":") &&
           (is_ident(tok(start), "public") ||
            is_ident(tok(start), "private") ||
            is_ident(tok(start), "protected"))) {
      start += 2;
    }
    if (end <= start) return;
    const Token& first = tok(start);
    if (is_ident(first, "using") || is_ident(first, "typedef") ||
        is_ident(first, "static_assert") || is_ident(first, "template")) {
      return;
    }
    const std::size_t paren = find_param_paren(end);
    if (paren != kNone) {
      std::string name;
      std::vector<std::string> quals;
      int line = 0;
      if (read_declarator(paren, name, quals, line)) {
        cls.methods.insert(name);
      }
      return;
    }
    // Member variable: name is the identifier before ';', '=', or '{'.
    std::size_t name_at = kNone;
    for (std::size_t k = start; k < end; ++k) {
      if (is_punct(tok(k), "=") || is_punct(tok(k), "{")) break;
      if (tok(k).kind == Token::Kind::Identifier) name_at = k;
    }
    if (name_at == kNone || name_at == start) return;
    const std::string type_name = type_before(name_at);
    if (type_name.empty() || type_name == "auto") return;
    cls.member_types.emplace(tok(name_at).text, type_name);
  }

  // -- function collection (pass 2) -----------------------------------------

  /// Parameters of the function being created: [open+1, close) split at
  /// top-level commas, each contributing `var -> type`.
  void collect_params(std::size_t open, std::size_t close,
                      std::map<std::string, std::string>& locals) const {
    std::size_t seg_start = open + 1;
    int paren = 0, angle = 0;
    for (std::size_t k = open + 1; k <= close; ++k) {
      const Token& t = tok(k);
      const bool at_end = k == close;
      if (!at_end && t.kind == Token::Kind::Punct) {
        if (t.text == "(") ++paren;
        if (t.text == ")") --paren;
        if (t.text == "<") ++angle;
        if (t.text == ">") angle = angle > 0 ? angle - 1 : 0;
      }
      if (at_end || (is_punct(t, ",") && paren == 0 && angle == 0)) {
        // Segment [seg_start, k): the name is the last identifier before
        // any default-argument '='.
        std::size_t name_at = kNone;
        for (std::size_t j = seg_start; j < k; ++j) {
          if (is_punct(tok(j), "=")) break;
          if (tok(j).kind == Token::Kind::Identifier &&
              !type_keywords().count(tok(j).text)) {
            name_at = j;
          }
        }
        if (name_at != kNone && name_at > seg_start) {
          const std::string type_name = type_before(name_at);
          if (!type_name.empty()) {
            locals.emplace(tok(name_at).text, type_name);
          }
        }
        seg_start = k + 1;
      }
    }
  }

  /// Creates the Function for a definition whose body brace is at
  /// `brace` and whose parameter list is at [paren, paren_close].
  std::size_t create_function(std::size_t paren, std::size_t brace) {
    std::string name;
    std::vector<std::string> quals;
    int line = 0;
    if (!read_declarator(paren, name, quals, line)) return kNone;
    const std::size_t paren_close = match_paren(paren, brace);

    Function fn;
    fn.name = name;
    fn.file = file_.path;
    fn.file_index = file_index_;
    fn.line = line;
    fn.defined = true;
    fn.tu_local = in_anonymous_namespace();
    fn.body_begin = paren_close == kNone ? brace + 1 : paren_close + 1;

    // Class attribution: an enclosing Type frame (inline method), or a
    // qualifier naming a known class (out-of-class definition).
    std::vector<std::string> path = namespace_path();
    const Frame* type = enclosing_type();
    if (type != nullptr && !type->name.empty()) {
      fn.class_name = type->name;
    }
    for (const std::string& q : quals) path.push_back(q);
    if (fn.class_name.empty() && !quals.empty() &&
        table_.classes_by_name.count(quals.back())) {
      fn.class_name = quals.back();
    }
    // Constructors/destructors of a qualifier class: `Session::Session`.
    if (fn.class_name.empty() && !quals.empty() &&
        (name == quals.back() || name == "~" + quals.back())) {
      fn.class_name = quals.back();
    }
    path.push_back(name);
    fn.qualified = join_qualified(path);

    if (paren_close != kNone) {
      collect_params(paren, paren_close, locals_);
    }
    table_.functions.push_back(std::move(fn));
    return table_.functions.size() - 1;
  }

  /// Merged member-variable map of the current function's class and its
  /// transitive bases (for receiver-type and unordered-use inference).
  const std::map<std::string, std::string>& current_members() {
    if (members_cached_) return members_;
    members_cached_ = true;
    members_.clear();
    if (current_func_ == kNone) return members_;
    const std::string& cls = table_.functions[current_func_].class_name;
    if (cls.empty()) return members_;
    for (const std::string& c : table_.self_and_bases(cls)) {
      const auto it = table_.classes_by_name.find(c);
      if (it == table_.classes_by_name.end()) continue;
      for (const std::string& key : it->second) {
        const ClassInfo& info = table_.classes.at(key);
        for (const auto& [var, type] : info.member_types) {
          members_.emplace(var, type);
        }
      }
    }
    return members_;
  }

  /// Type of variable `v` as visible from the current function body.
  std::string var_type(const std::string& v) {
    const auto local = locals_.find(v);
    if (local != locals_.end()) return local->second;
    const auto& members = current_members();
    const auto member = members.find(v);
    if (member != members.end()) return member->second;
    return std::string();
  }

  /// One identifier inside a function body: record local declarations,
  /// call sites, and unordered-container uses.
  void scan_body_identifier(std::size_t i) {
    Function& fn = table_.functions[current_func_];
    const std::string& id = tok(i).text;
    const auto& t = file_.tokens;

    // Unordered-container use: a direct type token, or a variable whose
    // declared type is an unordered container.
    if (unordered_types().count(id)) {
      fn.unordered_uses.emplace_back(tok(i).line, id);
    } else {
      const std::string vt = var_type(id);
      if (!vt.empty() && unordered_types().count(vt)) {
        fn.unordered_uses.emplace_back(tok(i).line, id);
      }
    }

    // Local declaration: `Type [&*] name` followed by ; = , ( or {.
    if (i + 1 < t.size() && tok(i + 1).kind == Token::Kind::Punct) {
      const std::string& nx = tok(i + 1).text;
      if (nx == ";" || nx == "=" || nx == "," || nx == "(" || nx == "{") {
        const std::string type_name = type_before(i);
        if (!type_name.empty() && !call_keywords().count(id) &&
            !type_keywords().count(id)) {
          locals_.emplace(id, type_name);
          if (nx == "(") {
            // `Foo bar(args);` also calls Foo's constructor. Resolution
            // keeps the edge only if a constructor (or free function)
            // named `Foo` is actually defined somewhere.
            CallSite call;
            call.form = CallSite::Form::Free;
            call.name = type_name;
            call.line = tok(i).line;
            fn.calls.push_back(std::move(call));
            return;  // `bar` itself is a variable, not a callee
          }
        }
      }
    }

    // Call site: identifier followed by '(' (or by template args '<...>'
    // then '('), excluding keywords.
    if (call_keywords().count(id)) return;
    std::size_t after = i + 1;
    if (after < t.size() && is_punct(tok(after), "<")) {
      // Shallow balanced scan with a budget; bail on statement enders.
      int depth = 1;
      std::size_t k = after + 1;
      const std::size_t budget = std::min(t.size(), after + 64);
      while (k < budget && depth > 0) {
        const Token& q = tok(k);
        if (is_punct(q, "<")) ++depth;
        if (is_punct(q, ">")) --depth;
        if (is_punct(q, ">>")) depth -= 2;
        if (is_punct(q, ";") || is_punct(q, "{") || is_punct(q, "}")) break;
        ++k;
      }
      if (depth > 0) return;
      after = k;
    }
    if (after >= t.size() || !is_punct(tok(after), "(")) return;

    CallSite call;
    call.name = id;
    call.line = tok(i).line;
    if (i > 0 && is_punct(tok(i - 1), "::")) {
      call.form = CallSite::Form::Qualified;
      std::size_t k = i;
      while (k >= 2 && is_punct(tok(k - 1), "::") &&
             tok(k - 2).kind == Token::Kind::Identifier) {
        call.quals.insert(call.quals.begin(), tok(k - 2).text);
        k -= 2;
      }
    } else if (i > 0 &&
               (is_punct(tok(i - 1), ".") || is_punct(tok(i - 1), "->"))) {
      call.form = CallSite::Form::Member;
      if (i > 1) {
        const Token& recv = tok(i - 2);
        if (is_ident(recv, "this")) {
          call.receiver_type = table_.functions[current_func_].class_name;
          call.receiver_inferred = !call.receiver_type.empty();
        } else if (recv.kind == Token::Kind::Identifier) {
          const std::string vt = var_type(recv.text);
          if (!vt.empty() && vt != "auto") {
            call.receiver_type = vt;
            call.receiver_inferred = true;
          }
        }
      }
    } else {
      call.form = CallSite::Form::Free;
    }
    fn.calls.push_back(std::move(call));
  }

  // -- brace tracking --------------------------------------------------------

  void on_statement_end(std::size_t i) {
    if (collect_classes_ && !in_function_or_block() &&
        enclosing_type() != nullptr) {
      on_class_member_statement(i);
    }
  }

  void on_open_brace(std::size_t i) {
    Frame frame;
    frame.saved_stmt_start = stmt_start_;
    frame.saved_func = current_func_;

    if (in_function_or_block()) {
      // Inside a body: every brace (lambda, block, local class, init
      // list) folds into the enclosing function.
      frame.kind = Frame::Kind::Other;
      stack_.push_back(std::move(frame));
      stmt_start_ = i + 1;
      return;
    }
    // Initializer braces continue the current statement.
    const bool initializer =
        i > 0 && (is_punct(tok(i - 1), "=") || is_punct(tok(i - 1), ",") ||
                  is_punct(tok(i - 1), "(") || is_punct(tok(i - 1), "{") ||
                  is_ident(tok(i - 1), "return"));
    if (initializer) {
      frame.kind = Frame::Kind::Other;
      stack_.push_back(std::move(frame));
      stmt_start_ = i + 1;
      return;
    }

    bool has_type_kw = false, has_ns = false;
    for (std::size_t k = stmt_start_; k < i; ++k) {
      if (is_ident(tok(k), "namespace")) has_ns = true;
      if (is_ident(tok(k), "class") || is_ident(tok(k), "struct") ||
          is_ident(tok(k), "union") || is_ident(tok(k), "enum")) {
        has_type_kw = true;
      }
    }
    const std::size_t paren = find_param_paren(i);

    if (has_ns) {
      frame.kind = Frame::Kind::Namespace;
      // `namespace a::b {` — collect the full path as one frame name.
      std::vector<std::string> parts;
      for (std::size_t k = stmt_start_; k + 1 < i; ++k) {
        if (is_ident(tok(k), "namespace") || is_punct(tok(k), "::")) {
          if (k + 1 < i && tok(k + 1).kind == Token::Kind::Identifier) {
            parts.push_back(tok(k + 1).text);
          }
        }
      }
      frame.name = join_qualified(parts);
    } else if (has_type_kw && paren == kNone) {
      frame.kind = Frame::Kind::Type;
      std::vector<std::string> bases;
      frame.name = parse_type_head(i, bases);
      if (collect_classes_ && !frame.name.empty()) {
        std::vector<std::string> path = namespace_path();
        path.push_back(frame.name);
        frame.class_qualified = join_qualified(path);
        ClassInfo& cls = table_.classes[frame.class_qualified];
        if (cls.name.empty()) {
          cls.name = frame.name;
          cls.qualified = frame.class_qualified;
          cls.file = file_.path;
          cls.line = tok(i).line;
          cls.bases = std::move(bases);
          table_.classes_by_name[cls.name].push_back(cls.qualified);
        }
      } else if (!frame.name.empty()) {
        std::vector<std::string> path = namespace_path();
        path.push_back(frame.name);
        frame.class_qualified = join_qualified(path);
      }
    } else if (paren != kNone) {
      frame.kind = Frame::Kind::Func;
      if (collect_functions_) {
        locals_.clear();
        members_cached_ = false;
        frame.func_index = create_function(paren, i);
        current_func_ = frame.func_index;
        if (current_func_ != kNone) {
          // The linear walk already passed the tokens between the
          // parameter ')' and this '{' — the constructor initializer
          // list lives there, and `suite_(resolve_suite(spec))` is a
          // real call edge. Replay that range now that the function
          // exists.
          const std::size_t from =
              table_.functions[current_func_].body_begin;
          for (std::size_t k = from; k < i; ++k) {
            if (tok(k).kind == Token::Kind::Identifier) {
              scan_body_identifier(k);
            }
          }
        }
      }
      if (collect_classes_) {
        // An inline method definition also registers its name.
        on_class_member_statement(i);
      }
    } else {
      frame.kind = Frame::Kind::Other;
    }
    stack_.push_back(std::move(frame));
    stmt_start_ = i + 1;
  }

  void on_close_brace(std::size_t i) {
    if (stack_.empty()) {
      stmt_start_ = i + 1;
      return;
    }
    const Frame top = stack_.back();
    stack_.pop_back();
    if (top.kind == Frame::Kind::Func && top.func_index != kNone) {
      table_.functions[top.func_index].body_end = i + 1;
    }
    current_func_ = top.saved_func;
    if (current_func_ != kNone) {
      members_cached_ = false;  // re-derive for the resumed function
    }
    stmt_start_ = top.kind == Frame::Kind::Other ? top.saved_stmt_start
                                                 : i + 1;
  }

  const LexedFile& file_;
  const int file_index_;
  SymbolTable& table_;
  const bool collect_classes_;
  const bool collect_functions_;

  std::vector<Frame> stack_;
  std::size_t stmt_start_ = 0;
  std::size_t current_func_ = kNone;
  std::map<std::string, std::string> locals_;  // current function only
  std::map<std::string, std::string> members_;
  bool members_cached_ = false;
};

}  // namespace

std::set<std::string> SymbolTable::self_and_derived(
    const std::string& base) const {
  // Reverse edges: class -> classes that list it as a direct base.
  std::map<std::string, std::vector<std::string>> derived;
  for (const auto& [key, info] : classes) {
    for (const std::string& b : info.bases) {
      derived[b].push_back(info.name);
    }
  }
  std::set<std::string> out;
  std::vector<std::string> work{base};
  while (!work.empty()) {
    const std::string cls = work.back();
    work.pop_back();
    if (!out.insert(cls).second) continue;
    const auto it = derived.find(cls);
    if (it == derived.end()) continue;
    for (const std::string& d : it->second) work.push_back(d);
  }
  return out;
}

std::set<std::string> SymbolTable::self_and_bases(
    const std::string& cls) const {
  std::set<std::string> out;
  std::vector<std::string> work{cls};
  while (!work.empty()) {
    const std::string c = work.back();
    work.pop_back();
    if (!out.insert(c).second) continue;
    const auto it = classes_by_name.find(c);
    if (it == classes_by_name.end()) continue;
    for (const std::string& key : it->second) {
      for (const std::string& b : classes.at(key).bases) work.push_back(b);
    }
  }
  return out;
}

SymbolTable build_symbols(const std::vector<LexedFile>& files) {
  SymbolTable table;
  // Pass 1: classes tree-wide, so pass 2 can attribute out-of-class
  // definitions and infer member types across translation units.
  for (std::size_t i = 0; i < files.size(); ++i) {
    FileScanner(files[i], static_cast<int>(i), table,
                /*collect_classes=*/true, /*collect_functions=*/false)
        .run();
  }
  // Pass 2: functions, call sites, typed uses.
  for (std::size_t i = 0; i < files.size(); ++i) {
    FileScanner(files[i], static_cast<int>(i), table,
                /*collect_classes=*/false, /*collect_functions=*/true)
        .run();
  }
  for (std::size_t i = 0; i < table.functions.size(); ++i) {
    if (table.functions[i].defined) {
      table.defs_by_name[table.functions[i].name].push_back(i);
    }
  }
  return table;
}

std::string resolve_include(const std::string& includer,
                            const std::string& inc,
                            const std::set<std::string>& known_paths) {
  const std::size_t slash = includer.rfind('/');
  const std::string dir =
      slash == std::string::npos ? std::string() : includer.substr(0, slash);
  const std::string candidates[] = {dir + "/" + inc, inc, "src/" + inc,
                                    "tools/" + inc, "tests/" + inc};
  for (const std::string& c : candidates) {
    if (known_paths.count(c)) return c;
  }
  return "src/" + inc;
}

}  // namespace perspector::lint
