// perspector_lint reachability rules: the transitive layer on the call
// graph (DESIGN.md section 11). Two rule families run here:
//
//   block-serve-loop  from the declared serve-loop roots (session loop,
//                     job slices, router forwarding) no transitive path
//                     may reach a blocking primitive — fsync/fdatasync,
//                     sleep_*, file streams/fopen/fread, ::read, popen —
//                     except through a declared seam.
//   det-taint         from the declared scoring roots no transitive path
//                     may reach a nondeterminism source — rand/
//                     random_device, clock reads, thread::id, pointer
//                     hashing, or any use of an unordered container —
//                     except through a declared seam.
//
// Seams are the reviewed boundaries (checkpoint cadence, transport IO,
// observability timers). A seam is active only when BOTH sides agree:
// an entry in tools/lint/seams.conf AND a lint:seam comment — the
// marker, the rule in parentheses, then `: why` — on the function's
// definition line (or the line above).
// Any one-sided declaration is itself a finding (`seam-config`), so the
// conf file cannot drift from the code. A `lint:allow(rule)` on a
// function's definition suppresses the entire subtree beneath it, the
// same way a seam does — an allow on the seam function suppresses the
// whole path, not just one line.
//
// seams.conf format (order-insensitive, '#' comments):
//   root <rule> <pattern>   # reachability starts here
//   seam <rule> <pattern>   # traversal stops here (must be annotated)
// where <pattern> is a "::"-separated component suffix of the qualified
// function name (`serve::Session::run` matches
// `perspector::serve::Session::run`), or `Class::*` to cover every
// method of a class.
#pragma once

#include "lint/callgraph.hpp"
#include "lint/rules.hpp"

namespace perspector::lint {

struct SeamEntry {
  bool is_root = false;  // `root` vs `seam` line
  std::string rule;
  std::string pattern;
  int line = 0;  // in seams.conf, for stale-entry findings
};

struct SeamConfig {
  std::vector<SeamEntry> entries;
};

/// Parses seams.conf text. Malformed lines are reported as `seam-config`
/// findings against `path`.
SeamConfig parse_seams(const std::string& text, const std::string& path,
                       std::vector<Finding>& findings);

/// Does `pattern` match the qualified function name? Component-suffix
/// semantics; a trailing `::*` matches any method of the named class.
bool pattern_matches(const std::string& pattern,
                     const std::string& qualified);

/// Runs block-serve-loop, det-taint, and the seam-config consistency
/// checks over the resolved call graph. `seams_path` names the conf file
/// in stale-entry findings. Appends findings (unsorted; the caller sorts).
void run_reach_rules(const std::vector<LexedFile>& files,
                     const SymbolTable& table, const CallGraph& graph,
                     const SeamConfig& seams, const std::string& seams_path,
                     std::vector<Finding>& findings);

}  // namespace perspector::lint
