// perspector_lint lexer: a single-pass C++ tokenizer that is just smart
// enough for rule checking — it strips comments, string/char literals
// (including raw strings), and preprocessor lines, yielding a clean token
// stream plus the side tables the rules need: the `#include` list, header
// guard detection, and `lint:allow(<rule-id>)` suppression comments.
//
// This is deliberately NOT a conforming C++ lexer (no trigraphs, no UCNs,
// no digit separators beyond skipping them) — the rules only need
// identifiers, punctuation, and accurate line numbers, and the repo's own
// style keeps the corner cases out of reach. No libclang dependency.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace perspector::lint {

struct Token {
  enum class Kind { Identifier, Number, Punct, String, Char };
  Kind kind = Kind::Punct;
  std::string text;  // literal contents are dropped: String/Char are empty
  int line = 0;      // 1-based
};

struct Include {
  std::string path;  // text between the delimiters, as written
  bool angled = false;
  int line = 0;
};

/// One lexed translation unit (or header). `allows` maps a line number to
/// the set of rule ids suppressed there via `lint:allow(a, b)` comments;
/// a block comment contributes to the line it starts on. `seams` is the
/// same for lint:seam annotations — `lint:seam` + parenthesized rule +
/// `: why` — which declare a function as a reviewed boundary the
/// transitive rules stop at (the annotation must be paired with a
/// matching entry in tools/lint/seams.conf).
struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Include> includes;
  bool has_pragma_once = false;
  bool has_include_guard = false;  // leading #ifndef X / #define X pair
  std::map<int, std::set<std::string>> allows;
  std::map<int, std::set<std::string>> seams;
};

/// Lexes `text` (the file contents). `path` is carried through verbatim
/// and should be repo-relative with forward slashes.
LexedFile lex(const std::string& path, const std::string& text);

}  // namespace perspector::lint
