// perspector_lint symbol table: the cross-translation-unit layer on top
// of the lexer (DESIGN.md section 11). From each file's token stream it
// recovers just enough structure for call-graph construction:
//
//   * classes/structs with their base classes, member-variable types and
//     method names (pass 1, whole tree — out-of-class definitions in a
//     .cpp need the class shape from its header);
//   * function definitions with a stable qualified name
//     ("perspector::serve::Session::run"), the token range of their body
//     (constructor initializer lists included), and every call site in
//     that range, each with the receiver's *inferred* type where a
//     member/local/parameter declaration makes it inferable (pass 2);
//   * per-function uses of unordered containers, resolved through the
//     same type inference (a bare `pages_` token says nothing — its
//     declared `std::unordered_set` type does).
//
// Lambdas, nested blocks, and local classes all fold into the enclosing
// function: a call made inside a lambda IS a call the function can make,
// which is exactly the over-approximation the reachability rules want.
// This is deliberately not a C++ front end — overload sets collapse onto
// one name and templates are walked as ordinary tokens — the call-graph
// layer compensates by over-approximating resolution.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace perspector::lint {

/// One call site inside a function body.
struct CallSite {
  enum class Form {
    Free,       // f(...) — free function or unqualified method call
    Member,     // obj.f(...) / obj->f(...) / this->f(...)
    Qualified,  // A::B::f(...)
  };
  Form form = Form::Free;
  std::string name;                 // callee's unqualified name
  std::vector<std::string> quals;   // explicit qualifiers, outermost first
  std::string receiver_type;        // inferred class name; "" = unknown
  bool receiver_inferred = false;   // true when receiver_type is trustworthy
  int line = 0;
};

/// One function definition (or declaration when `defined` is false).
struct Function {
  std::string name;        // unqualified ("run", "~Session", "operator==")
  std::string qualified;   // namespace + class qualified ("a::B::run")
  std::string class_name;  // enclosing class, unqualified; "" = free
  std::string file;
  int file_index = -1;     // into the lexed-file vector given to build()
  int line = 0;            // line of the name token
  bool defined = false;    // has a body (vs a pure declaration)
  bool tu_local = false;   // anonymous namespace: callable same-file only
  std::size_t body_begin = 0;  // token range: after the parameter ')'
  std::size_t body_end = 0;    // one past the closing '}'
  std::vector<CallSite> calls;
  /// Uses of variables whose declared type is unordered_map/unordered_set
  /// (line, variable name) — the det-taint hash-iteration source.
  std::vector<std::pair<int, std::string>> unordered_uses;
};

/// One class/struct with what resolution needs.
struct ClassInfo {
  std::string name;       // unqualified
  std::string qualified;  // fully qualified
  std::string file;
  int line = 0;
  std::vector<std::string> bases;  // unqualified base-class names
  std::map<std::string, std::string> member_types;  // var -> type name
  std::set<std::string> methods;  // declared or defined method names
};

struct SymbolTable {
  std::vector<Function> functions;  // definitions first-class; decls too
  std::map<std::string, ClassInfo> classes;  // keyed by qualified name
  /// Unqualified function name -> indices into `functions` (defs only).
  std::map<std::string, std::vector<std::size_t>> defs_by_name;
  /// Unqualified class name -> qualified keys (usually one).
  std::map<std::string, std::vector<std::string>> classes_by_name;

  /// All classes transitively derived from `base` (unqualified name),
  /// plus `base` itself — the virtual-dispatch over-approximation set.
  std::set<std::string> self_and_derived(const std::string& base) const;

  /// `cls` and all its transitive bases (unqualified names).
  std::set<std::string> self_and_bases(const std::string& cls) const;
};

/// Builds the table from every lexed file (two passes; see file comment).
SymbolTable build_symbols(const std::vector<LexedFile>& files);

/// Resolves a quoted include against the walked file set (the same
/// candidate order the layering rule uses): includer-relative, verbatim,
/// then rooted at src/, tools/, tests/. Falls back to "src/" + inc for
/// unresolved paths so in-memory fixtures still rank-check.
std::string resolve_include(const std::string& includer,
                            const std::string& inc,
                            const std::set<std::string>& known_paths);

}  // namespace perspector::lint
