// perspector_lint: walks src/, tools/, bench/, and tests/ under --root,
// runs the determinism / layering / parallel-safety / hygiene rules
// (see rules.hpp), subtracts the baseline, and prints surviving findings
// as `file:line: rule-id: message`. Exit 0 = clean, 1 = findings,
// 2 = usage or I/O error. The walk and the output are fully sorted — the
// linter itself honors the determinism policy it enforces.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/config.hpp"
#include "lint/rules.hpp"

namespace fs = std::filesystem;
using perspector::lint::BaselineEntry;
using perspector::lint::Finding;
using perspector::lint::LayerConfig;
using perspector::lint::SourceFile;

namespace {

int usage(std::ostream& out, int exit_code) {
  out << "usage: perspector_lint [--root DIR] [--layers FILE]\n"
         "                       [--baseline FILE] [paths...]\n"
         "\n"
         "Static checks for the determinism, layering, and parallel-safety\n"
         "invariants (DESIGN.md section 11). With no explicit paths, walks\n"
         "src/, tools/, bench/, and tests/ under --root (default: .).\n"
         "--layers defaults to <root>/tools/lint/layers.conf and\n"
         "--baseline to <root>/tools/lint/baseline.txt (missing baseline ==\n"
         "empty). Suppress one finding with a `// lint:allow(rule-id): why`\n"
         "comment on its line or the line above.\n";
  return exit_code;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + p.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Path of `p` relative to `root`, forward slashes.
std::string rel_path(const fs::path& root, const fs::path& p) {
  return fs::relative(p, root).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string layers_file, baseline_file;
  std::vector<std::string> explicit_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "perspector_lint: " << arg << " expects a value\n";
        std::exit(usage(std::cerr, 2));
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = value();
    } else if (arg == "--layers") {
      layers_file = value();
    } else if (arg == "--baseline") {
      baseline_file = value();
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "perspector_lint: unknown flag " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      explicit_paths.push_back(arg);
    }
  }

  try {
    if (layers_file.empty()) {
      layers_file = (root / "tools/lint/layers.conf").string();
    }
    if (baseline_file.empty()) {
      baseline_file = (root / "tools/lint/baseline.txt").string();
    }

    // Collect files: explicit paths verbatim, else the standard walk.
    std::vector<fs::path> paths;
    if (!explicit_paths.empty()) {
      for (const std::string& p : explicit_paths) paths.emplace_back(p);
    } else {
      for (const char* dir : {"src", "tools", "bench", "tests"}) {
        const fs::path base = root / dir;
        if (!fs::exists(base)) continue;
        for (const auto& entry : fs::recursive_directory_iterator(base)) {
          if (entry.is_regular_file() && lintable(entry.path())) {
            paths.push_back(entry.path());
          }
        }
      }
    }
    std::sort(paths.begin(), paths.end());

    std::vector<SourceFile> files;
    files.reserve(paths.size());
    for (const fs::path& p : paths) {
      files.push_back(SourceFile{rel_path(root, p), slurp(p)});
    }

    const LayerConfig layers = perspector::lint::parse_layers(
        fs::exists(layers_file) ? slurp(layers_file) : std::string());
    if (layers.empty()) {
      std::cerr << "perspector_lint: warning: no layer table (" << layers_file
                << "); layer-order checks are off\n";
    }
    std::vector<BaselineEntry> baseline;
    if (fs::exists(baseline_file)) {
      baseline = perspector::lint::parse_baseline(slurp(baseline_file));
    }

    std::vector<Finding> findings =
        perspector::lint::run_rules(files, layers);
    const std::size_t raw = findings.size();
    std::vector<BaselineEntry> unused;
    findings = perspector::lint::apply_baseline(std::move(findings), baseline,
                                                &unused);
    for (const BaselineEntry& e : unused) {
      std::cerr << "perspector_lint: warning: stale baseline entry " << e.file
                << ":" << e.line << ": " << e.rule << "\n";
    }
    for (const Finding& f : findings) {
      std::cout << perspector::lint::to_string(f) << "\n";
    }
    std::cerr << "perspector_lint: " << files.size() << " files, "
              << findings.size() << " finding(s)";
    if (raw != findings.size()) {
      std::cerr << " (" << raw - findings.size() << " baselined)";
    }
    std::cerr << "\n";
    return findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "perspector_lint: " << e.what() << "\n";
    return 2;
  }
}
