// perspector_lint: walks src/, tools/, bench/, and tests/ under --root,
// runs the determinism / layering / parallel-safety / hygiene rules plus
// (by default) the cross-TU transitive rules block-serve-loop and
// det-taint (see rules.hpp, reach.hpp), subtracts the baseline, and
// prints surviving findings as `file:line: rule-id: message`. Exit 0 =
// clean, 1 = findings, 2 = usage or I/O error. The walk and the output
// are fully sorted — the linter itself honors the determinism policy it
// enforces.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/callgraph.hpp"
#include "lint/config.hpp"
#include "lint/rules.hpp"

namespace fs = std::filesystem;
using perspector::lint::BaselineEntry;
using perspector::lint::Finding;
using perspector::lint::LayerConfig;
using perspector::lint::SourceFile;

namespace {

int usage(std::ostream& out, int exit_code) {
  out << "usage: perspector_lint [--root DIR] [--layers FILE]\n"
         "                       [--baseline FILE] [--seams FILE]\n"
         "                       [--no-deep] [--dump-callgraph FILE]\n"
         "                       [--stale-baseline-error] [paths...]\n"
         "\n"
         "Static checks for the determinism, layering, and parallel-safety\n"
         "invariants (DESIGN.md section 11). With no explicit paths, walks\n"
         "src/, tools/, bench/, and tests/ under --root (default: .).\n"
         "--layers defaults to <root>/tools/lint/layers.conf, --baseline to\n"
         "<root>/tools/lint/baseline.txt (missing baseline == empty), and\n"
         "--seams to <root>/tools/lint/seams.conf (roots and reviewed\n"
         "boundaries for the cross-TU block-serve-loop / det-taint rules;\n"
         "--no-deep skips those rules for a fast lexical-only pass).\n"
         "--dump-callgraph writes the resolved cross-TU call graph as\n"
         "deterministic JSON. --stale-baseline-error promotes baseline\n"
         "entries that no longer match anything from a warning to exit 1.\n"
         "Suppress one finding with a `// lint:allow(rule-id): why`\n"
         "comment on its line or the line above; an allow on a function\n"
         "definition suppresses the transitive rules for its whole subtree.\n";
  return exit_code;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + p.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Path of `p` relative to `root`, forward slashes.
std::string rel_path(const fs::path& root, const fs::path& p) {
  return fs::relative(p, root).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string layers_file, baseline_file, seams_file, callgraph_file;
  bool deep = true;
  bool stale_baseline_error = false;
  std::vector<std::string> explicit_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "perspector_lint: " << arg << " expects a value\n";
        std::exit(usage(std::cerr, 2));
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = value();
    } else if (arg == "--layers") {
      layers_file = value();
    } else if (arg == "--baseline") {
      baseline_file = value();
    } else if (arg == "--seams") {
      seams_file = value();
    } else if (arg == "--no-deep") {
      deep = false;
    } else if (arg == "--dump-callgraph") {
      callgraph_file = value();
    } else if (arg == "--stale-baseline-error") {
      stale_baseline_error = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "perspector_lint: unknown flag " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      explicit_paths.push_back(arg);
    }
  }

  try {
    if (layers_file.empty()) {
      layers_file = (root / "tools/lint/layers.conf").string();
    }
    if (baseline_file.empty()) {
      baseline_file = (root / "tools/lint/baseline.txt").string();
    }
    if (seams_file.empty()) {
      seams_file = (root / "tools/lint/seams.conf").string();
    }

    // Collect files: explicit paths verbatim, else the standard walk.
    std::vector<fs::path> paths;
    if (!explicit_paths.empty()) {
      for (const std::string& p : explicit_paths) paths.emplace_back(p);
    } else {
      for (const char* dir : {"src", "tools", "bench", "tests"}) {
        const fs::path base = root / dir;
        if (!fs::exists(base)) continue;
        for (const auto& entry : fs::recursive_directory_iterator(base)) {
          if (entry.is_regular_file() && lintable(entry.path())) {
            paths.push_back(entry.path());
          }
        }
      }
    }
    std::sort(paths.begin(), paths.end());

    std::vector<SourceFile> files;
    files.reserve(paths.size());
    for (const fs::path& p : paths) {
      files.push_back(SourceFile{rel_path(root, p), slurp(p)});
    }

    const LayerConfig layers = perspector::lint::parse_layers(
        fs::exists(layers_file) ? slurp(layers_file) : std::string());
    if (layers.empty()) {
      std::cerr << "perspector_lint: warning: no layer table (" << layers_file
                << "); layer-order checks are off\n";
    }
    std::vector<BaselineEntry> baseline;
    if (fs::exists(baseline_file)) {
      baseline = perspector::lint::parse_baseline(slurp(baseline_file));
    }

    std::vector<Finding> findings;
    if (deep) {
      perspector::lint::DeepConfig deep_config;
      deep_config.seams_path = "tools/lint/seams.conf";
      if (fs::exists(seams_file)) {
        deep_config.seams_text = slurp(seams_file);
      } else {
        std::cerr << "perspector_lint: warning: no seams table (" << seams_file
                  << "); transitive rules run with no roots\n";
      }
      findings = perspector::lint::run_rules(files, layers, deep_config);
    } else {
      findings = perspector::lint::run_rules(files, layers);
    }

    if (!callgraph_file.empty()) {
      std::vector<perspector::lint::LexedFile> lexed;
      lexed.reserve(files.size());
      for (const SourceFile& f : files) {
        lexed.push_back(perspector::lint::lex(f.path, f.text));
      }
      const perspector::lint::SymbolTable table =
          perspector::lint::build_symbols(lexed);
      const perspector::lint::CallGraph graph =
          perspector::lint::build_callgraph(table, lexed);
      std::ofstream out(callgraph_file, std::ios::binary);
      if (!out) throw std::runtime_error("cannot write " + callgraph_file);
      perspector::lint::dump_callgraph_json(table, graph, out);
      std::cerr << "perspector_lint: call graph written to " << callgraph_file
                << "\n";
    }

    const std::size_t raw = findings.size();
    std::vector<BaselineEntry> unused;
    findings = perspector::lint::apply_baseline(std::move(findings), baseline,
                                                &unused);
    for (const BaselineEntry& e : unused) {
      std::cerr << "perspector_lint: "
                << (stale_baseline_error ? "error" : "warning")
                << ": stale baseline entry " << e.file << ":" << e.line
                << ": " << e.rule << "\n";
    }
    for (const Finding& f : findings) {
      std::cout << perspector::lint::to_string(f) << "\n";
    }
    std::cerr << "perspector_lint: " << files.size() << " files, "
              << findings.size() << " finding(s)";
    if (raw != findings.size()) {
      std::cerr << " (" << raw - findings.size() << " baselined)";
    }
    std::cerr << "\n";
    if (findings.empty() && stale_baseline_error && !unused.empty()) {
      return 1;
    }
    return findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "perspector_lint: " << e.what() << "\n";
    return 2;
  }
}
