// perspector_lint call graph: resolves the symbol table's call sites
// into edges between function definitions, cross-translation-unit
// (DESIGN.md section 11). Resolution is name-indexed and deliberately
// over-approximate where the token-level front end cannot decide:
//
//   * qualified calls (`store::CheckpointLog::append`) match by
//     "::"-component suffix against qualified definition names;
//   * member calls with an inferred receiver type resolve to that
//     class's methods plus every transitively derived class's override
//     (the virtual-dispatch over-approximation); an inferred receiver
//     of an *unknown* class (std::string, std::vector) produces no edge
//     — those are external calls;
//   * member calls with an unknown receiver match every same-named
//     method, filtered by include-graph visibility (the definition's
//     file, or its sibling header, must be transitively includable from
//     the caller's file); if the filter would drop every candidate the
//     full set is kept — conservative beats silently wrong;
//   * free calls match free functions plus methods of the caller's own
//     class and its bases (unqualified method calls), same filter;
//   * anonymous-namespace definitions only ever match calls from their
//     own file.
//
// Function pointers and std::function indirection are not resolved; the
// repo's hot paths do not dispatch through them, and the fixture tests
// pin the cases that matter.
#pragma once

#include <iosfwd>

#include "lint/symbols.hpp"

namespace perspector::lint {

struct CallEdge {
  std::size_t callee = 0;  // index into SymbolTable::functions
  int line = 0;            // first call-site line in the caller
};

struct CallGraph {
  /// edges[i] — resolved callees of functions[i], sorted by callee index
  /// (one edge per callee; the first call site's line wins).
  std::vector<std::vector<CallEdge>> edges;
};

/// Resolves every call site in `table` against the lexed tree.
CallGraph build_callgraph(const SymbolTable& table,
                          const std::vector<LexedFile>& files);

/// Writes the graph as deterministic JSON: functions sorted by
/// (qualified, file, line), each with its resolved callees by qualified
/// name. This is the `--dump-callgraph` artifact CI diffs across PRs.
void dump_callgraph_json(const SymbolTable& table, const CallGraph& graph,
                         std::ostream& out);

}  // namespace perspector::lint
