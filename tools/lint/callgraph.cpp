#include "lint/callgraph.hpp"

#include <algorithm>
#include <ostream>

namespace perspector::lint {

namespace {

/// File path -> indices of files transitively reachable through quoted
/// includes (angled includes are system headers — never repo files).
std::map<std::string, std::set<std::string>> include_closure(
    const std::vector<LexedFile>& files) {
  std::set<std::string> known;
  for (const LexedFile& f : files) known.insert(f.path);

  std::map<std::string, std::vector<std::string>> direct;
  for (const LexedFile& f : files) {
    for (const Include& inc : f.includes) {
      if (inc.angled) continue;
      const std::string resolved = resolve_include(f.path, inc.path, known);
      if (known.count(resolved)) direct[f.path].push_back(resolved);
    }
  }
  std::map<std::string, std::set<std::string>> closure;
  for (const LexedFile& f : files) {
    std::set<std::string>& seen = closure[f.path];
    std::vector<std::string> work{f.path};
    while (!work.empty()) {
      const std::string cur = work.back();
      work.pop_back();
      if (!seen.insert(cur).second) continue;
      const auto it = direct.find(cur);
      if (it == direct.end()) continue;
      for (const std::string& next : it->second) work.push_back(next);
    }
  }
  return closure;
}

/// "a.cpp" -> "a.hpp"/"a.h" if present in the tree, else "".
std::string sibling_header(const std::string& path,
                           const std::set<std::string>& known) {
  const std::size_t dot = path.rfind(".cpp");
  if (dot == std::string::npos || dot + 4 != path.size()) return {};
  const std::string stem = path.substr(0, dot);
  if (known.count(stem + ".hpp")) return stem + ".hpp";
  if (known.count(stem + ".h")) return stem + ".h";
  return {};
}

class Resolver {
 public:
  Resolver(const SymbolTable& table, const std::vector<LexedFile>& files)
      : table_(table), closure_(include_closure(files)) {
    for (const LexedFile& f : files) known_.insert(f.path);
  }

  CallGraph resolve() {
    CallGraph graph;
    graph.edges.resize(table_.functions.size());
    for (std::size_t i = 0; i < table_.functions.size(); ++i) {
      const Function& caller = table_.functions[i];
      if (!caller.defined) continue;
      std::map<std::size_t, int> callees;  // callee -> first line
      for (const CallSite& call : caller.calls) {
        for (const std::size_t callee : candidates(caller, call)) {
          callees.emplace(callee, call.line);
        }
      }
      for (const auto& [callee, line] : callees) {
        graph.edges[i].push_back(CallEdge{callee, line});
      }
    }
    return graph;
  }

 private:
  /// Can a call in `from_file` plausibly reach the definition `def`?
  /// Yes when the definition's file — or the header declaring it (the
  /// .cpp's sibling) — is in `from_file`'s transitive include set.
  bool visible(const std::string& from_file, const Function& def) const {
    if (def.file == from_file) return true;
    const auto it = closure_.find(from_file);
    if (it == closure_.end()) return false;
    if (it->second.count(def.file)) return true;
    const std::string header = sibling_header(def.file, known_);
    return !header.empty() && it->second.count(header);
  }

  /// TU-local (anonymous-namespace) definitions match same-file calls only.
  bool tu_ok(const Function& caller, const Function& def) const {
    return !def.tu_local || def.file == caller.file;
  }

  /// Applies the include-visibility filter, keeping the unfiltered set
  /// when it would otherwise come back empty (over-approximate).
  std::vector<std::size_t> filter_visible(
      const Function& caller, const std::vector<std::size_t>& cands) const {
    std::vector<std::size_t> kept;
    for (const std::size_t c : cands) {
      if (visible(caller.file, table_.functions[c])) kept.push_back(c);
    }
    return kept.empty() ? cands : kept;
  }

  std::vector<std::size_t> candidates(const Function& caller,
                                      const CallSite& call) const {
    const auto by_name = table_.defs_by_name.find(call.name);
    if (by_name == table_.defs_by_name.end()) return {};
    std::vector<std::size_t> cands;

    switch (call.form) {
      case CallSite::Form::Qualified: {
        // `::f(...)` with no qualifier names the global scope: only an
        // unnamespaced definition can match (never a suffix).
        if (call.quals.empty()) {
          for (const std::size_t c : by_name->second) {
            const Function& def = table_.functions[c];
            if (tu_ok(caller, def) && def.qualified == call.name) {
              cands.push_back(c);
            }
          }
          return cands;
        }
        // Suffix match on "::" components: `Session::run` matches
        // `perspector::serve::Session::run`.
        std::string suffix;
        for (const std::string& q : call.quals) suffix += q + "::";
        suffix += call.name;
        const std::string dotted = "::" + suffix;
        for (const std::size_t c : by_name->second) {
          const Function& def = table_.functions[c];
          if (!tu_ok(caller, def)) continue;
          if (def.qualified == suffix ||
              (def.qualified.size() > dotted.size() &&
               def.qualified.compare(def.qualified.size() - dotted.size(),
                                     dotted.size(), dotted) == 0)) {
            cands.push_back(c);
          }
        }
        return cands;
      }

      case CallSite::Form::Member: {
        if (call.receiver_inferred) {
          if (!table_.classes_by_name.count(call.receiver_type)) {
            return {};  // std::string etc. — external, no edge
          }
          const std::set<std::string> classes =
              table_.self_and_derived(call.receiver_type);
          for (const std::size_t c : by_name->second) {
            const Function& def = table_.functions[c];
            if (!tu_ok(caller, def)) continue;
            if (!def.class_name.empty() && classes.count(def.class_name)) {
              cands.push_back(c);
            }
          }
          return cands;
        }
        // Unknown receiver: every same-named method, visibility-filtered.
        for (const std::size_t c : by_name->second) {
          const Function& def = table_.functions[c];
          if (!tu_ok(caller, def)) continue;
          if (!def.class_name.empty()) cands.push_back(c);
        }
        return filter_visible(caller, cands);
      }

      case CallSite::Form::Free: {
        // Free functions, plus methods of the caller's own class and its
        // bases (unqualified method calls from inside a member function).
        std::set<std::string> own;
        if (!caller.class_name.empty()) {
          own = table_.self_and_bases(caller.class_name);
        }
        for (const std::size_t c : by_name->second) {
          const Function& def = table_.functions[c];
          if (!tu_ok(caller, def)) continue;
          if (def.class_name.empty() || own.count(def.class_name) ||
              def.class_name == def.name) {  // constructors: `Foo f(...)`
            cands.push_back(c);
          }
        }
        return filter_visible(caller, cands);
      }
    }
    return cands;
  }

  const SymbolTable& table_;
  std::map<std::string, std::set<std::string>> closure_;
  std::set<std::string> known_;
};

void json_escape(const std::string& s, std::ostream& out) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

CallGraph build_callgraph(const SymbolTable& table,
                          const std::vector<LexedFile>& files) {
  return Resolver(table, files).resolve();
}

void dump_callgraph_json(const SymbolTable& table, const CallGraph& graph,
                         std::ostream& out) {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < table.functions.size(); ++i) {
    if (table.functions[i].defined) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Function& fa = table.functions[a];
    const Function& fb = table.functions[b];
    if (fa.qualified != fb.qualified) return fa.qualified < fb.qualified;
    if (fa.file != fb.file) return fa.file < fb.file;
    return fa.line < fb.line;
  });

  out << "{\n  \"functions\": [\n";
  for (std::size_t n = 0; n < order.size(); ++n) {
    const std::size_t i = order[n];
    const Function& fn = table.functions[i];
    out << "    {\"name\": \"";
    json_escape(fn.qualified, out);
    out << "\", \"file\": \"";
    json_escape(fn.file, out);
    out << "\", \"line\": " << fn.line << ", \"calls\": [";
    // Callees by qualified name, sorted and deduplicated for stability.
    std::vector<std::string> names;
    for (const CallEdge& e : graph.edges[i]) {
      names.push_back(table.functions[e.callee].qualified);
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    for (std::size_t k = 0; k < names.size(); ++k) {
      if (k > 0) out << ", ";
      out << '"';
      json_escape(names[k], out);
      out << '"';
    }
    out << "]}" << (n + 1 < order.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace perspector::lint
