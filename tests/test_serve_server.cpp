// serve::Session transport tests, run over plain pipes/socketpairs so
// every scenario is deterministic: the whole request burst is written
// (and half-closed) before the session starts, which pins down exactly
// what each drain pass sees — the same property the admission-control
// acceptance test relies on (`--max-queue 1` + a saturating pipelined
// client → one scored request, the rest answered `overloaded`).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/engine.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"

namespace perspector::serve {
namespace {

std::string score_line(const std::string& id, std::uint64_t deadline_ms = 0) {
  std::string line = R"({"id":")" + id +
                     R"(","suite":"nbench","instructions":20000)";
  if (deadline_ms > 0) {
    line += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  }
  return line + "}\n";
}

/// Writes `input` to a pipe, half-closes it, runs one session, returns
/// every response line. The pipe capacities (64 KiB) bound how much a
/// single test may pump through; these bursts stay far below that.
struct SessionRun {
  std::vector<std::string> lines;
  SessionResult result;
};

SessionRun run_over_pipes(Engine& engine, const std::string& input,
                          const SessionOptions& options) {
  int in[2];
  int out[2];
  if (::pipe(in) != 0 || ::pipe(out) != 0) {
    throw std::runtime_error("pipe failed");
  }
  EXPECT_EQ(::write(in[1], input.data(), input.size()),
            static_cast<ssize_t>(input.size()));
  ::close(in[1]);  // EOF after the burst: the session drains and returns

  SessionRun run;
  run.result = run_session(engine, in[0], out[1], options);
  ::close(in[0]);
  ::close(out[1]);

  std::string bytes;
  char chunk[65536];
  ssize_t n;
  while ((n = ::read(out[0], chunk, sizeof chunk)) > 0) {
    bytes.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(out[0]);

  std::size_t start = 0;
  while (start < bytes.size()) {
    const std::size_t nl = bytes.find('\n', start);
    EXPECT_NE(nl, std::string::npos) << "responses must be newline-framed";
    if (nl == std::string::npos) break;
    run.lines.push_back(bytes.substr(start, nl - start));
    start = nl + 1;
  }
  return run;
}

std::uint64_t counter_value(const std::string& name) {
  for (const auto& snapshot : obs::counters_snapshot()) {
    if (snapshot.name == name) return snapshot.value;
  }
  return 0;
}

TEST(ServeSession, PipelinedBurstAnsweredInOrder) {
  obs::reset_metrics();
  Engine engine;
  SessionOptions options;
  const SessionRun run = run_over_pipes(
      engine,
      "{\"id\":\"p\",\"op\":\"ping\"}\n" + score_line("a") + score_line("b") +
          "{\"id\":\"m\",\"op\":\"metrics\"}\n",
      options);

  ASSERT_EQ(run.lines.size(), 4u);
  EXPECT_EQ(run.result.responses, 4u);
  EXPECT_FALSE(run.result.shutdown_requested);

  const json::Value ping = json::parse(run.lines[0]);
  EXPECT_EQ(ping.find("id")->string, "p");
  EXPECT_TRUE(ping.find("pong")->boolean);

  const json::Value a = json::parse(run.lines[1]);
  const json::Value b = json::parse(run.lines[2]);
  EXPECT_EQ(a.find("id")->string, "a");
  EXPECT_EQ(a.find("cache")->string, "miss");
  EXPECT_EQ(b.find("id")->string, "b");
  EXPECT_EQ(b.find("cache")->string, "hit");  // identical request coalesced
  EXPECT_EQ(a.find("report")->string, b.find("report")->string);

  // The metrics snapshot is taken at serve time, after both scores in the
  // same pipeline executed.
  const json::Value metrics = json::parse(run.lines[3]);
  const json::Value* counters = metrics.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->find("serve.requests")->number, 2.0);
  EXPECT_DOUBLE_EQ(counters->find("serve.cache_hit")->number, 1.0);
  EXPECT_DOUBLE_EQ(counters->find("serve.cache_miss")->number, 1.0);
  EXPECT_DOUBLE_EQ(counters->find("serve.admitted")->number, 2.0);
}

TEST(ServeSession, OverloadAnsweredStructurallyNeverDropped) {
  obs::reset_metrics();
  Engine engine;
  SessionOptions options;
  options.max_queue = 1;  // the acceptance scenario
  const SessionRun run = run_over_pipes(
      engine, score_line("0") + score_line("1") + score_line("2"), options);

  // Every request got an answer: one scored, two rejected.
  ASSERT_EQ(run.lines.size(), 3u);
  const json::Value first = json::parse(run.lines[0]);
  EXPECT_TRUE(first.find("ok")->boolean);
  for (std::size_t i = 1; i < 3; ++i) {
    const json::Value rejected = json::parse(run.lines[i]);
    EXPECT_EQ(rejected.find("id")->string, std::to_string(i));
    EXPECT_FALSE(rejected.find("ok")->boolean);
    EXPECT_EQ(rejected.find("error")->string, "overloaded");
    EXPECT_NE(rejected.find("message")->string.find("max-queue=1"),
              std::string::npos);
  }
  EXPECT_EQ(counter_value("serve.admitted"), 1u);
  EXPECT_EQ(counter_value("serve.rejected"), 2u);
}

TEST(ServeSession, QueueWaitDeadlineYieldsTimeoutError) {
  obs::reset_metrics();
  Engine engine;
  SessionOptions options;
  // Injected clock: every observation advances 100 ms, so each admitted
  // request "waits" a deterministic ~200 ms between enqueue and its
  // deadline check — no real sleeping, no flakiness.
  auto ticks = std::make_shared<int>(0);
  options.now = [ticks] {
    *ticks += 1;
    return std::chrono::steady_clock::time_point(
        std::chrono::milliseconds(100 * *ticks));
  };
  const SessionRun run = run_over_pipes(
      engine, score_line("slowok", 100'000) + score_line("expired", 50),
      options);

  ASSERT_EQ(run.lines.size(), 2u);
  const json::Value ok = json::parse(run.lines[0]);
  EXPECT_EQ(ok.find("id")->string, "slowok");
  EXPECT_TRUE(ok.find("ok")->boolean);
  const json::Value timed_out = json::parse(run.lines[1]);
  EXPECT_EQ(timed_out.find("id")->string, "expired");
  EXPECT_FALSE(timed_out.find("ok")->boolean);
  EXPECT_EQ(timed_out.find("error")->string, "timeout");
  EXPECT_EQ(counter_value("serve.timeouts"), 1u);
}

TEST(ServeSession, ShutdownOpDrainsAndRequestsExit) {
  Engine engine;
  SessionOptions options;
  const SessionRun run = run_over_pipes(
      engine, score_line("a") + "{\"id\":\"s\",\"op\":\"shutdown\"}\n",
      options);
  ASSERT_EQ(run.lines.size(), 2u);
  EXPECT_TRUE(json::parse(run.lines[0]).find("ok")->boolean);
  EXPECT_TRUE(json::parse(run.lines[1]).find("shutting_down")->boolean);
  EXPECT_TRUE(run.result.shutdown_requested);
}

TEST(ServeSession, MalformedLinesGetBadRequestAndSessionContinues) {
  Engine engine;
  SessionOptions options;
  const SessionRun run = run_over_pipes(
      engine, "this is not json\n" + score_line("fine"), options);
  ASSERT_EQ(run.lines.size(), 2u);
  const json::Value bad = json::parse(run.lines[0]);
  EXPECT_FALSE(bad.find("ok")->boolean);
  EXPECT_EQ(bad.find("error")->string, "bad_request");
  EXPECT_TRUE(json::parse(run.lines[1]).find("ok")->boolean);
}

TEST(ServeSession, UnterminatedFinalLineIsServedAtEof) {
  Engine engine;
  SessionOptions options;
  std::string input = score_line("only");
  input.pop_back();  // strip the trailing newline
  const SessionRun run = run_over_pipes(engine, input, options);
  ASSERT_EQ(run.lines.size(), 1u);
  EXPECT_EQ(json::parse(run.lines[0]).find("id")->string, "only");
}

TEST(ServeSession, WorksOverASocketpairWithSharedFd) {
  // The TCP path hands the same fd in both positions; exercise that
  // shape directly with a socketpair.
  std::signal(SIGPIPE, SIG_IGN);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string input = score_line("sock");
  ASSERT_EQ(::write(fds[0], input.data(), input.size()),
            static_cast<ssize_t>(input.size()));
  ::shutdown(fds[0], SHUT_WR);

  Engine engine;
  SessionOptions options;
  const SessionResult result = run_session(engine, fds[1], fds[1], options);
  ::close(fds[1]);
  EXPECT_EQ(result.responses, 1u);

  std::string bytes;
  char chunk[65536];
  ssize_t n;
  while ((n = ::read(fds[0], chunk, sizeof chunk)) > 0) {
    bytes.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);
  const json::Value response = json::parse(bytes);
  EXPECT_EQ(response.find("id")->string, "sock");
  EXPECT_TRUE(response.find("ok")->boolean);
}

TEST(ServeSession, CrlfRequestLinesAreAccepted) {
  Engine engine;
  SessionOptions options;
  std::string line = score_line("crlf");
  line.insert(line.size() - 1, "\r");  // "...}\r\n"
  const SessionRun run = run_over_pipes(engine, line, options);
  ASSERT_EQ(run.lines.size(), 1u);
  const json::Value response = json::parse(run.lines[0]);
  EXPECT_EQ(response.find("id")->string, "crlf");
  EXPECT_TRUE(response.find("ok")->boolean);
}

TEST(ServeSession, ScoreResponsesCarryTraceIds) {
  obs::reset_metrics();
  Engine engine;
  SessionOptions options;
  const SessionRun run = run_over_pipes(
      engine, score_line("a") + score_line("b") + score_line("c"), options);
  ASSERT_EQ(run.lines.size(), 3u);

  std::vector<std::string> traces;
  for (const auto& line : run.lines) {
    const json::Value response = json::parse(line);
    const json::Value* trace = response.find("trace");
    ASSERT_NE(trace, nullptr) << line;
    ASSERT_TRUE(trace->is_string());
    // 16 lowercase hex digits, never the zero sentinel.
    EXPECT_EQ(trace->string.size(), 16u);
    EXPECT_EQ(trace->string.find_first_not_of("0123456789abcdef"),
              std::string::npos);
    EXPECT_NE(trace->string, "0000000000000000");
    traces.push_back(trace->string);
  }
  // Identical request content still gets distinct trace ids: the session
  // sequence number is part of the derivation.
  EXPECT_NE(traces[0], traces[1]);
  EXPECT_NE(traces[1], traces[2]);
  EXPECT_NE(traces[0], traces[2]);
}

TEST(ServeSession, TraceIdsAreDeterministicAcrossSessions) {
  obs::reset_metrics();
  Engine engine;
  SessionOptions options;
  const std::string input = score_line("x") + score_line("y");
  const SessionRun first = run_over_pipes(engine, input, options);
  const SessionRun second = run_over_pipes(engine, input, options);
  ASSERT_EQ(first.lines.size(), 2u);
  ASSERT_EQ(second.lines.size(), 2u);
  // Same content + same per-session sequence → same trace id: the id is
  // derived, not random, so replays are correlatable.
  for (std::size_t i = 0; i < 2; ++i) {
    const json::Value a = json::parse(first.lines[i]);
    const json::Value b = json::parse(second.lines[i]);
    EXPECT_EQ(a.find("trace")->string, b.find("trace")->string);
  }
}

TEST(ServeSession, StatsOpReportsLatencyPercentiles) {
  obs::reset_metrics();
  Engine engine;
  SessionOptions options;
  // Distinct contents (different instruction budgets): identical
  // requests in one pipelined batch coalesce into a single score() call,
  // which would leave only one histogram sample.
  const SessionRun run = run_over_pipes(
      engine,
      score_line("a") +
          "{\"id\":\"b\",\"suite\":\"nbench\",\"instructions\":21000}\n" +
          "{\"id\":\"s\",\"op\":\"stats\"}\n",
      options);
  ASSERT_EQ(run.lines.size(), 3u);

  const json::Value stats = json::parse(run.lines[2]);
  EXPECT_EQ(stats.find("id")->string, "s");
  EXPECT_TRUE(stats.find("ok")->boolean);
  const json::Value* histograms = stats.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* latency = histograms->find("serve.request.latency");
  ASSERT_NE(latency, nullptr)
      << "stats response must include the request-latency histogram";
  // Both scores in this pipeline ran before the stats snapshot.
  EXPECT_DOUBLE_EQ(latency->find("count")->number, 2.0);
  for (const char* percentile : {"p50", "p90", "p99", "p999"}) {
    const json::Value* value = latency->find(percentile);
    ASSERT_NE(value, nullptr) << percentile;
    EXPECT_GT(value->number, 0.0) << percentile;
  }
  EXPECT_GE(latency->find("p999")->number, latency->find("p50")->number);
}

TEST(ServeSession, MetricsResponseIncludesDistributionsAndHistograms) {
  obs::reset_metrics();
  Engine engine;
  SessionOptions options;
  const SessionRun run = run_over_pipes(
      engine, score_line("a") + "{\"id\":\"m\",\"op\":\"metrics\"}\n",
      options);
  ASSERT_EQ(run.lines.size(), 2u);

  const json::Value metrics = json::parse(run.lines[1]);
  const json::Value* distributions = metrics.find("distributions");
  ASSERT_NE(distributions, nullptr);
  const json::Value* request_us = distributions->find("serve.request_us");
  ASSERT_NE(request_us, nullptr);
  EXPECT_DOUBLE_EQ(request_us->find("count")->number, 1.0);
  EXPECT_GT(request_us->find("mean")->number, 0.0);

  const json::Value* histograms = metrics.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* latency = histograms->find("serve.request.latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_DOUBLE_EQ(latency->find("count")->number, 1.0);
  EXPECT_GT(latency->find("p50")->number, 0.0);
}

}  // namespace
}  // namespace perspector::serve
