#include "cluster/hierarchical.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "stats/rng.hpp"

namespace perspector::cluster {
namespace {

la::Matrix line_points() {
  // 0, 1 close; 10, 11 close; the pairs far apart.
  return la::Matrix{{0.0}, {1.0}, {10.0}, {11.0}};
}

TEST(Hierarchical, ValidatesInput) {
  EXPECT_THROW(agglomerate(la::Matrix{}, Linkage::Single),
               std::invalid_argument);
  EXPECT_THROW(agglomerate_from_distances(la::Matrix(2, 3), Linkage::Single),
               std::invalid_argument);
  EXPECT_THROW(
      agglomerate_from_distances(la::pairwise_distances(line_points()),
                                 Linkage::Ward),
      std::invalid_argument);
}

TEST(Hierarchical, SinglePointDendrogram) {
  const auto tree = agglomerate(la::Matrix{{1.0}}, Linkage::Single);
  EXPECT_EQ(tree.leaves, 1u);
  EXPECT_TRUE(tree.merges.empty());
  EXPECT_EQ(tree.cut(1), std::vector<std::size_t>{0});
}

TEST(Hierarchical, MergeOrderOnLine) {
  const auto tree = agglomerate(line_points(), Linkage::Single);
  ASSERT_EQ(tree.merges.size(), 3u);
  // First two merges join the tight pairs at distance 1.
  EXPECT_DOUBLE_EQ(tree.merges[0].distance, 1.0);
  EXPECT_DOUBLE_EQ(tree.merges[1].distance, 1.0);
  // Final merge at single-linkage distance 9 (10 - 1).
  EXPECT_DOUBLE_EQ(tree.merges[2].distance, 9.0);
  EXPECT_EQ(tree.merges[2].size, 4u);
}

TEST(Hierarchical, CompleteLinkageUsesMaxDistance) {
  const auto tree = agglomerate(line_points(), Linkage::Complete);
  // Final merge at complete-linkage distance 11 (11 - 0).
  EXPECT_DOUBLE_EQ(tree.merges[2].distance, 11.0);
}

TEST(Hierarchical, AverageLinkage) {
  const auto tree = agglomerate(line_points(), Linkage::Average);
  // Mean of {10, 11, 9, 10} = 10.
  EXPECT_DOUBLE_EQ(tree.merges[2].distance, 10.0);
}

TEST(Hierarchical, CutProducesKClusters) {
  const auto tree = agglomerate(line_points(), Linkage::Single);
  const auto two = tree.cut(2);
  EXPECT_EQ(two[0], two[1]);
  EXPECT_EQ(two[2], two[3]);
  EXPECT_NE(two[0], two[2]);

  const auto four = tree.cut(4);
  EXPECT_EQ(std::set<std::size_t>(four.begin(), four.end()).size(), 4u);
  const auto one = tree.cut(1);
  EXPECT_EQ(std::set<std::size_t>(one.begin(), one.end()).size(), 1u);

  EXPECT_THROW(tree.cut(0), std::invalid_argument);
  EXPECT_THROW(tree.cut(5), std::invalid_argument);
}

TEST(Hierarchical, CopheneticDistances) {
  const auto tree = agglomerate(line_points(), Linkage::Single);
  EXPECT_DOUBLE_EQ(tree.cophenetic_distance(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(tree.cophenetic_distance(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(tree.cophenetic_distance(0, 2), 9.0);
  EXPECT_DOUBLE_EQ(tree.cophenetic_distance(2, 3), 1.0);
  EXPECT_THROW(tree.cophenetic_distance(0, 4), std::out_of_range);
}

TEST(Hierarchical, WardPrefersCompactMerges) {
  stats::Rng rng(41);
  // Two tight blobs of unequal size; Ward should still merge within blobs
  // first.
  la::Matrix points(12, 2);
  for (std::size_t i = 0; i < 8; ++i) {
    points(i, 0) = rng.normal(0.0, 0.1);
    points(i, 1) = rng.normal(0.0, 0.1);
  }
  for (std::size_t i = 8; i < 12; ++i) {
    points(i, 0) = rng.normal(6.0, 0.1);
    points(i, 1) = rng.normal(6.0, 0.1);
  }
  const auto tree = agglomerate(points, Linkage::Ward);
  const auto labels = tree.cut(2);
  for (std::size_t i = 1; i < 8; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (std::size_t i = 9; i < 12; ++i) EXPECT_EQ(labels[i], labels[8]);
  EXPECT_NE(labels[0], labels[8]);
}

TEST(Hierarchical, ToStringNames) {
  EXPECT_STREQ(to_string(Linkage::Single), "single");
  EXPECT_STREQ(to_string(Linkage::Complete), "complete");
  EXPECT_STREQ(to_string(Linkage::Average), "average");
  EXPECT_STREQ(to_string(Linkage::Ward), "ward");
}

// Property: merge heights are non-decreasing for single/complete/average
// linkage (monotone dendrograms), and every cut is a valid partition.
class HierarchicalProperty : public ::testing::TestWithParam<Linkage> {};

TEST_P(HierarchicalProperty, MonotoneMergesAndValidCuts) {
  stats::Rng rng(42);
  la::Matrix points(15, 3);
  for (std::size_t r = 0; r < 15; ++r) {
    for (std::size_t c = 0; c < 3; ++c) points(r, c) = rng.uniform();
  }
  const auto tree = agglomerate(points, GetParam());
  ASSERT_EQ(tree.merges.size(), 14u);
  if (GetParam() != Linkage::Ward) {
    // Ward heights can be non-monotone in rare cases; others must not be.
    for (std::size_t s = 1; s < tree.merges.size(); ++s) {
      EXPECT_GE(tree.merges[s].distance,
                tree.merges[s - 1].distance - 1e-9);
    }
  }
  for (std::size_t k = 1; k <= 15; ++k) {
    const auto labels = tree.cut(k);
    const std::set<std::size_t> distinct(labels.begin(), labels.end());
    EXPECT_EQ(distinct.size(), k);
  }
}

INSTANTIATE_TEST_SUITE_P(Linkages, HierarchicalProperty,
                         ::testing::Values(Linkage::Single, Linkage::Complete,
                                           Linkage::Average, Linkage::Ward));

}  // namespace
}  // namespace perspector::cluster
