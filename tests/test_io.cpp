#include "core/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace perspector::core {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string path(const std::string& name) const {
    return ::testing::TempDir() + "/perspector_io_" + name;
  }
  void write_file(const std::string& p, const std::string& content) {
    std::ofstream out(p);
    out << content;
  }
  void TearDown() override {
    for (const auto& p : created_) std::remove(p.c_str());
  }
  std::string make(const std::string& name, const std::string& content) {
    const std::string p = path(name);
    write_file(p, content);
    created_.push_back(p);
    return p;
  }
  std::vector<std::string> created_;
};

CounterMatrix sample_matrix() {
  la::Matrix values{{1.5, 2.0}, {3.25, 4.0}};
  std::vector<std::vector<std::vector<double>>> series{
      {{1.0, 0.5}, {2.0}},
      {{3.0, 0.25}, {4.0}},
  };
  return CounterMatrix("io-demo", {"alpha", "beta,comma"}, {"c0", "c1"},
                       values, series);
}

TEST_F(IoTest, AggregateRoundTrip) {
  const auto m = sample_matrix();
  const std::string p = path("agg.csv");
  created_.push_back(p);
  write_aggregates_csv(m, p);
  const CounterMatrix back = read_aggregates_csv("io-demo", p);
  EXPECT_EQ(back.workload_names(), m.workload_names());
  EXPECT_EQ(back.counter_names(), m.counter_names());
  EXPECT_LT(back.values().max_abs_diff(m.values()), 1e-12);
  EXPECT_FALSE(back.has_series());
}

TEST_F(IoTest, SeriesRoundTrip) {
  const auto m = sample_matrix();
  const std::string agg = path("agg2.csv");
  const std::string ser = path("ser2.csv");
  created_.push_back(agg);
  created_.push_back(ser);
  write_aggregates_csv(m, agg);
  write_series_csv(m, ser);
  const CounterMatrix back = read_with_series_csv("io-demo", agg, ser);
  ASSERT_TRUE(back.has_series());
  EXPECT_EQ(back.series(0, 0), (std::vector<double>{1.0, 0.5}));
  EXPECT_EQ(back.series(1, 1), (std::vector<double>{4.0}));
}

TEST_F(IoTest, WriteSeriesWithoutSeriesThrows) {
  la::Matrix values(1, 1, 1.0);
  const CounterMatrix bare("s", {"w"}, {"c"}, values);
  EXPECT_THROW(write_series_csv(bare, path("nope.csv")), std::logic_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_aggregates_csv("s", "/nonexistent/file.csv"),
               std::runtime_error);
}

TEST_F(IoTest, RejectsBadHeader) {
  const auto p = make("badheader.csv", "nope,c0\nw0,1\n");
  EXPECT_THROW(read_aggregates_csv("s", p), std::runtime_error);
}

TEST_F(IoTest, RejectsRaggedRow) {
  const auto p = make("ragged.csv", "workload,c0,c1\nw0,1\n");
  try {
    read_aggregates_csv("s", p);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST_F(IoTest, RejectsNonNumericCell) {
  const auto p = make("nan.csv", "workload,c0\nw0,abc\n");
  EXPECT_THROW(read_aggregates_csv("s", p), std::runtime_error);
}

TEST_F(IoTest, RejectsDuplicateWorkload) {
  const auto p = make("dup.csv", "workload,c0\nw0,1\nw0,2\n");
  EXPECT_THROW(read_aggregates_csv("s", p), std::runtime_error);
}

TEST_F(IoTest, RejectsEmptyFile) {
  const auto p = make("empty.csv", "");
  EXPECT_THROW(read_aggregates_csv("s", p), std::runtime_error);
  const auto headers_only = make("headeronly.csv", "workload,c0\n");
  EXPECT_THROW(read_aggregates_csv("s", headers_only), std::runtime_error);
}

TEST_F(IoTest, QuotedCellsParsed) {
  const auto p = make("quoted.csv",
                      "workload,\"c,0\"\n\"w \"\"zero\"\"\",1.5\n");
  const CounterMatrix m = read_aggregates_csv("s", p);
  EXPECT_EQ(m.counter_names()[0], "c,0");
  EXPECT_EQ(m.workload_names()[0], "w \"zero\"");
  EXPECT_DOUBLE_EQ(m.value(0, 0), 1.5);
}

TEST_F(IoTest, SeriesRejectsNonDenseIndices) {
  const auto agg = make("a.csv", "workload,c0\nw0,1\n");
  const auto ser =
      make("s.csv", "workload,counter,sample,value\nw0,c0,1,5\n");
  EXPECT_THROW(read_with_series_csv("s", agg, ser), std::runtime_error);
}

TEST_F(IoTest, SeriesRejectsMissingCoverage) {
  const auto agg = make("a2.csv", "workload,c0,c1\nw0,1,2\n");
  const auto ser =
      make("s2.csv", "workload,counter,sample,value\nw0,c0,0,5\n");
  EXPECT_THROW(read_with_series_csv("s", agg, ser), std::runtime_error);
}

// ---- interchange hardening (external CSV producers) ------------------------

TEST_F(IoTest, AcceptsLeadingUtf8Bom) {
  const auto p = make("bom.csv", "\xef\xbb\xbfworkload,c0\nw0,1.5\n");
  const CounterMatrix m = read_aggregates_csv("s", p);
  EXPECT_EQ(m.counter_names()[0], "c0");  // BOM must not stick to the header
  EXPECT_DOUBLE_EQ(m.value(0, 0), 1.5);
}

TEST_F(IoTest, AcceptsCrlfLineEndings) {
  const auto p = make("crlf.csv", "workload,c0,c1\r\nw0,1,2\r\nw1,3,4\r\n");
  const CounterMatrix m = read_aggregates_csv("s", p);
  ASSERT_EQ(m.num_workloads(), 2u);
  EXPECT_DOUBLE_EQ(m.value(1, 1), 4.0);
  // CRLF must not leak into the last cell's text (a quoted final cell is
  // the risky case).
  const auto q = make("crlfq.csv", "workload,c0\nw0,\"1.5\"\r\n");
  EXPECT_DOUBLE_EQ(read_aggregates_csv("s", q).value(0, 0), 1.5);
}

TEST_F(IoTest, SeriesAcceptsBomAndCrlf) {
  const auto agg = make("hb_a.csv", "workload,c0\nw0,1\n");
  const auto ser = make(
      "hb_s.csv",
      "\xef\xbb\xbfworkload,counter,sample,value\r\nw0,c0,0,1\r\nw0,c0,1,2\r\n");
  const CounterMatrix m = read_with_series_csv("s", agg, ser);
  ASSERT_TRUE(m.has_series());
  EXPECT_EQ(m.series(0, 0), (std::vector<double>{1.0, 2.0}));
}

TEST_F(IoTest, RejectsNonFiniteCellsWithLineNumber) {
  for (const char* bad : {"nan", "NaN", "inf", "-inf", "Infinity", "1e999"}) {
    const auto p =
        make(std::string("nonfinite_") + bad + ".csv",
             std::string("workload,c0\nw0,1\nw1,") + bad + "\n");
    try {
      read_aggregates_csv("s", p);
      FAIL() << "expected throw for '" << bad << "'";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    }
  }
}

TEST_F(IoTest, SeriesRejectsNonFiniteSamples) {
  const auto agg = make("nf_a.csv", "workload,c0\nw0,1\n");
  const auto ser = make("nf_s.csv",
                        "workload,counter,sample,value\nw0,c0,0,inf\n");
  EXPECT_THROW(read_with_series_csv("s", agg, ser), std::runtime_error);
}

TEST(IoText, InMemoryReadersMatchFileReaders) {
  const CounterMatrix m =
      read_aggregates_csv_text("wired", "workload,c0,c1\nw0,1,2\nw1,3,4\n");
  EXPECT_EQ(m.suite_name(), "wired");
  ASSERT_EQ(m.num_workloads(), 2u);
  EXPECT_DOUBLE_EQ(m.value(1, 0), 3.0);

  const CounterMatrix with_series = read_with_series_csv_text(
      "wired", "workload,c0\nw0,1\n",
      "workload,counter,sample,value\nw0,c0,0,0.5\nw0,c0,1,0.5\n");
  ASSERT_TRUE(with_series.has_series());
  EXPECT_EQ(with_series.series(0, 0), (std::vector<double>{0.5, 0.5}));

  // Same validation and line numbering as the file path.
  try {
    read_aggregates_csv_text("wired", "workload,c0\nw0,nan\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST_F(IoTest, SeriesRejectsUnknownNames) {
  const auto agg = make("a3.csv", "workload,c0\nw0,1\n");
  const auto ser =
      make("s3.csv", "workload,counter,sample,value\nmystery,c0,0,5\n");
  EXPECT_THROW(read_with_series_csv("s", agg, ser), std::invalid_argument);
}

TEST(PerfStat, ParsesTypicalOutput) {
  const std::string text =
      "# started on Tue Jul  7 12:00:00 2026\n"
      "\n"
      "123456789,,cpu-cycles,2000000000,100.00,,\n"
      "9876,,LLC-load-misses,2000000000,84.50,,\n";
  const auto records = parse_perf_stat(text);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].event, "cpu-cycles");
  EXPECT_DOUBLE_EQ(records[0].value, 123456789.0);
  EXPECT_DOUBLE_EQ(records[0].pct_running, 100.0);
  EXPECT_TRUE(records[0].counted);
  EXPECT_EQ(records[1].event, "LLC-load-misses");
  EXPECT_DOUBLE_EQ(records[1].pct_running, 84.5);
}

TEST(PerfStat, HandlesNotCounted) {
  const auto records =
      parse_perf_stat("<not counted>,,dTLB-load-misses,0,0.00,,\n"
                      "<not supported>,,LLC-stores,0,0.00,,\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(records[0].counted);
  EXPECT_FALSE(records[1].counted);
}

TEST(PerfStat, RejectsMalformedLines) {
  EXPECT_THROW(parse_perf_stat("justonefield\n"), std::runtime_error);
  EXPECT_THROW(parse_perf_stat("abc,,cpu-cycles,1,100\n"),
               std::runtime_error);
  EXPECT_THROW(parse_perf_stat("5,,,1,100\n"), std::runtime_error);
}

TEST(PerfStat, BuildsCounterMatrix) {
  const std::string a =
      "100,,cpu-cycles,1,100\n50,,branch-misses,1,100\n";
  const std::string b =
      "200,,cpu-cycles,1,100\n80,,branch-misses,1,100\n";
  const auto m = counter_matrix_from_perf_stat("suite", {{"wa", a}, {"wb", b}});
  EXPECT_EQ(m.num_workloads(), 2u);
  EXPECT_EQ(m.counter_names(),
            (std::vector<std::string>{"cpu-cycles", "branch-misses"}));
  EXPECT_DOUBLE_EQ(m.value(1, 0), 200.0);
  EXPECT_DOUBLE_EQ(m.value(0, 1), 50.0);
}

TEST(PerfStatIntervals, ParsesTwoIntervalBlocks) {
  const std::string text =
      "# interval mode\n"
      "1.000,100,,cpu-cycles,1,100\n"
      "1.000,5,,branch-misses,1,100\n"
      "2.000,140,,cpu-cycles,1,100\n"
      "2.000,9,,branch-misses,1,100\n";
  const auto data = parse_perf_stat_intervals(text);
  ASSERT_EQ(data.events.size(), 2u);
  EXPECT_EQ(data.events[0], "cpu-cycles");
  EXPECT_EQ(data.series[0], (std::vector<double>{100.0, 140.0}));
  EXPECT_EQ(data.series[1], (std::vector<double>{5.0, 9.0}));
  EXPECT_DOUBLE_EQ(data.totals[0], 240.0);
  EXPECT_DOUBLE_EQ(data.totals[1], 14.0);
}

TEST(PerfStatIntervals, NotCountedBecomesZero) {
  const auto data = parse_perf_stat_intervals(
      "1.0,<not counted>,,cpu-cycles,1,0\n"
      "2.0,50,,cpu-cycles,1,100\n");
  EXPECT_EQ(data.series[0], (std::vector<double>{0.0, 50.0}));
}

TEST(PerfStatIntervals, RejectsMalformedInput) {
  EXPECT_THROW(parse_perf_stat_intervals(""), std::runtime_error);
  EXPECT_THROW(parse_perf_stat_intervals("1.0,5,,\n"), std::runtime_error);
  // Missing event in the second block.
  EXPECT_THROW(parse_perf_stat_intervals("1.0,1,,a,1\n"
                                         "1.0,2,,b,1\n"
                                         "2.0,3,,a,1\n"
                                         "3.0,4,,a,1\n"),
               std::runtime_error);
  // Unknown extra event after discovery.
  EXPECT_THROW(parse_perf_stat_intervals("1.0,1,,a,1\n"
                                         "2.0,3,,a,1\n"
                                         "2.0,4,,b,1\n"),
               std::runtime_error);
  // Out-of-order event name.
  EXPECT_THROW(parse_perf_stat_intervals("1.0,1,,a,1\n"
                                         "1.0,2,,b,1\n"
                                         "2.0,3,,b,1\n"
                                         "2.0,4,,a,1\n"),
               std::runtime_error);
  // Truncated final block.
  EXPECT_THROW(parse_perf_stat_intervals("1.0,1,,a,1\n"
                                         "1.0,2,,b,1\n"
                                         "2.0,3,,a,1\n"),
               std::runtime_error);
}

TEST(PerfStatIntervals, BuildsCounterMatrixWithSeries) {
  const std::string wa =
      "1.0,10,,cpu-cycles,1,100\n2.0,20,,cpu-cycles,1,100\n";
  const std::string wb =
      "1.0,30,,cpu-cycles,1,100\n2.0,40,,cpu-cycles,1,100\n";
  const auto m =
      counter_matrix_from_perf_intervals("s", {{"wa", wa}, {"wb", wb}});
  EXPECT_TRUE(m.has_series());
  EXPECT_DOUBLE_EQ(m.value(0, 0), 30.0);
  EXPECT_DOUBLE_EQ(m.value(1, 0), 70.0);
  EXPECT_EQ(m.series(1, 0), (std::vector<double>{30.0, 40.0}));

  EXPECT_THROW(counter_matrix_from_perf_intervals("s", {}),
               std::invalid_argument);
  const std::string other_event = "1.0,10,,branch-misses,1,100\n";
  EXPECT_THROW(counter_matrix_from_perf_intervals(
                   "s", {{"wa", wa}, {"wb", other_event}}),
               std::runtime_error);
}

TEST(PerfStat, MatrixRejectsInconsistencies) {
  EXPECT_THROW(counter_matrix_from_perf_stat("s", {}),
               std::invalid_argument);
  // Uncounted event.
  EXPECT_THROW(counter_matrix_from_perf_stat(
                   "s", {{"w", "<not counted>,,cpu-cycles,1,0\n"}}),
               std::runtime_error);
  // Mismatched event lists.
  EXPECT_THROW(
      counter_matrix_from_perf_stat(
          "s", {{"wa", "1,,cpu-cycles,1,100\n"},
                {"wb", "2,,branch-misses,1,100\n"}}),
      std::runtime_error);
  // Empty output.
  EXPECT_THROW(counter_matrix_from_perf_stat("s", {{"w", "# nothing\n"}}),
               std::runtime_error);
}

}  // namespace
}  // namespace perspector::core
