#include "sim/multiplex.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stats/rng.hpp"

namespace perspector::sim {
namespace {

std::vector<std::vector<double>> constant_series(std::size_t events,
                                                 std::size_t intervals,
                                                 double value) {
  return std::vector<std::vector<double>>(
      events, std::vector<double>(intervals, value));
}

TEST(Multiplex, ValidatesInput) {
  EXPECT_THROW(simulate_multiplexing({}), std::invalid_argument);
  EXPECT_THROW(simulate_multiplexing({{}}), std::invalid_argument);
  EXPECT_THROW(simulate_multiplexing({{1.0}, {1.0, 2.0}}),
               std::invalid_argument);
  MultiplexOptions bad;
  bad.hardware_counters = 0;
  EXPECT_THROW(simulate_multiplexing({{1.0}}, bad), std::invalid_argument);
  bad.hardware_counters = 1;
  bad.rotation_interval = 0;
  EXPECT_THROW(simulate_multiplexing({{1.0}}, bad), std::invalid_argument);
}

TEST(Multiplex, ExactWhenEverythingFits) {
  const auto truth = constant_series(4, 10, 7.0);
  MultiplexOptions options;
  options.hardware_counters = 4;
  const auto result = simulate_multiplexing(truth, options);
  EXPECT_EQ(result.series, truth);
  for (std::size_t e = 0; e < 4; ++e) {
    EXPECT_DOUBLE_EQ(result.totals[e], 70.0);
  }
  EXPECT_DOUBLE_EQ(result.mean_total_error_pct(), 0.0);
}

TEST(Multiplex, SteadyCountersEstimatedExactly) {
  // Duty-cycle scaling is exact for constant-rate events.
  const auto truth = constant_series(8, 40, 5.0);
  MultiplexOptions options;
  options.hardware_counters = 2;  // 4 groups, 25% duty cycle
  const auto result = simulate_multiplexing(truth, options);
  for (std::size_t e = 0; e < 8; ++e) {
    EXPECT_NEAR(result.totals[e], 200.0, 1e-9);
  }
}

TEST(Multiplex, BurstyCountersAccrueError) {
  // An event that fires only in a narrow burst is mis-estimated when the
  // burst falls outside its observation slots.
  // Burst length (3) deliberately not divisible by the rotation period
  // (4 groups x 1 interval), so duty-cycle scaling cannot be exact.
  std::vector<std::vector<double>> truth = constant_series(8, 40, 1.0);
  for (std::size_t t = 0; t < 40; ++t) {
    truth[3][t] = (t >= 4 && t < 7) ? 1000.0 : 0.0;
  }
  MultiplexOptions options;
  options.hardware_counters = 2;
  options.seed = 9;
  const auto result = simulate_multiplexing(truth, options);
  EXPECT_GT(result.mean_total_error_pct(), 1.0);
}

TEST(Multiplex, ErrorShrinksWithMoreCounters) {
  stats::Rng rng(13);
  std::vector<std::vector<double>> truth(14, std::vector<double>(60));
  for (auto& series : truth) {
    // Bursty, phase-structured traffic.
    const std::size_t start = rng.uniform_int(0, 40);
    for (std::size_t t = 0; t < 60; ++t) {
      series[t] = (t >= start && t < start + 10) ? rng.uniform(50.0, 100.0)
                                                 : rng.uniform(0.0, 2.0);
    }
  }
  double previous = 1e18;
  for (std::size_t counters : {2u, 7u, 14u}) {
    MultiplexOptions options;
    options.hardware_counters = counters;
    const double err =
        simulate_multiplexing(truth, options).mean_total_error_pct();
    EXPECT_LE(err, previous + 1e-9);
    previous = err;
  }
  // Full observation is exact.
  EXPECT_NEAR(previous, 0.0, 1e-12);
}

TEST(Multiplex, SeriesFullyReconstructed) {
  const auto truth = constant_series(6, 30, 3.0);
  MultiplexOptions options;
  options.hardware_counters = 2;
  const auto result = simulate_multiplexing(truth, options);
  for (const auto& series : result.series) {
    ASSERT_EQ(series.size(), 30u);
    for (double v : series) EXPECT_GE(v, 0.0);  // no unobserved sentinels
  }
}

TEST(Multiplex, RotationIntervalRespected) {
  // With rotation_interval = 5 and 2 groups, each event is observed in
  // blocks of 5 consecutive intervals.
  const auto truth = constant_series(4, 20, 1.0);
  MultiplexOptions options;
  options.hardware_counters = 2;
  options.rotation_interval = 5;
  options.seed = 0;  // phase may rotate; duty cycle is still 50%
  const auto result = simulate_multiplexing(truth, options);
  for (std::size_t e = 0; e < 4; ++e) {
    EXPECT_NEAR(result.totals[e], 20.0, 1e-9);
  }
}

TEST(Multiplex, MeanErrorSkipsZeroTotalEvents) {
  std::vector<std::vector<double>> truth = constant_series(4, 10, 0.0);
  truth[0].assign(10, 2.0);
  MultiplexOptions options;
  options.hardware_counters = 2;
  const auto result = simulate_multiplexing(truth, options);
  EXPECT_TRUE(std::isfinite(result.mean_total_error_pct()));
}

}  // namespace
}  // namespace perspector::sim
