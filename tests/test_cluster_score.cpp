#include "core/cluster_score.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.hpp"

namespace perspector::core {
namespace {

CounterMatrix make_suite(const la::Matrix& values) {
  std::vector<std::string> workloads, counters;
  for (std::size_t w = 0; w < values.rows(); ++w) {
    workloads.push_back("w" + std::to_string(w));
  }
  for (std::size_t c = 0; c < values.cols(); ++c) {
    counters.push_back("c" + std::to_string(c));
  }
  return CounterMatrix("suite", workloads, counters, values);
}

la::Matrix blobs(std::size_t per_blob, double separation,
                 std::uint64_t seed) {
  stats::Rng rng(seed);
  la::Matrix m(2 * per_blob, 3);
  for (std::size_t i = 0; i < per_blob; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      m(i, c) = rng.normal(0.0, 0.3);
      m(per_blob + i, c) = rng.normal(separation, 0.3);
    }
  }
  return m;
}

TEST(ClusterScore, RequiresFourWorkloads) {
  EXPECT_THROW(cluster_score(make_suite(la::Matrix(3, 2, 1.0))),
               std::invalid_argument);
  EXPECT_NO_THROW(cluster_score(make_suite(blobs(2, 5.0, 1))));
}

TEST(ClusterScore, PerKSweepShape) {
  const auto result = cluster_score(make_suite(blobs(5, 5.0, 2)));
  // k runs 2..n-1 = 2..9: eight entries.
  EXPECT_EQ(result.per_k.size(), 8u);
  EXPECT_EQ(result.k_min, 2u);
  // Eq. 6: score is the mean of per_k.
  double total = 0.0;
  for (double s : result.per_k) total += s;
  EXPECT_NEAR(result.score, total / 8.0, 1e-12);
}

TEST(ClusterScore, ClusteredSuiteScoresWorse) {
  // Two tight, well-separated blobs cluster beautifully (bad suite);
  // a uniform cloud resists clustering (good suite).
  const auto clustered = cluster_score(make_suite(blobs(6, 20.0, 3)));

  stats::Rng rng(4);
  la::Matrix uniform(12, 3);
  for (std::size_t r = 0; r < 12; ++r) {
    for (std::size_t c = 0; c < 3; ++c) uniform(r, c) = rng.uniform();
  }
  const auto spread = cluster_score(make_suite(uniform));

  EXPECT_GT(clustered.score, spread.score + 0.1);
}

TEST(ClusterScore, NormalizationMakesCountersScaleFree) {
  // Scaling one counter by 1e6 must not change the score (per-column
  // min-max normalization).
  const la::Matrix base = blobs(5, 5.0, 5);
  la::Matrix scaled = base;
  for (std::size_t r = 0; r < scaled.rows(); ++r) scaled(r, 0) *= 1e6;
  const auto a = cluster_score(make_suite(base));
  const auto b = cluster_score(make_suite(scaled));
  EXPECT_NEAR(a.score, b.score, 1e-9);
}

TEST(ClusterScore, DeterministicForSeed) {
  const auto suite = make_suite(blobs(5, 3.0, 6));
  ClusterScoreOptions options;
  options.seed = 42;
  EXPECT_DOUBLE_EQ(cluster_score(suite, options).score,
                   cluster_score(suite, options).score);
}

TEST(ClusterScore, FromNormalizedSkipsRenormalization) {
  stats::Rng rng(7);
  la::Matrix normalized(8, 2);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 2; ++c) normalized(r, c) = rng.uniform();
  }
  EXPECT_NO_THROW(cluster_score_from_normalized(normalized));
}

TEST(ClusterScore, BoundedBySilhouetteRange) {
  const auto result = cluster_score(make_suite(blobs(6, 2.0, 8)));
  EXPECT_GE(result.score, -1.0);
  EXPECT_LE(result.score, 1.0);
  for (double s : result.per_k) {
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
  }
}

// Property: more blob separation -> higher (worse) ClusterScore,
// monotonically across a sweep.
class SeparationSweep : public ::testing::TestWithParam<double> {};

TEST_P(SeparationSweep, TighterClustersScoreHigher) {
  const double separation = GetParam();
  const auto wide = cluster_score(make_suite(blobs(5, separation, 9)));
  const auto narrow = cluster_score(make_suite(blobs(5, separation / 4.0, 9)));
  EXPECT_GE(wide.score, narrow.score - 0.05);
}

INSTANTIATE_TEST_SUITE_P(Separations, SeparationSweep,
                         ::testing::Values(4.0, 8.0, 16.0));

}  // namespace
}  // namespace perspector::core
