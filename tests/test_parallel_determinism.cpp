// The determinism battery: every score, the subset pipeline, the stability
// bootstrap, and the simulator must be bit-identical across thread counts.
// This is the repo's contract for src/par/ — N-thread runs reproduce the
// 1-thread run exactly, so parallelism is purely a wall-clock knob.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/counter_matrix.hpp"
#include "core/perspector.hpp"
#include "core/report.hpp"
#include "core/stability.hpp"
#include "core/subset.hpp"
#include "par/thread_pool.hpp"
#include "sim/machine_config.hpp"
#include "sim/simulator.hpp"
#include "suites/suite_factory.hpp"

namespace perspector {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

struct ThreadCountGuard {
  ~ThreadCountGuard() { par::set_thread_count(0); }
};

/// Simulates a built-in suite with small budgets (shape, not fidelity).
core::CounterMatrix collect(const sim::SuiteSpec& spec) {
  sim::SimOptions options;
  options.sample_interval = 2'000;
  return core::collect_counters(spec, sim::MachineConfig::xeon_e2186g(),
                                options);
}

suites::SuiteBuildOptions small_build() {
  suites::SuiteBuildOptions build;
  build.instructions_per_workload = 40'000;
  return build;
}

void expect_same_scores(const core::SuiteScores& a, const core::SuiteScores& b,
                        std::size_t threads) {
  // EXPECT_EQ (not NEAR): the ordered-reduction design promises the exact
  // same bits, not "close enough".
  EXPECT_EQ(a.cluster, b.cluster) << "threads=" << threads;
  EXPECT_EQ(a.trend, b.trend) << "threads=" << threads;
  EXPECT_EQ(a.coverage, b.coverage) << "threads=" << threads;
  EXPECT_EQ(a.spread, b.spread) << "threads=" << threads;
  EXPECT_EQ(a.cluster_detail.per_k, b.cluster_detail.per_k);
  EXPECT_EQ(a.trend_detail.per_event, b.trend_detail.per_event);
}

TEST(ParallelDeterminism, SimulatorCountersMatchSerial) {
  ThreadCountGuard guard;
  par::set_thread_count(1);
  const auto serial = collect(suites::parsec(small_build()));
  for (std::size_t threads : kThreadCounts) {
    par::set_thread_count(threads);
    const auto parallel = collect(suites::parsec(small_build()));
    ASSERT_EQ(parallel.num_workloads(), serial.num_workloads());
    for (std::size_t w = 0; w < serial.num_workloads(); ++w) {
      for (std::size_t c = 0; c < serial.num_counters(); ++c) {
        EXPECT_EQ(parallel.values()(w, c), serial.values()(w, c))
            << "threads=" << threads << " w=" << w << " c=" << c;
        EXPECT_EQ(parallel.series(w, c), serial.series(w, c));
      }
    }
  }
}

TEST(ParallelDeterminism, AllFourScoresBitIdenticalOnParsec) {
  ThreadCountGuard guard;
  par::set_thread_count(1);
  const auto suite = collect(suites::parsec(small_build()));
  const auto serial = core::Perspector().score_suite(suite);
  for (std::size_t threads : kThreadCounts) {
    par::set_thread_count(threads);
    expect_same_scores(core::Perspector().score_suite(suite), serial, threads);
  }
}

TEST(ParallelDeterminism, AllFourScoresBitIdenticalOnSpec17) {
  ThreadCountGuard guard;
  par::set_thread_count(1);
  const auto suite = collect(suites::spec17(small_build()));
  const auto serial = core::Perspector().score_suite(suite);
  for (std::size_t threads : kThreadCounts) {
    par::set_thread_count(threads);
    expect_same_scores(core::Perspector().score_suite(suite), serial, threads);
  }
}

TEST(ParallelDeterminism, ScoreReportByteIdenticalAcrossThreadCounts) {
  // The CLI-facing guarantee: `perspector score --threads 8` prints the
  // same bytes as `--threads 1`. suite_report is exactly what cmd_score
  // and cmd_demo print.
  ThreadCountGuard guard;
  const auto suite = collect(suites::parsec(small_build()));
  par::set_thread_count(1);
  const auto serial_report =
      core::suite_report(suite, core::Perspector().score_suite(suite));
  for (std::size_t threads : kThreadCounts) {
    par::set_thread_count(threads);
    const auto report =
        core::suite_report(suite, core::Perspector().score_suite(suite));
    EXPECT_EQ(report, serial_report) << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, SubsetSelectionIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const auto suite = collect(suites::spec17(small_build()));
  core::SubsetOptions options;
  options.target_size = 8;

  par::set_thread_count(1);
  core::PerspectorOptions scoring;
  const auto serial = core::generate_subset(suite, options, scoring);
  for (std::size_t threads : kThreadCounts) {
    par::set_thread_count(threads);
    const auto parallel = core::generate_subset(suite, options, scoring);
    EXPECT_EQ(parallel.indices, serial.indices) << "threads=" << threads;
    EXPECT_EQ(parallel.mean_deviation_pct, serial.mean_deviation_pct);
    EXPECT_EQ(parallel.per_score_deviation_pct,
              serial.per_score_deviation_pct);
  }
}

TEST(ParallelDeterminism, BootstrapIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const auto suite = collect(suites::parsec(small_build()));
  core::StabilityOptions options;
  options.resamples = 6;
  options.include_trend = false;

  par::set_thread_count(1);
  const auto serial = core::bootstrap_scores(suite, options);
  for (std::size_t threads : kThreadCounts) {
    par::set_thread_count(threads);
    const auto parallel = core::bootstrap_scores(suite, options);
    EXPECT_EQ(parallel.cluster.mean, serial.cluster.mean);
    EXPECT_EQ(parallel.cluster.stddev, serial.cluster.stddev);
    EXPECT_EQ(parallel.coverage.mean, serial.coverage.mean);
    EXPECT_EQ(parallel.coverage.p05, serial.coverage.p05);
    EXPECT_EQ(parallel.coverage.p95, serial.coverage.p95);
    EXPECT_EQ(parallel.spread.mean, serial.spread.mean);
  }
}

// Regression for the shared-RNG bootstrap bug: resample draws used to come
// from one sequential stream, so the picks depended on execution order.
// With per-task streams, computing any resample in any order gives the
// same picks.
TEST(ParallelDeterminism, BootstrapPicksIndependentOfEvaluationOrder) {
  const std::size_t n = 12;
  const std::uint64_t seed = 31337;
  const std::size_t resamples = 16;

  std::vector<std::vector<std::size_t>> forward(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    forward[r] = core::bootstrap_picks(seed, r, n);
  }
  // Reverse order, and once more interleaved, must reproduce every draw.
  for (std::size_t r = resamples; r-- > 0;) {
    EXPECT_EQ(core::bootstrap_picks(seed, r, n), forward[r]) << "r=" << r;
  }
  for (std::size_t r = 0; r < resamples; r += 3) {
    EXPECT_EQ(core::bootstrap_picks(seed, r, n), forward[r]) << "r=" << r;
  }
  // And the draws are genuinely distinct streams, not copies.
  EXPECT_NE(forward[0], forward[1]);
}

TEST(ParallelDeterminism, JackknifeIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const auto suite = collect(suites::parsec(small_build()));
  par::set_thread_count(1);
  const auto serial =
      core::jackknife_scores(suite, {}, /*include_trend=*/false);
  for (std::size_t threads : kThreadCounts) {
    par::set_thread_count(threads);
    const auto parallel =
        core::jackknife_scores(suite, {}, /*include_trend=*/false);
    EXPECT_EQ(parallel.influence, serial.influence) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace perspector
