#include "stats/ks_test.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace perspector::stats {
namespace {

TEST(KsTest, RejectsEmptySample) {
  EXPECT_THROW(ks_test_uniform(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(ks_test_two_sample(std::vector<double>{},
                                  std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(KsTest, RejectsDegenerateUniformRange) {
  const std::vector<double> xs{0.5};
  EXPECT_THROW(ks_test_uniform(xs, 1.0, 1.0), std::invalid_argument);
}

TEST(KsTest, PerfectGridHasMinimalStatistic) {
  // Points at i/(n+1) are as uniform as a finite sample gets; D = 1/(n+1)
  // for this construction.
  std::vector<double> xs;
  const std::size_t n = 9;
  for (std::size_t i = 1; i <= n; ++i) {
    xs.push_back(static_cast<double>(i) / static_cast<double>(n + 1));
  }
  const KsResult r = ks_test_uniform(xs);
  EXPECT_NEAR(r.statistic, 0.1, 1e-12);
  EXPECT_GT(r.p_value, 0.9);
}

TEST(KsTest, ClusteredSampleHasLargeStatistic) {
  // All mass at 0.95: D = F(0.95) against uniform = 0.95.
  const std::vector<double> xs(10, 0.95);
  const KsResult r = ks_test_uniform(xs);
  EXPECT_NEAR(r.statistic, 0.95, 1e-12);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(KsTest, KnownSmallCase) {
  // Sample {0.1, 0.9}: empirical CDF jumps at 0.1 (to 0.5) and 0.9 (to 1).
  // D = max(0.5 - 0.1, 0.9 - 0.5) = 0.4.
  const std::vector<double> xs{0.1, 0.9};
  const KsResult r = ks_test_uniform(xs);
  EXPECT_NEAR(r.statistic, 0.4, 1e-12);
}

TEST(KsTest, UniformSamplesScoreLowOnAverage) {
  Rng rng(11);
  std::vector<double> xs(200);
  for (double& x : xs) x = rng.uniform();
  const KsResult r = ks_test_uniform(xs);
  // For n=200 the D statistic of a genuinely uniform sample is ~0.03-0.1.
  EXPECT_LT(r.statistic, 0.15);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTest, CustomCdfOneSample) {
  // Test against CDF of U(0,2): sample drawn from U(0,1) should deviate.
  Rng rng(13);
  std::vector<double> xs(100);
  for (double& x : xs) x = rng.uniform();
  const KsResult vs_wide = ks_test_uniform(xs, 0.0, 2.0);
  EXPECT_GT(vs_wide.statistic, 0.3);
}

TEST(KsTestTwoSample, IdenticalSamplesScoreZero) {
  const std::vector<double> xs{0.1, 0.4, 0.7};
  const KsResult r = ks_test_two_sample(xs, xs);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(KsTestTwoSample, DisjointSamplesScoreOne) {
  const std::vector<double> a{0.1, 0.2};
  const std::vector<double> b{0.8, 0.9};
  EXPECT_DOUBLE_EQ(ks_test_two_sample(a, b).statistic, 1.0);
}

TEST(KsTestTwoSample, MatchesOneSampleAsymptotically) {
  // A large uniform sample as the "reference" approximates the analytic CDF.
  Rng rng(17);
  std::vector<double> xs(100), ref(20000);
  for (double& x : xs) x = rng.uniform();
  for (double& x : ref) x = rng.uniform();
  const double one = ks_test_uniform(xs).statistic;
  const double two = ks_test_two_sample(xs, ref).statistic;
  EXPECT_NEAR(one, two, 0.03);
}

TEST(KsPValue, MonotoneInD) {
  double prev = 1.1;
  for (double d : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    const double p = ks_p_value(d, 50.0);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(KsPValue, Extremes) {
  EXPECT_DOUBLE_EQ(ks_p_value(0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(ks_p_value(1.0, 10.0), 0.0);
}

// Property: D is always in [0, 1] and symmetric for the two-sample test.
class KsSymmetry : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KsSymmetry, BoundedAndSymmetric) {
  Rng rng(GetParam());
  std::vector<double> a(23), b(31);
  for (double& x : a) x = rng.normal(0.0, 1.0);
  for (double& x : b) x = rng.normal(0.5, 2.0);
  const double dab = ks_test_two_sample(a, b).statistic;
  const double dba = ks_test_two_sample(b, a).statistic;
  EXPECT_DOUBLE_EQ(dab, dba);
  EXPECT_GE(dab, 0.0);
  EXPECT_LE(dab, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KsSymmetry,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace perspector::stats
