// Integration tests: the full suite -> simulator -> Perspector pipeline at
// reduced scale, checking the cross-module behaviours the paper's results
// rely on.
#include <gtest/gtest.h>

#include "core/counter_matrix.hpp"
#include "core/event_group.hpp"
#include "core/perspector.hpp"
#include "core/subset.hpp"
#include "suites/suite_factory.hpp"

namespace perspector {
namespace {

suites::SuiteBuildOptions scale(std::uint64_t instructions) {
  suites::SuiteBuildOptions options;
  options.instructions_per_workload = instructions;
  return options;
}

sim::SimOptions sampling(std::uint64_t interval) {
  sim::SimOptions options;
  options.sample_interval = interval;
  return options;
}

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    machine_ = new sim::MachineConfig(sim::MachineConfig::xeon_e2186g());
    // 100k instructions per workload: fast but structurally faithful.
    const auto build = scale(100'000);
    const auto sim_opts = sampling(4'000);
    data_ = new std::vector<core::CounterMatrix>();
    for (const auto& spec :
         {suites::parsec(build), suites::ligra(build),
          suites::lmbench(build), suites::nbench(build),
          suites::sgxgauge(build)}) {
      data_->push_back(core::collect_counters(spec, *machine_, sim_opts));
    }
  }
  static void TearDownTestSuite() {
    delete data_;
    delete machine_;
    data_ = nullptr;
    machine_ = nullptr;
  }

  static sim::MachineConfig* machine_;
  static std::vector<core::CounterMatrix>* data_;
};

sim::MachineConfig* PipelineTest::machine_ = nullptr;
std::vector<core::CounterMatrix>* PipelineTest::data_ = nullptr;

TEST_F(PipelineTest, EndToEndScoresAreFinite) {
  const auto scores = core::Perspector().score_suites(*data_);
  ASSERT_EQ(scores.size(), data_->size());
  for (const auto& s : scores) {
    EXPECT_TRUE(std::isfinite(s.cluster)) << s.suite;
    EXPECT_TRUE(std::isfinite(s.trend)) << s.suite;
    EXPECT_TRUE(std::isfinite(s.coverage)) << s.suite;
    EXPECT_TRUE(std::isfinite(s.spread)) << s.suite;
    EXPECT_GT(s.trend, 0.0) << s.suite;
    EXPECT_GT(s.coverage, 0.0) << s.suite;
  }
}

TEST_F(PipelineTest, PaperShapeClusterLigraWorst) {
  // Fig. 3a: Ligra (index 1 here) is the most clustered suite.
  const auto scores = core::Perspector().score_suites(*data_);
  const double ligra = scores[1].cluster;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (i == 1) continue;
    EXPECT_GT(ligra, scores[i].cluster) << scores[i].suite;
  }
}

TEST_F(PipelineTest, PaperShapeTrendRealWorkloadsBeatMicro) {
  // Fig. 3a: PARSEC (0) and SGXGauge (4) have stronger phase behaviour
  // than LMbench (2), Nbench (3), and Ligra (1).
  const auto scores = core::Perspector().score_suites(*data_);
  for (std::size_t real : {0u, 4u}) {
    for (std::size_t micro : {2u, 3u}) {
      EXPECT_GT(scores[real].trend, scores[micro].trend)
          << scores[real].suite << " vs " << scores[micro].suite;
    }
  }
}

TEST_F(PipelineTest, PaperShapeCoverageLMbenchTop) {
  // Fig. 3a: LMbench's micro probes cover the widest parameter range.
  const auto scores = core::Perspector().score_suites(*data_);
  const double lmbench = scores[2].coverage;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (i == 2) continue;
    EXPECT_GT(lmbench, scores[i].coverage) << scores[i].suite;
  }
}

TEST_F(PipelineTest, FocusedScoringShrinksLMbenchCoverage) {
  // Fig. 3c: restricting to TLB events costs LMbench most of its coverage.
  core::PerspectorOptions all_events;
  core::PerspectorOptions tlb_only;
  tlb_only.events = core::EventGroup::tlb();
  tlb_only.compute_trend = false;
  const double full =
      core::Perspector(all_events).score_suites(*data_)[2].coverage;
  const double tlb =
      core::Perspector(tlb_only).score_suites(*data_)[2].coverage;
  EXPECT_LT(tlb, 0.8 * full);
}

TEST_F(PipelineTest, DeterministicEndToEnd) {
  // Re-collecting the same suite reproduces identical counters.
  const auto build = scale(100'000);
  const auto again = core::collect_counters(suites::nbench(build), *machine_,
                                            sampling(4'000));
  EXPECT_EQ(again.values(), (*data_)[3].values());
}

TEST(SubsetIntegration, Spec17SubsetDeviationBounded) {
  // Section IV-C at reduced scale: a 43 -> 8 LHS subset tracks the
  // full-suite scores. The paper reports 6.53% at full fidelity; at this
  // heavily reduced scale (100k instructions) we only assert the deviation
  // stays in a sane band — the calibrated numbers live in
  // bench_subset_generation / EXPERIMENTS.md.
  const auto machine = sim::MachineConfig::xeon_e2186g();
  const auto data = core::collect_counters(
      suites::spec17(scale(100'000)), machine, sampling(4'000));
  core::SubsetOptions options;
  options.target_size = 8;
  const auto result = core::generate_subset(data, options);
  EXPECT_EQ(result.names.size(), 8u);
  EXPECT_LT(result.mean_deviation_pct, 80.0);
  for (double d : result.per_score_deviation_pct) {
    EXPECT_TRUE(std::isfinite(d));
  }
}

TEST(FocusedIntegration, EventGroupsProduceDifferentRankings) {
  // Focused scoring is only useful if it can change the verdict; verify
  // the coverage ranking differs between ALL and TLB for at least one pair.
  const auto machine = sim::MachineConfig::xeon_e2186g();
  const auto build = scale(100'000);
  std::vector<core::CounterMatrix> data;
  for (const auto& spec : {suites::lmbench(build), suites::spec17(build)}) {
    data.push_back(core::collect_counters(spec, machine, sampling(4'000)));
  }
  core::PerspectorOptions all_events;
  all_events.compute_trend = false;
  core::PerspectorOptions tlb;
  tlb.events = core::EventGroup::tlb();
  tlb.compute_trend = false;

  const auto full = core::Perspector(all_events).score_suites(data);
  const auto focused = core::Perspector(tlb).score_suites(data);
  const double full_gap = full[0].coverage - full[1].coverage;
  const double tlb_gap = focused[0].coverage - focused[1].coverage;
  // The gap must shrink dramatically (or invert) under TLB focus.
  EXPECT_LT(tlb_gap, 0.5 * full_gap);
}

}  // namespace
}  // namespace perspector
