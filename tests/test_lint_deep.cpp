// Cross-TU analysis tests: symbol table, call graph, and the transitive
// rules (block-serve-loop / det-taint) on in-memory mini-trees through
// the same 3-arg run_rules() entry point the binary uses in deep mode.
//
// The golden fixtures seed a violation two call hops from the root with
// the marker in a different translation unit than the root — the exact
// shape the lexical linter cannot see — and assert the precise finding
// (file, line, rule, message) including the rendered call path.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "lint/callgraph.hpp"
#include "lint/config.hpp"
#include "lint/lexer.hpp"
#include "lint/reach.hpp"
#include "lint/rules.hpp"
#include "lint/symbols.hpp"

namespace lint = perspector::lint;
using lint::Finding;
using lint::SourceFile;

namespace {

// Mirrors tools/lint/layers.conf closely enough for the deep fixtures.
const char* const kLayers = R"(
0 src/obs
1 src/store
2 src/ingest
4 src/sim
6 src/core
7 src/jobs
8 src/serve
)";

std::vector<Finding> run_deep(std::vector<SourceFile> files,
                              const std::string& seams) {
  lint::DeepConfig deep;
  deep.seams_text = seams;
  return lint::run_rules(files, lint::parse_layers(kLayers), deep);
}

std::vector<Finding> with_rule(const std::vector<Finding>& findings,
                               const std::string& rule) {
  std::vector<Finding> out;
  std::copy_if(findings.begin(), findings.end(), std::back_inserter(out),
               [&](const Finding& f) { return f.rule == rule; });
  return out;
}

// ---------------------------------------------------------------------------
// Golden fixture 1: a serve loop that reaches fsync two hops away, with
// the fsync in another TU (src/store) than the root (src/serve).

const char* const kLoopHpp = R"(#pragma once
namespace perspector::serve {
class Loop {
 public:
  void run();
  void tick();
};
}  // namespace perspector::serve
)";

const char* const kLoopCpp = R"(#include "serve/loop.hpp"
#include "store/store.hpp"
namespace perspector::serve {
void Loop::run() { tick(); }
void Loop::tick() { store::flush_all(3); }
}  // namespace perspector::serve
)";

const char* const kStoreHpp = R"(#pragma once
namespace perspector::store {
void flush_all(int fd);
}  // namespace perspector::store
)";

const char* const kStoreCpp = R"(#include "store/store.hpp"
namespace perspector::store {
void flush_all(int fd) {
  ::fsync(fd);
}
}  // namespace perspector::store
)";

std::vector<SourceFile> block_fixture() {
  return {{"src/serve/loop.hpp", kLoopHpp},
          {"src/serve/loop.cpp", kLoopCpp},
          {"src/store/store.hpp", kStoreHpp},
          {"src/store/store.cpp", kStoreCpp}};
}

TEST(LintDeep, BlockRuleCatchesCrossTuTransitivePath) {
  const auto f =
      run_deep(block_fixture(), "root block-serve-loop serve::Loop::run\n");
  const auto hits = with_rule(f, "block-serve-loop");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/store/store.cpp");
  EXPECT_EQ(hits[0].line, 4);  // the ::fsync call
  EXPECT_EQ(hits[0].message,
            "'fsync' can block the cooperative serve loop; path: "
            "serve::Loop::run -> serve::Loop::tick -> store::flush_all");
  EXPECT_TRUE(with_rule(f, "seam-config").empty());
}

TEST(LintDeep, LexicalRunCannotSeeTheTransitivePath) {
  // The 2-arg entry point stays purely lexical: no deep findings.
  const auto f =
      lint::run_rules(block_fixture(), lint::parse_layers(kLayers));
  EXPECT_TRUE(with_rule(f, "block-serve-loop").empty());
  EXPECT_TRUE(with_rule(f, "det-taint").empty());
}

TEST(LintDeep, RootBodyIsScannedAndUnreachableMarkersAreNot) {
  // A marker in a function nothing on the path calls is NOT a finding;
  // the root's own body IS scanned (a zero-hop path).
  auto files = block_fixture();
  files.push_back({"src/store/cold.cpp",
                   "namespace perspector::store {\n"
                   "void cold_sync() {\n"
                   "  ::fsync(9);\n"
                   "}\n"
                   "}  // namespace perspector::store\n"});
  const auto f =
      run_deep(std::move(files), "root block-serve-loop store::flush_all\n");
  const auto hits = with_rule(f, "block-serve-loop");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/store/store.cpp");
  EXPECT_EQ(hits[0].message,
            "'fsync' can block the cooperative serve loop; path: "
            "store::flush_all");
}

// ---------------------------------------------------------------------------
// Golden fixture 2: a scoring root that reaches a steady_clock read two
// hops away in src/obs — a dir the lexical det-clock rule allowlists, so
// only the transitive rule can catch the taint.

const char* const kScorerHpp = R"(#pragma once
namespace perspector::core {
class Scorer {
 public:
  double score_suites();
  double normalize(double v);
};
}  // namespace perspector::core
)";

const char* const kScorerCpp = R"(#include "core/scorer.hpp"
#include "obs/meter.hpp"
namespace perspector::core {
double Scorer::score_suites() { return normalize(1.0); }
double Scorer::normalize(double v) { return v * obs::stamp(); }
}  // namespace perspector::core
)";

const char* const kMeterHpp = R"(#pragma once
namespace perspector::obs {
double stamp();
}  // namespace perspector::obs
)";

const char* const kMeterCpp = R"(#include "obs/meter.hpp"
#include <chrono>
namespace perspector::obs {
double stamp() {
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}
}  // namespace perspector::obs
)";

// As kMeterCpp but with the seam annotation on the definition.
const char* const kMeterCppSeamed = R"(#include "obs/meter.hpp"
#include <chrono>
namespace perspector::obs {
// lint:seam(det-taint): meter feeds the display only, never a score
double stamp() {
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}
}  // namespace perspector::obs
)";

std::vector<SourceFile> taint_fixture(const char* meter_cpp = kMeterCpp) {
  return {{"src/core/scorer.hpp", kScorerHpp},
          {"src/core/scorer.cpp", kScorerCpp},
          {"src/obs/meter.hpp", kMeterHpp},
          {"src/obs/meter.cpp", meter_cpp}};
}

constexpr const char* kTaintRoot = "root det-taint core::Scorer::score_suites\n";

TEST(LintDeep, DetTaintCatchesClockReadAcrossTus) {
  const auto f = run_deep(taint_fixture(), kTaintRoot);
  const auto hits = with_rule(f, "det-taint");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/obs/meter.cpp");
  EXPECT_EQ(hits[0].line, 5);  // the steady_clock::now() read
  EXPECT_EQ(hits[0].message,
            "'steady_clock::now' taints scoring with nondeterminism; path: "
            "core::Scorer::score_suites -> core::Scorer::normalize -> "
            "obs::stamp");
  // And the lexical det-clock rule indeed stays silent: src/obs is on
  // its allowlist, which is exactly why the transitive rule exists.
  EXPECT_TRUE(with_rule(f, "det-clock").empty());
}

// ---------------------------------------------------------------------------
// Seam policy: suppression requires BOTH the seams.conf entry and the
// code-side annotation; each one alone is a seam-config finding.

TEST(LintDeep, SeamWithConfAndAnnotationSuppressesPath) {
  const auto f = run_deep(taint_fixture(kMeterCppSeamed),
                          std::string(kTaintRoot) + "seam det-taint obs::stamp\n");
  EXPECT_TRUE(with_rule(f, "det-taint").empty());
  EXPECT_TRUE(with_rule(f, "seam-config").empty());
}

TEST(LintDeep, ConfEntryWithoutAnnotationIsFlagged) {
  const auto f = run_deep(taint_fixture(),
                          std::string(kTaintRoot) + "seam det-taint obs::stamp\n");
  // The declared seam still bounds the traversal...
  EXPECT_TRUE(with_rule(f, "det-taint").empty());
  // ...but the missing annotation is its own finding, at the definition.
  const auto hits = with_rule(f, "seam-config");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/obs/meter.cpp");
  EXPECT_EQ(hits[0].line, 4);
  EXPECT_NE(hits[0].message.find("lacks a lint:seam(det-taint) annotation"),
            std::string::npos);
}

TEST(LintDeep, AnnotationWithoutConfEntryIsFlagged) {
  const auto f = run_deep(taint_fixture(kMeterCppSeamed), kTaintRoot);
  // An annotation alone does NOT suppress: the path is still a finding.
  EXPECT_EQ(with_rule(f, "det-taint").size(), 1u);
  const auto hits = with_rule(f, "seam-config");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/obs/meter.cpp");
  EXPECT_EQ(hits[0].line, 4);  // the annotation line
  EXPECT_NE(hits[0].message.find("has no matching seam entry"),
            std::string::npos);
}

TEST(LintDeep, StaleConfEntryIsFlagged) {
  const auto f = run_deep(taint_fixture(),
                          std::string(kTaintRoot) +
                              "seam det-taint gone::Missing::fn\n");
  const auto hits = with_rule(f, "seam-config");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "tools/lint/seams.conf");
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_NE(hits[0].message.find("stale seams.conf entry"), std::string::npos);
  EXPECT_NE(hits[0].message.find("gone::Missing::fn"), std::string::npos);
}

TEST(LintDeep, MalformedSeamsLineIsFlagged) {
  const auto f = run_deep(taint_fixture(),
                          "seam det-taint\n"        // missing pattern
                          "grow det-taint a::b\n"   // unknown kind
                          "# comment\n" +
                              std::string(kTaintRoot));
  const auto hits = with_rule(f, "seam-config");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_EQ(hits[1].line, 2);
  EXPECT_NE(hits[0].message.find("malformed line"), std::string::npos);
}

TEST(LintDeep, AnnotationNamingUnknownRuleIsFlagged) {
  auto files = taint_fixture();
  files[3].text =
      "#include \"obs/meter.hpp\"\n"
      "namespace perspector::obs {\n"
      "// lint:seam(det-hash): not a transitive rule\n"
      "double stamp() { return 0.0; }\n"
      "}  // namespace perspector::obs\n";
  const auto f = run_deep(std::move(files), kTaintRoot);
  const auto hits = with_rule(f, "seam-config");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_NE(hits[0].message.find("unknown rule 'det-hash'"),
            std::string::npos);
}

TEST(LintDeep, AnnotationNotOnADefinitionIsFlagged) {
  auto files = taint_fixture();
  files[3].text =
      "#include \"obs/meter.hpp\"\n"
      "// lint:seam(det-taint): floating annotation, no definition here\n"
      "namespace perspector::obs {\n"
      "double stamp() { return 0.0; }\n"
      "}  // namespace perspector::obs\n";
  const auto f = run_deep(std::move(files), kTaintRoot);
  const auto hits = with_rule(f, "seam-config");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_NE(hits[0].message.find("not attached to a function definition"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// lint:allow on a function definition prunes its whole subtree from the
// transitive rules (same contract as the per-line allow, lifted to the
// call graph).

TEST(LintDeep, AllowOnIntermediateFunctionSuppressesSubtree) {
  auto files = block_fixture();
  files[1].text =
      "#include \"serve/loop.hpp\"\n"
      "#include \"store/store.hpp\"\n"
      "namespace perspector::serve {\n"
      "void Loop::run() { tick(); }\n"
      "// lint:allow(block-serve-loop): fixture — reviewed bounded flush\n"
      "void Loop::tick() { store::flush_all(3); }\n"
      "}  // namespace perspector::serve\n";
  const auto f =
      run_deep(std::move(files), "root block-serve-loop serve::Loop::run\n");
  EXPECT_TRUE(with_rule(f, "block-serve-loop").empty());
}

TEST(LintDeep, AllowOnRootSuppressesEverything) {
  auto files = block_fixture();
  files[1].text =
      "#include \"serve/loop.hpp\"\n"
      "#include \"store/store.hpp\"\n"
      "namespace perspector::serve {\n"
      "// lint:allow(block-serve-loop): fixture — root opted out\n"
      "void Loop::run() { tick(); }\n"
      "void Loop::tick() { store::flush_all(3); }\n"
      "}  // namespace perspector::serve\n";
  const auto f =
      run_deep(std::move(files), "root block-serve-loop serve::Loop::run\n");
  EXPECT_TRUE(with_rule(f, "block-serve-loop").empty());
}

TEST(LintDeep, AllowForOtherRuleDoesNotSuppress) {
  auto files = block_fixture();
  files[1].text =
      "#include \"serve/loop.hpp\"\n"
      "#include \"store/store.hpp\"\n"
      "namespace perspector::serve {\n"
      "void Loop::run() { tick(); }\n"
      "// lint:allow(det-taint): wrong rule for this path\n"
      "void Loop::tick() { store::flush_all(3); }\n"
      "}  // namespace perspector::serve\n";
  const auto f =
      run_deep(std::move(files), "root block-serve-loop serve::Loop::run\n");
  EXPECT_EQ(with_rule(f, "block-serve-loop").size(), 1u);
}

// ---------------------------------------------------------------------------
// Resolution corners the golden fixtures don't cover.

TEST(LintDeep, VirtualDispatchOverApproximatesToDerived) {
  // A call through a base reference reaches every derived override —
  // the conservative over-approximation the rule set is built on. The
  // caller's TU does not even include the derived class's header.
  const std::vector<SourceFile> files = {
      {"src/serve/backend.hpp",
       "#pragma once\n"
       "namespace perspector::serve {\n"
       "class Backend {\n"
       " public:\n"
       "  virtual ~Backend() = default;\n"
       "  virtual void step() = 0;\n"
       "};\n"
       "}  // namespace perspector::serve\n"},
      {"src/serve/slow_backend.hpp",
       "#pragma once\n"
       "#include \"serve/backend.hpp\"\n"
       "namespace perspector::serve {\n"
       "class SlowBackend : public Backend {\n"
       " public:\n"
       "  void step() override {\n"
       "    std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
       "  }\n"
       "};\n"
       "}  // namespace perspector::serve\n"},
      {"src/serve/drive.cpp",
       "#include \"serve/backend.hpp\"\n"
       "namespace perspector::serve {\n"
       "void drive(Backend& backend) {\n"
       "  backend.step();\n"
       "}\n"
       "}  // namespace perspector::serve\n"}};
  const auto f = run_deep(files, "root block-serve-loop serve::drive\n");
  const auto hits = with_rule(f, "block-serve-loop");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/serve/slow_backend.hpp");
  EXPECT_EQ(hits[0].line, 7);
  EXPECT_EQ(hits[0].message,
            "'sleep_for' can block the cooperative serve loop; path: "
            "serve::drive -> serve::SlowBackend::step");
}

TEST(LintDeep, ConstructorInitListCallsAreGraphEdges) {
  // build_widget -> Widget::Widget (constructor) -> seed_value, where
  // the tainted call sits in the constructor's initializer list.
  const std::vector<SourceFile> files = {
      {"src/core/widget.hpp",
       "#pragma once\n"
       "namespace perspector::core {\n"
       "int seed_value(int salt);\n"
       "class Widget {\n"
       " public:\n"
       "  explicit Widget(int salt);\n"
       "  int value() const { return v_; }\n"
       " private:\n"
       "  int v_;\n"
       "};\n"
       "int build_widget();\n"
       "}  // namespace perspector::core\n"},
      {"src/core/widget.cpp",
       "#include \"core/widget.hpp\"\n"
       "namespace perspector::core {\n"
       "int seed_value(int salt) {\n"
       "  // lint:allow(det-rand): fixture — the deep rule must still fire\n"
       "  return salt ^ std::rand();\n"
       "}\n"
       "Widget::Widget(int salt) : v_(seed_value(salt)) {}\n"
       "int build_widget() {\n"
       "  Widget w(3);\n"
       "  return w.value();\n"
       "}\n"
       "}  // namespace perspector::core\n"}};
  const auto f = run_deep(files, "root det-taint core::build_widget\n");
  const auto hits = with_rule(f, "det-taint");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/core/widget.cpp");
  EXPECT_EQ(hits[0].line, 5);
  EXPECT_EQ(hits[0].message,
            "'rand' taints scoring with nondeterminism; path: "
            "core::build_widget -> core::Widget::Widget -> core::seed_value");
}

TEST(LintDeep, UnorderedMemberUseIsATaintMarker) {
  const std::vector<SourceFile> files = {
      {"src/jobs/dedup.hpp",
       "#pragma once\n"
       "#include <unordered_set>\n"
       "namespace perspector::jobs {\n"
       "class Dedup {\n"
       " public:\n"
       "  bool add(unsigned long long key);\n"
       " private:\n"
       "  std::unordered_set<unsigned long long> seen_;\n"
       "};\n"
       "}  // namespace perspector::jobs\n"},
      {"src/jobs/dedup.cpp",
       "#include \"jobs/dedup.hpp\"\n"
       "namespace perspector::jobs {\n"
       "bool Dedup::add(unsigned long long key) {\n"
       "  return seen_.insert(key).second;\n"
       "}\n"
       "}  // namespace perspector::jobs\n"},
      {"src/jobs/runner.cpp",
       "#include \"jobs/dedup.hpp\"\n"
       "namespace perspector::jobs {\n"
       "int runner() {\n"
       "  Dedup d;\n"
       "  return d.add(7) ? 1 : 0;\n"
       "}\n"
       "}  // namespace perspector::jobs\n"}};
  const auto f = run_deep(files, "root det-taint jobs::runner\n");
  const auto hits = with_rule(f, "det-taint");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/jobs/dedup.cpp");
  EXPECT_EQ(hits[0].line, 4);
  EXPECT_NE(hits[0].message.find("'seen_ (unordered container)'"),
            std::string::npos);
  EXPECT_NE(hits[0].message.find("jobs::runner -> jobs::Dedup::add"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// seams.conf parsing and pattern semantics.

TEST(LintDeep, ParseSeams) {
  std::vector<Finding> findings;
  const auto cfg = lint::parse_seams(
      "# comment\n"
      "\n"
      "root det-taint core::Perspector::score_suites\n"
      "seam block-serve-loop store::CheckpointLog::append  # trailing\n",
      "tools/lint/seams.conf", findings);
  EXPECT_TRUE(findings.empty());
  ASSERT_EQ(cfg.entries.size(), 2u);
  EXPECT_TRUE(cfg.entries[0].is_root);
  EXPECT_EQ(cfg.entries[0].rule, "det-taint");
  EXPECT_EQ(cfg.entries[0].pattern, "core::Perspector::score_suites");
  EXPECT_EQ(cfg.entries[0].line, 3);
  EXPECT_FALSE(cfg.entries[1].is_root);
  EXPECT_EQ(cfg.entries[1].line, 4);
}

TEST(LintDeep, PatternMatchesComponentSuffix) {
  const std::string fn = "perspector::serve::Session::run";
  EXPECT_TRUE(lint::pattern_matches("run", fn));
  EXPECT_TRUE(lint::pattern_matches("Session::run", fn));
  EXPECT_TRUE(lint::pattern_matches("serve::Session::run", fn));
  EXPECT_TRUE(lint::pattern_matches("perspector::serve::Session::run", fn));
  // Components match whole, aligned at the end.
  EXPECT_FALSE(lint::pattern_matches("ession::run", fn));
  EXPECT_FALSE(lint::pattern_matches("Session", fn));
  EXPECT_FALSE(lint::pattern_matches("core::Session::run", fn));
}

TEST(LintDeep, PatternMatchesClassWildcard) {
  EXPECT_TRUE(lint::pattern_matches("SubsetSearch::*",
                                    "perspector::jobs::SubsetSearch::step"));
  EXPECT_TRUE(
      lint::pattern_matches("jobs::SubsetSearch::*",
                            "perspector::jobs::SubsetSearch::SubsetSearch"));
  // The wildcard needs at least one component after the match.
  EXPECT_FALSE(lint::pattern_matches("SubsetSearch::*",
                                     "perspector::jobs::SubsetSearch"));
  EXPECT_FALSE(lint::pattern_matches("SubsetSearch::*",
                                     "perspector::jobs::Scheduler::step"));
}

// ---------------------------------------------------------------------------
// Call-graph dump: deterministic, sorted, and faithful to the edges.

TEST(LintDeep, CallgraphDumpIsDeterministicAndSorted) {
  std::vector<lint::LexedFile> lexed;
  for (const SourceFile& f : block_fixture()) {
    lexed.push_back(lint::lex(f.path, f.text));
  }
  const auto table = lint::build_symbols(lexed);
  const auto graph = lint::build_callgraph(table, lexed);

  std::ostringstream a, b;
  lint::dump_callgraph_json(table, graph, a);
  lint::dump_callgraph_json(table, graph, b);
  EXPECT_EQ(a.str(), b.str());

  const std::string json = a.str();
  const auto run_pos = json.find("\"perspector::serve::Loop::run\"");
  const auto tick_pos = json.find("\"perspector::serve::Loop::tick\"");
  ASSERT_NE(run_pos, std::string::npos);
  ASSERT_NE(tick_pos, std::string::npos);
  // Functions are sorted by qualified name: run before tick.
  EXPECT_LT(run_pos, tick_pos);
  // run's entry lists tick as a callee, tick lists flush_all.
  EXPECT_NE(json.find("\"perspector::store::flush_all\""), std::string::npos);
}

}  // namespace
