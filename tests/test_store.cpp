// SegmentStore: durability, recovery, and never-serve-corrupt.
//
// The property test drives a store with a fixed-seed random workload and
// checks every get() against an in-memory reference map — including
// across close/reopen cycles and budget-driven segment compaction, where
// the reference map learns which keys the store was allowed to forget.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "stats/rng.hpp"
#include "store/segment_store.hpp"

namespace fs = std::filesystem;
using perspector::store::SegmentStore;
using perspector::store::StoreKey;
using perspector::store::StoreOptions;

namespace {

std::string fresh_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/perspector_store_" + name;
  fs::remove_all(path);
  return path;
}

StoreKey key_of(std::uint64_t n) {
  // Spread sequential ids over the key space the way real content
  // digests would be spread.
  return StoreKey{n * 0x9e3779b97f4a7c15ull + 1, n ^ 0xabcdef0123456789ull};
}

std::string value_of(std::uint64_t n, std::size_t length) {
  std::string value;
  value.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    value.push_back(static_cast<char>('a' + (n + i * 7) % 26));
  }
  return value;
}

struct Comparator {
  bool operator()(const StoreKey& a, const StoreKey& b) const {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};
using Reference = std::map<StoreKey, std::string, Comparator>;

}  // namespace

TEST(SegmentStore, PutGetRoundTrip) {
  const std::string dir = fresh_dir("roundtrip");
  SegmentStore store(StoreOptions{.dir = dir});
  EXPECT_FALSE(store.get(key_of(1)).has_value());
  EXPECT_TRUE(store.put(key_of(1), "hello"));
  const auto hit = store.get(key_of(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "hello");
  EXPECT_EQ(store.entries(), 1u);
}

TEST(SegmentStore, PutIsWriteOnce) {
  const std::string dir = fresh_dir("writeonce");
  SegmentStore store(StoreOptions{.dir = dir});
  ASSERT_TRUE(store.put(key_of(2), "first"));
  // Content addressing: same key means same bytes, so the second put is
  // a no-op success and the first value stays.
  EXPECT_TRUE(store.put(key_of(2), "second"));
  EXPECT_EQ(store.get(key_of(2)).value(), "first");
  EXPECT_EQ(store.entries(), 1u);
}

TEST(SegmentStore, EmptyValueRoundTrips) {
  const std::string dir = fresh_dir("empty_value");
  SegmentStore store(StoreOptions{.dir = dir});
  ASSERT_TRUE(store.put(key_of(3), ""));
  const auto hit = store.get(key_of(3));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->empty());
}

TEST(SegmentStore, SurvivesReopenWithFlush) {
  const std::string dir = fresh_dir("reopen_flush");
  {
    SegmentStore store(StoreOptions{.dir = dir});
    for (std::uint64_t n = 0; n < 50; ++n) {
      ASSERT_TRUE(store.put(key_of(n), value_of(n, 64)));
    }
    store.flush();
  }
  SegmentStore store(StoreOptions{.dir = dir});
  EXPECT_EQ(store.entries(), 50u);
  for (std::uint64_t n = 0; n < 50; ++n) {
    EXPECT_EQ(store.get(key_of(n)).value(), value_of(n, 64)) << n;
  }
}

TEST(SegmentStore, RecoversUnflushedTailByReplay) {
  const std::string dir = fresh_dir("reopen_noflush");
  {
    SegmentStore store(StoreOptions{.dir = dir});
    for (std::uint64_t n = 0; n < 20; ++n) {
      ASSERT_TRUE(store.put(key_of(n), value_of(n, 32)));
    }
    // No flush: the watermark never advances, so reopen must replay the
    // segment tail to find the records (SIGKILL survival path).
  }
  SegmentStore store(StoreOptions{.dir = dir});
  EXPECT_EQ(store.entries(), 20u);
  for (std::uint64_t n = 0; n < 20; ++n) {
    EXPECT_EQ(store.get(key_of(n)).value(), value_of(n, 32)) << n;
  }
}

TEST(SegmentStore, TruncatedTailIsSkippedOnRecovery) {
  const std::string dir = fresh_dir("torn_tail");
  {
    SegmentStore store(StoreOptions{.dir = dir});
    ASSERT_TRUE(store.put(key_of(1), value_of(1, 100)));
    ASSERT_TRUE(store.put(key_of(2), value_of(2, 100)));
  }
  // Tear the last record: chop 40 bytes off the active segment, the way
  // a crash mid-append would.
  const fs::path segment = fs::path(dir) / "seg-000001.psd";
  ASSERT_TRUE(fs::exists(segment));
  const auto size = fs::file_size(segment);
  fs::resize_file(segment, size - 40);

  SegmentStore store(StoreOptions{.dir = dir});
  EXPECT_EQ(store.get(key_of(1)).value(), value_of(1, 100));
  EXPECT_FALSE(store.get(key_of(2)).has_value());  // torn, never served
  // The torn tail was truncated away, so the store keeps appending.
  ASSERT_TRUE(store.put(key_of(3), value_of(3, 100)));
  EXPECT_EQ(store.get(key_of(3)).value(), value_of(3, 100));
}

TEST(SegmentStore, CorruptedValueByteIsNeverServed) {
  const std::string dir = fresh_dir("bitflip");
  {
    SegmentStore store(StoreOptions{.dir = dir});
    ASSERT_TRUE(store.put(key_of(7), std::string(200, 'x')));
    store.flush();
  }
  // Flip one byte in the middle of the stored value.
  const fs::path segment = fs::path(dir) / "seg-000001.psd";
  {
    std::fstream file(segment, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekp(32 + 100);  // header + half the value
    file.put('y');
  }
  SegmentStore store(StoreOptions{.dir = dir});
  // The checksum catches the flip wherever it is noticed (replay or
  // get): the record degrades to a miss, never to wrong bytes.
  const auto hit = store.get(key_of(7));
  if (hit.has_value()) {
    FAIL() << "corrupt record was served: " << *hit;
  }
}

TEST(SegmentStore, EvictsOldestSegmentsUnderBudget) {
  const std::string dir = fresh_dir("budget");
  StoreOptions options;
  options.dir = dir;
  options.segment_bytes = 4 << 10;
  options.budget_bytes = 16 << 10;
  SegmentStore store(options);
  const std::string value(1 << 10, 'v');
  for (std::uint64_t n = 0; n < 64; ++n) {
    ASSERT_TRUE(store.put(key_of(n), value));
  }
  EXPECT_LE(store.bytes_used(), options.budget_bytes + options.segment_bytes);
  // The newest keys survived; the oldest were compacted away.
  EXPECT_TRUE(store.get(key_of(63)).has_value());
  EXPECT_FALSE(store.get(key_of(0)).has_value());
  EXPECT_LT(store.entries(), 64u);
}

TEST(SegmentStore, OversizeValueFailsCleanly) {
  const std::string dir = fresh_dir("oversize");
  StoreOptions options;
  options.dir = dir;
  options.segment_bytes = 4 << 10;
  options.budget_bytes = 8 << 10;
  SegmentStore store(options);
  EXPECT_FALSE(store.put(key_of(1), std::string(64 << 10, 'z')));
  ASSERT_TRUE(store.put(key_of(2), "still works"));
  EXPECT_EQ(store.get(key_of(2)).value(), "still works");
}

TEST(SegmentStore, IndexGrowsPastInitialCapacity) {
  const std::string dir = fresh_dir("index_growth");
  StoreOptions options;
  options.dir = dir;
  options.index_slots = 8;  // forces several grow-by-rebuild cycles
  SegmentStore store(options);
  for (std::uint64_t n = 0; n < 500; ++n) {
    ASSERT_TRUE(store.put(key_of(n), value_of(n, 16)));
  }
  EXPECT_EQ(store.entries(), 500u);
  for (std::uint64_t n = 0; n < 500; ++n) {
    ASSERT_EQ(store.get(key_of(n)).value(), value_of(n, 16)) << n;
  }
}

TEST(SegmentStore, GarbageIndexFileTriggersRebuild) {
  const std::string dir = fresh_dir("bad_index");
  {
    SegmentStore store(StoreOptions{.dir = dir});
    ASSERT_TRUE(store.put(key_of(1), "payload"));
    store.flush();
  }
  {
    std::ofstream index(fs::path(dir) / "index.psi",
                        std::ios::binary | std::ios::trunc);
    index << "this is not an index";
  }
  SegmentStore store(StoreOptions{.dir = dir});
  EXPECT_EQ(store.get(key_of(1)).value(), "payload");
}

TEST(SegmentStore, RandomizedAgainstReferenceMapAcrossReopens) {
  const std::string dir = fresh_dir("property");
  StoreOptions options;
  options.dir = dir;
  options.segment_bytes = 8 << 10;
  options.budget_bytes = 1 << 20;  // roomy: no eviction in this test
  options.index_slots = 16;

  perspector::stats::Rng rng(20260809);
  Reference reference;
  auto store = std::make_unique<SegmentStore>(options);
  std::uint64_t next_id = 0;

  for (int step = 0; step < 4000; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.45) {  // put a fresh key
      const std::uint64_t id = next_id++;
      const std::size_t length = rng.uniform_int(0, 300);
      const std::string value = value_of(id, length);
      ASSERT_TRUE(store->put(key_of(id), value));
      reference.emplace(key_of(id), value);
    } else if (roll < 0.55 && next_id > 0) {  // re-put an existing key
      const std::uint64_t id = rng.uniform_int(0, next_id - 1);
      ASSERT_TRUE(store->put(key_of(id), "overwrite-attempt"));
    } else if (roll < 0.95) {  // point lookup (hit or miss)
      const std::uint64_t id = rng.uniform_int(0, next_id + 3);
      const auto expected = reference.find(key_of(id));
      const auto actual = store->get(key_of(id));
      if (expected == reference.end()) {
        ASSERT_FALSE(actual.has_value()) << "step " << step;
      } else {
        ASSERT_TRUE(actual.has_value()) << "step " << step;
        ASSERT_EQ(*actual, expected->second) << "step " << step;
      }
    } else {  // close and reopen, sometimes without a flush
      if (rng.bernoulli(0.5)) store->flush();
      store.reset();
      store = std::make_unique<SegmentStore>(options);
    }
  }

  ASSERT_EQ(store->entries(), reference.size());
  for (const auto& [key, value] : reference) {
    const auto actual = store->get(key);
    ASSERT_TRUE(actual.has_value());
    ASSERT_EQ(*actual, value);
  }
}

TEST(SegmentStore, RandomizedWithCompactionNeverServesWrongBytes) {
  const std::string dir = fresh_dir("property_evict");
  StoreOptions options;
  options.dir = dir;
  options.segment_bytes = 4 << 10;
  options.budget_bytes = 12 << 10;  // tight: constant segment turnover
  options.index_slots = 16;

  perspector::stats::Rng rng(97);
  Reference reference;  // what was ever written (eviction may drop keys)
  SegmentStore store(options);
  std::uint64_t next_id = 0;

  for (int step = 0; step < 2000; ++step) {
    if (rng.bernoulli(0.5)) {
      const std::uint64_t id = next_id++;
      const std::string value = value_of(id, rng.uniform_int(1, 600));
      ASSERT_TRUE(store.put(key_of(id), value));
      reference.emplace(key_of(id), value);
    } else if (next_id > 0) {
      const std::uint64_t id = rng.uniform_int(0, next_id - 1);
      const auto actual = store.get(key_of(id));
      // Under a tight budget a key may be gone — but a served value must
      // be byte-exact.
      if (actual.has_value()) {
        ASSERT_EQ(*actual, reference.at(key_of(id))) << "step " << step;
      }
    }
  }
  EXPECT_LE(store.bytes_used(), options.budget_bytes + options.segment_bytes);
  EXPECT_GT(store.segment_count(), 0u);
}
