#include "stats/normalize.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace perspector::stats {
namespace {

TEST(MinMaxNormalize, MapsToUnitInterval) {
  const std::vector<double> xs{10.0, 20.0, 30.0};
  const auto out = minmax_normalize(xs);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(MinMaxNormalize, CustomRange) {
  const std::vector<double> xs{0.0, 1.0};
  const auto out = minmax_normalize(xs, -1.0, 1.0);
  EXPECT_DOUBLE_EQ(out[0], -1.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
}

TEST(MinMaxNormalize, ConstantInputMapsToMidpoint) {
  const std::vector<double> xs{7.0, 7.0, 7.0};
  const auto out = minmax_normalize(xs);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(MinMaxNormalize, EmptyInput) {
  EXPECT_TRUE(minmax_normalize(std::vector<double>{}).empty());
}

TEST(MinMaxNormalizeWithRange, ClampsOutOfRange) {
  const std::vector<double> xs{-5.0, 5.0, 15.0};
  const auto out = minmax_normalize_with_range(xs, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(MinMaxNormalizeWithRange, DegenerateSourceRange) {
  const std::vector<double> xs{3.0, 3.0};
  const auto out = minmax_normalize_with_range(xs, 3.0, 3.0);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(MinMaxNormalizeWithRange, RejectsEmptyTargetRange) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(minmax_normalize_with_range(xs, 0.0, 1.0, 1.0, 1.0),
               std::invalid_argument);
}

TEST(ZScoreNormalize, MeanZeroUnitVariance) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto out = zscore_normalize(xs);
  EXPECT_NEAR(mean(out), 0.0, 1e-12);
  EXPECT_NEAR(stddev_population(out), 1.0, 1e-12);
}

TEST(ZScoreNormalize, ConstantInputMapsToZeros) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  for (double v : zscore_normalize(xs)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MatrixNormalize, ColumnsIndependent) {
  la::Matrix m{{0.0, 100.0}, {10.0, 200.0}};
  const la::Matrix out = minmax_normalize_columns(m);
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(out(1, 1), 1.0);
}

TEST(MatrixNormalize, ZScoreColumns) {
  la::Matrix m{{1.0}, {2.0}, {3.0}};
  const la::Matrix out = zscore_normalize_columns(m);
  EXPECT_NEAR(out(0, 0) + out(1, 0) + out(2, 0), 0.0, 1e-12);
}

// Property sweep: min-max output is always inside [0,1] and order-preserving
// for random inputs of different sizes.
class MinMaxProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MinMaxProperty, BoundedAndOrderPreserving) {
  stats::Rng rng(GetParam());
  std::vector<double> xs(GetParam());
  for (double& x : xs) x = rng.uniform(-1e6, 1e6);
  const auto out = minmax_normalize(xs);
  for (double v : out) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if (xs[i] < xs[j]) {
        EXPECT_LE(out[i], out[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MinMaxProperty,
                         ::testing::Values(1, 2, 3, 10, 50));

}  // namespace
}  // namespace perspector::stats
