#include "cluster/kmeans.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "stats/rng.hpp"

namespace perspector::cluster {
namespace {

la::Matrix two_blobs(std::size_t per_blob, std::uint64_t seed) {
  stats::Rng rng(seed);
  la::Matrix points(2 * per_blob, 2);
  for (std::size_t i = 0; i < per_blob; ++i) {
    points(i, 0) = rng.normal(0.0, 0.05);
    points(i, 1) = rng.normal(0.0, 0.05);
    points(per_blob + i, 0) = rng.normal(5.0, 0.05);
    points(per_blob + i, 1) = rng.normal(5.0, 0.05);
  }
  return points;
}

TEST(KMeans, ValidatesArguments) {
  la::Matrix points{{0.0, 0.0}, {1.0, 1.0}};
  KMeansConfig config;
  config.k = 0;
  EXPECT_THROW(kmeans(points, config), std::invalid_argument);
  config.k = 3;
  EXPECT_THROW(kmeans(points, config), std::invalid_argument);
  config.k = 1;
  config.restarts = 0;
  EXPECT_THROW(kmeans(points, config), std::invalid_argument);
  EXPECT_THROW(kmeans(la::Matrix{}, KMeansConfig{}), std::invalid_argument);
}

TEST(KMeans, SeparatesTwoBlobs) {
  const la::Matrix points = two_blobs(10, 1);
  KMeansConfig config;
  config.k = 2;
  const KMeansResult result = kmeans(points, config);

  // All points of a blob share one label, the blobs differ.
  const std::size_t label_a = result.labels[0];
  const std::size_t label_b = result.labels[10];
  EXPECT_NE(label_a, label_b);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(result.labels[i], label_a);
    EXPECT_EQ(result.labels[10 + i], label_b);
  }
  EXPECT_TRUE(result.converged);
  // Centroids near (0,0) and (5,5).
  const double c0 = result.centroids(label_a, 0);
  EXPECT_NEAR(c0, 0.0, 0.2);
  EXPECT_NEAR(result.centroids(label_b, 0), 5.0, 0.2);
}

TEST(KMeans, KEqualsOneGivesSingleCluster) {
  const la::Matrix points = two_blobs(5, 2);
  KMeansConfig config;
  config.k = 1;
  const KMeansResult result = kmeans(points, config);
  for (std::size_t label : result.labels) EXPECT_EQ(label, 0u);
  // Centroid is the global mean (2.5, 2.5).
  EXPECT_NEAR(result.centroids(0, 0), 2.5, 0.2);
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
  la::Matrix points{{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
  KMeansConfig config;
  config.k = 3;
  const KMeansResult result = kmeans(points, config);
  EXPECT_NEAR(result.inertia, 0.0, 1e-18);
  const std::set<std::size_t> labels(result.labels.begin(),
                                     result.labels.end());
  EXPECT_EQ(labels.size(), 3u);
}

TEST(KMeans, DeterministicForSeed) {
  const la::Matrix points = two_blobs(8, 3);
  KMeansConfig config;
  config.k = 3;
  config.seed = 99;
  const auto a = kmeans(points, config);
  const auto b = kmeans(points, config);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, DuplicatePointsDoNotCrash) {
  la::Matrix points(6, 2, 1.0);  // all identical
  KMeansConfig config;
  config.k = 3;
  const KMeansResult result = kmeans(points, config);
  EXPECT_NEAR(result.inertia, 0.0, 1e-18);
}

TEST(KMeans, InertiaDecreasesWithK) {
  const la::Matrix points = two_blobs(10, 4);
  double prev = 1e18;
  for (std::size_t k = 1; k <= 4; ++k) {
    KMeansConfig config;
    config.k = k;
    const double inertia = kmeans(points, config).inertia;
    EXPECT_LE(inertia, prev + 1e-9);
    prev = inertia;
  }
}

TEST(ClusterSizes, CountsAndValidates) {
  const std::vector<std::size_t> labels{0, 1, 1, 2, 2, 2};
  const auto sizes = cluster_sizes(labels, 3);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_THROW(cluster_sizes(labels, 2), std::invalid_argument);
}

// Property: every cluster is non-empty and labels are within range, for
// varying k on a fixed random point set.
class KMeansProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KMeansProperty, NonEmptyClustersAndValidLabels) {
  stats::Rng rng(21);
  la::Matrix points(24, 3);
  for (std::size_t r = 0; r < 24; ++r) {
    for (std::size_t c = 0; c < 3; ++c) points(r, c) = rng.uniform();
  }
  KMeansConfig config;
  config.k = GetParam();
  const KMeansResult result = kmeans(points, config);
  const auto sizes = cluster_sizes(result.labels, config.k);
  for (std::size_t s : sizes) EXPECT_GT(s, 0u);
  EXPECT_EQ(result.centroids.rows(), config.k);
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 23, 24));

}  // namespace
}  // namespace perspector::cluster
