// ScoringWorkspace delta ops (upsert_row / remove_row).
//
// The contract under test: after any add/drop/append sequence applied
// incrementally (one O(n·m) DTW strip per touched workload), cache
// lookups are BIT-identical to a cold workspace primed from scratch on
// the mutated suite — and a stale superseded row can only ever MISS
// (map_rows verifies normalized trends element-wise), never serve wrong
// bits.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "core/counter_matrix.hpp"
#include "core/io.hpp"
#include "core/scoring_workspace.hpp"
#include "core/trend_score.hpp"
#include "stats/rng.hpp"

namespace perspector::core {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// Same generator family as test_dtw_fast.cpp: deterministic, and
// phased_suite(n) is a row-prefix of phased_suite(n + 1), so "the suite
// after add_workload" is just the longer suite.
CounterMatrix phased_suite(std::size_t workloads) {
  stats::Rng rng(901);
  std::vector<std::string> names;
  la::Matrix values;
  std::vector<std::vector<std::vector<double>>> series;
  for (std::size_t w = 0; w < workloads; ++w) {
    names.push_back("w" + std::to_string(w));
    std::vector<std::vector<double>> per_counter;
    for (std::size_t c = 0; c < 2; ++c) {
      std::vector<double> s(48, 1.0);
      const std::size_t step = 4 + (w * 5 + c * 3) % 40;
      for (std::size_t t = step; t < s.size(); ++t) {
        s[t] = 50.0 + rng.uniform(0.0, 1.0);
      }
      per_counter.push_back(std::move(s));
    }
    double t0 = 0.0, t1 = 0.0;
    for (double v : per_counter[0]) t0 += v;
    for (double v : per_counter[1]) t1 += v;
    values.append_row(std::vector<double>{t0, t1});
    series.push_back(std::move(per_counter));
  }
  return CounterMatrix("phased", names, {"c0", "c1"}, values, series);
}

void expect_trend_bitwise_equal(const TrendScoreResult& cached,
                                const TrendScoreResult& direct) {
  EXPECT_EQ(bits(cached.score), bits(direct.score));
  ASSERT_EQ(cached.per_event.size(), direct.per_event.size());
  for (std::size_t c = 0; c < cached.per_event.size(); ++c) {
    EXPECT_EQ(bits(cached.per_event[c]), bits(direct.per_event[c]));
  }
}

/// Asserts the delta-maintained workspace answers `suite` exactly like
/// the direct (uncached) trend_score — the cold-re-prime equivalence.
void expect_serves_exactly(const ScoringWorkspace& workspace,
                           const CounterMatrix& suite,
                           const TrendScoreOptions& options) {
  std::vector<std::size_t> rows;
  ASSERT_TRUE(workspace.map_rows(suite, options, rows));
  expect_trend_bitwise_equal(workspace.trend_score_from_cache(rows),
                             trend_score(suite, options));
}

TEST(WorkspaceDelta, UpsertOfNewRowMatchesColdPrime) {
  const TrendScoreOptions options;
  const CounterMatrix before = phased_suite(6);
  const CounterMatrix after = phased_suite(7);  // before + one workload

  ScoringWorkspace warm;
  warm.prime_trend(before, options);
  ASSERT_TRUE(warm.trend_usable());
  ASSERT_TRUE(warm.upsert_row(after, 6, options));

  expect_serves_exactly(warm, after, options);
  // The original rows are still live too (subset slicing unaffected).
  expect_serves_exactly(warm, before, options);
}

TEST(WorkspaceDelta, RemoveRowMasksExactlyThatWorkload) {
  const TrendScoreOptions options;
  const CounterMatrix suite = phased_suite(8);
  ScoringWorkspace warm;
  warm.prime_trend(suite, options);
  ASSERT_TRUE(warm.remove_row("w3"));

  // The surviving rows still slice bit-exactly...
  const CounterMatrix kept = suite.select_workloads({0, 1, 2, 4, 5, 6, 7});
  expect_serves_exactly(warm, kept, options);
  // ...and any view naming the dropped workload honestly misses.
  std::vector<std::size_t> rows;
  EXPECT_FALSE(warm.map_rows(suite, options, rows));
  EXPECT_FALSE(warm.remove_row("w3"));  // already gone
}

TEST(WorkspaceDelta, AddDropAddRoundTripMatchesColdPrime) {
  const TrendScoreOptions options;
  ScoringWorkspace warm;
  warm.prime_trend(phased_suite(5), options);

  // add w5, add w6, drop w2, drop w5 — then compare against a cold
  // workspace primed directly on the final suite.
  const CounterMatrix grown = phased_suite(7);
  ASSERT_TRUE(warm.upsert_row(grown, 5, options));
  ASSERT_TRUE(warm.upsert_row(grown, 6, options));
  ASSERT_TRUE(warm.remove_row("w2"));
  ASSERT_TRUE(warm.remove_row("w5"));

  const CounterMatrix final_suite = grown.select_workloads({0, 1, 3, 4, 6});
  expect_serves_exactly(warm, final_suite, options);

  ScoringWorkspace cold;
  cold.prime_trend(final_suite, options);
  std::vector<std::size_t> warm_rows, cold_rows;
  ASSERT_TRUE(warm.map_rows(final_suite, options, warm_rows));
  ASSERT_TRUE(cold.map_rows(final_suite, options, cold_rows));
  expect_trend_bitwise_equal(warm.trend_score_from_cache(warm_rows),
                             cold.trend_score_from_cache(cold_rows));
}

TEST(WorkspaceDelta, AppendSamplesUpsertSupersedesStaleRow) {
  const TrendScoreOptions options;
  const CounterMatrix before = phased_suite(6);
  ScoringWorkspace warm;
  warm.prime_trend(before, options);

  // append_samples touches w1 and w4; upsert exactly the touched rows.
  std::vector<std::size_t> touched;
  const CounterMatrix after = append_samples_csv_text(
      before,
      "workload,counter,sample,value\n"
      "w4,c0,48,9.5\n"
      "w1,c1,48,2.25\n"
      "w1,c1,49,2.5\n",
      &touched);
  ASSERT_EQ(touched, (std::vector<std::size_t>{1, 4}));
  for (const std::size_t row : touched) {
    ASSERT_TRUE(warm.upsert_row(after, row, options));
  }

  expect_serves_exactly(warm, after, options);
  // The pre-append suite's w1/w4 trends no longer match the live rows:
  // the stale view must miss, not resolve to the superseded data.
  std::vector<std::size_t> rows;
  EXPECT_FALSE(warm.map_rows(before, options, rows));
}

TEST(WorkspaceDelta, PreconditionsReturnFalseWithoutMutating) {
  const TrendScoreOptions options;
  const CounterMatrix suite = phased_suite(5);

  // Unusable cache (no series): every delta op refuses.
  const CounterMatrix bare("bare", {"a", "b"}, {"c0"},
                           la::Matrix{{1.0}, {2.0}});
  ScoringWorkspace unusable;
  unusable.prime_trend(bare, options);
  ASSERT_TRUE(unusable.trend_primed());
  ASSERT_FALSE(unusable.trend_usable());
  EXPECT_FALSE(unusable.upsert_row(suite, 0, options));
  EXPECT_FALSE(unusable.remove_row("a"));

  ScoringWorkspace warm;
  warm.prime_trend(suite, options);
  // Row out of range.
  EXPECT_FALSE(warm.upsert_row(suite, 5, options));
  // Different options than the primed ones.
  TrendScoreOptions banded;
  banded.dtw_band_fraction = 0.1;
  EXPECT_FALSE(warm.upsert_row(suite, 0, banded));
  // Different counter set.
  const CounterMatrix other = suite.select_counters({0});
  EXPECT_FALSE(warm.upsert_row(other, 0, options));
  // Unknown workload name.
  EXPECT_FALSE(warm.remove_row("nope"));
  // None of the refusals disturbed the cache.
  expect_serves_exactly(warm, suite, options);
}

}  // namespace
}  // namespace perspector::core
