#include "sim/tlb.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace perspector::sim {
namespace {

Tlb make_tiny_tlb() {
  // L1: 4 entries / 2-way (2 sets); STLB: 16 entries / 4-way (4 sets).
  return Tlb({.entries = 4, .ways = 2}, {.entries = 16, .ways = 4}, 4096, 7,
             60);
}

TEST(Tlb, ValidatesGeometry) {
  EXPECT_THROW(Tlb({.entries = 5, .ways = 2}, {.entries = 16, .ways = 4},
                   4096, 7, 60),
               std::invalid_argument);
  EXPECT_THROW(Tlb({.entries = 4, .ways = 0}, {.entries = 16, .ways = 4},
                   4096, 7, 60),
               std::invalid_argument);
  EXPECT_THROW(Tlb({.entries = 4, .ways = 2}, {.entries = 16, .ways = 4},
                   4095, 7, 60),
               std::invalid_argument);
  EXPECT_THROW(Tlb({.entries = 12, .ways = 2}, {.entries = 16, .ways = 4},
                   4096, 7, 60),
               std::invalid_argument);  // 6 sets not a power of two
}

TEST(Tlb, ColdMissWalksThenHits) {
  Tlb tlb = make_tiny_tlb();
  const auto first = tlb.access(0x1000, false);
  EXPECT_FALSE(first.l1_hit);
  EXPECT_FALSE(first.stlb_hit);
  EXPECT_EQ(first.latency_cycles, 60u);

  const auto second = tlb.access(0x1000, false);
  EXPECT_TRUE(second.l1_hit);
  EXPECT_EQ(second.latency_cycles, 0u);

  EXPECT_EQ(tlb.stats().loads, 2u);
  EXPECT_EQ(tlb.stats().load_misses, 1u);
  EXPECT_EQ(tlb.stats().page_walks, 1u);
  EXPECT_EQ(tlb.stats().walk_pending_cycles, 60u);
}

TEST(Tlb, SamePageDifferentOffsetsHit) {
  Tlb tlb = make_tiny_tlb();
  tlb.access(0x1000, false);
  EXPECT_TRUE(tlb.access(0x1FFF, false).l1_hit);
  EXPECT_FALSE(tlb.access(0x2000, false).l1_hit);  // next page
}

TEST(Tlb, StlbCatchesL1Evictions) {
  Tlb tlb = make_tiny_tlb();
  // Pages 0, 2, 4 map to L1 set 0 (2 sets); all fit in the STLB.
  tlb.access(0 << 12, false);
  tlb.access(2 << 12, false);
  tlb.access(4 << 12, false);  // evicts page 0 from L1
  const auto again = tlb.access(std::uint64_t{0} << 12, false);
  EXPECT_FALSE(again.l1_hit);
  EXPECT_TRUE(again.stlb_hit);
  EXPECT_EQ(again.latency_cycles, 7u);
  EXPECT_EQ(tlb.stats().stlb_hits, 1u);
}

TEST(Tlb, StoreStatsSeparate) {
  Tlb tlb = make_tiny_tlb();
  tlb.access(0x1000, true);
  EXPECT_EQ(tlb.stats().stores, 1u);
  EXPECT_EQ(tlb.stats().store_misses, 1u);
  EXPECT_EQ(tlb.stats().loads, 0u);
  EXPECT_EQ(tlb.stats().load_misses, 0u);
}

TEST(Tlb, WalkPendingAccumulates) {
  Tlb tlb = make_tiny_tlb();
  // 32 distinct pages overflow both levels: every access walks eventually.
  for (std::uint64_t p = 0; p < 32; ++p) {
    tlb.access(p << 12, false);
  }
  EXPECT_EQ(tlb.stats().page_walks, 32u);  // all cold
  EXPECT_EQ(tlb.stats().walk_pending_cycles, 32u * 60u);
}

TEST(Tlb, FlushClearsTranslationsKeepsStats) {
  Tlb tlb = make_tiny_tlb();
  tlb.access(0x1000, false);
  tlb.flush();
  EXPECT_FALSE(tlb.access(0x1000, false).l1_hit);
  EXPECT_EQ(tlb.stats().loads, 2u);
  tlb.reset_stats();
  EXPECT_EQ(tlb.stats().loads, 0u);
}

TEST(Tlb, WorkingSetWithinL1NeverMissesAfterWarmup) {
  Tlb tlb = make_tiny_tlb();
  // 4 pages that spread over both sets: pages 0,1,2,3.
  for (int warm = 0; warm < 2; ++warm) {
    for (std::uint64_t p = 0; p < 4; ++p) tlb.access(p << 12, false);
  }
  EXPECT_EQ(tlb.stats().load_misses, 4u);  // compulsory only
}

}  // namespace
}  // namespace perspector::sim
