#include "core/perspector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.hpp"

namespace perspector::core {
namespace {

// Builds a synthetic suite with n workloads, m counters, random values and
// simple series.
CounterMatrix synthetic_suite(const std::string& name, std::size_t n,
                              std::uint64_t seed, double scale = 1.0) {
  stats::Rng rng(seed);
  std::vector<std::string> workloads, counters;
  la::Matrix values(n, 6);
  std::vector<std::vector<std::vector<double>>> series;
  for (std::size_t c = 0; c < 6; ++c) {
    counters.push_back("c" + std::to_string(c));
  }
  for (std::size_t w = 0; w < n; ++w) {
    workloads.push_back("w" + std::to_string(w));
    std::vector<std::vector<double>> per_counter;
    for (std::size_t c = 0; c < 6; ++c) {
      values(w, c) = scale * rng.uniform();
      std::vector<double> s(20);
      for (double& v : s) v = rng.uniform(0.0, 10.0);
      per_counter.push_back(s);
    }
    series.push_back(per_counter);
  }
  return CounterMatrix(name, workloads, counters, values, series);
}

TEST(Perspector, RejectsEmptySuiteList) {
  EXPECT_THROW(Perspector().score_suites({}), std::invalid_argument);
}

TEST(Perspector, ScoresAllFourMetrics) {
  const auto suite = synthetic_suite("s", 8, 1);
  const SuiteScores scores = Perspector().score_suite(suite);
  EXPECT_EQ(scores.suite, "s");
  EXPECT_NE(scores.cluster, 0.0);
  EXPECT_GT(scores.trend, 0.0);
  EXPECT_GT(scores.coverage, 0.0);
  EXPECT_GT(scores.spread, 0.0);
  EXPECT_EQ(scores.cluster_detail.per_k.size(), 6u);  // k = 2..7
  EXPECT_EQ(scores.trend_detail.per_event.size(), 6u);
}

TEST(Perspector, TrendSkippableViaOptions) {
  PerspectorOptions options;
  options.compute_trend = false;
  const auto scores =
      Perspector(options).score_suite(synthetic_suite("s", 6, 2));
  EXPECT_DOUBLE_EQ(scores.trend, 0.0);
  EXPECT_TRUE(scores.trend_detail.per_event.empty());
}

TEST(Perspector, TrendSkippedWhenNoSeries) {
  stats::Rng rng(3);
  la::Matrix values(6, 4);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 4; ++c) values(r, c) = rng.uniform();
  }
  const CounterMatrix bare("bare", {"a", "b", "c", "d", "e", "f"},
                           {"c0", "c1", "c2", "c3"}, values);
  const auto scores = Perspector().score_suite(bare);
  EXPECT_DOUBLE_EQ(scores.trend, 0.0);
  EXPECT_GT(scores.coverage, 0.0);
}

TEST(Perspector, JointNormalizationCouplesSuites) {
  // A small-magnitude suite scored alone vs scored next to a huge-magnitude
  // suite: its coverage shrinks because the shared range expands.
  const auto small = synthetic_suite("small", 8, 4, 1.0);
  const auto big = synthetic_suite("big", 8, 5, 1000.0);
  const Perspector engine;
  const double alone = engine.score_suite(small).coverage;
  const double together = engine.score_suites({small, big})[0].coverage;
  EXPECT_LT(together, alone / 10.0);
}

TEST(Perspector, ClusterAndTrendUnaffectedByCompanions) {
  // Cluster and trend are intrinsic to a suite; scoring next to another
  // suite must not change them.
  const auto a = synthetic_suite("a", 8, 6);
  const auto b = synthetic_suite("b", 8, 7);
  const Perspector engine;
  const auto alone = engine.score_suite(a);
  const auto together = engine.score_suites({a, b})[0];
  EXPECT_DOUBLE_EQ(alone.cluster, together.cluster);
  EXPECT_DOUBLE_EQ(alone.trend, together.trend);
}

TEST(Perspector, FocusedScoringRestrictsCounters) {
  const auto suite = synthetic_suite("s", 8, 8);
  PerspectorOptions options;
  options.events = EventGroup::custom("two", {"c0", "c5"});
  const auto scores = Perspector(options).score_suite(suite);
  EXPECT_EQ(scores.trend_detail.per_event.size(), 2u);
}

TEST(Perspector, FocusedScoringUnknownCountersThrow) {
  const auto suite = synthetic_suite("s", 8, 9);
  PerspectorOptions options;
  options.events = EventGroup::custom("nope", {"missing-counter"});
  EXPECT_THROW(Perspector(options).score_suite(suite),
               std::invalid_argument);
}

TEST(Perspector, ResultOrderMatchesInput) {
  const auto a = synthetic_suite("first", 6, 10);
  const auto b = synthetic_suite("second", 7, 11);
  const auto scores = Perspector().score_suites({a, b});
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_EQ(scores[0].suite, "first");
  EXPECT_EQ(scores[1].suite, "second");
}

TEST(Perspector, Deterministic) {
  const auto suite = synthetic_suite("s", 8, 12);
  const Perspector engine;
  const auto a = engine.score_suite(suite);
  const auto b = engine.score_suite(suite);
  EXPECT_DOUBLE_EQ(a.cluster, b.cluster);
  EXPECT_DOUBLE_EQ(a.trend, b.trend);
  EXPECT_DOUBLE_EQ(a.coverage, b.coverage);
  EXPECT_DOUBLE_EQ(a.spread, b.spread);
}

}  // namespace
}  // namespace perspector::core
