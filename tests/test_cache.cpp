#include "sim/cache.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace perspector::sim {
namespace {

CacheGeometry tiny_geometry() {
  // 2 sets x 2 ways x 64B lines = 256 B.
  return {.size_bytes = 256, .line_bytes = 64, .ways = 2};
}

TEST(Cache, ValidatesGeometry) {
  EXPECT_THROW(Cache({.size_bytes = 256, .line_bytes = 48, .ways = 2}),
               std::invalid_argument);
  EXPECT_THROW(Cache({.size_bytes = 256, .line_bytes = 64, .ways = 0}),
               std::invalid_argument);
  EXPECT_THROW(Cache({.size_bytes = 100, .line_bytes = 64, .ways = 3}),
               std::invalid_argument);
  EXPECT_THROW(Cache({.size_bytes = 32, .line_bytes = 64, .ways = 1}),
               std::invalid_argument);
}

TEST(Cache, NonPowerOfTwoSetCountAllowed) {
  // 12 sets (e.g. a 12 MiB LLC slice) uses modulo indexing.
  Cache c({.size_bytes = 12 * 64 * 4, .line_bytes = 64, .ways = 4});
  EXPECT_EQ(c.sets(), 12u);
  EXPECT_FALSE(c.access(0, AccessType::Load));
  EXPECT_TRUE(c.access(0, AccessType::Load));
  // Lines 12 sets apart collide in the same set.
  EXPECT_FALSE(c.access(12 * 64, AccessType::Load));
  EXPECT_TRUE(c.access(12 * 64, AccessType::Load));
  EXPECT_TRUE(c.access(0, AccessType::Load));  // still resident (2 of 4 ways)
}

TEST(Cache, ColdMissThenHit) {
  Cache c(tiny_geometry());
  EXPECT_FALSE(c.access(0x1000, AccessType::Load));
  EXPECT_TRUE(c.access(0x1000, AccessType::Load));
  EXPECT_TRUE(c.access(0x1004, AccessType::Load));  // same line
  EXPECT_EQ(c.stats().loads, 3u);
  EXPECT_EQ(c.stats().load_misses, 1u);
}

TEST(Cache, LineGranularity) {
  Cache c(tiny_geometry());
  c.access(0, AccessType::Load);
  EXPECT_TRUE(c.access(63, AccessType::Load));    // same line
  EXPECT_FALSE(c.access(64, AccessType::Load));   // next line (other set)
}

TEST(Cache, LruEviction) {
  Cache c(tiny_geometry());  // 2 sets, 2 ways; set = (addr/64) % 2
  // Three lines mapping to set 0: line addresses 0, 2, 4 (x64 bytes).
  c.access(0 * 64, AccessType::Load);
  c.access(2 * 64, AccessType::Load);
  c.access(0 * 64, AccessType::Load);   // touch 0 -> LRU is line 2
  c.access(4 * 64, AccessType::Load);   // evicts line 2
  EXPECT_TRUE(c.contains(0 * 64));
  EXPECT_FALSE(c.contains(2 * 64));
  EXPECT_TRUE(c.contains(4 * 64));
}

TEST(Cache, StoreStatsAndWriteAllocate) {
  Cache c(tiny_geometry());
  EXPECT_FALSE(c.access(0x40, AccessType::Store));  // miss, allocates
  EXPECT_TRUE(c.access(0x40, AccessType::Load));    // now present
  EXPECT_EQ(c.stats().stores, 1u);
  EXPECT_EQ(c.stats().store_misses, 1u);
  EXPECT_EQ(c.stats().loads, 1u);
  EXPECT_EQ(c.stats().load_misses, 0u);
}

TEST(Cache, DirtyEvictionCountsWriteback) {
  Cache c(tiny_geometry());
  c.access(0 * 64, AccessType::Store);  // dirty line in set 0
  c.access(2 * 64, AccessType::Load);
  c.access(4 * 64, AccessType::Load);   // evicts the dirty line (LRU)
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback) {
  Cache c(tiny_geometry());
  c.access(0 * 64, AccessType::Load);
  c.access(2 * 64, AccessType::Load);
  c.access(4 * 64, AccessType::Load);
  EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Cache, ContainsDoesNotPerturbState) {
  Cache c(tiny_geometry());
  c.access(0, AccessType::Load);
  const auto before = c.stats().accesses();
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(0x10000));
  EXPECT_EQ(c.stats().accesses(), before);
}

TEST(Cache, FlushInvalidatesKeepsStats) {
  Cache c(tiny_geometry());
  c.access(0, AccessType::Load);
  c.flush();
  EXPECT_FALSE(c.contains(0));
  EXPECT_EQ(c.stats().loads, 1u);
  c.reset_stats();
  EXPECT_EQ(c.stats().loads, 0u);
}

TEST(Cache, MissRate) {
  Cache c(tiny_geometry());
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.0);
  c.access(0, AccessType::Load);
  c.access(0, AccessType::Load);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.5);
}

TEST(Cache, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup) {
  Cache c({.size_bytes = 4096, .line_bytes = 64, .ways = 4});
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t addr = 0; addr < 2048; addr += 64) {
      c.access(addr, AccessType::Load);
    }
  }
  // 32 compulsory misses, everything else hits.
  EXPECT_EQ(c.stats().load_misses, 32u);
}

TEST(Cache, StreamLargerThanCacheAlwaysMisses) {
  Cache c({.size_bytes = 1024, .line_bytes = 64, .ways = 2});
  // Stream 64 KiB twice: every line access misses both times (capacity).
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
      c.access(addr, AccessType::Load);
    }
  }
  EXPECT_EQ(c.stats().load_misses, c.stats().loads);
}

TEST(Cache, PrefetchFillInstallsWithoutDemandStats) {
  Cache c(tiny_geometry());
  EXPECT_TRUE(c.prefetch_fill(0x1000));
  EXPECT_EQ(c.stats().prefetch_fills, 1u);
  EXPECT_EQ(c.stats().accesses(), 0u);
  EXPECT_EQ(c.stats().misses(), 0u);
  // The prefetched line now hits on demand.
  EXPECT_TRUE(c.access(0x1000, AccessType::Load));
  // Re-prefetching a resident line is a no-op.
  EXPECT_FALSE(c.prefetch_fill(0x1000));
  EXPECT_EQ(c.stats().prefetch_fills, 1u);
}

TEST(Cache, PrefetchEvictionOfDirtyLineWritesBack) {
  Cache c(tiny_geometry());  // 2 sets x 2 ways
  c.access(0 * 64, AccessType::Store);  // dirty in set 0
  c.access(2 * 64, AccessType::Load);   // set 0 full
  EXPECT_TRUE(c.prefetch_fill(4 * 64)); // evicts LRU (the dirty line)
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, RandomPolicyStillCachesWorkingSets) {
  CacheGeometry g = tiny_geometry();
  g.replacement = ReplacementPolicy::Random;
  Cache c(g);
  // A working set matching capacity: after warmup, hit rate is high even
  // if random replacement occasionally evicts the wrong line.
  for (int pass = 0; pass < 8; ++pass) {
    for (std::uint64_t addr = 0; addr < 256; addr += 64) {
      c.access(addr, AccessType::Load);
    }
  }
  EXPECT_LT(c.stats().miss_rate(), 0.5);
  EXPECT_EQ(c.replacement(), ReplacementPolicy::Random);
}

TEST(Cache, PlruRequiresPow2Ways) {
  CacheGeometry g{.size_bytes = 192, .line_bytes = 64, .ways = 3,
                  .replacement = ReplacementPolicy::Plru};
  EXPECT_THROW(Cache{g}, std::invalid_argument);
}

TEST(Cache, PlruBehavesLikeLruOnSimplePatterns) {
  CacheGeometry g = tiny_geometry();
  g.replacement = ReplacementPolicy::Plru;
  Cache c(g);  // 2 sets x 2 ways; with 2 ways PLRU == LRU exactly
  c.access(0 * 64, AccessType::Load);
  c.access(2 * 64, AccessType::Load);
  c.access(0 * 64, AccessType::Load);  // LRU/PLRU victim is line 2
  c.access(4 * 64, AccessType::Load);
  EXPECT_TRUE(c.contains(0 * 64));
  EXPECT_FALSE(c.contains(2 * 64));
}

TEST(Cache, PlruFourWaysKeepsHotLines) {
  Cache c({.size_bytes = 4 * 64, .line_bytes = 64, .ways = 4,
           .replacement = ReplacementPolicy::Plru});
  // One set of 4 ways; touch A,B,C,D then re-touch A; filling E must not
  // evict A (it was just used).
  c.access(0 * 64, AccessType::Load);   // A
  c.access(1 * 64, AccessType::Load);   // B
  c.access(2 * 64, AccessType::Load);   // C
  c.access(3 * 64, AccessType::Load);   // D
  c.access(0 * 64, AccessType::Load);   // A again
  c.access(4 * 64, AccessType::Load);   // E: evicts some cold way
  EXPECT_TRUE(c.contains(0 * 64));
  EXPECT_EQ(c.stats().load_misses, 5u);
}

TEST(Cache, PolicyNames) {
  EXPECT_STREQ(to_string(ReplacementPolicy::Lru), "lru");
  EXPECT_STREQ(to_string(ReplacementPolicy::Random), "random");
  EXPECT_STREQ(to_string(ReplacementPolicy::Plru), "plru");
}

// Property sweep: for every policy, a warm L1-resident working set misses
// only compulsorily, and miss counters never exceed access counters.
class PolicyProperty : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(PolicyProperty, WarmResidentSetOnlyCompulsoryMisses) {
  CacheGeometry g{.size_bytes = 4096, .line_bytes = 64, .ways = 4,
                  .replacement = GetParam()};
  Cache c(g);
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t addr = 0; addr < 2048; addr += 64) {
      c.access(addr, AccessType::Load);
    }
  }
  // Half-capacity working set: LRU/PLRU are exact; random may rarely evict
  // a useful line, so allow slack.
  EXPECT_LE(c.stats().load_misses, 32u + 16u);
  EXPECT_LE(c.stats().misses(), c.stats().accesses());
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicyProperty,
                         ::testing::Values(ReplacementPolicy::Lru,
                                           ReplacementPolicy::Random,
                                           ReplacementPolicy::Plru));

// Property sweep over cache geometries: structural invariants hold for any
// consistent size/ways combination, power-of-two sets or not.
class GeometryProperty
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint32_t>> {
};

TEST_P(GeometryProperty, StructuralInvariants) {
  const auto [size, ways] = GetParam();
  Cache c({.size_bytes = size, .line_bytes = 64, .ways = ways});
  EXPECT_EQ(c.sets() * ways * 64, size);

  // Mixed access stream: stats must stay consistent throughout.
  for (std::uint64_t i = 0; i < 3000; ++i) {
    const std::uint64_t addr = (i * 97) % (4 * size);
    c.access(addr, i % 3 == 0 ? AccessType::Store : AccessType::Load);
    if (i % 16 == 0) c.prefetch_fill(addr + 4096);
  }
  EXPECT_EQ(c.stats().accesses(), 3000u);
  EXPECT_LE(c.stats().misses(), c.stats().accesses());
  EXPECT_LE(c.stats().miss_rate(), 1.0);

  // A line just accessed must be resident (no policy evicts the MRU line).
  c.access(0, AccessType::Load);
  EXPECT_TRUE(c.contains(0));

  // A working set within capacity eventually stops missing.
  c.flush();
  c.reset_stats();
  const std::uint64_t resident_lines = size / 64 / 2;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t line = 0; line < resident_lines; ++line) {
      c.access(line * 64, AccessType::Load);
    }
  }
  EXPECT_EQ(c.stats().load_misses, resident_lines);  // compulsory only (LRU)
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometryProperty,
    ::testing::Values(std::pair<std::uint64_t, std::uint32_t>{1024, 1},
                      std::pair<std::uint64_t, std::uint32_t>{4096, 4},
                      std::pair<std::uint64_t, std::uint32_t>{32 * 1024, 8},
                      std::pair<std::uint64_t, std::uint32_t>{12 * 1024, 4},
                      std::pair<std::uint64_t, std::uint32_t>{192 * 1024, 3},
                      std::pair<std::uint64_t, std::uint32_t>{
                          12 * 1024 * 1024, 16}));

}  // namespace
}  // namespace perspector::sim
