#include "core/coverage_score.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.hpp"

namespace perspector::core {
namespace {

TEST(CoverageScore, RequiresTwoRows) {
  EXPECT_THROW(coverage_score(la::Matrix(1, 3)), std::invalid_argument);
}

TEST(CoverageScore, ConstantSuiteScoresZero) {
  const auto result = coverage_score(la::Matrix(6, 4, 0.5));
  EXPECT_NEAR(result.score, 0.0, 1e-12);
  EXPECT_EQ(result.components, 1u);
}

TEST(CoverageScore, SingleDimensionKnownVariance) {
  // Column 0 varies {0, 1}, others constant: one PC, variance = sample
  // variance of {0,1,0,1} = 1/3.
  la::Matrix m{{0.0, 0.5}, {1.0, 0.5}, {0.0, 0.5}, {1.0, 0.5}};
  const auto result = coverage_score(m);
  EXPECT_EQ(result.components, 1u);
  EXPECT_NEAR(result.score, 1.0 / 3.0, 1e-9);
}

TEST(CoverageScore, WiderSpreadScoresHigher) {
  stats::Rng rng(101);
  la::Matrix narrow(12, 4), wide(12, 4);
  for (std::size_t r = 0; r < 12; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      narrow(r, c) = 0.5 + rng.uniform(-0.05, 0.05);
      wide(r, c) = rng.uniform();
    }
  }
  EXPECT_GT(coverage_score(wide).score, 5.0 * coverage_score(narrow).score);
}

TEST(CoverageScore, VarianceTargetControlsComponents) {
  stats::Rng rng(102);
  // One dominant dimension plus three faint ones.
  la::Matrix m(20, 4);
  for (std::size_t r = 0; r < 20; ++r) {
    m(r, 0) = rng.uniform(0.0, 1.0);
    for (std::size_t c = 1; c < 4; ++c) m(r, c) = rng.uniform(0.0, 0.01);
  }
  CoverageScoreOptions loose;
  loose.variance_target = 0.5;
  CoverageScoreOptions tight;
  tight.variance_target = 0.999999;
  EXPECT_EQ(coverage_score(m, loose).components, 1u);
  EXPECT_GT(coverage_score(m, tight).components, 1u);
}

TEST(CoverageScore, DetailVectorsMatchComponentCount) {
  stats::Rng rng(103);
  la::Matrix m(10, 5);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 5; ++c) m(r, c) = rng.uniform();
  }
  const auto result = coverage_score(m);
  EXPECT_EQ(result.component_variances.size(), result.components);
  EXPECT_EQ(result.explained_ratio.size(), result.components);
  // Eq. 13: score is the mean of the component variances.
  double total = 0.0;
  for (double v : result.component_variances) total += v;
  EXPECT_NEAR(result.score, total / static_cast<double>(result.components),
              1e-12);
}

TEST(CoverageScore, OutliersInflateVariance) {
  // Fig. 2's warning: a corner blob plus outliers can match a uniform
  // spread on coverage.
  stats::Rng rng(104);
  la::Matrix outliers(12, 3);
  for (std::size_t r = 0; r < 12; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      outliers(r, c) = r < 2 ? rng.uniform(0.95, 1.0) : rng.uniform(0.0, 0.05);
    }
  }
  EXPECT_GT(coverage_score(outliers).score, 0.05);
}

TEST(CoverageScore, RedundantCountersAddNothing) {
  // Duplicating every counter column doubles PC1 variance but retains one
  // component: PCA eliminates the redundancy, as the paper requires.
  stats::Rng rng(105);
  la::Matrix base(10, 2);
  for (std::size_t r = 0; r < 10; ++r) {
    base(r, 0) = rng.uniform();
    base(r, 1) = base(r, 0);  // perfectly redundant counter
  }
  const auto result = coverage_score(base);
  EXPECT_EQ(result.components, 1u);
}

}  // namespace
}  // namespace perspector::core
