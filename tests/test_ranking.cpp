#include "core/ranking.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace perspector::core {
namespace {

SuiteScores make_scores(const std::string& name, double cluster, double trend,
                        double coverage, double spread) {
  SuiteScores s;
  s.suite = name;
  s.cluster = cluster;
  s.trend = trend;
  s.coverage = coverage;
  s.spread = spread;
  return s;
}

TEST(Ranking, ValidatesInput) {
  EXPECT_THROW(rank_suites({make_scores("only", 0, 0, 0, 0)}),
               std::invalid_argument);
  RankingWeights zero;
  zero.diversity = zero.phases = zero.coverage = zero.uniformity = 0.0;
  const std::vector<SuiteScores> two = {make_scores("a", 0, 0, 0, 0),
                                        make_scores("b", 1, 1, 1, 1)};
  EXPECT_THROW(rank_suites(two, zero), std::invalid_argument);
  RankingWeights negative;
  negative.phases = -1.0;
  EXPECT_THROW(rank_suites(two, negative), std::invalid_argument);
}

TEST(Ranking, DominatingSuiteWinsWithGradeOne) {
  // "good" beats "bad" on every criterion (remember directions).
  const auto good = make_scores("good", 0.1, 2000.0, 0.3, 0.3);
  const auto bad = make_scores("bad", 0.5, 500.0, 0.1, 0.7);
  const auto ranked = rank_suites({bad, good});
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].suite, "good");
  EXPECT_DOUBLE_EQ(ranked[0].grade, 1.0);
  EXPECT_DOUBLE_EQ(ranked[1].grade, 0.0);
  EXPECT_DOUBLE_EQ(ranked[0].diversity, 1.0);
  EXPECT_DOUBLE_EQ(ranked[0].phases, 1.0);
  EXPECT_DOUBLE_EQ(ranked[0].coverage, 1.0);
  EXPECT_DOUBLE_EQ(ranked[0].uniformity, 1.0);
}

TEST(Ranking, DirectionsRespected) {
  // Suite "lo" has lower cluster AND lower trend: it should win diversity
  // but lose phases.
  const auto lo = make_scores("lo", 0.1, 500.0, 0.2, 0.5);
  const auto hi = make_scores("hi", 0.5, 1500.0, 0.2, 0.5);
  const auto ranked = rank_suites({lo, hi});
  const auto& lo_r = ranked[0].suite == "lo" ? ranked[0] : ranked[1];
  const auto& hi_r = ranked[0].suite == "hi" ? ranked[0] : ranked[1];
  EXPECT_DOUBLE_EQ(lo_r.diversity, 1.0);
  EXPECT_DOUBLE_EQ(lo_r.phases, 0.0);
  EXPECT_DOUBLE_EQ(hi_r.diversity, 0.0);
  EXPECT_DOUBLE_EQ(hi_r.phases, 1.0);
  // Ties grade to 0.5.
  EXPECT_DOUBLE_EQ(lo_r.coverage, 0.5);
  EXPECT_DOUBLE_EQ(lo_r.uniformity, 0.5);
}

TEST(Ranking, WeightsShiftTheWinner) {
  // "diverse" wins on cluster, "phased" on trend; weights decide.
  const auto diverse = make_scores("diverse", 0.1, 500.0, 0.2, 0.5);
  const auto phased = make_scores("phased", 0.5, 1500.0, 0.2, 0.5);

  RankingWeights favor_diversity;
  favor_diversity.diversity = 10.0;
  EXPECT_EQ(rank_suites({diverse, phased}, favor_diversity)[0].suite,
            "diverse");

  RankingWeights favor_phases;
  favor_phases.phases = 10.0;
  EXPECT_EQ(rank_suites({diverse, phased}, favor_phases)[0].suite, "phased");
}

TEST(Ranking, GradesInterpolateLinearly) {
  const auto a = make_scores("a", 0.0, 0.0, 0.0, 0.0);
  const auto b = make_scores("b", 0.0, 500.0, 0.0, 0.0);
  const auto c = make_scores("c", 0.0, 1000.0, 0.0, 0.0);
  const auto ranked = rank_suites({a, b, c});
  for (const auto& r : ranked) {
    if (r.suite == "b") {
      EXPECT_DOUBLE_EQ(r.phases, 0.5);
    }
  }
}

TEST(Ranking, StableOrderOnTies) {
  const auto a = make_scores("first", 0.2, 800.0, 0.2, 0.5);
  const auto b = make_scores("second", 0.2, 800.0, 0.2, 0.5);
  const auto c = make_scores("third", 0.4, 400.0, 0.1, 0.6);
  const auto ranked = rank_suites({a, b, c});
  EXPECT_EQ(ranked[0].suite, "first");
  EXPECT_EQ(ranked[1].suite, "second");
  EXPECT_EQ(ranked[2].suite, "third");
}

TEST(Ranking, GradesAlwaysInUnitInterval) {
  const auto ranked = rank_suites({make_scores("a", 0.3, 900, 0.15, 0.4),
                                   make_scores("b", 0.1, 1200, 0.25, 0.6),
                                   make_scores("c", 0.5, 300, 0.05, 0.5)});
  for (const auto& r : ranked) {
    for (double g : {r.grade, r.diversity, r.phases, r.coverage,
                     r.uniformity}) {
      EXPECT_GE(g, 0.0);
      EXPECT_LE(g, 1.0);
    }
  }
  // Sorted descending.
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].grade, ranked[i].grade);
  }
}

}  // namespace
}  // namespace perspector::core
