#include "core/subset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "stats/rng.hpp"

namespace perspector::core {
namespace {

CounterMatrix synthetic_suite(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<std::string> workloads, counters;
  la::Matrix values(n, 5);
  std::vector<std::vector<std::vector<double>>> series;
  for (std::size_t c = 0; c < 5; ++c) {
    counters.push_back("c" + std::to_string(c));
  }
  for (std::size_t w = 0; w < n; ++w) {
    workloads.push_back("w" + std::to_string(w));
    std::vector<std::vector<double>> per_counter;
    for (std::size_t c = 0; c < 5; ++c) {
      values(w, c) = rng.uniform();
      std::vector<double> s(15);
      for (double& v : s) v = rng.uniform(1.0, 10.0);
      per_counter.push_back(s);
    }
    series.push_back(per_counter);
  }
  return CounterMatrix("synthetic", workloads, counters, values, series);
}

TEST(Subset, ValidatesOptions) {
  const auto suite = synthetic_suite(10, 1);
  SubsetOptions options;
  options.target_size = 10;
  EXPECT_THROW(select_subset(suite, options), std::invalid_argument);
  options.target_size = 0;
  EXPECT_THROW(select_subset(suite, options), std::invalid_argument);
  options.target_size = 3;  // < 4
  EXPECT_THROW(generate_subset(suite, options), std::invalid_argument);
}

TEST(Subset, MethodNames) {
  EXPECT_STREQ(to_string(SubsetMethod::Lhs), "lhs");
  EXPECT_STREQ(to_string(SubsetMethod::Random), "random");
  EXPECT_STREQ(to_string(SubsetMethod::HierarchicalPrior),
               "hierarchical-prior");
}

class SubsetMethods : public ::testing::TestWithParam<SubsetMethod> {};

TEST_P(SubsetMethods, SelectsDistinctValidIndices) {
  const auto suite = synthetic_suite(20, 2);
  SubsetOptions options;
  options.method = GetParam();
  options.target_size = 6;
  const auto indices = select_subset(suite, options);
  EXPECT_EQ(indices.size(), 6u);
  const std::set<std::size_t> distinct(indices.begin(), indices.end());
  EXPECT_EQ(distinct.size(), 6u);
  for (std::size_t i : indices) EXPECT_LT(i, 20u);
}

TEST_P(SubsetMethods, FullPipelineReportsDeviation) {
  const auto suite = synthetic_suite(16, 3);
  SubsetOptions options;
  options.method = GetParam();
  options.target_size = 6;
  const auto result = generate_subset(suite, options);
  EXPECT_EQ(result.indices.size(), 6u);
  EXPECT_EQ(result.names.size(), 6u);
  EXPECT_TRUE(std::is_sorted(result.indices.begin(), result.indices.end()));
  EXPECT_GE(result.mean_deviation_pct, 0.0);
  EXPECT_EQ(result.per_score_deviation_pct.size(), 4u);
  // Names correspond to indices.
  for (std::size_t i = 0; i < result.indices.size(); ++i) {
    EXPECT_EQ(result.names[i],
              suite.workload_names()[result.indices[i]]);
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, SubsetMethods,
                         ::testing::Values(SubsetMethod::Lhs,
                                           SubsetMethod::Random,
                                           SubsetMethod::HierarchicalPrior));

TEST(Subset, DeterministicForSeed) {
  const auto suite = synthetic_suite(20, 4);
  SubsetOptions options;
  options.seed = 77;
  EXPECT_EQ(select_subset(suite, options), select_subset(suite, options));
}

TEST(Subset, LhsSubsetSpaceFilling) {
  // The LHS subset's minimum pairwise distance (in normalized counter
  // space) should generally beat a random subset's.
  const auto suite = synthetic_suite(40, 5);
  double lhs_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    SubsetOptions lhs;
    lhs.target_size = 8;
    lhs.seed = seed;
    SubsetOptions random = lhs;
    random.method = SubsetMethod::Random;

    const auto dist = [&](const std::vector<std::size_t>& picks) {
      double best = 1e18;
      for (std::size_t i = 0; i < picks.size(); ++i) {
        for (std::size_t j = i + 1; j < picks.size(); ++j) {
          best = std::min(best, la::euclidean_distance(
                                    suite.values().row(picks[i]),
                                    suite.values().row(picks[j])));
        }
      }
      return best;
    };
    lhs_total += dist(select_subset(suite, lhs));
    random_total += dist(select_subset(suite, random));
  }
  EXPECT_GT(lhs_total, random_total);
}

TEST(Subset, DeviationComputedAgainstFullSuite) {
  const auto suite = synthetic_suite(16, 6);
  SubsetOptions options;
  options.target_size = 8;
  const auto result = generate_subset(suite, options);
  // Full suite and subset are scored together (joint normalization); since
  // the subset's values are a subset of the full data, the shared ranges
  // equal the full suite's own ranges, so the full-suite scores match a
  // standalone evaluation.
  const auto direct = Perspector().score_suite(suite);
  EXPECT_DOUBLE_EQ(result.full_scores.coverage, direct.coverage);
  EXPECT_DOUBLE_EQ(result.full_scores.cluster, direct.cluster);
  // Subset scores come from the joint evaluation, which is what makes the
  // coverage/spread comparison meaningful.
  const auto joint = Perspector().score_suites(
      {suite, suite.select_workloads(result.indices)});
  EXPECT_DOUBLE_EQ(result.subset_scores.coverage, joint[1].coverage);
  EXPECT_DOUBLE_EQ(result.subset_scores.spread, joint[1].spread);
}

TEST(Subset, CommonKRangeOptionReaggregatesFullCluster) {
  const auto suite = synthetic_suite(16, 6);
  SubsetOptions options;
  options.target_size = 8;
  options.cluster_common_k_range = true;
  const auto result = generate_subset(suite, options);
  // The full suite's cluster score becomes the mean over k = 2..7 only.
  const auto& per_k = Perspector().score_suite(suite).cluster_detail.per_k;
  double expected = 0.0;
  for (std::size_t i = 0; i < 6; ++i) expected += per_k[i];
  EXPECT_NEAR(result.full_scores.cluster, expected / 6.0, 1e-12);
}

}  // namespace
}  // namespace perspector::core
