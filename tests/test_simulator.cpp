#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace perspector::sim {
namespace {

WorkloadSpec two_phase_workload() {
  WorkloadSpec w;
  w.name = "two-phase";
  w.instructions = 100'000;
  PhaseSpec stream;
  stream.name = "stream";
  stream.weight = 0.5;
  stream.load_frac = 0.4;
  // L1-resident: after warmup this phase barely stalls, so the contrast
  // with the pointer-chase phase is visible in the sampled series.
  stream.pattern = {.kind = AccessPatternKind::Sequential,
                    .working_set_bytes = 16 * 1024,
                    .stride_bytes = 8};
  PhaseSpec chase = stream;
  chase.name = "chase";
  chase.pattern.kind = AccessPatternKind::PointerChase;
  chase.pattern.working_set_bytes = 32ull << 20;
  w.phases = {stream, chase};
  return w;
}

TEST(WorkloadSpec, Validation) {
  WorkloadSpec w = two_phase_workload();
  EXPECT_NO_THROW(w.validate());

  WorkloadSpec unnamed = w;
  unnamed.name.clear();
  EXPECT_THROW(unnamed.validate(), std::invalid_argument);

  WorkloadSpec no_budget = w;
  no_budget.instructions = 0;
  EXPECT_THROW(no_budget.validate(), std::invalid_argument);

  WorkloadSpec no_phases = w;
  no_phases.phases.clear();
  EXPECT_THROW(no_phases.validate(), std::invalid_argument);

  WorkloadSpec bad_mix = w;
  bad_mix.phases[0].load_frac = 0.9;
  bad_mix.phases[0].store_frac = 0.5;
  EXPECT_THROW(bad_mix.validate(), std::invalid_argument);

  WorkloadSpec bad_weight = w;
  bad_weight.phases[0].weight = 0.0;
  EXPECT_THROW(bad_weight.validate(), std::invalid_argument);

  WorkloadSpec bad_prob = w;
  bad_prob.phases[0].branch_taken_prob = 1.5;
  EXPECT_THROW(bad_prob.validate(), std::invalid_argument);
}

TEST(SuiteSpec, Validation) {
  SuiteSpec suite;
  suite.name = "s";
  EXPECT_THROW(suite.validate(), std::invalid_argument);
  suite.workloads.push_back(two_phase_workload());
  EXPECT_NO_THROW(suite.validate());
  EXPECT_EQ(suite.workload_names(), std::vector<std::string>{"two-phase"});
  suite.name.clear();
  EXPECT_THROW(suite.validate(), std::invalid_argument);
}

TEST(Simulator, ExactInstructionBudget) {
  const SimResult r =
      simulate(two_phase_workload(), MachineConfig::xeon_e2186g());
  EXPECT_EQ(r.instructions, 100'000u);
  EXPECT_EQ(r.workload, "two-phase");
  EXPECT_GT(r.cycles, 0.0);
  EXPECT_GT(r.ipc(), 0.0);
}

TEST(Simulator, SeriesShape) {
  SimOptions options;
  options.sample_interval = 10'000;
  const SimResult r =
      simulate(two_phase_workload(), MachineConfig::xeon_e2186g(), options);
  ASSERT_EQ(r.series.size(), kPmuEventCount);
  EXPECT_EQ(r.series_for(PmuEvent::CpuCycles).size(), 10u);
  // Sum of deltas equals the aggregate counter.
  double sum = 0.0;
  for (double v : r.series_for(PmuEvent::DtlbLoads)) sum += v;
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(r.totals[PmuEvent::DtlbLoads]));
}

TEST(Simulator, SeriesCollectionCanBeDisabled) {
  SimOptions options;
  options.collect_series = false;
  const SimResult r =
      simulate(two_phase_workload(), MachineConfig::xeon_e2186g(), options);
  EXPECT_TRUE(r.series.empty());
  EXPECT_THROW(r.series_for(PmuEvent::CpuCycles), std::out_of_range);
}

TEST(Simulator, PhaseTransitionVisibleInSeries) {
  SimOptions options;
  options.sample_interval = 5'000;
  const SimResult r =
      simulate(two_phase_workload(), MachineConfig::xeon_e2186g(), options);
  // The chase phase (second half) stalls far more than the stream phase.
  const auto& stalls = r.series_for(PmuEvent::StallsMemAny);
  ASSERT_EQ(stalls.size(), 20u);
  double first_half = 0.0, second_half = 0.0;
  for (std::size_t i = 0; i < 10; ++i) first_half += stalls[i];
  for (std::size_t i = 10; i < 20; ++i) second_half += stalls[i];
  EXPECT_GT(second_half, 1.5 * first_half);
}

TEST(Simulator, DeterministicAndOrderIndependent) {
  const WorkloadSpec w = two_phase_workload();
  const auto machine = MachineConfig::xeon_e2186g();
  const SimResult a = simulate(w, machine);
  const SimResult b = simulate(w, machine);
  EXPECT_EQ(a.totals, b.totals);

  // Per-workload seeds hash the name: running inside a suite gives the
  // same result as running alone.
  SuiteSpec suite;
  suite.name = "order-test";
  WorkloadSpec other = w;
  other.name = "other";
  suite.workloads = {other, w};
  const auto results = simulate_suite(suite, machine);
  EXPECT_EQ(results[1].totals, a.totals);
}

TEST(Simulator, SeedChangesResults) {
  const WorkloadSpec w = two_phase_workload();
  const auto machine = MachineConfig::xeon_e2186g();
  SimOptions a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(simulate(w, machine, a).totals, simulate(w, machine, b).totals);
}

TEST(Simulator, InvalidWorkloadRejected) {
  WorkloadSpec bad = two_phase_workload();
  bad.phases.clear();
  EXPECT_THROW(simulate(bad, MachineConfig::xeon_e2186g()),
               std::invalid_argument);
}

TEST(Simulator, PhaseWeightsApportionBudget) {
  // 3:1 weights: the heavy phase gets ~75% of instructions; verify via
  // stall asymmetry between quarters.
  WorkloadSpec w = two_phase_workload();
  w.phases[0].weight = 3.0;
  w.phases[1].weight = 1.0;
  SimOptions options;
  options.sample_interval = 5'000;
  const SimResult r = simulate(w, MachineConfig::xeon_e2186g(), options);
  const auto& stalls = r.series_for(PmuEvent::StallsMemAny);
  ASSERT_EQ(stalls.size(), 20u);
  // Samples 0..14 are the stream phase; 15..19 the chase.
  double stream_avg = 0.0, chase_avg = 0.0;
  for (std::size_t i = 0; i < 15; ++i) stream_avg += stalls[i] / 15.0;
  for (std::size_t i = 15; i < 20; ++i) chase_avg += stalls[i] / 5.0;
  EXPECT_GT(chase_avg, 1.5 * stream_avg);
}

}  // namespace
}  // namespace perspector::sim
