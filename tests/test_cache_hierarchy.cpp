#include "sim/cache_hierarchy.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace perspector::sim {
namespace {

MachineConfig tiny_machine() { return MachineConfig::tiny(); }

TEST(CacheHierarchy, ColdAccessGoesToDram) {
  CacheHierarchy h(tiny_machine());
  const auto access = h.access(0x1000, AccessType::Load);
  EXPECT_EQ(access.level, HitLevel::Dram);
  EXPECT_EQ(access.latency_cycles, tiny_machine().dram_cycles);
  EXPECT_TRUE(access.llc_accessed);
  EXPECT_TRUE(access.llc_missed);
}

TEST(CacheHierarchy, SecondAccessHitsL1) {
  CacheHierarchy h(tiny_machine());
  h.access(0x1000, AccessType::Load);
  const auto access = h.access(0x1000, AccessType::Load);
  EXPECT_EQ(access.level, HitLevel::L1);
  EXPECT_EQ(access.latency_cycles, tiny_machine().l1_hit_cycles);
  EXPECT_FALSE(access.llc_accessed);
}

TEST(CacheHierarchy, FillsAllLevelsOnMiss) {
  CacheHierarchy h(tiny_machine());
  h.access(0x2000, AccessType::Load);
  EXPECT_EQ(h.l1_stats().load_misses, 1u);
  EXPECT_EQ(h.l2_stats().load_misses, 1u);
  EXPECT_EQ(h.llc_stats().load_misses, 1u);
  // L2/LLC only see traffic that missed the level above.
  h.access(0x2000, AccessType::Load);
  EXPECT_EQ(h.l2_stats().accesses(), 1u);
  EXPECT_EQ(h.llc_stats().accesses(), 1u);
}

TEST(CacheHierarchy, L2HitAfterL1Eviction) {
  // Thrash L1 (1 KiB, 2-way, 8 sets) within the L2 (4 KiB).
  CacheHierarchy h(tiny_machine());
  // Lines 0, 8, 16 (x64B) map to L1 set 0; L2 holds them all (16 sets).
  h.access(0 * 64, AccessType::Load);
  h.access(8 * 64, AccessType::Load);
  h.access(16 * 64, AccessType::Load);  // evicts line 0 from L1
  const auto access = h.access(0 * 64, AccessType::Load);
  EXPECT_EQ(access.level, HitLevel::L2);
  EXPECT_EQ(access.latency_cycles, tiny_machine().l2_hit_cycles);
}

TEST(CacheHierarchy, LlcHitLatency) {
  MachineConfig cfg = tiny_machine();
  CacheHierarchy h(cfg);
  // Stream enough distinct lines to overflow L2 (4 KiB = 64 lines) but stay
  // in the LLC (16 KiB = 256 lines).
  for (std::uint64_t line = 0; line < 128; ++line) {
    h.access(line * 64, AccessType::Load);
  }
  // Line 0 long evicted from L1/L2 but still in LLC.
  const auto access = h.access(0, AccessType::Load);
  EXPECT_EQ(access.level, HitLevel::Llc);
  EXPECT_EQ(access.latency_cycles, cfg.llc_hit_cycles);
  EXPECT_FALSE(access.llc_missed);
}

TEST(CacheHierarchy, FlushRestoresColdState) {
  CacheHierarchy h(tiny_machine());
  h.access(0x3000, AccessType::Load);
  h.flush();
  EXPECT_EQ(h.access(0x3000, AccessType::Load).level, HitLevel::Dram);
}

TEST(CacheHierarchy, ResetStatsClearsAllLevels) {
  CacheHierarchy h(tiny_machine());
  h.access(0x4000, AccessType::Store);
  h.reset_stats();
  EXPECT_EQ(h.l1_stats().accesses(), 0u);
  EXPECT_EQ(h.l2_stats().accesses(), 0u);
  EXPECT_EQ(h.llc_stats().accesses(), 0u);
}

TEST(CacheHierarchy, StoreTrafficTracked) {
  CacheHierarchy h(tiny_machine());
  h.access(0x5000, AccessType::Store);
  EXPECT_EQ(h.llc_stats().stores, 1u);
  EXPECT_EQ(h.llc_stats().store_misses, 1u);
  EXPECT_EQ(h.llc_stats().loads, 0u);
}

TEST(CacheHierarchy, LatencyOrderingAcrossLevels) {
  const MachineConfig cfg = tiny_machine();
  EXPECT_LT(cfg.l1_hit_cycles, cfg.l2_hit_cycles);
  EXPECT_LT(cfg.l2_hit_cycles, cfg.llc_hit_cycles);
  EXPECT_LT(cfg.llc_hit_cycles, cfg.dram_cycles);
}

TEST(CacheHierarchy, NextLinePrefetchTurnsStreamMissesIntoL2Hits) {
  MachineConfig cfg = tiny_machine();
  cfg.prefetcher = MachineConfig::Prefetcher::NextLine;
  CacheHierarchy pf(cfg);
  CacheHierarchy plain(tiny_machine());

  std::uint64_t pf_dram = 0, plain_dram = 0;
  for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
    if (pf.access(addr, AccessType::Load).level == HitLevel::Dram) ++pf_dram;
    if (plain.access(addr, AccessType::Load).level == HitLevel::Dram) {
      ++plain_dram;
    }
  }
  // A pure stream is the prefetcher's best case: nearly every access finds
  // its line already prefetched into L2.
  EXPECT_LT(pf_dram, plain_dram / 4);
  EXPECT_GT(pf.prefetch_stats().issued, 500u);
  EXPECT_EQ(plain.prefetch_stats().issued, 0u);
}

TEST(CacheHierarchy, StridePrefetchLearnsLargeStrides) {
  MachineConfig cfg = tiny_machine();
  cfg.prefetcher = MachineConfig::Prefetcher::Stride;
  CacheHierarchy pf(cfg);
  CacheHierarchy plain(tiny_machine());

  // Stride of 256B (4 lines): next-line would be useless, the stride
  // detector locks on after two repeats.
  std::uint64_t pf_dram = 0, plain_dram = 0;
  for (std::uint64_t i = 0; i < 512; ++i) {
    const std::uint64_t addr = i * 256;
    if (pf.access(addr, AccessType::Load).level == HitLevel::Dram) ++pf_dram;
    if (plain.access(addr, AccessType::Load).level == HitLevel::Dram) {
      ++plain_dram;
    }
  }
  EXPECT_LT(pf_dram, plain_dram / 2);
}

TEST(CacheHierarchy, PrefetcherDoesNotHelpPointerChase) {
  // A random permutation has no learnable stride: prefetching must not
  // change the demand miss count materially.
  MachineConfig cfg = tiny_machine();
  cfg.prefetcher = MachineConfig::Prefetcher::Stride;
  CacheHierarchy pf(cfg);
  CacheHierarchy plain(tiny_machine());

  stats::Rng rng(5);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t addr = rng.uniform_int(0, (1 << 20) / 64 - 1) * 64;
    pf.access(addr, AccessType::Load);
    plain.access(addr, AccessType::Load);
  }
  const double pf_rate =
      static_cast<double>(pf.llc_stats().misses()) / 4000.0;
  const double plain_rate =
      static_cast<double>(plain.llc_stats().misses()) / 4000.0;
  EXPECT_NEAR(pf_rate, plain_rate, 0.1);
}

TEST(CacheHierarchy, PrefetchNeverTouchesL1) {
  MachineConfig cfg = tiny_machine();
  cfg.prefetcher = MachineConfig::Prefetcher::NextLine;
  CacheHierarchy h(cfg);
  h.access(0, AccessType::Load);  // prefetches line at 64 into L2/LLC
  // The next line must NOT be an L1 hit (prefetch fills bypass L1).
  const auto next = h.access(64, AccessType::Load);
  EXPECT_EQ(next.level, HitLevel::L2);
}

TEST(CacheHierarchy, FlushClearsStrideTable) {
  MachineConfig cfg = tiny_machine();
  cfg.prefetcher = MachineConfig::Prefetcher::Stride;
  CacheHierarchy h(cfg);
  h.access(0, AccessType::Load);
  h.access(256, AccessType::Load);
  h.flush();
  const auto issued_before = h.prefetch_stats().issued;
  // After the flush the detector must re-learn: the very next access at
  // the old stride cannot trigger a prefetch.
  h.access(512, AccessType::Load);
  EXPECT_EQ(h.prefetch_stats().issued, issued_before);
}

TEST(CacheHierarchy, ResetStatsClearsPrefetchCounters) {
  MachineConfig cfg = tiny_machine();
  cfg.prefetcher = MachineConfig::Prefetcher::NextLine;
  CacheHierarchy h(cfg);
  h.access(0, AccessType::Load);
  EXPECT_GT(h.prefetch_stats().issued, 0u);
  h.reset_stats();
  EXPECT_EQ(h.prefetch_stats().issued, 0u);
}

}  // namespace
}  // namespace perspector::sim
