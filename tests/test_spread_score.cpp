#include "core/spread_score.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.hpp"

namespace perspector::core {
namespace {

TEST(SpreadScore, RejectsEmpty) {
  EXPECT_THROW(spread_score(la::Matrix{}), std::invalid_argument);
}

TEST(SpreadScore, PerWorkloadDetail) {
  la::Matrix m(3, 8, 0.5);
  const auto result = spread_score(m);
  EXPECT_EQ(result.per_workload.size(), 3u);
  double total = 0.0;
  for (double d : result.per_workload) total += d;
  EXPECT_NEAR(result.score, total / 3.0, 1e-12);
}

TEST(SpreadScore, UniformRowsScoreLow) {
  // Rows whose values form a near-perfect uniform grid over [0,1].
  const std::size_t m = 20;
  la::Matrix grid(4, m);
  for (std::size_t w = 0; w < 4; ++w) {
    for (std::size_t c = 0; c < m; ++c) {
      grid(w, c) = (static_cast<double>(c) + 0.5) / static_cast<double>(m);
    }
  }
  const auto result = spread_score(grid);
  EXPECT_LT(result.score, 0.1);
}

TEST(SpreadScore, ClusteredRowsScoreHigh) {
  // All counter values piled near 0.9: KS distance vs uniform ~0.9.
  la::Matrix clustered(4, 20, 0.9);
  const auto result = spread_score(clustered);
  EXPECT_GT(result.score, 0.8);
}

TEST(SpreadScore, PaperInterpretationBand) {
  // The paper reads D in [0, 0.5] as weakly uniform; a genuinely uniform
  // random row should land there comfortably.
  stats::Rng rng(111);
  la::Matrix m(6, 30);
  for (std::size_t w = 0; w < 6; ++w) {
    for (std::size_t c = 0; c < 30; ++c) m(w, c) = rng.uniform();
  }
  const auto result = spread_score(m);
  EXPECT_LT(result.score, 0.5);
}

TEST(SpreadScore, AnalyticModeDeterministic) {
  stats::Rng rng(112);
  la::Matrix m(4, 16);
  for (std::size_t w = 0; w < 4; ++w) {
    for (std::size_t c = 0; c < 16; ++c) m(w, c) = rng.uniform();
  }
  EXPECT_DOUBLE_EQ(spread_score(m).score, spread_score(m).score);
}

TEST(SpreadScore, SampledModeApproximatesAnalytic) {
  stats::Rng rng(113);
  la::Matrix m(8, 64);
  for (std::size_t w = 0; w < 8; ++w) {
    for (std::size_t c = 0; c < 64; ++c) m(w, c) = rng.uniform();
  }
  SpreadScoreOptions sampled;
  sampled.mode = SpreadScoreOptions::Mode::Sampled;
  const double analytic = spread_score(m).score;
  const double paper_literal = spread_score(m, sampled).score;
  // The two-sample variant carries sampling noise but tracks the analytic
  // score.
  EXPECT_NEAR(analytic, paper_literal, 0.15);
}

TEST(SpreadScore, SampledModeSeedDependent) {
  la::Matrix m(4, 32, 0.3);
  SpreadScoreOptions a, b;
  a.mode = SpreadScoreOptions::Mode::Sampled;
  b.mode = SpreadScoreOptions::Mode::Sampled;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(spread_score(m, a).score, spread_score(m, b).score);
}

TEST(SpreadScore, BoundedInUnitInterval) {
  stats::Rng rng(114);
  for (int round = 0; round < 5; ++round) {
    la::Matrix m(3, 10);
    for (std::size_t w = 0; w < 3; ++w) {
      for (std::size_t c = 0; c < 10; ++c) m(w, c) = rng.uniform();
    }
    const auto result = spread_score(m);
    EXPECT_GE(result.score, 0.0);
    EXPECT_LE(result.score, 1.0);
  }
}

}  // namespace
}  // namespace perspector::core
