// perspector_lint unit tests: every rule is exercised on in-memory
// fixture sources through the same run_rules() entry point the binary
// uses — a hit, a miss, a `lint:allow` suppression, and a baseline match
// per rule family. The binary's exit-0-on-the-tree contract is covered by
// the `lint_tree` ctest smoke (tools/CMakeLists.txt).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/config.hpp"
#include "lint/lexer.hpp"
#include "lint/rules.hpp"

namespace lint = perspector::lint;
using lint::Finding;
using lint::SourceFile;

namespace {

// Mirrors tools/lint/layers.conf closely enough for the layering tests.
const char* const kLayers = R"(
0 src/obs
1 src/par
1 src/mem
1 src/store
2 src/ingest
2 src/la
3 src/stats
4 src/dtw
4 src/cluster
4 src/pca
4 src/sampling
4 src/sim
5 src/suites
6 src/core
7 src/jobs
8 src/serve
)";

std::vector<Finding> run(std::vector<SourceFile> files) {
  return lint::run_rules(files, lint::parse_layers(kLayers));
}

std::vector<Finding> with_rule(const std::vector<Finding>& findings,
                               const std::string& rule) {
  std::vector<Finding> out;
  std::copy_if(findings.begin(), findings.end(), std::back_inserter(out),
               [&](const Finding& f) { return f.rule == rule; });
  return out;
}

// ---------------------------------------------------------------------------
// Lexer

TEST(LintLexer, StripsCommentsAndStrings) {
  const auto f = lint::lex("src/core/x.cpp",
                           "int a; // rand() in a comment\n"
                           "/* random_device here too */\n"
                           "const char* s = \"std::rand()\";\n"
                           "char c = 'r';\n");
  for (const auto& t : f.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "random_device");
  }
  // The string and char literals survive as (empty) literal tokens.
  EXPECT_EQ(std::count_if(f.tokens.begin(), f.tokens.end(),
                          [](const lint::Token& t) {
                            return t.kind == lint::Token::Kind::String;
                          }),
            1);
}

TEST(LintLexer, RawStringsAndLineNumbers) {
  const auto f = lint::lex("src/core/x.cpp",
                           "auto s = R\"(rand()\nline2\nline3)\";\n"
                           "int marker;\n");
  for (const auto& t : f.tokens) EXPECT_NE(t.text, "rand");
  const auto it = std::find_if(
      f.tokens.begin(), f.tokens.end(),
      [](const lint::Token& t) { return t.text == "marker"; });
  ASSERT_NE(it, f.tokens.end());
  EXPECT_EQ(it->line, 4);  // the raw string spans lines 1-3
}

TEST(LintLexer, IncludesAndGuards) {
  const auto f = lint::lex("src/core/x.hpp",
                           "#pragma once\n"
                           "#include \"core/io.hpp\"\n"
                           "#include <vector>\n");
  EXPECT_TRUE(f.has_pragma_once);
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_EQ(f.includes[0].path, "core/io.hpp");
  EXPECT_FALSE(f.includes[0].angled);
  EXPECT_EQ(f.includes[0].line, 2);
  EXPECT_TRUE(f.includes[1].angled);

  const auto g = lint::lex("src/core/y.hpp",
                           "#ifndef CORE_Y_HPP\n#define CORE_Y_HPP\n"
                           "int x();\n#endif\n");
  EXPECT_TRUE(g.has_include_guard);
  EXPECT_FALSE(g.has_pragma_once);
}

TEST(LintLexer, AllowComments) {
  const auto f = lint::lex("src/core/x.cpp",
                           "int a;  // lint:allow(det-hash, par-global)\n"
                           "/* lint:allow(det-clock): why */ int b;\n");
  ASSERT_TRUE(f.allows.count(1));
  EXPECT_TRUE(f.allows.at(1).count("det-hash"));
  EXPECT_TRUE(f.allows.at(1).count("par-global"));
  ASSERT_TRUE(f.allows.count(2));
  EXPECT_TRUE(f.allows.at(2).count("det-clock"));
}

// ---------------------------------------------------------------------------
// R1: determinism

TEST(LintRules, DetRandHitAndSuppression) {
  const auto hit = run({{"src/stats/x.cpp", "int s = std::rand();\n"}});
  ASSERT_EQ(with_rule(hit, "det-rand").size(), 1u);
  EXPECT_EQ(hit[0].line, 1);

  const auto same_line = run(
      {{"src/stats/x.cpp",
        "int s = std::rand();  // lint:allow(det-rand): fixture\n"}});
  EXPECT_TRUE(with_rule(same_line, "det-rand").empty());

  const auto line_above = run(
      {{"src/stats/x.cpp",
        "// lint:allow(det-rand): fixture\nint s = std::rand();\n"}});
  EXPECT_TRUE(with_rule(line_above, "det-rand").empty());

  // An allow for a different rule must not suppress.
  const auto wrong = run(
      {{"src/stats/x.cpp",
        "int s = std::rand();  // lint:allow(det-clock)\n"}});
  EXPECT_EQ(with_rule(wrong, "det-rand").size(), 1u);
}

TEST(LintRules, DetRandomDevice) {
  const auto f =
      run({{"src/sim/x.cpp", "std::random_device rd;\n"}});
  EXPECT_EQ(with_rule(f, "det-rand").size(), 1u);
}

TEST(LintRules, DetClockHitAndAllowlist) {
  const std::string body =
      "void f() { auto t = std::chrono::steady_clock::now(); }\n";
  EXPECT_EQ(with_rule(run({{"src/core/x.cpp", body}}), "det-clock").size(),
            1u);
  // Allowlisted homes: obs, bench, tools, and the server's injection seam.
  EXPECT_TRUE(with_rule(run({{"src/obs/x.cpp", body}}), "det-clock").empty());
  EXPECT_TRUE(with_rule(run({{"bench/x.cpp", body}}), "det-clock").empty());
  EXPECT_TRUE(with_rule(run({{"tools/x.cpp", body}}), "det-clock").empty());
  EXPECT_TRUE(
      with_rule(run({{"src/serve/server.cpp", body}}), "det-clock").empty());
  // But not the rest of serve.
  EXPECT_EQ(
      with_rule(run({{"src/serve/engine.cpp", body}}), "det-clock").size(),
      1u);
}

TEST(LintRules, DetClockTimeCallNotTimePoint) {
  EXPECT_EQ(with_rule(run({{"src/core/x.cpp",
                            "long t = time(nullptr);\n"}}),
                      "det-clock")
                .size(),
            1u);
  // `time_point` is a type, `timer(...)` a different identifier.
  EXPECT_TRUE(
      with_rule(run({{"src/core/x.cpp",
                      "std::chrono::steady_clock::time_point deadline;\n"
                      "void f() { timer(3); }\n"}}),
                "det-clock")
          .empty());
}

TEST(LintRules, DetHashScoringDirsOnly) {
  const std::string body =
      "#include <unordered_map>\nstd::unordered_map<int, int> m() ;\n";
  const auto hit = run({{"src/core/x.cpp", body}});
  EXPECT_EQ(with_rule(hit, "det-hash").size(), 2u);  // include + use
  EXPECT_TRUE(with_rule(run({{"src/serve/x.cpp", body}}), "det-hash").empty());
  EXPECT_TRUE(with_rule(run({{"src/sim/x.cpp", body}}), "det-hash").empty());
}

TEST(LintRules, DetFloatScoringDirsOnly) {
  EXPECT_EQ(
      with_rule(run({{"src/dtw/x.cpp", "float cost = 0;\n"}}), "det-float")
          .size(),
      1u);
  EXPECT_TRUE(
      with_rule(run({{"src/sim/x.cpp", "float util = 0;\n"}}), "det-float")
          .empty());
  // Comments don't count.
  EXPECT_TRUE(with_rule(run({{"src/dtw/x.cpp", "// floating point note\n"}}),
                        "det-float")
                  .empty());
}

// ---------------------------------------------------------------------------
// R2: layering

TEST(LintRules, LayerOrderUpwardEdge) {
  const auto f = run({{"src/stats/x.hpp",
                       "#pragma once\n#include \"serve/server.hpp\"\n"}});
  const auto hits = with_rule(f, "layer-order");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_NE(hits[0].message.find("src/serve"), std::string::npos);
}

TEST(LintRules, LayerOrderPeersAndDownwardEdges) {
  // Peer layers (equal rank) must not include each other.
  EXPECT_EQ(with_rule(run({{"src/cluster/x.cpp",
                            "#include \"dtw/dtw.hpp\"\n"}}),
                      "layer-order")
                .size(),
            1u);
  // Downward edges and unranked consumers are fine.
  EXPECT_TRUE(with_rule(run({{"src/serve/x.cpp",
                              "#include \"core/perspector.hpp\"\n"}}),
                        "layer-order")
                  .empty());
  EXPECT_TRUE(with_rule(run({{"tests/test_x.cpp",
                              "#include \"serve/server.hpp\"\n"}}),
                        "layer-order")
                  .empty());
}

TEST(LintRules, LayerCycle) {
  const auto f = run({{"src/core/a.hpp",
                       "#pragma once\n#include \"core/b.hpp\"\n"},
                      {"src/core/b.hpp",
                       "#pragma once\n#include \"core/a.hpp\"\n"}});
  ASSERT_EQ(with_rule(f, "layer-cycle").size(), 1u);
  EXPECT_NE(f[0].message.find("src/core/a.hpp"), std::string::npos);
  EXPECT_NE(f[0].message.find("src/core/b.hpp"), std::string::npos);
}

TEST(LintRules, LayerRanksForStoreAndIngest) {
  // src/store (rank 1) and src/ingest (rank 2) are ranked layers, not
  // unranked consumers: an upward or peer edge out of them is an error.
  EXPECT_EQ(with_rule(run({{"src/store/x.cpp",
                            "#include \"core/perspector.hpp\"\n"}}),
                      "layer-order")
                .size(),
            1u);
  EXPECT_EQ(with_rule(run({{"src/ingest/x.cpp",
                            "#include \"la/matrix.hpp\"\n"}}),
                      "layer-order")
                .size(),
            1u);
  // Their legal downward edges stay legal.
  EXPECT_TRUE(with_rule(run({{"src/store/x.cpp",
                              "#include \"obs/metrics.hpp\"\n"}}),
                        "layer-order")
                  .empty());
  EXPECT_TRUE(with_rule(run({{"src/ingest/x.cpp",
                              "#include \"obs/metrics.hpp\"\n"}}),
                        "layer-order")
                  .empty());
}

TEST(LintRules, LayerCycleInsideStore) {
  const auto f = run({{"src/store/a.hpp",
                       "#pragma once\n#include \"store/b.hpp\"\n"},
                      {"src/store/b.hpp",
                       "#pragma once\n#include \"store/a.hpp\"\n"}});
  ASSERT_EQ(with_rule(f, "layer-cycle").size(), 1u);
  EXPECT_NE(f[0].message.find("src/store/a.hpp"), std::string::npos);
  EXPECT_NE(f[0].message.find("src/store/b.hpp"), std::string::npos);
}

TEST(LintRules, LayerCycleInsideIngest) {
  const auto f = run({{"src/ingest/reader.hpp",
                       "#pragma once\n#include \"ingest/parser.hpp\"\n"},
                      {"src/ingest/parser.hpp",
                       "#pragma once\n#include \"ingest/reader.hpp\"\n"}});
  ASSERT_EQ(with_rule(f, "layer-cycle").size(), 1u);
  EXPECT_NE(f[0].message.find("src/ingest/parser.hpp"), std::string::npos);
  EXPECT_NE(f[0].message.find("src/ingest/reader.hpp"), std::string::npos);
}

// ---------------------------------------------------------------------------
// R3: parallel safety

TEST(LintRules, ParGlobalMutableOnly) {
  EXPECT_EQ(with_rule(run({{"src/sim/x.cpp",
                            "namespace a {\nint counter = 0;\n}\n"}}),
                      "par-global")
                .size(),
            1u);
  EXPECT_TRUE(with_rule(run({{"src/sim/x.cpp",
                              "namespace a {\n"
                              "const int kA = 1;\n"
                              "constexpr double kB = 2.0;\n"
                              "thread_local int tls_c = 0;\n"
                              "int f();\n"
                              "extern int elsewhere;\n"
                              "using Row = int;\n"
                              "struct S { int mutable_member; };\n"
                              "}\n"}}),
                        "par-global")
                  .empty());
}

TEST(LintRules, ParGlobalDefaultArgumentRegression) {
  // `= {}` and `= true` defaults inside a declaration must not read as
  // namespace-scope variables (the stability.hpp false positive).
  const auto f = run({{"src/core/x.hpp",
                       "#pragma once\n"
                       "struct R {};\n"
                       "R jackknife(const int& suite, const R& s = {},\n"
                       "            bool include_trend = true);\n"}});
  EXPECT_TRUE(with_rule(f, "par-global").empty());
}

TEST(LintRules, ParGlobalOutOfClassStaticMember) {
  EXPECT_EQ(with_rule(run({{"src/sim/x.cpp",
                            "int Foo::live_instances = 0;\n"}}),
                      "par-global")
                .size(),
            1u);
}

TEST(LintRules, ParStaticLocals) {
  EXPECT_EQ(with_rule(run({{"src/core/x.cpp",
                            "void f() { static int calls = 0; }\n"}}),
                      "par-static")
                .size(),
            1u);
  EXPECT_TRUE(with_rule(run({{"src/core/x.cpp",
                              "void f() {\n"
                              "  static const int kA = 1;\n"
                              "  static constexpr double kB = 2.0;\n"
                              "  static thread_local int scratch = 0;\n"
                              "  static obs::Counter& c = obs::counter();\n"
                              "}\n"
                              "struct S { static S& local(); };\n"}}),
                        "par-static")
                  .empty());
  // Outside src/ the rule does not apply.
  EXPECT_TRUE(with_rule(run({{"tests/test_x.cpp",
                              "void f() { static int calls = 0; }\n"}}),
                        "par-static")
                  .empty());
}

TEST(LintRules, ParConcurrencyQuery) {
  const std::string body =
      "unsigned n() { return std::thread::hardware_concurrency(); }\n";
  EXPECT_EQ(with_rule(run({{"src/core/x.cpp", body}}), "par-concurrency")
                .size(),
            1u);
  EXPECT_TRUE(
      with_rule(run({{"src/par/thread_pool.cpp", body}}), "par-concurrency")
          .empty());
}

// ---------------------------------------------------------------------------
// R4: hygiene

TEST(LintRules, HygGuard) {
  EXPECT_EQ(
      with_rule(run({{"src/core/x.hpp", "int f();\n"}}), "hyg-guard").size(),
      1u);
  EXPECT_TRUE(with_rule(run({{"src/core/x.hpp",
                              "#pragma once\nint f();\n"}}),
                        "hyg-guard")
                  .empty());
  EXPECT_TRUE(with_rule(run({{"src/core/x.hpp",
                              "#ifndef X_HPP\n#define X_HPP\nint f();\n"
                              "#endif\n"}}),
                        "hyg-guard")
                  .empty());
  // Only headers need guards.
  EXPECT_TRUE(
      with_rule(run({{"src/core/x.cpp", "int f();\n"}}), "hyg-guard").empty());
}

TEST(LintRules, HygAssert) {
  EXPECT_EQ(with_rule(run({{"src/core/x.cpp",
                            "void f(int i) { assert(i++ < 3); }\n"}}),
                      "hyg-assert")
                .size(),
            1u);
  EXPECT_EQ(with_rule(run({{"src/core/x.cpp",
                            "void f(int i) { assert(consume(i)); }\n"}}),
                      "hyg-assert")
                .size(),
            1u);
  EXPECT_EQ(with_rule(run({{"src/core/x.cpp",
                            "void f(int i) { assert(i = 3); }\n"}}),
                      "hyg-assert")
                .size(),
            1u);
  // Comparisons and pure-allowlist calls are fine.
  EXPECT_TRUE(with_rule(run({{"src/core/x.cpp",
                              "void f(const std::vector<int>& v, int i) {\n"
                              "  assert(i == 3);\n"
                              "  assert(!v.empty() && v.size() > 1);\n"
                              "  assert(std::isfinite(1.0));\n"
                              "}\n"}}),
                        "hyg-assert")
                  .empty());
}

TEST(LintRules, HygLogRawStderrWrites) {
  // std::cerr and fprintf(stderr, ...) in src/ are findings.
  EXPECT_EQ(with_rule(run({{"src/core/x.cpp",
                            "void f() { std::cerr << \"oops\\n\"; }\n"}}),
                      "hyg-log")
                .size(),
            1u);
  EXPECT_EQ(with_rule(run({{"src/serve/x.cpp",
                            "void f() { fprintf(stderr, \"oops\\n\"); }\n"}}),
                      "hyg-log")
                .size(),
            1u);
  // The logger's own sink is exempt, as is everything outside src/.
  const std::string body = "void f() { fprintf(stderr, \"x\\n\"); }\n";
  EXPECT_TRUE(with_rule(run({{"src/obs/log.cpp", body}}), "hyg-log").empty());
  EXPECT_TRUE(with_rule(run({{"tools/x.cpp", body}}), "hyg-log").empty());
  EXPECT_TRUE(with_rule(run({{"bench/x.cpp", body}}), "hyg-log").empty());
  // fprintf to a real file stream is not a finding.
  EXPECT_TRUE(with_rule(run({{"src/core/x.cpp",
                              "void f(FILE* out) { fprintf(out, \"x\"); }\n"}}),
                        "hyg-log")
                  .empty());
  // Suppression works like every other rule.
  EXPECT_TRUE(with_rule(run({{"src/core/x.cpp",
                              "// lint:allow(hyg-log): last-resort path\n"
                              "void f() { std::cerr << \"x\"; }\n"}}),
                        "hyg-log")
                  .empty());
}

// ---------------------------------------------------------------------------
// lint:allow × transitive rules: an allow on a function definition
// suppresses the whole call path through it, not just its own line.
// (The deep engine itself is covered in test_lint_deep.cpp.)

TEST(LintAllow, FunctionLevelAllowSuppressesTransitivePath) {
  const std::vector<SourceFile> files = {
      {"src/serve/loop.hpp",
       "#pragma once\n"
       "namespace perspector::serve {\n"
       "void pump();\n"
       "void drain();\n"
       "}  // namespace perspector::serve\n"},
      {"src/serve/loop.cpp",
       "#include \"serve/loop.hpp\"\n"
       "namespace perspector::serve {\n"
       "void pump() { drain(); }\n"
       "// lint:allow(block-serve-loop): fixture — drain is bounded\n"
       "void drain() { ::fsync(1); }\n"
       "}  // namespace perspector::serve\n"}};
  lint::DeepConfig deep;
  deep.seams_text = "root block-serve-loop serve::pump\n";

  const auto suppressed =
      lint::run_rules(files, lint::parse_layers(kLayers), deep);
  EXPECT_TRUE(with_rule(suppressed, "block-serve-loop").empty());

  // Without the allow the same path is a finding two hops from the root.
  auto hot = files;
  hot[1].text =
      "#include \"serve/loop.hpp\"\n"
      "namespace perspector::serve {\n"
      "void pump() { drain(); }\n"
      "void drain() { ::fsync(1); }\n"
      "}  // namespace perspector::serve\n";
  const auto hits = with_rule(
      lint::run_rules(hot, lint::parse_layers(kLayers), deep),
      "block-serve-loop");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("serve::pump -> serve::drain"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Baseline + config + output format

TEST(LintBaseline, MatchAndStaleReporting) {
  auto findings = run({{"src/stats/x.cpp", "int f() { return std::rand(); }\n"}});
  ASSERT_EQ(findings.size(), 1u);

  const auto baseline = lint::parse_baseline(
      "# comment\n"
      "src/stats/x.cpp:1: det-rand grandfathered fixture\n"
      "src/stats/gone.cpp:9: det-clock stale entry\n");
  ASSERT_EQ(baseline.size(), 2u);
  EXPECT_EQ(baseline[0].file, "src/stats/x.cpp");
  EXPECT_EQ(baseline[0].line, 1);
  EXPECT_EQ(baseline[0].rule, "det-rand");

  std::vector<lint::BaselineEntry> unused;
  const auto kept =
      lint::apply_baseline(std::move(findings), baseline, &unused);
  EXPECT_TRUE(kept.empty());
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0].file, "src/stats/gone.cpp");

  // A different line must NOT match (the baseline is line-exact).
  auto again =
      run({{"src/stats/x.cpp", "\nint f() { return std::rand(); }\n"}});
  const auto kept2 = lint::apply_baseline(std::move(again), baseline, nullptr);
  EXPECT_EQ(kept2.size(), 1u);
}

TEST(LintConfig, MalformedInputsThrow) {
  EXPECT_THROW(lint::parse_layers("nonsense line\n"), std::runtime_error);
  EXPECT_THROW(lint::parse_baseline("no-colons-here\n"), std::runtime_error);
  EXPECT_NO_THROW(lint::parse_layers("# comment only\n\n"));
}

TEST(LintConfig, RankLookupIsComponentWise) {
  const auto layers = lint::parse_layers("1 src/core\n2 src/serve\n");
  EXPECT_EQ(layers.rank_of("src/core/io.cpp"), 1);
  EXPECT_EQ(layers.rank_of("src/core_utils/io.cpp"), std::nullopt);
  EXPECT_EQ(layers.rank_of("tests/test_x.cpp"), std::nullopt);
}

TEST(LintOutput, FindingFormat) {
  const Finding f{"src/core/x.cpp", 12, "det-hash", "message here"};
  EXPECT_EQ(lint::to_string(f), "src/core/x.cpp:12: det-hash: message here");
}

TEST(LintOutput, FindingsAreSorted) {
  const auto f =
      run({{"src/stats/b.cpp", "int f() { return std::rand(); }\n"},
           {"src/stats/a.cpp",
            "int g() { return std::rand(); }\n"
            "int h() { return std::rand(); }\n"}});
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0].file, "src/stats/a.cpp");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_EQ(f[1].file, "src/stats/a.cpp");
  EXPECT_EQ(f[1].line, 2);
  EXPECT_EQ(f[2].file, "src/stats/b.cpp");
}

}  // namespace
