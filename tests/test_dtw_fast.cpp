// The distance-only rolling DTW kernel and the ScoringWorkspace cache both
// promise *bit-identical* results to the paths they replace. These tests
// hold them to it: every comparison is on the exact bit pattern
// (std::bit_cast), not an epsilon.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/counter_matrix.hpp"
#include "core/scoring_workspace.hpp"
#include "core/trend_score.hpp"
#include "dtw/dtw.hpp"
#include "obs/metrics.hpp"
#include "stats/rng.hpp"

namespace perspector::dtw {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

std::vector<double> random_series(std::uint64_t seed, std::size_t n) {
  stats::Rng rng(seed);
  std::vector<double> s(n);
  for (double& v : s) v = rng.uniform(-5.0, 5.0);
  return s;
}

// The rolling kernel must reproduce the full-table kernel's distance and
// path length exactly, for every band width and length combination.
void expect_bitwise_match(const std::vector<double>& a,
                          const std::vector<double>& b,
                          const DtwOptions& options) {
  const DtwResult fast = dtw_distance(a, b, options);
  const DtwPathResult full = dtw_with_path(a, b, options);
  EXPECT_EQ(bits(fast.distance), bits(full.distance))
      << "distance differs: fast=" << fast.distance
      << " full=" << full.distance;
  EXPECT_EQ(fast.path_length, full.path.size());
}

TEST(DtwFast, UnbandedMatchesFullTableBitwise) {
  for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    expect_bitwise_match(random_series(seed, 64),
                         random_series(seed + 100, 64), {});
  }
}

TEST(DtwFast, BandedMatchesFullTableBitwise) {
  for (double fraction : {0.05, 0.1, 0.3, 1.0}) {
    DtwOptions options;
    options.band_fraction = fraction;
    for (std::uint64_t seed : {21u, 22u, 23u}) {
      expect_bitwise_match(random_series(seed, 80),
                           random_series(seed + 100, 80), options);
    }
  }
}

TEST(DtwFast, UnequalLengthsMatchBitwise) {
  const auto a = random_series(31, 73);
  const auto b = random_series(32, 19);
  expect_bitwise_match(a, b, {});
  expect_bitwise_match(b, a, {});
  DtwOptions banded;
  banded.band_fraction = 0.1;  // narrower than the length difference
  expect_bitwise_match(a, b, banded);
  expect_bitwise_match(b, a, banded);
}

TEST(DtwFast, SingleElementSeriesMatchBitwise) {
  const std::vector<double> one{2.5};
  const auto many = random_series(41, 17);
  expect_bitwise_match(one, many, {});
  expect_bitwise_match(many, one, {});
  expect_bitwise_match(one, one, {});
}

TEST(DtwFast, PathNormalizedDividesByFullTablePathLength) {
  const auto a = random_series(51, 40);
  const auto b = random_series(52, 33);
  DtwOptions norm;
  norm.path_normalized = true;
  const DtwResult fast = dtw_distance(a, b, norm);
  const DtwPathResult full = dtw_with_path(a, b);
  ASSERT_EQ(fast.path_length, full.path.size());
  EXPECT_EQ(bits(fast.distance),
            bits(full.distance / static_cast<double>(full.path.size())));
}

TEST(DtwFast, DistanceOnlyCallNeverBuildsFullTable) {
  obs::Counter& full_calls = obs::counter("dtw.full_table.calls");
  obs::Counter& calls = obs::counter("dtw.calls");
  const auto a = random_series(61, 30);
  const auto b = random_series(62, 30);

  const std::uint64_t full_before = full_calls.value();
  const std::uint64_t calls_before = calls.value();
  (void)dtw_distance(a, b);
  EXPECT_EQ(full_calls.value(), full_before);
  EXPECT_EQ(calls.value(), calls_before + 1);

  (void)dtw_with_path(a, b);
  EXPECT_EQ(full_calls.value(), full_before + 1);
}

TEST(DtwFast, PairwiseMatrixSymmetricZeroDiagonal) {
  std::vector<std::vector<double>> series;
  for (std::uint64_t s = 0; s < 5; ++s) {
    series.push_back(random_series(70 + s, 25));
  }
  const la::Matrix d = pairwise_dtw_matrix(series);
  ASSERT_EQ(d.rows(), series.size());
  ASSERT_EQ(d.cols(), series.size());
  for (std::size_t i = 0; i < d.rows(); ++i) {
    EXPECT_EQ(bits(d(i, i)), bits(0.0));
    for (std::size_t j = 0; j < d.cols(); ++j) {
      EXPECT_EQ(bits(d(i, j)), bits(d(j, i)));
    }
  }
}

// The cache-slicing contract at the DTW layer: a sub-matrix of the full
// pairwise matrix is byte-for-byte the pairwise matrix of the sub-set of
// series, because each entry is the same dtw_distance call on the same
// input doubles.
TEST(DtwFast, PairwiseMatrixSliceMatchesDirectRecomputation) {
  std::vector<std::vector<double>> series;
  for (std::uint64_t s = 0; s < 7; ++s) {
    series.push_back(random_series(80 + s, 30));
  }
  const la::Matrix full = pairwise_dtw_matrix(series);

  const std::vector<std::size_t> pick{1, 3, 4, 6};
  std::vector<std::vector<double>> sub;
  for (std::size_t i : pick) sub.push_back(series[i]);
  const la::Matrix direct = pairwise_dtw_matrix(sub);

  for (std::size_t i = 0; i < pick.size(); ++i) {
    for (std::size_t j = 0; j < pick.size(); ++j) {
      EXPECT_EQ(bits(full(pick[i], pick[j])), bits(direct(i, j)));
    }
  }
}

}  // namespace
}  // namespace perspector::dtw

namespace perspector::core {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// Suite with two counters whose series have per-workload phase structure.
CounterMatrix phased_suite(std::size_t workloads) {
  stats::Rng rng(901);
  std::vector<std::string> names;
  la::Matrix values;
  std::vector<std::vector<std::vector<double>>> series;
  for (std::size_t w = 0; w < workloads; ++w) {
    names.push_back("w" + std::to_string(w));
    std::vector<std::vector<double>> per_counter;
    for (std::size_t c = 0; c < 2; ++c) {
      std::vector<double> s(48, 1.0);
      const std::size_t step = 4 + (w * 5 + c * 3) % 40;
      for (std::size_t t = step; t < s.size(); ++t) {
        s[t] = 50.0 + rng.uniform(0.0, 1.0);
      }
      per_counter.push_back(std::move(s));
    }
    double t0 = 0.0, t1 = 0.0;
    for (double v : per_counter[0]) t0 += v;
    for (double v : per_counter[1]) t1 += v;
    values.append_row(std::vector<double>{t0, t1});
    series.push_back(std::move(per_counter));
  }
  return CounterMatrix("phased", names, {"c0", "c1"}, values, series);
}

void expect_trend_bitwise_equal(const TrendScoreResult& cached,
                                const TrendScoreResult& direct) {
  EXPECT_EQ(bits(cached.score), bits(direct.score));
  ASSERT_EQ(cached.per_event.size(), direct.per_event.size());
  for (std::size_t c = 0; c < cached.per_event.size(); ++c) {
    EXPECT_EQ(bits(cached.per_event[c]), bits(direct.per_event[c]));
  }
}

TEST(ScoringWorkspaceCache, FullSuiteLookupMatchesDirectBitwise) {
  const CounterMatrix suite = phased_suite(8);
  const TrendScoreOptions options;
  ScoringWorkspace workspace;
  workspace.prime_trend(suite, options);
  ASSERT_TRUE(workspace.trend_primed());

  std::vector<std::size_t> rows;
  ASSERT_TRUE(workspace.map_rows(suite, options, rows));
  expect_trend_bitwise_equal(workspace.trend_score_from_cache(rows),
                             trend_score(suite, options));
}

TEST(ScoringWorkspaceCache, SubsetSliceMatchesDirectBitwise) {
  const CounterMatrix suite = phased_suite(10);
  TrendScoreOptions options;
  options.dtw_band_fraction = 0.2;
  ScoringWorkspace workspace;
  workspace.prime_trend(suite, options);

  const std::vector<std::size_t> pick{0, 2, 5, 6, 9};
  const CounterMatrix subset = suite.select_workloads(pick);
  std::vector<std::size_t> rows;
  ASSERT_TRUE(workspace.map_rows(subset, options, rows));
  EXPECT_EQ(rows, pick);
  expect_trend_bitwise_equal(workspace.trend_score_from_cache(rows),
                             trend_score(subset, options));
}

TEST(ScoringWorkspaceCache, BootstrapResampleWithRepeatsMatchesBitwise) {
  const CounterMatrix suite = phased_suite(8);
  const TrendScoreOptions options;
  ScoringWorkspace workspace;
  workspace.prime_trend(suite, options);

  // Unsorted, with repeats — the shape every bootstrap resample has.
  const std::vector<std::size_t> picks{5, 1, 5, 7, 0, 1, 3, 5};
  const CounterMatrix resampled = suite.select_workloads(picks);
  std::vector<std::size_t> rows;
  ASSERT_TRUE(workspace.map_rows(resampled, options, rows));
  expect_trend_bitwise_equal(workspace.trend_score_from_cache(rows),
                             trend_score(resampled, options));
}

TEST(ScoringWorkspaceCache, DifferentOptionsMiss) {
  const CounterMatrix suite = phased_suite(6);
  TrendScoreOptions primed;
  ScoringWorkspace workspace;
  workspace.prime_trend(suite, primed);

  TrendScoreOptions banded;
  banded.dtw_band_fraction = 0.1;
  std::vector<std::size_t> rows;
  EXPECT_FALSE(workspace.map_rows(suite, banded, rows));

  TrendScoreOptions coarse;
  coarse.grid_points = 21;
  EXPECT_FALSE(workspace.map_rows(suite, coarse, rows));
}

TEST(ScoringWorkspaceCache, ForeignSeriesMiss) {
  const CounterMatrix suite = phased_suite(6);
  const TrendScoreOptions options;
  ScoringWorkspace workspace;
  workspace.prime_trend(suite, options);

  // Same workload names and counters, different series content: the
  // element-wise trend verification must reject the lookup.
  CounterMatrix other = phased_suite(6);
  std::vector<std::vector<std::vector<double>>> series;
  for (std::size_t w = 0; w < other.num_workloads(); ++w) {
    std::vector<std::vector<double>> per_counter;
    for (std::size_t c = 0; c < other.num_counters(); ++c) {
      auto s = other.series(w, c);
      s[3] += 17.0;
      per_counter.push_back(std::move(s));
    }
    series.push_back(std::move(per_counter));
  }
  const CounterMatrix tampered("phased", other.workload_names(),
                               other.counter_names(), other.values(), series);
  std::vector<std::size_t> rows;
  EXPECT_FALSE(workspace.map_rows(tampered, options, rows));
}

TEST(ScoringWorkspaceCache, CountsHitsAndPrimes) {
  obs::Counter& primes = obs::counter("cache.primes");
  const std::uint64_t primes_before = primes.value();
  const CounterMatrix suite = phased_suite(6);
  ScoringWorkspace workspace;
  workspace.prime_trend(suite, {});
  workspace.prime_trend(suite, {});  // write-once: second call is a no-op
  EXPECT_EQ(primes.value(), primes_before + 1);
}

}  // namespace
}  // namespace perspector::core
