#include "core/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace perspector::core {
namespace {

TEST(Table, ValidatesConstruction) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowCellCountEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, TextRenderingAligned) {
  Table t({"name", "value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "22"});
  const std::string text = t.to_text();
  // Header, separator, and two data rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("a-much-longer-name"), std::string::npos);
  // All lines are the same width (fixed alignment).
  std::size_t width = text.find('\n');
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t next = text.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(Table, CsvEscaping) {
  Table t({"x"});
  t.add_row({"plain"});
  t.add_row({"with,comma"});
  t.add_row({"with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("plain\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, WriteCsvRoundTrip) {
  Table t({"h1", "h2"});
  t.add_row({"a", "b"});
  const std::string path = ::testing::TempDir() + "/perspector_table.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h1,h2");
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvBadPathThrows) {
  Table t({"h"});
  EXPECT_THROW(t.write_csv("/nonexistent-dir/x/y.csv"), std::runtime_error);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 4), "1.0000");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(ScoresTable, OneRowPerSuite) {
  SuiteScores a, b;
  a.suite = "A";
  a.cluster = 0.1;
  a.trend = 2.0;
  b.suite = "B";
  const Table t = scores_table({a, b});
  EXPECT_EQ(t.rows(), 2u);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("A"), std::string::npos);
  EXPECT_NE(text.find("cluster(v)"), std::string::npos);
}

TEST(ScoreLegend, MentionsDirections) {
  const std::string legend = score_legend();
  EXPECT_NE(legend.find("lower"), std::string::npos);
  EXPECT_NE(legend.find("higher"), std::string::npos);
}

}  // namespace
}  // namespace perspector::core
