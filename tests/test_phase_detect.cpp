#include "core/phase_detect.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.hpp"

namespace perspector::core {
namespace {

std::vector<double> step_series(std::size_t length, std::size_t step_at,
                                double low, double high) {
  std::vector<double> s(length, low);
  for (std::size_t i = step_at; i < length; ++i) s[i] = high;
  return s;
}

TEST(PhaseDetect, ValidatesInput) {
  EXPECT_THROW(detect_phases(std::vector<std::vector<double>>{}),
               std::invalid_argument);
  EXPECT_THROW(detect_phases({{1.0}}), std::invalid_argument);
  EXPECT_THROW(detect_phases({{1.0, 2.0}, {1.0}}), std::invalid_argument);
  PhaseDetectOptions bad;
  bad.window = 0;
  EXPECT_THROW(detect_phases({{1.0, 2.0, 3.0}}, bad), std::invalid_argument);
  EXPECT_THROW(detect_phases({{1.0, -2.0, 3.0}}), std::invalid_argument);
}

TEST(PhaseDetect, FlatSeriesIsOnePhase) {
  const std::vector<double> flat(60, 10.0);
  const auto report = detect_phases({flat, flat});
  EXPECT_EQ(report.phase_count(), 1u);
  EXPECT_EQ(report.phases[0].begin, 0u);
  EXPECT_EQ(report.phases[0].end, 60u);
  EXPECT_TRUE(report.boundary_strength.empty());
}

TEST(PhaseDetect, SingleStepDetected) {
  const auto stepped = step_series(60, 30, 1.0, 100.0);
  const auto report = detect_phases({stepped});
  ASSERT_EQ(report.phase_count(), 2u);
  // Boundary near sample 30.
  EXPECT_NEAR(static_cast<double>(report.phases[0].end), 30.0, 3.0);
  EXPECT_EQ(report.phases[0].end, report.phases[1].begin);
  EXPECT_EQ(report.phases[1].end, 60u);
  ASSERT_EQ(report.boundary_strength.size(), 1u);
  EXPECT_GT(report.boundary_strength[0], 8.0);
}

TEST(PhaseDetect, MultiCounterAgreementStrengthensBoundary) {
  const auto stepped = step_series(60, 30, 1.0, 100.0);
  const std::vector<double> flat(60, 5.0);
  const auto lone = detect_phases({stepped, flat, flat, flat});
  const auto unanimous = detect_phases({stepped, stepped, stepped, stepped});
  // Averaging over counters dilutes a single-counter step...
  ASSERT_GE(unanimous.boundary_strength.size(), 1u);
  if (!lone.boundary_strength.empty()) {
    EXPECT_GT(unanimous.boundary_strength[0], lone.boundary_strength[0]);
  }
}

TEST(PhaseDetect, ThreePhaseWorkload) {
  std::vector<double> s(90, 1.0);
  for (std::size_t i = 30; i < 60; ++i) s[i] = 200.0;
  for (std::size_t i = 60; i < 90; ++i) s[i] = 20.0;
  const auto report = detect_phases({s});
  EXPECT_EQ(report.phase_count(), 3u);
}

TEST(PhaseDetect, NoisyFlatSeriesStaysOnePhase) {
  stats::Rng rng(17);
  std::vector<double> noisy(80);
  for (double& v : noisy) v = 100.0 + rng.uniform(-10.0, 10.0);
  const auto report = detect_phases({noisy});
  EXPECT_EQ(report.phase_count(), 1u);
}

TEST(PhaseDetect, MinPhaseLengthMergesJitter) {
  // Two steps 2 samples apart collapse into one boundary.
  std::vector<double> s(60, 1.0);
  for (std::size_t i = 30; i < 60; ++i) s[i] = 50.0;
  for (std::size_t i = 32; i < 60; ++i) s[i] = 120.0;
  PhaseDetectOptions options;
  options.min_phase_length = 6;
  const auto report = detect_phases({s}, options);
  EXPECT_LE(report.phase_count(), 2u);
}

TEST(PhaseDetect, PhasesPartitionTheSeries) {
  stats::Rng rng(18);
  std::vector<double> s(100);
  for (std::size_t i = 0; i < 100; ++i) {
    s[i] = (i / 25 % 2 == 0) ? rng.uniform(0.0, 5.0) : rng.uniform(90.0, 100.0);
  }
  const auto report = detect_phases({s});
  ASSERT_GE(report.phase_count(), 1u);
  EXPECT_EQ(report.phases.front().begin, 0u);
  EXPECT_EQ(report.phases.back().end, 100u);
  for (std::size_t p = 1; p < report.phases.size(); ++p) {
    EXPECT_EQ(report.phases[p - 1].end, report.phases[p].begin);
    EXPECT_GT(report.phases[p].length(), 0u);
  }
}

TEST(PhaseDetect, SuiteLevelApi) {
  // Two workloads, one counter each: one flat, one stepped.
  la::Matrix values{{600.0}, {3030.0}};
  std::vector<std::vector<std::vector<double>>> series{
      {std::vector<double>(60, 10.0)},
      {step_series(60, 30, 1.0, 100.0)},
  };
  const CounterMatrix suite("s", {"flat", "stepped"}, {"c"}, values, series);
  const auto reports = detect_phases(suite);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].phase_count(), 1u);
  EXPECT_EQ(reports[1].phase_count(), 2u);
  EXPECT_NEAR(mean_phase_count(suite), 1.5, 1e-12);

  la::Matrix bare_values(1, 1, 1.0);
  const CounterMatrix bare("b", {"w"}, {"c"}, bare_values);
  EXPECT_THROW(detect_phases(bare), std::logic_error);
}

}  // namespace
}  // namespace perspector::core
