#include "core/suite_designer.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "core/subset.hpp"
#include "stats/rng.hpp"

namespace perspector::core {
namespace {

// A pool with structure: a redundant cluster of near-clones plus a spread
// of distinct workloads — the designer should prefer the distinct ones.
CounterMatrix structured_pool(std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<std::string> workloads, counters;
  la::Matrix values;
  for (std::size_t c = 0; c < 6; ++c) {
    counters.push_back("c" + std::to_string(c));
  }
  // 8 near-clones huddled at 0.5.
  for (std::size_t w = 0; w < 8; ++w) {
    workloads.push_back("clone" + std::to_string(w));
    std::vector<double> row(6);
    for (double& v : row) v = 0.5 + rng.uniform(-0.01, 0.01);
    values.append_row(row);
  }
  // 12 spread workloads.
  for (std::size_t w = 0; w < 12; ++w) {
    workloads.push_back("spread" + std::to_string(w));
    std::vector<double> row(6);
    for (double& v : row) v = rng.uniform();
    values.append_row(row);
  }
  return CounterMatrix("pool", workloads, counters, values);
}

TEST(SuiteDesigner, ValidatesOptions) {
  const auto pool = structured_pool(1);
  DesignerOptions tiny;
  tiny.target_size = 3;
  EXPECT_THROW(design_suite(pool, tiny), std::invalid_argument);
  DesignerOptions huge;
  huge.target_size = 20;
  EXPECT_THROW(design_suite(pool, huge), std::invalid_argument);
}

TEST(SuiteDesigner, UtilityDirections) {
  DesignerOptions options;
  SuiteScores good, bad;
  good.cluster = 0.1;
  good.coverage = 0.3;
  good.spread = 0.3;
  bad.cluster = 0.5;
  bad.coverage = 0.1;
  bad.spread = 0.7;
  EXPECT_GT(design_utility(good, options), design_utility(bad, options));
}

TEST(SuiteDesigner, UtilityWeightsRespected) {
  SuiteScores scores;
  scores.cluster = 0.4;
  scores.trend = 2000.0;
  scores.coverage = 0.2;
  scores.spread = 0.5;
  DesignerOptions options;
  options.cluster_weight = 0.0;
  options.trend_weight = 0.0;
  options.spread_weight = 0.0;
  options.coverage_weight = 2.0;
  EXPECT_DOUBLE_EQ(design_utility(scores, options), 0.4);
}

TEST(SuiteDesigner, ResultShape) {
  const auto pool = structured_pool(2);
  DesignerOptions options;
  options.target_size = 8;
  options.max_iterations = 10;
  const auto result = design_suite(pool, options);
  EXPECT_EQ(result.indices.size(), 8u);
  EXPECT_EQ(result.names.size(), 8u);
  const std::set<std::size_t> distinct(result.indices.begin(),
                                       result.indices.end());
  EXPECT_EQ(distinct.size(), 8u);
  EXPECT_EQ(result.utility_history.size(), result.swaps + 1);
  EXPECT_DOUBLE_EQ(result.utility_history.back(), result.utility);
}

TEST(SuiteDesigner, UtilityMonotonicallyImproves) {
  const auto pool = structured_pool(3);
  DesignerOptions options;
  options.target_size = 6;
  const auto result = design_suite(pool, options);
  for (std::size_t i = 1; i < result.utility_history.size(); ++i) {
    EXPECT_GT(result.utility_history[i], result.utility_history[i - 1]);
  }
}

TEST(SuiteDesigner, BeatsTheLhsSeed) {
  const auto pool = structured_pool(4);
  DesignerOptions options;
  options.target_size = 8;
  const auto result = design_suite(pool, options);
  // The search starts from the LHS subset; the final utility can only be
  // >= the seed's (strictly greater when any swap happened).
  EXPECT_GE(result.utility, result.utility_history.front());
}

TEST(SuiteDesigner, BeatsRandomSubsets) {
  const auto pool = structured_pool(5);
  DesignerOptions options;
  options.target_size = 8;
  options.max_iterations = 30;
  const auto result = design_suite(pool, options);

  // The designed suite's utility must beat every one of a batch of random
  // subsets (the search had the chance to reach any of them via swaps).
  stats::Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    const auto picks =
        rng.sample_without_replacement(pool.num_workloads(), 8);
    PerspectorOptions scoring;
    scoring.compute_trend = false;
    const auto scores =
        Perspector(scoring).score_suite(pool.select_workloads(picks));
    EXPECT_GE(result.utility, design_utility(scores, options) - 1e-9);
  }
}

TEST(SuiteDesigner, DeterministicForSeed) {
  const auto pool = structured_pool(6);
  DesignerOptions options;
  options.target_size = 6;
  options.seed = 99;
  const auto a = design_suite(pool, options);
  const auto b = design_suite(pool, options);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_DOUBLE_EQ(a.utility, b.utility);
}

TEST(SuiteDesigner, ZeroIterationsReturnsSeed) {
  const auto pool = structured_pool(7);
  DesignerOptions options;
  options.target_size = 6;
  options.max_iterations = 0;
  const auto result = design_suite(pool, options);
  EXPECT_EQ(result.swaps, 0u);
  SubsetOptions seed_options;
  seed_options.target_size = 6;
  seed_options.seed = options.seed;
  auto seed_picks = select_subset(pool, seed_options);
  std::sort(seed_picks.begin(), seed_picks.end());
  EXPECT_EQ(result.indices, seed_picks);
}

}  // namespace
}  // namespace perspector::core
