#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace perspector::stats {
namespace {

TEST(Ecdf, RejectsEmptySample) {
  EXPECT_THROW(Ecdf(std::vector<double>{}), std::invalid_argument);
}

TEST(Ecdf, StepValues) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
  const Ecdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf(100.0), 1.0);
}

TEST(Ecdf, HandlesTies) {
  const std::vector<double> sample{2.0, 2.0, 2.0, 5.0};
  const Ecdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf(1.9), 0.0);
}

TEST(Ecdf, PercentileOf) {
  const std::vector<double> sample{10.0, 20.0};
  const Ecdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.percentile_of(10.0), 50.0);
  EXPECT_DOUBLE_EQ(cdf.percentile_of(20.0), 100.0);
}

TEST(Ecdf, Quantile) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
  const Ecdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(Ecdf, QuantileInvertsCdf) {
  const std::vector<double> sample{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const Ecdf cdf(sample);
  for (double q : {0.125, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_GE(cdf(cdf.quantile(q)), q - 1e-12);
  }
}

TEST(Ecdf, QuantileMatchesLinearScanReference) {
  // quantile() is a binary search; the reference answer is the definition
  // it replaced — the smallest index whose ECDF value reaches q, found by
  // scanning with the identical floating-point predicate.
  const std::vector<double> samples[] = {
      {1.0},
      {1.0, 2.0},
      {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0, 5.0},
      {2.0, 2.0, 2.0, 2.0, 7.0, 7.0, 11.0},
  };
  for (const auto& sample : samples) {
    std::vector<double> sorted = sample;
    std::sort(sorted.begin(), sorted.end());
    const Ecdf cdf(sample);
    const auto n = static_cast<double>(sorted.size());
    for (int step = 1; step <= 200; ++step) {
      const double q = static_cast<double>(step) / 200.0;
      std::size_t idx = 0;
      while (idx + 1 < sorted.size() &&
             static_cast<double>(idx + 1) / n < q) {
        ++idx;
      }
      const double expected = q >= 1.0 ? sorted.back() : sorted[idx];
      EXPECT_DOUBLE_EQ(cdf.quantile(q), expected)
          << "n=" << sorted.size() << " q=" << q;
    }
  }
}

TEST(CdfNormalize, OutputBounded) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 3.0, 9.0};
  const auto out = cdf_normalize_to_percentiles(xs);
  ASSERT_EQ(out.size(), xs.size());
  for (double v : out) {
    EXPECT_GT(v, 0.0);  // every value is >= its own rank
    EXPECT_LE(v, 100.0);
  }
  // The maximum always maps to 100.
  EXPECT_DOUBLE_EQ(out[4], 100.0);
}

TEST(CdfNormalize, EmptyInput) {
  EXPECT_TRUE(cdf_normalize_to_percentiles(std::vector<double>{}).empty());
}

TEST(CdfNormalize, PreservesOrdering) {
  const std::vector<double> xs{4.0, 2.0, 8.0, 6.0};
  const auto out = cdf_normalize_to_percentiles(xs);
  EXPECT_LT(out[1], out[0]);
  EXPECT_LT(out[0], out[3]);
  EXPECT_LT(out[3], out[2]);
}

}  // namespace
}  // namespace perspector::stats
