// jobs:: — the async subset-search subsystem: id derivation, checkpoint
// codec, checkpoint-log corruption recovery, scheduler lifecycle,
// fair-share admission, cross-job candidate dedupe, and the resume
// invariant (a killed-and-resumed job's final subset is byte-identical
// to an uninterrupted run at any thread count).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "jobs/checkpoint.hpp"
#include "jobs/job.hpp"
#include "jobs/scheduler.hpp"
#include "jobs/search.hpp"
#include "obs/metrics.hpp"
#include "par/thread_pool.hpp"
#include "store/checkpoint_log.hpp"
#include "store/fault_injector.hpp"

namespace fs = std::filesystem;
using namespace perspector;
using jobs::BestCandidate;
using jobs::Checkpoint;
using jobs::JobSpec;
using jobs::JobState;
using jobs::Scheduler;
using jobs::SchedulerOptions;
using store::CheckpointLog;
using store::CheckpointLogOptions;
using store::FaultInjector;
using store::FaultOp;

namespace {

std::string fresh_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/perspector_jobs_" + name;
  fs::remove_all(path);
  fs::create_directories(path);
  return path;
}

/// A small built-in spec that finishes in well under a second.
JobSpec small_spec(std::uint64_t candidates = 8, std::uint64_t seed = 1234) {
  JobSpec spec;
  spec.builtin = "nbench";
  spec.instructions = 2000;
  spec.target_size = 4;
  spec.candidates = candidates;
  spec.seed = seed;
  return spec;
}

SchedulerOptions checkpointed_options(const std::string& dir) {
  SchedulerOptions options;
  options.checkpoint_dir = dir;
  options.slice_candidates = 4;
  options.checkpoint_every = 4;
  return options;
}

/// Flips one bit of the file's last byte (for a checkpoint log this is
/// the last byte of the newest record's payload).
void flip_last_byte(const std::string& path) {
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file) << path;
  file.seekg(0, std::ios::end);
  const auto size = file.tellg();
  ASSERT_GT(size, 0);
  file.seekg(-1, std::ios::end);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  file.seekp(-1, std::ios::end);
  file.write(&byte, 1);
}

Checkpoint sample_checkpoint() {
  Checkpoint checkpoint;
  checkpoint.spec.builtin = "nbench";
  checkpoint.spec.instructions = 5000;
  checkpoint.spec.events = "llc";
  checkpoint.spec.target_size = 5;
  checkpoint.spec.candidates = 32;
  checkpoint.spec.seed = 99;
  checkpoint.spec.client = "alice";
  checkpoint.state = JobState::Running;
  checkpoint.evaluated = 17;
  checkpoint.best.valid = true;
  checkpoint.best.candidate = 12;
  checkpoint.best.deviation_pct = 3.14159265358979;
  checkpoint.best.per_score_deviation_pct = {1.5, 2.25, 0.125, 4.0};
  checkpoint.best.indices = {0, 3, 7, 9, 11};
  checkpoint.best.names = {"a", "b", "c", "d", "e"};
  checkpoint.progress_seq = 6;
  return checkpoint;
}

}  // namespace

// ---- job id ---------------------------------------------------------------

TEST(JobId, IsSixteenLowercaseHexAndDeterministic) {
  const std::string id = jobs::derive_job_id(small_spec());
  ASSERT_EQ(id.size(), 16u);
  for (char ch : id) {
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(ch)) ||
                (ch >= 'a' && ch <= 'f'))
        << id;
  }
  EXPECT_EQ(id, jobs::derive_job_id(small_spec()));
}

TEST(JobId, EveryFieldChangesTheId) {
  const std::string base = jobs::derive_job_id(small_spec());
  auto differs = [&](JobSpec spec) {
    EXPECT_NE(jobs::derive_job_id(spec), base);
  };
  JobSpec spec = small_spec();
  spec.seed = 4321;
  differs(spec);
  spec = small_spec();
  spec.candidates = 9;
  differs(spec);
  spec = small_spec();
  spec.target_size = 5;
  differs(spec);
  spec = small_spec();
  spec.events = "llc";
  differs(spec);
  spec = small_spec();
  spec.instructions = 2001;
  differs(spec);
  spec = small_spec();
  spec.client = "alice";
  differs(spec);
  spec = small_spec();
  spec.builtin = "sebs";
  differs(spec);
}

// ---- checkpoint codec -----------------------------------------------------

TEST(CheckpointCodec, RoundTripsEveryField) {
  const Checkpoint original = sample_checkpoint();
  const std::string payload = jobs::encode_checkpoint(original);
  const auto decoded = jobs::decode_checkpoint(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

TEST(CheckpointCodec, EncodingIsDeterministic) {
  EXPECT_EQ(jobs::encode_checkpoint(sample_checkpoint()),
            jobs::encode_checkpoint(sample_checkpoint()));
}

TEST(CheckpointCodec, RejectsTruncationAndTrailingGarbage) {
  const std::string payload = jobs::encode_checkpoint(sample_checkpoint());
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, payload.size() / 2,
                          payload.size() - 1}) {
    EXPECT_FALSE(jobs::decode_checkpoint(payload.substr(0, cut)).has_value())
        << "cut at " << cut;
  }
  EXPECT_FALSE(jobs::decode_checkpoint(payload + "x").has_value());
}

// ---- checkpoint log -------------------------------------------------------

TEST(CheckpointLogJobs, AppendsSurviveReopen) {
  const std::string dir = fresh_dir("log_reopen");
  const std::string path = dir + "/job.ckpt";
  {
    CheckpointLog log({path, nullptr});
    EXPECT_FALSE(log.last().has_value());
    EXPECT_TRUE(log.append("one"));
    EXPECT_TRUE(log.append("two"));
    EXPECT_EQ(log.last_seq(), 2u);
    ASSERT_TRUE(log.last().has_value());
    EXPECT_EQ(*log.last(), "two");
  }
  CheckpointLog reopened({path, nullptr});
  EXPECT_EQ(reopened.last_seq(), 2u);
  ASSERT_TRUE(reopened.last().has_value());
  EXPECT_EQ(*reopened.last(), "two");
  EXPECT_EQ(reopened.corrupt_skipped(), 0u);
  EXPECT_FALSE(reopened.truncated_tail());
}

TEST(CheckpointLogJobs, BitFlippedNewestRecordFallsBackToPrevious) {
  const std::string dir = fresh_dir("log_bitflip");
  const std::string path = dir + "/job.ckpt";
  {
    CheckpointLog log({path, nullptr});
    EXPECT_TRUE(log.append("good checkpoint"));
    EXPECT_TRUE(log.append("corrupted checkpoint"));
  }
  flip_last_byte(path);
  CheckpointLog recovered({path, nullptr});
  ASSERT_TRUE(recovered.last().has_value());
  EXPECT_EQ(*recovered.last(), "good checkpoint");
  EXPECT_EQ(recovered.last_seq(), 1u);
  EXPECT_EQ(recovered.corrupt_skipped(), 1u);
}

TEST(CheckpointLogJobs, TornTailIsTruncatedAndLogStaysAppendable) {
  const std::string dir = fresh_dir("log_torn");
  const std::string path = dir + "/job.ckpt";
  {
    CheckpointLog log({path, nullptr});
    EXPECT_TRUE(log.append("intact"));
    EXPECT_TRUE(log.append("this record will be torn"));
  }
  // Chop mid-frame: the tail must be trimmed, not parsed.
  fs::resize_file(path, fs::file_size(path) - 5);
  {
    CheckpointLog recovered({path, nullptr});
    ASSERT_TRUE(recovered.last().has_value());
    EXPECT_EQ(*recovered.last(), "intact");
    EXPECT_TRUE(recovered.truncated_tail());
    EXPECT_TRUE(recovered.append("after recovery"));
  }
  CheckpointLog reopened({path, nullptr});
  ASSERT_TRUE(reopened.last().has_value());
  EXPECT_EQ(*reopened.last(), "after recovery");
  EXPECT_FALSE(reopened.truncated_tail());
}

TEST(CheckpointLogJobs, FailedWriteKeepsThePreviousCheckpoint) {
  const std::string dir = fresh_dir("log_fault");
  FaultInjector faults;
  CheckpointLog log({dir + "/job.ckpt", &faults});
  EXPECT_TRUE(log.append("durable"));
  faults.arm(FaultOp::Write, 1);
  EXPECT_FALSE(log.append("lost"));
  ASSERT_TRUE(log.last().has_value());
  EXPECT_EQ(*log.last(), "durable");
  EXPECT_TRUE(log.append("next"));
  EXPECT_EQ(*log.last(), "next");
}

// ---- scheduler lifecycle --------------------------------------------------

TEST(JobScheduler, SubmitDrainCompletes) {
  Scheduler scheduler({});
  const auto outcome = scheduler.submit(small_spec());
  ASSERT_TRUE(outcome.ok) << outcome.message;
  EXPECT_FALSE(outcome.duplicate);
  EXPECT_TRUE(scheduler.runnable());
  scheduler.drain();
  const auto status = scheduler.status(outcome.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::Done);
  EXPECT_EQ(status->evaluated, small_spec().candidates);
  EXPECT_TRUE(status->best.valid);
}

TEST(JobScheduler, FinalSubsetMatchesSynchronousSearch) {
  const JobSpec spec = small_spec(12);
  const BestCandidate reference = jobs::run_search(spec);
  Scheduler scheduler({});
  const auto outcome = scheduler.submit(spec);
  ASSERT_TRUE(outcome.ok);
  scheduler.drain();
  const auto status = scheduler.status(outcome.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->best, reference);
}

TEST(JobScheduler, ResubmitIsIdempotent) {
  Scheduler scheduler({});
  const auto first = scheduler.submit(small_spec());
  const auto second = scheduler.submit(small_spec());
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.duplicate);
  EXPECT_EQ(first.id, second.id);
  EXPECT_EQ(scheduler.list().size(), 1u);
}

TEST(JobScheduler, RejectsInvalidSpecsAtSubmit) {
  Scheduler scheduler({});
  JobSpec empty;
  empty.builtin.clear();
  EXPECT_EQ(scheduler.submit(empty).error, "bad_request");
  JobSpec events = small_spec();
  events.events = "bogus";
  EXPECT_EQ(scheduler.submit(events).error, "bad_request");
  JobSpec zero = small_spec();
  zero.candidates = 0;
  EXPECT_EQ(scheduler.submit(zero).error, "bad_request");
  JobSpec tiny = small_spec();
  tiny.target_size = 3;
  EXPECT_EQ(scheduler.submit(tiny).error, "bad_request");
}

TEST(JobScheduler, SuiteLevelValidationFailsTheJobNotTheSubmit) {
  // nbench has 10 workloads; a target of 10 only fails once the suite is
  // resolved, which happens on the first slice.
  JobSpec spec = small_spec();
  spec.target_size = 10;
  Scheduler scheduler({});
  const auto outcome = scheduler.submit(spec);
  ASSERT_TRUE(outcome.ok);
  scheduler.drain();
  const auto status = scheduler.status(outcome.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::Failed);
  EXPECT_FALSE(status->error.empty());
}

TEST(JobScheduler, GlobalAdmissionCapRejectsWithOverloaded) {
  SchedulerOptions options;
  options.max_active = 2;
  Scheduler scheduler(options);
  ASSERT_TRUE(scheduler.submit(small_spec(8, 1)).ok);
  ASSERT_TRUE(scheduler.submit(small_spec(8, 2)).ok);
  const auto third = scheduler.submit(small_spec(8, 3));
  EXPECT_FALSE(third.ok);
  EXPECT_EQ(third.error, "overloaded");
  // Draining frees the slots: the same spec is admitted afterwards.
  scheduler.drain();
  EXPECT_TRUE(scheduler.submit(small_spec(8, 3)).ok);
}

TEST(JobScheduler, PerClientCapIsFairShare) {
  SchedulerOptions options;
  options.max_active = 16;
  options.max_active_per_client = 1;
  Scheduler scheduler(options);
  JobSpec greedy = small_spec(8, 1);
  greedy.client = "greedy";
  ASSERT_TRUE(scheduler.submit(greedy).ok);
  JobSpec more = small_spec(8, 2);
  more.client = "greedy";
  const auto rejected = scheduler.submit(more);
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error, "overloaded");
  // Another client's budget is untouched.
  JobSpec other = small_spec(8, 3);
  other.client = "patient";
  EXPECT_TRUE(scheduler.submit(other).ok);
}

TEST(JobScheduler, CancelBeforeAndDuringRun) {
  Scheduler scheduler({});
  const auto queued = scheduler.submit(small_spec(64, 5));
  ASSERT_TRUE(queued.ok);
  const auto cancelled = scheduler.cancel(queued.id);
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_EQ(cancelled->state, JobState::Cancelled);
  EXPECT_FALSE(scheduler.runnable());
  // Cancelling a terminal job is a no-op, not an error.
  const auto again = scheduler.cancel(queued.id);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->state, JobState::Cancelled);
  EXPECT_FALSE(scheduler.status("0123456789abcdef").has_value());
}

TEST(JobScheduler, WatchStreamsMonotonicProgressRecords) {
  Scheduler scheduler({});
  const auto outcome = scheduler.submit(small_spec(12));
  ASSERT_TRUE(outcome.ok);
  scheduler.drain();
  const auto watched = scheduler.watch(outcome.id, 1);
  ASSERT_TRUE(watched.has_value());
  ASSERT_FALSE(watched->progress.empty());
  std::uint64_t previous_seq = 0;
  double previous_best = 1e300;
  for (const auto& record : watched->progress) {
    EXPECT_GT(record.seq, previous_seq);
    EXPECT_LT(record.best.deviation_pct, previous_best);
    previous_seq = record.seq;
    previous_best = record.best.deviation_pct;
  }
  EXPECT_EQ(watched->next, previous_seq + 1);
  // A cursor past the stream returns status only.
  const auto tail = scheduler.watch(outcome.id, watched->next);
  ASSERT_TRUE(tail.has_value());
  EXPECT_TRUE(tail->progress.empty());
}

TEST(JobScheduler, CandidateCacheDedupesAcrossJobs) {
  // Two jobs differing only in the client share every candidate
  // evaluation through the content-addressed outcome cache.
  const std::uint64_t hits_before =
      obs::counter("jobs.candidate_cache_hits").value();
  Scheduler scheduler({});
  JobSpec first = small_spec(8, 77);
  first.client = "alice";
  JobSpec second = first;
  second.client = "bob";
  const auto a = scheduler.submit(first);
  const auto b = scheduler.submit(second);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_NE(a.id, b.id);
  scheduler.drain();
  const auto status_a = scheduler.status(a.id);
  const auto status_b = scheduler.status(b.id);
  ASSERT_TRUE(status_a.has_value());
  ASSERT_TRUE(status_b.has_value());
  EXPECT_EQ(status_a->best, status_b->best);
  EXPECT_GE(obs::counter("jobs.candidate_cache_hits").value(),
            hits_before + first.candidates);
}

// ---- determinism and resume ----------------------------------------------

TEST(JobScheduler, FinalSubsetIsByteIdenticalAcrossThreadCounts) {
  const JobSpec spec = small_spec(12, 31);
  const std::size_t restore = par::thread_count();
  std::vector<BestCandidate> results;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    par::set_thread_count(threads);
    Scheduler scheduler({});
    const auto outcome = scheduler.submit(spec);
    ASSERT_TRUE(outcome.ok);
    scheduler.drain();
    const auto status = scheduler.status(outcome.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::Done);
    results.push_back(status->best);
  }
  par::set_thread_count(restore);
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(JobScheduler, ResumesFromCheckpointAfterDestroy) {
  const std::string dir = fresh_dir("resume");
  const JobSpec spec = small_spec(12, 9);
  const BestCandidate reference = jobs::run_search(spec);

  std::string id;
  {
    Scheduler interrupted(checkpointed_options(dir));
    const auto outcome = interrupted.submit(spec);
    ASSERT_TRUE(outcome.ok);
    id = outcome.id;
    interrupted.step();  // evaluate one 4-candidate slice, checkpoint
    const auto partial = interrupted.status(id);
    ASSERT_TRUE(partial.has_value());
    EXPECT_LT(partial->evaluated, spec.candidates);
  }  // destroyed mid-job: the checkpoint log is the only survivor

  Scheduler resumed(checkpointed_options(dir));
  // The fresh scheduler has never seen this id; status() must recover it
  // from the checkpoint directory.
  const auto recovered = resumed.status(id);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(recovered->resumed);
  EXPECT_GE(recovered->evaluated, 4u);
  resumed.drain();
  const auto final_status = resumed.status(id);
  ASSERT_TRUE(final_status.has_value());
  EXPECT_EQ(final_status->state, JobState::Done);
  EXPECT_EQ(final_status->best, reference);
}

TEST(JobScheduler, ResumeIsByteIdenticalAtEveryThreadCount) {
  // The acceptance invariant: interrupt at an arbitrary frontier, resume
  // in a fresh scheduler, and the final subset must equal the
  // uninterrupted run's — at 1, 2 and 8 threads.
  const JobSpec spec = small_spec(12, 58);
  const std::size_t restore = par::thread_count();
  par::set_thread_count(1);
  const BestCandidate reference = jobs::run_search(spec);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    par::set_thread_count(threads);
    const std::string dir =
        fresh_dir("resume_t" + std::to_string(threads));
    std::string id;
    {
      Scheduler interrupted(checkpointed_options(dir));
      const auto outcome = interrupted.submit(spec);
      ASSERT_TRUE(outcome.ok);
      id = outcome.id;
      interrupted.step();
      interrupted.step();
    }
    Scheduler resumed(checkpointed_options(dir));
    // drain() only advances known jobs; pull the id in first.
    ASSERT_TRUE(resumed.status(id).has_value());
    resumed.drain();
    const auto final_status = resumed.status(id);
    ASSERT_TRUE(final_status.has_value());
    EXPECT_EQ(final_status->state, JobState::Done);
    EXPECT_EQ(final_status->best, reference)
        << "threads=" << threads;
  }
  par::set_thread_count(restore);
}

TEST(JobScheduler, CorruptedNewestCheckpointResumesFromPrevious) {
  const std::string dir = fresh_dir("resume_corrupt");
  const JobSpec spec = small_spec(12, 13);
  const BestCandidate reference = jobs::run_search(spec);

  std::string id;
  {
    Scheduler interrupted(checkpointed_options(dir));
    const auto outcome = interrupted.submit(spec);
    ASSERT_TRUE(outcome.ok);
    id = outcome.id;
    interrupted.step();  // ckpt at evaluated=4
    interrupted.step();  // ckpt at evaluated=8
  }
  // Corrupt the newest record: recovery must skip it (checksum) and
  // restart from the previous checkpoint — re-evaluating at most one
  // cadence, never serving bad state.
  flip_last_byte(dir + "/job-" + id + ".ckpt");

  Scheduler resumed(checkpointed_options(dir));
  const auto recovered = resumed.status(id);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(recovered->resumed);
  EXPECT_EQ(recovered->evaluated, 4u);  // the seq-2 checkpoint, not seq-3
  resumed.drain();
  const auto final_status = resumed.status(id);
  ASSERT_TRUE(final_status.has_value());
  EXPECT_EQ(final_status->state, JobState::Done);
  EXPECT_EQ(final_status->best, reference);
}

TEST(JobScheduler, FullyCorruptCheckpointIsUnknownNotWrong) {
  const std::string dir = fresh_dir("resume_dead");
  const JobSpec spec = small_spec(8, 21);
  std::string id;
  {
    Scheduler interrupted(checkpointed_options(dir));
    const auto outcome = interrupted.submit(spec);
    ASSERT_TRUE(outcome.ok);
    id = outcome.id;
  }
  // Truncate to a torn sliver of the first frame: no valid record
  // remains, so the id must come back unknown (resubmit restarts it).
  const std::string path = dir + "/job-" + id + ".ckpt";
  fs::resize_file(path, 10);
  Scheduler resumed(checkpointed_options(dir));
  EXPECT_FALSE(resumed.status(id).has_value());
  const auto fresh = resumed.submit(spec);
  ASSERT_TRUE(fresh.ok);
  EXPECT_EQ(fresh.id, id);
}

TEST(JobScheduler, TerminalStateSurvivesRestart) {
  const std::string dir = fresh_dir("resume_done");
  const JobSpec spec = small_spec(8, 34);
  std::string id;
  BestCandidate best;
  {
    Scheduler scheduler(checkpointed_options(dir));
    const auto outcome = scheduler.submit(spec);
    ASSERT_TRUE(outcome.ok);
    id = outcome.id;
    scheduler.drain();
    best = scheduler.status(id)->best;
  }
  Scheduler restarted(checkpointed_options(dir));
  const auto status = restarted.status(id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::Done);
  EXPECT_TRUE(status->resumed);
  EXPECT_EQ(status->best, best);
  EXPECT_FALSE(restarted.runnable());
}
