#include "dtw/trend_normalize.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "dtw/dtw.hpp"
#include "stats/rng.hpp"

namespace perspector::dtw {
namespace {

TEST(Resample, ValidatesInput) {
  EXPECT_THROW(resample_to_percentile_grid(std::vector<double>{}, 10),
               std::invalid_argument);
  const std::vector<double> one{1.0};
  EXPECT_THROW(resample_to_percentile_grid(one, 1), std::invalid_argument);
}

TEST(Resample, SingleValueReplicates) {
  const std::vector<double> one{7.0};
  const auto out = resample_to_percentile_grid(one, 5);
  ASSERT_EQ(out.size(), 5u);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(Resample, PreservesEndpoints) {
  const std::vector<double> xs{1.0, 5.0, 2.0, 9.0};
  const auto out = resample_to_percentile_grid(xs, 7);
  EXPECT_DOUBLE_EQ(out.front(), 1.0);
  EXPECT_DOUBLE_EQ(out.back(), 9.0);
}

TEST(Resample, LinearInterpolation) {
  const std::vector<double> xs{0.0, 10.0};
  const auto out = resample_to_percentile_grid(xs, 5);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 2.5);
  EXPECT_DOUBLE_EQ(out[2], 5.0);
  EXPECT_DOUBLE_EQ(out[4], 10.0);
}

TEST(Resample, IdentityWhenGridMatches) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0};
  const auto out = resample_to_percentile_grid(xs, 5);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(out[i], xs[i]);
}

TEST(NormalizeTrend, RejectsNegativeDeltas) {
  const std::vector<double> xs{1.0, -2.0, 3.0};
  EXPECT_THROW(normalize_trend(xs), std::invalid_argument);
  EXPECT_THROW(
      normalize_trend(xs, 101, TrendNormalization::CumulativeShare),
      std::invalid_argument);
}

TEST(NormalizeTrend, MeanRelativeFlatSeriesIsFifty) {
  const std::vector<double> flat(50, 42.0);
  for (double v : normalize_trend(flat, 21)) EXPECT_DOUBLE_EQ(v, 50.0);
}

TEST(NormalizeTrend, MeanRelativeZeroSeriesIsFifty) {
  const std::vector<double> zeros(50, 0.0);
  for (double v : normalize_trend(zeros, 21)) EXPECT_DOUBLE_EQ(v, 50.0);
}

TEST(NormalizeTrend, MeanRelativeBurstBendsCurve) {
  std::vector<double> xs(10, 1.0);
  xs[0] = 100.0;  // startup burst
  const auto out = normalize_trend(xs, 10);
  EXPECT_GT(out.front(), 85.0);  // burst saturates toward 100
  EXPECT_LT(out.back(), 50.0);   // steady tail is below its inflated mean
}

TEST(NormalizeTrend, MeanRelativeBounded) {
  stats::Rng rng(71);
  std::vector<double> xs(80);
  for (double& v : xs) v = rng.uniform(0.0, 1e9);
  for (double v : normalize_trend(xs)) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 100.0);
  }
}

TEST(NormalizeTrend, TwoFlatSeriesAtDifferentLevelsAreEquivalent) {
  // Trend is about shape, not level: steady-low and steady-high workloads
  // must have zero trend distance.
  const std::vector<double> low(40, 5.0);
  const std::vector<double> high(40, 5000.0);
  const auto a = normalize_trend(low);
  const auto b = normalize_trend(high);
  EXPECT_DOUBLE_EQ(dtw::dtw_distance(a, b).distance, 0.0);
}

TEST(NormalizeTrend, CumulativeShareIsMonotone) {
  stats::Rng rng(72);
  std::vector<double> xs(60);
  for (double& v : xs) v = rng.uniform(0.0, 10.0);
  const auto out =
      normalize_trend(xs, 101, TrendNormalization::CumulativeShare);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i], out[i - 1] - 1e-9);
  }
  EXPECT_NEAR(out.back(), 100.0, 1e-9);
}

TEST(NormalizeTrend, CumulativeShareZeroTotalIsDiagonal) {
  const std::vector<double> zeros(10, 0.0);
  const auto out =
      normalize_trend(zeros, 11, TrendNormalization::CumulativeShare);
  EXPECT_NEAR(out.front(), 10.0, 1.0);  // first sample's share
  EXPECT_NEAR(out.back(), 100.0, 1e-9);
}

TEST(NormalizeTrend, RankPercentileUsesOwnEcdf) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const auto out =
      normalize_trend(xs, 4, TrendNormalization::RankPercentile);
  EXPECT_DOUBLE_EQ(out[0], 25.0);
  EXPECT_DOUBLE_EQ(out[3], 100.0);
}

TEST(NormalizeTrend, GridLengthIndependentOfInputLength) {
  const std::vector<double> short_series{1.0, 2.0, 3.0};
  std::vector<double> long_series(1000, 1.0);
  EXPECT_EQ(normalize_trend(short_series, 101).size(), 101u);
  EXPECT_EQ(normalize_trend(long_series, 101).size(), 101u);
}

TEST(NormalizeTrends, BatchMatchesSingle) {
  const std::vector<std::vector<double>> series{{1.0, 2.0}, {5.0, 5.0}};
  const auto batch = normalize_trends(series, 11);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], normalize_trend(series[0], 11));
  EXPECT_EQ(batch[1], normalize_trend(series[1], 11));
}

TEST(TrendNormalizationNames, AllDistinct) {
  EXPECT_STREQ(to_string(TrendNormalization::MeanRelative), "mean-relative");
  EXPECT_STREQ(to_string(TrendNormalization::RankPercentile),
               "rank-percentile");
  EXPECT_STREQ(to_string(TrendNormalization::CumulativeShare),
               "cumulative-share");
}

// Property: all three modes keep output in [0, 100] for random inputs.
class TrendModeBounds
    : public ::testing::TestWithParam<TrendNormalization> {};

TEST_P(TrendModeBounds, OutputBounded) {
  stats::Rng rng(73);
  for (int round = 0; round < 5; ++round) {
    std::vector<double> xs(37);
    for (double& v : xs) v = rng.uniform(0.0, 1e6);
    for (double v : normalize_trend(xs, 51, GetParam())) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 100.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, TrendModeBounds,
                         ::testing::Values(TrendNormalization::MeanRelative,
                                           TrendNormalization::RankPercentile,
                                           TrendNormalization::CumulativeShare));

}  // namespace
}  // namespace perspector::dtw
