#include "core/event_group.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/pmu.hpp"

namespace perspector::core {
namespace {

TEST(EventGroup, AllMatchesEverything) {
  const EventGroup all = EventGroup::all();
  EXPECT_TRUE(all.is_all());
  EXPECT_TRUE(all.contains("anything"));
  const auto indices = all.indices_in({"a", "b", "c"});
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(EventGroup, LlcSelectsFourTableIvCounters) {
  const EventGroup llc = EventGroup::llc();
  const auto indices = llc.indices_in(sim::pmu_event_names());
  EXPECT_EQ(indices.size(), 4u);
  for (std::size_t i : indices) {
    EXPECT_NE(sim::pmu_event_names()[i].find("LLC"), std::string::npos);
  }
}

TEST(EventGroup, TlbSelectsFiveTableIvCounters) {
  const EventGroup tlb = EventGroup::tlb();
  EXPECT_EQ(tlb.indices_in(sim::pmu_event_names()).size(), 5u);
  EXPECT_TRUE(tlb.contains("dtlb_misses.walk_pending"));
  EXPECT_FALSE(tlb.contains("LLC-loads"));
}

TEST(EventGroup, BranchGroup) {
  const EventGroup branch = EventGroup::branch();
  EXPECT_EQ(branch.indices_in(sim::pmu_event_names()).size(), 2u);
  EXPECT_EQ(branch.name(), "branch");
}

TEST(EventGroup, CustomGroup) {
  const EventGroup g = EventGroup::custom("mine", {"x", "z"});
  EXPECT_FALSE(g.is_all());
  EXPECT_EQ(g.name(), "mine");
  const auto indices = g.indices_in({"x", "y", "z"});
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 2}));
}

TEST(EventGroup, CustomRejectsEmptyList) {
  EXPECT_THROW(EventGroup::custom("empty", {}), std::invalid_argument);
}

TEST(EventGroup, NoMatchThrows) {
  const EventGroup g = EventGroup::custom("missing", {"not-there"});
  EXPECT_THROW(g.indices_in({"a", "b"}), std::invalid_argument);
}

TEST(EventGroup, IndicesPreserveAvailableOrder) {
  const EventGroup g = EventGroup::custom("two", {"z", "a"});
  // Selection order follows `available`, not the group definition.
  const auto indices = g.indices_in({"a", "z"});
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1}));
}

}  // namespace
}  // namespace perspector::core
