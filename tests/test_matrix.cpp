#include "la/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace perspector::la {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, FillConstruction) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, InitializerListConstruction) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, FromRowsValidatesSize) {
  EXPECT_THROW(Matrix::from_rows(2, 2, {1.0, 2.0, 3.0}),
               std::invalid_argument);
  Matrix m = Matrix::from_rows(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, FromRowVectors) {
  Matrix m = Matrix::from_row_vectors({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, Identity) {
  Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, RowSpanWritesThrough) {
  Matrix m(2, 2, 0.0);
  auto row = m.row(1);
  row[0] = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST(Matrix, RowColCopy) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.row_copy(0), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(m.col_copy(1), (std::vector<double>{2.0, 4.0}));
}

TEST(Matrix, SetRowAndColValidate) {
  Matrix m(2, 2);
  const std::vector<double> wrong{1.0};
  EXPECT_THROW(m.set_row(0, wrong), std::invalid_argument);
  EXPECT_THROW(m.set_col(0, wrong), std::invalid_argument);
  const std::vector<double> row{5.0, 6.0};
  m.set_row(0, row);
  EXPECT_DOUBLE_EQ(m(0, 1), 6.0);
  const std::vector<double> col{8.0, 9.0};
  m.set_col(1, col);
  EXPECT_DOUBLE_EQ(m(1, 1), 9.0);
}

TEST(Matrix, AppendRowGrowsAndDefinesShape) {
  Matrix m;
  const std::vector<double> r1{1.0, 2.0, 3.0};
  m.append_row(r1);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
  const std::vector<double> bad{1.0};
  EXPECT_THROW(m.append_row(bad), std::invalid_argument);
}

TEST(Matrix, Transpose) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MultiplyKnownProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix p = a.multiply(b);
  EXPECT_DOUBLE_EQ(p(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

TEST(Matrix, MultiplyByIdentityIsNoop) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a.multiply(Matrix::identity(2)), a);
  EXPECT_EQ(Matrix::identity(2).multiply(a), a);
}

TEST(Matrix, SelectRowsAndCols) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
  const std::vector<std::size_t> rows{2, 0};
  Matrix r = m.select_rows(rows);
  EXPECT_EQ(r.rows(), 2u);
  EXPECT_DOUBLE_EQ(r(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(r(1, 2), 3.0);

  const std::vector<std::size_t> cols{1};
  Matrix c = m.select_cols(cols);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(2, 0), 8.0);

  const std::vector<std::size_t> bad{3};
  EXPECT_THROW(m.select_rows(bad), std::out_of_range);
  EXPECT_THROW(m.select_cols(bad), std::out_of_range);
}

TEST(Matrix, Concatenation) {
  Matrix a{{1.0}, {2.0}};
  Matrix b{{3.0}, {4.0}};
  Matrix h = a.hconcat(b);
  EXPECT_EQ(h.cols(), 2u);
  EXPECT_DOUBLE_EQ(h(1, 1), 4.0);
  Matrix v = a.vconcat(b);
  EXPECT_EQ(v.rows(), 4u);
  EXPECT_DOUBLE_EQ(v(3, 0), 4.0);

  Matrix wide(1, 2);
  EXPECT_THROW(a.hconcat(wide), std::invalid_argument);
  EXPECT_THROW(a.vconcat(wide), std::invalid_argument);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{1.5, 1.0}};
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 1.0);
  Matrix c(2, 1);
  EXPECT_THROW(a.max_abs_diff(c), std::invalid_argument);
}

TEST(VectorOps, EuclideanDistance) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  const std::vector<double> c{1.0};
  EXPECT_THROW(euclidean_distance(a, c), std::invalid_argument);
}

TEST(VectorOps, DotAndNorm) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm(std::vector<double>{3.0, 4.0}), 5.0);
}

TEST(VectorOps, PairwiseDistancesSymmetricZeroDiagonal) {
  Matrix points{{0.0, 0.0}, {3.0, 4.0}, {6.0, 8.0}};
  Matrix d = pairwise_distances(points);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 10.0);
}

TEST(Matrix, ToStringRendersRows) {
  Matrix m{{1.0, 2.0}};
  const std::string s = m.to_string(1);
  EXPECT_NE(s.find("1.0"), std::string::npos);
  EXPECT_NE(s.find("2.0"), std::string::npos);
}

}  // namespace
}  // namespace perspector::la
