#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace perspector::obs {
namespace {

/// Deterministic value stream with a long-tailed, multi-octave shape
/// (xorshift64; no std::rand in tests either).
class ValueStream {
 public:
  explicit ValueStream(std::uint64_t seed) : state_(seed | 1) {}
  double next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    // Map to (0, 2^20) microseconds-ish with density at the low end.
    const double unit =
        static_cast<double>(state_ >> 11) / 9007199254740992.0;  // [0,1)
    return std::ldexp(1.0, static_cast<int>(unit * 24.0) - 4) *
           (1.0 + unit);
  }

 private:
  std::uint64_t state_;
};

/// The reference percentile: quantize every sample through the bucket
/// mapping, sort, take the rank-th representative. Bit-exact against
/// Histogram::stats() by construction of the shared rank rule.
double reference_percentile(std::vector<double> samples, double q) {
  std::vector<double> quantized;
  quantized.reserve(samples.size());
  for (double v : samples) {
    quantized.push_back(
        Histogram::representative(Histogram::bucket_of(v)));
  }
  std::sort(quantized.begin(), quantized.end());
  const auto total = quantized.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(total)));
  rank = std::max<std::size_t>(rank, 1);
  rank = std::min(rank, total);
  return quantized[rank - 1];
}

TEST(ObsHistogram, BucketMappingIsMonotoneAcrossOctaves) {
  int previous = 0;
  for (double v = 1e-5; v < 1e13; v *= 1.0078125) {
    const int bucket = Histogram::bucket_of(v);
    ASSERT_GE(bucket, previous) << "value " << v;
    ASSERT_LT(bucket, Histogram::kBucketCount);
    previous = bucket;
  }
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<double>::max()),
            Histogram::kBucketCount - 1);
}

TEST(ObsHistogram, NonPositiveAndNonFiniteLandInUnderflowBucket) {
  EXPECT_EQ(Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(Histogram::bucket_of(-3.5), 0);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<double>::quiet_NaN()),
            0);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<double>::infinity()),
            0);
  EXPECT_EQ(Histogram::representative(0), 0.0);
}

TEST(ObsHistogram, RepresentativeBoundsRelativeError) {
  // Midpoint of a 1/32-wide sub-bucket: at most ~1/64 relative error.
  ValueStream stream(42);
  for (int i = 0; i < 20000; ++i) {
    const double v = stream.next();
    const double rep = Histogram::representative(Histogram::bucket_of(v));
    EXPECT_NEAR(rep, v, v / 60.0) << "value " << v;
  }
}

TEST(ObsHistogram, StatsMatchExactAggregates) {
  Histogram h;
  h.record(10.0);
  h.record(20.0);
  h.record(30.0);
  const HistogramStats stats = h.stats();
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.min, 10.0);
  EXPECT_EQ(stats.max, 30.0);
  EXPECT_EQ(stats.sum, 60.0);
  EXPECT_EQ(stats.mean(), 20.0);
}

TEST(ObsHistogram, PercentilesBitExactVsSortedReference) {
  Histogram h;
  ValueStream stream(7);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    const double v = stream.next();
    samples.push_back(v);
    h.record(v);
  }
  const HistogramStats stats = h.stats();
  // Bit-exact (EXPECT_EQ on doubles is deliberate): both sides quantize
  // through the same bucket mapping and the same rank rule.
  EXPECT_EQ(stats.p50, reference_percentile(samples, 0.50));
  EXPECT_EQ(stats.p90, reference_percentile(samples, 0.90));
  EXPECT_EQ(stats.p99, reference_percentile(samples, 0.99));
  EXPECT_EQ(stats.p999, reference_percentile(samples, 0.999));
}

TEST(ObsHistogram, PercentilesIndependentOfArrivalOrder) {
  ValueStream stream(1234);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(stream.next());

  Histogram forward;
  for (double v : samples) forward.record(v);
  Histogram backward;
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
    backward.record(*it);
  }
  const HistogramStats a = forward.stats();
  const HistogramStats b = backward.stats();
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p90, b.p90);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.p999, b.p999);
}

TEST(ObsHistogram, SingleSampleAllPercentilesCollapse) {
  Histogram h;
  h.record(123.0);
  const HistogramStats stats = h.stats();
  const double rep = Histogram::representative(Histogram::bucket_of(123.0));
  EXPECT_EQ(stats.p50, rep);
  EXPECT_EQ(stats.p999, rep);
}

TEST(ObsHistogram, EmptyHistogramIsAllZero) {
  Histogram h;
  const HistogramStats stats = h.stats();
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.p50, 0.0);
  EXPECT_EQ(stats.p999, 0.0);
  EXPECT_TRUE(h.nonzero_buckets().empty());
}

TEST(ObsHistogram, ResetClearsEverything) {
  Histogram h;
  h.record(5.0);
  h.record(50.0);
  h.reset();
  EXPECT_EQ(h.stats().count, 0u);
  EXPECT_TRUE(h.nonzero_buckets().empty());
  h.record(7.0);
  EXPECT_EQ(h.stats().count, 1u);
}

// The tsan-critical test: concurrent writers, then reconcile totals.
// Under the debug-tsan CI config this doubles as a data-race check on
// the relaxed bucket increments and the min/max/sum CAS loops.
TEST(ObsHistogram, ConcurrentRecordsReconcileExactly) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Histogram h;
  std::vector<std::thread> threads;
  for (int worker = 0; worker < kThreads; ++worker) {
    threads.emplace_back([&h, worker] {
      ValueStream stream(static_cast<std::uint64_t>(worker) * 977 + 11);
      for (int i = 0; i < kPerThread; ++i) h.record(stream.next());
    });
  }
  for (auto& t : threads) t.join();

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  const HistogramStats stats = h.stats();
  EXPECT_EQ(stats.count, expected);

  // Every recorded sample landed in exactly one bucket: the bucket sums
  // must reconcile with the total count after writers quiesce.
  std::uint64_t bucket_total = 0;
  for (const auto& [bucket, count] : h.nonzero_buckets()) {
    ASSERT_GE(bucket, 0);
    ASSERT_LT(bucket, Histogram::kBucketCount);
    bucket_total += count;
  }
  EXPECT_EQ(bucket_total, expected);
  EXPECT_GT(stats.min, 0.0);
  EXPECT_GE(stats.max, stats.min);
  EXPECT_GE(stats.sum, stats.min * static_cast<double>(expected));
}

TEST(ObsHistogram, RegistryReturnsStableReferences) {
  reset_metrics();
  Histogram& a = histogram("test.histo.registry");
  Histogram& b = histogram("test.histo.registry");
  EXPECT_EQ(&a, &b);
  a.record(4.0);
  const auto snapshot = histograms_snapshot();
  const auto it = std::find_if(
      snapshot.begin(), snapshot.end(),
      [](const auto& s) { return s.name == "test.histo.registry"; });
  ASSERT_NE(it, snapshot.end());
  EXPECT_EQ(it->stats.count, 1u);

  // reset_metrics zeroes histograms alongside counters/distributions.
  reset_metrics();
  EXPECT_EQ(histogram("test.histo.registry").stats().count, 0u);
}

TEST(ObsHistogram, SnapshotSortedByName) {
  reset_metrics();
  histogram("test.histo.b").record(1.0);
  histogram("test.histo.a").record(1.0);
  const auto snapshot = histograms_snapshot();
  ASSERT_GE(snapshot.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      snapshot.begin(), snapshot.end(),
      [](const auto& x, const auto& y) { return x.name < y.name; }));
  reset_metrics();
}

}  // namespace
}  // namespace perspector::obs
