#include "sim/multicore.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace perspector::sim {
namespace {

WorkloadSpec streaming_workload(const std::string& name,
                                std::uint64_t instructions,
                                std::uint64_t ws_bytes) {
  WorkloadSpec w;
  w.name = name;
  w.instructions = instructions;
  PhaseSpec p;
  p.name = "stream";
  p.load_frac = 0.4;
  p.store_frac = 0.1;
  p.pattern = {.kind = AccessPatternKind::Sequential,
               .working_set_bytes = ws_bytes,
               .stride_bytes = 64};
  w.phases = {p};
  return w;
}

TEST(Multicore, ValidatesInput) {
  const auto machine = MachineConfig::xeon_e2186g();
  EXPECT_THROW(simulate_colocated({}, machine), std::invalid_argument);
  MulticoreOptions bad;
  bad.quantum = 0;
  EXPECT_THROW(
      simulate_colocated({streaming_workload("w", 1000, 4096)}, machine, bad),
      std::invalid_argument);
  WorkloadSpec invalid = streaming_workload("w", 1000, 4096);
  invalid.phases.clear();
  EXPECT_THROW(simulate_colocated({invalid}, machine),
               std::invalid_argument);
}

TEST(Multicore, SingleWorkloadMatchesBudget) {
  const auto machine = MachineConfig::xeon_e2186g();
  const auto results = simulate_colocated(
      {streaming_workload("solo", 50'000, 1 << 20)}, machine);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].instructions, 50'000u);
  EXPECT_EQ(results[0].workload, "solo");
}

TEST(Multicore, AllWorkloadsRunToCompletion) {
  const auto machine = MachineConfig::xeon_e2186g();
  const auto results = simulate_colocated(
      {streaming_workload("a", 30'000, 1 << 20),
       streaming_workload("b", 50'000, 1 << 20),
       streaming_workload("c", 20'000, 1 << 20)},
      machine);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].instructions, 30'000u);
  EXPECT_EQ(results[1].instructions, 50'000u);
  EXPECT_EQ(results[2].instructions, 20'000u);
}

TEST(Multicore, SharedLlcContentionRaisesMissRates) {
  const auto machine = MachineConfig::xeon_e2186g();
  // A workload that *reuses* a 2 MiB LLC-resident set (several passes):
  // alone, only the first pass misses the LLC...
  const auto victim = streaming_workload("victim", 400'000, 2ull << 20);
  SimOptions solo_options;
  solo_options.collect_series = false;
  const auto solo = simulate(victim, machine, solo_options);

  // ...but with five LLC-thrashing co-runners (the Table II machine's full
  // six-core occupancy) its lines keep getting evicted between quanta.
  std::vector<WorkloadSpec> mix = {victim};
  for (int b = 0; b < 5; ++b) {
    mix.push_back(streaming_workload("bully" + std::to_string(b), 400'000,
                                     48ull << 20));
  }
  MulticoreOptions options;
  options.collect_series = false;
  const auto colocated = simulate_colocated(mix, machine, options);

  const auto solo_misses = solo.totals[PmuEvent::LlcLoadMisses];
  const auto contended_misses = colocated[0].totals[PmuEvent::LlcLoadMisses];
  EXPECT_GT(contended_misses, 2 * std::max<std::uint64_t>(solo_misses, 1));
  // Contention also costs cycles.
  EXPECT_GT(colocated[0].cycles, 1.05 * solo.cycles);
}

TEST(Multicore, PerCoreCountersAreLocal) {
  const auto machine = MachineConfig::xeon_e2186g();
  MulticoreOptions options;
  options.collect_series = false;
  // One memory-free workload next to a memory hog: the quiet core's LLC
  // counters must stay tiny (only its own background noise).
  WorkloadSpec quiet = streaming_workload("quiet", 100'000, 4096);
  quiet.phases[0].load_frac = 0.01;
  quiet.phases[0].store_frac = 0.0;
  const auto results = simulate_colocated(
      {quiet, streaming_workload("hog", 100'000, 48ull << 20)}, machine,
      options);
  EXPECT_LT(results[0].totals[PmuEvent::LlcLoads],
            results[1].totals[PmuEvent::LlcLoads] / 10);
}

TEST(Multicore, SoloColocatedMatchesSingleCoreSimulatorClosely) {
  // With one lane there is no contention: totals should be very close to
  // the plain simulator (same seeds; only quantum boundaries differ).
  const auto machine = MachineConfig::xeon_e2186g();
  const auto w = streaming_workload("only", 60'000, 1 << 20);
  SimOptions solo_options;
  solo_options.collect_series = false;
  const auto solo = simulate(w, machine, solo_options);
  MulticoreOptions options;
  options.collect_series = false;
  const auto multi = simulate_colocated({w}, machine, options);
  EXPECT_EQ(multi[0].totals, solo.totals);
}

TEST(Multicore, SeriesCollectedPerCore) {
  const auto machine = MachineConfig::xeon_e2186g();
  MulticoreOptions options;
  options.sample_interval = 10'000;
  const auto results = simulate_colocated(
      {streaming_workload("a", 40'000, 1 << 20),
       streaming_workload("b", 40'000, 1 << 20)},
      machine, options);
  for (const auto& r : results) {
    ASSERT_EQ(r.series.size(), kPmuEventCount);
    EXPECT_EQ(r.series_for(PmuEvent::CpuCycles).size(), 4u);
  }
}

TEST(Multicore, DeterministicForSeed) {
  const auto machine = MachineConfig::xeon_e2186g();
  MulticoreOptions options;
  options.collect_series = false;
  const std::vector<WorkloadSpec> pair = {
      streaming_workload("a", 30'000, 1 << 20),
      streaming_workload("b", 30'000, 24ull << 20)};
  const auto x = simulate_colocated(pair, machine, options);
  const auto y = simulate_colocated(pair, machine, options);
  EXPECT_EQ(x[0].totals, y[0].totals);
  EXPECT_EQ(x[1].totals, y[1].totals);
}

}  // namespace
}  // namespace perspector::sim
