// serve::Engine live-suite mutation ops (load_suite / add_workload /
// drop_workload / append_samples).
//
// The determinism contract extends the engine's: every mutate response's
// `report` must be byte-identical to a cold one-shot score of the same
// content, at every thread count, and the cache label must be honest
// content addressing (an add→drop round-trip back to previous content is
// a hit). Runs under the debug-tsan CI job via the test_serve binary.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/counter_matrix.hpp"
#include "core/io.hpp"
#include "core/perspector.hpp"
#include "core/report.hpp"
#include "obs/metrics.hpp"
#include "par/thread_pool.hpp"
#include "serve/engine.hpp"

namespace perspector::serve {
namespace {

constexpr std::uint64_t kInstructions = 20'000;

struct ThreadCountGuard {
  ~ThreadCountGuard() { par::set_thread_count(0); }
};

/// Exactly what a cold `perspector score` of `data` prints.
std::string one_shot_report(const core::CounterMatrix& data) {
  const auto scores = core::Perspector().score_suite(data);
  return core::suite_report(data, scores);
}

/// A resident-suite fixture: nbench as the base CSV payload, the first
/// lmbench workload as the add_workload payload (distinct name, same 14
/// counters).
struct LiveSuiteData {
  std::string base_agg, base_ser;
  std::string add_agg, add_ser;
  core::CounterMatrix base;

  LiveSuiteData() : base(simulate_builtin("nbench", kInstructions)) {
    base_agg = core::write_aggregates_csv_text(base);
    base_ser = core::write_series_csv_text(base);
    const core::CounterMatrix extra =
        simulate_builtin("lmbench", kInstructions).select_workloads({0});
    add_agg = core::write_aggregates_csv_text(extra);
    add_ser = core::write_series_csv_text(extra);
  }
};

MutateRequest load_request(const LiveSuiteData& d, const std::string& id) {
  MutateRequest request;
  request.id = id;
  request.op = MutateOp::LoadSuite;
  request.suite = "live";
  request.csv_text = d.base_agg;
  request.series_text = d.base_ser;
  return request;
}

MutateRequest add_request(const LiveSuiteData& d, const std::string& id) {
  MutateRequest request;
  request.id = id;
  request.op = MutateOp::AddWorkload;
  request.suite = "live";
  request.csv_text = d.add_agg;
  request.series_text = d.add_ser;
  return request;
}

MutateRequest drop_request(const std::string& workload,
                           const std::string& id) {
  MutateRequest request;
  request.id = id;
  request.op = MutateOp::DropWorkload;
  request.suite = "live";
  request.workload = workload;
  return request;
}

TEST(ServeDelta, LoadSuiteScoresAndBecomesScorableByName) {
  ThreadCountGuard guard;
  par::set_thread_count(2);
  const LiveSuiteData d;
  const std::string expected =
      one_shot_report(core::read_with_series_csv_text("live", d.base_agg,
                                                      d.base_ser));
  Engine engine;
  const MutateResponse loaded = engine.mutate(load_request(d, "load"));
  ASSERT_TRUE(loaded.ok) << loaded.message;
  EXPECT_EQ(loaded.suite, "live");
  EXPECT_EQ(loaded.version, 1u);
  EXPECT_FALSE(loaded.cache_hit);
  EXPECT_EQ(loaded.report, expected);

  // The resident name now scores like a suite — warm from the cache.
  ScoreRequest by_name;
  by_name.id = "score";
  by_name.builtin = "live";
  const ScoreResponse scored = engine.score(by_name);
  ASSERT_TRUE(scored.ok) << scored.message;
  EXPECT_TRUE(scored.cache_hit);
  EXPECT_EQ(scored.report, expected);
}

TEST(ServeDelta, DeltaRescoresMatchColdScoresAtEveryThreadCount) {
  ThreadCountGuard guard;
  const LiveSuiteData d;

  // Expected states, built through the same io-layer delta helpers the
  // engine uses, then scored cold (fresh Perspector, fresh workspace).
  const core::CounterMatrix loaded =
      core::read_with_series_csv_text("live", d.base_agg, d.base_ser);
  const core::CounterMatrix added =
      core::append_workloads_csv_text(loaded, d.add_agg, d.add_ser);
  std::vector<std::size_t> keep;
  for (std::size_t w = 0; w < added.num_workloads(); ++w) {
    if (added.workload_names()[w] != "numeric-sort") keep.push_back(w);
  }
  const core::CounterMatrix dropped = added.select_workloads(keep);

  par::set_thread_count(1);
  const std::string expect_loaded = one_shot_report(loaded);
  const std::string expect_added = one_shot_report(added);
  const std::string expect_dropped = one_shot_report(dropped);

  for (std::size_t threads : {1u, 2u, 8u}) {
    par::set_thread_count(threads);
    Engine engine;
    const MutateResponse l = engine.mutate(load_request(d, "l"));
    ASSERT_TRUE(l.ok) << l.message;
    EXPECT_EQ(l.report, expect_loaded) << "threads=" << threads;

    const MutateResponse a = engine.mutate(add_request(d, "a"));
    ASSERT_TRUE(a.ok) << a.message;
    EXPECT_EQ(a.version, 2u);
    EXPECT_EQ(a.report, expect_added) << "threads=" << threads;

    const MutateResponse r = engine.mutate(drop_request("numeric-sort", "d"));
    ASSERT_TRUE(r.ok) << r.message;
    EXPECT_EQ(r.version, 3u);
    EXPECT_EQ(r.report, expect_dropped) << "threads=" << threads;
  }
}

TEST(ServeDelta, AppendSamplesRescoreMatchesColdScore) {
  ThreadCountGuard guard;
  par::set_thread_count(2);
  const LiveSuiteData d;
  const core::CounterMatrix loaded =
      core::read_with_series_csv_text("live", d.base_agg, d.base_ser);

  // Extend one workload's first counter by two samples, continuing its
  // dense index range.
  const std::string& workload = loaded.workload_names()[0];
  const std::string& counter = loaded.counter_names()[0];
  const std::size_t next = loaded.series(0, 0).size();
  std::string series = "workload,counter,sample,value\n";
  for (std::size_t k = 0; k < 2; ++k) {
    series += workload + "," + counter + "," + std::to_string(next + k) +
              ",1234.5\n";
  }
  const core::CounterMatrix appended =
      core::append_samples_csv_text(loaded, series);

  Engine engine;
  ASSERT_TRUE(engine.mutate(load_request(d, "l")).ok);
  MutateRequest append;
  append.id = "s";
  append.op = MutateOp::AppendSamples;
  append.suite = "live";
  append.series_text = series;
  const MutateResponse response = engine.mutate(append);
  ASSERT_TRUE(response.ok) << response.message;
  EXPECT_EQ(response.version, 2u);
  EXPECT_EQ(response.report, one_shot_report(appended));
}

TEST(ServeDelta, AddDropRoundTripIsAnHonestCacheHit) {
  ThreadCountGuard guard;
  par::set_thread_count(1);
  const LiveSuiteData d;
  Engine engine;

  const MutateResponse loaded = engine.mutate(load_request(d, "l"));
  ASSERT_TRUE(loaded.ok);
  EXPECT_FALSE(loaded.cache_hit);

  const MutateResponse added = engine.mutate(add_request(d, "a"));
  ASSERT_TRUE(added.ok);
  EXPECT_FALSE(added.cache_hit);

  // Dropping the added workload restores the loaded content exactly —
  // content addressing must serve the v1 report from cache.
  const std::string new_workload =
      core::read_aggregates_csv_text("x", d.add_agg).workload_names()[0];
  const MutateResponse dropped =
      engine.mutate(drop_request(new_workload, "d"));
  ASSERT_TRUE(dropped.ok) << dropped.message;
  EXPECT_EQ(dropped.version, 3u);
  EXPECT_TRUE(dropped.cache_hit);
  EXPECT_EQ(dropped.report, loaded.report);

  // Re-adding the same workload hits the v2 result the same way.
  const MutateResponse readded = engine.mutate(add_request(d, "a2"));
  ASSERT_TRUE(readded.ok);
  EXPECT_EQ(readded.version, 4u);
  EXPECT_TRUE(readded.cache_hit);
  EXPECT_EQ(readded.report, added.report);
}

TEST(ServeDelta, MutationErrorsAreStructuredBadRequests) {
  ThreadCountGuard guard;
  par::set_thread_count(1);
  const LiveSuiteData d;
  Engine engine;

  // Mutating a suite that was never loaded.
  const MutateResponse unknown = engine.mutate(drop_request("w", "u"));
  EXPECT_EQ(unknown.error, "bad_request");
  EXPECT_NE(unknown.message.find("unknown resident suite"),
            std::string::npos);

  // Shadowing a built-in suite name is rejected.
  MutateRequest reserved = load_request(d, "r");
  reserved.suite = "nbench";
  EXPECT_EQ(engine.mutate(reserved).error, "bad_request");

  ASSERT_TRUE(engine.mutate(load_request(d, "l")).ok);

  // Dropping a workload the suite does not have.
  const MutateResponse missing = engine.mutate(drop_request("nope", "m"));
  EXPECT_EQ(missing.error, "bad_request");
  EXPECT_NE(missing.message.find("no workload"), std::string::npos);

  // A malformed delta payload (ragged CSV) is a bad_request, and the
  // resident suite is left untouched.
  MutateRequest ragged = add_request(d, "g");
  ragged.csv_text = "workload,c0\nonly-two-cells\n";
  EXPECT_EQ(engine.mutate(ragged).error, "bad_request");
  ScoreRequest by_name;
  by_name.builtin = "live";
  const ScoreResponse scored = engine.score(by_name);
  ASSERT_TRUE(scored.ok);
  EXPECT_TRUE(scored.cache_hit);  // still the v1 content

  // A failed mutation must not bump the version.
  const MutateResponse next = engine.mutate(add_request(d, "a"));
  ASSERT_TRUE(next.ok);
  EXPECT_EQ(next.version, 2u);
}

TEST(ServeDelta, ReloadReplacesTheResidentAndRestartsVersioning) {
  ThreadCountGuard guard;
  par::set_thread_count(1);
  const LiveSuiteData d;
  Engine engine;
  ASSERT_TRUE(engine.mutate(load_request(d, "l1")).ok);
  ASSERT_TRUE(engine.mutate(add_request(d, "a")).ok);

  const MutateResponse reloaded = engine.mutate(load_request(d, "l2"));
  ASSERT_TRUE(reloaded.ok);
  EXPECT_EQ(reloaded.version, 1u);
  EXPECT_TRUE(reloaded.cache_hit);  // same content as the first load
}

}  // namespace
}  // namespace perspector::serve
