#include "core/joint_normalize.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace perspector::core {
namespace {

TEST(JointNormalize, ValidatesInput) {
  EXPECT_THROW(joint_ranges({}), std::invalid_argument);
  la::Matrix a(2, 3);
  la::Matrix b(2, 2);
  EXPECT_THROW(joint_ranges({&a, &b}), std::invalid_argument);
  la::Matrix empty;
  EXPECT_THROW(joint_ranges({&a, &empty}), std::invalid_argument);
  EXPECT_THROW(joint_ranges({&a, nullptr}), std::invalid_argument);
}

TEST(JointNormalize, RangesSpanAllSuites) {
  la::Matrix a{{0.0, 100.0}, {10.0, 200.0}};
  la::Matrix b{{-5.0, 150.0}, {20.0, 50.0}};
  const JointRanges r = joint_ranges({&a, &b});
  EXPECT_DOUBLE_EQ(r.min[0], -5.0);
  EXPECT_DOUBLE_EQ(r.max[0], 20.0);
  EXPECT_DOUBLE_EQ(r.min[1], 50.0);
  EXPECT_DOUBLE_EQ(r.max[1], 200.0);
}

TEST(JointNormalize, PreservesRelativeMagnitudes) {
  // The paper's motivating case: counter ranges [0,10K] vs [0,100K] must
  // NOT both map to [0,1] — suite A tops out at 0.1.
  la::Matrix a{{0.0}, {10'000.0}};
  la::Matrix b{{0.0}, {100'000.0}};
  const auto normalized = joint_minmax_normalize({&a, &b});
  EXPECT_DOUBLE_EQ(normalized[0](1, 0), 0.1);
  EXPECT_DOUBLE_EQ(normalized[1](1, 0), 1.0);
}

TEST(JointNormalize, OutputAlwaysInUnitInterval) {
  la::Matrix a{{3.0, -7.0}, {9.0, 2.0}};
  la::Matrix b{{5.0, 0.0}, {1.0, 11.0}};
  for (const auto& m : joint_minmax_normalize({&a, &b})) {
    for (double v : m.data()) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(JointNormalize, ConstantCounterMapsToHalf) {
  la::Matrix a{{5.0}, {5.0}};
  la::Matrix b{{5.0}};
  const auto normalized = joint_minmax_normalize({&a, &b});
  EXPECT_DOUBLE_EQ(normalized[0](0, 0), 0.5);
  EXPECT_DOUBLE_EQ(normalized[1](0, 0), 0.5);
}

TEST(JointNormalize, SingleSuiteEqualsPlainMinMax) {
  la::Matrix a{{0.0, 4.0}, {2.0, 8.0}, {1.0, 6.0}};
  const auto normalized = joint_minmax_normalize({&a});
  EXPECT_DOUBLE_EQ(normalized[0](0, 0), 0.0);
  EXPECT_DOUBLE_EQ(normalized[0](1, 0), 1.0);
  EXPECT_DOUBLE_EQ(normalized[0](2, 0), 0.5);
}

TEST(JointNormalize, ApplyValidatesRangeSize) {
  la::Matrix a(2, 2);
  JointRanges r;
  r.min = {0.0};
  r.max = {1.0};
  EXPECT_THROW(apply_joint_normalization(a, r), std::invalid_argument);
}

TEST(JointNormalize, Equation10Exact) {
  // X_norm = (X - R) / (Q - R), element-wise per counter.
  la::Matrix a{{2.0}, {6.0}};
  la::Matrix b{{10.0}};
  const auto normalized = joint_minmax_normalize({&a, &b});
  EXPECT_DOUBLE_EQ(normalized[0](0, 0), 0.0);    // (2-2)/(10-2)
  EXPECT_DOUBLE_EQ(normalized[0](1, 0), 0.5);    // (6-2)/8
  EXPECT_DOUBLE_EQ(normalized[1](0, 0), 1.0);    // (10-2)/8
}

}  // namespace
}  // namespace perspector::core
