#include "pca/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace perspector::pca {
namespace {

TEST(Pca, ValidatesInput) {
  EXPECT_THROW(fit_pca(la::Matrix{}), std::invalid_argument);
  EXPECT_THROW(fit_pca(la::Matrix(3, 2), 0.0), std::invalid_argument);
  EXPECT_THROW(fit_pca(la::Matrix(3, 2), 1.5), std::invalid_argument);
  EXPECT_THROW(fit_pca_fixed(la::Matrix(3, 2), 0), std::invalid_argument);
}

TEST(Pca, AxisAlignedVariance) {
  // Variance only along x: one component suffices at any target.
  la::Matrix data{{0.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}, {3.0, 1.0}};
  const PcaResult r = fit_pca(data, 0.98);
  EXPECT_EQ(r.retained, 1u);
  // The principal direction is (±1, 0).
  EXPECT_NEAR(std::abs(r.components(0, 0)), 1.0, 1e-10);
  EXPECT_NEAR(r.components(1, 0), 0.0, 1e-10);
  // Transformed variance equals the x variance (5/3 sample variance).
  EXPECT_NEAR(r.component_variance(0), 5.0 / 3.0, 1e-9);
}

TEST(Pca, DiagonalDirection) {
  // Points along y = x: PC1 is (1,1)/sqrt(2) up to sign.
  la::Matrix data{{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}};
  const PcaResult r = fit_pca(data);
  EXPECT_EQ(r.retained, 1u);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(r.components(0, 0)), inv_sqrt2, 1e-10);
  EXPECT_NEAR(std::abs(r.components(1, 0)), inv_sqrt2, 1e-10);
}

TEST(Pca, ExplainedRatiosSumToOne) {
  stats::Rng rng(51);
  la::Matrix data(20, 5);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 5; ++c) data(r, c) = rng.uniform();
  }
  const PcaResult result = fit_pca(data, 0.5);
  const double total = std::accumulate(result.explained_ratio.begin(),
                                       result.explained_ratio.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Pca, VarianceTargetControlsComponentCount) {
  stats::Rng rng(52);
  // Three independent dimensions with strongly decaying scales.
  la::Matrix data(50, 3);
  for (std::size_t r = 0; r < 50; ++r) {
    data(r, 0) = rng.uniform(0.0, 100.0);
    data(r, 1) = rng.uniform(0.0, 10.0);
    data(r, 2) = rng.uniform(0.0, 0.1);
  }
  const PcaResult tight = fit_pca(data, 0.999999);
  const PcaResult loose = fit_pca(data, 0.5);
  EXPECT_LE(loose.retained, tight.retained);
  EXPECT_EQ(loose.retained, 1u);
}

TEST(Pca, ComponentVarianceMatchesEigenvalue) {
  stats::Rng rng(53);
  la::Matrix data(40, 4);
  for (std::size_t r = 0; r < 40; ++r) {
    for (std::size_t c = 0; c < 4; ++c) data(r, c) = rng.normal();
  }
  const PcaResult result = fit_pca_fixed(data, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(result.component_variance(i), result.eigenvalues[i], 1e-9);
  }
}

TEST(Pca, TransformedColumnsUncorrelated) {
  stats::Rng rng(54);
  la::Matrix data(60, 3);
  for (std::size_t r = 0; r < 60; ++r) {
    const double base = rng.normal();
    data(r, 0) = base + rng.normal(0.0, 0.1);
    data(r, 1) = 2.0 * base + rng.normal(0.0, 0.1);
    data(r, 2) = rng.normal();
  }
  const PcaResult result = fit_pca_fixed(data, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      const double corr = stats::pearson_correlation(
          result.transformed.col_copy(i), result.transformed.col_copy(j));
      EXPECT_NEAR(corr, 0.0, 1e-6);
    }
  }
}

TEST(Pca, ProjectNewData) {
  la::Matrix data{{0.0, 0.0}, {2.0, 0.0}, {4.0, 0.0}};
  const PcaResult result = fit_pca(data);
  la::Matrix fresh{{6.0, 0.0}};
  const la::Matrix projected = result.project(fresh);
  // Mean of the fit data is (2, 0); 6 - 2 = 4 along PC1 (up to sign).
  EXPECT_NEAR(std::abs(projected(0, 0)), 4.0, 1e-10);
  la::Matrix wrong(1, 3);
  EXPECT_THROW(result.project(wrong), std::invalid_argument);
}

TEST(Pca, ConstantDataRetainsOneComponent) {
  la::Matrix data(5, 3, 2.0);
  const PcaResult result = fit_pca(data);
  EXPECT_EQ(result.retained, 1u);
  EXPECT_NEAR(result.component_variance(0), 0.0, 1e-12);
}

TEST(Pca, FixedComponentsClampedToFeatureCount) {
  la::Matrix data{{1.0, 2.0}, {3.0, 4.0}, {5.0, 7.0}};
  const PcaResult result = fit_pca_fixed(data, 10);
  EXPECT_EQ(result.retained, 2u);
}

// Property: total variance is conserved — the sum of all eigenvalues equals
// the sum of the per-feature variances.
class PcaVarianceConservation
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PcaVarianceConservation, SumMatches) {
  stats::Rng rng(55 + GetParam());
  const std::size_t m = GetParam();
  la::Matrix data(30, m);
  for (std::size_t r = 0; r < 30; ++r) {
    for (std::size_t c = 0; c < m; ++c) data(r, c) = rng.uniform(0.0, 5.0);
  }
  const PcaResult result = fit_pca_fixed(data, m);
  double eig_sum = std::accumulate(result.eigenvalues.begin(),
                                   result.eigenvalues.end(), 0.0);
  double var_sum = 0.0;
  for (std::size_t c = 0; c < m; ++c) {
    var_sum += stats::variance_sample(data.col_copy(c));
  }
  EXPECT_NEAR(eig_sum, var_sum, 1e-8 * var_sum);
}

INSTANTIATE_TEST_SUITE_P(Dims, PcaVarianceConservation,
                         ::testing::Values(1, 2, 4, 8, 14));

}  // namespace
}  // namespace perspector::pca
