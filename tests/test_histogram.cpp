#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace perspector::stats {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);   // bin 0
  h.add(0.3);   // bin 1
  h.add(0.55);  // bin 2
  h.add(0.9);   // bin 3
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.clamped(), 0u);
}

TEST(Histogram, UpperEdgeGoesToLastBin) {
  Histogram h(0.0, 1.0, 4);
  h.add(1.0);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.clamped(), 0u);
}

TEST(Histogram, OutOfRangeClamped) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.clamped(), 2u);
}

TEST(Histogram, Frequency) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.frequency(0), 0.0);  // empty histogram
  h.add(0.1);
  h.add(0.2);
  h.add(0.8);
  EXPECT_NEAR(h.frequency(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.frequency(1), 1.0 / 3.0, 1e-12);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
  EXPECT_THROW(h.bin_lo(5), std::out_of_range);
  EXPECT_THROW(h.count(5), std::out_of_range);
}

TEST(Histogram, OccupiedBins) {
  Histogram h(0.0, 1.0, 10);
  EXPECT_EQ(h.occupied_bins(), 0u);
  const std::vector<double> xs{0.05, 0.06, 0.95};
  h.add_all(xs);
  EXPECT_EQ(h.occupied_bins(), 2u);
}

TEST(Histogram, AsciiRendersAllBins) {
  Histogram h(0.0, 1.0, 3);
  h.add(0.2);
  const std::string art = h.to_ascii(10);
  // Three lines, one per bin.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace perspector::stats
