#include "sim/core_model.hpp"

#include <gtest/gtest.h>

namespace perspector::sim {
namespace {

PhaseSpec basic_phase() {
  PhaseSpec p;
  p.name = "p";
  p.load_frac = 0.3;
  p.store_frac = 0.1;
  p.branch_frac = 0.15;
  p.pattern = {.kind = AccessPatternKind::Sequential,
               .working_set_bytes = 64 * 1024,
               .stride_bytes = 8};
  return p;
}

TEST(CoreModel, CounterConsistencyInvariants) {
  CoreModel core(MachineConfig::xeon_e2186g(), 1);
  core.run_phase(basic_phase(), 100'000, 0, nullptr);
  const PmuCounterSet c = core.counters();

  EXPECT_EQ(core.instructions_retired(), 100'000u);
  // Cycles at least base CPI * instructions.
  EXPECT_GE(c[PmuEvent::CpuCycles], 30'000u);
  // Misses never exceed accesses.
  EXPECT_LE(c[PmuEvent::BranchMisses], c[PmuEvent::BranchInstructions]);
  EXPECT_LE(c[PmuEvent::DtlbLoadMisses], c[PmuEvent::DtlbLoads]);
  EXPECT_LE(c[PmuEvent::DtlbStoreMisses], c[PmuEvent::DtlbStores]);
  EXPECT_LE(c[PmuEvent::LlcLoadMisses], c[PmuEvent::LlcLoads]);
  EXPECT_LE(c[PmuEvent::LlcStoreMisses], c[PmuEvent::LlcStores]);
  // LLC traffic cannot exceed TLB traffic (every data access translates;
  // only L1/L2 misses reach the LLC).
  EXPECT_LE(c[PmuEvent::LlcLoads], c[PmuEvent::DtlbLoads]);
  EXPECT_LE(c[PmuEvent::LlcStores], c[PmuEvent::DtlbStores]);
}

TEST(CoreModel, MixFractionsApproximatelyRespected) {
  MachineConfig cfg = MachineConfig::xeon_e2186g();
  cfg.background_access_rate = 0.0;  // isolate the phase mix
  CoreModel core(cfg, 2);
  core.run_phase(basic_phase(), 200'000, 0, nullptr);
  const PmuCounterSet c = core.counters();
  EXPECT_NEAR(static_cast<double>(c[PmuEvent::DtlbLoads]) / 200'000.0, 0.3,
              0.01);
  EXPECT_NEAR(static_cast<double>(c[PmuEvent::DtlbStores]) / 200'000.0, 0.1,
              0.01);
  EXPECT_NEAR(
      static_cast<double>(c[PmuEvent::BranchInstructions]) / 200'000.0, 0.15,
      0.01);
}

TEST(CoreModel, BackgroundFloorKeepsCountersNonZero) {
  // A phase with NO loads/stores/branches still shows memory activity from
  // the OS background stream.
  PhaseSpec alu;
  alu.name = "alu-only";
  alu.load_frac = 0.0;
  alu.store_frac = 0.0;
  alu.branch_frac = 0.0;
  alu.pattern = basic_phase().pattern;
  CoreModel core(MachineConfig::xeon_e2186g(), 3);
  core.run_phase(alu, 200'000, 0, nullptr);
  const PmuCounterSet c = core.counters();
  EXPECT_GT(c[PmuEvent::DtlbLoads] + c[PmuEvent::DtlbStores], 0u);
  EXPECT_GT(c[PmuEvent::PageFaults], 0u);
}

TEST(CoreModel, LargerWorkingSetMoreLlcMisses) {
  const auto run = [](std::uint64_t ws) {
    MachineConfig cfg = MachineConfig::xeon_e2186g();
    cfg.background_access_rate = 0.0;
    CoreModel core(cfg, 4);
    PhaseSpec p = basic_phase();
    p.pattern.kind = AccessPatternKind::RandomUniform;
    p.pattern.working_set_bytes = ws;
    core.run_phase(p, 200'000, 0, nullptr);
    return core.counters()[PmuEvent::LlcLoadMisses];
  };
  EXPECT_GT(run(64ull << 20), run(1ull << 20) * 2);
}

TEST(CoreModel, RandomBranchesMispredictMore) {
  const auto run = [](double randomness) {
    MachineConfig cfg = MachineConfig::xeon_e2186g();
    CoreModel core(cfg, 5);
    PhaseSpec p = basic_phase();
    p.branch_randomness = randomness;
    core.run_phase(p, 200'000, 0, nullptr);
    const auto c = core.counters();
    return static_cast<double>(c[PmuEvent::BranchMisses]) /
           static_cast<double>(c[PmuEvent::BranchInstructions]);
  };
  EXPECT_GT(run(0.9), run(0.01) + 0.1);
}

TEST(CoreModel, PageFaultsScaleWithFootprint) {
  const auto run = [](std::uint64_t ws) {
    MachineConfig cfg = MachineConfig::xeon_e2186g();
    cfg.background_access_rate = 0.0;
    CoreModel core(cfg, 6);
    PhaseSpec p = basic_phase();
    p.pattern.kind = AccessPatternKind::Strided;
    p.pattern.stride_bytes = 4096;
    p.pattern.working_set_bytes = ws;
    core.run_phase(p, 100'000, 0, nullptr);
    return core.counters()[PmuEvent::PageFaults];
  };
  EXPECT_GT(run(512ull << 20), run(4ull << 20));
}

TEST(CoreModel, MemoryStallsGrowWithMissRate) {
  const auto run = [](AccessPatternKind kind, std::uint64_t ws) {
    MachineConfig cfg = MachineConfig::xeon_e2186g();
    cfg.background_access_rate = 0.0;
    CoreModel core(cfg, 7);
    PhaseSpec p = basic_phase();
    p.pattern.kind = kind;
    p.pattern.working_set_bytes = ws;
    core.run_phase(p, 100'000, 0, nullptr);
    return core.counters()[PmuEvent::StallsMemAny];
  };
  // A 64 MiB pointer chase stalls far more than an L1-resident stream.
  EXPECT_GT(run(AccessPatternKind::PointerChase, 64ull << 20),
            10 * run(AccessPatternKind::Sequential, 16 * 1024));
}

TEST(CoreModel, IpcDegradesUnderMemoryPressure) {
  MachineConfig cfg = MachineConfig::xeon_e2186g();
  cfg.background_access_rate = 0.0;

  CoreModel fast(cfg, 8);
  PhaseSpec light = basic_phase();
  light.pattern.working_set_bytes = 16 * 1024;
  fast.run_phase(light, 100'000, 0, nullptr);

  CoreModel slow(cfg, 8);
  PhaseSpec heavy = basic_phase();
  heavy.pattern.kind = AccessPatternKind::PointerChase;
  heavy.pattern.working_set_bytes = 64ull << 20;
  slow.run_phase(heavy, 100'000, 0, nullptr);

  EXPECT_GT(fast.ipc(), 2.0 * slow.ipc());
}

TEST(CoreModel, PhasesAccumulateAcrossCalls) {
  CoreModel core(MachineConfig::xeon_e2186g(), 9);
  core.run_phase(basic_phase(), 50'000, 0, nullptr);
  const auto mid = core.counters();
  core.run_phase(basic_phase(), 50'000, 1, nullptr);
  const auto end = core.counters();
  EXPECT_EQ(core.instructions_retired(), 100'000u);
  // Counters are monotone across phases.
  EXPECT_NO_THROW(end.delta_since(mid));
}

TEST(CoreModel, SamplerReceivesSamples) {
  CoreModel core(MachineConfig::xeon_e2186g(), 10);
  PmuSampler sampler(10'000);
  core.run_phase(basic_phase(), 100'000, 0, &sampler);
  EXPECT_EQ(sampler.sample_count(), 10u);
}

TEST(CoreModel, DeterministicForSeed) {
  const auto run = [] {
    CoreModel core(MachineConfig::xeon_e2186g(), 42);
    core.run_phase(basic_phase(), 50'000, 0, nullptr);
    return core.counters();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace perspector::sim
