// The async-job ops through the serving tier: protocol parse/serialize
// round trips, the in-process Engine backend, the Session's cooperative
// job stepping, and the Router's job-id-affinity routing with
// kill-and-resume (the served twin of test_jobs.cpp's scheduler-level
// resume tests).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "jobs/job.hpp"
#include "jobs/search.hpp"
#include "serve/backend.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/router.hpp"

namespace fs = std::filesystem;
using namespace perspector;
using jobs::JobState;
using serve::Engine;
using serve::EngineOptions;
using serve::JobOp;
using serve::JobRequest;
using serve::JobResponse;
using serve::Router;
using serve::RouterOptions;

namespace {

std::string fresh_dir(const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "/perspector_serve_jobs_" + name;
  fs::remove_all(path);
  fs::create_directories(path);
  return path;
}

jobs::JobSpec small_spec(std::uint64_t candidates = 8,
                         std::uint64_t seed = 1234) {
  jobs::JobSpec spec;
  spec.builtin = "nbench";
  spec.instructions = 2000;
  spec.target_size = 4;
  spec.candidates = candidates;
  spec.seed = seed;
  return spec;
}

JobRequest submit_request(const jobs::JobSpec& spec,
                          const std::string& id = "s") {
  JobRequest request;
  request.id = id;
  request.op = JobOp::Submit;
  request.spec = spec;
  return request;
}

/// Drives the backend's cooperative scheduler until the job is terminal
/// (bounded; fails the test instead of spinning forever).
jobs::JobStatus drive_to_terminal(serve::ScoreBackend& backend,
                                  const std::string& job_id) {
  JobRequest status_request;
  status_request.id = "st";
  status_request.op = JobOp::Status;
  status_request.job = job_id;
  for (int i = 0; i < 10000; ++i) {
    if (backend.jobs_runnable()) backend.jobs_step();
    const JobResponse response = backend.job(status_request);
    if (response.ok && jobs::is_terminal(response.status.state)) {
      return response.status;
    }
    if (!backend.jobs_runnable()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ADD_FAILURE() << "job " << job_id << " never reached a terminal state";
  return {};
}

}  // namespace

// ---- protocol -------------------------------------------------------------

TEST(JobProtocol, ParsesGenerateSubmit) {
  const auto parsed = serve::parse_request_line(
      R"({"id":"1","op":"generate_submit","suite":"nbench",)"
      R"("instructions":2000,"size":4,"candidates":8,"seed":7,)"
      R"("client":"alice"})");
  ASSERT_TRUE(parsed.ok) << parsed.message;
  EXPECT_EQ(parsed.op, serve::Op::Job);
  EXPECT_EQ(parsed.job.op, JobOp::Submit);
  EXPECT_EQ(parsed.job.spec.builtin, "nbench");
  EXPECT_EQ(parsed.job.spec.instructions, 2000u);
  EXPECT_EQ(parsed.job.spec.target_size, 4u);
  EXPECT_EQ(parsed.job.spec.candidates, 8u);
  EXPECT_EQ(parsed.job.spec.seed, 7u);
  EXPECT_EQ(parsed.job.spec.client, "alice");
}

TEST(JobProtocol, SubmitRequiresExactlyOneSource) {
  EXPECT_FALSE(
      serve::parse_request_line(R"({"op":"generate_submit"})").ok);
  EXPECT_FALSE(serve::parse_request_line(
                   R"({"op":"generate_submit","suite":"nbench",)"
                   R"("csv":"workload,c\na,1\n"})")
                   .ok);
}

TEST(JobProtocol, TargetedOpsValidateTheJobId) {
  // Ids become checkpoint file names, so anything but 16 hex chars is
  // rejected at parse time (path-traversal guard).
  EXPECT_TRUE(serve::parse_request_line(
                  R"({"op":"job_status","job":"0123456789abcdef"})")
                  .ok);
  for (const char* bad :
       {R"({"op":"job_status"})", R"({"op":"job_status","job":""})",
        R"({"op":"job_status","job":"0123456789abcde"})",
        R"({"op":"job_status","job":"0123456789ABCDEF"})",
        R"({"op":"job_status","job":"../../../etc/pwned"})"}) {
    const auto parsed = serve::parse_request_line(bad);
    EXPECT_FALSE(parsed.ok) << bad;
    EXPECT_EQ(parsed.error, "bad_request");
  }
}

TEST(JobProtocol, WatchParsesTheCursor) {
  const auto parsed = serve::parse_request_line(
      R"({"op":"job_watch","job":"0123456789abcdef","from":5})");
  ASSERT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.job.op, JobOp::Watch);
  EXPECT_EQ(parsed.job.from, 5u);
}

TEST(JobProtocol, ForwardedSubmitRoundTripsEveryIdRelevantField) {
  // The router derives the job id from its copy of the spec; the worker
  // re-derives it from the wire line. Any field that does not survive
  // the round trip verbatim would split the id space.
  jobs::JobSpec spec;
  spec.csv_name = "uploaded";
  spec.csv_text = "workload,c1\na,1\nb,2\n";
  spec.series_text = "workload,counter,sample,value\na,c1,0,1\n";
  spec.events = "llc";
  spec.target_size = 5;
  spec.candidates = 3;
  spec.seed = 99;
  spec.client = "bob";
  const JobRequest request = submit_request(spec, "fwd");
  const auto parsed =
      serve::parse_request_line(serve::serialize_job_request(request));
  ASSERT_TRUE(parsed.ok) << parsed.message;
  EXPECT_EQ(parsed.job.spec, spec);
  EXPECT_EQ(jobs::derive_job_id(parsed.job.spec), jobs::derive_job_id(spec));

  // Same for the builtin flavor with non-default instructions.
  jobs::JobSpec builtin = small_spec(7, 3);
  builtin.instructions = 1234;
  const auto parsed_builtin = serve::parse_request_line(
      serve::serialize_job_request(submit_request(builtin)));
  ASSERT_TRUE(parsed_builtin.ok);
  EXPECT_EQ(parsed_builtin.job.spec, builtin);
}

TEST(JobProtocol, ResponsesRoundTripThroughTheRouterCodec) {
  JobResponse response;
  response.id = "w";
  response.op = JobOp::Watch;
  response.ok = true;
  response.status.id = "0123456789abcdef";
  response.status.state = JobState::Running;
  response.status.client = "alice";
  response.status.evaluated = 5;
  response.status.total = 8;
  response.status.resumed = true;
  response.status.best.valid = true;
  response.status.best.candidate = 3;
  response.status.best.deviation_pct = 12.5;
  response.status.best.per_score_deviation_pct = {1.0, 2.0, 3.0, 4.0};
  response.status.best.indices = {1, 4, 6, 9};
  response.status.best.names = {"a", "b", "c", "d"};
  jobs::JobProgress progress;
  progress.seq = 2;
  progress.evaluated = 4;
  progress.total = 8;
  progress.best = response.status.best;
  response.progress.push_back(progress);
  response.next = 3;

  JobResponse decoded;
  ASSERT_TRUE(serve::parse_job_response(
      serve::serialize_job_response(response), decoded));
  EXPECT_EQ(decoded.op, JobOp::Watch);
  EXPECT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.status.state, JobState::Running);
  EXPECT_EQ(decoded.status.best, response.status.best);
  ASSERT_EQ(decoded.progress.size(), 1u);
  EXPECT_EQ(decoded.progress[0].seq, 2u);
  EXPECT_EQ(decoded.progress[0].best, progress.best);
  EXPECT_EQ(decoded.next, 3u);

  // Error responses keep the common error shape.
  JobResponse error;
  error.id = "e";
  error.ok = false;
  error.error = "overloaded";
  error.message = "queue full";
  JobResponse decoded_error;
  ASSERT_TRUE(serve::parse_job_response(serve::serialize_job_response(error),
                                        decoded_error));
  EXPECT_FALSE(decoded_error.ok);
  EXPECT_EQ(decoded_error.error, "overloaded");
  EXPECT_EQ(decoded_error.message, "queue full");
}

// ---- engine backend -------------------------------------------------------

TEST(EngineJobs, SubmitStatusWatchCompleteInProcess) {
  Engine engine(EngineOptions{});
  const jobs::JobSpec spec = small_spec(8, 5);
  const JobResponse submitted = engine.job(submit_request(spec));
  ASSERT_TRUE(submitted.ok) << submitted.message;
  EXPECT_FALSE(submitted.duplicate);
  EXPECT_EQ(submitted.status.id, jobs::derive_job_id(spec));
  EXPECT_EQ(submitted.status.total, spec.candidates);

  const auto final_status = drive_to_terminal(engine, submitted.status.id);
  EXPECT_EQ(final_status.state, JobState::Done);
  EXPECT_EQ(final_status.best, jobs::run_search(spec));

  // Resubmitting the identical spec is a duplicate of the finished job.
  const JobResponse again = engine.job(submit_request(spec));
  ASSERT_TRUE(again.ok);
  EXPECT_TRUE(again.duplicate);
  EXPECT_EQ(again.status.id, submitted.status.id);

  // The finished job shows up in job_list.
  JobRequest list;
  list.id = "l";
  list.op = JobOp::List;
  const JobResponse listed = engine.job(list);
  ASSERT_TRUE(listed.ok);
  ASSERT_EQ(listed.jobs.size(), 1u);
  EXPECT_EQ(listed.jobs[0].id, submitted.status.id);
}

TEST(EngineJobs, UnknownJobIdIsBadRequest) {
  Engine engine(EngineOptions{});
  JobRequest request;
  request.id = "st";
  request.op = JobOp::Status;
  request.job = "0123456789abcdef";
  const JobResponse response = engine.job(request);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "bad_request");
}

// ---- router ---------------------------------------------------------------

TEST(RouterJobs, SubmitRoutesByIdAndCompletes) {
  const std::string jobs_dir = fresh_dir("route");
  RouterOptions options;
  options.workers = 2;
  options.engine.cache_bytes = 16ull << 20;
  options.engine.jobs.checkpoint_dir = jobs_dir;
  options.engine.jobs.slice_candidates = 2;
  options.engine.jobs.checkpoint_every = 2;
  Router router(options);

  const jobs::JobSpec spec = small_spec(8, 11);
  const JobResponse submitted = router.job(submit_request(spec));
  ASSERT_TRUE(submitted.ok) << submitted.message;
  EXPECT_GE(submitted.worker, 0);
  EXPECT_EQ(submitted.status.id, jobs::derive_job_id(spec));

  const auto final_status = drive_to_terminal(router, submitted.status.id);
  EXPECT_EQ(final_status.state, JobState::Done);
  EXPECT_EQ(final_status.best, jobs::run_search(spec));

  // job_list fans out and merges; the job appears exactly once.
  JobRequest list;
  list.id = "l";
  list.op = JobOp::List;
  const JobResponse listed = router.job(list);
  ASSERT_TRUE(listed.ok);
  ASSERT_EQ(listed.jobs.size(), 1u);
  EXPECT_EQ(listed.jobs[0].id, submitted.status.id);
}

TEST(RouterJobs, KilledWorkerResumesJobByteIdentically) {
  // The acceptance invariant at the tier level: SIGKILL the owning
  // worker mid-job; the router must retry the (idempotent) job ops
  // against the respawned worker, which resumes from the shared
  // checkpoint directory and lands on the uninterrupted run's subset.
  const std::string jobs_dir = fresh_dir("kill_resume");
  RouterOptions options;
  options.workers = 2;
  options.engine.cache_bytes = 16ull << 20;
  options.engine.jobs.checkpoint_dir = jobs_dir;
  options.engine.jobs.slice_candidates = 2;
  options.engine.jobs.checkpoint_every = 2;
  Router router(options);

  const jobs::JobSpec spec = small_spec(16, 23);
  const jobs::BestCandidate reference = jobs::run_search(spec);
  const JobResponse submitted = router.job(submit_request(spec));
  ASSERT_TRUE(submitted.ok) << submitted.message;
  const std::string job_id = submitted.status.id;
  ASSERT_GE(submitted.worker, 0);
  const auto owner = static_cast<std::size_t>(submitted.worker);

  ASSERT_TRUE(router.kill_worker(owner));

  const auto final_status = drive_to_terminal(router, job_id);
  EXPECT_EQ(final_status.state, JobState::Done);
  EXPECT_EQ(final_status.evaluated, spec.candidates);
  EXPECT_EQ(final_status.best, reference);
  EXPECT_GE(router.total_restarts(), 1u);
  EXPECT_TRUE(router.worker_alive(owner));
}

TEST(RouterJobs, CancelAndWatchRouteToTheOwner) {
  const std::string jobs_dir = fresh_dir("cancel");
  RouterOptions options;
  options.workers = 2;
  options.engine.cache_bytes = 16ull << 20;
  options.engine.jobs.checkpoint_dir = jobs_dir;
  Router router(options);

  const jobs::JobSpec spec = small_spec(64, 41);
  const JobResponse submitted = router.job(submit_request(spec));
  ASSERT_TRUE(submitted.ok);

  JobRequest cancel;
  cancel.id = "c";
  cancel.op = JobOp::Cancel;
  cancel.job = submitted.status.id;
  const JobResponse cancelled = router.job(cancel);
  ASSERT_TRUE(cancelled.ok);
  EXPECT_EQ(cancelled.worker, submitted.worker);

  const auto final_status = drive_to_terminal(router, submitted.status.id);
  EXPECT_EQ(final_status.state, JobState::Cancelled);

  JobRequest watch;
  watch.id = "w";
  watch.op = JobOp::Watch;
  watch.job = submitted.status.id;
  watch.from = 1;
  const JobResponse watched = router.job(watch);
  ASSERT_TRUE(watched.ok);
  EXPECT_EQ(watched.status.state, JobState::Cancelled);
}
