#include "sim/address_space.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace perspector::sim {
namespace {

TEST(AddressSpace, ValidatesPageSize) {
  EXPECT_THROW(AddressSpace(0), std::invalid_argument);
  EXPECT_THROW(AddressSpace(4095), std::invalid_argument);
  EXPECT_NO_THROW(AddressSpace(4096));
}

TEST(AddressSpace, FirstTouchFaults) {
  AddressSpace as(4096);
  EXPECT_TRUE(as.touch(0x1000));
  EXPECT_FALSE(as.touch(0x1000));
  EXPECT_FALSE(as.touch(0x1FFF));  // same page
  EXPECT_TRUE(as.touch(0x2000));   // next page
  EXPECT_EQ(as.stats().faults, 2u);
  EXPECT_EQ(as.stats().resident_pages, 2u);
}

TEST(AddressSpace, ResidentQuery) {
  AddressSpace as(4096);
  EXPECT_FALSE(as.resident(0x5000));
  as.touch(0x5000);
  EXPECT_TRUE(as.resident(0x5000));
  EXPECT_TRUE(as.resident(0x5FFF));
  EXPECT_FALSE(as.resident(0x6000));
}

TEST(AddressSpace, ResetForgetsEverything) {
  AddressSpace as(4096);
  as.touch(0x1000);
  as.reset();
  EXPECT_FALSE(as.resident(0x1000));
  EXPECT_EQ(as.stats().faults, 0u);
  EXPECT_TRUE(as.touch(0x1000));
}

TEST(AddressSpace, FaultCountMatchesDistinctPages) {
  AddressSpace as(4096);
  for (std::uint64_t a = 0; a < 64 * 4096; a += 512) {
    as.touch(a);
  }
  EXPECT_EQ(as.stats().faults, 64u);
}

TEST(AddressSpace, LargePagesCoarserFaulting) {
  AddressSpace small(4096);
  AddressSpace huge(2 * 1024 * 1024);
  for (std::uint64_t a = 0; a < 4 * 1024 * 1024; a += 4096) {
    small.touch(a);
    huge.touch(a);
  }
  EXPECT_EQ(small.stats().faults, 1024u);
  EXPECT_EQ(huge.stats().faults, 2u);
}

}  // namespace
}  // namespace perspector::sim
