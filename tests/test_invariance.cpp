// Metric invariance properties — things the math guarantees regardless of
// data, checked on randomized suites:
//   * permuting counter columns never changes any score;
//   * permuting workload rows never changes coverage, spread, or trend
//     (cluster uses seeded k-means++, which draws candidates by row index,
//     so only its invariance-to-columns is guaranteed);
//   * rescaling one counter by a positive constant never changes any score
//     (per-column min-max and mean-relative normalization are scale-free).
#include <gtest/gtest.h>

#include <numeric>

#include "core/counter_matrix.hpp"
#include "core/perspector.hpp"
#include "stats/rng.hpp"

namespace perspector::core {
namespace {

CounterMatrix random_suite(std::uint64_t seed, std::size_t n = 9,
                           std::size_t m = 6) {
  stats::Rng rng(seed);
  std::vector<std::string> workloads, counters;
  la::Matrix values(n, m);
  std::vector<std::vector<std::vector<double>>> series;
  for (std::size_t c = 0; c < m; ++c) {
    counters.push_back("c" + std::to_string(c));
  }
  for (std::size_t w = 0; w < n; ++w) {
    workloads.push_back("w" + std::to_string(w));
    std::vector<std::vector<double>> per_counter;
    for (std::size_t c = 0; c < m; ++c) {
      values(w, c) = rng.uniform(0.0, 1e6);
      std::vector<double> s(24);
      for (double& v : s) v = rng.uniform(0.0, 100.0);
      per_counter.push_back(s);
    }
    series.push_back(per_counter);
  }
  return CounterMatrix("inv", workloads, counters, values, series);
}

class Invariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Invariance, CounterPermutationChangesNothing) {
  const auto suite = random_suite(GetParam());
  std::vector<std::size_t> perm(suite.num_counters());
  std::iota(perm.begin(), perm.end(), 0);
  stats::Rng rng(GetParam() + 1);
  const auto shuffled_order = rng.permutation(perm.size());

  const auto permuted = suite.select_counters(
      std::vector<std::size_t>(shuffled_order.begin(), shuffled_order.end()));
  const Perspector engine;
  const auto a = engine.score_suite(suite);
  const auto b = engine.score_suite(permuted);
  EXPECT_NEAR(a.cluster, b.cluster, 1e-9);
  EXPECT_NEAR(a.trend, b.trend, 1e-9);
  EXPECT_NEAR(a.coverage, b.coverage, 1e-9);
  EXPECT_NEAR(a.spread, b.spread, 1e-9);
}

TEST_P(Invariance, WorkloadPermutationPreservesRowwiseScores) {
  const auto suite = random_suite(GetParam() + 100);
  stats::Rng rng(GetParam() + 2);
  const auto order = rng.permutation(suite.num_workloads());
  const auto permuted = suite.select_workloads(
      std::vector<std::size_t>(order.begin(), order.end()));
  const Perspector engine;
  const auto a = engine.score_suite(suite);
  const auto b = engine.score_suite(permuted);
  EXPECT_NEAR(a.coverage, b.coverage, 1e-9);
  EXPECT_NEAR(a.spread, b.spread, 1e-9);
  EXPECT_NEAR(a.trend, b.trend, 1e-9);
}

TEST_P(Invariance, CounterRescalingChangesNothing) {
  const auto suite = random_suite(GetParam() + 200);
  // Scale counter 2's aggregates and series by 1e4.
  la::Matrix values = suite.values();
  std::vector<std::vector<std::vector<double>>> series;
  for (std::size_t w = 0; w < suite.num_workloads(); ++w) {
    values(w, 2) *= 1e4;
    std::vector<std::vector<double>> per_counter;
    for (std::size_t c = 0; c < suite.num_counters(); ++c) {
      auto s = suite.series(w, c);
      if (c == 2) {
        for (double& v : s) v *= 1e4;
      }
      per_counter.push_back(std::move(s));
    }
    series.push_back(std::move(per_counter));
  }
  const CounterMatrix scaled("inv", suite.workload_names(),
                             suite.counter_names(), values, series);
  const Perspector engine;
  const auto a = engine.score_suite(suite);
  const auto b = engine.score_suite(scaled);
  EXPECT_NEAR(a.cluster, b.cluster, 1e-9);
  EXPECT_NEAR(a.trend, b.trend, 1e-6);
  EXPECT_NEAR(a.coverage, b.coverage, 1e-9);
  EXPECT_NEAR(a.spread, b.spread, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Invariance,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace perspector::core
