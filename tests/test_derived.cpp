#include "core/derived.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/report.hpp"
#include "sim/pmu.hpp"

namespace perspector::core {
namespace {

// A CounterMatrix with hand-picked Table IV values for exact-rate checks.
CounterMatrix handmade_suite() {
  const auto counters = sim::pmu_event_names();
  la::Matrix values(2, counters.size(), 0.0);
  const auto set = [&](std::size_t w, sim::PmuEvent e, double v) {
    values(w, static_cast<std::size_t>(e)) = v;
  };
  // Workload 0: 10000 cycles, easy round numbers.
  set(0, sim::PmuEvent::CpuCycles, 10'000);
  set(0, sim::PmuEvent::BranchInstructions, 2'000);
  set(0, sim::PmuEvent::BranchMisses, 100);
  set(0, sim::PmuEvent::DtlbWalkPending, 500);
  set(0, sim::PmuEvent::StallsMemAny, 2'500);
  set(0, sim::PmuEvent::PageFaults, 10);
  set(0, sim::PmuEvent::DtlbLoads, 3'000);
  set(0, sim::PmuEvent::DtlbStores, 1'000);
  set(0, sim::PmuEvent::DtlbLoadMisses, 300);
  set(0, sim::PmuEvent::DtlbStoreMisses, 100);
  set(0, sim::PmuEvent::LlcLoads, 400);
  set(0, sim::PmuEvent::LlcStores, 100);
  set(0, sim::PmuEvent::LlcLoadMisses, 40);
  set(0, sim::PmuEvent::LlcStoreMisses, 10);
  // Workload 1: all zero (degenerate-rate handling).
  return CounterMatrix("hand", {"w0", "zero"}, counters, values);
}

TEST(Derived, ExactRates) {
  const auto m = derive_metrics_for(handmade_suite(), 0);
  EXPECT_EQ(m.workload, "w0");
  EXPECT_DOUBLE_EQ(m.llc_miss_pkc, 5.0);          // 50 * 1000 / 10000
  EXPECT_DOUBLE_EQ(m.llc_access_pkc, 50.0);       // 500 * 1000 / 10000
  EXPECT_DOUBLE_EQ(m.dtlb_miss_pkc, 40.0);        // 400 * 1000 / 10000
  EXPECT_DOUBLE_EQ(m.page_fault_pkc, 1.0);        // 10 * 1000 / 10000
  EXPECT_DOUBLE_EQ(m.branch_mpki_cycles, 10.0);   // 100 * 1000 / 10000
  EXPECT_DOUBLE_EQ(m.branch_miss_ratio, 0.05);    // 100 / 2000
  EXPECT_DOUBLE_EQ(m.llc_miss_ratio, 0.1);        // 50 / 500
  EXPECT_DOUBLE_EQ(m.dtlb_miss_ratio, 0.1);       // 400 / 4000
  EXPECT_DOUBLE_EQ(m.stall_fraction, 0.25);       // 2500 / 10000
  EXPECT_DOUBLE_EQ(m.walk_fraction, 0.05);        // 500 / 10000
  EXPECT_DOUBLE_EQ(m.memory_intensity, 0.4);      // 4000 / 10000
}

TEST(Derived, ZeroDenominatorsReportZero) {
  const auto m = derive_metrics_for(handmade_suite(), 1);
  EXPECT_DOUBLE_EQ(m.llc_miss_pkc, 0.0);
  EXPECT_DOUBLE_EQ(m.branch_miss_ratio, 0.0);
  EXPECT_DOUBLE_EQ(m.llc_miss_ratio, 0.0);
  EXPECT_DOUBLE_EQ(m.stall_fraction, 0.0);
}

TEST(Derived, BatchCoversAllWorkloads) {
  const auto all = derive_metrics(handmade_suite());
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].workload, "w0");
  EXPECT_EQ(all[1].workload, "zero");
}

TEST(Derived, MissingCountersThrow) {
  la::Matrix values(1, 2, 1.0);
  const CounterMatrix partial("p", {"w"}, {"cpu-cycles", "weird"}, values);
  EXPECT_THROW(derive_metrics(partial), std::invalid_argument);
}

TEST(Derived, RatiosBoundedForSimulatedData) {
  // Ratios derived from any consistent counter set stay in [0, 1].
  const auto suite = handmade_suite();
  for (const auto& m : derive_metrics(suite)) {
    for (double r : {m.branch_miss_ratio, m.llc_miss_ratio,
                     m.dtlb_miss_ratio, m.stall_fraction}) {
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
  }
}

TEST(Report, WorkloadRatesTable) {
  const auto table = workload_rates_table(handmade_suite());
  EXPECT_EQ(table.rows(), 2u);
  const std::string text = table.to_text();
  EXPECT_NE(text.find("w0"), std::string::npos);
  EXPECT_NE(text.find("llc-miss/kc"), std::string::npos);
}

TEST(Report, SuiteReportSections) {
  const auto suite = handmade_suite();
  SuiteScores scores;
  scores.suite = "hand";
  scores.cluster_detail.per_k = {0.4, 0.3};
  scores.coverage_detail.components = 2;
  scores.coverage_detail.component_variances = {0.1, 0.05};
  const std::string report = suite_report(suite, scores);
  EXPECT_NE(report.find("Perspector report: hand"), std::string::npos);
  EXPECT_NE(report.find("per-workload rates"), std::string::npos);
  EXPECT_NE(report.find("per-k silhouettes"), std::string::npos);
  // No trend section without per-event detail.
  EXPECT_EQ(report.find("trend contribution"), std::string::npos);

  scores.trend_detail.per_event.assign(suite.num_counters(), 5.0);
  const std::string with_trend = suite_report(suite, scores);
  EXPECT_NE(with_trend.find("trend contribution"), std::string::npos);
}

}  // namespace
}  // namespace perspector::core
