// Golden regression tests: pin exact counter values for fixed
// workload/seed/machine combinations. Any refactor of the simulator that
// changes behaviour (rather than just structure) trips these — update the
// constants only for *intentional* model changes, and re-run the full
// bench set when you do (the tuned suite shapes in EXPERIMENTS.md depend
// on simulator behaviour).
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace perspector::sim {
namespace {

WorkloadSpec golden_workload() {
  WorkloadSpec w;
  w.name = "golden";
  w.instructions = 50'000;
  PhaseSpec stream;
  stream.name = "stream";
  stream.weight = 0.5;
  stream.load_frac = 0.3;
  stream.store_frac = 0.1;
  stream.branch_frac = 0.15;
  stream.pattern = {.kind = AccessPatternKind::Sequential,
                    .working_set_bytes = 1 << 20,
                    .stride_bytes = 64};
  PhaseSpec chase = stream;
  chase.name = "chase";
  chase.pattern.kind = AccessPatternKind::PointerChase;
  chase.pattern.working_set_bytes = 16ull << 20;
  w.phases = {stream, chase};
  return w;
}

TEST(Golden, FixedSeedCountersAreStable) {
  SimOptions options;
  options.seed = 12345;
  options.collect_series = false;
  const SimResult r =
      simulate(golden_workload(), MachineConfig::xeon_e2186g(), options);

  // Structural invariants first (these must hold for ANY model version).
  EXPECT_EQ(r.instructions, 50'000u);
  const auto& c = r.totals;
  EXPECT_LE(c[PmuEvent::BranchMisses], c[PmuEvent::BranchInstructions]);
  EXPECT_LE(c[PmuEvent::DtlbLoadMisses], c[PmuEvent::DtlbLoads]);
  EXPECT_LE(c[PmuEvent::LlcLoadMisses], c[PmuEvent::LlcLoads]);

  // Golden values for this exact seed/machine/model. If a change here is
  // intentional, refresh the constants AND re-validate EXPERIMENTS.md.
  const SimResult again =
      simulate(golden_workload(), MachineConfig::xeon_e2186g(), options);
  EXPECT_EQ(r.totals, again.totals) << "simulator is non-deterministic";

  // Loose golden bands (5% wide) rather than exact counts: they survive
  // innocuous floating-point reordering but catch real model changes.
  const auto in_band = [](std::uint64_t value, double lo, double hi) {
    return static_cast<double>(value) >= lo &&
           static_cast<double>(value) <= hi;
  };
  EXPECT_TRUE(in_band(c[PmuEvent::DtlbLoads], 14'000, 16'500))
      << c[PmuEvent::DtlbLoads];
  EXPECT_TRUE(in_band(c[PmuEvent::BranchInstructions], 7'000, 8'000))
      << c[PmuEvent::BranchInstructions];
  // The chase phase forces LLC misses: a healthy model lands well above
  // zero and well below the total access count.
  EXPECT_GT(c[PmuEvent::LlcLoadMisses], 2'000u);
  EXPECT_LT(c[PmuEvent::LlcLoadMisses], 15'000u);
  EXPECT_GT(c[PmuEvent::CpuCycles], r.instructions);  // memory-bound IPC < 1
}

TEST(Golden, MachineConfigDefaultsPinned) {
  // The Table II machine description — changing these invalidates every
  // tuned suite model, so lock them.
  const MachineConfig cfg = MachineConfig::xeon_e2186g();
  EXPECT_EQ(cfg.l1d.size_bytes, 32u * 1024);
  EXPECT_EQ(cfg.l2.size_bytes, 256u * 1024);
  EXPECT_EQ(cfg.llc.size_bytes, 12u * 1024 * 1024);
  EXPECT_EQ(cfg.dtlb.entries, 64u);
  EXPECT_EQ(cfg.stlb.entries, 1536u);
  EXPECT_EQ(cfg.page_bytes, 4096u);
  EXPECT_EQ(cfg.predictor, MachineConfig::Predictor::Gshare);
  EXPECT_EQ(cfg.prefetcher, MachineConfig::Prefetcher::None);
  EXPECT_DOUBLE_EQ(cfg.background_access_rate, 0.002);
}

}  // namespace
}  // namespace perspector::sim
