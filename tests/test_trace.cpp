// obs tracing: span nesting, Chrome-trace JSON validity, the disabled
// path being a no-op, and thread safety of the recorder.
//
// The Tracer is a process-wide singleton, so every test starts from
// clear() and sets the enabled state explicitly. When the environment
// force-disables tracing (PERSPECTOR_TRACE=0) the recording tests skip —
// the force-off contract is exactly that enable() must not work.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

namespace perspector::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (Tracer::instance().force_disabled()) {
      GTEST_SKIP() << "PERSPECTOR_TRACE=0 force-disables tracing";
    }
    Tracer::instance().clear();
    Tracer::instance().enable();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
};

// Minimal recursive-descent JSON syntax checker — enough to catch the
// classic export bugs (trailing commas, unescaped quotes, bare NaN).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (ch == '\\') {
        pos_ += 2;
        continue;
      }
      if (ch == '"') {
        ++pos_;
        return true;
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const TraceEvent* find_event(const std::vector<TraceEvent>& events,
                             const std::string& name) {
  const auto it =
      std::find_if(events.begin(), events.end(),
                   [&](const TraceEvent& e) { return e.name == name; });
  return it == events.end() ? nullptr : &*it;
}

TEST_F(TraceTest, SpanRecordsOneEvent) {
  { Span span("unit"); }
  const auto events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit");
  EXPECT_GE(events[0].duration_us, 0.0);
  EXPECT_EQ(events[0].depth, 0u);
}

TEST_F(TraceTest, NestedSpansTrackDepthAndContainment) {
  {
    Span outer("outer");
    {
      Span middle("middle");
      { Span inner("inner"); }
    }
    { Span sibling("sibling"); }
  }
  const auto events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 4u);

  const auto* outer = find_event(events, "outer");
  const auto* middle = find_event(events, "middle");
  const auto* inner = find_event(events, "inner");
  const auto* sibling = find_event(events, "sibling");
  ASSERT_TRUE(outer && middle && inner && sibling);

  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(middle->depth, 1u);
  EXPECT_EQ(inner->depth, 2u);
  EXPECT_EQ(sibling->depth, 1u);

  // Children are contained inside their parents on the timeline.
  const auto end = [](const TraceEvent& e) {
    return e.start_us + e.duration_us;
  };
  EXPECT_LE(outer->start_us, middle->start_us);
  EXPECT_LE(end(*middle), end(*outer));
  EXPECT_LE(middle->start_us, inner->start_us);
  EXPECT_LE(end(*inner), end(*middle));
  EXPECT_LE(end(*middle), sibling->start_us);
}

TEST_F(TraceTest, DepthResetsAfterTopLevelSpanEnds) {
  {
    Span a("a");
    { Span b("b"); }
  }
  { Span c("c"); }
  const auto events = Tracer::instance().events();
  const auto* c = find_event(events, "c");
  ASSERT_TRUE(c);
  EXPECT_EQ(c->depth, 0u);
}

TEST_F(TraceTest, ChromeTraceJsonIsValidAndComplete) {
  {
    Span outer("score_suites");
    { Span inner("cluster \"quoted\"\npath\\x"); }
  }
  const std::string json = Tracer::instance().chrome_trace_json();

  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"score_suites\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TraceTest, EmptyTraceIsStillValidJson) {
  const std::string json = Tracer::instance().chrome_trace_json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
}

TEST_F(TraceTest, WriteChromeTraceThrowsOnBadPath) {
  { Span span("x"); }
  EXPECT_THROW(
      Tracer::instance().write_chrome_trace("/nonexistent-dir/trace.json"),
      std::runtime_error);
}

TEST_F(TraceTest, DisabledPathRecordsNothing) {
  Tracer::instance().disable();
  for (int i = 0; i < 100; ++i) {
    Span span("ignored");
  }
  EXPECT_EQ(Tracer::instance().event_count(), 0u);

  // Re-enabling starts recording again.
  Tracer::instance().enable();
  { Span span("kept"); }
  EXPECT_EQ(Tracer::instance().event_count(), 1u);
}

TEST_F(TraceTest, PhaseSummaryAggregatesByName) {
  for (int i = 0; i < 3; ++i) {
    Span span("repeated");
  }
  { Span span("single"); }
  const auto summary = Tracer::instance().phase_summary();
  ASSERT_EQ(summary.size(), 2u);

  const auto it = std::find_if(
      summary.begin(), summary.end(),
      [](const PhaseStat& s) { return s.name == "repeated"; });
  ASSERT_NE(it, summary.end());
  EXPECT_EQ(it->count, 3u);
  EXPECT_GE(it->total_us, 0.0);
  EXPECT_LE(it->min_us, it->max_us);
  EXPECT_LE(it->max_us, it->total_us + 1e-9);
}

TEST_F(TraceTest, ConcurrentSpansAllRecorded) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span outer("thread.outer");
        Span inner("thread.inner");
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(Tracer::instance().event_count(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);

  // Depth stays consistent per thread: inner spans are depth 1.
  for (const auto& event : Tracer::instance().events()) {
    EXPECT_EQ(event.depth, event.name == "thread.inner" ? 1u : 0u);
  }

  const std::string json = Tracer::instance().chrome_trace_json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid());
}

}  // namespace
}  // namespace perspector::obs
