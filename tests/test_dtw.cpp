#include "dtw/dtw.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace perspector::dtw {
namespace {

TEST(Dtw, RejectsEmptySeries) {
  const std::vector<double> a{1.0};
  EXPECT_THROW(dtw_distance(std::vector<double>{}, a), std::invalid_argument);
  EXPECT_THROW(dtw_distance(a, std::vector<double>{}), std::invalid_argument);
}

TEST(Dtw, IdenticalSeriesZeroDistance) {
  const std::vector<double> a{1.0, 2.0, 3.0, 2.0, 1.0};
  const DtwResult r = dtw_distance(a, a);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  EXPECT_EQ(r.path_length, a.size());
}

TEST(Dtw, SingleElementSeries) {
  const std::vector<double> a{3.0};
  const std::vector<double> b{1.0, 2.0, 5.0};
  // Every element of b matches the single element of a.
  EXPECT_DOUBLE_EQ(dtw_distance(a, b).distance, 2.0 + 1.0 + 2.0);
}

TEST(Dtw, KnownSmallCase) {
  // a = [0, 0, 1], b = [0, 1, 1]: warping aligns the step, cost 0.
  const std::vector<double> a{0.0, 0.0, 1.0};
  const std::vector<double> b{0.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(dtw_distance(a, b).distance, 0.0);
}

TEST(Dtw, ShiftedStepAlignsCheaply) {
  // A step at position 2 vs position 7 of an otherwise identical series:
  // DTW absorbs the shift, Euclidean-style matching would not.
  std::vector<double> a(10, 0.0), b(10, 0.0);
  for (std::size_t i = 2; i < 10; ++i) a[i] = 1.0;
  for (std::size_t i = 7; i < 10; ++i) b[i] = 1.0;
  double pointwise = 0.0;
  for (std::size_t i = 0; i < 10; ++i) pointwise += std::abs(a[i] - b[i]);
  const double warped = dtw_distance(a, b).distance;
  EXPECT_LT(warped, pointwise);
}

TEST(Dtw, SymmetricDistance) {
  const std::vector<double> a{1.0, 3.0, 2.0, 5.0};
  const std::vector<double> b{2.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(dtw_distance(a, b).distance,
                   dtw_distance(b, a).distance);
}

TEST(Dtw, PathEndpointsAndMonotonicity) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{1.0, 3.0, 4.0};
  const DtwPathResult r = dtw_with_path(a, b);
  ASSERT_FALSE(r.path.empty());
  EXPECT_EQ(r.path.front(), (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(r.path.back(), (std::pair<std::size_t, std::size_t>{3, 2}));
  for (std::size_t s = 1; s < r.path.size(); ++s) {
    const auto [pi, pj] = r.path[s - 1];
    const auto [ci, cj] = r.path[s];
    EXPECT_GE(ci, pi);
    EXPECT_GE(cj, pj);
    EXPECT_LE(ci - pi, 1u);
    EXPECT_LE(cj - pj, 1u);
    EXPECT_TRUE(ci > pi || cj > pj);
  }
}

TEST(Dtw, PathCostMatchesDistance) {
  const std::vector<double> a{0.0, 5.0, 2.0, 8.0, 1.0};
  const std::vector<double> b{1.0, 4.0, 4.0, 7.0};
  const DtwPathResult r = dtw_with_path(a, b);
  double cost = 0.0;
  for (const auto& [i, j] : r.path) cost += std::abs(a[i] - b[j]);
  EXPECT_NEAR(cost, r.distance, 1e-12);
}

TEST(Dtw, BandedMatchesFullWhenWide) {
  stats::Rng rng(61);
  std::vector<double> a(40), b(40);
  for (double& v : a) v = rng.uniform();
  for (double& v : b) v = rng.uniform();
  DtwOptions wide;
  wide.band_fraction = 1.0;
  EXPECT_DOUBLE_EQ(dtw_distance(a, b).distance,
                   dtw_distance(a, b, wide).distance);
}

TEST(Dtw, BandedIsUpperBoundedByFull) {
  stats::Rng rng(62);
  std::vector<double> a(50), b(50);
  for (double& v : a) v = rng.uniform();
  for (double& v : b) v = rng.uniform();
  DtwOptions narrow;
  narrow.band_fraction = 0.05;
  // Constraining the warp can only increase the cost.
  EXPECT_GE(dtw_distance(a, b, narrow).distance,
            dtw_distance(a, b).distance - 1e-12);
}

TEST(Dtw, BandCoversLengthDifference) {
  // Band narrower than the length difference must still connect corners.
  const std::vector<double> a(20, 1.0);
  const std::vector<double> b(5, 1.0);
  DtwOptions narrow;
  narrow.band_fraction = 0.01;
  EXPECT_NO_THROW(dtw_distance(a, b, narrow));
}

TEST(Dtw, InvalidBandFractionThrows) {
  const std::vector<double> a{1.0, 2.0};
  DtwOptions bad;
  bad.band_fraction = 1.5;
  EXPECT_THROW(dtw_distance(a, a, bad), std::invalid_argument);
}

TEST(Dtw, PathNormalizedDividesByLength) {
  const std::vector<double> a{0.0, 0.0, 0.0};
  const std::vector<double> b{1.0, 1.0, 1.0};
  DtwOptions norm;
  norm.path_normalized = true;
  const DtwResult plain = dtw_distance(a, b);
  const DtwResult normalized = dtw_distance(a, b, norm);
  EXPECT_DOUBLE_EQ(plain.distance, 3.0);
  EXPECT_DOUBLE_EQ(normalized.distance, 1.0);
}

TEST(MeanPairwiseDtw, RequiresTwoSeries) {
  EXPECT_THROW(mean_pairwise_dtw({{1.0, 2.0}}), std::invalid_argument);
}

TEST(MeanPairwiseDtw, KnownAverage) {
  // Three constant series at 0, 1, 3 (length 2 each): pair distances are
  // 2*1, 2*3, 2*2 -> mean 4.
  const std::vector<std::vector<double>> series{
      {0.0, 0.0}, {1.0, 1.0}, {3.0, 3.0}};
  EXPECT_DOUBLE_EQ(mean_pairwise_dtw(series), 4.0);
}

// Property: DTW distance is always <= the pointwise L1 distance for
// equal-length series (the identity alignment is one admissible path).
class DtwUpperBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DtwUpperBound, NeverExceedsPointwiseL1) {
  stats::Rng rng(GetParam());
  std::vector<double> a(30), b(30);
  for (double& v : a) v = rng.uniform(0.0, 10.0);
  for (double& v : b) v = rng.uniform(0.0, 10.0);
  double l1 = 0.0;
  for (std::size_t i = 0; i < 30; ++i) l1 += std::abs(a[i] - b[i]);
  EXPECT_LE(dtw_distance(a, b).distance, l1 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtwUpperBound,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace perspector::dtw
