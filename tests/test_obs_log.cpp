#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace perspector::obs {
namespace {

/// Restores the global logger to its silent defaults on scope exit so
/// these tests do not leak state into other suites in the same binary.
class LoggerGuard {
 public:
  ~LoggerGuard() {
    Logger::instance().set_level(LogLevel::kOff);
    Logger::instance().set_path("");
    Logger::instance().set_rate_limit(1000);
  }
};

TEST(ObsLog, ParseLevelRoundTrips) {
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_FALSE(parse_log_level("verbose").has_value());
  EXPECT_FALSE(parse_log_level("").has_value());
  for (LogLevel level : {LogLevel::kOff, LogLevel::kError, LogLevel::kWarn,
                         LogLevel::kInfo, LogLevel::kDebug}) {
    EXPECT_EQ(parse_log_level(log_level_name(level)), level);
  }
}

TEST(ObsLog, FormatLineShape) {
  const std::string line = Logger::instance().format_line(
      1234, LogLevel::kWarn, "slow_request",
      {field("trace", "9f86d081884c7d65"), field_u64("count", 7),
       field_i64("delta", -3), field_f64("latency_ms", 184.25),
       field_bool("cache_hit", true)});
  EXPECT_EQ(line,
            "{\"ts_us\":1234,\"level\":\"warn\",\"event\":\"slow_request\","
            "\"trace\":\"9f86d081884c7d65\",\"count\":7,\"delta\":-3,"
            "\"latency_ms\":184.25,\"cache_hit\":true}");
}

TEST(ObsLog, FormatLineEscapesStrings) {
  const std::string line = Logger::instance().format_line(
      0, LogLevel::kError, "parse\"fail",
      {field("detail", "line1\nline2\ttab\\slash")});
  EXPECT_NE(line.find("\"event\":\"parse\\\"fail\""), std::string::npos);
  EXPECT_NE(line.find("line1\\nline2\\ttab\\\\slash"), std::string::npos);
}

TEST(ObsLog, LevelGatesAreOrdered) {
  LoggerGuard guard;
  Logger& logger = Logger::instance();
  logger.set_level(LogLevel::kWarn);
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
}

TEST(ObsLog, WritesNdjsonToFileSink) {
  LoggerGuard guard;
  Logger& logger = Logger::instance();
  const std::string path =
      testing::TempDir() + "/perspector_log_test.ndjson";
  std::remove(path.c_str());
  ASSERT_TRUE(logger.set_path(path));
  logger.set_level(LogLevel::kInfo);

  log_info("unit_test", {field_u64("n", 1)});
  log_debug("should_be_gated", {});  // below the level: no line
  log_warn("second", {field("why", "check")});

  logger.set_path("");  // flush + release the file

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"event\":\"unit_test\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"n\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\":\"second\""), std::string::npos);
  EXPECT_EQ(lines[0].find("should_be_gated"), std::string::npos);
}

TEST(ObsLog, SetPathFailureKeepsCurrentSink) {
  LoggerGuard guard;
  EXPECT_FALSE(Logger::instance().set_path("/nonexistent_dir_x/y/z.log"));
}

TEST(ObsLog, RateLimiterDropsExcessLines) {
  LoggerGuard guard;
  Logger& logger = Logger::instance();
  const std::string path =
      testing::TempDir() + "/perspector_log_rate.ndjson";
  std::remove(path.c_str());
  ASSERT_TRUE(logger.set_path(path));
  logger.set_level(LogLevel::kInfo);
  logger.set_rate_limit(5);

  const std::uint64_t dropped_before = logger.dropped();
  // A burst well past the per-second budget; all within one window.
  for (int i = 0; i < 200; ++i) log_info("burst", {field_u64("i", 1)});
  EXPECT_GE(logger.dropped(), dropped_before + 190);

  logger.set_path("");
  std::ifstream in(path);
  std::string line;
  std::size_t emitted = 0;
  while (std::getline(in, line)) ++emitted;
  // At most one rate-limit window's worth (plus a possible window
  // boundary and the rollover "log.dropped" marker). The lower bound is
  // 1, not 5: the per-second window is global, so lines emitted by
  // earlier tests in the same wall-clock second eat into the budget.
  EXPECT_LE(emitted, 12u);
  EXPECT_GE(emitted, 1u);
}

}  // namespace
}  // namespace perspector::obs
