// obs metrics: counter registry identity, accumulation, distribution
// statistics, snapshots, reset, and concurrent updates.
//
// The registry is process-wide, so tests use unique metric names and
// avoid asserting on the global registry size.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace perspector::obs {
namespace {

TEST(MetricsCounter, RegistryReturnsSameInstanceForSameName) {
  Counter& a = counter("test.registry.same");
  Counter& b = counter("test.registry.same");
  EXPECT_EQ(&a, &b);

  Counter& other = counter("test.registry.other");
  EXPECT_NE(&a, &other);
}

TEST(MetricsCounter, AddAccumulates) {
  Counter& c = counter("test.counter.add");
  c.reset();
  c.add(5);
  c.increment();
  c.add(10);
  EXPECT_EQ(c.value(), 16u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsCounter, SnapshotContainsRegisteredCounters) {
  Counter& c = counter("test.counter.snapshot");
  c.reset();
  c.add(42);

  const auto snapshot = counters_snapshot();
  const auto it = std::find_if(
      snapshot.begin(), snapshot.end(),
      [](const CounterSnapshot& s) { return s.name == "test.counter.snapshot"; });
  ASSERT_NE(it, snapshot.end());
  EXPECT_EQ(it->value, 42u);

  // Snapshot is sorted by name (std::map iteration order).
  EXPECT_TRUE(std::is_sorted(snapshot.begin(), snapshot.end(),
                             [](const auto& a, const auto& b) {
                               return a.name < b.name;
                             }));
}

TEST(MetricsCounter, ConcurrentAddsAreLossless) {
  Counter& c = counter("test.counter.concurrent");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(MetricsDistribution, StatsTrackCountMinMaxMean) {
  Distribution& d = distribution("test.dist.basic");
  d.reset();
  d.record(2.0);
  d.record(8.0);
  d.record(5.0);

  const auto stats = d.stats();
  EXPECT_EQ(stats.count, 3u);
  EXPECT_DOUBLE_EQ(stats.min, 2.0);
  EXPECT_DOUBLE_EQ(stats.max, 8.0);
  EXPECT_DOUBLE_EQ(stats.sum, 15.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
}

TEST(MetricsDistribution, EmptyDistributionHasZeroMean) {
  Distribution& d = distribution("test.dist.empty");
  d.reset();
  const auto stats = d.stats();
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
}

TEST(MetricsDistribution, NegativeValuesHandled) {
  Distribution& d = distribution("test.dist.negative");
  d.reset();
  d.record(-3.0);
  d.record(-1.0);
  const auto stats = d.stats();
  EXPECT_DOUBLE_EQ(stats.min, -3.0);
  EXPECT_DOUBLE_EQ(stats.max, -1.0);
  EXPECT_DOUBLE_EQ(stats.mean(), -2.0);
}

TEST(MetricsDistribution, ConcurrentRecordsKeepExtremaAndCount) {
  Distribution& d = distribution("test.dist.concurrent");
  d.reset();
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&d, t] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        d.record(static_cast<double>(t * kRecordsPerThread + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto stats = d.stats();
  const auto total = static_cast<std::uint64_t>(kThreads) * kRecordsPerThread;
  EXPECT_EQ(stats.count, total);
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.max, static_cast<double>(total - 1));
  // Sum of 0..total-1.
  EXPECT_DOUBLE_EQ(stats.sum,
                   static_cast<double>(total - 1) * static_cast<double>(total) /
                       2.0);
}

TEST(MetricsRegistry, ResetMetricsZeroesEverything) {
  Counter& c = counter("test.reset.counter");
  Distribution& d = distribution("test.reset.dist");
  c.add(7);
  d.record(3.0);

  reset_metrics();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(d.stats().count, 0u);
  EXPECT_DOUBLE_EQ(d.stats().sum, 0.0);
}

TEST(MetricsRegistry, DistributionSnapshotIncludesStats) {
  Distribution& d = distribution("test.dist.snapshot");
  d.reset();
  d.record(1.0);
  d.record(3.0);

  const auto snapshot = distributions_snapshot();
  const auto it = std::find_if(snapshot.begin(), snapshot.end(),
                               [](const DistributionSnapshot& s) {
                                 return s.name == "test.dist.snapshot";
                               });
  ASSERT_NE(it, snapshot.end());
  EXPECT_EQ(it->stats.count, 2u);
  EXPECT_DOUBLE_EQ(it->stats.mean(), 2.0);
}

TEST(MetricsDistributionTimer, RecordsElapsedMicrosecondsOnDestruction) {
  Distribution& d = distribution("test.dist.timer");
  d.reset();
  {
    DistributionTimer timer(d);
    // Nothing recorded while the scope is still open.
    EXPECT_EQ(d.stats().count, 0u);
  }
  {
    DistributionTimer timer(d);
  }
  const auto stats = d.stats();
  EXPECT_EQ(stats.count, 2u);
  // Elapsed time is non-negative and plausibly small (well under a
  // minute even on a loaded CI machine).
  EXPECT_GE(stats.min, 0.0);
  EXPECT_LT(stats.max, 60.0e6);
}

}  // namespace
}  // namespace perspector::obs
