// serve::Router: the multi-process tier. Byte-identity across worker
// counts, crash handling (structured unavailable, never a hang or a
// silent retry), rehash-on-death shard stability, restart-on-crash, and
// the shared disk-backed cache.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/io.hpp"
#include "serve/backend.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/router.hpp"

namespace fs = std::filesystem;
using namespace perspector;
using serve::Key128;
using serve::Router;
using serve::RouterOptions;
using serve::ScoreRequest;
using serve::ScoreResponse;

namespace {

std::string fresh_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/perspector_router_" + name;
  fs::remove_all(path);
  return path;
}

ScoreRequest builtin_request(const std::string& suite,
                             std::uint64_t instructions,
                             const std::string& id, std::uint64_t trace) {
  ScoreRequest request;
  request.id = id;
  request.builtin = suite;
  request.instructions = instructions;
  request.trace_id = trace;
  return request;
}

RouterOptions router_options(std::size_t workers) {
  RouterOptions options;
  options.workers = workers;
  options.engine.cache_bytes = 16ull << 20;
  return options;
}

void pause_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

TEST(Router, ByteIdenticalResponsesAcrossWorkerCounts) {
  // The tentpole invariant: the full serialized response stream — ids,
  // cache labels, trace ids, report bytes — must not depend on how many
  // workers the tier runs.
  const std::size_t counts[] = {1, 2, 8};
  std::vector<std::string> transcripts;
  for (const std::size_t workers : counts) {
    Router router(router_options(workers));
    std::string transcript;
    std::uint64_t trace = 0;
    for (const char* suite : {"nbench", "sebs", "lmbench"}) {
      for (int repeat = 0; repeat < 2; ++repeat) {
        const auto request = builtin_request(
            suite, 2000, std::string(suite) + "-" + std::to_string(repeat),
            ++trace);
        transcript += serve::serialize_response(router.score(request));
      }
    }
    transcripts.push_back(std::move(transcript));
  }
  EXPECT_EQ(transcripts[0], transcripts[1]);
  EXPECT_EQ(transcripts[0], transcripts[2]);
}

TEST(Router, RepeatRequestHitsTheRouterCache) {
  Router router(router_options(2));
  const auto request = builtin_request("nbench", 2000, "r", 7);
  const ScoreResponse first = router.score(request);
  ASSERT_TRUE(first.ok) << first.message;
  EXPECT_FALSE(first.cache_hit);
  const ScoreResponse second = router.score(request);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.cache_hit);  // served by the router, not a worker
  EXPECT_EQ(first.report, second.report);
  EXPECT_EQ(second.trace_id, 7u);
}

TEST(Router, ErrorsComeBackStructuredFromWorkers) {
  Router router(router_options(2));
  auto request = builtin_request("no-such-suite", 2000, "e", 1);
  const ScoreResponse response = router.score(request);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "bad_request");
  EXPECT_NE(response.message.find("no-such-suite"), std::string::npos);
}

TEST(Router, ShardAssignmentIsStableAndCoversWorkers) {
  Router router(router_options(8));
  std::vector<bool> seen(8, false);
  for (std::uint64_t i = 0; i < 256; ++i) {
    // Two unrelated multipliers, like real content digests — hi and lo
    // must not be correlated or Key128Hash's fold degenerates.
    const Key128 key{(i + 1) * 0x9e3779b97f4a7c15ull,
                     (i + 1) * 0xc2b2ae3d27d4eb4full};
    const int shard = router.shard_of(key);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 8);
    EXPECT_EQ(shard, router.shard_of(key));  // deterministic
    seen[static_cast<std::size_t>(shard)] = true;
  }
  // 256 well-mixed keys over 64 vnodes/worker reach every worker.
  for (std::size_t w = 0; w < 8; ++w) {
    EXPECT_TRUE(seen[w]) << "worker " << w << " owns no sampled shard";
  }
}

TEST(Router, WorkerCrashMidRequestReturnsUnavailable) {
  RouterOptions options = router_options(2);
  options.restart_on_crash = false;
  Router router(options);

  // A deliberately slow request (heavyweight suite simulation) so the
  // kill lands while the worker is computing, after the request was sent.
  auto slow = builtin_request("spec17", 100'000, "slow", 3);
  const Key128 key =
      serve::result_cache_key(router.content_key(slow), slow.events);
  const int shard = router.shard_of(key);
  ASSERT_GE(shard, 0);

  ScoreResponse response;
  std::thread scorer([&] { response = router.score(slow); });
  pause_ms(200);  // let the request reach the worker and start computing
  ASSERT_TRUE(router.kill_worker(static_cast<std::size_t>(shard)));
  scorer.join();  // must return — a crashed worker never hangs the router

  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "unavailable");
  EXPECT_NE(response.message.find("crashed"), std::string::npos);
  EXPECT_EQ(response.trace_id, 3u);
  EXPECT_FALSE(router.worker_alive(static_cast<std::size_t>(shard)));
}

TEST(Router, RehashOnDeathKeepsOtherShardsUnchanged) {
  RouterOptions options = router_options(4);
  options.restart_on_crash = false;
  Router router(options);

  std::vector<Key128> keys;
  std::vector<int> before;
  for (std::uint64_t i = 0; i < 200; ++i) {
    keys.push_back(Key128{i * 0x2545f4914f6cdd1dull + 5, i ^ 0xffull});
    before.push_back(router.shard_of(keys.back()));
  }
  const std::size_t victim = static_cast<std::size_t>(before[0]);

  ASSERT_TRUE(router.kill_worker(victim));
  pause_ms(100);           // let the kernel close the worker's socket
  router.metrics_line("");  // touches every worker: death is observed here
  ASSERT_FALSE(router.worker_alive(victim));

  for (std::size_t i = 0; i < keys.size(); ++i) {
    const int after = router.shard_of(keys[i]);
    if (static_cast<std::size_t>(before[i]) == victim) {
      // Orphaned shards slide to some alive worker...
      EXPECT_NE(after, static_cast<int>(victim));
      EXPECT_TRUE(router.worker_alive(static_cast<std::size_t>(after)));
    } else {
      // ...while every other shard keeps its assignment.
      EXPECT_EQ(after, before[i]) << "key " << i;
    }
  }
}

TEST(Router, CrashedWorkerIsRestartedAndServes) {
  Router router(router_options(2));  // restart_on_crash defaults to true
  const std::int64_t original_pid = router.worker_pid(0);

  ASSERT_TRUE(router.kill_worker(0));
  pause_ms(100);

  // Keep scoring distinct requests until one routes to the dead worker;
  // the failed send triggers the respawn, and the request is served by
  // the restarted process (or a sibling) — never dropped.
  for (std::uint64_t n = 0; n < 20; ++n) {
    const auto response = router.score(
        builtin_request("nbench", 1000 + n, std::to_string(n), n + 1));
    ASSERT_TRUE(response.ok) << response.error << ": " << response.message;
  }
  EXPECT_GE(router.total_restarts(), 1u);
  EXPECT_TRUE(router.worker_alive(0));
  EXPECT_NE(router.worker_pid(0), original_pid);
}

TEST(Router, DurableCacheSurvivesRouterRestart) {
  const std::string dir = fresh_dir("durable");
  const auto request = builtin_request("nbench", 2000, "d", 9);
  std::string cold_report;
  {
    RouterOptions options = router_options(2);
    options.cache_dir = dir;
    Router router(options);
    const auto response = router.score(request);
    ASSERT_TRUE(response.ok) << response.message;
    EXPECT_FALSE(response.cache_hit);
    cold_report = response.report;
  }  // destructor flushes the store
  RouterOptions options = router_options(2);
  options.cache_dir = dir;
  Router router(options);
  const auto warm = router.score(request);
  ASSERT_TRUE(warm.ok) << warm.message;
  EXPECT_TRUE(warm.cache_hit);  // served from disk, no worker involved
  EXPECT_EQ(warm.report, cold_report);
}

TEST(Router, ShardStatsReportsEveryWorker) {
  Router router(router_options(3));
  router.score(builtin_request("nbench", 2000, "s", 1));
  const std::string line = router.shard_stats_line("42");
  EXPECT_NE(line.find("\"id\":\"42\""), std::string::npos);
  EXPECT_NE(line.find("\"mode\":\"router\""), std::string::npos);
  EXPECT_NE(line.find("\"worker\":0"), std::string::npos);
  EXPECT_NE(line.find("\"worker\":1"), std::string::npos);
  EXPECT_NE(line.find("\"worker\":2"), std::string::npos);
  EXPECT_NE(line.find("\"alive\":true"), std::string::npos);
}

TEST(Router, MetricsLineMergesWorkerRegistries) {
  Router router(router_options(2));
  router.score(builtin_request("nbench", 2000, "m1", 1));
  router.score(builtin_request("sebs", 2000, "m2", 2));
  const std::string line = router.metrics_line("");
  // Router-local counters and worker-side serve.* counters appear in one
  // merged snapshot.
  EXPECT_NE(line.find("\"router.requests\":2"), std::string::npos);
  EXPECT_NE(line.find("\"router.forwarded\":2"), std::string::npos);
  EXPECT_NE(line.find("\"serve.requests\""), std::string::npos);
}

TEST(Router, BatchMatchesSequentialScoring) {
  // One batch through the pipelined per-shard path must produce the
  // same responses (order, labels, bytes) as one-at-a-time scoring.
  std::vector<ScoreRequest> requests;
  std::uint64_t trace = 0;
  for (const char* suite : {"nbench", "sebs", "lmbench", "nbench"}) {
    requests.push_back(builtin_request(
        suite, 2500, "b" + std::to_string(trace), ++trace));
  }
  Router batch_router(router_options(4));
  const auto batched = batch_router.score_batch(requests);

  Router serial_router(router_options(4));
  std::vector<ScoreResponse> serial;
  serial.reserve(requests.size());
  for (const auto& request : requests) {
    serial.push_back(serial_router.score(request));
  }

  ASSERT_EQ(batched.size(), serial.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(serve::serialize_response(batched[i]),
              serve::serialize_response(serial[i]))
        << "request " << i;
  }
}

TEST(Router, MutateSequenceMatchesInProcessEngine) {
  // The same load/add/drop sequence through the router (which forwards
  // every op of a suite name to one worker) and through an in-process
  // Engine must produce byte-identical reports and version numbers.
  const core::CounterMatrix base = serve::simulate_builtin("sebs", 2000);
  const core::CounterMatrix extra =
      serve::simulate_builtin("riotbench", 2000).select_workloads({0});

  serve::MutateRequest load;
  load.id = "l";
  load.op = serve::MutateOp::LoadSuite;
  load.suite = "live";
  load.csv_text = core::write_aggregates_csv_text(base);
  load.series_text = core::write_series_csv_text(base);

  serve::MutateRequest add;
  add.id = "a";
  add.op = serve::MutateOp::AddWorkload;
  add.suite = "live";
  add.csv_text = core::write_aggregates_csv_text(extra);
  add.series_text = core::write_series_csv_text(extra);

  serve::MutateRequest drop;
  drop.id = "d";
  drop.op = serve::MutateOp::DropWorkload;
  drop.suite = "live";
  drop.workload = extra.workload_names()[0];

  Router router(router_options(2));
  serve::Engine engine;
  for (const auto* request : {&load, &add, &drop}) {
    const auto from_router = router.mutate(*request);
    const auto from_engine = engine.mutate(*request);
    ASSERT_TRUE(from_router.ok) << from_router.message;
    ASSERT_TRUE(from_engine.ok) << from_engine.message;
    EXPECT_EQ(from_router.version, from_engine.version) << request->id;
    EXPECT_EQ(from_router.cache_hit, from_engine.cache_hit) << request->id;
    EXPECT_EQ(from_router.report, from_engine.report) << request->id;
  }

  // The resident name scores through the same worker, bypassing the
  // router cache tiers — the report is the drop re-score's bytes.
  ScoreRequest by_name;
  by_name.id = "s";
  by_name.builtin = "live";
  const ScoreResponse scored = router.score(by_name);
  ASSERT_TRUE(scored.ok) << scored.message;
  EXPECT_TRUE(scored.cache_hit);  // the worker's honest content-cache hit
  EXPECT_EQ(scored.report, engine.score(by_name).report);
  EXPECT_EQ(router.cache_entries(), 0u);  // nothing leaked into the router

  // Batch scoring routes resident names the same way.
  const auto batched = router.score_batch({by_name});
  ASSERT_EQ(batched.size(), 1u);
  EXPECT_EQ(batched[0].report, scored.report);
  EXPECT_EQ(router.cache_entries(), 0u);
}

TEST(Router, MutateErrorsAreStructured) {
  Router router(router_options(2));
  serve::MutateRequest drop;
  drop.id = "x";
  drop.op = serve::MutateOp::DropWorkload;
  drop.suite = "never-loaded";
  drop.workload = "w";
  const auto response = router.mutate(drop);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "bad_request");
  EXPECT_NE(response.message.find("unknown resident suite"),
            std::string::npos);
}

TEST(Router, RespawnedWorkerLosesResidentsHonestly) {
  // Residents live in worker memory only. After the owning worker is
  // killed and respawned, a mutation must come back as an honest
  // bad_request — never a hang, a stale answer, or a silent retry.
  const core::CounterMatrix base = serve::simulate_builtin("sebs", 2000);
  serve::MutateRequest load;
  load.id = "l";
  load.op = serve::MutateOp::LoadSuite;
  load.suite = "live";
  load.csv_text = core::write_aggregates_csv_text(base);
  load.series_text = core::write_series_csv_text(base);

  Router router(router_options(2));  // restart_on_crash defaults to true
  ASSERT_TRUE(router.mutate(load).ok);

  for (std::size_t w = 0; w < router.worker_count(); ++w) {
    ASSERT_TRUE(router.kill_worker(w));
  }
  pause_ms(100);
  router.metrics_line("");  // observe the deaths, trigger respawns

  serve::MutateRequest drop;
  drop.id = "d";
  drop.op = serve::MutateOp::DropWorkload;
  drop.suite = "live";
  drop.workload = base.workload_names()[0];
  const auto response = router.mutate(drop);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "bad_request");
  EXPECT_NE(response.message.find("unknown resident suite"),
            std::string::npos);
}

TEST(Router, AgreesWithInProcessEngineOnMatrixRequests) {
  // Direct-API requests (an in-memory CounterMatrix) travel to workers
  // as lossless CSV; the report must match the in-process Engine's
  // byte-for-byte. The router forks before the engine spins its pool.
  Router router(router_options(2));
  serve::Engine engine;

  const auto matrix = std::make_shared<const core::CounterMatrix>(
      serve::simulate_builtin("nbench", 5000));
  ScoreRequest request;
  request.id = "x";
  request.data = matrix;
  request.trace_id = 4;

  const auto from_router = router.score(request);
  const auto from_engine = engine.score(request);
  ASSERT_TRUE(from_router.ok) << from_router.message;
  ASSERT_TRUE(from_engine.ok) << from_engine.message;
  EXPECT_EQ(from_router.report, from_engine.report);
}
