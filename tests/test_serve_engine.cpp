// serve::Engine contract tests.
//
// The load-bearing guarantee is determinism: the `report` of a successful
// response must be byte-identical to the one-shot CLI path
// (core::Perspector + core::suite_report) for the same inputs — at any
// thread count, cold or warm cache, via score() or score_batch(), from
// one thread or many. The concurrency test here also rides the
// debug-tsan CI job, which fails on any data race the mix uncovers.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/counter_matrix.hpp"
#include "core/event_group.hpp"
#include "core/perspector.hpp"
#include "core/report.hpp"
#include "obs/metrics.hpp"
#include "par/thread_pool.hpp"
#include "serve/engine.hpp"

namespace perspector::serve {
namespace {

constexpr std::uint64_t kInstructions = 20'000;
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

struct ThreadCountGuard {
  ~ThreadCountGuard() { par::set_thread_count(0); }
};

core::EventGroup group_by_name(const std::string& name) {
  if (name == "llc") return core::EventGroup::llc();
  if (name == "tlb") return core::EventGroup::tlb();
  if (name == "branch") return core::EventGroup::branch();
  return core::EventGroup::all();
}

/// The reference: exactly what `perspector demo`/`perspector score` print.
std::string one_shot_report(const core::CounterMatrix& data,
                            const std::string& events = "all") {
  core::PerspectorOptions options;
  options.events = group_by_name(events);
  const auto scores = core::Perspector(options).score_suite(data);
  return core::suite_report(data, scores);
}

ScoreRequest builtin_request(const std::string& suite, const std::string& id) {
  ScoreRequest request;
  request.id = id;
  request.builtin = suite;
  request.instructions = kInstructions;
  return request;
}

std::uint64_t counter_value(const std::string& name) {
  for (const auto& snapshot : obs::counters_snapshot()) {
    if (snapshot.name == name) return snapshot.value;
  }
  return 0;
}

TEST(ServeEngine, BuiltinReportMatchesOneShotAtEveryThreadCount) {
  ThreadCountGuard guard;
  par::set_thread_count(1);
  const std::string expected =
      one_shot_report(simulate_builtin("nbench", kInstructions));

  for (std::size_t threads : kThreadCounts) {
    par::set_thread_count(threads);
    Engine engine;
    // Cold: computed through the full pipeline.
    const ScoreResponse cold = engine.score(builtin_request("nbench", "c"));
    ASSERT_TRUE(cold.ok) << cold.message;
    EXPECT_FALSE(cold.cache_hit);
    EXPECT_EQ(cold.report, expected) << "threads=" << threads;
    // Warm: served from the result cache, still the same bytes.
    const ScoreResponse warm = engine.score(builtin_request("nbench", "w"));
    ASSERT_TRUE(warm.ok);
    EXPECT_TRUE(warm.cache_hit);
    EXPECT_EQ(warm.report, expected) << "threads=" << threads;
    EXPECT_EQ(warm.id, "w");  // ids echo per request, even on hits
  }
}

TEST(ServeEngine, InlineDataAndEventFilterMatchOneShot) {
  ThreadCountGuard guard;
  par::set_thread_count(2);
  const auto data = std::make_shared<const core::CounterMatrix>(
      simulate_builtin("lmbench", kInstructions));

  for (const std::string events : {"all", "llc", "branch"}) {
    ScoreRequest request;
    request.id = events;
    request.data = data;
    request.events = events;
    Engine engine;
    const ScoreResponse response = engine.score(request);
    ASSERT_TRUE(response.ok) << response.message;
    EXPECT_EQ(response.report, one_shot_report(*data, events));
  }
}

TEST(ServeEngine, EventFilterIsPartOfTheCacheKey) {
  ThreadCountGuard guard;
  par::set_thread_count(1);
  const auto data = std::make_shared<const core::CounterMatrix>(
      simulate_builtin("nbench", kInstructions));
  Engine engine;
  ScoreRequest all;
  all.data = data;
  ScoreRequest llc;
  llc.data = data;
  llc.events = "llc";

  ASSERT_FALSE(engine.score(all).cache_hit);
  // Same bytes, different filter: must be a miss, not a poisoned hit.
  const ScoreResponse filtered = engine.score(llc);
  ASSERT_TRUE(filtered.ok);
  EXPECT_FALSE(filtered.cache_hit);
  EXPECT_EQ(filtered.report, one_shot_report(*data, "llc"));
  EXPECT_EQ(engine.cache_entries(), 2u);
}

TEST(ServeEngine, ZeroCacheBudgetRecomputesEveryTime) {
  ThreadCountGuard guard;
  par::set_thread_count(1);
  EngineOptions options;
  options.cache_bytes = 0;
  Engine engine(options);
  const std::string expected =
      one_shot_report(simulate_builtin("nbench", kInstructions));
  for (int i = 0; i < 2; ++i) {
    const ScoreResponse response =
        engine.score(builtin_request("nbench", std::to_string(i)));
    ASSERT_TRUE(response.ok);
    EXPECT_FALSE(response.cache_hit);
    EXPECT_EQ(response.report, expected);
  }
  EXPECT_EQ(engine.cache_entries(), 0u);
}

TEST(ServeEngine, InvalidRequestsAreStructuredBadRequests) {
  Engine engine;
  EXPECT_EQ(engine.score(builtin_request("notasuite", "x")).error,
            "bad_request");
  ScoreRequest empty;
  EXPECT_EQ(engine.score(empty).error, "bad_request");
  ScoreRequest bad_events = builtin_request("nbench", "y");
  bad_events.events = "cachey";
  const ScoreResponse response = engine.score(bad_events);
  EXPECT_EQ(response.error, "bad_request");
  EXPECT_NE(response.message.find("event group"), std::string::npos);
}

TEST(ServeEngine, BatchDeduplicatesAndPreservesOrder) {
  ThreadCountGuard guard;
  par::set_thread_count(4);
  obs::reset_metrics();
  Engine engine;
  const std::string nbench =
      one_shot_report(simulate_builtin("nbench", kInstructions));
  const std::string lmbench =
      one_shot_report(simulate_builtin("lmbench", kInstructions));

  std::vector<ScoreRequest> batch;
  batch.push_back(builtin_request("nbench", "0"));
  batch.push_back(builtin_request("lmbench", "1"));
  batch.push_back(builtin_request("nbench", "2"));    // dup of 0
  batch.push_back(builtin_request("lmbench", "3"));   // dup of 1
  batch.push_back(builtin_request("nbench", "4"));    // dup of 0
  const auto responses = engine.score_batch(batch);

  ASSERT_EQ(responses.size(), batch.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok) << responses[i].message;
    EXPECT_EQ(responses[i].id, std::to_string(i));
    EXPECT_EQ(responses[i].report, i % 2 == 0 ? nbench : lmbench);
  }
  // Two computations, three coalesced copies.
  EXPECT_FALSE(responses[0].cache_hit);
  EXPECT_FALSE(responses[1].cache_hit);
  EXPECT_TRUE(responses[2].cache_hit);
  EXPECT_TRUE(responses[3].cache_hit);
  EXPECT_TRUE(responses[4].cache_hit);
  EXPECT_EQ(counter_value("serve.requests"), 5u);
  EXPECT_EQ(counter_value("serve.cache_miss"), 2u);
  EXPECT_EQ(counter_value("serve.cache_hit"), 3u);
  EXPECT_EQ(counter_value("serve.coalesced"), 3u);
}

TEST(ServeEngine, BatchSharesErrorsAcrossDuplicates) {
  Engine engine;
  std::vector<ScoreRequest> batch;
  batch.push_back(builtin_request("notasuite", "0"));
  batch.push_back(builtin_request("notasuite", "1"));
  const auto responses = engine.score_batch(batch);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].error, "bad_request");
  EXPECT_EQ(responses[1].error, "bad_request");
  EXPECT_EQ(responses[1].id, "1");
}

// The ISSUE.md acceptance scenario: N client threads against one warm
// engine at --threads 4, a mix of identical and distinct requests; every
// response byte-identical to the serial one-shot report, and the engine's
// accounting must satisfy cache_hit + cache_miss == requests.
TEST(ServeEngine, ConcurrentMixedClientsStayDeterministic) {
  ThreadCountGuard guard;
  par::set_thread_count(1);
  const std::string nbench =
      one_shot_report(simulate_builtin("nbench", kInstructions));
  const std::string lmbench =
      one_shot_report(simulate_builtin("lmbench", kInstructions));

  par::set_thread_count(4);
  obs::reset_metrics();
  Engine engine;
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kPerClient = 4;
  std::vector<std::vector<ScoreResponse>> responses(kClients);

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&engine, &responses, c] {
      for (std::size_t r = 0; r < kPerClient; ++r) {
        // Half the clients hammer the same suite (coalescing/caching
        // path), half alternate (distinct-content path).
        const bool nb = c % 2 == 0 || r % 2 == 0;
        responses[c].push_back(engine.score(builtin_request(
            nb ? "nbench" : "lmbench",
            std::to_string(c) + ":" + std::to_string(r))));
      }
    });
  }
  for (auto& t : clients) t.join();

  for (std::size_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[c].size(), kPerClient);
    for (std::size_t r = 0; r < kPerClient; ++r) {
      const auto& response = responses[c][r];
      ASSERT_TRUE(response.ok) << response.message;
      EXPECT_EQ(response.id,
                std::to_string(c) + ":" + std::to_string(r));
      const bool nb = c % 2 == 0 || r % 2 == 0;
      EXPECT_EQ(response.report, nb ? nbench : lmbench)
          << "client=" << c << " request=" << r;
    }
  }
  const std::uint64_t requests = counter_value("serve.requests");
  EXPECT_EQ(requests, kClients * kPerClient);
  EXPECT_EQ(counter_value("serve.errors"), 0u);
  EXPECT_EQ(counter_value("serve.cache_hit") +
                counter_value("serve.cache_miss"),
            requests);
}

}  // namespace
}  // namespace perspector::serve
