#include "cluster/silhouette.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cluster/kmeans.hpp"
#include "stats/rng.hpp"

namespace perspector::cluster {
namespace {

TEST(Silhouette, ValidatesInput) {
  la::Matrix points{{0.0}, {1.0}};
  const std::vector<std::size_t> short_labels{0};
  EXPECT_THROW(silhouette_values(points, short_labels, 2),
               std::invalid_argument);
  const std::vector<std::size_t> bad_labels{0, 5};
  EXPECT_THROW(silhouette_values(points, bad_labels, 2),
               std::invalid_argument);
}

TEST(Silhouette, SingleClusterScoresZero) {
  la::Matrix points{{0.0}, {1.0}, {2.0}};
  const std::vector<std::size_t> labels{0, 0, 0};
  EXPECT_DOUBLE_EQ(silhouette_score(points, labels, 1), 0.0);
  for (double v : silhouette_values(points, labels, 1)) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(Silhouette, HandComputedCase) {
  // Points on a line: {0, 1} in cluster 0; {10, 11} in cluster 1.
  // For point 0: eta = 1, lambda = (10+11)/2 = 10.5, s = 9.5/10.5.
  la::Matrix points{{0.0}, {1.0}, {10.0}, {11.0}};
  const std::vector<std::size_t> labels{0, 0, 1, 1};
  const auto values = silhouette_values(points, labels, 2);
  EXPECT_NEAR(values[0], 9.5 / 10.5, 1e-12);
  // For point 1: eta = 1, lambda = (9+10)/2 = 9.5.
  EXPECT_NEAR(values[1], 8.5 / 9.5, 1e-12);
  // Symmetry: cluster 1 mirrors cluster 0.
  EXPECT_NEAR(values[2], values[1], 1e-12);
  EXPECT_NEAR(values[3], values[0], 1e-12);
}

TEST(Silhouette, PerClusterAndSuiteAggregation) {
  la::Matrix points{{0.0}, {1.0}, {10.0}, {11.0}};
  const std::vector<std::size_t> labels{0, 0, 1, 1};
  const auto per_cluster = silhouette_per_cluster(points, labels, 2);
  ASSERT_EQ(per_cluster.size(), 2u);
  EXPECT_NEAR(per_cluster[0], (9.5 / 10.5 + 8.5 / 9.5) / 2.0, 1e-12);
  EXPECT_NEAR(per_cluster[0], per_cluster[1], 1e-12);

  const double suite = silhouette_score(points, labels, 2);
  EXPECT_NEAR(suite, per_cluster[0], 1e-12);
  // With equal cluster sizes, Eq. 5 equals the pointwise mean.
  EXPECT_NEAR(suite, silhouette_score_pointwise(points, labels, 2), 1e-12);
}

TEST(Silhouette, ClusterWeightedVsPointwiseDiffer) {
  // Unequal cluster sizes: Eq. 5 (cluster mean) != point mean.
  la::Matrix points{{0.0}, {0.1}, {0.2}, {10.0}};
  const std::vector<std::size_t> labels{0, 0, 0, 1};
  const double by_cluster = silhouette_score(points, labels, 2);
  const double by_point = silhouette_score_pointwise(points, labels, 2);
  // Cluster 1 is a singleton scoring 0, dragging the cluster-mean down by
  // half; pointwise it only counts 1/4.
  EXPECT_LT(by_cluster, by_point);
}

TEST(Silhouette, SingletonClusterScoresZero) {
  la::Matrix points{{0.0}, {5.0}, {5.1}};
  const std::vector<std::size_t> labels{0, 1, 1};
  const auto values = silhouette_values(points, labels, 2);
  EXPECT_DOUBLE_EQ(values[0], 0.0);
  EXPECT_GT(values[1], 0.9);
}

TEST(Silhouette, WellSeparatedBeatsOverlapping) {
  stats::Rng rng(31);
  const auto make = [&](double separation) {
    la::Matrix points(20, 2);
    std::vector<std::size_t> labels(20);
    for (std::size_t i = 0; i < 10; ++i) {
      points(i, 0) = rng.normal(0.0, 1.0);
      points(i, 1) = rng.normal(0.0, 1.0);
      labels[i] = 0;
      points(10 + i, 0) = rng.normal(separation, 1.0);
      points(10 + i, 1) = rng.normal(separation, 1.0);
      labels[10 + i] = 1;
    }
    return silhouette_score(points, labels, 2);
  };
  EXPECT_GT(make(20.0), make(1.0));
}

// Property: silhouette values are always within [-1, 1] for k-means labels
// at any k.
class SilhouetteBounds : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SilhouetteBounds, ValuesInRange) {
  stats::Rng rng(32);
  la::Matrix points(18, 4);
  for (std::size_t r = 0; r < 18; ++r) {
    for (std::size_t c = 0; c < 4; ++c) points(r, c) = rng.uniform();
  }
  KMeansConfig config;
  config.k = GetParam();
  const auto result = kmeans(points, config);
  for (double v : silhouette_values(points, result.labels, config.k)) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
  const double suite = silhouette_score(points, result.labels, config.k);
  EXPECT_GE(suite, -1.0);
  EXPECT_LE(suite, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Ks, SilhouetteBounds,
                         ::testing::Values(2, 3, 4, 6, 9, 17));

}  // namespace
}  // namespace perspector::cluster
