#include "sampling/latin_hypercube.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace perspector::sampling {
namespace {

TEST(Lhs, ValidatesInput) {
  EXPECT_THROW(latin_hypercube(0, 3), std::invalid_argument);
  EXPECT_THROW(latin_hypercube(3, 0), std::invalid_argument);
  EXPECT_THROW(uniform_samples(0, 3), std::invalid_argument);
  EXPECT_THROW(maximin_latin_hypercube(4, 2, 0), std::invalid_argument);
}

TEST(Lhs, ShapeAndBounds) {
  const la::Matrix p = latin_hypercube(10, 4);
  EXPECT_EQ(p.rows(), 10u);
  EXPECT_EQ(p.cols(), 4u);
  for (double v : p.data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Lhs, SatisfiesLatinProperty) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    LhsOptions options;
    options.seed = seed;
    EXPECT_TRUE(is_latin(latin_hypercube(16, 5, options)));
  }
}

TEST(Lhs, CenteredSamplesSitAtStratumCenters) {
  LhsOptions options;
  options.centered = true;
  const la::Matrix p = latin_hypercube(4, 2, options);
  for (double v : p.data()) {
    // Centers are (i + 0.5)/4.
    const double scaled = v * 4.0 - 0.5;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-12);
  }
  EXPECT_TRUE(is_latin(p));
}

TEST(Lhs, DeterministicForSeed) {
  LhsOptions options;
  options.seed = 77;
  EXPECT_EQ(latin_hypercube(8, 3, options), latin_hypercube(8, 3, options));
}

TEST(Lhs, IsLatinDetectsViolations) {
  la::Matrix p(2, 1);
  p(0, 0) = 0.1;
  p(1, 0) = 0.2;  // both in the first of two strata
  EXPECT_FALSE(is_latin(p));
  p(1, 0) = 1.7;  // out of bounds
  EXPECT_FALSE(is_latin(p));
  EXPECT_FALSE(is_latin(la::Matrix{}));
}

TEST(Lhs, UniformSamplesAreNotLatinUsually) {
  // With 32 samples the probability that iid uniforms are accidentally
  // Latin in every dimension is astronomically small.
  EXPECT_FALSE(is_latin(uniform_samples(32, 3, 5)));
}

TEST(Lhs, MinPairwiseDistance) {
  la::Matrix p{{0.0, 0.0}, {3.0, 4.0}, {0.0, 1.0}};
  EXPECT_DOUBLE_EQ(min_pairwise_distance(p), 1.0);
  EXPECT_DOUBLE_EQ(min_pairwise_distance(la::Matrix(1, 2)), 0.0);
}

TEST(Lhs, MaximinImprovesOrMatchesSingleDraw) {
  LhsOptions options;
  options.seed = 123;
  const double single =
      min_pairwise_distance(latin_hypercube(12, 4, options));
  const double maximin =
      min_pairwise_distance(maximin_latin_hypercube(12, 4, 32, options));
  EXPECT_GE(maximin, single * 0.99);  // the candidate set includes stronger draws
  EXPECT_TRUE(is_latin(maximin_latin_hypercube(12, 4, 8, options)));
}

TEST(Lhs, BetterSpaceFillingThanUniformOnAverage) {
  double lhs_total = 0.0, uniform_total = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    LhsOptions options;
    options.seed = seed;
    lhs_total += min_pairwise_distance(latin_hypercube(16, 3, options));
    uniform_total += min_pairwise_distance(uniform_samples(16, 3, seed));
  }
  EXPECT_GT(lhs_total, uniform_total);
}

// Property: the Latin guarantee holds across sample counts and dimensions.
class LhsProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(LhsProperty, AlwaysLatin) {
  const auto [samples, dims] = GetParam();
  LhsOptions options;
  options.seed = samples * 31 + dims;
  EXPECT_TRUE(is_latin(latin_hypercube(samples, dims, options)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LhsProperty,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{2, 7},
                      std::pair<std::size_t, std::size_t>{8, 14},
                      std::pair<std::size_t, std::size_t>{43, 14},
                      std::pair<std::size_t, std::size_t>{100, 3}));

// Re-entrant candidate draws (the async-job search): candidate i is a
// pure function of (seed, i), so draws are order-independent and a
// resumed search reconstructs them bit-identically from the frontier.

TEST(LhsCandidate, SeedsAreDistinctAcrossIndicesAndRoots) {
  EXPECT_NE(candidate_seed(7, 0), candidate_seed(7, 1));
  EXPECT_NE(candidate_seed(7, 0), candidate_seed(8, 0));
  // Nearby (seed, index) pairs must not collide through the mixer: the
  // naive seed+index would alias (7,1) with (8,0).
  EXPECT_NE(candidate_seed(7, 1), candidate_seed(8, 0));
  EXPECT_EQ(candidate_seed(7, 3), candidate_seed(7, 3));
}

TEST(LhsCandidate, DrawsAreLatinAndDeterministic) {
  for (std::uint64_t index : {0u, 1u, 5u, 63u}) {
    const la::Matrix draw = latin_hypercube_candidate(8, 5, 1234, index);
    EXPECT_TRUE(is_latin(draw)) << "candidate " << index;
    EXPECT_EQ(draw, latin_hypercube_candidate(8, 5, 1234, index));
  }
}

TEST(LhsCandidate, DrawsDifferAcrossIndices) {
  EXPECT_NE(latin_hypercube_candidate(8, 5, 1234, 0),
            latin_hypercube_candidate(8, 5, 1234, 1));
  EXPECT_NE(latin_hypercube_candidate(8, 5, 1234, 0),
            latin_hypercube_candidate(8, 5, 4321, 0));
}

TEST(LhsCandidate, DrawIsIndependentOfEvaluationOrder) {
  // Reading candidates 5,2,7 then 2 again yields the same matrices as a
  // fresh in-order walk — no hidden stream state.
  const la::Matrix out_of_order_first = latin_hypercube_candidate(6, 4, 9, 5);
  const la::Matrix second = latin_hypercube_candidate(6, 4, 9, 2);
  latin_hypercube_candidate(6, 4, 9, 7);
  EXPECT_EQ(latin_hypercube_candidate(6, 4, 9, 2), second);
  EXPECT_EQ(latin_hypercube_candidate(6, 4, 9, 5), out_of_order_first);
}

}  // namespace
}  // namespace perspector::sampling
