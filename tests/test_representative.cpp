#include "sampling/representative.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace perspector::sampling {
namespace {

TEST(Representative, ValidatesInput) {
  la::Matrix targets(2, 2);
  la::Matrix wrong_dims(3, 3);
  EXPECT_THROW(match_nearest(targets, wrong_dims), std::invalid_argument);
  EXPECT_THROW(match_nearest(la::Matrix{}, targets), std::invalid_argument);
  la::Matrix too_few(1, 2);
  EXPECT_THROW(match_nearest_distinct(targets, too_few),
               std::invalid_argument);
}

TEST(Representative, NearestPicksClosest) {
  la::Matrix targets{{0.0, 0.0}, {10.0, 10.0}};
  la::Matrix candidates{{9.0, 9.0}, {1.0, 1.0}, {5.0, 5.0}};
  const auto picks = match_nearest(targets, candidates);
  EXPECT_EQ(picks[0], 1u);
  EXPECT_EQ(picks[1], 0u);
}

TEST(Representative, NearestAllowsReuse) {
  la::Matrix targets{{0.0}, {0.1}};
  la::Matrix candidates{{0.0}, {100.0}};
  const auto picks = match_nearest(targets, candidates);
  EXPECT_EQ(picks[0], 0u);
  EXPECT_EQ(picks[1], 0u);
}

TEST(RepresentativeDistinct, NoCandidateReused) {
  la::Matrix targets{{0.0}, {0.1}, {0.2}};
  la::Matrix candidates{{0.0}, {50.0}, {100.0}, {0.05}};
  auto picks = match_nearest_distinct(targets, candidates);
  std::sort(picks.begin(), picks.end());
  EXPECT_EQ(std::unique(picks.begin(), picks.end()), picks.end());
}

TEST(RepresentativeDistinct, GreedyGlobalOrder) {
  // Target 0 at 0.0, target 1 at 0.9; candidates at 0.0 and 1.0.
  // The tightest pair (t0, c0) matches first, then t1 takes c1.
  la::Matrix targets{{0.0}, {0.9}};
  la::Matrix candidates{{0.0}, {1.0}};
  const auto picks = match_nearest_distinct(targets, candidates);
  EXPECT_EQ(picks[0], 0u);
  EXPECT_EQ(picks[1], 1u);
}

TEST(RepresentativeDistinct, ContestedCandidateGoesToCloserTarget) {
  // Both targets closest to candidate 0; the closer target wins it and the
  // other falls back to its second choice.
  la::Matrix targets{{0.01}, {0.2}};
  la::Matrix candidates{{0.0}, {0.3}};
  const auto picks = match_nearest_distinct(targets, candidates);
  EXPECT_EQ(picks[0], 0u);
  EXPECT_EQ(picks[1], 1u);
}

TEST(RepresentativeDistinct, ExactCoverWhenCountsEqual) {
  la::Matrix targets{{1.0}, {2.0}, {3.0}};
  la::Matrix candidates{{3.1}, {1.1}, {2.1}};
  auto picks = match_nearest_distinct(targets, candidates);
  EXPECT_EQ(picks[0], 1u);
  EXPECT_EQ(picks[1], 2u);
  EXPECT_EQ(picks[2], 0u);
}

}  // namespace
}  // namespace perspector::sampling
