#include "sim/pmu.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace perspector::sim {
namespace {

TEST(Pmu, EventNamesDistinctAndComplete) {
  const auto names = pmu_event_names();
  EXPECT_EQ(names.size(), kPmuEventCount);
  const std::set<std::string> distinct(names.begin(), names.end());
  EXPECT_EQ(distinct.size(), kPmuEventCount);
  EXPECT_EQ(names.front(), "cpu-cycles");
  EXPECT_EQ(names.back(), "LLC-store-misses");
}

TEST(Pmu, AllEventsEnumInOrder) {
  const auto events = all_pmu_events();
  ASSERT_EQ(events.size(), kPmuEventCount);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(events[i]), i);
  }
}

TEST(PmuCounterSet, IndexingAndVector) {
  PmuCounterSet c;
  c[PmuEvent::CpuCycles] = 100;
  c[PmuEvent::LlcStoreMisses] = 7;
  const auto v = c.as_vector();
  EXPECT_DOUBLE_EQ(v[0], 100.0);
  EXPECT_DOUBLE_EQ(v[13], 7.0);
}

TEST(PmuCounterSet, DeltaSince) {
  PmuCounterSet early, late;
  early[PmuEvent::PageFaults] = 5;
  late[PmuEvent::PageFaults] = 12;
  const auto d = late.delta_since(early);
  EXPECT_EQ(d[PmuEvent::PageFaults], 7u);
  EXPECT_THROW(early.delta_since(late), std::invalid_argument);
}

TEST(PmuSampler, ValidatesInterval) {
  EXPECT_THROW(PmuSampler(0), std::invalid_argument);
}

TEST(PmuSampler, SamplesAtBoundaries) {
  PmuSampler sampler(100);
  PmuCounterSet c;
  c[PmuEvent::CpuCycles] = 50;
  sampler.maybe_sample(50, c);  // below boundary: no sample
  EXPECT_EQ(sampler.sample_count(), 0u);
  c[PmuEvent::CpuCycles] = 120;
  sampler.maybe_sample(100, c);  // boundary crossed
  EXPECT_EQ(sampler.sample_count(), 1u);
  EXPECT_EQ(sampler.series(PmuEvent::CpuCycles)[0], 120.0);
}

TEST(PmuSampler, DeltasNotAbsolutes) {
  PmuSampler sampler(10);
  PmuCounterSet c;
  c[PmuEvent::BranchMisses] = 4;
  sampler.maybe_sample(10, c);
  c[PmuEvent::BranchMisses] = 9;
  sampler.maybe_sample(20, c);
  const auto series = sampler.series(PmuEvent::BranchMisses);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 4.0);
  EXPECT_DOUBLE_EQ(series[1], 5.0);
}

TEST(PmuSampler, CatchesUpOverMultipleBoundaries) {
  PmuSampler sampler(10);
  PmuCounterSet c;
  c[PmuEvent::CpuCycles] = 30;
  sampler.maybe_sample(35, c);  // crossed 10, 20, 30 at once
  EXPECT_EQ(sampler.sample_count(), 3u);
}

TEST(PmuSampler, FinalizeFlushesTail) {
  PmuSampler sampler(100);
  PmuCounterSet c;
  c[PmuEvent::CpuCycles] = 70;
  sampler.finalize(70, c);
  EXPECT_EQ(sampler.sample_count(), 1u);
  // A second finalize at the same instruction count is a no-op.
  sampler.finalize(70, c);
  EXPECT_EQ(sampler.sample_count(), 1u);
}

TEST(PmuSampler, AllSeriesShapeConsistent) {
  PmuSampler sampler(10);
  PmuCounterSet c;
  for (int s = 1; s <= 5; ++s) {
    c[PmuEvent::CpuCycles] += 10;
    sampler.maybe_sample(static_cast<std::uint64_t>(s) * 10, c);
  }
  const auto all = sampler.all_series();
  EXPECT_EQ(all.size(), kPmuEventCount);
  for (const auto& series : all) EXPECT_EQ(series.size(), 5u);
}

}  // namespace
}  // namespace perspector::sim
