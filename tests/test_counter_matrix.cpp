#include "core/counter_matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace perspector::core {
namespace {

CounterMatrix sample_matrix() {
  la::Matrix values{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  std::vector<std::vector<std::vector<double>>> series{
      {{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}},
      {{4.0, 4.0}, {5.0, 5.0}, {6.0, 6.0}},
  };
  return CounterMatrix("demo", {"w0", "w1"}, {"c0", "c1", "c2"}, values,
                       series);
}

TEST(CounterMatrix, ValidatesShapes) {
  la::Matrix values(2, 3);
  EXPECT_THROW(CounterMatrix("s", {"w0"}, {"c0", "c1", "c2"}, values),
               std::invalid_argument);
  EXPECT_THROW(CounterMatrix("s", {"w0", "w1"}, {"c0"}, values),
               std::invalid_argument);
  // Series with wrong workload count.
  EXPECT_THROW(CounterMatrix("s", {"w0", "w1"}, {"c0", "c1", "c2"}, values,
                             {{{1.0}, {1.0}, {1.0}}}),
               std::invalid_argument);
  // Series with wrong counter count.
  EXPECT_THROW(CounterMatrix("s", {"w0", "w1"}, {"c0", "c1", "c2"}, values,
                             {{{1.0}}, {{1.0}}}),
               std::invalid_argument);
}

TEST(CounterMatrix, BasicAccessors) {
  const CounterMatrix m = sample_matrix();
  EXPECT_EQ(m.suite_name(), "demo");
  EXPECT_EQ(m.num_workloads(), 2u);
  EXPECT_EQ(m.num_counters(), 3u);
  EXPECT_DOUBLE_EQ(m.value(1, 2), 6.0);
  EXPECT_TRUE(m.has_series());
  EXPECT_EQ(m.series(0, 1), (std::vector<double>{2.0, 2.0}));
  EXPECT_THROW(m.series(2, 0), std::out_of_range);
}

TEST(CounterMatrix, NoSeriesVariant) {
  la::Matrix values(1, 1, 5.0);
  const CounterMatrix m("s", {"w"}, {"c"}, values);
  EXPECT_FALSE(m.has_series());
  EXPECT_THROW(m.series(0, 0), std::logic_error);
}

TEST(CounterMatrix, IndexLookups) {
  const CounterMatrix m = sample_matrix();
  EXPECT_EQ(m.counter_index("c1"), 1u);
  EXPECT_EQ(m.workload_index("w1"), 1u);
  EXPECT_THROW(m.counter_index("missing"), std::invalid_argument);
  EXPECT_THROW(m.workload_index("missing"), std::invalid_argument);
}

TEST(CounterMatrix, SelectCounters) {
  const CounterMatrix m = sample_matrix();
  const CounterMatrix sub = m.select_counters({2, 0});
  EXPECT_EQ(sub.num_counters(), 2u);
  EXPECT_EQ(sub.counter_names(), (std::vector<std::string>{"c2", "c0"}));
  EXPECT_DOUBLE_EQ(sub.value(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sub.value(1, 1), 4.0);
  // Series filtered in the same order.
  EXPECT_EQ(sub.series(0, 0), (std::vector<double>{3.0, 3.0}));
  EXPECT_THROW(m.select_counters({5}), std::out_of_range);
}

TEST(CounterMatrix, SelectWorkloads) {
  const CounterMatrix m = sample_matrix();
  const CounterMatrix sub = m.select_workloads({1});
  EXPECT_EQ(sub.num_workloads(), 1u);
  EXPECT_EQ(sub.workload_names(), (std::vector<std::string>{"w1"}));
  EXPECT_DOUBLE_EQ(sub.value(0, 0), 4.0);
  EXPECT_EQ(sub.series(0, 2), (std::vector<double>{6.0, 6.0}));
  EXPECT_THROW(m.select_workloads({7}), std::out_of_range);
}

TEST(CounterMatrix, MergePoolsSuites) {
  const CounterMatrix a = sample_matrix();
  la::Matrix values(1, 3, 9.0);
  std::vector<std::vector<std::vector<double>>> series{
      {{9.0}, {9.0}, {9.0}}};
  const CounterMatrix b("other", {"w9"}, {"c0", "c1", "c2"}, values, series);

  const CounterMatrix merged = CounterMatrix::merge("pool", {a, b});
  EXPECT_EQ(merged.suite_name(), "pool");
  EXPECT_EQ(merged.num_workloads(), 3u);
  EXPECT_EQ(merged.workload_names(),
            (std::vector<std::string>{"demo/w0", "demo/w1", "other/w9"}));
  EXPECT_DOUBLE_EQ(merged.value(2, 1), 9.0);
  EXPECT_TRUE(merged.has_series());
  EXPECT_EQ(merged.series(0, 0), a.series(0, 0));
  EXPECT_EQ(merged.series(2, 2), (std::vector<double>{9.0}));
}

TEST(CounterMatrix, MergeDropsSeriesWhenAnyPartLacksThem) {
  const CounterMatrix a = sample_matrix();
  la::Matrix values(1, 3, 1.0);
  const CounterMatrix bare("bare", {"w"}, {"c0", "c1", "c2"}, values);
  const CounterMatrix merged = CounterMatrix::merge("pool", {a, bare});
  EXPECT_FALSE(merged.has_series());
  EXPECT_EQ(merged.num_workloads(), 3u);
}

TEST(CounterMatrix, MergeValidates) {
  EXPECT_THROW(CounterMatrix::merge("pool", {}), std::invalid_argument);
  const CounterMatrix a = sample_matrix();
  la::Matrix values(1, 2, 1.0);
  const CounterMatrix mismatched("m", {"w"}, {"x", "y"}, values);
  EXPECT_THROW(CounterMatrix::merge("pool", {a, mismatched}),
               std::invalid_argument);
}

TEST(CounterMatrix, FromSimResults) {
  sim::SimResult r1, r2;
  r1.workload = "a";
  r1.totals[sim::PmuEvent::CpuCycles] = 100;
  r1.series.assign(sim::kPmuEventCount, {1.0, 2.0});
  r2.workload = "b";
  r2.totals[sim::PmuEvent::CpuCycles] = 200;
  r2.series.assign(sim::kPmuEventCount, {3.0, 4.0});

  const auto m = CounterMatrix::from_sim_results("suite", {r1, r2});
  EXPECT_EQ(m.num_workloads(), 2u);
  EXPECT_EQ(m.num_counters(), sim::kPmuEventCount);
  EXPECT_DOUBLE_EQ(m.value(0, 0), 100.0);
  EXPECT_DOUBLE_EQ(m.value(1, 0), 200.0);
  EXPECT_EQ(m.counter_names()[0], "cpu-cycles");

  EXPECT_THROW(CounterMatrix::from_sim_results("s", {}),
               std::invalid_argument);
  // Inconsistent series presence rejected.
  sim::SimResult bare;
  bare.workload = "c";
  EXPECT_THROW(CounterMatrix::from_sim_results("s", {r1, bare}),
               std::invalid_argument);
}

}  // namespace
}  // namespace perspector::core
