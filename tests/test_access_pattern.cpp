#include "sim/access_pattern.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>

namespace perspector::sim {
namespace {

constexpr std::uint64_t kBase = 1ull << 30;

AccessPatternGen make(AccessPatternKind kind, std::uint64_t ws,
                      std::uint64_t stride = 8) {
  AccessPatternParams params;
  params.kind = kind;
  params.working_set_bytes = ws;
  params.stride_bytes = stride;
  return AccessPatternGen(params, kBase, stats::Rng(7));
}

TEST(AccessPattern, ValidatesParams) {
  AccessPatternParams params;
  params.working_set_bytes = 4;
  EXPECT_THROW(AccessPatternGen(params, 0, stats::Rng(1)),
               std::invalid_argument);
  params.working_set_bytes = 1024;
  params.stride_bytes = 0;
  EXPECT_THROW(AccessPatternGen(params, 0, stats::Rng(1)),
               std::invalid_argument);
}

TEST(AccessPattern, SequentialAdvancesByStrideAndWraps) {
  auto gen = make(AccessPatternKind::Sequential, 32, 8);
  EXPECT_EQ(gen.next(), kBase + 0);
  EXPECT_EQ(gen.next(), kBase + 8);
  EXPECT_EQ(gen.next(), kBase + 16);
  EXPECT_EQ(gen.next(), kBase + 24);
  EXPECT_EQ(gen.next(), kBase + 0);  // wrap
}

TEST(AccessPattern, StridedLargeStride) {
  auto gen = make(AccessPatternKind::Strided, 16384, 4096);
  EXPECT_EQ(gen.next(), kBase + 0);
  EXPECT_EQ(gen.next(), kBase + 4096);
  EXPECT_EQ(gen.next(), kBase + 8192);
}

TEST(AccessPattern, AllAddressesWithinWorkingSet) {
  for (auto kind :
       {AccessPatternKind::Sequential, AccessPatternKind::RandomUniform,
        AccessPatternKind::PointerChase, AccessPatternKind::Zipf,
        AccessPatternKind::GraphTraversal}) {
    auto gen = make(kind, 64 * 1024);
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t addr = gen.next();
      EXPECT_GE(addr, kBase) << to_string(kind);
      EXPECT_LT(addr, kBase + 64 * 1024) << to_string(kind);
    }
  }
}

TEST(AccessPattern, PointerChaseIsAHamiltonianCycle) {
  // Working set of 16 slots (1 KiB / 64B): the chase must visit every slot
  // exactly once before repeating.
  auto gen = make(AccessPatternKind::PointerChase, 1024);
  std::set<std::uint64_t> first_cycle;
  for (int i = 0; i < 16; ++i) first_cycle.insert(gen.next());
  EXPECT_EQ(first_cycle.size(), 16u);
  // Second cycle revisits the same slots.
  std::set<std::uint64_t> second_cycle;
  for (int i = 0; i < 16; ++i) second_cycle.insert(gen.next());
  EXPECT_EQ(first_cycle, second_cycle);
}

TEST(AccessPattern, ZipfSkewsTowardHotSlots) {
  auto gen = make(AccessPatternKind::Zipf, 64 * 1024);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[gen.next()];
  // The hottest address should absorb far more than the uniform share
  // (uniform share over 1024 slots would be ~20).
  int hottest = 0;
  for (const auto& [addr, count] : counts) hottest = std::max(hottest, count);
  EXPECT_GT(hottest, 500);
}

TEST(AccessPattern, RandomUniformCoversSpaceEvenly) {
  auto gen = make(AccessPatternKind::RandomUniform, 4096);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 51200; ++i) ++counts[gen.next()];
  // 512 distinct 8-byte slots; each expected ~100 draws.
  EXPECT_GT(counts.size(), 500u);
  for (const auto& [addr, count] : counts) {
    EXPECT_LT(count, 200);  // no hotspot
  }
}

TEST(AccessPattern, GraphTraversalMixesRunsAndJumps) {
  AccessPatternParams params;
  params.kind = AccessPatternKind::GraphTraversal;
  params.working_set_bytes = 1024 * 1024;
  params.stride_bytes = 8;
  params.jump_prob = 0.3;
  AccessPatternGen gen(params, kBase, stats::Rng(9));
  int sequential_steps = 0, jumps = 0;
  std::uint64_t prev = gen.next();
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t cur = gen.next();
    if (cur == prev + 8 || (cur == kBase && prev != kBase)) {
      ++sequential_steps;
    } else {
      ++jumps;
    }
    prev = cur;
  }
  EXPECT_NEAR(static_cast<double>(jumps) / 10000.0, 0.3, 0.05);
  EXPECT_GT(sequential_steps, 6000);
}

TEST(AccessPattern, DeterministicForSeed) {
  AccessPatternParams params;
  params.kind = AccessPatternKind::RandomUniform;
  params.working_set_bytes = 8192;
  AccessPatternGen a(params, kBase, stats::Rng(5));
  AccessPatternGen b(params, kBase, stats::Rng(5));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(AccessPattern, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(AccessPatternKind::Sequential), "sequential");
  EXPECT_STREQ(to_string(AccessPatternKind::Strided), "strided");
  EXPECT_STREQ(to_string(AccessPatternKind::RandomUniform), "random-uniform");
  EXPECT_STREQ(to_string(AccessPatternKind::PointerChase), "pointer-chase");
  EXPECT_STREQ(to_string(AccessPatternKind::Zipf), "zipf");
  EXPECT_STREQ(to_string(AccessPatternKind::GraphTraversal),
               "graph-traversal");
}

}  // namespace
}  // namespace perspector::sim
