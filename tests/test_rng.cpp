#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

namespace perspector::stats {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(3, 5));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5}));
  EXPECT_THROW(rng.uniform_int(5, 3), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
  // Degenerate probabilities never throw and behave as expected.
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-2.0));  // clamped
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[static_cast<std::size_t>(rng.zipf(10, 1.2))];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
  EXPECT_THROW(rng.zipf(0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.zipf(10, 0.0), std::invalid_argument);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(12);
  auto p = rng.permutation(20);
  std::sort(p.begin(), p.end());
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(p[i], i);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(13);
  auto s = rng.sample_without_replacement(10, 4);
  EXPECT_EQ(s.size(), 4u);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(std::unique(s.begin(), s.end()), s.end());
  for (std::size_t i : s) EXPECT_LT(i, 10u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(14);
  const std::vector<double> weights{0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.4);

  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), std::invalid_argument);
  const std::vector<double> negative{-1.0, 2.0};
  EXPECT_THROW(rng.weighted_index(negative), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(15);
  Rng child = parent.fork();
  // The child stream should not replicate the parent's next draws.
  Rng parent2(15);
  (void)parent2.fork();
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.uniform() == parent.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(16), b(16);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(ca.uniform(), cb.uniform());
  }
}

}  // namespace
}  // namespace perspector::stats
