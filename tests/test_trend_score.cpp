#include "core/trend_score.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stats/rng.hpp"

namespace perspector::core {
namespace {

// Builds a suite whose single counter has the given per-workload series.
CounterMatrix suite_with_series(
    const std::vector<std::vector<double>>& series_per_workload) {
  std::vector<std::string> workloads;
  la::Matrix values;
  std::vector<std::vector<std::vector<double>>> series;
  for (std::size_t w = 0; w < series_per_workload.size(); ++w) {
    workloads.push_back("w" + std::to_string(w));
    double total = 0.0;
    for (double v : series_per_workload[w]) total += v;
    values.append_row(std::vector<double>{total});
    series.push_back({series_per_workload[w]});
  }
  return CounterMatrix("suite", workloads, {"c0"}, values, series);
}

std::vector<double> phase_series(std::size_t length, std::size_t step_at,
                                 double low, double high) {
  std::vector<double> s(length, low);
  for (std::size_t i = step_at; i < length; ++i) s[i] = high;
  return s;
}

TEST(TrendScore, RequiresSeries) {
  la::Matrix values(2, 1, 1.0);
  const CounterMatrix no_series("s", {"a", "b"}, {"c"}, values);
  EXPECT_THROW(trend_score(no_series), std::logic_error);
}

TEST(TrendScore, RequiresTwoWorkloads) {
  const auto suite = suite_with_series({{1.0, 2.0}});
  EXPECT_THROW(trend_score(suite), std::invalid_argument);
}

TEST(TrendScore, IdenticalSeriesScoreZero) {
  const std::vector<double> s(40, 3.0);
  const auto result = trend_score(suite_with_series({s, s, s}));
  EXPECT_DOUBLE_EQ(result.score, 0.0);
}

TEST(TrendScore, FlatSeriesAtDifferentLevelsScoreZero) {
  // Trend measures shape, not level.
  const std::vector<double> low(40, 1.0);
  const std::vector<double> high(40, 1000.0);
  const auto result = trend_score(suite_with_series({low, high}));
  EXPECT_DOUBLE_EQ(result.score, 0.0);
}

TEST(TrendScore, DifferentPhasePositionsScorePositive) {
  const auto early = phase_series(60, 10, 1.0, 100.0);
  const auto late = phase_series(60, 50, 1.0, 100.0);
  const auto result = trend_score(suite_with_series({early, late}));
  EXPECT_GT(result.score, 100.0);
}

TEST(TrendScore, PhasedBeatsSteadySuite) {
  stats::Rng rng(91);
  // Steady suite: flat series with small noise.
  std::vector<std::vector<double>> steady;
  for (int w = 0; w < 4; ++w) {
    std::vector<double> s(50);
    for (double& v : s) v = 100.0 + rng.uniform(-5.0, 5.0);
    steady.push_back(s);
  }
  // Phased suite: steps at different positions.
  std::vector<std::vector<double>> phased;
  for (int w = 0; w < 4; ++w) {
    phased.push_back(
        phase_series(50, 10 + static_cast<std::size_t>(w) * 10, 10.0, 200.0));
  }
  const double steady_score = trend_score(suite_with_series(steady)).score;
  const double phased_score = trend_score(suite_with_series(phased)).score;
  EXPECT_GT(phased_score, 5.0 * steady_score);
}

TEST(TrendScore, PerEventAveraging) {
  // Two counters: one identical everywhere (TScore 0), one phased.
  const auto flat = std::vector<double>(30, 5.0);
  const auto stepped = phase_series(30, 15, 1.0, 50.0);

  la::Matrix values{{150.0, 400.0}, {150.0, 400.0}};
  std::vector<std::vector<std::vector<double>>> series{
      {flat, stepped}, {flat, phase_series(30, 5, 1.0, 50.0)}};
  const CounterMatrix suite("s", {"a", "b"}, {"flat", "stepped"}, values,
                            series);
  const auto result = trend_score(suite);
  ASSERT_EQ(result.per_event.size(), 2u);
  EXPECT_DOUBLE_EQ(result.per_event[0], 0.0);
  EXPECT_GT(result.per_event[1], 0.0);
  // Eq. 8: mean of per-event scores.
  EXPECT_NEAR(result.score, (result.per_event[0] + result.per_event[1]) / 2.0,
              1e-9);
}

TEST(TrendScore, GridPointsControlResolution) {
  const auto early = phase_series(60, 10, 1.0, 100.0);
  const auto late = phase_series(60, 50, 1.0, 100.0);
  const auto suite = suite_with_series({early, late});
  TrendScoreOptions coarse, fine;
  coarse.grid_points = 11;
  fine.grid_points = 201;
  // Scores scale roughly with grid length (sum over path).
  const double c = trend_score(suite, coarse).score;
  const double f = trend_score(suite, fine).score;
  EXPECT_GT(f, 5.0 * c);
}

TEST(TrendScore, BandedDtwUpperBoundsFull) {
  const auto early = phase_series(60, 10, 1.0, 100.0);
  const auto late = phase_series(60, 50, 1.0, 100.0);
  const auto suite = suite_with_series({early, late});
  TrendScoreOptions banded;
  banded.dtw_band_fraction = 0.1;
  EXPECT_GE(trend_score(suite, banded).score,
            trend_score(suite).score - 1e-9);
}

TEST(TrendScore, NormalizationModeSelectable) {
  const auto early = phase_series(60, 10, 1.0, 100.0);
  const auto late = phase_series(60, 50, 1.0, 100.0);
  const auto suite = suite_with_series({early, late});
  for (auto mode : {dtw::TrendNormalization::MeanRelative,
                    dtw::TrendNormalization::RankPercentile,
                    dtw::TrendNormalization::CumulativeShare}) {
    TrendScoreOptions options;
    options.normalization = mode;
    EXPECT_GE(trend_score(suite, options).score, 0.0);
  }
}

}  // namespace
}  // namespace perspector::core
