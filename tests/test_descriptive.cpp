#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace perspector::stats {
namespace {

const std::vector<double> kSample{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(Descriptive, Mean) {
  EXPECT_DOUBLE_EQ(mean(kSample), 5.0);
  EXPECT_THROW(mean(std::vector<double>{}), std::invalid_argument);
}

TEST(Descriptive, PopulationVariance) {
  // Classic example: population stddev of kSample is exactly 2.
  EXPECT_DOUBLE_EQ(variance_population(kSample), 4.0);
  EXPECT_DOUBLE_EQ(stddev_population(kSample), 2.0);
}

TEST(Descriptive, SampleVariance) {
  EXPECT_NEAR(variance_sample(kSample), 32.0 / 7.0, 1e-12);
  EXPECT_THROW(variance_sample(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Descriptive, MinMaxSum) {
  EXPECT_DOUBLE_EQ(min_value(kSample), 2.0);
  EXPECT_DOUBLE_EQ(max_value(kSample), 9.0);
  EXPECT_DOUBLE_EQ(sum(kSample), 40.0);
  EXPECT_DOUBLE_EQ(sum(std::vector<double>{}), 0.0);
}

TEST(Descriptive, MedianEvenAndOdd) {
  EXPECT_DOUBLE_EQ(median(kSample), 4.5);
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
}

TEST(Descriptive, PercentileInterpolation) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  EXPECT_THROW(percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101.0), std::invalid_argument);
}

TEST(Descriptive, PercentileSingleValue) {
  const std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(percentile(one, 75.0), 42.0);
}

TEST(Descriptive, PearsonCorrelation) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  const std::vector<double> z{6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson_correlation(x, z), -1.0, 1e-12);
  const std::vector<double> constant{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, constant), 0.0);
  const std::vector<double> mismatched{1.0};
  EXPECT_THROW(pearson_correlation(x, mismatched), std::invalid_argument);
}

TEST(Descriptive, Summarize) {
  const Summary s = summarize(kSample);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
}

// Property: percentile is monotone in p.
class PercentileMonotone : public ::testing::TestWithParam<double> {};

TEST_P(PercentileMonotone, NondecreasingInP) {
  const double p = GetParam();
  const std::vector<double> xs{5.0, 1.0, 9.0, 3.0, 7.0, 2.0};
  if (p >= 5.0) {
    EXPECT_LE(percentile(xs, p - 5.0), percentile(xs, p));
  }
  EXPECT_GE(percentile(xs, p), min_value(xs));
  EXPECT_LE(percentile(xs, p), max_value(xs));
}

INSTANTIATE_TEST_SUITE_P(Ps, PercentileMonotone,
                         ::testing::Values(0.0, 5.0, 25.0, 50.0, 75.0, 95.0,
                                           100.0));

}  // namespace
}  // namespace perspector::stats
