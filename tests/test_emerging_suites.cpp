#include <gtest/gtest.h>

#include "core/counter_matrix.hpp"
#include "core/perspector.hpp"
#include "suites/suite_factory.hpp"

namespace perspector::suites {
namespace {

SuiteBuildOptions small() {
  SuiteBuildOptions options;
  options.instructions_per_workload = 50'000;
  return options;
}

TEST(EmergingSuites, CountsAndValidation) {
  EXPECT_EQ(riotbench(small()).workloads.size(), 8u);
  EXPECT_EQ(sebs(small()).workloads.size(), 8u);
  EXPECT_EQ(comb(small()).workloads.size(), 6u);
  EXPECT_NO_THROW(riotbench(small()).validate());
  EXPECT_NO_THROW(sebs(small()).validate());
  EXPECT_NO_THROW(comb(small()).validate());
}

TEST(EmergingSuites, StructuralSignatures) {
  // RIoTBench operators are single-phase; SeBS functions all start with a
  // cold-start phase; ComB pipelines are mostly multi-phase.
  for (const auto& w : riotbench(small()).workloads) {
    EXPECT_EQ(w.phases.size(), 1u) << w.name;
  }
  for (const auto& w : sebs(small()).workloads) {
    ASSERT_EQ(w.phases.size(), 2u) << w.name;
    EXPECT_EQ(w.phases[0].name, "cold-start") << w.name;
  }
  std::size_t multi = 0;
  for (const auto& w : comb(small()).workloads) {
    if (w.phases.size() >= 2) ++multi;
  }
  EXPECT_GE(multi, 5u);
}

TEST(EmergingSuites, EndToEndScoring) {
  const auto machine = sim::MachineConfig::xeon_e2186g();
  sim::SimOptions options;
  options.sample_interval = 2'500;
  std::vector<core::CounterMatrix> data;
  for (const auto& spec :
       {riotbench(small()), sebs(small()), comb(small())}) {
    data.push_back(core::collect_counters(spec, machine, options));
  }
  const auto scores = core::Perspector().score_suites(data);
  ASSERT_EQ(scores.size(), 3u);
  for (const auto& s : scores) {
    EXPECT_GT(s.coverage, 0.0) << s.suite;
    EXPECT_GT(s.trend, 0.0) << s.suite;
  }
  // SeBS's cold-start phases beat RIoTBench's steady operators on trend.
  EXPECT_GT(scores[1].trend, scores[0].trend);
}

}  // namespace
}  // namespace perspector::suites
