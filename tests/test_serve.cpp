// Unit tests for the serving layer's building blocks: the JSON
// round-trip (the determinism contract needs exact bytes through the
// wire), content hashing, the LRU result cache, and the protocol
// parser/serializers.
#include <gtest/gtest.h>

#include <string>

#include "core/counter_matrix.hpp"
#include "serve/content_hash.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"

namespace perspector::serve {
namespace {

// ---- json ----------------------------------------------------------------

std::string round_trip(const std::string& text) {
  const json::Value parsed = json::parse("{\"k\":" + json::quoted(text) + "}");
  return parsed.find("k")->string;
}

TEST(ServeJson, QuoteParseRoundTripIsExact) {
  EXPECT_EQ(round_trip(""), "");
  EXPECT_EQ(round_trip("plain text"), "plain text");
  EXPECT_EQ(round_trip("line\nbreaks\tand \"quotes\" \\ back"),
            "line\nbreaks\tand \"quotes\" \\ back");
  // Every control byte must survive (reports never contain them, but the
  // escaper must not be the component that assumes that).
  std::string control;
  for (int c = 1; c < 0x20; ++c) control.push_back(static_cast<char>(c));
  EXPECT_EQ(round_trip(control), control);
  // Multi-byte UTF-8 passes through untouched.
  EXPECT_EQ(round_trip("caf\xc3\xa9 \xe2\x82\xac"), "caf\xc3\xa9 \xe2\x82\xac");
}

TEST(ServeJson, ParsesEscapesAndSurrogatePairs) {
  const json::Value v = json::parse(R"({"s":"a\u0041\n\u00e9\ud83d\ude00"})");
  EXPECT_EQ(v.find("s")->string, "aA\n\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(ServeJson, ParsesNumbersBoolsNullArrays) {
  const json::Value v =
      json::parse(R"({"n":-12.5e1,"t":true,"f":false,"z":null,"a":[1,2]})");
  EXPECT_DOUBLE_EQ(v.find("n")->number, -125.0);
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_FALSE(v.find("f")->boolean);
  EXPECT_EQ(v.find("z")->type, json::Value::Type::Null);
  ASSERT_EQ(v.find("a")->elements.size(), 2u);
  EXPECT_DOUBLE_EQ(v.find("a")->elements[1].number, 2.0);
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_THROW(json::parse(""), std::runtime_error);
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\":01}"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"bad\":\"\\q\"}"), std::runtime_error);
  EXPECT_THROW(json::parse("\"unterminated"), std::runtime_error);
}

TEST(ServeJson, FindReturnsFirstMatchOrNull) {
  const json::Value v = json::parse(R"({"a":1,"a":2})");
  EXPECT_DOUBLE_EQ(v.find("a")->number, 1.0);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(json::parse("[1]").find("a"), nullptr);  // not an object
}

// ---- content hashing ------------------------------------------------------

core::CounterMatrix tiny_matrix(const std::string& name, double seed) {
  la::Matrix values{{seed, seed + 1.0}, {seed + 2.0, seed + 3.0}};
  return core::CounterMatrix(name, {"w0", "w1"}, {"c0", "c1"}, values);
}

TEST(ServeContentHash, SensitiveToEveryField) {
  const auto digest = [](const core::CounterMatrix& m) {
    ContentHasher hasher;
    hash_counter_matrix(hasher, m);
    return hasher.digest();
  };
  const Key128 base = digest(tiny_matrix("suite", 1.0));
  EXPECT_EQ(base, digest(tiny_matrix("suite", 1.0)));  // deterministic
  EXPECT_NE(base, digest(tiny_matrix("other", 1.0)));  // name matters
  EXPECT_NE(base, digest(tiny_matrix("suite", 1.0 + 1e-12)));  // bits matter
}

TEST(ServeContentHash, LengthPrefixPreventsConcatenationAliases) {
  const Key128 a = ContentHasher().str("ab").str("c").digest();
  const Key128 b = ContentHasher().str("a").str("bc").digest();
  EXPECT_NE(a, b);
  EXPECT_NE(ContentHasher().str("").digest(), ContentHasher().digest());
}

// ---- result cache ---------------------------------------------------------

Key128 key_of(std::uint64_t n) { return ContentHasher().u64(n).digest(); }

TEST(ServeResultCache, EvictsLeastRecentlyUsed) {
  // Budget fits exactly two entries of this size.
  const std::string report(256, 'r');
  const std::size_t entry = report.size() + ResultCache::kEntryOverhead;
  ResultCache cache(2 * entry);

  cache.put(key_of(1), report);
  cache.put(key_of(2), report);
  ASSERT_EQ(cache.entries(), 2u);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.get(key_of(1)).has_value());
  cache.put(key_of(3), report);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_TRUE(cache.get(key_of(1)).has_value());
  EXPECT_FALSE(cache.get(key_of(2)).has_value());
  EXPECT_TRUE(cache.get(key_of(3)).has_value());
}

TEST(ServeResultCache, ZeroBudgetDisablesCaching) {
  ResultCache cache(0);
  cache.put(key_of(1), "report");
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_FALSE(cache.get(key_of(1)).has_value());
}

TEST(ServeResultCache, OversizedValueIsNotCached) {
  ResultCache cache(64);
  cache.put(key_of(1), std::string(1024, 'x'));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(ServeResultCache, PutRefreshesExistingEntry) {
  ResultCache cache(1 << 20);
  cache.put(key_of(1), "old");
  cache.put(key_of(1), "new");
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.get(key_of(1)).value(), "new");
}

// ---- protocol -------------------------------------------------------------

TEST(ServeProtocol, ParsesBuiltinScoreRequest) {
  const ParsedRequest parsed = parse_request_line(
      R"({"id":7,"op":"score","suite":"nbench","instructions":20000,"events":"llc","deadline_ms":250})");
  ASSERT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.op, Op::Score);
  EXPECT_EQ(parsed.id, "7");  // numeric ids echo as integer text
  EXPECT_EQ(parsed.score.builtin, "nbench");
  EXPECT_EQ(parsed.score.instructions, 20000u);
  EXPECT_EQ(parsed.score.events, "llc");
  EXPECT_EQ(parsed.score.deadline_ms, 250u);
}

TEST(ServeProtocol, ParsesInlineCsvRequest) {
  const ParsedRequest parsed = parse_request_line(
      R"({"id":"c","name":"mini","csv":"workload,c0,c1\na,1,2\nb,3,4\n"})");
  ASSERT_TRUE(parsed.ok) << parsed.message;
  ASSERT_NE(parsed.score.data, nullptr);
  EXPECT_EQ(parsed.score.data->suite_name(), "mini");
  EXPECT_EQ(parsed.score.data->num_workloads(), 2u);
}

TEST(ServeProtocol, BadRequestsAreStructuredNotThrown) {
  EXPECT_EQ(parse_request_line("not json").error, "bad_request");
  EXPECT_EQ(parse_request_line("[1,2]").error, "bad_request");
  // Both or neither of suite/csv.
  EXPECT_FALSE(parse_request_line(R"({"op":"score"})").ok);
  EXPECT_FALSE(
      parse_request_line(R"({"suite":"nbench","csv":"workload,c0\n"})").ok);
  // Invalid numerics.
  EXPECT_FALSE(
      parse_request_line(R"({"suite":"nbench","instructions":-5})").ok);
  EXPECT_FALSE(parse_request_line(R"({"suite":"nbench","instructions":0})").ok);
  // CSV errors surface with the reader's line-numbered message.
  const ParsedRequest bad_csv =
      parse_request_line(R"({"csv":"workload,c0\na,nan\n"})");
  EXPECT_FALSE(bad_csv.ok);
  EXPECT_NE(bad_csv.message.find("non-finite"), std::string::npos);
}

TEST(ServeProtocol, ParsesControlOps) {
  EXPECT_EQ(parse_request_line(R"({"op":"ping"})").op, Op::Ping);
  EXPECT_EQ(parse_request_line(R"({"op":"metrics"})").op, Op::Metrics);
  EXPECT_EQ(parse_request_line(R"({"op":"shutdown"})").op, Op::Shutdown);
  EXPECT_FALSE(parse_request_line(R"({"op":"dance"})").ok);
}

TEST(ServeProtocol, SerializeResponseRoundTripsReportBytes) {
  ScoreResponse response;
  response.id = "r1";
  response.ok = true;
  response.cache_hit = true;
  response.report = "line one\n| table | cells |\n\ttabbed\n";
  const std::string line = serialize_response(response);
  EXPECT_EQ(line.back(), '\n');
  const json::Value parsed = json::parse(line);
  EXPECT_EQ(parsed.find("id")->string, "r1");
  EXPECT_TRUE(parsed.find("ok")->boolean);
  EXPECT_EQ(parsed.find("cache")->string, "hit");
  EXPECT_EQ(parsed.find("report")->string, response.report);
}

TEST(ServeProtocol, SerializeErrorCarriesCodeAndMessage) {
  const json::Value parsed =
      json::parse(serialize_error("x", "overloaded", "queue full"));
  EXPECT_FALSE(parsed.find("ok")->boolean);
  EXPECT_EQ(parsed.find("error")->string, "overloaded");
  EXPECT_EQ(parsed.find("message")->string, "queue full");
}

// ---- mutate ops -----------------------------------------------------------

TEST(ServeProtocol, ParsesMutateOps) {
  const ParsedRequest load = parse_request_line(
      R"({"id":"1","op":"load_suite","suite":"live","csv":"workload,c0\na,1\n","series_csv":"workload,counter,sample,value\na,c0,0,1\n","events":"llc","deadline_ms":50})");
  ASSERT_TRUE(load.ok) << load.message;
  EXPECT_EQ(load.op, Op::Mutate);
  EXPECT_EQ(load.mutate.op, MutateOp::LoadSuite);
  EXPECT_EQ(load.mutate.suite, "live");
  EXPECT_EQ(load.mutate.csv_text, "workload,c0\na,1\n");
  EXPECT_EQ(load.mutate.series_text,
            "workload,counter,sample,value\na,c0,0,1\n");
  EXPECT_EQ(load.mutate.events, "llc");
  EXPECT_EQ(load.mutate.deadline_ms, 50u);

  const ParsedRequest drop = parse_request_line(
      R"({"op":"drop_workload","suite":"live","workload":"a"})");
  ASSERT_TRUE(drop.ok);
  EXPECT_EQ(drop.mutate.op, MutateOp::DropWorkload);
  EXPECT_EQ(drop.mutate.workload, "a");

  const ParsedRequest append = parse_request_line(
      R"({"op":"append_samples","suite":"live","series_csv":"workload,counter,sample,value\na,c0,1,2\n"})");
  ASSERT_TRUE(append.ok);
  EXPECT_EQ(append.mutate.op, MutateOp::AppendSamples);

  const ParsedRequest add = parse_request_line(
      R"({"op":"add_workload","suite":"live","csv":"workload,c0\nb,2\n"})");
  ASSERT_TRUE(add.ok);
  EXPECT_EQ(add.mutate.op, MutateOp::AddWorkload);
}

TEST(ServeProtocol, MutateOpsValidateTheirRequiredFields) {
  // Every op needs a suite name.
  EXPECT_FALSE(parse_request_line(R"({"op":"load_suite","csv":"x"})").ok);
  // load_suite / add_workload need an aggregate payload.
  EXPECT_FALSE(parse_request_line(R"({"op":"load_suite","suite":"s"})").ok);
  EXPECT_FALSE(parse_request_line(R"({"op":"add_workload","suite":"s"})").ok);
  // drop_workload needs the workload, append_samples the series payload.
  EXPECT_FALSE(
      parse_request_line(R"({"op":"drop_workload","suite":"s"})").ok);
  EXPECT_FALSE(
      parse_request_line(R"({"op":"append_samples","suite":"s"})").ok);
}

TEST(ServeProtocol, MutateRequestForwardingRoundTrips) {
  MutateRequest request;
  request.id = "m7";
  request.op = MutateOp::AddWorkload;
  request.suite = "live";
  request.csv_text = "workload,c0\nb,2\n";
  request.series_text = "workload,counter,sample,value\nb,c0,0,2\n";
  request.events = "llc";
  request.trace_id = 0x9f86d081884c7d65ull;

  const ParsedRequest parsed =
      parse_request_line(serialize_mutate_request(request));
  ASSERT_TRUE(parsed.ok) << parsed.message;
  ASSERT_EQ(parsed.op, Op::Mutate);
  EXPECT_EQ(parsed.mutate.id, "m7");
  EXPECT_EQ(parsed.mutate.op, MutateOp::AddWorkload);
  EXPECT_EQ(parsed.mutate.suite, request.suite);
  EXPECT_EQ(parsed.mutate.csv_text, request.csv_text);
  EXPECT_EQ(parsed.mutate.series_text, request.series_text);
  EXPECT_EQ(parsed.mutate.events, "llc");
  EXPECT_EQ(parsed.mutate.trace_id, request.trace_id);
}

TEST(ServeProtocol, MutateResponseRoundTripsExactly) {
  MutateResponse response;
  response.id = "m1";
  response.ok = true;
  response.suite = "live";
  response.version = 3;
  response.cache_hit = true;
  response.report = "report\nwith | table |\n";
  response.trace_id = 0xabcdef0123456789ull;

  MutateResponse back;
  ASSERT_TRUE(
      parse_mutate_response(serialize_mutate_response(response), back));
  EXPECT_EQ(back.id, response.id);
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.suite, "live");
  EXPECT_EQ(back.version, 3u);
  EXPECT_TRUE(back.cache_hit);
  EXPECT_EQ(back.report, response.report);
  EXPECT_EQ(back.trace_id, response.trace_id);

  // Error shape: same bytes as a score error, still parseable.
  MutateResponse error;
  error.id = "m2";
  error.error = "bad_request";
  error.message = "unknown resident suite 'x' (load_suite first)";
  MutateResponse error_back;
  ASSERT_TRUE(
      parse_mutate_response(serialize_mutate_response(error), error_back));
  EXPECT_FALSE(error_back.ok);
  EXPECT_EQ(error_back.error, "bad_request");
  EXPECT_EQ(error_back.message, error.message);
  EXPECT_FALSE(parse_mutate_response("not json", error_back));
}

}  // namespace
}  // namespace perspector::serve
