// FaultInjector seams: torn appends, failed writes, failed fsync, failed
// mmap — proving the store degrades (miss, roll, heap index) instead of
// serving bad bytes, and that the env hook stays inert in release builds.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "store/fault_injector.hpp"
#include "store/segment_store.hpp"

namespace fs = std::filesystem;
using perspector::store::FaultInjector;
using perspector::store::FaultOp;
using perspector::store::SegmentStore;
using perspector::store::StoreKey;
using perspector::store::StoreOptions;

namespace {

std::string fresh_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/perspector_fault_" + name;
  fs::remove_all(path);
  return path;
}

}  // namespace

TEST(FaultInjector, CountdownFiresExactlyOnce) {
  FaultInjector faults;
  faults.arm(FaultOp::Write, 3);
  EXPECT_FALSE(faults.should_fail(FaultOp::Write));
  EXPECT_FALSE(faults.should_fail(FaultOp::Write));
  EXPECT_TRUE(faults.should_fail(FaultOp::Write));   // the 3rd call
  EXPECT_FALSE(faults.should_fail(FaultOp::Write));  // consumed
  EXPECT_FALSE(faults.should_fail(FaultOp::Fsync));  // other ops unarmed
}

TEST(FaultInjector, ParseAcceptsTheDocumentedSpec) {
  const auto faults = FaultInjector::parse("write:2,torn:1,fsync:3,mmap:1");
  ASSERT_NE(faults, nullptr);
  EXPECT_FALSE(faults->should_fail(FaultOp::Write));
  EXPECT_TRUE(faults->should_fail(FaultOp::Write));
  EXPECT_TRUE(faults->should_fail(FaultOp::TornWrite));
  EXPECT_TRUE(faults->should_fail(FaultOp::Mmap));
  EXPECT_FALSE(faults->should_fail(FaultOp::Fsync));
}

TEST(FaultInjector, ParseRejectsGarbage) {
  EXPECT_EQ(FaultInjector::parse(nullptr), nullptr);
  EXPECT_EQ(FaultInjector::parse(""), nullptr);
  EXPECT_EQ(FaultInjector::parse("write"), nullptr);
  EXPECT_EQ(FaultInjector::parse("write:abc"), nullptr);
  EXPECT_EQ(FaultInjector::parse("explode:1"), nullptr);
}

TEST(FaultInjector, EnvHookIsInertInReleaseBuilds) {
#ifdef NDEBUG
  // A stray production environment variable must never arm faults.
  ::setenv("PERSPECTOR_STORE_FAULTS", "write:1", 1);
  EXPECT_EQ(FaultInjector::from_env(), nullptr);
  ::unsetenv("PERSPECTOR_STORE_FAULTS");
#else
  ::setenv("PERSPECTOR_STORE_FAULTS", "write:1", 1);
  const auto faults = FaultInjector::from_env();
  ASSERT_NE(faults, nullptr);
  EXPECT_TRUE(faults->should_fail(FaultOp::Write));
  ::unsetenv("PERSPECTOR_STORE_FAULTS");
#endif
}

TEST(StoreFaults, FailedWriteDegradesToCleanFailure) {
  const std::string dir = fresh_dir("write");
  FaultInjector faults;
  StoreOptions options;
  options.dir = dir;
  options.faults = &faults;
  SegmentStore store(options);

  ASSERT_TRUE(store.put({1, 1}, "before"));
  faults.arm(FaultOp::Write, 1);
  EXPECT_FALSE(store.put({2, 2}, "failed"));
  // The failed key was never indexed; earlier and later puts still work.
  EXPECT_FALSE(store.get({2, 2}).has_value());
  EXPECT_EQ(store.get({1, 1}).value(), "before");
  ASSERT_TRUE(store.put({3, 3}, "after"));
  EXPECT_EQ(store.get({3, 3}).value(), "after");
}

TEST(StoreFaults, TornWriteIsDetectedByChecksumAndNeverServed) {
  const std::string dir = fresh_dir("torn");
  FaultInjector faults;
  StoreOptions options;
  options.dir = dir;
  options.faults = &faults;
  {
    SegmentStore store(options);
    ASSERT_TRUE(store.put({1, 1}, std::string(100, 'a')));
    faults.arm(FaultOp::TornWrite, 1);
    // The torn append reports failure and leaves a half-written record
    // on disk, exactly like a crash mid-write().
    EXPECT_FALSE(store.put({2, 2}, std::string(100, 'b')));
    EXPECT_FALSE(store.get({2, 2}).has_value());
    // The store rolled past the broken tail and keeps accepting writes.
    ASSERT_TRUE(store.put({3, 3}, std::string(100, 'c')));
    EXPECT_EQ(store.get({3, 3}).value(), std::string(100, 'c'));
  }
  // Recovery replays the segments: the torn record fails its checksum,
  // is skipped, and the intact neighbors survive.
  SegmentStore reopened(options);
  EXPECT_EQ(reopened.get({1, 1}).value(), std::string(100, 'a'));
  EXPECT_FALSE(reopened.get({2, 2}).has_value());
  EXPECT_EQ(reopened.get({3, 3}).value(), std::string(100, 'c'));
}

TEST(StoreFaults, FsyncFailureIsCountedNotFatal) {
  const std::string dir = fresh_dir("fsync");
  FaultInjector faults;
  StoreOptions options;
  options.dir = dir;
  options.faults = &faults;
  SegmentStore store(options);
  ASSERT_TRUE(store.put({1, 1}, "durable enough"));
  faults.arm(FaultOp::Fsync, 1);
  store.flush();  // must not throw; store.fsync_failures counts it
  EXPECT_EQ(store.get({1, 1}).value(), "durable enough");
  ASSERT_TRUE(store.put({2, 2}, "still writable"));
}

TEST(StoreFaults, MmapFailureFallsBackToHeapIndex) {
  const std::string dir = fresh_dir("mmap");
  FaultInjector faults;
  faults.arm(FaultOp::Mmap, 1);
  StoreOptions options;
  options.dir = dir;
  options.faults = &faults;
  {
    SegmentStore store(options);
    EXPECT_FALSE(store.index_mapped());
    ASSERT_TRUE(store.put({1, 1}, "heap indexed"));
    EXPECT_EQ(store.get({1, 1}).value(), "heap indexed");
    store.flush();
  }
  // Next open mmaps normally and recovers the data by replay (a heap
  // index is volatile — it never reached index.psi).
  StoreOptions clean = options;
  clean.faults = nullptr;
  SegmentStore reopened(clean);
  EXPECT_TRUE(reopened.index_mapped());
  EXPECT_EQ(reopened.get({1, 1}).value(), "heap indexed");
}
