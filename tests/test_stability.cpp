#include "core/stability.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.hpp"

namespace perspector::core {
namespace {

CounterMatrix synthetic_suite(std::size_t n, std::uint64_t seed,
                              bool with_outlier = false) {
  stats::Rng rng(seed);
  std::vector<std::string> workloads, counters;
  la::Matrix values(n, 5);
  std::vector<std::vector<std::vector<double>>> series;
  for (std::size_t c = 0; c < 5; ++c) {
    counters.push_back("c" + std::to_string(c));
  }
  for (std::size_t w = 0; w < n; ++w) {
    workloads.push_back("w" + std::to_string(w));
    std::vector<std::vector<double>> per_counter;
    for (std::size_t c = 0; c < 5; ++c) {
      values(w, c) = (with_outlier && w == 0) ? 100.0 : rng.uniform();
      std::vector<double> s(10);
      for (double& v : s) v = rng.uniform(1.0, 5.0);
      per_counter.push_back(s);
    }
    series.push_back(per_counter);
  }
  return CounterMatrix("stab", workloads, counters, values, series);
}

TEST(Bootstrap, ValidatesInput) {
  EXPECT_THROW(bootstrap_scores(synthetic_suite(3, 1)),
               std::invalid_argument);
  StabilityOptions zero;
  zero.resamples = 0;
  EXPECT_THROW(bootstrap_scores(synthetic_suite(8, 1), zero),
               std::invalid_argument);
}

TEST(Bootstrap, ReportShape) {
  StabilityOptions options;
  options.resamples = 20;
  options.include_trend = false;
  const auto report = bootstrap_scores(synthetic_suite(10, 2), options);
  EXPECT_EQ(report.resamples, 20u);
  // Point estimates match a direct evaluation.
  PerspectorOptions scoring;
  scoring.compute_trend = false;
  const auto direct = Perspector(scoring).score_suite(synthetic_suite(10, 2));
  EXPECT_DOUBLE_EQ(report.cluster.point, direct.cluster);
  EXPECT_DOUBLE_EQ(report.coverage.point, direct.coverage);
  // Percentile band is ordered.
  EXPECT_LE(report.coverage.p05, report.coverage.p95);
  EXPECT_GE(report.coverage.stddev, 0.0);
}

TEST(Bootstrap, Deterministic) {
  StabilityOptions options;
  options.resamples = 10;
  options.include_trend = false;
  options.seed = 7;
  const auto a = bootstrap_scores(synthetic_suite(8, 3), options);
  const auto b = bootstrap_scores(synthetic_suite(8, 3), options);
  EXPECT_DOUBLE_EQ(a.coverage.mean, b.coverage.mean);
  EXPECT_DOUBLE_EQ(a.cluster.stddev, b.cluster.stddev);
}

TEST(Bootstrap, IncludesTrendWhenAsked) {
  StabilityOptions options;
  options.resamples = 5;
  options.include_trend = true;
  const auto report = bootstrap_scores(synthetic_suite(6, 4), options);
  EXPECT_GT(report.trend.point, 0.0);
  EXPECT_GE(report.trend.p95, report.trend.p05);
}

TEST(Bootstrap, OutlierSuiteIsLessStable) {
  // A suite whose coverage hinges on one extreme workload shows a much
  // wider coverage distribution than a homogeneous one.
  StabilityOptions options;
  options.resamples = 60;
  options.include_trend = false;
  const auto stable = bootstrap_scores(synthetic_suite(12, 5, false), options);
  const auto fragile = bootstrap_scores(synthetic_suite(12, 5, true), options);
  EXPECT_GT(fragile.coverage.stddev / std::max(fragile.coverage.mean, 1e-12),
            stable.coverage.stddev / std::max(stable.coverage.mean, 1e-12));
}

TEST(Jackknife, ValidatesInput) {
  EXPECT_THROW(jackknife_scores(synthetic_suite(4, 6)),
               std::invalid_argument);
}

TEST(Jackknife, ReportShape) {
  const auto suite = synthetic_suite(8, 7);
  const auto report = jackknife_scores(suite, {}, /*include_trend=*/false);
  EXPECT_EQ(report.workloads.size(), 8u);
  EXPECT_EQ(report.influence.size(), 8u);
  EXPECT_THROW(report.most_influential(4), std::invalid_argument);
  EXPECT_LT(report.most_influential(2), 8u);
}

TEST(Jackknife, OutlierIsMostInfluentialOnCoverage) {
  const auto suite = synthetic_suite(10, 8, /*with_outlier=*/true);
  const auto report = jackknife_scores(suite, {}, /*include_trend=*/false);
  // Removing w0 (the 100x outlier) changes coverage the most.
  EXPECT_EQ(report.most_influential(2), 0u);
  // And removing it *reduces* coverage.
  EXPECT_LT(report.influence[0][2], 0.0);
}

}  // namespace
}  // namespace perspector::core
