#include "sim/branch_predictor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.hpp"

namespace perspector::sim {
namespace {

TEST(BranchPredictor, AlwaysTaken) {
  AlwaysTakenPredictor p;
  EXPECT_TRUE(p.predict_and_update(0x400000, true));
  EXPECT_FALSE(p.predict_and_update(0x400000, false));
  EXPECT_EQ(p.stats().branches, 2u);
  EXPECT_EQ(p.stats().mispredictions, 1u);
  EXPECT_DOUBLE_EQ(p.stats().misprediction_rate(), 0.5);
}

TEST(BranchPredictor, ValidatesConstruction) {
  EXPECT_THROW(BimodalPredictor(0), std::invalid_argument);
  EXPECT_THROW(BimodalPredictor(29), std::invalid_argument);
  EXPECT_THROW(GsharePredictor(0, 4), std::invalid_argument);
  EXPECT_THROW(GsharePredictor(10, 64), std::invalid_argument);
}

TEST(BranchPredictor, BimodalLearnsStableBias) {
  BimodalPredictor p(10);
  // Always-taken branch: after the weakly-taken init, every prediction hits.
  for (int i = 0; i < 100; ++i) p.predict_and_update(0x1000, true);
  EXPECT_EQ(p.stats().mispredictions, 0u);

  // Always-not-taken branch at another PC: at most 2 warmup misses.
  BimodalPredictor q(10);
  for (int i = 0; i < 100; ++i) q.predict_and_update(0x2000, false);
  EXPECT_LE(q.stats().mispredictions, 2u);
}

TEST(BranchPredictor, BimodalHysteresis) {
  BimodalPredictor p(10);
  // Saturate taken, then a single not-taken blip must not flip the next
  // prediction (2-bit hysteresis).
  for (int i = 0; i < 4; ++i) p.predict_and_update(0x1000, true);
  p.predict_and_update(0x1000, false);  // blip (mispredicted)
  const auto before = p.stats().mispredictions;
  EXPECT_TRUE(p.predict_and_update(0x1000, true));  // still predicts taken
  EXPECT_EQ(p.stats().mispredictions, before);
}

TEST(BranchPredictor, GshareLearnsAlternatingPattern) {
  // T,N,T,N... defeats bimodal (50% at steady state rounds to the blip
  // rate) but gshare's history disambiguates perfectly after warmup.
  GsharePredictor g(12, 8);
  BimodalPredictor b(12);
  std::uint64_t g_misses_late = 0, b_misses_late = 0;
  for (int i = 0; i < 2000; ++i) {
    const bool taken = (i % 2) == 0;
    const bool g_ok = g.predict_and_update(0x3000, taken);
    const bool b_ok = b.predict_and_update(0x3000, taken);
    if (i >= 1000) {
      g_misses_late += g_ok ? 0 : 1;
      b_misses_late += b_ok ? 0 : 1;
    }
  }
  EXPECT_EQ(g_misses_late, 0u);
  EXPECT_GT(b_misses_late, 300u);
}

TEST(BranchPredictor, RandomOutcomesMispredictNearHalf) {
  GsharePredictor g(12, 10);
  stats::Rng rng(81);
  for (int i = 0; i < 20000; ++i) {
    g.predict_and_update(0x4000 + (i % 16) * 4, rng.bernoulli(0.5));
  }
  EXPECT_NEAR(g.stats().misprediction_rate(), 0.5, 0.05);
}

TEST(BranchPredictor, BiasedOutcomesTrackBias) {
  BimodalPredictor p(12);
  stats::Rng rng(82);
  for (int i = 0; i < 20000; ++i) {
    p.predict_and_update(0x5000, rng.bernoulli(0.9));
  }
  // Steady-state bimodal on a 90% branch mispredicts ~10-18%.
  EXPECT_LT(p.stats().misprediction_rate(), 0.2);
  EXPECT_GT(p.stats().misprediction_rate(), 0.05);
}

TEST(BranchPredictor, ResetStats) {
  BimodalPredictor p(8);
  p.predict_and_update(0x1000, false);
  p.reset_stats();
  EXPECT_EQ(p.stats().branches, 0u);
  EXPECT_DOUBLE_EQ(p.stats().misprediction_rate(), 0.0);
}

TEST(BranchPredictor, FactoryHonorsConfig) {
  MachineConfig cfg;
  cfg.predictor = MachineConfig::Predictor::AlwaysTaken;
  auto p = make_predictor(cfg);
  EXPECT_TRUE(p->predict_and_update(0, true));

  cfg.predictor = MachineConfig::Predictor::Bimodal;
  EXPECT_NE(make_predictor(cfg), nullptr);
  cfg.predictor = MachineConfig::Predictor::Gshare;
  EXPECT_NE(make_predictor(cfg), nullptr);
}

}  // namespace
}  // namespace perspector::sim
