#include "suites/suite_factory.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/counter_matrix.hpp"
#include "sim/simulator.hpp"

namespace perspector::suites {
namespace {

SuiteBuildOptions small() {
  SuiteBuildOptions options;
  options.instructions_per_workload = 20'000;
  return options;
}

TEST(Suites, PaperWorkloadCounts) {
  // Table III / Section IV: SPEC'17 has 43 workloads; the others match
  // their real suites.
  EXPECT_EQ(spec17(small()).workloads.size(), 43u);
  EXPECT_EQ(parsec(small()).workloads.size(), 13u);
  EXPECT_EQ(ligra(small()).workloads.size(), 12u);
  EXPECT_EQ(lmbench(small()).workloads.size(), 14u);
  EXPECT_EQ(nbench(small()).workloads.size(), 10u);
  EXPECT_EQ(sgxgauge(small()).workloads.size(), 10u);
}

TEST(Suites, AllSuitesReturnsSixInTableOrder) {
  const auto all = all_suites(small());
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "PARSEC");
  EXPECT_EQ(all[1].name, "SPEC'17");
  EXPECT_EQ(all[2].name, "Ligra");
  EXPECT_EQ(all[3].name, "LMbench");
  EXPECT_EQ(all[4].name, "Nbench");
  EXPECT_EQ(all[5].name, "SGXGauge");
}

TEST(Suites, AllWorkloadNamesUniqueWithinSuite) {
  for (const auto& suite : all_suites(small())) {
    const auto names = suite.workload_names();
    const std::set<std::string> distinct(names.begin(), names.end());
    EXPECT_EQ(distinct.size(), names.size()) << suite.name;
  }
}

TEST(Suites, AllSpecsValidate) {
  for (const auto& suite : all_suites(small())) {
    EXPECT_NO_THROW(suite.validate()) << suite.name;
  }
  EXPECT_NO_THROW(demo_five(small()).validate());
}

TEST(Suites, InstructionBudgetHonored) {
  const auto suite = nbench(small());
  for (const auto& w : suite.workloads) {
    EXPECT_EQ(w.instructions, 20'000u);
  }
}

TEST(Suites, DemoFiveMatchesFig1Workloads) {
  const auto demo = demo_five(small());
  const auto names = demo.workload_names();
  EXPECT_EQ(names, (std::vector<std::string>{"PageRank", "HashJoin", "BFS",
                                             "BTree", "OpenSSL"}));
  // Fig. 1's point: the workloads run for different lengths.
  std::set<std::uint64_t> budgets;
  for (const auto& w : demo.workloads) budgets.insert(w.instructions);
  EXPECT_GT(budgets.size(), 2u);
}

TEST(Suites, Spec17ContainsKnownWorkloads) {
  const auto names = spec17(small()).workload_names();
  const std::set<std::string> set(names.begin(), names.end());
  EXPECT_TRUE(set.contains("505.mcf_r"));
  EXPECT_TRUE(set.contains("619.lbm_s"));
  EXPECT_TRUE(set.contains("628.pop2_s"));
  EXPECT_TRUE(set.contains("548.exchange2_r"));
}

TEST(Suites, SpecSpeedVariantsCorrelateWithRateSiblings) {
  const auto suite = spec17(small());
  const auto find = [&](const std::string& name) -> const sim::WorkloadSpec& {
    for (const auto& w : suite.workloads) {
      if (w.name == name) return w;
    }
    throw std::runtime_error("missing " + name);
  };
  const auto& rate = find("505.mcf_r");
  const auto& speed = find("605.mcf_s");
  ASSERT_EQ(rate.phases.size(), speed.phases.size());
  // Speed variant scales the working set but keeps the pattern kind.
  EXPECT_EQ(rate.phases[0].pattern.kind, speed.phases[0].pattern.kind);
  EXPECT_GT(speed.phases[0].pattern.working_set_bytes,
            rate.phases[0].pattern.working_set_bytes);
  // ... and is perturbed, not cloned.
  EXPECT_NE(rate.phases[0].load_frac, speed.phases[0].load_frac);
}

TEST(Suites, LigraSharesLoadGraphPhase) {
  const auto suite = ligra(small());
  for (const auto& w : suite.workloads) {
    ASSERT_EQ(w.phases.size(), 2u) << w.name;
    EXPECT_EQ(w.phases[0].name, "load-graph") << w.name;
  }
}

TEST(Suites, LMbenchProbesAreSinglePhase) {
  for (const auto& w : lmbench(small()).workloads) {
    EXPECT_EQ(w.phases.size(), 1u) << w.name;
  }
  for (const auto& w : nbench(small()).workloads) {
    EXPECT_EQ(w.phases.size(), 1u) << w.name;
  }
}

TEST(Suites, ParsecWorkloadsAreMultiPhase) {
  std::size_t multi = 0;
  const auto suite = parsec(small());
  for (const auto& w : suite.workloads) {
    if (w.phases.size() >= 2) ++multi;
  }
  // PARSEC is the phase-heavy suite; nearly all workloads have phases.
  EXPECT_GE(multi, suite.workloads.size() - 1);
}

TEST(Suites, EndToEndSimulationSmoke) {
  // Every suite simulates cleanly at tiny scale and produces counters.
  const auto machine = sim::MachineConfig::xeon_e2186g();
  sim::SimOptions options;
  options.sample_interval = 2'000;
  for (const auto& suite : all_suites(small())) {
    const auto data = core::collect_counters(suite, machine, options);
    EXPECT_EQ(data.num_workloads(), suite.workloads.size());
    EXPECT_EQ(data.num_counters(), sim::kPmuEventCount);
    EXPECT_TRUE(data.has_series());
    // cpu-cycles is positive for every workload.
    for (std::size_t w = 0; w < data.num_workloads(); ++w) {
      EXPECT_GT(data.value(w, 0), 0.0) << suite.name;
    }
  }
}

}  // namespace
}  // namespace perspector::suites
