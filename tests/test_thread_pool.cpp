#include "par/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "par/parallel.hpp"
#include "stats/rng.hpp"

namespace perspector::par {
namespace {

/// Restores automatic thread-count resolution when a test exits.
struct ThreadCountGuard {
  ~ThreadCountGuard() { set_thread_count(0); }
};

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran.store(true); });
  // Destructor drains the queue, so after scope exit the task has run.
  auto future = pool.async([] { return 42; });
  EXPECT_EQ(future.get(), 42);
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, SizeMatchesConstruction) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.async([] { return 7; }).get(), 7);
}

TEST(ThreadPool, EmptyTaskRejected) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), std::invalid_argument);
}

TEST(ThreadPool, AsyncPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.async([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllExecute) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 500; ++i) {
      pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, DestructorDrainsQueueBeforeJoining) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlock) {
  std::atomic<bool> inner_ran{false};
  {
    // One worker: the outer task enqueues the inner one and returns; the
    // same worker then picks the inner task up.
    ThreadPool pool(1);
    pool.submit([&] {
      pool.submit([&] { inner_ran.store(true); });
    });
  }
  EXPECT_TRUE(inner_ran.load());
}

TEST(ThreadPool, WorkerThreadFlag) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  ThreadPool pool(1);
  EXPECT_TRUE(pool.async([] { return ThreadPool::on_worker_thread(); }).get());
}

TEST(ThreadCount, HardwareThreadsAtLeastOne) {
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(ThreadCount, ExplicitOverrideWinsAndZeroRestoresAuto) {
  ThreadCountGuard guard;
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(0);
  EXPECT_GE(thread_count(), 1u);
}

TEST(ThreadCount, EnvParsingIsStrict) {
  EXPECT_EQ(parse_thread_env("4"), 4u);
  EXPECT_EQ(parse_thread_env("16"), 16u);
  EXPECT_EQ(parse_thread_env(nullptr), std::nullopt);
  EXPECT_EQ(parse_thread_env(""), std::nullopt);
  EXPECT_EQ(parse_thread_env("0"), std::nullopt);     // serial is --threads 1
  EXPECT_EQ(parse_thread_env("-2"), std::nullopt);    // no signs
  EXPECT_EQ(parse_thread_env("+2"), std::nullopt);
  EXPECT_EQ(parse_thread_env(" 2"), std::nullopt);    // no whitespace
  EXPECT_EQ(parse_thread_env("2x"), std::nullopt);    // no trailing junk
  EXPECT_EQ(parse_thread_env("99999999999999999999999"), std::nullopt);
}

TEST(ThreadCount, GlobalPoolTracksThreadCount) {
  ThreadCountGuard guard;
  set_thread_count(2);
  EXPECT_EQ(global_pool().size(), 2u);
  set_thread_count(4);
  EXPECT_EQ(global_pool().size(), 4u);
}

TEST(ParallelFor, ZeroIterationsNeverInvokesBody) {
  ThreadCountGuard guard;
  set_thread_count(4);
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleIterationRunsInline) {
  ThreadCountGuard guard;
  set_thread_count(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id body_thread;
  parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    body_thread = std::this_thread::get_id();
  });
  EXPECT_EQ(body_thread, caller);
}

TEST(ParallelFor, SerialWhenOneThread) {
  ThreadCountGuard guard;
  set_thread_count(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(64);
  parallel_for(seen.size(),
               [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  set_thread_count(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, MoreIndicesThanThreadsAndViceVersa) {
  ThreadCountGuard guard;
  set_thread_count(8);
  std::vector<int> out(3, 0);  // fewer indices than threads
  parallel_for(out.size(), [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 3);

  std::vector<int> big(257, 0);  // non-divisible chunking
  parallel_for(big.size(), [&](std::size_t i) { big[i] = 1; });
  EXPECT_EQ(std::accumulate(big.begin(), big.end(), 0), 257);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  ThreadCountGuard guard;
  set_thread_count(4);
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("index 57");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, LowestChunkExceptionWins) {
  ThreadCountGuard guard;
  set_thread_count(4);
  // Both the first and the last chunk throw; the rethrown exception must
  // be the lowest-indexed one regardless of which chunk finishes first.
  try {
    parallel_for(100, [](std::size_t i) {
      if (i == 0) throw std::runtime_error("first");
      if (i == 99) {
        throw std::logic_error("last");
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ParallelFor, NestedRegionRunsSerialOnWorker) {
  ThreadCountGuard guard;
  set_thread_count(4);
  std::vector<int> out(8 * 16, 0);
  parallel_for(8, [&](std::size_t outer) {
    // Inside a pool task: the nested region must run inline (no deadlock
    // even when every worker sits in this body) and on this same thread.
    const auto worker = std::this_thread::get_id();
    parallel_for(16, [&](std::size_t inner) {
      EXPECT_EQ(std::this_thread::get_id(), worker);
      out[outer * 16 + inner] = 1;
    });
  });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 8 * 16);
}

TEST(ParallelMap, PreservesIndexOrder) {
  ThreadCountGuard guard;
  set_thread_count(4);
  const auto squares =
      parallel_map<int>(50, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(squares.size(), 50u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], static_cast<int>(i * i));
  }
}

TEST(OrderedReduce, BitIdenticalToSerialSum) {
  ThreadCountGuard guard;
  // Values spanning many magnitudes make float addition order-sensitive;
  // the ordered reduction must reproduce the serial sum exactly.
  stats::Rng rng(99);
  std::vector<double> values(2048);
  for (double& v : values) v = rng.uniform(-1.0, 1.0) * rng.uniform(0.0, 1e12);

  set_thread_count(1);
  double serial = 0.0;
  for (double v : values) serial += v;

  for (std::size_t threads : {2u, 5u, 8u}) {
    set_thread_count(threads);
    const double parallel = ordered_reduce<double>(
        values.size(), 0.0, [&](std::size_t i) { return values[i]; },
        [](double acc, double v) { return acc + v; });
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace perspector::par
