#include "la/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace perspector::la {
namespace {

TEST(SymmetricEigen, DiagonalMatrix) {
  Matrix m{{3.0, 0.0}, {0.0, 1.0}};
  const EigenResult e = symmetric_eigen(m);
  ASSERT_EQ(e.values.size(), 2u);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
}

TEST(SymmetricEigen, Known2x2) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix m{{2.0, 1.0}, {1.0, 2.0}};
  const EigenResult e = symmetric_eigen(m);
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), inv_sqrt2, 1e-10);
  EXPECT_NEAR(std::abs(e.vectors(1, 0)), inv_sqrt2, 1e-10);
}

TEST(SymmetricEigen, RejectsNonSquare) {
  EXPECT_THROW(symmetric_eigen(Matrix(2, 3)), std::invalid_argument);
}

TEST(SymmetricEigen, RejectsAsymmetric) {
  Matrix m{{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_THROW(symmetric_eigen(m), std::invalid_argument);
}

TEST(SymmetricEigen, EmptyMatrix) {
  const EigenResult e = symmetric_eigen(Matrix{});
  EXPECT_TRUE(e.values.empty());
}

TEST(SymmetricEigen, ReconstructsMatrix) {
  // A = V diag(w) V^T must reproduce the input.
  Matrix m{{4.0, 1.0, 0.5}, {1.0, 3.0, 0.2}, {0.5, 0.2, 2.0}};
  const EigenResult e = symmetric_eigen(m);
  Matrix diag(3, 3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) diag(i, i) = e.values[i];
  const Matrix rebuilt =
      e.vectors.multiply(diag).multiply(e.vectors.transposed());
  EXPECT_LT(m.max_abs_diff(rebuilt), 1e-9);
}

TEST(SymmetricEigen, EigenvectorsOrthonormal) {
  Matrix m{{5.0, 2.0, 1.0}, {2.0, 4.0, 0.5}, {1.0, 0.5, 3.0}};
  const EigenResult e = symmetric_eigen(m);
  const Matrix vtv = e.vectors.transposed().multiply(e.vectors);
  EXPECT_LT(vtv.max_abs_diff(Matrix::identity(3)), 1e-10);
}

// Property sweep: random symmetric matrices of various sizes satisfy the
// spectral invariants (trace == eigenvalue sum, reconstruction, descending
// order).
class EigenProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenProperty, SpectralInvariants) {
  const std::size_t n = GetParam();
  stats::Rng rng(1000 + n);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  const EigenResult e = symmetric_eigen(m);

  double trace = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    trace += m(i, i);
    sum += e.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-9 * static_cast<double>(n));

  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_GE(e.values[i - 1], e.values[i] - 1e-12);
  }

  Matrix diag(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) diag(i, i) = e.values[i];
  const Matrix rebuilt =
      e.vectors.multiply(diag).multiply(e.vectors.transposed());
  EXPECT_LT(m.max_abs_diff(rebuilt), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 14, 25));

TEST(Covariance, SingleRowIsZero) {
  Matrix m{{1.0, 2.0, 3.0}};
  const Matrix cov = covariance_matrix(m);
  EXPECT_LT(cov.max_abs_diff(Matrix(3, 3, 0.0)), 1e-15);
}

TEST(Covariance, KnownValues) {
  // Two variables: x = {1,2,3}, y = {2,4,6}; var(x)=1, var(y)=4, cov=2.
  Matrix m{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  const Matrix cov = covariance_matrix(m);
  EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 4.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(cov(1, 0), 2.0, 1e-12);
}

TEST(Covariance, PositiveSemidefinite) {
  stats::Rng rng(7);
  Matrix data(10, 4);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 4; ++c) data(r, c) = rng.uniform();
  }
  const EigenResult e = symmetric_eigen(covariance_matrix(data));
  for (double v : e.values) EXPECT_GE(v, -1e-12);
}

}  // namespace
}  // namespace perspector::la
