// Streaming CSV ingestion tests (src/ingest/ + the streamed reader in
// core/io.cpp).
//
// The load-bearing guarantee is byte-identity: the streamed reader must
// produce exactly the matrix — and exactly the error messages — of the
// historical slurp reader, at every chunk size (including 1-byte chunks
// that split every CRLF and quoted cell across chunk boundaries) and
// with the IO thread on or off.
#include <gtest/gtest.h>

#include <bit>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/counter_matrix.hpp"
#include "core/io.hpp"
#include "ingest/csv_stream.hpp"
#include "ingest/name_index.hpp"
#include "ingest/number.hpp"

namespace perspector {
namespace {

using core::CounterMatrix;

// The chunk sizes the ISSUE acceptance list names, plus 1 byte (every
// line, CRLF, and quoted cell is sheared across a chunk boundary).
constexpr std::size_t kChunkSizes[] = {1, 64, 4096, 1u << 20};

std::vector<std::vector<std::string>> read_all_rows(
    const std::string& text, const ingest::IngestOptions& options) {
  std::istringstream in(text);
  ingest::CsvStream stream(in, options);
  std::vector<std::vector<std::string>> rows;
  while (stream.next_row()) {
    rows.emplace_back(stream.cells().begin(), stream.cells().end());
  }
  return rows;
}

TEST(CsvStream, SplitsCellsLikeTheSlurpReaderAtEveryChunkSize) {
  // Quoted commas, doubled quotes, CRLF endings, a blank interior line,
  // and a final line with no trailing newline.
  const std::string text =
      "workload,\"c,0\",c1\r\n"
      "\"w \"\"zero\"\"\",1.5,2\n"
      "\n"
      "plain,3,4";
  const std::vector<std::vector<std::string>> expected = {
      {"workload", "c,0", "c1"},
      {"w \"zero\"", "1.5", "2"},
      {"plain", "3", "4"},
  };
  for (std::size_t chunk : kChunkSizes) {
    for (bool io_thread : {false, true}) {
      ingest::IngestOptions options;
      options.chunk_bytes = chunk;
      options.io_thread = io_thread;
      EXPECT_EQ(read_all_rows(text, options), expected)
          << "chunk=" << chunk << " io_thread=" << io_thread;
    }
  }
}

TEST(CsvStream, ReportsLineNumbersAndByteOffsets) {
  //           offset 0            12     19      26
  const std::string text = "h1,h2\r\nw0,1\nskip,2\nlast,3\n";
  ingest::IngestOptions options;
  options.chunk_bytes = 1;  // worst case: every offset crosses a chunk
  options.io_thread = false;
  std::istringstream in(text);
  ingest::CsvStream stream(in, options);
  std::vector<std::pair<std::size_t, std::uint64_t>> seen;
  while (stream.next_row()) {
    seen.emplace_back(stream.line_no(), stream.byte_offset());
  }
  const std::vector<std::pair<std::size_t, std::uint64_t>> expected = {
      {1, 0}, {2, 7}, {3, 12}, {4, 19}};
  EXPECT_EQ(seen, expected);
}

TEST(CsvStream, StripsBomOnlyOnLineOne) {
  const std::string text = "\xEF\xBB\xBFworkload,c0\nw0,1\n";
  for (std::size_t chunk : {std::size_t{1}, std::size_t{2}, std::size_t{64}}) {
    ingest::IngestOptions options;
    options.chunk_bytes = chunk;
    options.io_thread = false;
    const auto rows = read_all_rows(text, options);
    ASSERT_EQ(rows.size(), 2u) << "chunk=" << chunk;
    EXPECT_EQ(rows[0][0], "workload") << "chunk=" << chunk;
  }
}

TEST(CsvStream, UnterminatedQuoteThrowsWithLocation) {
  std::istringstream in("workload,c0\nw0,\"broken\n");
  ingest::CsvStream stream(in, {});
  ASSERT_TRUE(stream.next_row());
  try {
    stream.next_row();
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "CSV line 2 (byte 12): unterminated quote");
  }
}

TEST(CsvStream, CsvLocationFormat) {
  EXPECT_EQ(ingest::csv_location(7, 1234), "CSV line 7 (byte 1234)");
}

TEST(ColumnMap, RearrangesShuffledColumns) {
  const std::vector<std::string_view> header = {"workload", "b", "a", "c"};
  const std::vector<std::string> targets = {"a", "b", "c"};
  ingest::ColumnMap map(header, targets);
  EXPECT_EQ(map.source_cells(), 4u);
  std::vector<std::string_view> out;
  map.rearrange({"w0", "vb", "va", "vc"}, out);
  EXPECT_EQ(out, (std::vector<std::string_view>{"va", "vb", "vc"}));
}

TEST(ColumnMap, RejectsMissingDuplicateAndRaggedInput) {
  const std::vector<std::string> targets = {"a", "b"};
  EXPECT_THROW(ingest::ColumnMap({}, targets), std::invalid_argument);
  EXPECT_THROW(ingest::ColumnMap({"workload", "a"}, targets),
               std::invalid_argument);
  EXPECT_THROW(ingest::ColumnMap({"workload", "a", "b", "a"}, targets),
               std::invalid_argument);
  ingest::ColumnMap map({"workload", "a", "b"}, targets);
  std::vector<std::string_view> out;
  EXPECT_THROW(map.rearrange({"w0", "1"}, out), std::invalid_argument);
}

// ---- streamed file reader vs slurp reader ----------------------------------

class StreamedReadTest : public ::testing::Test {
 protected:
  std::string make(const std::string& name, const std::string& content) {
    const std::string p = ::testing::TempDir() + "/perspector_ingest_" + name;
    std::ofstream out(p, std::ios::binary);
    out << content;
    out.close();
    created_.push_back(p);
    return p;
  }
  void TearDown() override {
    for (const auto& p : created_) std::remove(p.c_str());
  }
  std::vector<std::string> created_;
};

/// Field-wise identity (CounterMatrix has no operator==).
void expect_identical(const CounterMatrix& a, const CounterMatrix& b,
                      const std::string& label) {
  EXPECT_EQ(a.workload_names(), b.workload_names()) << label;
  EXPECT_EQ(a.counter_names(), b.counter_names()) << label;
  EXPECT_TRUE(a.values() == b.values()) << label;
  EXPECT_EQ(a.has_series(), b.has_series()) << label;
}

TEST_F(StreamedReadTest, MatchesSlurpAtEveryChunkSize) {
  // CRLF rows, a quoted workload with comma + doubled quote, BOM, and a
  // last line without a newline — all the interchange hardening cases.
  const std::string p = make("mix.csv",
                             "\xEF\xBB\xBFworkload,\"c,0\",c1\r\n"
                             "\"w \"\"q\"\"\",1.5,-2e-3\r\n"
                             "plain,0.25,17\n"
                             "last,3,4");
  const CounterMatrix slurped = core::read_aggregates_csv_slurp("s", p);
  for (std::size_t chunk : kChunkSizes) {
    for (bool io_thread : {false, true}) {
      core::StreamedReadOptions options;
      options.chunk_bytes = chunk;
      options.io_thread = io_thread;
      const CounterMatrix streamed =
          core::read_aggregates_csv_streamed("s", p, options);
      expect_identical(streamed, slurped,
                       "chunk=" + std::to_string(chunk) +
                           " io_thread=" + std::to_string(io_thread));
    }
  }
}

template <typename Read>
std::string error_of(Read read, const std::string& p) {
  try {
    read(p);
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

TEST_F(StreamedReadTest, ErrorMessagesMatchSlurpByteForByte) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"ragged", "workload,c0,c1\nw0,1\n"},
      {"nonnum", "workload,c0\nw0,abc\n"},
      {"nonfinite", "workload,c0\nw0,1\nw1,inf\n"},
      {"dup", "workload,c0\nw0,1\nw0,2\n"},
      {"badheader", "nope,c0\nw0,1\n"},
      {"headeronly", "workload,c0\n"},
      {"empty", ""},
  };
  for (const auto& [name, content] : cases) {
    const std::string p = make(name + ".csv", content);
    const std::string slurp_error = error_of(
        [](const std::string& path) {
          core::read_aggregates_csv_slurp("s", path);
        },
        p);
    ASSERT_FALSE(slurp_error.empty()) << name;
    for (std::size_t chunk : {std::size_t{1}, std::size_t{4096}}) {
      const std::string streamed_error = error_of(
          [chunk](const std::string& path) {
            core::StreamedReadOptions options;
            options.chunk_bytes = chunk;
            core::read_aggregates_csv_streamed("s", path, options);
          },
          p);
      EXPECT_EQ(streamed_error, slurp_error) << name << " chunk=" << chunk;
    }
  }
}

TEST_F(StreamedReadTest, ErrorsCarryByteOffsets) {
  // "workload,c0\n" is 12 bytes; the bad row starts at byte 12.
  const std::string p = make("offset.csv", "workload,c0\nw0,nan\n");
  try {
    core::read_aggregates_csv_streamed("s", p);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CSV line 2 (byte 12)"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(StreamedReadTest, AutoDispatchReadsSmallFilesIdentically) {
  // Far below the 1 MiB threshold: read_aggregates_csv slurps, but the
  // forced-streamed path must agree anyway.
  const std::string p = make("small.csv", "workload,c0\nw0,1.25\nw1,2.5\n");
  expect_identical(core::read_aggregates_csv("s", p),
                   core::read_aggregates_csv_streamed("s", p), "small");
}

// ---- delta ingestion helpers ----------------------------------------------

CounterMatrix series_suite() {
  la::Matrix values{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  std::vector<std::vector<std::vector<double>>> series{
      {{1.0, 0.5}, {2.0, 1.0}},
      {{3.0, 1.5}, {4.0, 2.0}},
      {{5.0, 2.5}, {6.0, 3.0}},
  };
  return CounterMatrix("delta", {"w0", "w1", "w2"}, {"c0", "c1"}, values,
                       series);
}

TEST(AppendWorkloads, RearrangesShuffledPayloadColumns) {
  const CounterMatrix base = series_suite();
  // Payload header lists the counters in reverse order; ColumnMap must
  // permute them back into the base layout.
  const CounterMatrix grown = core::append_workloads_csv_text(
      base, "workload,c1,c0\nw3,8,7\n",
      "workload,counter,sample,value\nw3,c0,0,7\nw3,c1,0,8\n");
  ASSERT_EQ(grown.num_workloads(), 4u);
  EXPECT_EQ(grown.workload_names()[3], "w3");
  EXPECT_DOUBLE_EQ(grown.value(3, 0), 7.0);
  EXPECT_DOUBLE_EQ(grown.value(3, 1), 8.0);
  EXPECT_EQ(grown.series(3, 0), (std::vector<double>{7.0}));
}

TEST(AppendSamples, ReportsTouchedWorkloadRows) {
  const CounterMatrix base = series_suite();
  std::vector<std::size_t> touched;
  const CounterMatrix grown = core::append_samples_csv_text(
      base,
      "workload,counter,sample,value\n"
      "w2,c0,2,9\n"
      "w0,c1,2,8\n"
      "w2,c0,3,10\n",
      &touched);
  // Sorted and deduped: w2 gained two samples but appears once.
  EXPECT_EQ(touched, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(grown.series(2, 0), (std::vector<double>{5.0, 2.5, 9.0, 10.0}));
  EXPECT_EQ(grown.series(0, 1), (std::vector<double>{2.0, 1.0, 8.0}));
  // Untouched series and all aggregates are unchanged.
  EXPECT_EQ(grown.series(1, 0), base.series(1, 0));
  EXPECT_TRUE(grown.values() == base.values());
}

TEST(AppendSamples, RejectsNonDenseContinuation) {
  const CounterMatrix base = series_suite();
  // w0/c0 currently has 2 samples; index 5 is a gap.
  EXPECT_THROW(core::append_samples_csv_text(
                   base, "workload,counter,sample,value\nw0,c0,5,1\n"),
               std::runtime_error);
}

TEST(ParseNumber, FastPathIsBitIdenticalToFromChars) {
  // Cells the fast path accepts must carry exactly the bits from_chars
  // would produce — the streamed reader's byte-identity hinges on it.
  const char* cells[] = {
      "0",       "-0",        "0.0",     "-0.0",     "1",
      "42",      "123456789.012",        "0.000123", "00123.450",
      "1e22",    "1e-22",     "5e+3",    "-2.5e-3",  "9.5E2",
      "9007199254740991",     "1023.75", "0.1",      "-0.3",
      "3.14159", "250000000.001",
  };
  for (const char* cell : cells) {
    const std::string_view view(cell);
    double fast = 0.0;
    ASSERT_TRUE(ingest::parse_number(view, fast)) << cell;
    double general = 0.0;
    const auto [ptr, ec] =
        std::from_chars(view.data(), view.data() + view.size(), general);
    ASSERT_EQ(ec, std::errc{}) << cell;
    ASSERT_EQ(ptr, view.data() + view.size()) << cell;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(fast),
              std::bit_cast<std::uint64_t>(general))
        << cell;
  }
}

TEST(ParseNumber, DefersEverythingElseToTheFallback) {
  // Malformed cells AND correct-but-hard cells (long significands,
  // extreme exponents, bare decimal points, nan/inf) must return false
  // so from_chars keeps sole authority over accept/reject and rounding.
  const char* cells[] = {
      "",     "-",     ".",    "1.",     "1.e5",  "abc", "1,2",
      " 1",   "1 ",    "+1",   "nan",    "inf",   "e5",  "1e",
      "1e+",  "9007199254740993",        "1e23",  "1e-23",
      "1.7976931348623157e308",          "2.2250738585072014e-308",
  };
  for (const char* cell : cells) {
    double value = 0.0;
    EXPECT_FALSE(ingest::parse_number(std::string_view(cell), value)) << cell;
  }
}

TEST(NameIndex, DetectsDuplicatesWhileGrowingFromATinyHint) {
  // Hint of 1 forces several grow() rehashes along the way.
  ingest::NameIndex index(1);
  std::vector<std::string> names;
  for (std::size_t i = 0; i < 5000; ++i) {
    names.push_back("workload-" + std::to_string(i));
    ASSERT_EQ(index.insert(names.back(), i, names), ingest::NameIndex::npos)
        << names.back();
  }
  // Every re-insert reports the original row, none a false duplicate.
  EXPECT_EQ(index.insert("workload-0", 5000, names), 0u);
  EXPECT_EQ(index.insert("workload-2500", 5000, names), 2500u);
  EXPECT_EQ(index.insert("workload-4999", 5000, names), 4999u);
  names.push_back("workload-5000");
  EXPECT_EQ(index.insert(names.back(), 5000, names), ingest::NameIndex::npos);
}

}  // namespace
}  // namespace perspector
