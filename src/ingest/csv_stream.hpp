// Streaming CSV ingestion (DESIGN.md section 14).
//
// The core CSV readers historically slurped the whole file through
// std::getline, which serializes disk IO behind parsing and allocates a
// std::string per cell. For GB-scale counter files that is the ingestion
// bottleneck. This module supplies the fast-cpp-csv-parser-style pipeline:
//
//   * ChunkSource — reads fixed-size chunks into a ring of reusable
//     buffers (mem::Scratch), optionally on a dedicated IO thread so disk
//     reads overlap parsing. Chunks are handed to the consumer strictly in
//     file order, so the pipeline is deterministic regardless of thread
//     interleaving.
//   * CsvStream — frames lines across chunk boundaries (a carry buffer
//     holds the partial tail of a chunk), strips a leading UTF-8 BOM, and
//     scans each line's cells IN PLACE: unquoted lines become
//     string_views straight into the chunk buffer, and only lines with
//     quotes or interior CRs are materialized into one reused escape
//     buffer. Cell semantics are byte-identical to core/io.cpp's
//     split_csv_line (quoted commas, doubled quotes, '\r' dropped outside
//     quotes), and errors carry the same "CSV line N (byte M)" location.
//   * ColumnMap — header-driven column rearrangement: permutes a source
//     row's value cells into a caller-chosen counter order, so payloads
//     whose columns arrive shuffled (e.g. add_workload deltas) can feed a
//     fixed-layout CounterMatrix without per-row name lookups.
//
// Threading contract: CsvStream/ChunkSource must be constructed, consumed,
// and destroyed on one thread (the scratch buffers are thread-local
// pool borrows); only the internal IO thread is spawned by this module.
// No clocks, no randomness, no output ordering that depends on timing.
//
// Observability: `ingest.chunks`, `ingest.bytes`, `ingest.rows`.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <istream>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "mem/workspace.hpp"

namespace perspector::ingest {

struct IngestOptions {
  /// Bytes per IO chunk. Tiny values are legal (tests shear lines across
  /// chunk boundaries with 64-byte chunks); 1 MiB is the throughput
  /// sweet spot for buffered files.
  std::size_t chunk_bytes = 1 << 20;
  /// Read chunks on a dedicated IO thread, overlapped with parsing.
  /// When false the source reads synchronously into a single buffer
  /// (same bytes, no overlap) — useful as the 1-thread bench mode.
  bool io_thread = true;
};

/// "CSV line N (byte M)" — the shared location prefix of every CSV error,
/// used by this module and by core/io.cpp so the streamed and slurped
/// paths throw byte-identical messages.
std::string csv_location(std::size_t line_no, std::uint64_t byte_offset);

/// Ordered chunk reader over an std::istream. next() returns the next
/// chunk of the stream (valid until the following next() call), or an
/// empty view at end of input.
class ChunkSource {
 public:
  ChunkSource(std::istream& in, const IngestOptions& options);
  ~ChunkSource();

  ChunkSource(const ChunkSource&) = delete;
  ChunkSource& operator=(const ChunkSource&) = delete;

  std::string_view next();

 private:
  static constexpr std::size_t kRingBuffers = 4;
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  void io_loop();

  std::istream& in_;
  std::size_t chunk_bytes_;
  bool threaded_;
  std::vector<std::unique_ptr<mem::Scratch<char>>> buffers_;

  // Threaded mode: the IO thread pops buffer indices from free_, fills
  // them, and pushes (index, length) onto filled_ in read order.
  std::mutex mutex_;
  std::condition_variable space_;   // IO thread waits for a free buffer
  std::condition_variable ready_;   // consumer waits for a filled chunk
  std::deque<std::size_t> free_;
  std::deque<std::pair<std::size_t, std::size_t>> filled_;
  std::size_t lent_ = kNone;  // buffer currently viewed by the consumer
  bool eof_ = false;
  bool stop_ = false;
  std::thread io_thread_;
};

/// Pull-style streaming CSV row reader (see file comment for semantics).
class CsvStream {
 public:
  explicit CsvStream(std::istream& in, const IngestOptions& options = {});
  ~CsvStream();

  CsvStream(const CsvStream&) = delete;
  CsvStream& operator=(const CsvStream&) = delete;

  /// Advances to the next non-empty line and scans its cells. Returns
  /// false at end of input. The views in cells() stay valid until the
  /// next call. Throws std::runtime_error ("CSV line N (byte M):
  /// unterminated quote") on a quote left open at end of line.
  bool next_row();

  const std::vector<std::string_view>& cells() const noexcept {
    return cells_;
  }
  /// 1-based line number of the current row.
  std::size_t line_no() const noexcept { return line_no_; }
  /// Byte offset of the current row's first byte in the input.
  std::uint64_t byte_offset() const noexcept { return line_offset_; }

 private:
  bool next_line(std::string_view& line);
  void scan_cells(std::string_view line);

  ChunkSource source_;
  std::string_view chunk_;  // unconsumed remainder of the current chunk
  std::string carry_;       // partial line accumulated across chunks
  std::string line_buf_;    // stable storage for a carry-assembled line
  std::string escape_;      // materialized cells of quoted/CR rows
  std::vector<std::pair<std::size_t, std::size_t>> spans_;
  std::vector<std::string_view> cells_;
  std::size_t line_no_ = 0;
  std::uint64_t offset_ = 0;       // bytes consumed before the next line
  std::uint64_t line_offset_ = 0;  // byte offset of the current row
  std::uint64_t rows_seen_ = 0;    // flushed to ingest.rows on destruction
  bool eof_ = false;
};

/// Header-driven column rearrangement: maps a source row's value cells
/// (everything after the key cell at index 0) onto a target column order.
class ColumnMap {
 public:
  /// `header` is the source header row (cell 0 is the key column, e.g.
  /// "workload"); `targets` is the wanted value-column order. Throws
  /// std::invalid_argument when a target column is missing from the
  /// source or the source names a value column twice.
  ColumnMap(const std::vector<std::string_view>& header,
            std::span<const std::string> targets);

  /// Number of cells a source row must have (key cell included).
  std::size_t source_cells() const noexcept { return source_cells_; }

  /// Fills `out` with the value cells of `cells` permuted into target
  /// order (out[k] is the cell of target column k). `cells` must have
  /// exactly source_cells() entries.
  void rearrange(const std::vector<std::string_view>& cells,
                 std::vector<std::string_view>& out) const;

 private:
  std::vector<std::size_t> perm_;  // target k -> source value-cell index
  std::size_t source_cells_ = 0;
};

}  // namespace perspector::ingest
