// Open-addressed workload-name index for the streamed CSV readers.
//
// Duplicate detection over millions of rows must not pay a node
// allocation per insert (std::set / std::unordered_map both do). This
// table stores (hash, row) pairs flat with linear probing; names are
// compared exactly against the caller's name vector on a hash match, so
// 64-bit collisions between different names stay correct — they simply
// probe one slot further.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace perspector::ingest {

class NameIndex {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// `expected` is a row-count hint (e.g. file size / first row bytes);
  /// the table grows itself when the hint was low. The initial footprint
  /// is capped so a wild hint cannot demand absurd memory up front.
  explicit NameIndex(std::size_t expected = 0) {
    std::size_t capacity = 16;
    while (capacity < expected * 2 && capacity < (1u << 28)) capacity <<= 1;
    slots_.assign(capacity, {0, 0});
    mask_ = capacity - 1;
  }

  /// Inserts `name` (stored as `names[row]` by the caller) and returns
  /// npos, or returns the existing row holding the same name without
  /// inserting. `names` must outlive the index and hold every previously
  /// inserted row.
  std::size_t insert(std::string_view name, std::size_t row,
                     const std::vector<std::string>& names) {
    if ((count_ + 1) * 2 > slots_.size()) grow();
    const std::uint64_t hash = std::hash<std::string_view>{}(name);
    std::size_t i = hash & mask_;
    for (;;) {
      Slot& slot = slots_[i];
      if (slot.row_plus_1 == 0) {
        slot.hash = hash;
        slot.row_plus_1 = static_cast<std::uint64_t>(row) + 1;
        ++count_;
        return npos;
      }
      if (slot.hash == hash && names[slot.row_plus_1 - 1] == name) {
        return slot.row_plus_1 - 1;
      }
      i = (i + 1) & mask_;
    }
  }

 private:
  struct Slot {
    std::uint64_t hash;
    std::uint64_t row_plus_1;  // 0 = empty
  };

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, {0, 0});
    mask_ = slots_.size() - 1;
    for (const Slot& slot : old) {
      if (slot.row_plus_1 == 0) continue;
      std::size_t i = slot.hash & mask_;
      while (slots_[i].row_plus_1 != 0) i = (i + 1) & mask_;
      slots_[i] = slot;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t count_ = 0;
};

}  // namespace perspector::ingest
