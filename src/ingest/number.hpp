// Fast decimal-to-double parsing for the streamed CSV pipeline.
//
// parse_number() implements the classic exact fast path (Clinger 1990):
// when the significand fits a double exactly (< 2^53) and the decimal
// exponent is within the exactly-representable powers of ten (|e| <= 22),
// one multiply or divide performs the single rounding step — the result
// is correctly rounded, i.e. BIT-IDENTICAL to std::from_chars. Everything
// else (long significands, huge exponents, nan/inf, malformed cells)
// returns false so the caller can fall back to std::from_chars, which
// keeps the accepted/rejected input sets and every parsed bit exactly
// equal to the slurp reader's. Counter CSVs are overwhelmingly short
// decimals, so the fast path covers nearly every cell.
#pragma once

#include <cstdint>
#include <string_view>

namespace perspector::ingest {

namespace detail {
// 10^0 .. 10^22 are exactly representable as doubles (5^22 < 2^53).
inline constexpr double kPow10[] = {
    1e0,  1e1,  1e2,  1e3,  1e4,  1e5,  1e6,  1e7,  1e8,  1e9,  1e10, 1e11,
    1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22};
}  // namespace detail

/// Parses `cell` as a decimal double. Returns true and sets `out` only
/// when the whole cell was consumed through the exact fast path; the
/// value is then identical to what std::from_chars would produce. On
/// false, `out` is unspecified and the caller must re-parse with
/// std::from_chars (which also owns all error reporting).
inline bool parse_number(std::string_view cell, double& out) {
  const char* p = cell.data();
  const char* const end = p + cell.size();
  if (p == end) return false;

  bool negative = false;
  if (*p == '-') {
    negative = true;
    if (++p == end) return false;
  }

  std::uint64_t mantissa = 0;
  int sig = 0;    // significant digits accumulated into the mantissa
  int exp10 = 0;  // value = mantissa * 10^exp10
  bool any_digits = false;

  while (p != end && *p >= '0' && *p <= '9') {
    const unsigned digit = static_cast<unsigned>(*p - '0');
    any_digits = true;
    if (sig == 0 && digit == 0) {
      ++p;
      continue;  // leading zeros
    }
    if (sig >= 19) return false;  // would overflow the u64 accumulator
    mantissa = mantissa * 10 + digit;
    ++sig;
    ++p;
  }

  if (p != end && *p == '.') {
    ++p;
    bool fraction_digits = false;
    while (p != end && *p >= '0' && *p <= '9') {
      const unsigned digit = static_cast<unsigned>(*p - '0');
      any_digits = true;
      fraction_digits = true;
      --exp10;
      if (sig == 0 && digit == 0) {
        ++p;
        continue;  // leading zeros of a sub-1 value shift the exponent
      }
      if (sig >= 19) return false;
      mantissa = mantissa * 10 + digit;
      ++sig;
      ++p;
    }
    // "1." / "1.e5": implementations differ on a bare decimal point, so
    // defer the accept/reject decision to the from_chars fallback.
    if (!fraction_digits) return false;
  }
  if (!any_digits) return false;

  if (p != end && (*p == 'e' || *p == 'E')) {
    if (++p == end) return false;
    bool exp_negative = false;
    if (*p == '+' || *p == '-') {
      exp_negative = *p == '-';
      if (++p == end) return false;
    }
    int exponent = 0;
    if (!(*p >= '0' && *p <= '9')) return false;
    while (p != end && *p >= '0' && *p <= '9') {
      if (exponent > 9999) return false;
      exponent = exponent * 10 + (*p - '0');
      ++p;
    }
    exp10 += exp_negative ? -exponent : exponent;
  }
  if (p != end) return false;  // trailing bytes: let from_chars reject

  // Exactness condition: one double multiply/divide is the only rounding.
  if (mantissa >= (1ull << 53) || exp10 < -22 || exp10 > 22) return false;
  double value = static_cast<double>(mantissa);
  if (exp10 > 0) {
    value *= detail::kPow10[exp10];
  } else if (exp10 < 0) {
    value /= detail::kPow10[-exp10];
  }
  out = negative ? -value : value;
  return true;
}

}  // namespace perspector::ingest
