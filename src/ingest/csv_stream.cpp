#include "ingest/csv_stream.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace perspector::ingest {

namespace {

obs::Counter& chunks_counter() {
  static obs::Counter& counter = obs::counter("ingest.chunks");
  return counter;
}

obs::Counter& bytes_counter() {
  static obs::Counter& counter = obs::counter("ingest.bytes");
  return counter;
}

obs::Counter& rows_counter() {
  static obs::Counter& counter = obs::counter("ingest.rows");
  return counter;
}

}  // namespace

std::string csv_location(std::size_t line_no, std::uint64_t byte_offset) {
  return "CSV line " + std::to_string(line_no) + " (byte " +
         std::to_string(byte_offset) + ")";
}

// ---- ChunkSource -----------------------------------------------------------

ChunkSource::ChunkSource(std::istream& in, const IngestOptions& options)
    : in_(in),
      chunk_bytes_(std::max<std::size_t>(options.chunk_bytes, 1)),
      threaded_(options.io_thread) {
  const std::size_t ring = threaded_ ? kRingBuffers : 1;
  buffers_.reserve(ring);
  for (std::size_t i = 0; i < ring; ++i) {
    buffers_.push_back(std::make_unique<mem::Scratch<char>>(chunk_bytes_));
    if (threaded_) free_.push_back(i);
  }
  if (threaded_) io_thread_ = std::thread([this] { io_loop(); });
}

ChunkSource::~ChunkSource() {
  if (threaded_) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    space_.notify_all();
    io_thread_.join();
  }
}

void ChunkSource::io_loop() {
  for (;;) {
    std::size_t index;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      space_.wait(lock, [this] { return !free_.empty() || stop_; });
      if (stop_) return;
      index = free_.front();
      free_.pop_front();
    }
    in_.read(buffers_[index]->data(),
             static_cast<std::streamsize>(chunk_bytes_));
    const std::size_t n = static_cast<std::size_t>(in_.gcount());
    const bool at_end = n < chunk_bytes_;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (n > 0) {
        filled_.emplace_back(index, n);
      } else {
        free_.push_back(index);
      }
      if (at_end) eof_ = true;
    }
    ready_.notify_all();
    if (at_end) return;
  }
}

std::string_view ChunkSource::next() {
  if (!threaded_) {
    in_.read(buffers_[0]->data(), static_cast<std::streamsize>(chunk_bytes_));
    const std::size_t n = static_cast<std::size_t>(in_.gcount());
    if (n == 0) return {};
    chunks_counter().increment();
    bytes_counter().add(n);
    return {buffers_[0]->data(), n};
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (lent_ != kNone) {
    free_.push_back(lent_);
    lent_ = kNone;
    space_.notify_all();
  }
  ready_.wait(lock, [this] { return !filled_.empty() || eof_; });
  if (filled_.empty()) return {};
  const auto [index, length] = filled_.front();
  filled_.pop_front();
  lent_ = index;
  lock.unlock();
  chunks_counter().increment();
  bytes_counter().add(length);
  return {buffers_[index]->data(), length};
}

// ---- CsvStream -------------------------------------------------------------

CsvStream::CsvStream(std::istream& in, const IngestOptions& options)
    : source_(in, options) {
  cells_.reserve(16);
  spans_.reserve(16);
}

// Rows are tallied locally and flushed in one bulk add — a relaxed atomic
// per parsed row would be the only contended write on the hot path.
CsvStream::~CsvStream() {
  if (rows_seen_ > 0) rows_counter().add(rows_seen_);
}

bool CsvStream::next_line(std::string_view& line) {
  for (;;) {
    if (chunk_.empty()) {
      if (eof_) {
        if (carry_.empty()) return false;
        // Final line without a trailing newline.
        line_buf_.swap(carry_);
        carry_.clear();
        line = line_buf_;
        return true;
      }
      chunk_ = source_.next();
      if (chunk_.empty()) {
        eof_ = true;
        continue;
      }
    }
    const std::size_t pos = chunk_.find('\n');
    if (pos == std::string_view::npos) {
      carry_.append(chunk_.data(), chunk_.size());
      chunk_ = {};
      continue;
    }
    if (carry_.empty()) {
      line = chunk_.substr(0, pos);
    } else {
      carry_.append(chunk_.data(), pos);
      line_buf_.swap(carry_);
      carry_.clear();
      line = line_buf_;
    }
    chunk_.remove_prefix(pos + 1);
    return true;
  }
}

bool CsvStream::next_row() {
  std::string_view line;
  while (next_line(line)) {
    ++line_no_;
    line_offset_ = offset_;
    // +1 for the consumed '\n'. The final newline-less line over-counts by
    // one, but its successor offset is never observed.
    offset_ += line.size() + 1;
    if (line_no_ == 1 && line.size() >= 3 && line[0] == '\xEF' &&
        line[1] == '\xBB' && line[2] == '\xBF') {
      line.remove_prefix(3);
    }
    // The header line is surfaced even when empty (the caller owns the
    // "bad header" diagnosis, exactly like the getline-based readers);
    // later blank lines are skipped.
    if (line.empty() && line_no_ > 1) continue;
    scan_cells(line);
    ++rows_seen_;
    return true;
  }
  return false;
}

void CsvStream::scan_cells(std::string_view line) {
  cells_.clear();

  // Fast path: no quotes and no interior '\r' — every cell is a view
  // straight into the line (one trailing '\r' is trimmed, which is what
  // dropping unquoted CRs does to a CRLF line).
  std::string_view body = line;
  if (!body.empty() && body.back() == '\r') body.remove_suffix(1);
  if (body.find('"') == std::string_view::npos &&
      body.find('\r') == std::string_view::npos) {
    std::size_t start = 0;
    for (;;) {
      const std::size_t comma = body.find(',', start);
      if (comma == std::string_view::npos) {
        cells_.push_back(body.substr(start));
        return;
      }
      cells_.push_back(body.substr(start, comma - start));
      start = comma + 1;
    }
  }

  // Slow path: materialize into the reused escape buffer, replicating
  // split_csv_line (core/io.cpp) byte for byte. The buffer is reserved up
  // front so it never reallocates mid-scan (output length <= input
  // length), keeping the recorded spans stable.
  escape_.clear();
  escape_.reserve(line.size());
  spans_.clear();
  std::size_t cell_start = 0;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          escape_ += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        escape_ += ch;
      }
    } else if (ch == '"') {
      quoted = true;
    } else if (ch == ',') {
      spans_.emplace_back(cell_start, escape_.size() - cell_start);
      cell_start = escape_.size();
    } else if (ch != '\r') {
      escape_ += ch;
    }
  }
  if (quoted) {
    throw std::runtime_error(csv_location(line_no_, line_offset_) +
                             ": unterminated quote");
  }
  spans_.emplace_back(cell_start, escape_.size() - cell_start);
  for (const auto& [start, length] : spans_) {
    cells_.push_back(std::string_view(escape_).substr(start, length));
  }
}

// ---- ColumnMap -------------------------------------------------------------

ColumnMap::ColumnMap(const std::vector<std::string_view>& header,
                     std::span<const std::string> targets) {
  if (header.empty()) {
    throw std::invalid_argument("ColumnMap: empty header");
  }
  source_cells_ = header.size();
  perm_.reserve(targets.size());
  for (const std::string& target : targets) {
    std::size_t found = static_cast<std::size_t>(-1);
    for (std::size_t i = 1; i < header.size(); ++i) {
      if (header[i] == target) {
        if (found != static_cast<std::size_t>(-1)) {
          throw std::invalid_argument("ColumnMap: duplicate column '" +
                                      target + "' in source header");
        }
        found = i - 1;
      }
    }
    if (found == static_cast<std::size_t>(-1)) {
      throw std::invalid_argument("ColumnMap: column '" + target +
                                  "' missing from source header");
    }
    perm_.push_back(found);
  }
}

void ColumnMap::rearrange(const std::vector<std::string_view>& cells,
                          std::vector<std::string_view>& out) const {
  if (cells.size() != source_cells_) {
    throw std::invalid_argument(
        "ColumnMap: row has " + std::to_string(cells.size()) +
        " cells, header had " + std::to_string(source_cells_));
  }
  out.clear();
  out.reserve(perm_.size());
  for (const std::size_t source : perm_) {
    out.push_back(cells[1 + source]);
  }
}

}  // namespace perspector::ingest
