// PARSEC 3.0 model: 13 multi-phase parallel applications.
//
// PARSEC was explicitly assembled for diversity and real phase behaviour
// (Bienia & Li 2009) — each workload here runs 3-5 *contrasting* phases
// (input load, region-of-interest compute, output), which is what earns the
// suite its high TrendScore in the paper (Fig. 3a).
#include "suites/builders.hpp"
#include "suites/suite_factory.hpp"

namespace perspector::suites {

using namespace detail;

sim::SuiteSpec parsec(const SuiteBuildOptions& options) {
  const std::uint64_t n = options.instructions_per_workload;
  sim::SuiteSpec suite;
  suite.name = "PARSEC";

  suite.workloads = {
      workload("blackscholes", n,
               {phase("load", 0.15, {.loads = 0.3, .stores = 0.2, .branches = 0.1},
                      seq(2 * MiB), {.taken = 0.9, .randomness = 0.05}),
                phase("price", 0.75,
                      {.loads = 0.24, .stores = 0.08, .branches = 0.06, .fp = 0.5},
                      seq(2 * MiB, 40), {.taken = 0.96, .randomness = 0.02}),
                phase("writeback", 0.10,
                      {.loads = 0.2, .stores = 0.35, .branches = 0.08},
                      seq(1 * MiB), {.taken = 0.92, .randomness = 0.04})}),
      workload("bodytrack", n,
               {phase("decode", 0.2, {.loads = 0.3, .stores = 0.15, .branches = 0.14},
                      seq(8 * MiB, 16), {.taken = 0.85, .randomness = 0.08}),
                phase("particle-filter", 0.6,
                      {.loads = 0.28, .stores = 0.1, .branches = 0.12, .fp = 0.3},
                      rnd(4 * MiB), {.taken = 0.78, .randomness = 0.12}),
                phase("annealing", 0.2,
                      {.loads = 0.26, .stores = 0.12, .branches = 0.18, .fp = 0.2},
                      zipf(2 * MiB, 1.0), {.taken = 0.7, .randomness = 0.15})}),
      workload("canneal", n,
               {phase("netlist-load", 0.25,
                      {.loads = 0.32, .stores = 0.2, .branches = 0.1},
                      seq(32 * MiB), {.taken = 0.88, .randomness = 0.06}),
                phase("swap-anneal", 0.75,
                      {.loads = 0.4, .stores = 0.1, .branches = 0.14},
                      chase(40 * MiB), {.taken = 0.6, .randomness = 0.25})}),
      workload("dedup", n,
               {phase("chunk", 0.3, {.loads = 0.34, .stores = 0.1, .branches = 0.14},
                      seq(24 * MiB, 16), {.taken = 0.82, .randomness = 0.1}),
                phase("hash-dedup", 0.5,
                      {.loads = 0.32, .stores = 0.14, .branches = 0.16},
                      rnd(16 * MiB), {.taken = 0.68, .randomness = 0.2}),
                phase("compress", 0.2,
                      {.loads = 0.3, .stores = 0.18, .branches = 0.14},
                      seq(8 * MiB, 8), {.taken = 0.8, .randomness = 0.1})}),
      workload("facesim", n,
               {phase("mesh-load", 0.15,
                      {.loads = 0.3, .stores = 0.22, .branches = 0.08},
                      seq(16 * MiB), {.taken = 0.9, .randomness = 0.04}),
                phase("fem-solve", 0.85,
                      {.loads = 0.3, .stores = 0.12, .branches = 0.06, .fp = 0.4},
                      strided(20 * MiB, 96), {.taken = 0.93, .randomness = 0.03})}),
      workload("ferret", n,
               {phase("segment", 0.25,
                      {.loads = 0.28, .stores = 0.12, .branches = 0.12, .fp = 0.2},
                      seq(4 * MiB, 16), {.taken = 0.86, .randomness = 0.07}),
                phase("extract", 0.25,
                      {.loads = 0.26, .stores = 0.1, .branches = 0.1, .fp = 0.3},
                      strided(6 * MiB, 128), {.taken = 0.88, .randomness = 0.06}),
                phase("index-query", 0.35,
                      {.loads = 0.36, .stores = 0.08, .branches = 0.16},
                      zipf(24 * MiB, 1.15), {.taken = 0.66, .randomness = 0.2}),
                phase("rank", 0.15,
                      {.loads = 0.28, .stores = 0.1, .branches = 0.14, .fp = 0.22},
                      rnd(2 * MiB), {.taken = 0.75, .randomness = 0.12})}),
      workload("fluidanimate", n,
               {phase("grid-build", 0.2,
                      {.loads = 0.3, .stores = 0.22, .branches = 0.1},
                      rnd(12 * MiB), {.taken = 0.84, .randomness = 0.08}),
                phase("density-force", 0.8,
                      {.loads = 0.32, .stores = 0.12, .branches = 0.06, .fp = 0.38},
                      strided(16 * MiB, 64), {.taken = 0.93, .randomness = 0.03})}),
      workload("freqmine", n,
               {phase("fp-tree-build", 0.35,
                      {.loads = 0.32, .stores = 0.2, .branches = 0.14},
                      seq(20 * MiB, 16), {.taken = 0.8, .randomness = 0.1}),
                phase("mine", 0.65,
                      {.loads = 0.38, .stores = 0.08, .branches = 0.18},
                      chase(28 * MiB), {.taken = 0.64, .randomness = 0.22})}),
      workload("raytrace", n,
               {phase("bvh-build", 0.2,
                      {.loads = 0.3, .stores = 0.2, .branches = 0.12, .fp = 0.15},
                      rnd(24 * MiB), {.taken = 0.78, .randomness = 0.12}),
                phase("trace", 0.8,
                      {.loads = 0.32, .stores = 0.06, .branches = 0.14, .fp = 0.26},
                      chase(32 * MiB), {.taken = 0.72, .randomness = 0.15})}),
      workload("streamcluster", n,
               {phase("stream-in", 0.2,
                      {.loads = 0.34, .stores = 0.16, .branches = 0.08},
                      seq(16 * MiB), {.taken = 0.9, .randomness = 0.05}),
                phase("kmedian", 0.8,
                      {.loads = 0.34, .stores = 0.08, .branches = 0.1, .fp = 0.3},
                      strided(16 * MiB, 40), {.taken = 0.88, .randomness = 0.06})}),
      workload("swaptions", n,
               {phase("hjm-sim", 1.0,
                      {.loads = 0.24, .stores = 0.08, .branches = 0.08, .fp = 0.5},
                      rnd(1 * MiB), {.taken = 0.9, .randomness = 0.05})}),
      workload("vips", n,
               {phase("decode", 0.25,
                      {.loads = 0.32, .stores = 0.18, .branches = 0.12},
                      seq(24 * MiB, 16), {.taken = 0.85, .randomness = 0.08}),
                phase("affine-convolve", 0.55,
                      {.loads = 0.3, .stores = 0.14, .branches = 0.06, .fp = 0.36},
                      strided(24 * MiB, 128), {.taken = 0.94, .randomness = 0.03}),
                phase("encode", 0.2,
                      {.loads = 0.28, .stores = 0.2, .branches = 0.12},
                      seq(12 * MiB, 8), {.taken = 0.86, .randomness = 0.07})}),
      workload("x264", n,
               {phase("lookahead", 0.3,
                      {.loads = 0.34, .stores = 0.08, .branches = 0.14},
                      strided(12 * MiB, 384), {.taken = 0.82, .randomness = 0.1}),
                phase("me-mode-decision", 0.5,
                      {.loads = 0.32, .stores = 0.1, .branches = 0.12, .fp = 0.1},
                      rnd(8 * MiB), {.taken = 0.8, .randomness = 0.1}),
                phase("entropy-encode", 0.2,
                      {.loads = 0.28, .stores = 0.18, .branches = 0.2},
                      seq(4 * MiB, 8), {.taken = 0.7, .randomness = 0.16})}),
  };

  suite.validate();
  return suite;
}

}  // namespace perspector::suites
