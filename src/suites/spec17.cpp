// SPEC CPU 2017 model: all 43 workloads (intrate/intspeed/fprate/fpspeed).
//
// Speed workloads reuse their rate sibling's profile at a larger working set
// — deliberately: prior work (Limaye & Adegbija 2018, Panda et al. 2017)
// found substantial redundancy between the rate and speed halves, and the
// paper's subset experiment (Section IV-C) exploits exactly that.
#include <algorithm>
#include <functional>

#include "stats/rng.hpp"
#include "suites/builders.hpp"
#include "suites/suite_factory.hpp"

namespace perspector::suites {

using namespace detail;

namespace {

// Derives a speed variant from a rate profile: scales the working sets by
// `factor` and perturbs the mix/branch parameters by small name-derived
// deltas. Speed inputs are bigger but the code also spends its time a
// little differently — siblings stay correlated without being clones.
sim::WorkloadSpec scaled_variant(const sim::WorkloadSpec& base,
                                 std::string name, double factor) {
  sim::WorkloadSpec w = base;
  w.name = std::move(name);
  stats::Rng jitter(std::hash<std::string>{}(w.name));
  for (auto& phase : w.phases) {
    const double ws = static_cast<double>(phase.pattern.working_set_bytes);
    phase.pattern.working_set_bytes =
        std::max<std::uint64_t>(static_cast<std::uint64_t>(ws * factor), 64);
    const auto nudge = [&](double v, double amount, double lo, double hi) {
      return std::clamp(v + jitter.uniform(-amount, amount), lo, hi);
    };
    phase.load_frac = nudge(phase.load_frac, 0.04, 0.0, 0.6);
    phase.store_frac = nudge(phase.store_frac, 0.03, 0.0, 0.4);
    phase.branch_frac = nudge(phase.branch_frac, 0.03, 0.01, 0.4);
    phase.fp_frac = nudge(phase.fp_frac, phase.fp_frac > 0 ? 0.04 : 0.0,
                          0.0, 0.5);
    phase.branch_taken_prob = nudge(phase.branch_taken_prob, 0.05, 0.0, 1.0);
    phase.branch_randomness = nudge(phase.branch_randomness, 0.04, 0.0, 1.0);
    if ((phase.pattern.kind == sim::AccessPatternKind::Sequential ||
         phase.pattern.kind == sim::AccessPatternKind::Strided) &&
        jitter.bernoulli(0.5)) {
      phase.pattern.stride_bytes *= 2;
    }
  }
  return w;
}

}  // namespace

sim::SuiteSpec spec17(const SuiteBuildOptions& options) {
  const std::uint64_t n = options.instructions_per_workload;
  sim::SuiteSpec suite;
  suite.name = "SPEC'17";

  // ---- intrate -----------------------------------------------------------
  auto perlbench = workload(
      "500.perlbench_r", n,
      {phase("parse", 0.3, {.loads = 0.28, .stores = 0.12, .branches = 0.22},
             seq(8 * MiB), {.taken = 0.7, .randomness = 0.18, .sites = 256}),
       phase("interp", 0.7, {.loads = 0.30, .stores = 0.10, .branches = 0.24},
             zipf(16 * MiB, 1.2),
             {.taken = 0.6, .randomness = 0.22, .sites = 512})});
  auto gcc = workload(
      "502.gcc_r", n,
      {phase("front", 0.35, {.loads = 0.30, .stores = 0.14, .branches = 0.2},
             seq(12 * MiB), {.taken = 0.72, .randomness = 0.15, .sites = 512}),
       phase("opt", 0.65, {.loads = 0.32, .stores = 0.12, .branches = 0.21},
             chase(10 * MiB), {.taken = 0.65, .randomness = 0.2, .sites = 512})});
  auto mcf = workload(
      "505.mcf_r", n,
      {phase("simplex", 1.0, {.loads = 0.44, .stores = 0.06, .branches = 0.16},
             chase(48 * MiB), {.taken = 0.8, .randomness = 0.12})});
  auto omnetpp = workload(
      "520.omnetpp_r", n,
      {phase("events", 1.0, {.loads = 0.34, .stores = 0.16, .branches = 0.2},
             chase(32 * MiB), {.taken = 0.68, .randomness = 0.18, .sites = 256})});
  auto xalancbmk = workload(
      "523.xalancbmk_r", n,
      {phase("xml-parse", 0.4, {.loads = 0.3, .stores = 0.16, .branches = 0.2},
             seq(6 * MiB), {.taken = 0.75, .randomness = 0.12}),
       phase("xslt", 0.6, {.loads = 0.32, .stores = 0.12, .branches = 0.22},
             zipf(24 * MiB, 0.8), {.taken = 0.66, .randomness = 0.18})});
  auto x264 = workload(
      "525.x264_r", n,
      {phase("me-search", 0.6,
             {.loads = 0.34, .stores = 0.1, .branches = 0.12, .fp = 0.08},
             strided(16 * MiB, 256), {.taken = 0.9, .randomness = 0.05}),
       phase("encode", 0.4,
             {.loads = 0.28, .stores = 0.16, .branches = 0.12, .fp = 0.1},
             seq(8 * MiB, 64), {.taken = 0.9, .randomness = 0.05})});
  auto deepsjeng = workload(
      "531.deepsjeng_r", n,
      {phase("search", 1.0, {.loads = 0.28, .stores = 0.08, .branches = 0.24},
             rnd(4 * MiB), {.taken = 0.55, .randomness = 0.3, .sites = 512})});
  auto leela = workload(
      "541.leela_r", n,
      {phase("mcts", 1.0,
             {.loads = 0.27, .stores = 0.09, .branches = 0.22, .fp = 0.06},
             rnd(2 * MiB), {.taken = 0.6, .randomness = 0.25, .sites = 256})});
  auto exchange2 = workload(
      "548.exchange2_r", n,
      {phase("puzzle", 1.0, {.loads = 0.12, .stores = 0.05, .branches = 0.3},
             seq(256 * KiB), {.taken = 0.85, .randomness = 0.04, .sites = 64})});
  auto xz = workload(
      "557.xz_r", n,
      {phase("compress", 0.55, {.loads = 0.3, .stores = 0.18, .branches = 0.16},
             seq(32 * MiB, 16), {.taken = 0.78, .randomness = 0.12}),
       phase("match", 0.45, {.loads = 0.36, .stores = 0.08, .branches = 0.18},
             rnd(8 * MiB), {.taken = 0.64, .randomness = 0.2})});

  // ---- fprate ------------------------------------------------------------
  auto bwaves = workload(
      "503.bwaves_r", n,
      {phase("solver", 1.0,
             {.loads = 0.36, .stores = 0.12, .branches = 0.06, .fp = 0.34},
             seq(24 * MiB, 8), {.taken = 0.95, .randomness = 0.02})});
  auto cactu = workload(
      "507.cactuBSSN_r", n,
      {phase("stencil", 1.0,
             {.loads = 0.34, .stores = 0.14, .branches = 0.06, .fp = 0.32},
             strided(16 * MiB, 1024), {.taken = 0.94, .randomness = 0.03})});
  auto namd = workload(
      "508.namd_r", n,
      {phase("forces", 1.0,
             {.loads = 0.3, .stores = 0.1, .branches = 0.08, .fp = 0.4},
             rnd(1 * MiB), {.taken = 0.9, .randomness = 0.05})});
  auto parest = workload(
      "510.parest_r", n,
      {phase("assemble", 0.4,
             {.loads = 0.3, .stores = 0.14, .branches = 0.1, .fp = 0.28},
             chase(8 * MiB), {.taken = 0.85, .randomness = 0.08}),
       phase("solve", 0.6,
             {.loads = 0.34, .stores = 0.1, .branches = 0.08, .fp = 0.34},
             strided(12 * MiB, 64), {.taken = 0.92, .randomness = 0.04})});
  auto povray = workload(
      "511.povray_r", n,
      {phase("trace", 1.0,
             {.loads = 0.26, .stores = 0.08, .branches = 0.18, .fp = 0.3},
             rnd(512 * KiB), {.taken = 0.7, .randomness = 0.15, .sites = 256})});
  auto lbm = workload(
      "519.lbm_r", n,
      {phase("stream-collide", 1.0,
             {.loads = 0.30, .stores = 0.30, .branches = 0.04, .fp = 0.26},
             seq(56 * MiB, 8), {.taken = 0.97, .randomness = 0.01})});
  auto wrf = workload(
      "521.wrf_r", n,
      {phase("dynamics", 0.6,
             {.loads = 0.32, .stores = 0.12, .branches = 0.08, .fp = 0.32},
             seq(16 * MiB, 8), {.taken = 0.92, .randomness = 0.04}),
       phase("physics", 0.4,
             {.loads = 0.28, .stores = 0.12, .branches = 0.12, .fp = 0.3},
             strided(8 * MiB, 512), {.taken = 0.85, .randomness = 0.08})});
  auto blender = workload(
      "526.blender_r", n,
      {phase("render", 1.0,
             {.loads = 0.3, .stores = 0.1, .branches = 0.12, .fp = 0.3},
             rnd(8 * MiB), {.taken = 0.8, .randomness = 0.1})});
  auto cam4 = workload(
      "527.cam4_r", n,
      {phase("physics", 1.0,
             {.loads = 0.3, .stores = 0.12, .branches = 0.12, .fp = 0.28},
             strided(8 * MiB, 256), {.taken = 0.84, .randomness = 0.1})});
  auto imagick = workload(
      "538.imagick_r", n,
      {phase("convolve", 1.0,
             {.loads = 0.3, .stores = 0.14, .branches = 0.06, .fp = 0.38},
             seq(4 * MiB, 8), {.taken = 0.95, .randomness = 0.02})});
  auto nab = workload(
      "544.nab_r", n,
      {phase("md", 1.0,
             {.loads = 0.28, .stores = 0.1, .branches = 0.1, .fp = 0.36},
             rnd(2 * MiB), {.taken = 0.88, .randomness = 0.06})});
  auto fotonik = workload(
      "549.fotonik3d_r", n,
      {phase("fdtd", 1.0,
             {.loads = 0.34, .stores = 0.16, .branches = 0.04, .fp = 0.32},
             strided(32 * MiB, 2048), {.taken = 0.96, .randomness = 0.02})});
  auto roms = workload(
      "554.roms_r", n,
      {phase("ocean", 1.0,
             {.loads = 0.34, .stores = 0.14, .branches = 0.06, .fp = 0.32},
             seq(32 * MiB, 8), {.taken = 0.95, .randomness = 0.03})});

  suite.workloads = {perlbench, gcc,    mcf,     omnetpp, xalancbmk, x264,
                     deepsjeng, leela,  exchange2, xz,
                     bwaves,    cactu,  namd,    parest,  povray,    lbm,
                     wrf,       blender, cam4,   imagick, nab,       fotonik,
                     roms};

  // ---- intspeed: scaled siblings of the intrate profiles ------------------
  suite.workloads.push_back(scaled_variant(perlbench, "600.perlbench_s", 2.0));
  suite.workloads.push_back(scaled_variant(gcc, "602.gcc_s", 2.5));
  suite.workloads.push_back(scaled_variant(mcf, "605.mcf_s", 1.5));
  suite.workloads.push_back(scaled_variant(omnetpp, "620.omnetpp_s", 1.5));
  suite.workloads.push_back(scaled_variant(xalancbmk, "623.xalancbmk_s", 2.0));
  suite.workloads.push_back(scaled_variant(x264, "625.x264_s", 1.5));
  suite.workloads.push_back(scaled_variant(deepsjeng, "631.deepsjeng_s", 4.0));
  suite.workloads.push_back(scaled_variant(leela, "641.leela_s", 1.0));
  suite.workloads.push_back(scaled_variant(exchange2, "648.exchange2_s", 1.0));
  suite.workloads.push_back(scaled_variant(xz, "657.xz_s", 2.0));

  // ---- fpspeed: scaled siblings of the fprate profiles ---------------------
  suite.workloads.push_back(scaled_variant(bwaves, "603.bwaves_s", 2.0));
  suite.workloads.push_back(scaled_variant(cactu, "607.cactuBSSN_s", 1.5));
  suite.workloads.push_back(scaled_variant(lbm, "619.lbm_s", 1.2));
  suite.workloads.push_back(scaled_variant(wrf, "621.wrf_s", 1.5));
  suite.workloads.push_back(scaled_variant(cam4, "627.cam4_s", 1.5));
  // pop2 has no rate sibling; an ocean model close to roms.
  suite.workloads.push_back(scaled_variant(roms, "628.pop2_s", 1.3));
  suite.workloads.push_back(scaled_variant(imagick, "638.imagick_s", 2.0));
  suite.workloads.push_back(scaled_variant(nab, "644.nab_s", 2.0));
  suite.workloads.push_back(scaled_variant(fotonik, "649.fotonik3d_s", 1.5));
  suite.workloads.push_back(scaled_variant(roms, "654.roms_s", 1.5));

  suite.validate();
  return suite;
}

}  // namespace perspector::suites
