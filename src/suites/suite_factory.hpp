// Synthetic models of the six benchmark suites evaluated in the paper
// (Table III), plus the five Fig. 1 demo workloads.
//
// Each factory returns a SuiteSpec whose workloads structurally encode the
// documented character of the real suite (see DESIGN.md substitution table):
//   * SPEC'17    — 43 CPU/memory workloads, wide variety, known internal
//                  redundancy between rate/speed siblings;
//   * PARSEC     — 13 multi-phase parallel applications (strong phases);
//   * Ligra      — 12 graph algorithms sharing a load-graph front-end
//                  (strongly clustered);
//   * LMbench    — 14 OS/memory micro-probes at parameter-space extremes
//                  (high coverage, no phases);
//   * Nbench     — 10 steady-state CPU kernels (small working sets);
//   * SGXGauge   — 10 diverse real-world applications (strong phases).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/workload.hpp"

namespace perspector::suites {

/// Scale knobs shared by all factories.
struct SuiteBuildOptions {
  /// Equal instruction budget per workload — the paper equalizes execution
  /// time across workloads by tuning inputs; equal budgets are our analogue.
  std::uint64_t instructions_per_workload = 2'000'000;
};

sim::SuiteSpec spec17(const SuiteBuildOptions& options = {});
sim::SuiteSpec parsec(const SuiteBuildOptions& options = {});
sim::SuiteSpec ligra(const SuiteBuildOptions& options = {});
sim::SuiteSpec lmbench(const SuiteBuildOptions& options = {});
sim::SuiteSpec nbench(const SuiteBuildOptions& options = {});
sim::SuiteSpec sgxgauge(const SuiteBuildOptions& options = {});

/// All six paper suites, in Table III order.
std::vector<sim::SuiteSpec> all_suites(const SuiteBuildOptions& options = {});

/// The five workloads of the paper's Fig. 1 trend-normalization example:
/// PageRank, HashJoin, BFS, BTree, OpenSSL.
sim::SuiteSpec demo_five(const SuiteBuildOptions& options = {});

// Emerging-domain suites (paper Section I motivation; modelled on the
// cited RIoTBench, SeBS, and ComB suites).

/// IoT distributed stream-processing operators (8 workloads).
sim::SuiteSpec riotbench(const SuiteBuildOptions& options = {});
/// Serverless / FaaS functions with cold-start phases (8 workloads).
sim::SuiteSpec sebs(const SuiteBuildOptions& options = {});
/// Edge-computing media/inference pipelines (6 workloads).
sim::SuiteSpec comb(const SuiteBuildOptions& options = {});

/// SPLASH-2: the 1995 HPC suite PARSEC replaced (12 workloads) — for the
/// reference-[29] comparison bench.
sim::SuiteSpec splash2(const SuiteBuildOptions& options = {});

/// True when `name` names one of the built-in suites above (demo_five
/// excluded — it is a figure fixture, not a servable suite).
bool is_builtin_suite(const std::string& name);

/// Builds the named built-in suite. Throws std::invalid_argument for an
/// unknown name; the serving and job layers share this dispatch so their
/// notions of "built-in" can never drift apart.
sim::SuiteSpec suite_by_name(const std::string& name,
                             const SuiteBuildOptions& options = {});

}  // namespace perspector::suites
