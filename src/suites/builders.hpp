// Internal helpers shared by the suite factories. Not part of the public
// API; include only from suites/*.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "sim/workload.hpp"

namespace perspector::suites::detail {

inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;

/// Instruction-mix shorthand: loads / stores / branches / fp.
struct Mix {
  double loads = 0.25;
  double stores = 0.10;
  double branches = 0.15;
  double fp = 0.0;
};

/// Branch-behaviour shorthand.
struct Branchiness {
  double taken = 0.85;
  double randomness = 0.10;
  std::uint32_t sites = 64;
};

inline sim::PhaseSpec phase(std::string name, double weight, const Mix& mix,
                            const sim::AccessPatternParams& pattern,
                            const Branchiness& branches = {}) {
  sim::PhaseSpec p;
  p.name = std::move(name);
  p.weight = weight;
  p.load_frac = mix.loads;
  p.store_frac = mix.stores;
  p.branch_frac = mix.branches;
  p.fp_frac = mix.fp;
  p.pattern = pattern;
  p.branch_taken_prob = branches.taken;
  p.branch_randomness = branches.randomness;
  p.branch_sites = branches.sites;
  return p;
}

inline sim::AccessPatternParams seq(std::uint64_t ws,
                                    std::uint64_t stride = 8) {
  return {.kind = sim::AccessPatternKind::Sequential,
          .working_set_bytes = ws,
          .stride_bytes = stride};
}

inline sim::AccessPatternParams strided(std::uint64_t ws,
                                        std::uint64_t stride) {
  return {.kind = sim::AccessPatternKind::Strided,
          .working_set_bytes = ws,
          .stride_bytes = stride};
}

inline sim::AccessPatternParams rnd(std::uint64_t ws) {
  return {.kind = sim::AccessPatternKind::RandomUniform,
          .working_set_bytes = ws};
}

inline sim::AccessPatternParams chase(std::uint64_t ws) {
  return {.kind = sim::AccessPatternKind::PointerChase,
          .working_set_bytes = ws};
}

inline sim::AccessPatternParams zipf(std::uint64_t ws, double s = 1.1) {
  return {.kind = sim::AccessPatternKind::Zipf,
          .working_set_bytes = ws,
          .zipf_s = s};
}

inline sim::AccessPatternParams graph(std::uint64_t ws,
                                      double jump_prob = 0.2) {
  return {.kind = sim::AccessPatternKind::GraphTraversal,
          .working_set_bytes = ws,
          .stride_bytes = 8,
          .jump_prob = jump_prob};
}

inline sim::WorkloadSpec workload(std::string name,
                                  std::uint64_t instructions,
                                  std::vector<sim::PhaseSpec> phases) {
  sim::WorkloadSpec w;
  w.name = std::move(name);
  w.instructions = instructions;
  w.phases = std::move(phases);
  return w;
}

}  // namespace perspector::suites::detail
