// SGXGauge model (non-SGX variants, per the paper): 10 real-world
// applications from different domains.
//
// Like PARSEC, these are full applications with distinct execution phases
// and little shared code — the paper reports SGXGauge alongside PARSEC at
// the top of the TrendScore ranking (Fig. 3a) and shows it far less
// clustered than Nbench (Fig. 4).
#include "suites/builders.hpp"
#include "suites/suite_factory.hpp"

namespace perspector::suites {

using namespace detail;

sim::SuiteSpec sgxgauge(const SuiteBuildOptions& options) {
  const std::uint64_t n = options.instructions_per_workload;
  sim::SuiteSpec suite;
  suite.name = "SGXGauge";

  suite.workloads = {
      workload("openssl", n,
               {phase("keygen", 0.2, {.loads = 0.2, .stores = 0.1, .branches = 0.14},
                      rnd(256 * KiB), {.taken = 0.7, .randomness = 0.15}),
                phase("sign-verify", 0.8,
                      {.loads = 0.18, .stores = 0.08, .branches = 0.1},
                      seq(128 * KiB, 8), {.taken = 0.9, .randomness = 0.04})}),
      workload("memcached", n,
               {phase("warmup", 0.25, {.loads = 0.3, .stores = 0.26, .branches = 0.12},
                      seq(40 * MiB, 64), {.taken = 0.88, .randomness = 0.06}),
                phase("get-heavy", 0.6,
                      {.loads = 0.4, .stores = 0.06, .branches = 0.16},
                      zipf(40 * MiB, 1.2), {.taken = 0.7, .randomness = 0.16}),
                phase("evict", 0.15, {.loads = 0.3, .stores = 0.22, .branches = 0.16},
                      rnd(40 * MiB), {.taken = 0.66, .randomness = 0.2})}),
      workload("sqlite", n,
               {phase("schema-load", 0.15,
                      {.loads = 0.3, .stores = 0.18, .branches = 0.14},
                      seq(4 * MiB), {.taken = 0.84, .randomness = 0.08}),
                phase("oltp", 0.6, {.loads = 0.34, .stores = 0.14, .branches = 0.2},
                      zipf(16 * MiB, 1.0), {.taken = 0.68, .randomness = 0.18}),
                phase("vacuum", 0.25, {.loads = 0.32, .stores = 0.2, .branches = 0.1},
                      seq(16 * MiB, 8), {.taken = 0.9, .randomness = 0.05})}),
      workload("btree", n,
               {phase("bulk-load", 0.3, {.loads = 0.28, .stores = 0.24, .branches = 0.14},
                      seq(24 * MiB, 64), {.taken = 0.85, .randomness = 0.08}),
                phase("lookup", 0.7, {.loads = 0.4, .stores = 0.04, .branches = 0.2},
                      chase(24 * MiB), {.taken = 0.58, .randomness = 0.25})}),
      workload("hashjoin", n,
               {phase("build", 0.35, {.loads = 0.3, .stores = 0.24, .branches = 0.1},
                      seq(20 * MiB, 8), {.taken = 0.9, .randomness = 0.05}),
                phase("probe", 0.65, {.loads = 0.42, .stores = 0.06, .branches = 0.14},
                      rnd(20 * MiB), {.taken = 0.72, .randomness = 0.15})}),
      workload("pagerank", n,
               {phase("load-edges", 0.3, {.loads = 0.34, .stores = 0.18, .branches = 0.08},
                      seq(28 * MiB, 8), {.taken = 0.92, .randomness = 0.04}),
                phase("iterate", 0.7,
                      {.loads = 0.36, .stores = 0.1, .branches = 0.12, .fp = 0.14},
                      graph(28 * MiB, 0.25), {.taken = 0.7, .randomness = 0.16})}),
      workload("bfs", n,
               {phase("load-graph", 0.3, {.loads = 0.32, .stores = 0.18, .branches = 0.08},
                      seq(24 * MiB, 8), {.taken = 0.92, .randomness = 0.04}),
                phase("frontier", 0.7, {.loads = 0.38, .stores = 0.1, .branches = 0.18},
                      graph(24 * MiB, 0.35), {.taken = 0.6, .randomness = 0.24})}),
      workload("lighttpd", n,
               {phase("accept-parse", 0.5,
                      {.loads = 0.26, .stores = 0.12, .branches = 0.26},
                      seq(1 * MiB, 8), {.taken = 0.72, .randomness = 0.16, .sites = 512}),
                phase("serve", 0.5, {.loads = 0.34, .stores = 0.14, .branches = 0.14},
                      zipf(8 * MiB, 0.9), {.taken = 0.8, .randomness = 0.1})}),
      workload("xgboost", n,
               {phase("load-dmatrix", 0.2,
                      {.loads = 0.32, .stores = 0.2, .branches = 0.08},
                      seq(16 * MiB, 8), {.taken = 0.92, .randomness = 0.04}),
                phase("grow-trees", 0.65,
                      {.loads = 0.32, .stores = 0.1, .branches = 0.16, .fp = 0.22},
                      rnd(16 * MiB), {.taken = 0.64, .randomness = 0.2}),
                phase("predict", 0.15,
                      {.loads = 0.3, .stores = 0.08, .branches = 0.2, .fp = 0.12},
                      chase(8 * MiB), {.taken = 0.62, .randomness = 0.22})}),
      workload("blockchain", n,
               {phase("verify-sigs", 0.45,
                      {.loads = 0.2, .stores = 0.08, .branches = 0.1},
                      seq(512 * KiB, 8), {.taken = 0.9, .randomness = 0.04}),
                phase("merkle-update", 0.35,
                      {.loads = 0.32, .stores = 0.18, .branches = 0.14},
                      chase(12 * MiB), {.taken = 0.66, .randomness = 0.2}),
                phase("state-commit", 0.2,
                      {.loads = 0.28, .stores = 0.26, .branches = 0.1},
                      rnd(12 * MiB), {.taken = 0.78, .randomness = 0.12})}),
  };

  suite.validate();
  return suite;
}

}  // namespace perspector::suites
