// LMbench model: 14 OS/memory micro-probes.
//
// Table III describes LMbench as "a set of micro-benchmarks to measure the
// latency of different system calls"; McVoy & Staelin's tool also measures
// memory/file/IPC *bandwidth*. The model therefore mixes:
//   * bandwidth probes — wide streaming reads/writes (one access per cache
//     line, like vectorized copies): extreme LLC traffic, but TLB-gentle
//     (64 lines per page);
//   * OS-latency probes — syscalls, signals, select, fork/exec, page
//     faults, mmap, context switches: extremes on branches, page faults,
//     and cycles, with small data footprints.
// Each probe sits at an extreme of *some* dimension — that is why LMbench
// gets the paper's top all-events CoverageScore (Fig. 3a, Fig. 6) — but
// none of them sustains SPEC-class TLB pressure, which is why its coverage
// collapses under TLB-only scoring while SPEC'17 takes the lead (Fig. 3c).
// Every probe is a single steady phase (micro-benchmarks have no phases).
#include "suites/builders.hpp"
#include "suites/suite_factory.hpp"

namespace perspector::suites {

using namespace detail;

sim::SuiteSpec lmbench(const SuiteBuildOptions& options) {
  const std::uint64_t n = options.instructions_per_workload;
  sim::SuiteSpec suite;
  suite.name = "LMbench";

  suite.workloads = {
      // bw_file_rd: streaming page-cache reads, line-width accesses.
      workload("bw_file_rd", n,
               {phase("stream-rd", 1.0,
                      {.loads = 0.42, .stores = 0.02, .branches = 0.05},
                      seq(48 * MiB, 64), {.taken = 0.99, .randomness = 0.005})}),
      // bw_file_wr: streaming writes through the page cache.
      workload("bw_file_wr", n,
               {phase("stream-wr", 1.0,
                      {.loads = 0.04, .stores = 0.30, .branches = 0.05},
                      seq(48 * MiB, 64), {.taken = 0.99, .randomness = 0.005})}),
      // bw_mmap_rd: mapped-file streaming read.
      workload("bw_mmap_rd", n,
               {phase("mmap-rd", 1.0,
                      {.loads = 0.40, .stores = 0.02, .branches = 0.05},
                      seq(24 * MiB, 64), {.taken = 0.99, .randomness = 0.005})}),
      // bw_pipe: bulk pipe transfer, buffer bounces inside the LLC.
      workload("bw_pipe", n,
               {phase("pipe-bw", 1.0,
                      {.loads = 0.30, .stores = 0.20, .branches = 0.08},
                      seq(4 * MiB, 64), {.taken = 0.96, .randomness = 0.02})}),
      // bw_unix: AF_UNIX socket ping-pong, smaller buffers.
      workload("bw_unix", n,
               {phase("sock-bw", 1.0,
                      {.loads = 0.26, .stores = 0.18, .branches = 0.12},
                      seq(2 * MiB, 64), {.taken = 0.92, .randomness = 0.04})}),
      // lat_syscall: almost no data traffic, deep predictable call chains.
      workload("lat_syscall", n,
               {phase("syscall", 1.0,
                      {.loads = 0.14, .stores = 0.08, .branches = 0.3},
                      seq(64 * KiB), {.taken = 0.9, .randomness = 0.03, .sites = 512})}),
      // lat_select: fd scanning, small ws, branch-heavy with entropy.
      workload("lat_select", n,
               {phase("select", 1.0,
                      {.loads = 0.28, .stores = 0.06, .branches = 0.32},
                      seq(128 * KiB), {.taken = 0.7, .randomness = 0.18, .sites = 256})}),
      // lat_sig: signal delivery — control-flow chaos, tiny footprint.
      workload("lat_sig", n,
               {phase("signal", 1.0,
                      {.loads = 0.18, .stores = 0.12, .branches = 0.34},
                      rnd(64 * KiB), {.taken = 0.55, .randomness = 0.3, .sites = 512})}),
      // lat_proc: fork+exec — page-table churn, faults, kernel bookkeeping.
      workload("lat_proc", n,
               {phase("fork-exec", 1.0,
                      {.loads = 0.10, .stores = 0.10, .branches = 0.22},
                      strided(32 * MiB, 4096), {.taken = 0.8, .randomness = 0.1, .sites = 512})}),
      // lat_pagefault: fault cost probe — faults dominate, few data ops.
      workload("lat_pagefault", n,
               {phase("fault", 1.0,
                      {.loads = 0.08, .stores = 0.06, .branches = 0.1},
                      strided(96 * MiB, 4096), {.taken = 0.95, .randomness = 0.02})}),
      // lat_mmap: map/unmap cycling.
      workload("lat_mmap", n,
               {phase("mmap", 1.0,
                      {.loads = 0.08, .stores = 0.06, .branches = 0.12},
                      strided(8 * MiB, 8192), {.taken = 0.9, .randomness = 0.05})}),
      // lat_ctx: context-switch probe — thread stacks and registers.
      workload("lat_ctx", n,
               {phase("ctx", 1.0,
                      {.loads = 0.28, .stores = 0.12, .branches = 0.2},
                      rnd(512 * KiB), {.taken = 0.65, .randomness = 0.22, .sites = 256})}),
      // lat_pipe: small-buffer ping-pong, store-then-load in L1/L2.
      workload("lat_pipe", n,
               {phase("pipe", 1.0,
                      {.loads = 0.3, .stores = 0.3, .branches = 0.16},
                      seq(256 * KiB, 8), {.taken = 0.88, .randomness = 0.06})}),
      // lat_ops: pure ALU/FP latency probe — no memory at all, fp heavy.
      workload("lat_ops", n,
               {phase("ops", 1.0,
                      {.loads = 0.02, .stores = 0.01, .branches = 0.06, .fp = 0.55},
                      seq(8 * KiB), {.taken = 0.98, .randomness = 0.01})}),
  };

  suite.validate();
  return suite;
}

}  // namespace perspector::suites
