// Nbench (BYTEmark) model: 10 steady-state CPU kernels.
//
// Nbench kernels iterate a small fixed computation over an L1/L2-resident
// data set: no phases (flat trends, Fig. 5), modest coverage, and noticeable
// similarity among the integer kernels (Fig. 4 shows Nbench clustering).
#include "suites/builders.hpp"
#include "suites/suite_factory.hpp"

namespace perspector::suites {

using namespace detail;

sim::SuiteSpec nbench(const SuiteBuildOptions& options) {
  const std::uint64_t n = options.instructions_per_workload;
  sim::SuiteSpec suite;
  suite.name = "Nbench";

  suite.workloads = {
      workload("numeric-sort", n,
               {phase("sort", 1.0, {.loads = 0.3, .stores = 0.16, .branches = 0.2},
                      rnd(256 * KiB), {.taken = 0.6, .randomness = 0.22})}),
      workload("string-sort", n,
               {phase("sort", 1.0, {.loads = 0.32, .stores = 0.18, .branches = 0.2},
                      rnd(384 * KiB), {.taken = 0.62, .randomness = 0.2})}),
      workload("bitfield", n,
               {phase("bitops", 1.0, {.loads = 0.26, .stores = 0.14, .branches = 0.18},
                      seq(128 * KiB, 8), {.taken = 0.75, .randomness = 0.12})}),
      workload("fp-emulation", n,
               {phase("emulate", 1.0, {.loads = 0.24, .stores = 0.12, .branches = 0.24},
                      seq(64 * KiB, 8), {.taken = 0.68, .randomness = 0.15})}),
      workload("fourier", n,
               {phase("fft", 1.0,
                      {.loads = 0.22, .stores = 0.08, .branches = 0.06, .fp = 0.5},
                      strided(256 * KiB, 64), {.taken = 0.94, .randomness = 0.03})}),
      workload("assignment", n,
               {phase("hungarian", 1.0,
                      {.loads = 0.3, .stores = 0.12, .branches = 0.22},
                      seq(256 * KiB, 8), {.taken = 0.7, .randomness = 0.14})}),
      workload("idea", n,
               {phase("cipher", 1.0, {.loads = 0.24, .stores = 0.14, .branches = 0.1},
                      seq(64 * KiB, 8), {.taken = 0.92, .randomness = 0.03})}),
      workload("huffman", n,
               {phase("code", 1.0, {.loads = 0.28, .stores = 0.14, .branches = 0.26},
                      seq(128 * KiB, 8), {.taken = 0.6, .randomness = 0.2})}),
      workload("neural-net", n,
               {phase("backprop", 1.0,
                      {.loads = 0.26, .stores = 0.1, .branches = 0.06, .fp = 0.46},
                      seq(256 * KiB, 8), {.taken = 0.95, .randomness = 0.02})}),
      workload("lu-decomposition", n,
               {phase("lu", 1.0,
                      {.loads = 0.28, .stores = 0.12, .branches = 0.08, .fp = 0.4},
                      strided(512 * KiB, 64), {.taken = 0.93, .randomness = 0.03})}),
  };

  suite.validate();
  return suite;
}

}  // namespace perspector::suites
