// SPLASH-2 model: the 1995-era scientific suite PARSEC was built to
// replace. The paper's reference [29] (Bienia, Kumar & Li, IISWC'08)
// quantitatively compared the two; bench_parsec_vs_splash2 reproduces that
// comparison's spirit with Perspector's metrics.
//
// Character: regular HPC kernels and applications — dense linear algebra,
// FFT, N-body, water simulations. Mostly fp-heavy, stride-regular, highly
// predictable branches, smaller working sets than PARSEC (1995 inputs),
// and fewer distinct execution phases.
#include "suites/builders.hpp"
#include "suites/suite_factory.hpp"

namespace perspector::suites {

using namespace detail;

sim::SuiteSpec splash2(const SuiteBuildOptions& options) {
  const std::uint64_t n = options.instructions_per_workload;
  sim::SuiteSpec suite;
  suite.name = "SPLASH-2";

  suite.workloads = {
      workload("barnes", n,
               {phase("tree-build", 0.3,
                      {.loads = 0.3, .stores = 0.18, .branches = 0.14},
                      rnd(4 * MiB), {.taken = 0.78, .randomness = 0.1}),
                phase("force-calc", 0.7,
                      {.loads = 0.3, .stores = 0.08, .branches = 0.1, .fp = 0.36},
                      chase(4 * MiB), {.taken = 0.88, .randomness = 0.06})}),
      workload("fmm", n,
               {phase("multipole", 1.0,
                      {.loads = 0.28, .stores = 0.1, .branches = 0.08, .fp = 0.4},
                      rnd(2 * MiB), {.taken = 0.9, .randomness = 0.05})}),
      workload("ocean", n,
               {phase("grid-solve", 1.0,
                      {.loads = 0.34, .stores = 0.16, .branches = 0.05, .fp = 0.32},
                      seq(8 * MiB, 8), {.taken = 0.96, .randomness = 0.02})}),
      workload("radiosity", n,
               {phase("interactions", 1.0,
                      {.loads = 0.3, .stores = 0.12, .branches = 0.16, .fp = 0.22},
                      chase(3 * MiB), {.taken = 0.72, .randomness = 0.14})}),
      workload("raytrace", n,
               {phase("trace", 1.0,
                      {.loads = 0.32, .stores = 0.06, .branches = 0.14, .fp = 0.26},
                      chase(6 * MiB), {.taken = 0.74, .randomness = 0.13})}),
      workload("volrend", n,
               {phase("render", 1.0,
                      {.loads = 0.3, .stores = 0.1, .branches = 0.14, .fp = 0.22},
                      strided(4 * MiB, 128), {.taken = 0.84, .randomness = 0.08})}),
      workload("water-nsquared", n,
               {phase("md", 1.0,
                      {.loads = 0.26, .stores = 0.1, .branches = 0.06, .fp = 0.44},
                      seq(1 * MiB, 8), {.taken = 0.94, .randomness = 0.03})}),
      workload("water-spatial", n,
               {phase("md-cells", 1.0,
                      {.loads = 0.26, .stores = 0.1, .branches = 0.08, .fp = 0.42},
                      strided(1 * MiB, 64), {.taken = 0.92, .randomness = 0.04})}),
      workload("cholesky", n,
               {phase("factor", 1.0,
                      {.loads = 0.3, .stores = 0.14, .branches = 0.06, .fp = 0.38},
                      strided(4 * MiB, 64), {.taken = 0.93, .randomness = 0.03})}),
      workload("fft", n,
               {phase("transpose-fft", 1.0,
                      {.loads = 0.3, .stores = 0.16, .branches = 0.04, .fp = 0.4},
                      strided(4 * MiB, 512), {.taken = 0.96, .randomness = 0.02})}),
      workload("lu", n,
               {phase("factor", 1.0,
                      {.loads = 0.3, .stores = 0.12, .branches = 0.06, .fp = 0.4},
                      strided(2 * MiB, 64), {.taken = 0.94, .randomness = 0.03})}),
      workload("radix", n,
               {phase("sort", 1.0,
                      {.loads = 0.32, .stores = 0.2, .branches = 0.1},
                      rnd(4 * MiB), {.taken = 0.82, .randomness = 0.1})}),
  };

  suite.validate();
  return suite;
}

}  // namespace perspector::suites
