#include "suites/suite_factory.hpp"

namespace perspector::suites {

std::vector<sim::SuiteSpec> all_suites(const SuiteBuildOptions& options) {
  return {parsec(options), spec17(options),  ligra(options),
          lmbench(options), nbench(options), sgxgauge(options)};
}

}  // namespace perspector::suites
