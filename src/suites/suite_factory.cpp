#include "suites/suite_factory.hpp"

#include <stdexcept>

namespace perspector::suites {

std::vector<sim::SuiteSpec> all_suites(const SuiteBuildOptions& options) {
  return {parsec(options), spec17(options),  ligra(options),
          lmbench(options), nbench(options), sgxgauge(options)};
}

namespace {

using Factory = sim::SuiteSpec (*)(const SuiteBuildOptions&);

struct NamedFactory {
  const char* name;
  Factory factory;
};

constexpr NamedFactory kFactories[] = {
    {"spec17", spec17},     {"parsec", parsec},       {"ligra", ligra},
    {"lmbench", lmbench},   {"nbench", nbench},       {"sgxgauge", sgxgauge},
    {"riotbench", riotbench}, {"sebs", sebs},         {"comb", comb},
    {"splash2", splash2},
};

}  // namespace

bool is_builtin_suite(const std::string& name) {
  for (const auto& entry : kFactories) {
    if (name == entry.name) return true;
  }
  return false;
}

sim::SuiteSpec suite_by_name(const std::string& name,
                             const SuiteBuildOptions& options) {
  for (const auto& entry : kFactories) {
    if (name == entry.name) return entry.factory(options);
  }
  throw std::invalid_argument("unknown built-in suite '" + name +
                              "' (try: perspector suites)");
}

}  // namespace perspector::suites
