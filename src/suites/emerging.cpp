// Emerging-domain suite models — the paper's motivating use case
// (Section I): new domains (IoT stream processing, FaaS, edge computing)
// ship new benchmark suites that must be vetted "quickly and decisively"
// without a decade of community experience. These models are patterned on
// the suites the paper cites: RIoTBench [3], SeBS [4], and ComB [5].
//
// Their structural signatures differ from the classic suites:
//   * RIoTBench-like — continuous dataflow operators: steady per-operator
//     behaviour (low trend), moderate footprints, heavy branching in
//     routing stages;
//   * SeBS-like (FaaS) — short functions dominated by cold-start phases:
//     a fault/setup phase followed by a brief compute burst (high trend,
//     heavy page-fault dimension);
//   * ComB-like (edge) — mixed media/inference pipelines: moderate phases,
//     fp-heavy kernels with large strided tensors.
#include "suites/builders.hpp"
#include "suites/suite_factory.hpp"

namespace perspector::suites {

using namespace detail;

sim::SuiteSpec riotbench(const SuiteBuildOptions& options) {
  const std::uint64_t n = options.instructions_per_workload;
  sim::SuiteSpec suite;
  suite.name = "RIoTBench";
  suite.workloads = {
      workload("senml-parse", n,
               {phase("parse", 1.0, {.loads = 0.3, .stores = 0.12, .branches = 0.24},
                      seq(2 * MiB, 8), {.taken = 0.7, .randomness = 0.16, .sites = 256})}),
      workload("bloom-filter", n,
               {phase("filter", 1.0, {.loads = 0.34, .stores = 0.06, .branches = 0.18},
                      rnd(8 * MiB), {.taken = 0.62, .randomness = 0.2})}),
      workload("interpolate", n,
               {phase("interp", 1.0,
                      {.loads = 0.3, .stores = 0.14, .branches = 0.08, .fp = 0.3},
                      seq(1 * MiB, 8), {.taken = 0.9, .randomness = 0.05})}),
      workload("kalman-filter", n,
               {phase("kalman", 1.0,
                      {.loads = 0.26, .stores = 0.12, .branches = 0.06, .fp = 0.42},
                      seq(512 * KiB, 8), {.taken = 0.94, .randomness = 0.03})}),
      workload("sliding-window", n,
               {phase("window", 1.0, {.loads = 0.32, .stores = 0.2, .branches = 0.14},
                      strided(4 * MiB, 128), {.taken = 0.85, .randomness = 0.08})}),
      workload("mqtt-publish", n,
               {phase("route", 1.0, {.loads = 0.26, .stores = 0.16, .branches = 0.26},
                      zipf(4 * MiB, 1.0), {.taken = 0.66, .randomness = 0.2, .sites = 512})}),
      workload("azure-table-sink", n,
               {phase("sink", 1.0, {.loads = 0.24, .stores = 0.28, .branches = 0.14},
                      seq(8 * MiB, 64), {.taken = 0.88, .randomness = 0.06})}),
      workload("decision-tree", n,
               {phase("classify", 1.0, {.loads = 0.34, .stores = 0.04, .branches = 0.26},
                      chase(2 * MiB), {.taken = 0.58, .randomness = 0.26, .sites = 256})}),
  };
  suite.validate();
  return suite;
}

sim::SuiteSpec sebs(const SuiteBuildOptions& options) {
  const std::uint64_t n = options.instructions_per_workload;
  sim::SuiteSpec suite;
  suite.name = "SeBS";

  // FaaS functions share a cold-start signature: runtime bring-up (page
  // faults, icache-like sequential touches) then a short task burst.
  const auto cold_start = [](double weight) {
    return phase("cold-start", weight,
                 {.loads = 0.22, .stores = 0.18, .branches = 0.16},
                 strided(24 * MiB, 4096), {.taken = 0.8, .randomness = 0.1});
  };
  suite.workloads = {
      workload("thumbnailer", n,
               {cold_start(0.4),
                phase("resize", 0.6,
                      {.loads = 0.3, .stores = 0.14, .branches = 0.06, .fp = 0.34},
                      strided(8 * MiB, 64), {.taken = 0.93, .randomness = 0.03})}),
      workload("compression", n,
               {cold_start(0.35),
                phase("deflate", 0.65, {.loads = 0.32, .stores = 0.18, .branches = 0.16},
                      seq(16 * MiB, 16), {.taken = 0.76, .randomness = 0.14})}),
      workload("dynamic-html", n,
               {cold_start(0.45),
                phase("render", 0.55, {.loads = 0.28, .stores = 0.16, .branches = 0.22},
                      zipf(4 * MiB, 1.1), {.taken = 0.7, .randomness = 0.16, .sites = 512})}),
      workload("graph-bfs", n,
               {cold_start(0.3),
                phase("bfs", 0.7, {.loads = 0.36, .stores = 0.08, .branches = 0.18},
                      graph(12 * MiB, 0.35), {.taken = 0.6, .randomness = 0.24})}),
      workload("graph-pagerank", n,
               {cold_start(0.3),
                phase("rank", 0.7,
                      {.loads = 0.34, .stores = 0.1, .branches = 0.1, .fp = 0.16},
                      graph(12 * MiB, 0.2), {.taken = 0.72, .randomness = 0.14})}),
      workload("dna-visualization", n,
               {cold_start(0.35),
                phase("align", 0.65,
                      {.loads = 0.3, .stores = 0.1, .branches = 0.2, .fp = 0.1},
                      seq(6 * MiB, 8), {.taken = 0.68, .randomness = 0.18})}),
      workload("video-processing", n,
               {cold_start(0.25),
                phase("transcode", 0.75,
                      {.loads = 0.32, .stores = 0.14, .branches = 0.1, .fp = 0.2},
                      strided(20 * MiB, 256), {.taken = 0.88, .randomness = 0.06})}),
      workload("crypto-sign", n,
               {cold_start(0.5),
                phase("sign", 0.5, {.loads = 0.18, .stores = 0.08, .branches = 0.1},
                      seq(256 * KiB, 8), {.taken = 0.9, .randomness = 0.04})}),
  };
  suite.validate();
  return suite;
}

sim::SuiteSpec comb(const SuiteBuildOptions& options) {
  const std::uint64_t n = options.instructions_per_workload;
  sim::SuiteSpec suite;
  suite.name = "ComB";
  suite.workloads = {
      workload("object-detect", n,
               {phase("preprocess", 0.25, {.loads = 0.3, .stores = 0.18, .branches = 0.08},
                      seq(12 * MiB, 64), {.taken = 0.92, .randomness = 0.04}),
                phase("conv-layers", 0.75,
                      {.loads = 0.32, .stores = 0.1, .branches = 0.04, .fp = 0.44},
                      strided(16 * MiB, 128), {.taken = 0.96, .randomness = 0.02})}),
      workload("speech-to-text", n,
               {phase("feature-extract", 0.3,
                      {.loads = 0.28, .stores = 0.12, .branches = 0.08, .fp = 0.34},
                      seq(4 * MiB, 8), {.taken = 0.94, .randomness = 0.03}),
                phase("decode", 0.7, {.loads = 0.34, .stores = 0.1, .branches = 0.2},
                      chase(8 * MiB), {.taken = 0.62, .randomness = 0.22})}),
      workload("video-analytics", n,
               {phase("decode", 0.35, {.loads = 0.32, .stores = 0.16, .branches = 0.12},
                      seq(20 * MiB, 16), {.taken = 0.86, .randomness = 0.07}),
                phase("track", 0.65,
                      {.loads = 0.3, .stores = 0.1, .branches = 0.14, .fp = 0.22},
                      rnd(10 * MiB), {.taken = 0.74, .randomness = 0.14})}),
      workload("ar-render", n,
               {phase("pose", 0.4,
                      {.loads = 0.28, .stores = 0.1, .branches = 0.1, .fp = 0.32},
                      rnd(2 * MiB), {.taken = 0.85, .randomness = 0.08}),
                phase("compose", 0.6,
                      {.loads = 0.3, .stores = 0.2, .branches = 0.06, .fp = 0.28},
                      seq(16 * MiB, 64), {.taken = 0.93, .randomness = 0.04})}),
      workload("federated-update", n,
               {phase("local-train", 0.7,
                      {.loads = 0.3, .stores = 0.12, .branches = 0.06, .fp = 0.4},
                      strided(12 * MiB, 64), {.taken = 0.94, .randomness = 0.03}),
                phase("aggregate", 0.3, {.loads = 0.3, .stores = 0.22, .branches = 0.1},
                      seq(8 * MiB, 8), {.taken = 0.9, .randomness = 0.05})}),
      workload("iot-gateway", n,
               {phase("mux", 1.0, {.loads = 0.28, .stores = 0.18, .branches = 0.24},
                      zipf(6 * MiB, 1.0), {.taken = 0.66, .randomness = 0.2, .sites = 512})}),
  };
  suite.validate();
  return suite;
}

}  // namespace perspector::suites
