// The five workloads of the paper's Fig. 1 (trend-normalization example):
// PageRank, HashJoin, BFS, BTree, and OpenSSL. Profiles match their
// SGXGauge counterparts but with per-workload instruction budgets spread
// over a 4x range, so the raw LLC-miss series differ wildly in both scale
// and duration — exactly the situation Fig. 1's normalization fixes.
#include "suites/builders.hpp"
#include "suites/suite_factory.hpp"

namespace perspector::suites {

using namespace detail;

sim::SuiteSpec demo_five(const SuiteBuildOptions& options) {
  const std::uint64_t n = options.instructions_per_workload;
  sim::SuiteSpec suite;
  suite.name = "Fig1Demo";

  suite.workloads = {
      workload("PageRank", n * 2,
               {phase("load-edges", 0.3,
                      {.loads = 0.34, .stores = 0.18, .branches = 0.08},
                      seq(28 * MiB, 8), {.taken = 0.92, .randomness = 0.04}),
                phase("iterate", 0.7,
                      {.loads = 0.36, .stores = 0.1, .branches = 0.12, .fp = 0.14},
                      graph(28 * MiB, 0.25), {.taken = 0.7, .randomness = 0.16})}),
      workload("HashJoin", n,
               {phase("build", 0.35,
                      {.loads = 0.3, .stores = 0.24, .branches = 0.1},
                      seq(20 * MiB, 8), {.taken = 0.9, .randomness = 0.05}),
                phase("probe", 0.65,
                      {.loads = 0.42, .stores = 0.06, .branches = 0.14},
                      rnd(20 * MiB), {.taken = 0.72, .randomness = 0.15})}),
      workload("BFS", n * 3 / 2,
               {phase("load-graph", 0.3,
                      {.loads = 0.32, .stores = 0.18, .branches = 0.08},
                      seq(24 * MiB, 8), {.taken = 0.92, .randomness = 0.04}),
                phase("frontier", 0.7,
                      {.loads = 0.38, .stores = 0.1, .branches = 0.18},
                      graph(24 * MiB, 0.35), {.taken = 0.6, .randomness = 0.24})}),
      workload("BTree", n / 2,
               {phase("bulk-load", 0.3,
                      {.loads = 0.28, .stores = 0.24, .branches = 0.14},
                      seq(24 * MiB, 64), {.taken = 0.85, .randomness = 0.08}),
                phase("lookup", 0.7,
                      {.loads = 0.4, .stores = 0.04, .branches = 0.2},
                      chase(24 * MiB), {.taken = 0.58, .randomness = 0.25})}),
      workload("OpenSSL", n,
               {phase("keygen", 0.2,
                      {.loads = 0.2, .stores = 0.1, .branches = 0.14},
                      rnd(256 * KiB), {.taken = 0.7, .randomness = 0.15}),
                phase("sign-verify", 0.8,
                      {.loads = 0.18, .stores = 0.08, .branches = 0.1},
                      seq(128 * KiB, 8), {.taken = 0.9, .randomness = 0.04})}),
  };

  suite.validate();
  return suite;
}

}  // namespace perspector::suites
