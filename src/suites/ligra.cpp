// Ligra model: 12 graph algorithms on a shared framework.
//
// Ligra is a thin shared-memory graph framework: every application first runs
// the same graph load/decode front-end, then an edge-map/vertex-map traversal
// kernel. Because the framework dominates, the workloads behave alike — the
// paper singles Ligra out as the most *clustered* suite (worst ClusterScore,
// Fig. 3a). The model encodes that: an identical "load-graph" phase plus
// traversal phases that differ only in small parameter deltas.
#include "suites/builders.hpp"
#include "suites/suite_factory.hpp"

namespace perspector::suites {

using namespace detail;

namespace {

// Every Ligra app shares this front-end verbatim.
sim::PhaseSpec load_graph_phase() {
  return phase("load-graph", 0.35,
               {.loads = 0.34, .stores = 0.18, .branches = 0.1},
               seq(32 * MiB, 8), {.taken = 0.9, .randomness = 0.05});
}

// The apps fall into three behavioural families (sparse frontier
// traversals, dense rank/score iterations, and counting kernels); within a
// family the edge-map kernels are all but indistinguishable — tight,
// well-separated clusters, exactly what the paper's ClusterScore penalizes.
sim::WorkloadSpec traversal_app(const std::string& name, std::uint64_t n) {
  return workload(
      name, n,
      {load_graph_phase(),
       phase("edge-map", 0.65,
             {.loads = 0.40, .stores = 0.08, .branches = 0.20},
             graph(32 * MiB, 0.40),
             {.taken = 0.55, .randomness = 0.28, .sites = 128})});
}

sim::WorkloadSpec rank_app(const std::string& name, std::uint64_t n) {
  return workload(
      name, n,
      {load_graph_phase(),
       phase("vertex-map", 0.65,
             {.loads = 0.34, .stores = 0.14, .branches = 0.06, .fp = 0.26},
             strided(32 * MiB, 64),
             {.taken = 0.90, .randomness = 0.05, .sites = 128})});
}

sim::WorkloadSpec counting_app(const std::string& name, std::uint64_t n) {
  return workload(
      name, n,
      {load_graph_phase(),
       phase("count", 0.65,
             {.loads = 0.30, .stores = 0.04, .branches = 0.24},
             seq(32 * MiB, 16),
             {.taken = 0.70, .randomness = 0.12, .sites = 128})});
}

}  // namespace

sim::SuiteSpec ligra(const SuiteBuildOptions& options) {
  const std::uint64_t n = options.instructions_per_workload;
  sim::SuiteSpec suite;
  suite.name = "Ligra";
  suite.workloads = {
      traversal_app("BFS", n),
      traversal_app("BC", n),
      traversal_app("Radii", n),
      traversal_app("Components", n),
      traversal_app("BellmanFord", n),
      traversal_app("MIS", n),
      traversal_app("BFSCC", n),
      rank_app("PageRank", n),
      rank_app("PageRankDelta", n),
      rank_app("CF", n),
      counting_app("Triangle", n),
      counting_app("KCore", n),
  };
  suite.validate();
  return suite;
}

}  // namespace perspector::suites
