// Reusable per-thread scratch workspaces (DESIGN.md section 9).
//
// Hot kernels (DTW rolling rows, silhouette accumulators, k-means seeding
// buffers) used to heap-allocate their temporaries on every call — inside
// parallel_for chunks that means thousands of allocator round trips per
// score. A Scratch<T> borrows a buffer from a thread-local free list and
// returns it on scope exit, so steady-state kernel calls allocate nothing.
//
// Ownership rules:
//   * a Scratch must be acquired and released on the same thread (RAII
//     inside one function body guarantees this — never store a Scratch in
//     a structure that outlives the call or crosses threads);
//   * buffer contents are UNSPECIFIED on acquire — kernels must write
//     before they read (every current user starts with std::fill). This is
//     what keeps reuse invisible to the determinism contract: outputs are
//     a function of explicit writes only, never of what a previous borrower
//     left behind;
//   * the per-thread free list is bounded (kMaxPooled buffers per type), so
//     a one-off giant temporary cannot pin memory for the process lifetime.
//
// Observability: `mem.scratch.acquires` counts every borrow,
// `mem.scratch.reuses` the borrows served without touching the allocator.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace perspector::mem {

namespace detail {

obs::Counter& scratch_acquires();
obs::Counter& scratch_reuses();

/// Thread-local LIFO free list of vectors of T. LIFO keeps the hottest
/// (cache-warm) buffer on top.
template <typename T>
class BufferPool {
 public:
  static constexpr std::size_t kMaxPooled = 16;

  static BufferPool& local() {
    thread_local BufferPool pool;
    return pool;
  }

  std::vector<T> acquire(std::size_t n) {
    scratch_acquires().increment();
    if (!free_.empty()) {
      scratch_reuses().increment();
      std::vector<T> buf = std::move(free_.back());
      free_.pop_back();
      buf.resize(n);
      return buf;
    }
    return std::vector<T>(n);
  }

  void release(std::vector<T>&& buf) {
    if (free_.size() < kMaxPooled) free_.push_back(std::move(buf));
    // else: drop on the floor; the allocator reclaims it.
  }

 private:
  std::vector<std::vector<T>> free_;
};

}  // namespace detail

/// RAII borrow of an n-element scratch buffer of T from the calling
/// thread's pool. Contents are unspecified; write before reading.
template <typename T>
class Scratch {
 public:
  explicit Scratch(std::size_t n)
      : buf_(detail::BufferPool<T>::local().acquire(n)) {}
  ~Scratch() { detail::BufferPool<T>::local().release(std::move(buf_)); }

  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  T* data() noexcept { return buf_.data(); }
  const T* data() const noexcept { return buf_.data(); }
  std::size_t size() const noexcept { return buf_.size(); }
  T& operator[](std::size_t i) noexcept { return buf_[i]; }
  const T& operator[](std::size_t i) const noexcept { return buf_[i]; }
  std::span<T> span() noexcept { return buf_; }
  std::span<const T> span() const noexcept { return buf_; }
  std::vector<T>& vec() noexcept { return buf_; }

 private:
  std::vector<T> buf_;
};

}  // namespace perspector::mem
