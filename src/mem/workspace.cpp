#include "mem/workspace.hpp"

namespace perspector::mem::detail {

obs::Counter& scratch_acquires() {
  static obs::Counter& c = obs::counter("mem.scratch.acquires");
  return c;
}

obs::Counter& scratch_reuses() {
  static obs::Counter& c = obs::counter("mem.scratch.reuses");
  return c;
}

}  // namespace perspector::mem::detail
