#include "par/thread_pool.hpp"

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace perspector::par {

namespace {

// The pool whose worker loop is running on this thread, if any.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (!task) throw std::invalid_argument("ThreadPool::submit: empty task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // This pool's own workers may enqueue during shutdown (nested submit
    // while the destructor drains): the submitting worker re-checks the
    // queue before exiting, so its task always runs. Any other thread's
    // submit can race the final join and is rejected instead.
    if (stop_ && tls_worker_pool != this) {
      throw std::runtime_error("ThreadPool::submit: pool is shutting down");
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  static obs::Counter& tasks = obs::counter("par.tasks");
  tasks.increment();
}

void ThreadPool::worker_loop() {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: submitted work always runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::on_worker_thread() noexcept {
  return tls_worker_pool != nullptr;
}

std::size_t hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

namespace {

// The process-wide pool registry. src/par/ is the one layer allowed to
// own shared mutable state: everything below is guarded by g_pool_mutex.
// lint:allow(par-global): explicit override slot, read/written under lock
std::size_t g_explicit_threads = 0;

std::mutex g_pool_mutex;  // lint:allow(par-global): the guard itself
// lint:allow(par-global): singleton pool, created/replaced under lock
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

std::optional<std::size_t> parse_thread_env(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  std::size_t value = 0;
  for (const char* p = text; *p; ++p) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) return std::nullopt;
    const std::size_t digit = static_cast<std::size_t>(*p - '0');
    if (value > (SIZE_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  if (value == 0) return std::nullopt;
  return value;
}

void set_thread_count(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_explicit_threads = n;
}

std::size_t thread_count() {
  {
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (g_explicit_threads != 0) return g_explicit_threads;
  }
  // getenv races with setenv, but nothing in the process mutates the
  // environment after main() starts; first read happens at pool creation.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const auto env = parse_thread_env(std::getenv("PERSPECTOR_THREADS"))) {
    return *env;
  }
  return hardware_threads();
}

ThreadPool& global_pool() {
  const std::size_t want = thread_count();
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool || g_pool->size() != want) {
    g_pool.reset();  // join the old workers before spawning the new pool
    g_pool = std::make_unique<ThreadPool>(want);
  }
  return *g_pool;
}

}  // namespace perspector::par
