// parallel_for / parallel_map / ordered_reduce — deterministic data
// parallelism over an index range.
//
// The determinism contract (DESIGN.md section 8): a parallel region is
// bit-identical to its serial equivalent for any thread count, because
//   * every task writes only to slots addressed by its own index, and
//   * reductions always combine those slots serially in index order —
//     never in completion order — so floating-point association is fixed.
// Threads decide *when* a value is computed, never *where it lands* or
// *in which order it is summed*.
//
// Exception semantics: if one or more task bodies throw, the exception
// from the lowest-indexed failing chunk is rethrown on the caller after
// all chunks finish — again independent of scheduling.
//
// Nested regions (a parallel_for inside a pool task) execute serially on
// the calling worker: the result is identical by the contract above, and
// a fully occupied pool can never deadlock waiting on itself.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/thread_pool.hpp"

namespace perspector::par {

namespace detail {

inline obs::Counter& regions_counter() {
  static obs::Counter& c = obs::counter("par.regions");
  return c;
}

inline obs::Counter& serial_regions_counter() {
  static obs::Counter& c = obs::counter("par.regions_serial");
  return c;
}

inline obs::Counter& chunks_counter() {
  static obs::Counter& c = obs::counter("par.chunks");
  return c;
}

// Per-chunk wall latency: one sample per pool task, so the p99 exposes
// straggler chunks that the region-level span totals average away. The
// clock reads live inside obs::LatencyTimer (src/obs is det-clock
// allowlisted); recording is off the determinism-sensitive path.
inline obs::Histogram& task_latency_histogram() {
  static obs::Histogram& h = obs::histogram("par.task.latency");
  return h;
}

}  // namespace detail

/// Invokes body(i) for every i in [0, n). Chunks are contiguous index
/// ranges, at most thread_count() of them; bodies on distinct indices may
/// run concurrently, so they must only write to index-owned state.
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
  if (n == 0) return;
  const std::size_t threads = thread_count();
  detail::regions_counter().increment();
  if (threads <= 1 || n == 1 || ThreadPool::on_worker_thread()) {
    detail::serial_regions_counter().increment();
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  const std::size_t chunks = threads < n ? threads : n;
  detail::chunks_counter().add(chunks);

  struct State {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::vector<std::exception_ptr> errors;
  };
  State state;
  state.remaining = chunks;
  state.errors.resize(chunks);

  ThreadPool& pool = global_pool();
  for (std::size_t c = 0; c < chunks; ++c) {
    // Even split: chunk c owns [c*n/chunks, (c+1)*n/chunks).
    const std::size_t begin = c * n / chunks;
    const std::size_t end = (c + 1) * n / chunks;
    pool.submit([&state, &body, c, begin, end] {
      obs::Span span("par.task");
      obs::LatencyTimer latency(detail::task_latency_histogram());
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        state.errors[c] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state.mutex);
      if (--state.remaining == 0) state.done.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.remaining == 0; });
  for (std::size_t c = 0; c < chunks; ++c) {
    if (state.errors[c]) std::rethrow_exception(state.errors[c]);
  }
}

/// Returns {fn(0), ..., fn(n-1)} with each element computed possibly in
/// parallel but stored at its own index. T must be default-constructible
/// and assignable.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Parallel evaluation, strictly ordered accumulation:
///   acc = combine(acc, fn(0)); acc = combine(acc, fn(1)); ...
/// The combine chain runs serially on the caller in index order, so the
/// result is bit-identical to the serial loop for any thread count.
template <typename T, typename Fn, typename Combine>
T ordered_reduce(std::size_t n, T init, Fn&& fn, Combine&& combine) {
  const std::vector<T> values = parallel_map<T>(n, std::forward<Fn>(fn));
  T acc = std::move(init);
  for (std::size_t i = 0; i < n; ++i) {
    acc = combine(std::move(acc), values[i]);
  }
  return acc;
}

}  // namespace perspector::par
