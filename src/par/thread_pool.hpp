// Deterministic parallel execution: a small fixed-size thread pool.
//
// Design constraints (see DESIGN.md "Parallelism"):
//   * dependency-free — par may be linked by every other module, so it
//     depends only on obs and the standard library;
//   * no work stealing — tasks run from one shared FIFO queue. Determinism
//     comes from *where results go* (indexed slots, ordered reduction in
//     parallel.hpp), never from who runs what, so a simple queue suffices
//     and keeps the pool auditable;
//   * nested parallel regions degrade to serial execution on the calling
//     worker (see ThreadPool::on_worker_thread) instead of deadlocking a
//     fully busy pool.
//
// Thread-count resolution, strongest wins:
//   1. set_thread_count(n) — the CLI's --threads flag lands here;
//   2. PERSPECTOR_THREADS in the environment (strict digits, >= 1;
//      anything else is ignored);
//   3. std::thread::hardware_concurrency() (at least 1).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace perspector::par {

/// Fixed-size FIFO thread pool. submit() never blocks; the destructor
/// drains every queued task before joining the workers.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task. Safe to call from worker threads (nested submit);
  /// the queue is unbounded so this never blocks.
  void submit(std::function<void()> task);

  /// Enqueues a callable and returns a future for its result; exceptions
  /// thrown by the callable surface through future::get().
  template <typename F>
  auto async(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto future = task->get_future();
    submit([task] { (*task)(); });
    return future;
  }

  /// True when the calling thread is a worker of *any* ThreadPool.
  /// parallel_for uses this to run nested regions serially instead of
  /// submitting subtasks a fully occupied pool could never start.
  static bool on_worker_thread() noexcept;

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Hardware thread count, never less than 1.
std::size_t hardware_threads() noexcept;

/// Overrides the resolved thread count for all subsequent parallel regions.
/// 0 restores automatic resolution (env, then hardware). Not safe to call
/// concurrently with a running parallel region.
void set_thread_count(std::size_t n);

/// The thread count parallel regions will use (resolution order above).
std::size_t thread_count();

/// Strict parse of a PERSPECTOR_THREADS-style value: digits only, >= 1.
/// Returns nullopt for anything else (empty, signs, junk, zero, overflow).
std::optional<std::size_t> parse_thread_env(const char* text);

/// The process-wide pool, sized to thread_count(). Recreated on demand if
/// set_thread_count changed the size since the last call. Never called on
/// the serial path (thread_count() == 1 regions run inline).
ThreadPool& global_pool();

}  // namespace perspector::par
