// Phase detection from hardware-counter time series.
//
// The paper builds on Nomani & Szefer (HASP'15): hardware counters are an
// effective phase-change signal. Perspector's TrendScore uses the *shape*
// of the series; this module extracts explicit phase boundaries, giving a
// per-workload "how many phases, how long" report — the qualitative claim
// behind Table III ("real-world workloads have phases; kernels do not")
// made checkable per workload.
//
// Algorithm: multi-counter change-point detection. Each counter series is
// normalized (mean-relative squash, like the TrendScore) and scanned with a
// two-window mean-shift statistic; per-counter shift magnitudes are
// averaged, local maxima above a threshold become phase boundaries, and
// boundaries closer than `min_phase_length` samples are merged.
#pragma once

#include <cstddef>
#include <vector>

#include "core/counter_matrix.hpp"

namespace perspector::core {

/// One detected phase.
struct Phase {
  std::size_t begin = 0;  // first sample index (inclusive)
  std::size_t end = 0;    // one past the last sample index

  std::size_t length() const { return end - begin; }
};

/// Detection knobs.
struct PhaseDetectOptions {
  /// Half-window for the mean-shift statistic, in samples.
  std::size_t window = 5;
  /// Minimum shift (in normalized units, 0..100 scale) to call a boundary.
  double threshold = 8.0;
  /// Boundaries closer than this are merged (suppresses jitter).
  std::size_t min_phase_length = 4;
};

/// Result for one workload.
struct PhaseReport {
  std::vector<Phase> phases;               // covers [0, samples) exactly
  std::vector<double> boundary_strength;   // shift magnitude per boundary

  std::size_t phase_count() const { return phases.size(); }
};

/// Detects phases in a single multi-counter series set
/// (`series[counter][sample]`, all equal length, length >= 2).
PhaseReport detect_phases(const std::vector<std::vector<double>>& series,
                          const PhaseDetectOptions& options = {});

/// Detects phases for every workload of a suite (requires series).
std::vector<PhaseReport> detect_phases(const CounterMatrix& suite,
                                       const PhaseDetectOptions& options = {});

/// Mean detected phase count across a suite's workloads — a cheap scalar
/// companion to the TrendScore.
double mean_phase_count(const CounterMatrix& suite,
                        const PhaseDetectOptions& options = {});

}  // namespace perspector::core
