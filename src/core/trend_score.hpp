// TrendScore (paper Section III-B, Eq. 7-8).
//
// Phase-behaviour metric: for every PMU counter, normalize each workload's
// sampled time series (CDF on y, execution-time percentiles on x — Fig. 1),
// compute the mean pairwise DTW distance across workloads (Eq. 7), then
// average over counters (Eq. 8). Higher is better — real multi-phase
// applications produce trends that cannot be warped onto each other cheaply.
#pragma once

#include <optional>
#include <vector>

#include "core/counter_matrix.hpp"
#include "dtw/trend_normalize.hpp"

namespace perspector::core {

/// Knobs for the TrendScore computation.
struct TrendScoreOptions {
  /// Common percentile-grid length for all normalized series.
  std::size_t grid_points = 101;
  /// Optional Sakoe-Chiba band (fraction of series length) to bound DTW.
  std::optional<double> dtw_band_fraction;
  /// Y-axis normalization mode (see dtw/trend_normalize.hpp).
  dtw::TrendNormalization normalization =
      dtw::TrendNormalization::MeanRelative;
};

/// Result with per-counter detail.
struct TrendScoreResult {
  double score = 0.0;            // Eq. 8 — mean over counters
  std::vector<double> per_event; // TScore_z per counter, input order
};

/// Computes the TrendScore. Requires collected time series and at least two
/// workloads; throws std::invalid_argument/std::logic_error otherwise.
TrendScoreResult trend_score(const CounterMatrix& suite,
                             const TrendScoreOptions& options = {});

}  // namespace perspector::core
