// CounterMatrix persistence and interchange.
//
// The scoring engine is data-source-agnostic: anything that can produce a
// workloads x counters table (plus optional per-counter time series) can be
// scored. These routines define the on-disk formats:
//
//   * Aggregate CSV — header `workload,<counter>,<counter>,...`; one row per
//     workload. This is what `perf stat -x,` output reduces to after one
//     pivot.
//   * Series CSV (long format) — header `workload,counter,sample,value`;
//     one row per (workload, counter, sample index). Sample indices must be
//     dense from 0 within each (workload, counter) pair.
//
// Both readers validate shape and report the offending line on error.
#pragma once

#include <string>

#include "core/counter_matrix.hpp"

namespace perspector::core {

/// Writes the aggregate counter table as CSV.
/// Throws std::runtime_error on I/O failure.
void write_aggregates_csv(const CounterMatrix& data, const std::string& path);

/// Writes the sampled time series in long format.
/// Throws std::logic_error when the matrix carries no series.
void write_series_csv(const CounterMatrix& data, const std::string& path);

/// Reads an aggregate CSV (no series attached).
/// Throws std::runtime_error with a line-numbered message on malformed
/// input (missing header, ragged rows, non-numeric or non-finite cells,
/// duplicate workloads).
///
/// Interchange hardening (external producers): a leading UTF-8 BOM is
/// skipped, CRLF line endings are accepted everywhere, and NaN/Inf cells
/// are rejected with the offending line number (the scores are undefined
/// over non-finite counters, so they must fail loudly at the boundary).
CounterMatrix read_aggregates_csv(const std::string& suite_name,
                                  const std::string& path);

/// Reads an aggregate CSV and a matching series CSV, attaching the series.
/// The series file must cover exactly the workloads and counters of the
/// aggregate file; every (workload, counter) pair needs at least one sample.
CounterMatrix read_with_series_csv(const std::string& suite_name,
                                   const std::string& aggregates_path,
                                   const std::string& series_path);

/// In-memory variants of the CSV readers (same validation and error
/// messages, for data that arrives over the wire instead of from disk —
/// the serving layer's inline-CSV requests use these).
CounterMatrix read_aggregates_csv_text(const std::string& suite_name,
                                       const std::string& csv_text);
CounterMatrix read_with_series_csv_text(const std::string& suite_name,
                                        const std::string& aggregates_text,
                                        const std::string& series_text);

/// In-memory CSV writers, inverses of the text readers: every value is
/// rendered with %.17g so parsing the text recovers the exact doubles.
/// The serving router uses these to forward in-memory matrices to worker
/// processes without losing a bit. (The file writers above keep their
/// historical default precision; these are a separate, lossless channel.)
std::string write_aggregates_csv_text(const CounterMatrix& data);
/// Throws std::logic_error when the matrix carries no series.
std::string write_series_csv_text(const CounterMatrix& data);

// ---- Linux `perf stat -x,` ingestion --------------------------------------

/// One event record from `perf stat -x,` output
/// (format: value,unit,event,time_running,pct_running,...).
struct PerfStatRecord {
  std::string event;
  double value = 0.0;
  double pct_running = 100.0;  // <100 means the event was multiplexed
  bool counted = true;         // false for "<not counted>"/"<not supported>"
};

/// Parses the full text of one workload's `perf stat -x,` run. Comment
/// lines (leading '#') and blank lines are skipped; malformed lines throw
/// std::runtime_error with the line number.
std::vector<PerfStatRecord> parse_perf_stat(const std::string& text);

/// Builds a CounterMatrix from one perf-stat text per workload
/// (pairs of workload name and raw `perf stat -x,` output). Every workload
/// must report the same events in the same order as the first one; an
/// uncounted event anywhere is an error naming the workload and event
/// (re-run with fewer events — the paper's footnote-1 advice).
CounterMatrix counter_matrix_from_perf_stat(
    const std::string& suite_name,
    const std::vector<std::pair<std::string, std::string>>& workload_outputs);

/// Parsed `perf stat -I <ms> -x,` (interval mode) output: per-event delta
/// series plus totals — the data the TrendScore needs from real hardware.
struct PerfIntervalData {
  std::vector<std::string> events;
  std::vector<std::vector<double>> series;  // [event][interval]
  std::vector<double> totals;               // per event, sum of deltas
};

/// Parses interval-mode output (lines: elapsed-seconds,value,unit,event,...).
/// Events must appear in a consistent order within every interval block;
/// "<not counted>" values become 0 for that interval. Throws
/// std::runtime_error with a line number on malformed input.
PerfIntervalData parse_perf_stat_intervals(const std::string& text);

/// Builds a CounterMatrix *with time series* from one interval-mode text
/// per workload. Event lists must agree across workloads.
CounterMatrix counter_matrix_from_perf_intervals(
    const std::string& suite_name,
    const std::vector<std::pair<std::string, std::string>>& workload_outputs);

}  // namespace perspector::core
