// CounterMatrix persistence and interchange.
//
// The scoring engine is data-source-agnostic: anything that can produce a
// workloads x counters table (plus optional per-counter time series) can be
// scored. These routines define the on-disk formats:
//
//   * Aggregate CSV — header `workload,<counter>,<counter>,...`; one row per
//     workload. This is what `perf stat -x,` output reduces to after one
//     pivot.
//   * Series CSV (long format) — header `workload,counter,sample,value`;
//     one row per (workload, counter, sample index). Sample indices must be
//     dense from 0 within each (workload, counter) pair.
//
// Both readers validate shape and report the offending line — as
// "CSV line N (byte M)", the byte offset making errors greppable with
// dd/tail in GB-scale files — on error.
//
// Large aggregate files (>= kStreamedReadThresholdBytes) are read through
// the streaming pipeline in src/ingest/ (chunked IO overlapped with an
// in-place cell scanner); the resulting matrices and error messages are
// byte-identical to the historical slurp path, which remains available as
// read_aggregates_csv_slurp for A/B benchmarking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/counter_matrix.hpp"

namespace perspector::core {

/// Writes the aggregate counter table as CSV.
/// Throws std::runtime_error on I/O failure.
void write_aggregates_csv(const CounterMatrix& data, const std::string& path);

/// Writes the sampled time series in long format.
/// Throws std::logic_error when the matrix carries no series.
void write_series_csv(const CounterMatrix& data, const std::string& path);

/// Reads an aggregate CSV (no series attached).
/// Throws std::runtime_error with a line- and byte-offset-numbered
/// message on malformed input (missing header, ragged rows, non-numeric
/// or non-finite cells, duplicate workloads).
///
/// Interchange hardening (external producers): a leading UTF-8 BOM is
/// skipped, CRLF line endings are accepted everywhere, and NaN/Inf cells
/// are rejected with the offending line number (the scores are undefined
/// over non-finite counters, so they must fail loudly at the boundary).
///
/// Files of at least kStreamedReadThresholdBytes take the streamed path
/// below automatically; smaller files slurp (identical results).
CounterMatrix read_aggregates_csv(const std::string& suite_name,
                                  const std::string& path);

/// Byte threshold above which read_aggregates_csv streams instead of
/// slurping. 1 MiB: below it the whole file fits the first chunk anyway.
inline constexpr std::uint64_t kStreamedReadThresholdBytes = 1ull << 20;

/// Tuning for read_aggregates_csv_streamed (see src/ingest/csv_stream.hpp
/// for the pipeline). The defaults are what read_aggregates_csv uses.
struct StreamedReadOptions {
  std::size_t chunk_bytes = 1 << 20;
  bool io_thread = true;  // overlap disk IO with parsing
};

/// Streamed aggregate reader: identical validation, matrices, and error
/// messages to the slurp path, but the file is read in fixed-size chunks
/// (optionally on a dedicated IO thread) and cells are scanned in place —
/// no per-cell string allocation. Byte-identical output at every chunk
/// size, including chunks that split a CRLF or a quoted cell.
CounterMatrix read_aggregates_csv_streamed(
    const std::string& suite_name, const std::string& path,
    const StreamedReadOptions& options = {});

/// The historical getline-based reader, kept callable at any file size as
/// the baseline the ingest throughput bench compares against.
CounterMatrix read_aggregates_csv_slurp(const std::string& suite_name,
                                        const std::string& path);

/// Reads an aggregate CSV and a matching series CSV, attaching the series.
/// The series file must cover exactly the workloads and counters of the
/// aggregate file; every (workload, counter) pair needs at least one sample.
CounterMatrix read_with_series_csv(const std::string& suite_name,
                                   const std::string& aggregates_path,
                                   const std::string& series_path);

/// In-memory variants of the CSV readers (same validation and error
/// messages, for data that arrives over the wire instead of from disk —
/// the serving layer's inline-CSV requests use these).
CounterMatrix read_aggregates_csv_text(const std::string& suite_name,
                                       const std::string& csv_text);
CounterMatrix read_with_series_csv_text(const std::string& suite_name,
                                        const std::string& aggregates_text,
                                        const std::string& series_text);

/// In-memory CSV writers, inverses of the text readers: every value is
/// rendered with %.17g so parsing the text recovers the exact doubles.
/// The serving router uses these to forward in-memory matrices to worker
/// processes without losing a bit. (The file writers above keep their
/// historical default precision; these are a separate, lossless channel.)
std::string write_aggregates_csv_text(const CounterMatrix& data);
/// Throws std::logic_error when the matrix carries no series.
std::string write_series_csv_text(const CounterMatrix& data);

// ---- delta ingestion (live-suite mutation payloads) ------------------------

/// Appends the workloads of a delta aggregates CSV to `base` and returns
/// the extended matrix. The payload header must name exactly the base
/// suite's counters (any order — columns are rearranged via
/// ingest::ColumnMap); new workload names must be unique and must not
/// collide with existing ones. When `base` carries series, `series_text`
/// must supply at least one sample for every (new workload, counter)
/// pair (long format, dense indices from 0); when it does not,
/// `series_text` must be empty. Errors use the same "CSV line N (byte
/// M)" convention as the readers above.
CounterMatrix append_workloads_csv_text(const CounterMatrix& base,
                                        const std::string& aggregates_text,
                                        const std::string& series_text);

/// Extends the sampled series of existing workloads of `base` and returns
/// the new matrix. Rows are the long series format; each (workload,
/// counter) row's sample index must continue densely from that series'
/// current length. Aggregate values are left unchanged (they remain the
/// totals of the originally ingested window; re-aggregation is the
/// caller's policy). Throws std::logic_error when `base` has no series.
/// When `touched_workloads` is non-null it receives the sorted, deduped
/// row indices that gained samples — the set a warm ScoringWorkspace
/// must re-prime incrementally.
CounterMatrix append_samples_csv_text(
    const CounterMatrix& base, const std::string& series_text,
    std::vector<std::size_t>* touched_workloads = nullptr);

// ---- Linux `perf stat -x,` ingestion --------------------------------------

/// One event record from `perf stat -x,` output
/// (format: value,unit,event,time_running,pct_running,...).
struct PerfStatRecord {
  std::string event;
  double value = 0.0;
  double pct_running = 100.0;  // <100 means the event was multiplexed
  bool counted = true;         // false for "<not counted>"/"<not supported>"
};

/// Parses the full text of one workload's `perf stat -x,` run. Comment
/// lines (leading '#') and blank lines are skipped; malformed lines throw
/// std::runtime_error with the line number.
std::vector<PerfStatRecord> parse_perf_stat(const std::string& text);

/// Builds a CounterMatrix from one perf-stat text per workload
/// (pairs of workload name and raw `perf stat -x,` output). Every workload
/// must report the same events in the same order as the first one; an
/// uncounted event anywhere is an error naming the workload and event
/// (re-run with fewer events — the paper's footnote-1 advice).
CounterMatrix counter_matrix_from_perf_stat(
    const std::string& suite_name,
    const std::vector<std::pair<std::string, std::string>>& workload_outputs);

/// Parsed `perf stat -I <ms> -x,` (interval mode) output: per-event delta
/// series plus totals — the data the TrendScore needs from real hardware.
struct PerfIntervalData {
  std::vector<std::string> events;
  std::vector<std::vector<double>> series;  // [event][interval]
  std::vector<double> totals;               // per event, sum of deltas
};

/// Parses interval-mode output (lines: elapsed-seconds,value,unit,event,...).
/// Events must appear in a consistent order within every interval block;
/// "<not counted>" values become 0 for that interval. Throws
/// std::runtime_error with a line number on malformed input.
PerfIntervalData parse_perf_stat_intervals(const std::string& text);

/// Builds a CounterMatrix *with time series* from one interval-mode text
/// per workload. Event lists must agree across workloads.
CounterMatrix counter_matrix_from_perf_intervals(
    const std::string& suite_name,
    const std::vector<std::pair<std::string, std::string>>& workload_outputs);

}  // namespace perspector::core
