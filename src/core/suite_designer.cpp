#include "core/suite_designer.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/subset.hpp"

namespace perspector::core {

double design_utility(const SuiteScores& scores,
                      const DesignerOptions& options) {
  return -options.cluster_weight * scores.cluster +
         options.trend_weight * scores.trend / options.trend_scale +
         options.coverage_weight * scores.coverage -
         options.spread_weight * scores.spread;
}

namespace {

SuiteScores evaluate(const CounterMatrix& pool,
                     const std::vector<std::size_t>& picks,
                     const DesignerOptions& options) {
  PerspectorOptions scoring = options.scoring;
  scoring.compute_trend = options.include_trend && pool.has_series();
  return Perspector(scoring).score_suite(pool.select_workloads(picks));
}

}  // namespace

DesignerResult design_suite(const CounterMatrix& pool,
                            const DesignerOptions& options) {
  const std::size_t n = pool.num_workloads();
  if (options.target_size < 4) {
    throw std::invalid_argument(
        "design_suite: target_size must be >= 4 (ClusterScore needs it)");
  }
  if (options.target_size >= n) {
    throw std::invalid_argument(
        "design_suite: target_size must be smaller than the pool");
  }

  // Seed with the LHS subset: already space-filling, so the greedy search
  // starts near a good region.
  SubsetOptions seed_options;
  seed_options.target_size = options.target_size;
  seed_options.seed = options.seed;
  std::vector<std::size_t> picks = select_subset(pool, seed_options);
  std::sort(picks.begin(), picks.end());

  DesignerResult result;
  SuiteScores current_scores = evaluate(pool, picks, options);
  double current = design_utility(current_scores, options);
  result.utility_history.push_back(current);

  std::vector<bool> selected(n, false);
  for (std::size_t i : picks) selected[i] = true;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double best = current;
    std::size_t best_out = n, best_in = n;
    SuiteScores best_scores = current_scores;

    for (std::size_t out_pos = 0; out_pos < picks.size(); ++out_pos) {
      for (std::size_t in = 0; in < n; ++in) {
        if (selected[in]) continue;
        std::vector<std::size_t> trial = picks;
        trial[out_pos] = in;
        const SuiteScores scores = evaluate(pool, trial, options);
        const double utility = design_utility(scores, options);
        if (utility > best + 1e-12) {
          best = utility;
          best_out = out_pos;
          best_in = in;
          best_scores = scores;
        }
      }
    }
    if (best_out == n) break;  // local optimum

    selected[picks[best_out]] = false;
    selected[best_in] = true;
    picks[best_out] = best_in;
    current = best;
    current_scores = best_scores;
    ++result.swaps;
    result.utility_history.push_back(current);
  }

  std::sort(picks.begin(), picks.end());
  result.indices = picks;
  for (std::size_t i : picks) {
    result.names.push_back(pool.workload_names()[i]);
  }
  result.scores = current_scores;
  result.utility = current;
  return result;
}

}  // namespace perspector::core
