// Event groups: named subsets of PMU counters for focused scoring
// (paper Section IV-B — all / LLC-only / TLB-only).
#pragma once

#include <string>
#include <vector>

namespace perspector::core {

/// A named filter over counter names.
class EventGroup {
 public:
  /// All counters (identity filter).
  static EventGroup all();
  /// LLC-loads/stores and their misses (Fig. 3b).
  static EventGroup llc();
  /// dTLB loads/stores, their misses, and walk-pending cycles (Fig. 3c).
  static EventGroup tlb();
  /// Branch instructions and mispredictions.
  static EventGroup branch();
  /// Arbitrary user-defined group; `counters` must be non-empty.
  static EventGroup custom(std::string name, std::vector<std::string> counters);

  const std::string& name() const noexcept { return name_; }

  /// True when this group keeps every counter.
  bool is_all() const noexcept { return counters_.empty(); }

  bool contains(const std::string& counter_name) const;

  /// Indices (into `available`) of the counters this group selects, in
  /// `available` order. Throws std::invalid_argument when the group selects
  /// nothing from `available`.
  std::vector<std::size_t> indices_in(
      const std::vector<std::string>& available) const;

 private:
  EventGroup(std::string name, std::vector<std::string> counters);

  std::string name_;
  std::vector<std::string> counters_;  // empty = all
};

}  // namespace perspector::core
