#include "core/derived.hpp"

namespace perspector::core {

namespace {

double ratio(double num, double den) { return den <= 0.0 ? 0.0 : num / den; }

}  // namespace

DerivedMetrics derive_metrics_for(const CounterMatrix& suite,
                                  std::size_t workload) {
  const auto v = [&](const char* name) {
    return suite.value(workload, suite.counter_index(name));
  };

  const double cycles = v("cpu-cycles");
  const double llc_misses = v("LLC-load-misses") + v("LLC-store-misses");
  const double llc_accesses = v("LLC-loads") + v("LLC-stores");
  const double tlb_misses = v("dTLB-load-misses") + v("dTLB-store-misses");
  const double tlb_accesses = v("dTLB-loads") + v("dTLB-stores");
  const double branches = v("branch-instructions");
  const double branch_misses = v("branch-misses");

  DerivedMetrics m;
  m.workload = suite.workload_names()[workload];
  m.llc_miss_pkc = ratio(llc_misses * 1000.0, cycles);
  m.llc_access_pkc = ratio(llc_accesses * 1000.0, cycles);
  m.dtlb_miss_pkc = ratio(tlb_misses * 1000.0, cycles);
  m.page_fault_pkc = ratio(v("page-faults") * 1000.0, cycles);
  m.branch_mpki_cycles = ratio(branch_misses * 1000.0, cycles);
  m.branch_miss_ratio = ratio(branch_misses, branches);
  m.llc_miss_ratio = ratio(llc_misses, llc_accesses);
  m.dtlb_miss_ratio = ratio(tlb_misses, tlb_accesses);
  m.stall_fraction = ratio(v("cycle_activity.stalls_mem_any"), cycles);
  m.walk_fraction = ratio(v("dtlb_misses.walk_pending"), cycles);
  m.memory_intensity = ratio(tlb_accesses, cycles);
  return m;
}

std::vector<DerivedMetrics> derive_metrics(const CounterMatrix& suite) {
  std::vector<DerivedMetrics> out;
  out.reserve(suite.num_workloads());
  for (std::size_t w = 0; w < suite.num_workloads(); ++w) {
    out.push_back(derive_metrics_for(suite, w));
  }
  return out;
}

}  // namespace perspector::core
