// SpreadScore (paper Section III-D, Eq. 14).
//
// Uniformity metric: for each workload, a one-sample Kolmogorov-Smirnov
// test of its (jointly) normalized counter values against U(0,1); the score
// is the mean D-value over workloads. Lower is better — the paper reads
// D in [0, 0.5] as "weakly uniform".
//
// The paper draws m random uniform points and runs a two-sample KS test; by
// default we test against the analytic U(0,1) CDF, which is the same test
// with the sampling noise removed (deterministic). `Mode::Sampled`
// reproduces the paper's literal procedure.
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace perspector::core {

/// Knobs for the SpreadScore computation.
struct SpreadScoreOptions {
  enum class Mode : std::uint8_t {
    Analytic,  // one-sample KS vs the exact U(0,1) CDF (default)
    Sampled,   // two-sample KS vs m fresh uniform draws (paper-literal)
  };
  Mode mode = Mode::Analytic;
  std::uint64_t seed = 99;  // used by Sampled mode only
};

/// Result with per-workload detail.
struct SpreadScoreResult {
  double score = 0.0;               // Eq. 14 — mean D over workloads
  std::vector<double> per_workload; // D-value per workload (row)
};

/// Computes the SpreadScore on an already (jointly) normalized matrix
/// (rows = workloads). Requires a non-empty matrix.
SpreadScoreResult spread_score(const la::Matrix& normalized,
                               const SpreadScoreOptions& options = {});

}  // namespace perspector::core
