#include "core/joint_normalize.hpp"

#include <limits>
#include <stdexcept>

namespace perspector::core {

JointRanges joint_ranges(const std::vector<const la::Matrix*>& suites) {
  if (suites.empty()) {
    throw std::invalid_argument("joint_ranges: no suites");
  }
  const std::size_t m = suites.front()->cols();
  for (const la::Matrix* s : suites) {
    if (s == nullptr || s->cols() != m || s->rows() == 0) {
      throw std::invalid_argument(
          "joint_ranges: suites must be non-empty with equal column counts");
    }
  }
  JointRanges r;
  r.min.assign(m, std::numeric_limits<double>::infinity());
  r.max.assign(m, -std::numeric_limits<double>::infinity());
  for (const la::Matrix* s : suites) {
    for (std::size_t i = 0; i < s->rows(); ++i) {
      for (std::size_t c = 0; c < m; ++c) {
        const double v = (*s)(i, c);
        r.min[c] = std::min(r.min[c], v);
        r.max[c] = std::max(r.max[c], v);
      }
    }
  }
  return r;
}

la::Matrix apply_joint_normalization(const la::Matrix& values,
                                     const JointRanges& ranges) {
  if (values.cols() != ranges.min.size() ||
      values.cols() != ranges.max.size()) {
    throw std::invalid_argument(
        "apply_joint_normalization: range size mismatch");
  }
  la::Matrix out(values.rows(), values.cols());
  for (std::size_t c = 0; c < values.cols(); ++c) {
    const double lo = ranges.min[c];
    const double hi = ranges.max[c];
    const double span = hi - lo;
    for (std::size_t r = 0; r < values.rows(); ++r) {
      out(r, c) = span <= 0.0 ? 0.5 : (values(r, c) - lo) / span;
    }
  }
  return out;
}

std::vector<la::Matrix> joint_minmax_normalize(
    const std::vector<const la::Matrix*>& suites) {
  const JointRanges ranges = joint_ranges(suites);
  std::vector<la::Matrix> out;
  out.reserve(suites.size());
  for (const la::Matrix* s : suites) {
    out.push_back(apply_joint_normalization(*s, ranges));
  }
  return out;
}

}  // namespace perspector::core
