#include "core/phase_detect.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace perspector::core {

namespace {

// Mean-relative squash to [0,100), matching the TrendScore normalization:
// scale-free, so one noisy high-magnitude counter cannot drown the rest.
std::vector<double> squash(const std::vector<double>& series) {
  double total = 0.0;
  for (double v : series) {
    if (v < 0.0) {
      throw std::invalid_argument("detect_phases: negative counter delta");
    }
    total += v;
  }
  std::vector<double> out(series.size(), 50.0);
  if (total <= 0.0) return out;
  const double mean = total / static_cast<double>(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double r = series[i] / mean;
    out[i] = 100.0 * r / (1.0 + r);
  }
  return out;
}

}  // namespace

PhaseReport detect_phases(const std::vector<std::vector<double>>& series,
                          const PhaseDetectOptions& options) {
  if (series.empty()) {
    throw std::invalid_argument("detect_phases: no counter series");
  }
  const std::size_t samples = series.front().size();
  if (samples < 2) {
    throw std::invalid_argument("detect_phases: need at least 2 samples");
  }
  for (const auto& s : series) {
    if (s.size() != samples) {
      throw std::invalid_argument("detect_phases: ragged counter series");
    }
  }
  if (options.window == 0) {
    throw std::invalid_argument("detect_phases: window must be > 0");
  }

  std::vector<std::vector<double>> normalized;
  normalized.reserve(series.size());
  for (const auto& s : series) normalized.push_back(squash(s));

  // Mean-shift statistic at each candidate boundary t: the absolute
  // difference between the mean of [t-w, t) and [t, t+w), averaged over
  // counters. Windows are clipped at the edges.
  const std::size_t w = options.window;
  std::vector<double> shift(samples, 0.0);
  for (std::size_t t = 1; t + 1 < samples; ++t) {
    const std::size_t lo = t >= w ? t - w : 0;
    const std::size_t hi = std::min(samples, t + w);
    double total_shift = 0.0;
    for (const auto& s : normalized) {
      double left = 0.0, right = 0.0;
      for (std::size_t i = lo; i < t; ++i) left += s[i];
      for (std::size_t i = t; i < hi; ++i) right += s[i];
      left /= static_cast<double>(t - lo);
      right /= static_cast<double>(hi - t);
      total_shift += std::abs(right - left);
    }
    shift[t] = total_shift / static_cast<double>(normalized.size());
  }

  // Local maxima above threshold become boundaries.
  std::vector<std::size_t> boundaries;
  std::vector<double> strengths;
  for (std::size_t t = 1; t + 1 < samples; ++t) {
    if (shift[t] < options.threshold) continue;
    if (shift[t] >= shift[t - 1] && shift[t] > shift[t + 1]) {
      boundaries.push_back(t);
      strengths.push_back(shift[t]);
    }
  }

  // Merge boundaries closer than min_phase_length (keep the stronger one).
  std::vector<std::size_t> merged;
  std::vector<double> merged_strengths;
  for (std::size_t i = 0; i < boundaries.size(); ++i) {
    if (!merged.empty() &&
        boundaries[i] - merged.back() < options.min_phase_length) {
      if (strengths[i] > merged_strengths.back()) {
        merged.back() = boundaries[i];
        merged_strengths.back() = strengths[i];
      }
      continue;
    }
    merged.push_back(boundaries[i]);
    merged_strengths.push_back(strengths[i]);
  }
  // Drop a boundary that would create a leading/trailing sliver.
  while (!merged.empty() && merged.front() < options.min_phase_length) {
    merged.erase(merged.begin());
    merged_strengths.erase(merged_strengths.begin());
  }
  while (!merged.empty() &&
         samples - merged.back() < options.min_phase_length) {
    merged.pop_back();
    merged_strengths.pop_back();
  }

  PhaseReport report;
  report.boundary_strength = std::move(merged_strengths);
  std::size_t begin = 0;
  for (std::size_t b : merged) {
    report.phases.push_back({.begin = begin, .end = b});
    begin = b;
  }
  report.phases.push_back({.begin = begin, .end = samples});
  return report;
}

std::vector<PhaseReport> detect_phases(const CounterMatrix& suite,
                                       const PhaseDetectOptions& options) {
  if (!suite.has_series()) {
    throw std::logic_error("detect_phases: suite has no time series");
  }
  std::vector<PhaseReport> reports;
  reports.reserve(suite.num_workloads());
  for (std::size_t w = 0; w < suite.num_workloads(); ++w) {
    std::vector<std::vector<double>> series;
    series.reserve(suite.num_counters());
    for (std::size_t c = 0; c < suite.num_counters(); ++c) {
      series.push_back(suite.series(w, c));
    }
    reports.push_back(detect_phases(series, options));
  }
  return reports;
}

double mean_phase_count(const CounterMatrix& suite,
                        const PhaseDetectOptions& options) {
  const auto reports = detect_phases(suite, options);
  double total = 0.0;
  for (const auto& r : reports) {
    total += static_cast<double>(r.phase_count());
  }
  return total / static_cast<double>(reports.size());
}

}  // namespace perspector::core
