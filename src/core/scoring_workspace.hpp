// ScoringWorkspace: the shared-computation cache of the score pipeline
// (DESIGN.md section 9).
//
// The TrendScore's pairwise-DTW sweep (Eq. 7-8) is the dominant cost of
// scoring, and the subset/stability flows recompute it wholesale: every
// subset candidate, bootstrap resample, and jackknife leave-one-out suite
// is a *row-view* of a suite whose pairwise distances are already known —
// the same normalized series pairs produce the same doubles. A
// ScoringWorkspace primes the full suite's per-counter pairwise DTW
// matrices once and then answers any row-subset's TrendScore with O(s^2)
// lookups instead of O(s^2) DTW dynamic programs.
//
// Cache-key invariants (why slicing is bit-exact):
//   * a lookup is only served after map_rows proves the candidate suite is
//     a row-view of the primed suite: identical counter names, identical
//     TrendScoreOptions, and — decisive — every candidate workload's
//     *normalized trend* equal element-wise to the primed workload it maps
//     to. Equal normalized inputs make the DTW dynamic program compute
//     identical doubles, so returning the cached value is returning the
//     value the direct path would have produced;
//   * row order and repetition are irrelevant: DTW with the absolute-value
//     local cost is exactly symmetric (the transposed DP table is equal
//     cell-by-cell) and d(s, s) is exactly 0.0, so bootstrap resamples
//     (unsorted, with repeats) slice correctly too;
//   * the cached TrendScore accumulates pair distances in the same
//     (i asc, j asc) order and with the same divisions as the direct
//     Eq. 7/8 evaluation — same values, same association, same bits.
//
// Threading: prime_trend is guarded by a mutex and publishes with a
// release store; readers (map_rows / trend_score_from_cache) only consume
// after trend_primed() observes the publication. Perspector primes on the
// first scored suite, so stability's parallel resamples only ever read.
//
// Observability: `cache.primes`, `cache.hits`, `cache.misses` (exposed via
// --metrics like every obs counter).
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/counter_matrix.hpp"
#include "core/trend_score.hpp"
#include "la/matrix.hpp"

namespace perspector::core {

class ScoringWorkspace {
 public:
  ScoringWorkspace() = default;
  ScoringWorkspace(const ScoringWorkspace&) = delete;
  ScoringWorkspace& operator=(const ScoringWorkspace&) = delete;

  /// Computes, once, the per-counter full pairwise DTW matrices for
  /// `suite` under `options`. Subsequent calls are no-ops (the cache is
  /// write-once). Suites without series, with fewer than two workloads, or
  /// with duplicate workload names leave the cache unusable — every lookup
  /// then misses and callers fall back to direct computation.
  void prime_trend(const CounterMatrix& suite,
                   const TrendScoreOptions& options);

  /// True once prime_trend ran (whether or not the cache came out usable).
  bool trend_primed() const noexcept {
    return trend_primed_.load(std::memory_order_acquire);
  }

  /// True when the primed cache came out usable (series present, >= 2
  /// uniquely named workloads). The delta ops below require this.
  bool trend_usable() const noexcept {
    return trend_primed() && trend_usable_;
  }

  /// Incrementally extends the primed cache with workload `row` of the
  /// mutated suite `suite`: normalizes its m trends and computes one DTW
  /// strip against every *live* primed row — O(n·m) dynamic programs
  /// instead of the O(n²·m) of a cold re-prime. An existing workload of
  /// the same name is superseded: its old row stays allocated but becomes
  /// unreachable (stale rows are never compacted; residency is bounded by
  /// mutation count, not suite size). Returns false without mutating
  /// anything when the cache is unusable or `suite` is incompatible
  /// (different counters or options, no series, row out of range).
  ///
  /// Invariant kept inductively: every pair of live rows always has a
  /// populated distance — a drop only shrinks the live set, and an upsert
  /// pairs the new row with every current live row. Slicing therefore
  /// stays bit-exact after any add/drop/append sequence (DTW symmetry
  /// makes the strip's argument order irrelevant, see the file comment).
  ///
  /// Unlike the write-once prime, delta ops mutate shared state: callers
  /// must externally serialize them against concurrent map_rows /
  /// trend_score_from_cache readers (the serving engine holds a per-suite
  /// writer lock across mutation + re-score).
  bool upsert_row(const CounterMatrix& suite, std::size_t row,
                  const TrendScoreOptions& options);

  /// Unmaps `workload` from the primed cache (mask, not compaction — the
  /// row's trends and distances stay allocated but unreachable). Returns
  /// false when the cache is unusable or the name is unknown. Same
  /// external-synchronization contract as upsert_row.
  bool remove_row(const std::string& workload);

  /// Proves `suite` is a row-view of the primed suite under the same
  /// options and fills `rows` with the primed row index of every suite
  /// row. Returns false (a cache miss) when anything fails to match.
  bool map_rows(const CounterMatrix& suite, const TrendScoreOptions& options,
                std::vector<std::size_t>& rows) const;

  /// TrendScore of the row-view `rows` of the primed suite — pure lookups,
  /// no DTW. Bit-identical to trend_score on the materialized sub-suite.
  /// Requires a usable primed cache and at least two rows.
  TrendScoreResult trend_score_from_cache(
      std::span<const std::size_t> rows) const;

  /// Cached pairwise DTW matrix of counter `c` (testing / diagnostics).
  const la::Matrix& trend_distances(std::size_t c) const {
    return per_counter_.at(c);
  }

 private:
  std::mutex prime_mutex_;
  std::atomic<bool> trend_primed_{false};
  bool trend_usable_ = false;

  std::vector<std::string> counters_;
  /// Ordered map: never iterated today, but the det-hash lint policy bans
  /// hash containers in scoring subsystems outright so an innocent future
  /// loop cannot leak iteration order into results.
  std::map<std::string, std::size_t> row_by_name_;
  TrendScoreOptions options_;
  /// Normalized trend of primed workload w, counter c at [w * m + c] —
  /// kept for map_rows' element-wise verification.
  std::vector<std::vector<double>> trends_;
  /// Per-counter n x n pairwise DTW distance matrices.
  std::vector<la::Matrix> per_counter_;
};

}  // namespace perspector::core
