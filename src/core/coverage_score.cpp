#include "core/coverage_score.hpp"

#include <stdexcept>

#include "pca/pca.hpp"

namespace perspector::core {

CoverageScoreResult coverage_score(const la::Matrix& normalized,
                                   const CoverageScoreOptions& options) {
  if (normalized.rows() < 2) {
    throw std::invalid_argument("coverage_score: need at least 2 workloads");
  }
  const pca::PcaResult fitted =
      pca::fit_pca(normalized, options.variance_target);  // Eq. 11-12

  CoverageScoreResult result;
  result.components = fitted.retained;
  double total = 0.0;
  for (std::size_t i = 0; i < fitted.retained; ++i) {
    const double v = fitted.component_variance(i);
    result.component_variances.push_back(v);
    result.explained_ratio.push_back(fitted.explained_ratio[i]);
    total += v;
  }
  result.score = total / static_cast<double>(fitted.retained);  // Eq. 13
  return result;
}

}  // namespace perspector::core
