// Perspector: the top-level scoring engine.
//
// Scores one or many benchmark suites with the four paper metrics. When
// several suites are scored together, Coverage and Spread use the shared
// joint normalization (Eq. 9-10); Cluster and Trend are intrinsically
// per-suite. An EventGroup restricts scoring to a counter subset
// (focused scoring, Section IV-B).
#pragma once

#include <string>
#include <vector>

#include "core/cluster_score.hpp"
#include "core/counter_matrix.hpp"
#include "core/coverage_score.hpp"
#include "core/event_group.hpp"
#include "core/spread_score.hpp"
#include "core/trend_score.hpp"

namespace perspector::core {

/// All four scores for one suite, with full per-metric detail.
struct SuiteScores {
  std::string suite;
  double cluster = 0.0;   // lower is better
  double trend = 0.0;     // higher is better
  double coverage = 0.0;  // higher is better
  double spread = 0.0;    // lower is better

  ClusterScoreResult cluster_detail;
  TrendScoreResult trend_detail;
  CoverageScoreResult coverage_detail;
  SpreadScoreResult spread_detail;
};

/// Combined configuration for a scoring run.
struct PerspectorOptions {
  EventGroup events = EventGroup::all();
  ClusterScoreOptions cluster;
  TrendScoreOptions trend;
  CoverageScoreOptions coverage;
  SpreadScoreOptions spread;
  /// Trend scoring needs series; set false to skip it (e.g. aggregate-only
  /// data), leaving trend = 0.
  bool compute_trend = true;
};

/// The scoring engine. Stateless apart from its options.
class Perspector {
 public:
  explicit Perspector(PerspectorOptions options = {});

  /// Scores several suites together: coverage/spread share joint
  /// normalization over all of them. Result order matches input order.
  std::vector<SuiteScores> score_suites(
      const std::vector<CounterMatrix>& suites) const;

  /// Scores a single suite in isolation (self-normalized coverage/spread).
  SuiteScores score_suite(const CounterMatrix& suite) const;

  const PerspectorOptions& options() const noexcept { return options_; }

 private:
  PerspectorOptions options_;
};

}  // namespace perspector::core
