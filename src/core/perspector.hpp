// Perspector: the top-level scoring engine.
//
// Scores one or many benchmark suites with the four paper metrics. When
// several suites are scored together, Coverage and Spread use the shared
// joint normalization (Eq. 9-10); Cluster and Trend are intrinsically
// per-suite. An EventGroup restricts scoring to a counter subset
// (focused scoring, Section IV-B).
#pragma once

#include <string>
#include <vector>

#include "core/cluster_score.hpp"
#include "core/counter_matrix.hpp"
#include "core/coverage_score.hpp"
#include "core/event_group.hpp"
#include "core/spread_score.hpp"
#include "core/trend_score.hpp"

namespace perspector::core {

class ScoringWorkspace;

/// All four scores for one suite, with full per-metric detail.
struct SuiteScores {
  std::string suite;
  double cluster = 0.0;   // lower is better
  double trend = 0.0;     // higher is better
  double coverage = 0.0;  // higher is better
  double spread = 0.0;    // lower is better

  ClusterScoreResult cluster_detail;
  TrendScoreResult trend_detail;
  CoverageScoreResult coverage_detail;
  SpreadScoreResult spread_detail;
};

/// Combined configuration for a scoring run.
struct PerspectorOptions {
  EventGroup events = EventGroup::all();
  ClusterScoreOptions cluster;
  TrendScoreOptions trend;
  CoverageScoreOptions coverage;
  SpreadScoreOptions spread;
  /// Trend scoring needs series; set false to skip it (e.g. aggregate-only
  /// data), leaving trend = 0.
  bool compute_trend = true;
};

/// The scoring engine. Stateless apart from its options.
class Perspector {
 public:
  explicit Perspector(PerspectorOptions options = {});

  /// Scores several suites together: coverage/spread share joint
  /// normalization over all of them. Result order matches input order.
  /// Uses a private ScoringWorkspace, so when later suites are row-views
  /// of the first (e.g. {full, subset}), their TrendScore is served from
  /// the cached pairwise DTW matrix.
  std::vector<SuiteScores> score_suites(
      const std::vector<CounterMatrix>& suites) const;

  /// Same, with a caller-owned workspace: the first series-bearing suite
  /// primes the trend cache (if not already primed), and every suite that
  /// proves to be a row-view of the primed one scores trend by cache
  /// lookup. Reusing one workspace across calls is how subset candidates
  /// and stability resamples skip the O(s^2) DTW sweep entirely; outputs
  /// are bit-identical either way (see scoring_workspace.hpp).
  std::vector<SuiteScores> score_suites(
      const std::vector<CounterMatrix>& suites, ScoringWorkspace& workspace)
      const;

  /// Scores a single suite in isolation (self-normalized coverage/spread).
  SuiteScores score_suite(const CounterMatrix& suite) const;

  const PerspectorOptions& options() const noexcept { return options_; }

 private:
  PerspectorOptions options_;
};

}  // namespace perspector::core
