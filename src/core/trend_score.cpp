#include "core/trend_score.hpp"

#include <stdexcept>

#include "dtw/dtw.hpp"
#include "dtw/trend_normalize.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"

namespace perspector::core {

TrendScoreResult trend_score(const CounterMatrix& suite,
                             const TrendScoreOptions& options) {
  if (!suite.has_series()) {
    throw std::logic_error("trend_score: suite has no time series");
  }
  if (suite.num_workloads() < 2) {
    throw std::invalid_argument("trend_score: need at least 2 workloads");
  }

  dtw::DtwOptions dtw_options;
  dtw_options.band_fraction = options.dtw_band_fraction;

  TrendScoreResult result;
  // Counters are independent; each task owns per_event[c]. When this runs
  // at the top level the inner pairwise DTW executes serially inside the
  // task, and vice versa — either way the accumulation below is in counter
  // order, matching the serial loop bit for bit.
  result.per_event.resize(suite.num_counters());
  par::parallel_for(suite.num_counters(), [&](std::size_t c) {
    obs::Span counter_span("trend/" + suite.counter_names()[c]);
    // T_z: one normalized series per workload for this counter.
    std::vector<std::vector<double>> normalized;
    normalized.reserve(suite.num_workloads());
    for (std::size_t w = 0; w < suite.num_workloads(); ++w) {
      normalized.push_back(dtw::normalize_trend(
          suite.series(w, c), options.grid_points, options.normalization));
    }
    result.per_event[c] = dtw::mean_pairwise_dtw(normalized, dtw_options);
  });  // Eq. 7
  double total = 0.0;
  for (double t_score : result.per_event) total += t_score;
  result.score = total / static_cast<double>(suite.num_counters());  // Eq. 8
  return result;
}

}  // namespace perspector::core
