#include "core/trend_score.hpp"

#include <stdexcept>

#include "dtw/dtw.hpp"
#include "dtw/trend_normalize.hpp"
#include "obs/trace.hpp"

namespace perspector::core {

TrendScoreResult trend_score(const CounterMatrix& suite,
                             const TrendScoreOptions& options) {
  if (!suite.has_series()) {
    throw std::logic_error("trend_score: suite has no time series");
  }
  if (suite.num_workloads() < 2) {
    throw std::invalid_argument("trend_score: need at least 2 workloads");
  }

  dtw::DtwOptions dtw_options;
  dtw_options.band_fraction = options.dtw_band_fraction;

  TrendScoreResult result;
  double total = 0.0;
  for (std::size_t c = 0; c < suite.num_counters(); ++c) {
    obs::Span counter_span("trend/" + suite.counter_names()[c]);
    // T_z: one normalized series per workload for this counter.
    std::vector<std::vector<double>> normalized;
    normalized.reserve(suite.num_workloads());
    for (std::size_t w = 0; w < suite.num_workloads(); ++w) {
      normalized.push_back(dtw::normalize_trend(
          suite.series(w, c), options.grid_points, options.normalization));
    }
    const double t_score =
        dtw::mean_pairwise_dtw(normalized, dtw_options);  // Eq. 7
    result.per_event.push_back(t_score);
    total += t_score;
  }
  result.score = total / static_cast<double>(suite.num_counters());  // Eq. 8
  return result;
}

}  // namespace perspector::core
