#include "core/cluster_score.hpp"

#include <stdexcept>

#include "cluster/kmeans.hpp"
#include "cluster/silhouette.hpp"
#include "par/parallel.hpp"
#include "stats/normalize.hpp"

namespace perspector::core {

ClusterScoreResult cluster_score(const CounterMatrix& suite,
                                 const ClusterScoreOptions& options) {
  return cluster_score_from_normalized(
      stats::minmax_normalize_columns(suite.values()), options);
}

ClusterScoreResult cluster_score_from_normalized(
    const la::Matrix& normalized, const ClusterScoreOptions& options) {
  const std::size_t n = normalized.rows();
  if (n < 4) {
    throw std::invalid_argument(
        "cluster_score: need at least 4 workloads (k sweeps 2..n-1)");
  }

  ClusterScoreResult result;
  // Every k in the sweep scores the same point set, so the pairwise
  // distance matrix the silhouette needs is computed once here (itself a
  // deterministic parallel region) and shared read-only across the sweep
  // instead of being rebuilt inside every per-k task.
  const la::Matrix dist = la::pairwise_distances(normalized);
  // The k sweep is the ClusterScore hot loop; every k is an independent
  // clustering (per-k seed below), so each task owns per_k[k-2] and the
  // Eq. 6 mean below accumulates in k order — identical for any thread
  // count. Inner parallelism (restarts, silhouette) serializes when nested.
  result.per_k.resize(n - 2);
  par::parallel_for(n - 2, [&](std::size_t i) {
    const std::size_t k = i + 2;
    cluster::KMeansConfig config;
    config.k = k;
    config.restarts = options.kmeans_restarts;
    config.max_iters = options.kmeans_max_iters;
    // Stable per-k seed so adding workloads does not reshuffle smaller k.
    config.seed = options.seed + k * 1000003ull;
    const auto clustering = cluster::kmeans(normalized, config);
    result.per_k[i] = cluster::silhouette_score_from_distances(
        dist, clustering.labels, k);  // Eq. 5
  });
  double total = 0.0;
  for (double s : result.per_k) total += s;
  result.score = total / static_cast<double>(n - 2);  // Eq. 6
  return result;
}

}  // namespace perspector::core
