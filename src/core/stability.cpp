#include "core/stability.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/scoring_workspace.hpp"
#include "par/parallel.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace perspector::core {

namespace {

// splitmix64 finalizer: decorrelates the per-resample seeds derived below
// even for adjacent resample indices.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

ScoreDistribution summarize_samples(double point,
                                    const std::vector<double>& samples) {
  ScoreDistribution d;
  d.point = point;
  d.mean = stats::mean(samples);
  d.stddev = samples.size() >= 2 ? stats::stddev_sample(samples) : 0.0;
  d.p05 = stats::percentile(samples, 5.0);
  d.p95 = stats::percentile(samples, 95.0);
  return d;
}

// Every resample is a row-view of the original suite, so one shared
// workspace (primed by the point/full score, before any parallel region)
// serves every resample's TrendScore from the cached pairwise DTW matrix.
SuiteScores score_once(const CounterMatrix& suite,
                       const PerspectorOptions& scoring, bool include_trend,
                       ScoringWorkspace& workspace) {
  PerspectorOptions options = scoring;
  options.compute_trend = include_trend && scoring.compute_trend;
  return Perspector(options).score_suites({suite}, workspace).front();
}

}  // namespace

StabilityReport bootstrap_scores(const CounterMatrix& suite,
                                 const StabilityOptions& options) {
  const std::size_t n = suite.num_workloads();
  if (n < 4) {
    throw std::invalid_argument("bootstrap_scores: need at least 4 workloads");
  }
  if (options.resamples == 0) {
    throw std::invalid_argument("bootstrap_scores: resamples must be > 0");
  }

  ScoringWorkspace workspace;
  const SuiteScores point =
      score_once(suite, options.scoring, options.include_trend, workspace);

  // Each resample is a pure function of (seed, r): bootstrap_picks derives
  // a private RNG stream per task, so no resample ever observes another's
  // draws and the sample vectors are filled by index. The summaries below
  // then consume them in resample order — bit-identical for any thread
  // count and any task execution order.
  std::vector<double> cluster(options.resamples), trend(options.resamples),
      coverage(options.resamples), spread(options.resamples);
  par::parallel_for(options.resamples, [&](std::size_t r) {
    const CounterMatrix resampled =
        suite.select_workloads(bootstrap_picks(options.seed, r, n));
    const SuiteScores s = score_once(resampled, options.scoring,
                                     options.include_trend, workspace);
    cluster[r] = s.cluster;
    trend[r] = s.trend;
    coverage[r] = s.coverage;
    spread[r] = s.spread;
  });

  StabilityReport report;
  report.resamples = options.resamples;
  report.cluster = summarize_samples(point.cluster, cluster);
  report.trend = summarize_samples(point.trend, trend);
  report.coverage = summarize_samples(point.coverage, coverage);
  report.spread = summarize_samples(point.spread, spread);
  return report;
}

std::vector<std::size_t> bootstrap_picks(std::uint64_t seed,
                                         std::size_t resample,
                                         std::size_t n) {
  stats::Rng rng(mix64(seed ^ mix64(static_cast<std::uint64_t>(resample) + 1)));
  // Resample with replacement, but ensure at least 4 *distinct* workloads
  // so the ClusterScore's k sweep stays defined.
  std::vector<std::size_t> picks(n);
  std::size_t distinct = 0;
  do {
    std::vector<bool> seen(n, false);
    distinct = 0;
    for (std::size_t i = 0; i < n; ++i) {
      picks[i] = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      if (!seen[picks[i]]) {
        seen[picks[i]] = true;
        ++distinct;
      }
    }
  } while (distinct < 4);
  return picks;
}

std::size_t JackknifeReport::most_influential(std::size_t score_index) const {
  if (score_index >= 4) {
    throw std::invalid_argument("JackknifeReport: score index out of range");
  }
  std::size_t best = 0;
  for (std::size_t w = 1; w < influence.size(); ++w) {
    if (std::abs(influence[w][score_index]) >
        std::abs(influence[best][score_index])) {
      best = w;
    }
  }
  return best;
}

JackknifeReport jackknife_scores(const CounterMatrix& suite,
                                 const PerspectorOptions& scoring,
                                 bool include_trend) {
  const std::size_t n = suite.num_workloads();
  if (n < 5) {
    throw std::invalid_argument(
        "jackknife_scores: need at least 5 workloads (leave-one-out keeps 4)");
  }
  ScoringWorkspace workspace;
  const SuiteScores full = score_once(suite, scoring, include_trend, workspace);

  JackknifeReport report;
  report.workloads = suite.workload_names();
  report.influence.resize(n);
  // Leave-one-out evaluations are independent and RNG-free at this level;
  // influence[leave] is each task's only write.
  par::parallel_for(n, [&](std::size_t leave) {
    std::vector<std::size_t> keep;
    keep.reserve(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
      if (i != leave) keep.push_back(i);
    }
    const SuiteScores s = score_once(suite.select_workloads(keep), scoring,
                                     include_trend, workspace);
    report.influence[leave] = {s.cluster - full.cluster, s.trend - full.trend,
                               s.coverage - full.coverage,
                               s.spread - full.spread};
  });
  return report;
}

}  // namespace perspector::core
