#include "core/subset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cluster/hierarchical.hpp"
#include "core/scoring_workspace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"
#include "pca/pca.hpp"
#include "sampling/latin_hypercube.hpp"
#include "sampling/representative.hpp"
#include "stats/ecdf.hpp"
#include "stats/normalize.hpp"
#include "stats/rng.hpp"

namespace perspector::core {

const char* to_string(SubsetMethod method) {
  switch (method) {
    case SubsetMethod::Lhs:
      return "lhs";
    case SubsetMethod::Random:
      return "random";
    case SubsetMethod::HierarchicalPrior:
      return "hierarchical-prior";
  }
  return "unknown";
}

namespace {

std::vector<std::size_t> select_lhs(const la::Matrix& normalized,
                                    const SubsetOptions& options) {
  sampling::LhsOptions lhs_options;
  lhs_options.seed = options.seed;
  la::Matrix targets = sampling::maximin_latin_hypercube(
      options.target_size, normalized.cols(), options.lhs_candidates,
      lhs_options);

  // LHS samples a *probability distribution* (Section IV-C): map each
  // unit-cube coordinate through the per-counter empirical quantile
  // function of the suite, so strata are equal-probability regions of the
  // suite's own distribution. Dense regions of the suite then receive
  // proportionally many sample points — the subset preserves the suite's
  // density structure instead of flattening it.
  // Column tasks build independent ECDFs and write only their own column.
  par::parallel_for(normalized.cols(), [&](std::size_t c) {
    const stats::Ecdf cdf(normalized.col_copy(c));
    for (std::size_t t = 0; t < targets.rows(); ++t) {
      targets(t, c) = cdf.quantile(targets(t, c));
    }
  });
  return sampling::match_nearest_distinct(targets, normalized);
}

std::vector<std::size_t> select_random(std::size_t n,
                                       const SubsetOptions& options) {
  stats::Rng rng(options.seed);
  return rng.sample_without_replacement(n, options.target_size);
}

// Prior-work recipe (Section II): PCA-reduce, hierarchically cluster into
// target_size clusters, take the workload nearest each cluster centroid.
// Two passes over the points — accumulate all centroids, then pick each
// cluster's nearest member — instead of rescanning every label once per
// cluster (O(k*n*d) -> O(n*d + k*d)).
std::vector<std::size_t> select_hierarchical(const la::Matrix& normalized,
                                             const SubsetOptions& options) {
  const pca::PcaResult fitted =
      pca::fit_pca(normalized, options.prior_pca_variance);
  const la::Matrix& reduced = fitted.transformed;

  const auto tree = cluster::agglomerate(reduced, cluster::Linkage::Ward);
  const auto labels = tree.cut(options.target_size);
  const std::size_t k = options.target_size;
  const std::size_t dims = reduced.cols();

  // Pass 1: per-cluster centroid sums in point-index order (the same
  // accumulation order the per-cluster rescan used, so the same doubles).
  la::Matrix centroids(k, dims, 0.0);
  std::vector<std::size_t> members(k, 0);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto row = reduced.row(i);
    auto dst = centroids.row(labels[i]);
    for (std::size_t d = 0; d < dims; ++d) dst[d] += row[d];
    ++members[labels[i]];
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (members[c] == 0) continue;  // cut() never produces empty clusters
    auto dst = centroids.row(c);
    for (double& v : dst) v /= static_cast<double>(members[c]);
  }

  // Pass 2: nearest member per cluster, strict '<' keeping the first
  // minimum in point-index order — identical picks to the rescan.
  std::vector<double> best(k, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> best_i(k, 0);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::size_t c = labels[i];
    const double d = la::euclidean_distance(reduced.row(i), centroids.row(c));
    if (d < best[c]) {
      best[c] = d;
      best_i[c] = i;
    }
  }

  std::vector<std::size_t> picks;
  for (std::size_t c = 0; c < k; ++c) {
    if (members[c] == 0) continue;
    picks.push_back(best_i[c]);
  }
  std::sort(picks.begin(), picks.end());
  return picks;
}

}  // namespace

std::vector<std::size_t> select_subset(const CounterMatrix& suite,
                                       const SubsetOptions& options) {
  if (options.target_size >= suite.num_workloads()) {
    throw std::invalid_argument(
        "select_subset: target size must be smaller than the suite");
  }
  if (options.target_size == 0) {
    throw std::invalid_argument("select_subset: target size must be > 0");
  }
  obs::Span span("subset.select");
  static obs::Counter& selections = obs::counter("subset.selections");
  selections.increment();
  const la::Matrix normalized =
      stats::minmax_normalize_columns(suite.values());

  switch (options.method) {
    case SubsetMethod::Lhs:
      return select_lhs(normalized, options);
    case SubsetMethod::Random:
      return select_random(suite.num_workloads(), options);
    case SubsetMethod::HierarchicalPrior:
      return select_hierarchical(normalized, options);
  }
  throw std::logic_error("select_subset: unknown method");
}

SubsetResult generate_subset(const CounterMatrix& suite,
                             const SubsetOptions& options,
                             const PerspectorOptions& scoring) {
  if (options.target_size < 4) {
    throw std::invalid_argument(
        "generate_subset: target size must be >= 4 (ClusterScore needs it)");
  }
  obs::Span span("subset.generate");
  SubsetResult result;
  result.indices = select_subset(suite, options);
  std::sort(result.indices.begin(), result.indices.end());
  for (std::size_t i : result.indices) {
    result.names.push_back(suite.workload_names()[i]);
  }

  // Score full suite and subset together: coverage and spread then share
  // the joint normalization (the subset is a sample of the same data, so
  // per-counter ranges must match for the comparison to be meaningful).
  // The workspace means the full suite's pairwise DTW matrix is computed
  // once; the subset's TrendScore is then sliced from it (O(s^2) lookups,
  // zero DTW) instead of re-run on the sub-suite.
  const Perspector engine(scoring);
  ScoringWorkspace workspace;
  auto both = engine.score_suites(
      {suite, suite.select_workloads(result.indices)}, workspace);
  result.full_scores = std::move(both[0]);
  result.subset_scores = std::move(both[1]);

  if (options.cluster_common_k_range) {
    // Re-aggregate the full suite's silhouettes over the subset's k range
    // so both cluster scores measure clusterability at the same
    // granularity (see SubsetOptions::cluster_common_k_range).
    const std::size_t common = options.target_size - 2;
    const auto& per_k = result.full_scores.cluster_detail.per_k;
    double total = 0.0;
    for (std::size_t i = 0; i < common && i < per_k.size(); ++i) {
      total += per_k[i];
    }
    result.full_scores.cluster =
        total / static_cast<double>(std::min(common, per_k.size()));
  }

  const auto deviation = [](double subset, double full) {
    if (full == 0.0) return 0.0;
    return 100.0 * std::abs(subset - full) / std::abs(full);
  };
  result.per_score_deviation_pct = {
      deviation(result.subset_scores.cluster, result.full_scores.cluster),
      deviation(result.subset_scores.trend, result.full_scores.trend),
      deviation(result.subset_scores.coverage, result.full_scores.coverage),
      deviation(result.subset_scores.spread, result.full_scores.spread),
  };
  double total = 0.0;
  std::size_t counted = 0;
  const std::vector<double> fulls = {
      result.full_scores.cluster, result.full_scores.trend,
      result.full_scores.coverage, result.full_scores.spread};
  for (std::size_t i = 0; i < 4; ++i) {
    if (fulls[i] == 0.0) continue;  // metric skipped (e.g. no series)
    total += result.per_score_deviation_pct[i];
    ++counted;
  }
  result.mean_deviation_pct =
      counted == 0 ? 0.0 : total / static_cast<double>(counted);
  return result;
}

}  // namespace perspector::core
