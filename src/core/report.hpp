// Report formatting: fixed-width text tables and CSV output used by the
// examples and every bench binary.
#pragma once

#include <string>
#include <vector>

#include "core/perspector.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace perspector::core {

/// Simple column-aligned text table with optional CSV rendering.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Fixed-width rendering with a header separator.
  std::string to_text() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string to_csv() const;

  /// Writes the CSV rendering to `path`; throws std::runtime_error on I/O
  /// failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double rendering ("0.1235").
std::string format_double(double value, int precision = 4);

/// Renders a scores-per-suite comparison (one row per suite, the four
/// Perspector scores as columns) — the textual Fig. 3 panel.
Table scores_table(const std::vector<SuiteScores>& scores);

/// One-line arrow annotation of which direction is better per score.
std::string score_legend();

/// Per-workload derived-rate table for one suite (LLC/TLB miss rates,
/// branch behaviour, stall fractions). Requires the Table IV counters.
Table workload_rates_table(const CounterMatrix& suite);

/// Full multi-section text report for one scored suite: the four scores
/// with per-metric detail, the per-workload rates table, and per-counter
/// trend contributions when series were collected.
std::string suite_report(const CounterMatrix& suite,
                         const SuiteScores& scores);

/// Per-phase wall-clock breakdown of recorded trace spans. Percentages are
/// relative to `wall_us` when positive, otherwise to the largest phase
/// total (nested spans overlap, so totals do not sum to the wall clock).
Table phase_timing_table(const std::vector<obs::PhaseStat>& summary,
                         double wall_us = 0.0);

/// All registered obs counters (name, value), sorted by name.
Table counters_table(const std::vector<obs::CounterSnapshot>& counters);

/// All registered obs distributions (count/min/mean/max), sorted by name.
Table distributions_table(
    const std::vector<obs::DistributionSnapshot>& distributions);

/// All registered obs histograms (count/mean + p50/p90/p99/p99.9),
/// sorted by name.
Table histograms_table(const std::vector<obs::HistogramSnapshot>& histograms);

}  // namespace perspector::core
