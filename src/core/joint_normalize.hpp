// Joint min-max normalization across suites (paper Eq. 9-10).
//
// Normalizing each suite in isolation would erase the relative magnitude
// information between suites (a counter ranging to 10K in suite A and 100K
// in suite B would both map to [0,1]); the paper therefore computes the
// per-counter min/max over the *concatenation* of all suites being compared
// and rescales every suite with those shared ranges.
#pragma once

#include <vector>

#include "core/counter_matrix.hpp"
#include "la/matrix.hpp"

namespace perspector::core {

/// Per-counter ranges computed over several matrices (Eq. 9).
struct JointRanges {
  std::vector<double> min;  // R in the paper
  std::vector<double> max;  // Q in the paper
};

/// Computes the shared per-counter ranges across matrices that all have the
/// same column count. Throws std::invalid_argument on mismatch or emptiness.
JointRanges joint_ranges(const std::vector<const la::Matrix*>& suites);

/// Applies Eq. 10 with the given ranges; constant counters (max == min) map
/// to 0.5 everywhere.
la::Matrix apply_joint_normalization(const la::Matrix& values,
                                     const JointRanges& ranges);

/// Convenience: jointly normalizes a group of suites in one call; result[i]
/// corresponds to suites[i].
std::vector<la::Matrix> joint_minmax_normalize(
    const std::vector<const la::Matrix*>& suites);

}  // namespace perspector::core
