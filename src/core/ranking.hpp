// Suite ranking: turning four raw scores into a decision.
//
// The paper's use case is "select the most suitable suite for her
// experiments" (Section II). Raw scores have incomparable units
// (TrendScore is O(1000), the others O(0.1-1)) and mixed directions
// (cluster/spread: lower is better). This module grades each score onto
// [0, 1] across the compared suites (min-max, direction-corrected) and
// combines grades with user weights into a single ranking.
#pragma once

#include <string>
#include <vector>

#include "core/perspector.hpp"

namespace perspector::core {

/// Relative importance of each criterion (non-negative, not all zero).
struct RankingWeights {
  double diversity = 1.0;  // ClusterScore (lower raw is better)
  double phases = 1.0;     // TrendScore (higher raw is better)
  double coverage = 1.0;   // CoverageScore (higher raw is better)
  double uniformity = 1.0; // SpreadScore (lower raw is better)
};

/// One suite's graded result.
struct RankedSuite {
  std::string suite;
  double grade = 0.0;      // weighted mean of the four [0,1] grades
  double diversity = 0.0;  // per-criterion grades, 1 = best among compared
  double phases = 0.0;
  double coverage = 0.0;
  double uniformity = 0.0;
};

/// Grades and ranks suites (best first). All suites being compared should
/// have been scored together (shared joint normalization) for the grades
/// to be meaningful. Requires at least two suites; throws
/// std::invalid_argument otherwise or on invalid weights. Ties in raw
/// scores grade to 0.5 for that criterion.
std::vector<RankedSuite> rank_suites(const std::vector<SuiteScores>& scores,
                                     const RankingWeights& weights = {});

}  // namespace perspector::core
