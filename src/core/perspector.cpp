#include "core/perspector.hpp"

#include <stdexcept>

#include "core/joint_normalize.hpp"
#include "core/scoring_workspace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace perspector::core {

Perspector::Perspector(PerspectorOptions options)
    : options_(std::move(options)) {}

std::vector<SuiteScores> Perspector::score_suites(
    const std::vector<CounterMatrix>& suites) const {
  ScoringWorkspace workspace;
  return score_suites(suites, workspace);
}

std::vector<SuiteScores> Perspector::score_suites(
    const std::vector<CounterMatrix>& suites,
    ScoringWorkspace& workspace) const {
  if (suites.empty()) {
    throw std::invalid_argument("Perspector::score_suites: no suites");
  }
  obs::Span span("score_suites");

  // Focused scoring: restrict every suite to the selected event group.
  std::vector<CounterMatrix> filtered;
  filtered.reserve(suites.size());
  for (const auto& suite : suites) {
    if (options_.events.is_all()) {
      filtered.push_back(suite);
    } else {
      filtered.push_back(suite.select_counters(
          options_.events.indices_in(suite.counter_names())));
    }
  }

  // Joint normalization across all suites (Eq. 9-10) for coverage/spread.
  std::vector<la::Matrix> normalized;
  {
    obs::Span normalize_span("joint_normalize");
    std::vector<const la::Matrix*> raw;
    raw.reserve(filtered.size());
    for (const auto& suite : filtered) raw.push_back(&suite.values());
    normalized = joint_minmax_normalize(raw);
  }

  std::vector<SuiteScores> results;
  results.reserve(filtered.size());
  for (std::size_t i = 0; i < filtered.size(); ++i) {
    SuiteScores s;
    s.suite = filtered[i].suite_name();

    {
      obs::Span phase("cluster_score");
      s.cluster_detail = cluster_score(filtered[i], options_.cluster);
      s.cluster = s.cluster_detail.score;
    }

    if (options_.compute_trend && filtered[i].has_series()) {
      obs::Span phase("trend_score");
      static obs::Counter& hits = obs::counter("cache.hits");
      static obs::Counter& misses = obs::counter("cache.misses");
      // First series-bearing suite primes the workspace; row-views of the
      // primed suite (the suite itself, subsets, resamples) then score by
      // cache lookup — same doubles, same summation order, same bits.
      if (!workspace.trend_primed()) {
        workspace.prime_trend(filtered[i], options_.trend);
      }
      std::vector<std::size_t> rows;
      if (workspace.map_rows(filtered[i], options_.trend, rows)) {
        hits.increment();
        s.trend_detail = workspace.trend_score_from_cache(rows);
      } else {
        misses.increment();
        s.trend_detail = trend_score(filtered[i], options_.trend);
      }
      s.trend = s.trend_detail.score;
    }

    {
      obs::Span phase("coverage_score");
      s.coverage_detail = coverage_score(normalized[i], options_.coverage);
      s.coverage = s.coverage_detail.score;
    }

    {
      obs::Span phase("spread_score");
      s.spread_detail = spread_score(normalized[i], options_.spread);
      s.spread = s.spread_detail.score;
    }

    results.push_back(std::move(s));
  }
  return results;
}

SuiteScores Perspector::score_suite(const CounterMatrix& suite) const {
  return score_suites({suite}).front();
}

}  // namespace perspector::core
