#include "core/ranking.hpp"

#include <algorithm>
#include <stdexcept>

namespace perspector::core {

namespace {

// Grades `values` to [0,1]; direction +1 means larger raw is better.
std::vector<double> grade(const std::vector<double>& values, int direction) {
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  std::vector<double> out(values.size(), 0.5);  // all tied
  if (hi <= lo) return out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double t = (values[i] - lo) / (hi - lo);
    out[i] = direction > 0 ? t : 1.0 - t;
  }
  return out;
}

}  // namespace

std::vector<RankedSuite> rank_suites(const std::vector<SuiteScores>& scores,
                                     const RankingWeights& weights) {
  if (scores.size() < 2) {
    throw std::invalid_argument("rank_suites: need at least two suites");
  }
  if (weights.diversity < 0.0 || weights.phases < 0.0 ||
      weights.coverage < 0.0 || weights.uniformity < 0.0) {
    throw std::invalid_argument("rank_suites: negative weight");
  }
  const double total_weight = weights.diversity + weights.phases +
                              weights.coverage + weights.uniformity;
  if (total_weight <= 0.0) {
    throw std::invalid_argument("rank_suites: all weights zero");
  }

  std::vector<double> cluster, trend, coverage, spread;
  for (const auto& s : scores) {
    cluster.push_back(s.cluster);
    trend.push_back(s.trend);
    coverage.push_back(s.coverage);
    spread.push_back(s.spread);
  }
  const auto g_div = grade(cluster, -1);
  const auto g_phase = grade(trend, +1);
  const auto g_cov = grade(coverage, +1);
  const auto g_uni = grade(spread, -1);

  std::vector<RankedSuite> ranked(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    RankedSuite& r = ranked[i];
    r.suite = scores[i].suite;
    r.diversity = g_div[i];
    r.phases = g_phase[i];
    r.coverage = g_cov[i];
    r.uniformity = g_uni[i];
    r.grade = (weights.diversity * r.diversity + weights.phases * r.phases +
               weights.coverage * r.coverage +
               weights.uniformity * r.uniformity) /
              total_weight;
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedSuite& a, const RankedSuite& b) {
                     return a.grade > b.grade;
                   });
  return ranked;
}

}  // namespace perspector::core
