#include "core/io.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "ingest/csv_stream.hpp"
#include "ingest/name_index.hpp"
#include "ingest/number.hpp"

namespace perspector::core {

namespace {

using ingest::csv_location;

// Minimal RFC-4180-ish CSV line splitter (handles quoted cells with
// embedded commas and doubled quotes). `byte_offset` is the line's first
// byte in the input, reported alongside the line number so errors stay
// greppable in GB-scale files.
std::vector<std::string> split_csv_line(const std::string& line,
                                        std::size_t line_no,
                                        std::uint64_t byte_offset) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += ch;
      }
    } else if (ch == '"') {
      quoted = true;
    } else if (ch == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (ch != '\r') {
      cell += ch;
    }
  }
  if (quoted) {
    throw std::runtime_error(csv_location(line_no, byte_offset) +
                             ": unterminated quote");
  }
  cells.push_back(std::move(cell));
  return cells;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

double parse_double(std::string_view cell, std::size_t line_no,
                    std::uint64_t byte_offset) {
  double value = 0.0;
  const char* first = cell.data();
  const char* last = cell.data() + cell.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) {
    throw std::runtime_error(csv_location(line_no, byte_offset) +
                             ": expected a number, got '" +
                             std::string(cell) + "'");
  }
  // from_chars happily parses "nan"/"inf"/"infinity"; every score is
  // undefined over non-finite counters, so reject them at the boundary
  // instead of letting them poison normalization silently.
  if (!std::isfinite(value)) {
    throw std::runtime_error(csv_location(line_no, byte_offset) +
                             ": non-finite value '" + std::string(cell) +
                             "' is not allowed");
  }
  return value;
}

/// Streamed-path variant of parse_double: the ingest fast path covers
/// short plain decimals with a correctly-rounded (bit-identical to
/// from_chars) multiply, and everything it declines — long significands,
/// extreme exponents, nan/inf, malformed cells — re-parses through
/// parse_double above, so the accepted inputs, the parsed bits, and every
/// error message stay exactly the slurp reader's.
double parse_double_fast(std::string_view cell, std::size_t line_no,
                         std::uint64_t byte_offset) {
  double value = 0.0;
  if (ingest::parse_number(cell, value)) return value;
  return parse_double(cell, line_no, byte_offset);
}

/// Drops a leading UTF-8 byte-order mark (EF BB BF) from the first line —
/// spreadsheet exports and Windows producers routinely prepend one, and it
/// would otherwise corrupt the first header cell.
void strip_utf8_bom(std::string& line) {
  if (line.size() >= 3 && line[0] == '\xEF' && line[1] == '\xBB' &&
      line[2] == '\xBF') {
    line.erase(0, 3);
  }
}

std::size_t parse_index(std::string_view cell, std::size_t line_no,
                        std::uint64_t byte_offset) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
    throw std::runtime_error(csv_location(line_no, byte_offset) +
                             ": expected an index, got '" + std::string(cell) +
                             "'");
  }
  return value;
}

std::ofstream open_for_write(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  return out;
}

std::ifstream open_for_read(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open '" + path + "' for reading");
  }
  return in;
}

}  // namespace

void write_aggregates_csv(const CounterMatrix& data, const std::string& path) {
  auto out = open_for_write(path);
  out << "workload";
  for (const auto& counter : data.counter_names()) {
    out << ',' << csv_escape(counter);
  }
  out << '\n';
  for (std::size_t w = 0; w < data.num_workloads(); ++w) {
    out << csv_escape(data.workload_names()[w]);
    for (std::size_t c = 0; c < data.num_counters(); ++c) {
      out << ',' << data.value(w, c);
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("write failed for '" + path + "'");
}

void write_series_csv(const CounterMatrix& data, const std::string& path) {
  if (!data.has_series()) {
    throw std::logic_error("write_series_csv: matrix carries no series");
  }
  auto out = open_for_write(path);
  out << "workload,counter,sample,value\n";
  for (std::size_t w = 0; w < data.num_workloads(); ++w) {
    for (std::size_t c = 0; c < data.num_counters(); ++c) {
      const auto& series = data.series(w, c);
      for (std::size_t s = 0; s < series.size(); ++s) {
        out << csv_escape(data.workload_names()[w]) << ','
            << csv_escape(data.counter_names()[c]) << ',' << s << ','
            << series[s] << '\n';
      }
    }
  }
  if (!out) throw std::runtime_error("write failed for '" + path + "'");
}

namespace {

// %.17g: enough digits that parsing the text recovers the exact double,
// so a matrix forwarded as CSV between processes round-trips bit-exactly.
void append_exact_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

}  // namespace

std::string write_aggregates_csv_text(const CounterMatrix& data) {
  std::string out = "workload";
  for (const auto& counter : data.counter_names()) {
    out += ',';
    out += csv_escape(counter);
  }
  out += '\n';
  for (std::size_t w = 0; w < data.num_workloads(); ++w) {
    out += csv_escape(data.workload_names()[w]);
    for (std::size_t c = 0; c < data.num_counters(); ++c) {
      out += ',';
      append_exact_double(out, data.value(w, c));
    }
    out += '\n';
  }
  return out;
}

std::string write_series_csv_text(const CounterMatrix& data) {
  if (!data.has_series()) {
    throw std::logic_error("write_series_csv_text: matrix carries no series");
  }
  std::string out = "workload,counter,sample,value\n";
  for (std::size_t w = 0; w < data.num_workloads(); ++w) {
    for (std::size_t c = 0; c < data.num_counters(); ++c) {
      const auto& series = data.series(w, c);
      for (std::size_t s = 0; s < series.size(); ++s) {
        out += csv_escape(data.workload_names()[w]);
        out += ',';
        out += csv_escape(data.counter_names()[c]);
        out += ',';
        out += std::to_string(s);
        out += ',';
        append_exact_double(out, series[s]);
        out += '\n';
      }
    }
  }
  return out;
}

namespace {

/// Shared body of the file and in-memory aggregate readers. `origin` is
/// the label used in error messages (the path, for files).
CounterMatrix read_aggregates_stream(const std::string& suite_name,
                                     std::istream& in,
                                     const std::string& origin) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("'" + origin + "': empty file");
  }
  // Byte offset of the line just read; getline consumed line.size() bytes
  // plus one '\n' (the final line may lack one, but then no further line
  // follows and the over-count is never observed).
  std::uint64_t offset = 0;
  std::uint64_t consumed = line.size() + 1;
  strip_utf8_bom(line);
  auto header = split_csv_line(line, 1, 0);
  if (header.size() < 2 || header[0] != "workload") {
    throw std::runtime_error(
        "'" + origin + "': header must be 'workload,<counter>,...'");
  }
  std::vector<std::string> counters(header.begin() + 1, header.end());

  std::vector<std::string> workloads;
  std::set<std::string> seen;
  la::Matrix values;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    offset = consumed;
    consumed += line.size() + 1;
    if (line.empty()) continue;
    const auto cells = split_csv_line(line, line_no, offset);
    if (cells.size() != counters.size() + 1) {
      throw std::runtime_error(
          csv_location(line_no, offset) + ": expected " +
          std::to_string(counters.size() + 1) + " cells, got " +
          std::to_string(cells.size()));
    }
    if (!seen.insert(cells[0]).second) {
      throw std::runtime_error(csv_location(line_no, offset) +
                               ": duplicate workload '" + cells[0] + "'");
    }
    workloads.push_back(cells[0]);
    std::vector<double> row(counters.size());
    for (std::size_t c = 0; c < counters.size(); ++c) {
      row[c] = parse_double(cells[c + 1], line_no, offset);
    }
    values.append_row(row);
  }
  if (workloads.empty()) {
    throw std::runtime_error("'" + origin + "': no data rows");
  }
  return CounterMatrix(suite_name, std::move(workloads), std::move(counters),
                       std::move(values));
}

/// Shared body of the file and in-memory series readers: parses the long
/// format from `in` and returns `bare` with the series attached.
CounterMatrix attach_series_stream(const CounterMatrix& bare,
                                   std::istream& in,
                                   const std::string& origin) {
  std::vector<std::vector<std::vector<double>>> series(
      bare.num_workloads(),
      std::vector<std::vector<double>>(bare.num_counters()));

  std::string line;
  bool have_header = static_cast<bool>(std::getline(in, line));
  std::uint64_t offset = 0;
  std::uint64_t consumed = have_header ? line.size() + 1 : 0;
  if (have_header) strip_utf8_bom(line);
  if (!have_header ||
      split_csv_line(line, 1, 0) !=
          std::vector<std::string>{"workload", "counter", "sample", "value"}) {
    throw std::runtime_error(
        "'" + origin +
        "': header must be 'workload,counter,sample,value'");
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    offset = consumed;
    consumed += line.size() + 1;
    if (line.empty()) continue;
    const auto cells = split_csv_line(line, line_no, offset);
    if (cells.size() != 4) {
      throw std::runtime_error(csv_location(line_no, offset) +
                               ": expected 4 cells");
    }
    const std::size_t w = bare.workload_index(cells[0]);
    const std::size_t c = bare.counter_index(cells[1]);
    const std::size_t s = parse_index(cells[2], line_no, offset);
    auto& target = series[w][c];
    if (s != target.size()) {
      throw std::runtime_error(csv_location(line_no, offset) +
                               ": sample indices must be dense from 0 "
                               "(expected " +
                               std::to_string(target.size()) + ", got " +
                               std::to_string(s) + ")");
    }
    target.push_back(parse_double(cells[3], line_no, offset));
  }
  for (std::size_t w = 0; w < bare.num_workloads(); ++w) {
    for (std::size_t c = 0; c < bare.num_counters(); ++c) {
      if (series[w][c].empty()) {
        throw std::runtime_error(
            "'" + origin + "': no samples for workload '" +
            bare.workload_names()[w] + "' counter '" +
            bare.counter_names()[c] + "'");
      }
    }
  }
  return CounterMatrix(bare.suite_name(), bare.workload_names(),
                       bare.counter_names(), bare.values(),
                       std::move(series));
}

}  // namespace

CounterMatrix read_aggregates_csv(const std::string& suite_name,
                                  const std::string& path) {
  // Size probe failures (missing file, permission) fall through to the
  // slurp path, whose open_for_read reports the canonical error.
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (!ec && size >= kStreamedReadThresholdBytes) {
    return read_aggregates_csv_streamed(suite_name, path);
  }
  return read_aggregates_csv_slurp(suite_name, path);
}

CounterMatrix read_aggregates_csv_slurp(const std::string& suite_name,
                                        const std::string& path) {
  auto in = open_for_read(path);
  return read_aggregates_stream(suite_name, in, path);
}

CounterMatrix read_aggregates_csv_streamed(const std::string& suite_name,
                                           const std::string& path,
                                           const StreamedReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open '" + path + "' for reading");
  }
  ingest::IngestOptions ingest_options;
  ingest_options.chunk_bytes = options.chunk_bytes;
  ingest_options.io_thread = options.io_thread;
  ingest::CsvStream stream(in, ingest_options);

  if (!stream.next_row()) {
    throw std::runtime_error("'" + path + "': empty file");
  }
  const auto& header = stream.cells();
  if (header.size() < 2 || header[0] != "workload") {
    throw std::runtime_error(
        "'" + path + "': header must be 'workload,<counter>,...'");
  }
  std::vector<std::string> counters(header.begin() + 1, header.end());

  std::vector<std::string> workloads;
  la::Matrix values;
  std::vector<double> row(counters.size());
  // Capacities are estimated from the file size and the first data row's
  // width so a multi-million-row file pays no rehash/regrow copies, and
  // duplicate detection goes through the flat open-addressed NameIndex
  // instead of a node-per-row std::set (see ingest/name_index.hpp).
  std::error_code size_ec;
  const std::uint64_t file_bytes = std::filesystem::file_size(path, size_ec);
  ingest::NameIndex seen;
  bool reserved = false;
  while (stream.next_row()) {
    const auto& cells = stream.cells();
    if (cells.size() != counters.size() + 1) {
      throw std::runtime_error(
          csv_location(stream.line_no(), stream.byte_offset()) +
          ": expected " + std::to_string(counters.size() + 1) +
          " cells, got " + std::to_string(cells.size()));
    }
    if (!reserved) {
      reserved = true;
      if (!size_ec && file_bytes > 0) {
        std::size_t line_bytes = cells.size();  // separators + newline
        for (const auto& cell : cells) line_bytes += cell.size();
        const std::size_t estimate =
            static_cast<std::size_t>(file_bytes) /
                std::max<std::size_t>(line_bytes, 1) +
            16;
        workloads.reserve(estimate);
        values.reserve(estimate, counters.size());
        seen = ingest::NameIndex(estimate);
      }
    }
    if (seen.insert(cells[0], workloads.size(), workloads) !=
        ingest::NameIndex::npos) {
      throw std::runtime_error(
          csv_location(stream.line_no(), stream.byte_offset()) +
          ": duplicate workload '" + std::string(cells[0]) + "'");
    }
    workloads.emplace_back(cells[0]);
    for (std::size_t c = 0; c < counters.size(); ++c) {
      row[c] = parse_double_fast(cells[c + 1], stream.line_no(),
                                 stream.byte_offset());
    }
    values.append_row(row);
  }
  if (workloads.empty()) {
    throw std::runtime_error("'" + path + "': no data rows");
  }
  return CounterMatrix(suite_name, std::move(workloads), std::move(counters),
                       std::move(values));
}

CounterMatrix read_aggregates_csv_text(const std::string& suite_name,
                                       const std::string& csv_text) {
  std::istringstream in(csv_text);
  return read_aggregates_stream(suite_name, in, "<inline csv>");
}

CounterMatrix read_with_series_csv(const std::string& suite_name,
                                   const std::string& aggregates_path,
                                   const std::string& series_path) {
  const CounterMatrix bare = read_aggregates_csv(suite_name, aggregates_path);
  auto in = open_for_read(series_path);
  return attach_series_stream(bare, in, series_path);
}

CounterMatrix read_with_series_csv_text(const std::string& suite_name,
                                        const std::string& aggregates_text,
                                        const std::string& series_text) {
  const CounterMatrix bare =
      read_aggregates_csv_text(suite_name, aggregates_text);
  std::istringstream in(series_text);
  return attach_series_stream(bare, in, "<inline series csv>");
}

CounterMatrix append_workloads_csv_text(const CounterMatrix& base,
                                        const std::string& aggregates_text,
                                        const std::string& series_text) {
  std::istringstream in(aggregates_text);
  ingest::IngestOptions options;
  options.chunk_bytes = 1 << 16;  // wire payloads are small; no IO thread
  options.io_thread = false;
  ingest::CsvStream stream(in, options);

  if (!stream.next_row()) {
    throw std::runtime_error("'<delta aggregates csv>': empty file");
  }
  const auto& header = stream.cells();
  if (header.size() != base.num_counters() + 1 || header.empty() ||
      header[0] != "workload") {
    throw std::runtime_error(
        "'<delta aggregates csv>': header must name 'workload' and exactly "
        "the base suite's counters");
  }
  // With the size pinned above, a successful map means the header is a
  // permutation of the base counters (ColumnMap throws on missing or
  // duplicated columns).
  const ingest::ColumnMap map(header, base.counter_names());

  std::vector<std::string> workloads = base.workload_names();
  std::set<std::string> seen(workloads.begin(), workloads.end());
  la::Matrix values = base.values();
  la::Matrix added_values;
  std::vector<std::string> added;
  std::vector<std::string_view> rearranged;
  std::vector<double> row(base.num_counters());
  while (stream.next_row()) {
    const auto& cells = stream.cells();
    if (cells.size() != base.num_counters() + 1) {
      throw std::runtime_error(
          csv_location(stream.line_no(), stream.byte_offset()) +
          ": expected " + std::to_string(base.num_counters() + 1) +
          " cells, got " + std::to_string(cells.size()));
    }
    std::string name(cells[0]);
    if (!seen.insert(name).second) {
      throw std::runtime_error(
          csv_location(stream.line_no(), stream.byte_offset()) +
          ": duplicate workload '" + name + "'");
    }
    map.rearrange(cells, rearranged);
    for (std::size_t c = 0; c < row.size(); ++c) {
      row[c] =
          parse_double(rearranged[c], stream.line_no(), stream.byte_offset());
    }
    workloads.push_back(name);
    added.push_back(std::move(name));
    values.append_row(row);
    added_values.append_row(row);
  }
  if (added.empty()) {
    throw std::runtime_error("'<delta aggregates csv>': no data rows");
  }

  if (!base.has_series()) {
    if (!series_text.empty()) {
      throw std::logic_error(
          "append_workloads_csv_text: base has no series but series_text "
          "was supplied");
    }
    return CounterMatrix(base.suite_name(), std::move(workloads),
                         base.counter_names(), std::move(values));
  }

  // The series payload must cover exactly the new workloads; validating it
  // against a bare matrix of only those rows reuses the reader's dense-index
  // and full-coverage checks verbatim (a row naming a pre-existing workload
  // fails its workload lookup).
  const CounterMatrix delta(base.suite_name(), added, base.counter_names(),
                            std::move(added_values));
  std::istringstream series_in(series_text);
  const CounterMatrix with_series =
      attach_series_stream(delta, series_in, "<delta series csv>");

  std::vector<std::vector<std::vector<double>>> series;
  series.reserve(workloads.size());
  for (std::size_t w = 0; w < base.num_workloads(); ++w) {
    std::vector<std::vector<double>> row_series(base.num_counters());
    for (std::size_t c = 0; c < base.num_counters(); ++c) {
      row_series[c] = base.series(w, c);
    }
    series.push_back(std::move(row_series));
  }
  for (std::size_t w = 0; w < added.size(); ++w) {
    std::vector<std::vector<double>> row_series(base.num_counters());
    for (std::size_t c = 0; c < base.num_counters(); ++c) {
      row_series[c] = with_series.series(w, c);
    }
    series.push_back(std::move(row_series));
  }
  return CounterMatrix(base.suite_name(), std::move(workloads),
                       base.counter_names(), std::move(values),
                       std::move(series));
}

CounterMatrix append_samples_csv_text(
    const CounterMatrix& base, const std::string& series_text,
    std::vector<std::size_t>* touched_workloads) {
  if (!base.has_series()) {
    throw std::logic_error(
        "append_samples_csv_text: base matrix carries no series");
  }
  std::vector<std::vector<std::vector<double>>> series(
      base.num_workloads(),
      std::vector<std::vector<double>>(base.num_counters()));
  for (std::size_t w = 0; w < base.num_workloads(); ++w) {
    for (std::size_t c = 0; c < base.num_counters(); ++c) {
      series[w][c] = base.series(w, c);
    }
  }

  std::istringstream in(series_text);
  ingest::IngestOptions options;
  options.chunk_bytes = 1 << 16;
  options.io_thread = false;
  ingest::CsvStream stream(in, options);
  const bool header_ok = stream.next_row() && stream.cells().size() == 4 &&
                         stream.cells()[0] == "workload" &&
                         stream.cells()[1] == "counter" &&
                         stream.cells()[2] == "sample" &&
                         stream.cells()[3] == "value";
  if (!header_ok) {
    throw std::runtime_error(
        "'<delta series csv>': header must be 'workload,counter,sample,value'");
  }
  std::size_t appended = 0;
  std::set<std::size_t> touched;
  while (stream.next_row()) {
    const auto& cells = stream.cells();
    if (cells.size() != 4) {
      throw std::runtime_error(
          csv_location(stream.line_no(), stream.byte_offset()) +
          ": expected 4 cells");
    }
    const std::size_t w = base.workload_index(std::string(cells[0]));
    touched.insert(w);
    const std::size_t c = base.counter_index(std::string(cells[1]));
    const std::size_t s =
        parse_index(cells[2], stream.line_no(), stream.byte_offset());
    auto& target = series[w][c];
    if (s != target.size()) {
      throw std::runtime_error(
          csv_location(stream.line_no(), stream.byte_offset()) +
          ": sample indices must be dense from 0 (expected " +
          std::to_string(target.size()) + ", got " + std::to_string(s) + ")");
    }
    target.push_back(
        parse_double(cells[3], stream.line_no(), stream.byte_offset()));
    ++appended;
  }
  if (appended == 0) {
    throw std::runtime_error("'<delta series csv>': no data rows");
  }
  if (touched_workloads != nullptr) {
    touched_workloads->assign(touched.begin(), touched.end());
  }
  return CounterMatrix(base.suite_name(), base.workload_names(),
                       base.counter_names(), base.values(), std::move(series));
}

std::vector<PerfStatRecord> parse_perf_stat(const std::string& text) {
  std::vector<PerfStatRecord> records;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  std::uint64_t offset = 0;
  std::uint64_t consumed = 0;
  while (std::getline(in, line)) {
    ++line_no;
    offset = consumed;
    consumed += line.size() + 1;
    if (line.empty() || line[0] == '#') continue;
    const auto cells = split_csv_line(line, line_no, offset);
    if (cells.size() < 3) {
      throw std::runtime_error("perf-stat line " + std::to_string(line_no) +
                               ": expected at least 3 fields");
    }
    PerfStatRecord record;
    record.event = cells[2];
    if (record.event.empty()) {
      throw std::runtime_error("perf-stat line " + std::to_string(line_no) +
                               ": empty event name");
    }
    if (cells[0] == "<not counted>" || cells[0] == "<not supported>") {
      record.counted = false;
    } else {
      record.value = parse_double(cells[0], line_no, offset);
    }
    if (cells.size() >= 5 && !cells[4].empty()) {
      record.pct_running = parse_double(cells[4], line_no, offset);
    }
    records.push_back(std::move(record));
  }
  return records;
}

CounterMatrix counter_matrix_from_perf_stat(
    const std::string& suite_name,
    const std::vector<std::pair<std::string, std::string>>&
        workload_outputs) {
  if (workload_outputs.empty()) {
    throw std::invalid_argument(
        "counter_matrix_from_perf_stat: no workloads");
  }

  std::vector<std::string> counters;
  std::vector<std::string> workloads;
  la::Matrix values;
  for (const auto& [workload, text] : workload_outputs) {
    const auto records = parse_perf_stat(text);
    if (records.empty()) {
      throw std::runtime_error("perf-stat output for workload '" + workload +
                               "' contains no events");
    }
    std::vector<std::string> events;
    std::vector<double> row;
    for (const auto& record : records) {
      if (!record.counted) {
        throw std::runtime_error(
            "workload '" + workload + "': event '" + record.event +
            "' was not counted — request fewer events per run");
      }
      events.push_back(record.event);
      row.push_back(record.value);
    }
    if (counters.empty()) {
      counters = events;
    } else if (events != counters) {
      throw std::runtime_error("workload '" + workload +
                               "': event list differs from the first "
                               "workload's");
    }
    workloads.push_back(workload);
    values.append_row(row);
  }
  return CounterMatrix(suite_name, std::move(workloads), std::move(counters),
                       std::move(values));
}

PerfIntervalData parse_perf_stat_intervals(const std::string& text) {
  PerfIntervalData data;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  std::uint64_t offset = 0;
  std::uint64_t consumed = 0;
  std::size_t cursor = 0;  // position within the current interval block
  double current_time = -1.0;

  while (std::getline(in, line)) {
    ++line_no;
    offset = consumed;
    consumed += line.size() + 1;
    if (line.empty() || line[0] == '#') continue;
    const auto cells = split_csv_line(line, line_no, offset);
    if (cells.size() < 4) {
      throw std::runtime_error("perf-interval line " +
                               std::to_string(line_no) +
                               ": expected at least 4 fields");
    }
    const double timestamp = parse_double(cells[0], line_no, offset);
    const std::string& event = cells[3];
    if (event.empty()) {
      throw std::runtime_error("perf-interval line " +
                               std::to_string(line_no) + ": empty event");
    }
    double value = 0.0;
    if (cells[1] != "<not counted>" && cells[1] != "<not supported>") {
      value = parse_double(cells[1], line_no, offset);
    }

    if (timestamp != current_time) {
      // New interval block begins.
      if (current_time >= 0.0 && cursor != data.events.size()) {
        throw std::runtime_error(
            "perf-interval line " + std::to_string(line_no) +
            ": previous interval is missing events");
      }
      current_time = timestamp;
      cursor = 0;
    }

    if (cursor >= data.events.size()) {
      // New event names may only appear while the first interval block is
      // being discovered (every series still has at most one sample).
      if (!data.series.empty() && data.series[0].size() > 1) {
        throw std::runtime_error("perf-interval line " +
                                 std::to_string(line_no) +
                                 ": unexpected extra event '" + event + "'");
      }
      data.events.push_back(event);
      data.series.emplace_back();
      data.totals.push_back(0.0);
    } else if (data.events[cursor] != event) {
      throw std::runtime_error("perf-interval line " +
                               std::to_string(line_no) + ": expected event '" +
                               data.events[cursor] + "', got '" + event +
                               "'");
    }
    data.series[cursor].push_back(value);
    data.totals[cursor] += value;
    ++cursor;
  }
  if (data.events.empty()) {
    throw std::runtime_error("perf-interval input contains no events");
  }
  if (cursor != data.events.size()) {
    throw std::runtime_error("perf-interval input: last interval truncated");
  }
  return data;
}

CounterMatrix counter_matrix_from_perf_intervals(
    const std::string& suite_name,
    const std::vector<std::pair<std::string, std::string>>&
        workload_outputs) {
  if (workload_outputs.empty()) {
    throw std::invalid_argument(
        "counter_matrix_from_perf_intervals: no workloads");
  }
  std::vector<std::string> counters;
  std::vector<std::string> workloads;
  la::Matrix values;
  std::vector<std::vector<std::vector<double>>> series;
  for (const auto& [workload, text] : workload_outputs) {
    const PerfIntervalData data = parse_perf_stat_intervals(text);
    if (counters.empty()) {
      counters = data.events;
    } else if (data.events != counters) {
      throw std::runtime_error("workload '" + workload +
                               "': event list differs from the first "
                               "workload's");
    }
    workloads.push_back(workload);
    values.append_row(data.totals);
    series.push_back(data.series);
  }
  return CounterMatrix(suite_name, std::move(workloads), std::move(counters),
                       std::move(values), std::move(series));
}

}  // namespace perspector::core
