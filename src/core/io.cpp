#include "core/io.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace perspector::core {

namespace {

// Minimal RFC-4180-ish CSV line splitter (handles quoted cells with
// embedded commas and doubled quotes).
std::vector<std::string> split_csv_line(const std::string& line,
                                        std::size_t line_no) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += ch;
      }
    } else if (ch == '"') {
      quoted = true;
    } else if (ch == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (ch != '\r') {
      cell += ch;
    }
  }
  if (quoted) {
    throw std::runtime_error("CSV line " + std::to_string(line_no) +
                             ": unterminated quote");
  }
  cells.push_back(std::move(cell));
  return cells;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

double parse_double(const std::string& cell, std::size_t line_no) {
  double value = 0.0;
  const char* first = cell.data();
  const char* last = cell.data() + cell.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) {
    throw std::runtime_error("CSV line " + std::to_string(line_no) +
                             ": expected a number, got '" + cell + "'");
  }
  // from_chars happily parses "nan"/"inf"/"infinity"; every score is
  // undefined over non-finite counters, so reject them at the boundary
  // instead of letting them poison normalization silently.
  if (!std::isfinite(value)) {
    throw std::runtime_error("CSV line " + std::to_string(line_no) +
                             ": non-finite value '" + cell +
                             "' is not allowed");
  }
  return value;
}

/// Drops a leading UTF-8 byte-order mark (EF BB BF) from the first line —
/// spreadsheet exports and Windows producers routinely prepend one, and it
/// would otherwise corrupt the first header cell.
void strip_utf8_bom(std::string& line) {
  if (line.size() >= 3 && line[0] == '\xEF' && line[1] == '\xBB' &&
      line[2] == '\xBF') {
    line.erase(0, 3);
  }
}

std::size_t parse_index(const std::string& cell, std::size_t line_no) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
    throw std::runtime_error("CSV line " + std::to_string(line_no) +
                             ": expected an index, got '" + cell + "'");
  }
  return value;
}

std::ofstream open_for_write(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  return out;
}

std::ifstream open_for_read(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open '" + path + "' for reading");
  }
  return in;
}

}  // namespace

void write_aggregates_csv(const CounterMatrix& data, const std::string& path) {
  auto out = open_for_write(path);
  out << "workload";
  for (const auto& counter : data.counter_names()) {
    out << ',' << csv_escape(counter);
  }
  out << '\n';
  for (std::size_t w = 0; w < data.num_workloads(); ++w) {
    out << csv_escape(data.workload_names()[w]);
    for (std::size_t c = 0; c < data.num_counters(); ++c) {
      out << ',' << data.value(w, c);
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("write failed for '" + path + "'");
}

void write_series_csv(const CounterMatrix& data, const std::string& path) {
  if (!data.has_series()) {
    throw std::logic_error("write_series_csv: matrix carries no series");
  }
  auto out = open_for_write(path);
  out << "workload,counter,sample,value\n";
  for (std::size_t w = 0; w < data.num_workloads(); ++w) {
    for (std::size_t c = 0; c < data.num_counters(); ++c) {
      const auto& series = data.series(w, c);
      for (std::size_t s = 0; s < series.size(); ++s) {
        out << csv_escape(data.workload_names()[w]) << ','
            << csv_escape(data.counter_names()[c]) << ',' << s << ','
            << series[s] << '\n';
      }
    }
  }
  if (!out) throw std::runtime_error("write failed for '" + path + "'");
}

namespace {

// %.17g: enough digits that parsing the text recovers the exact double,
// so a matrix forwarded as CSV between processes round-trips bit-exactly.
void append_exact_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

}  // namespace

std::string write_aggregates_csv_text(const CounterMatrix& data) {
  std::string out = "workload";
  for (const auto& counter : data.counter_names()) {
    out += ',';
    out += csv_escape(counter);
  }
  out += '\n';
  for (std::size_t w = 0; w < data.num_workloads(); ++w) {
    out += csv_escape(data.workload_names()[w]);
    for (std::size_t c = 0; c < data.num_counters(); ++c) {
      out += ',';
      append_exact_double(out, data.value(w, c));
    }
    out += '\n';
  }
  return out;
}

std::string write_series_csv_text(const CounterMatrix& data) {
  if (!data.has_series()) {
    throw std::logic_error("write_series_csv_text: matrix carries no series");
  }
  std::string out = "workload,counter,sample,value\n";
  for (std::size_t w = 0; w < data.num_workloads(); ++w) {
    for (std::size_t c = 0; c < data.num_counters(); ++c) {
      const auto& series = data.series(w, c);
      for (std::size_t s = 0; s < series.size(); ++s) {
        out += csv_escape(data.workload_names()[w]);
        out += ',';
        out += csv_escape(data.counter_names()[c]);
        out += ',';
        out += std::to_string(s);
        out += ',';
        append_exact_double(out, series[s]);
        out += '\n';
      }
    }
  }
  return out;
}

namespace {

/// Shared body of the file and in-memory aggregate readers. `origin` is
/// the label used in error messages (the path, for files).
CounterMatrix read_aggregates_stream(const std::string& suite_name,
                                     std::istream& in,
                                     const std::string& origin) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("'" + origin + "': empty file");
  }
  strip_utf8_bom(line);
  auto header = split_csv_line(line, 1);
  if (header.size() < 2 || header[0] != "workload") {
    throw std::runtime_error(
        "'" + origin + "': header must be 'workload,<counter>,...'");
  }
  std::vector<std::string> counters(header.begin() + 1, header.end());

  std::vector<std::string> workloads;
  std::set<std::string> seen;
  la::Matrix values;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto cells = split_csv_line(line, line_no);
    if (cells.size() != counters.size() + 1) {
      throw std::runtime_error(
          "CSV line " + std::to_string(line_no) + ": expected " +
          std::to_string(counters.size() + 1) + " cells, got " +
          std::to_string(cells.size()));
    }
    if (!seen.insert(cells[0]).second) {
      throw std::runtime_error("CSV line " + std::to_string(line_no) +
                               ": duplicate workload '" + cells[0] + "'");
    }
    workloads.push_back(cells[0]);
    std::vector<double> row(counters.size());
    for (std::size_t c = 0; c < counters.size(); ++c) {
      row[c] = parse_double(cells[c + 1], line_no);
    }
    values.append_row(row);
  }
  if (workloads.empty()) {
    throw std::runtime_error("'" + origin + "': no data rows");
  }
  return CounterMatrix(suite_name, std::move(workloads), std::move(counters),
                       std::move(values));
}

/// Shared body of the file and in-memory series readers: parses the long
/// format from `in` and returns `bare` with the series attached.
CounterMatrix attach_series_stream(const CounterMatrix& bare,
                                   std::istream& in,
                                   const std::string& origin) {
  std::vector<std::vector<std::vector<double>>> series(
      bare.num_workloads(),
      std::vector<std::vector<double>>(bare.num_counters()));

  std::string line;
  bool have_header = static_cast<bool>(std::getline(in, line));
  if (have_header) strip_utf8_bom(line);
  if (!have_header ||
      split_csv_line(line, 1) !=
          std::vector<std::string>{"workload", "counter", "sample", "value"}) {
    throw std::runtime_error(
        "'" + origin +
        "': header must be 'workload,counter,sample,value'");
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto cells = split_csv_line(line, line_no);
    if (cells.size() != 4) {
      throw std::runtime_error("CSV line " + std::to_string(line_no) +
                               ": expected 4 cells");
    }
    const std::size_t w = bare.workload_index(cells[0]);
    const std::size_t c = bare.counter_index(cells[1]);
    const std::size_t s = parse_index(cells[2], line_no);
    auto& target = series[w][c];
    if (s != target.size()) {
      throw std::runtime_error("CSV line " + std::to_string(line_no) +
                               ": sample indices must be dense from 0 "
                               "(expected " +
                               std::to_string(target.size()) + ", got " +
                               std::to_string(s) + ")");
    }
    target.push_back(parse_double(cells[3], line_no));
  }
  for (std::size_t w = 0; w < bare.num_workloads(); ++w) {
    for (std::size_t c = 0; c < bare.num_counters(); ++c) {
      if (series[w][c].empty()) {
        throw std::runtime_error(
            "'" + origin + "': no samples for workload '" +
            bare.workload_names()[w] + "' counter '" +
            bare.counter_names()[c] + "'");
      }
    }
  }
  return CounterMatrix(bare.suite_name(), bare.workload_names(),
                       bare.counter_names(), bare.values(),
                       std::move(series));
}

}  // namespace

CounterMatrix read_aggregates_csv(const std::string& suite_name,
                                  const std::string& path) {
  auto in = open_for_read(path);
  return read_aggregates_stream(suite_name, in, path);
}

CounterMatrix read_aggregates_csv_text(const std::string& suite_name,
                                       const std::string& csv_text) {
  std::istringstream in(csv_text);
  return read_aggregates_stream(suite_name, in, "<inline csv>");
}

CounterMatrix read_with_series_csv(const std::string& suite_name,
                                   const std::string& aggregates_path,
                                   const std::string& series_path) {
  const CounterMatrix bare = read_aggregates_csv(suite_name, aggregates_path);
  auto in = open_for_read(series_path);
  return attach_series_stream(bare, in, series_path);
}

CounterMatrix read_with_series_csv_text(const std::string& suite_name,
                                        const std::string& aggregates_text,
                                        const std::string& series_text) {
  const CounterMatrix bare =
      read_aggregates_csv_text(suite_name, aggregates_text);
  std::istringstream in(series_text);
  return attach_series_stream(bare, in, "<inline series csv>");
}

std::vector<PerfStatRecord> parse_perf_stat(const std::string& text) {
  std::vector<PerfStatRecord> records;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto cells = split_csv_line(line, line_no);
    if (cells.size() < 3) {
      throw std::runtime_error("perf-stat line " + std::to_string(line_no) +
                               ": expected at least 3 fields");
    }
    PerfStatRecord record;
    record.event = cells[2];
    if (record.event.empty()) {
      throw std::runtime_error("perf-stat line " + std::to_string(line_no) +
                               ": empty event name");
    }
    if (cells[0] == "<not counted>" || cells[0] == "<not supported>") {
      record.counted = false;
    } else {
      record.value = parse_double(cells[0], line_no);
    }
    if (cells.size() >= 5 && !cells[4].empty()) {
      record.pct_running = parse_double(cells[4], line_no);
    }
    records.push_back(std::move(record));
  }
  return records;
}

CounterMatrix counter_matrix_from_perf_stat(
    const std::string& suite_name,
    const std::vector<std::pair<std::string, std::string>>&
        workload_outputs) {
  if (workload_outputs.empty()) {
    throw std::invalid_argument(
        "counter_matrix_from_perf_stat: no workloads");
  }

  std::vector<std::string> counters;
  std::vector<std::string> workloads;
  la::Matrix values;
  for (const auto& [workload, text] : workload_outputs) {
    const auto records = parse_perf_stat(text);
    if (records.empty()) {
      throw std::runtime_error("perf-stat output for workload '" + workload +
                               "' contains no events");
    }
    std::vector<std::string> events;
    std::vector<double> row;
    for (const auto& record : records) {
      if (!record.counted) {
        throw std::runtime_error(
            "workload '" + workload + "': event '" + record.event +
            "' was not counted — request fewer events per run");
      }
      events.push_back(record.event);
      row.push_back(record.value);
    }
    if (counters.empty()) {
      counters = events;
    } else if (events != counters) {
      throw std::runtime_error("workload '" + workload +
                               "': event list differs from the first "
                               "workload's");
    }
    workloads.push_back(workload);
    values.append_row(row);
  }
  return CounterMatrix(suite_name, std::move(workloads), std::move(counters),
                       std::move(values));
}

PerfIntervalData parse_perf_stat_intervals(const std::string& text) {
  PerfIntervalData data;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  std::size_t cursor = 0;  // position within the current interval block
  double current_time = -1.0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto cells = split_csv_line(line, line_no);
    if (cells.size() < 4) {
      throw std::runtime_error("perf-interval line " +
                               std::to_string(line_no) +
                               ": expected at least 4 fields");
    }
    const double timestamp = parse_double(cells[0], line_no);
    const std::string& event = cells[3];
    if (event.empty()) {
      throw std::runtime_error("perf-interval line " +
                               std::to_string(line_no) + ": empty event");
    }
    double value = 0.0;
    if (cells[1] != "<not counted>" && cells[1] != "<not supported>") {
      value = parse_double(cells[1], line_no);
    }

    if (timestamp != current_time) {
      // New interval block begins.
      if (current_time >= 0.0 && cursor != data.events.size()) {
        throw std::runtime_error(
            "perf-interval line " + std::to_string(line_no) +
            ": previous interval is missing events");
      }
      current_time = timestamp;
      cursor = 0;
    }

    if (cursor >= data.events.size()) {
      // New event names may only appear while the first interval block is
      // being discovered (every series still has at most one sample).
      if (!data.series.empty() && data.series[0].size() > 1) {
        throw std::runtime_error("perf-interval line " +
                                 std::to_string(line_no) +
                                 ": unexpected extra event '" + event + "'");
      }
      data.events.push_back(event);
      data.series.emplace_back();
      data.totals.push_back(0.0);
    } else if (data.events[cursor] != event) {
      throw std::runtime_error("perf-interval line " +
                               std::to_string(line_no) + ": expected event '" +
                               data.events[cursor] + "', got '" + event +
                               "'");
    }
    data.series[cursor].push_back(value);
    data.totals[cursor] += value;
    ++cursor;
  }
  if (data.events.empty()) {
    throw std::runtime_error("perf-interval input contains no events");
  }
  if (cursor != data.events.size()) {
    throw std::runtime_error("perf-interval input: last interval truncated");
  }
  return data;
}

CounterMatrix counter_matrix_from_perf_intervals(
    const std::string& suite_name,
    const std::vector<std::pair<std::string, std::string>>&
        workload_outputs) {
  if (workload_outputs.empty()) {
    throw std::invalid_argument(
        "counter_matrix_from_perf_intervals: no workloads");
  }
  std::vector<std::string> counters;
  std::vector<std::string> workloads;
  la::Matrix values;
  std::vector<std::vector<std::vector<double>>> series;
  for (const auto& [workload, text] : workload_outputs) {
    const PerfIntervalData data = parse_perf_stat_intervals(text);
    if (counters.empty()) {
      counters = data.events;
    } else if (data.events != counters) {
      throw std::runtime_error("workload '" + workload +
                               "': event list differs from the first "
                               "workload's");
    }
    workloads.push_back(workload);
    values.append_row(data.totals);
    series.push_back(data.series);
  }
  return CounterMatrix(suite_name, std::move(workloads), std::move(counters),
                       std::move(values), std::move(series));
}

}  // namespace perspector::core
