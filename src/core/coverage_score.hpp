// CoverageScore (paper Section III-C, Eq. 9-13).
//
// Coverage metric: after joint min-max normalization (Eq. 9-10, see
// joint_normalize.hpp), run PCA retaining 98% variance (Eq. 11-12) and
// report the mean variance of the transformed components (Eq. 13). Higher
// is better — a suite that exercises more of the parameter space carries
// more variance.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace perspector::core {

/// Knobs for the CoverageScore computation.
struct CoverageScoreOptions {
  double variance_target = 0.98;  // PCA retention threshold
};

/// Result with PCA detail.
struct CoverageScoreResult {
  double score = 0.0;                       // Eq. 13
  std::size_t components = 0;               // d — retained components
  std::vector<double> component_variances;  // per retained component
  std::vector<double> explained_ratio;      // per retained component
};

/// Computes the CoverageScore on an already (jointly) normalized matrix
/// (rows = workloads). Requires at least 2 rows.
CoverageScoreResult coverage_score(const la::Matrix& normalized,
                                   const CoverageScoreOptions& options = {});

}  // namespace perspector::core
