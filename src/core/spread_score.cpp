#include "core/spread_score.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "stats/ks_test.hpp"
#include "stats/rng.hpp"

namespace perspector::core {

SpreadScoreResult spread_score(const la::Matrix& normalized,
                               const SpreadScoreOptions& options) {
  if (normalized.empty()) {
    throw std::invalid_argument("spread_score: empty matrix");
  }
  static obs::Counter& ks_tests = obs::counter("spread.ks_tests");
  ks_tests.add(normalized.rows());
  stats::Rng rng(options.seed);
  SpreadScoreResult result;
  double total = 0.0;
  for (std::size_t w = 0; w < normalized.rows(); ++w) {
    const auto row = normalized.row_copy(w);
    double d = 0.0;
    if (options.mode == SpreadScoreOptions::Mode::Analytic) {
      d = stats::ks_test_uniform(row).statistic;
    } else {
      std::vector<double> uniform(row.size());
      for (double& u : uniform) u = rng.uniform();
      d = stats::ks_test_two_sample(row, uniform).statistic;
    }
    result.per_workload.push_back(d);
    total += d;
  }
  result.score = total / static_cast<double>(normalized.rows());  // Eq. 14
  return result;
}

}  // namespace perspector::core
