#include "core/scoring_workspace.hpp"

#include <stdexcept>
#include <utility>

#include "dtw/dtw.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"

namespace perspector::core {

namespace {

bool same_options(const TrendScoreOptions& a, const TrendScoreOptions& b) {
  return a.grid_points == b.grid_points && a.normalization == b.normalization &&
         a.dtw_band_fraction == b.dtw_band_fraction;
}

}  // namespace

void ScoringWorkspace::prime_trend(const CounterMatrix& suite,
                                   const TrendScoreOptions& options) {
  std::lock_guard<std::mutex> lock(prime_mutex_);
  if (trend_primed_.load(std::memory_order_relaxed)) return;

  static obs::Counter& primes = obs::counter("cache.primes");
  const std::size_t n = suite.num_workloads();
  const std::size_t m = suite.num_counters();

  // Disqualifying shapes leave the cache primed-but-unusable; lookups then
  // miss and callers take the direct path (including its error behaviour).
  bool usable = suite.has_series() && n >= 2 && m >= 1;
  if (usable) {
    for (std::size_t w = 0; w < n; ++w) {
      if (!row_by_name_.emplace(suite.workload_names()[w], w).second) {
        usable = false;  // duplicate names make the mapping ambiguous
        row_by_name_.clear();
        break;
      }
    }
  }

  if (usable) {
    obs::Span span("cache.prime_trend");
    // Kernel-latency histogram companion to the span: always on, so the
    // stats op reports prime cost even when the tracer is disabled.
    static obs::Histogram& prime_latency =
        obs::histogram("cache.prime.latency");
    obs::LatencyTimer timer(prime_latency);
    counters_ = suite.counter_names();
    options_ = options;

    // Normalized trends: one per (workload, counter), each an independent
    // slot — deterministic for any thread count.
    trends_.resize(n * m);
    par::parallel_for(n * m, [&](std::size_t t) {
      trends_[t] =
          dtw::normalize_trend(suite.series(t / m, t % m), options.grid_points,
                               options.normalization);
    });

    // Full pairwise DTW matrices, flattened over (counter, pair) so the
    // whole prime is one parallel region; task t writes only its own (i,j)
    // and (j,i) of its own counter matrix.
    dtw::DtwOptions dtw_options;
    dtw_options.band_fraction = options.dtw_band_fraction;
    const std::size_t pairs = n * (n - 1) / 2;
    std::vector<std::pair<std::size_t, std::size_t>> index;
    index.reserve(pairs);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) index.emplace_back(i, j);
    }
    per_counter_.assign(m, la::Matrix(n, n, 0.0));
    par::parallel_for(m * pairs, [&](std::size_t t) {
      const std::size_t c = t / pairs;
      const auto [i, j] = index[t % pairs];
      const double dist =
          dtw::dtw_distance(trends_[i * m + c], trends_[j * m + c],
                            dtw_options)
              .distance;
      per_counter_[c](i, j) = dist;
      per_counter_[c](j, i) = dist;
    });
    primes.increment();
  }

  trend_usable_ = usable;
  trend_primed_.store(true, std::memory_order_release);
}

bool ScoringWorkspace::upsert_row(const CounterMatrix& suite, std::size_t row,
                                  const TrendScoreOptions& options) {
  std::lock_guard<std::mutex> lock(prime_mutex_);
  if (!trend_primed_.load(std::memory_order_relaxed) || !trend_usable_) {
    return false;
  }
  if (!same_options(options, options_)) return false;
  if (!suite.has_series()) return false;
  if (suite.counter_names() != counters_) return false;
  if (row >= suite.num_workloads()) return false;

  static obs::Counter& upserts = obs::counter("cache.delta_upserts");
  obs::Span span("cache.delta_upsert");

  const std::size_t m = counters_.size();
  const std::size_t r = trends_.size() / m;  // the new primed row's index

  // Fresh normalized trends for the (re)computed workload.
  std::vector<std::vector<double>> fresh(m);
  par::parallel_for(m, [&](std::size_t c) {
    fresh[c] = dtw::normalize_trend(suite.series(row, c), options_.grid_points,
                                    options_.normalization);
  });

  // Live rows in name-sorted (deterministic) order; rows superseded or
  // dropped earlier stay allocated but get no new distances.
  std::vector<std::size_t> live;
  live.reserve(row_by_name_.size());
  for (const auto& [name, index] : row_by_name_) live.push_back(index);

  // Grow each per-counter matrix by one row/column (diagonal stays 0).
  for (la::Matrix& d : per_counter_) {
    la::Matrix grown(r + 1, r + 1, 0.0);
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < r; ++j) grown(i, j) = d(i, j);
    }
    d = std::move(grown);
  }

  // One DTW strip — the new row against every live row, all counters — as
  // a single parallel region; task t writes only its own (j, r)/(r, j).
  dtw::DtwOptions dtw_options;
  dtw_options.band_fraction = options_.dtw_band_fraction;
  const std::size_t k = live.size();
  par::parallel_for(m * k, [&](std::size_t t) {
    const std::size_t c = t / k;
    const std::size_t j = live[t % k];
    const double dist =
        dtw::dtw_distance(trends_[j * m + c], fresh[c], dtw_options).distance;
    per_counter_[c](j, r) = dist;
    per_counter_[c](r, j) = dist;
  });

  trends_.reserve(trends_.size() + m);
  for (std::size_t c = 0; c < m; ++c) trends_.push_back(std::move(fresh[c]));
  row_by_name_.insert_or_assign(suite.workload_names()[row], r);
  upserts.increment();
  return true;
}

bool ScoringWorkspace::remove_row(const std::string& workload) {
  std::lock_guard<std::mutex> lock(prime_mutex_);
  if (!trend_primed_.load(std::memory_order_relaxed) || !trend_usable_) {
    return false;
  }
  static obs::Counter& drops = obs::counter("cache.delta_drops");
  if (row_by_name_.erase(workload) == 0) return false;
  drops.increment();
  return true;
}

bool ScoringWorkspace::map_rows(const CounterMatrix& suite,
                                const TrendScoreOptions& options,
                                std::vector<std::size_t>& rows) const {
  if (!trend_primed() || !trend_usable_) return false;
  if (!same_options(options, options_)) return false;
  if (!suite.has_series()) return false;
  if (suite.counter_names() != counters_) return false;

  const std::size_t s = suite.num_workloads();
  const std::size_t m = counters_.size();
  rows.resize(s);
  for (std::size_t w = 0; w < s; ++w) {
    const auto it = row_by_name_.find(suite.workload_names()[w]);
    if (it == row_by_name_.end()) return false;
    rows[w] = it->second;
  }

  // The decisive check: every candidate row must normalize to exactly the
  // trend the primed row normalized to — then the direct DTW evaluation
  // would reproduce the cached doubles bit for bit. Each (w, c) slot is
  // verified independently; mismatch flags land in index-owned slots.
  std::vector<char> ok(s * m, 0);
  par::parallel_for(s * m, [&](std::size_t t) {
    const std::size_t w = t / m;
    const std::size_t c = t % m;
    ok[t] = dtw::normalize_trend(suite.series(w, c), options_.grid_points,
                                 options_.normalization) ==
            trends_[rows[w] * m + c];
  });
  for (char flag : ok) {
    if (!flag) return false;
  }
  return true;
}

TrendScoreResult ScoringWorkspace::trend_score_from_cache(
    std::span<const std::size_t> rows) const {
  if (!trend_primed() || !trend_usable_) {
    throw std::logic_error("trend_score_from_cache: cache not primed");
  }
  if (rows.size() < 2) {
    throw std::invalid_argument("trend_score: need at least 2 workloads");
  }
  obs::Span span("trend_score.cached");
  const std::size_t m = counters_.size();
  const std::size_t s = rows.size();
  const std::size_t pairs = s * (s - 1) / 2;

  TrendScoreResult result;
  result.per_event.resize(m);
  // Mirrors trend_score: counters are independent tasks; within one, pair
  // distances accumulate in (i asc, j asc) order — the exact association
  // of the direct Eq. 7 sum, now over cached doubles.
  par::parallel_for(m, [&](std::size_t c) {
    const la::Matrix& d = per_counter_[c];
    double total = 0.0;
    for (std::size_t i = 0; i < s; ++i) {
      for (std::size_t j = i + 1; j < s; ++j) {
        total += d(rows[i], rows[j]);
      }
    }
    result.per_event[c] = total / static_cast<double>(pairs);  // Eq. 7
  });
  double total = 0.0;
  for (double t_score : result.per_event) total += t_score;
  result.score = total / static_cast<double>(m);  // Eq. 8
  return result;
}

}  // namespace perspector::core
