// Benchmark-suite subset generation (paper Section IV-C).
//
// The LHS method: draw k Latin-hypercube points in the normalized
// counter space and pick the nearest distinct workload for each — the
// subset inherits the space-filling property of the sample. The paper
// reduces SPEC'17 from 43 to 8 workloads this way with a ~6.53% score
// deviation. Baselines: uniform-random selection and the prior-work
// recipe (PCA + hierarchical clustering, one pick per cluster).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/counter_matrix.hpp"
#include "core/perspector.hpp"

namespace perspector::core {

/// Subset selection strategy.
enum class SubsetMethod : std::uint8_t {
  Lhs,               // paper's proposal (Section IV-C)
  Random,            // uniform random baseline
  HierarchicalPrior  // prior-work: PCA + hierarchical clusters, 1 pick each
};

const char* to_string(SubsetMethod method);

/// Knobs for subset generation.
struct SubsetOptions {
  std::size_t target_size = 8;
  SubsetMethod method = SubsetMethod::Lhs;
  std::uint64_t seed = 1234;
  /// LHS refinement: number of maximin candidates.
  std::size_t lhs_candidates = 16;
  /// HierarchicalPrior: PCA variance retained before clustering.
  double prior_pca_variance = 0.98;
  /// When true, the ClusterScore deviation compares full suite and subset
  /// over the *common* k range (k = 2..target_size-1) instead of each
  /// suite's own Eq. 6 sweep (2..n-1). Off by default — an ablation knob
  /// for studying the metric's n-sensitivity.
  bool cluster_common_k_range = false;
};

/// A generated subset plus its fidelity evaluation.
struct SubsetResult {
  std::vector<std::size_t> indices;   // rows of the source CounterMatrix
  std::vector<std::string> names;     // corresponding workload names
  SuiteScores full_scores;            // the complete suite
  SuiteScores subset_scores;          // the selected subset
  /// Mean relative deviation over the four scores, in percent:
  /// 100/4 * sum |subset - full| / |full| (scores at 0 are skipped).
  double mean_deviation_pct = 0.0;
  /// Per-score relative deviations (cluster, trend, coverage, spread), %.
  std::vector<double> per_score_deviation_pct;
};

/// Selects the subset workload indices only (no scoring).
std::vector<std::size_t> select_subset(const CounterMatrix& suite,
                                       const SubsetOptions& options);

/// Full pipeline: select a subset, score both full suite and subset with
/// `scoring`, and report the deviation. Requires target_size >= 4 (the
/// ClusterScore needs it) and strictly fewer than the suite size.
SubsetResult generate_subset(const CounterMatrix& suite,
                             const SubsetOptions& options,
                             const PerspectorOptions& scoring = {});

}  // namespace perspector::core
