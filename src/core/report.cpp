#include "core/report.hpp"

#include "core/derived.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace perspector::core {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: headers must not be empty");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("Table::write_csv: cannot open '" + path + "'");
  }
  file << to_csv();
  if (!file) {
    throw std::runtime_error("Table::write_csv: write failed for '" + path +
                             "'");
  }
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table scores_table(const std::vector<SuiteScores>& scores) {
  Table table({"suite", "cluster(v)", "trend(^)", "coverage(^)",
               "spread(v)", "pca-dims"});
  for (const auto& s : scores) {
    table.add_row({s.suite, format_double(s.cluster), format_double(s.trend, 2),
                   format_double(s.coverage), format_double(s.spread),
                   std::to_string(s.coverage_detail.components)});
  }
  return table;
}

std::string score_legend() {
  return "(v) lower is better, (^) higher is better";
}

Table workload_rates_table(const CounterMatrix& suite) {
  Table table({"workload", "llc-miss/kc", "tlb-miss/kc", "fault/kc",
               "br-miss%", "llc-miss%", "stall%", "mem/cyc"});
  for (const auto& m : derive_metrics(suite)) {
    table.add_row({m.workload, format_double(m.llc_miss_pkc, 2),
                   format_double(m.dtlb_miss_pkc, 2),
                   format_double(m.page_fault_pkc, 3),
                   format_double(100.0 * m.branch_miss_ratio, 1),
                   format_double(100.0 * m.llc_miss_ratio, 1),
                   format_double(100.0 * m.stall_fraction, 1),
                   format_double(m.memory_intensity, 3)});
  }
  return table;
}

std::string suite_report(const CounterMatrix& suite,
                         const SuiteScores& scores) {
  std::ostringstream os;
  os << "=== Perspector report: " << suite.suite_name() << " ===\n"
     << suite.num_workloads() << " workloads x " << suite.num_counters()
     << " counters" << (suite.has_series() ? " (with time series)" : "")
     << "\n\n";

  os << scores_table({scores}).to_text() << score_legend() << "\n\n";

  os << "per-k silhouettes (k=2.." << suite.num_workloads() - 1 << "):";
  for (double s : scores.cluster_detail.per_k) {
    os << " " << format_double(s, 3);
  }
  os << "\n";
  os << "coverage: " << scores.coverage_detail.components
     << " PCA components at 98% variance; component variances:";
  for (double v : scores.coverage_detail.component_variances) {
    os << " " << format_double(v, 4);
  }
  os << "\n\n";

  os << "--- per-workload rates ---\n"
     << workload_rates_table(suite).to_text() << "\n";

  if (!scores.trend_detail.per_event.empty()) {
    os << "--- trend contribution per counter (TScore_z) ---\n";
    Table trend({"counter", "tscore"});
    for (std::size_t c = 0; c < scores.trend_detail.per_event.size(); ++c) {
      trend.add_row({suite.counter_names()[c],
                     format_double(scores.trend_detail.per_event[c], 1)});
    }
    os << trend.to_text();
  }
  return os.str();
}

Table phase_timing_table(const std::vector<obs::PhaseStat>& summary,
                         double wall_us) {
  double reference = wall_us;
  if (reference <= 0.0) {
    for (const auto& stat : summary) {
      reference = std::max(reference, stat.total_us);
    }
  }
  Table table({"phase", "calls", "total ms", "mean ms", "min ms", "max ms",
               "% wall"});
  for (const auto& stat : summary) {
    const double mean_us =
        stat.count ? stat.total_us / static_cast<double>(stat.count) : 0.0;
    const double pct =
        reference > 0.0 ? 100.0 * stat.total_us / reference : 0.0;
    table.add_row({stat.name, std::to_string(stat.count),
                   format_double(stat.total_us / 1000.0, 3),
                   format_double(mean_us / 1000.0, 3),
                   format_double(stat.min_us / 1000.0, 3),
                   format_double(stat.max_us / 1000.0, 3),
                   format_double(pct, 1)});
  }
  return table;
}

Table counters_table(const std::vector<obs::CounterSnapshot>& counters) {
  Table table({"metric", "value"});
  for (const auto& snapshot : counters) {
    table.add_row({snapshot.name, std::to_string(snapshot.value)});
  }
  return table;
}

Table distributions_table(
    const std::vector<obs::DistributionSnapshot>& distributions) {
  Table table({"metric", "count", "min", "mean", "max"});
  for (const auto& snapshot : distributions) {
    table.add_row({snapshot.name, std::to_string(snapshot.stats.count),
                   format_double(snapshot.stats.min, 4),
                   format_double(snapshot.stats.mean(), 4),
                   format_double(snapshot.stats.max, 4)});
  }
  return table;
}

Table histograms_table(
    const std::vector<obs::HistogramSnapshot>& histograms) {
  Table table({"metric", "count", "mean", "p50", "p90", "p99", "p99.9"});
  for (const auto& snapshot : histograms) {
    table.add_row({snapshot.name, std::to_string(snapshot.stats.count),
                   format_double(snapshot.stats.mean(), 4),
                   format_double(snapshot.stats.p50, 4),
                   format_double(snapshot.stats.p90, 4),
                   format_double(snapshot.stats.p99, 4),
                   format_double(snapshot.stats.p999, 4)});
  }
  return table;
}

}  // namespace perspector::core
