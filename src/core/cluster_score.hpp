// ClusterScore (paper Section III-A, Eq. 1-6).
//
// Diversity metric: normalize the counter matrix, K-means it for every
// k in [2, n-1], take the suite-level silhouette of each clustering (Eq. 5)
// and average (Eq. 6). Lower is better — a diverse suite resists clustering.
#pragma once

#include <cstdint>
#include <vector>

#include "core/counter_matrix.hpp"

namespace perspector::core {

/// Knobs for the ClusterScore computation.
struct ClusterScoreOptions {
  std::size_t kmeans_restarts = 8;
  std::size_t kmeans_max_iters = 100;
  std::uint64_t seed = 42;
};

/// Result with per-k detail (used by Fig. 4-style diagnostics).
struct ClusterScoreResult {
  double score = 0.0;          // Eq. 6 — mean over k of S(W)_k
  std::vector<double> per_k;   // S(W)_k for k = 2 .. n-1, in order
  std::size_t k_min = 2;
};

/// Computes the ClusterScore on a suite's counter data. The matrix is
/// min-max normalized per counter (suite-local) before clustering.
/// Requires at least 4 workloads (so k ranges over at least 2..3);
/// throws std::invalid_argument otherwise.
ClusterScoreResult cluster_score(const CounterMatrix& suite,
                                 const ClusterScoreOptions& options = {});

/// Same computation from an already-normalized raw matrix.
ClusterScoreResult cluster_score_from_normalized(
    const la::Matrix& normalized, const ClusterScoreOptions& options = {});

}  // namespace perspector::core
