// Derived per-workload metrics from the Table IV counters.
//
// Raw counts are machine- and runtime-scale dependent; architects think in
// *rates*: misses per kilo-cycle, misprediction ratios, stall fractions.
// These feed the detailed suite report and are handy features for custom
// analyses on top of a CounterMatrix.
#pragma once

#include <string>
#include <vector>

#include "core/counter_matrix.hpp"

namespace perspector::core {

/// Rates derived from one workload's counters. All "per-kilo-cycle" (pkc)
/// rates are counts per 1000 cpu-cycles; ratios are in [0, 1]. A rate whose
/// denominator is zero reports 0.
struct DerivedMetrics {
  std::string workload;
  double llc_miss_pkc = 0.0;        // (LLC load+store misses) * 1000 / cycles
  double llc_access_pkc = 0.0;      // (LLC loads+stores) * 1000 / cycles
  double dtlb_miss_pkc = 0.0;       // (dTLB load+store misses) * 1000 / cycles
  double page_fault_pkc = 0.0;      // page-faults * 1000 / cycles
  double branch_mpki_cycles = 0.0;  // branch-misses * 1000 / cycles
  double branch_miss_ratio = 0.0;   // branch-misses / branch-instructions
  double llc_miss_ratio = 0.0;      // LLC misses / LLC accesses
  double dtlb_miss_ratio = 0.0;     // dTLB misses / dTLB accesses
  double stall_fraction = 0.0;      // stalls_mem_any / cycles
  double walk_fraction = 0.0;       // walk_pending / cycles
  double memory_intensity = 0.0;    // (dTLB loads+stores) / cycles
};

/// Computes derived metrics for every workload of a suite. The suite must
/// carry the Table IV counters by name; throws std::invalid_argument when
/// any required counter is missing.
std::vector<DerivedMetrics> derive_metrics(const CounterMatrix& suite);

/// Derived metrics for a single workload row.
DerivedMetrics derive_metrics_for(const CounterMatrix& suite,
                                  std::size_t workload);

}  // namespace perspector::core
