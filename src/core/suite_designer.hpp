// Suite design: assembling a good benchmark suite from a candidate pool.
//
// Paper contribution 4: Perspector's metrics can be used "to systematically
// and rigorously create a suite of workloads". This module makes that
// concrete: given a pool of measured candidate workloads (e.g. the union of
// several existing suites), it selects a fixed-size subset that maximizes a
// weighted combination of the four scores — low clustering, high trend,
// high coverage, low spread — via an LHS-seeded greedy swap search.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/counter_matrix.hpp"
#include "core/perspector.hpp"

namespace perspector::core {

/// Search configuration and objective weights.
struct DesignerOptions {
  std::size_t target_size = 10;

  // Objective: utility = - cluster_weight * cluster
  //                      + trend_weight * trend / trend_scale
  //                      + coverage_weight * coverage
  //                      - spread_weight * spread.
  // `trend_scale` brings the TrendScore (typically O(1000)) onto the same
  // O(1) footing as the other three.
  double cluster_weight = 1.0;
  double trend_weight = 1.0;
  double trend_scale = 1000.0;
  double coverage_weight = 1.0;
  double spread_weight = 1.0;

  /// Maximum improving swaps before the search stops.
  std::size_t max_iterations = 50;
  /// Trend scoring per candidate evaluation is the expensive part; off by
  /// default (the trend term then contributes 0 to the utility).
  bool include_trend = false;
  /// Scoring configuration used for every evaluation.
  PerspectorOptions scoring;
  std::uint64_t seed = 2024;
};

/// Search outcome.
struct DesignerResult {
  std::vector<std::size_t> indices;  // chosen rows of the pool
  std::vector<std::string> names;
  SuiteScores scores;                // scores of the designed suite
  double utility = 0.0;
  std::size_t swaps = 0;             // improving swaps performed
  std::vector<double> utility_history;  // utility after seed + each swap
};

/// The scalar objective (exposed for tests and custom searches).
double design_utility(const SuiteScores& scores,
                      const DesignerOptions& options);

/// Runs the designer on a candidate pool. Requires
/// 4 <= target_size < pool.num_workloads().
DesignerResult design_suite(const CounterMatrix& pool,
                            const DesignerOptions& options = {});

}  // namespace perspector::core
