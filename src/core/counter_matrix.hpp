// CounterMatrix: the central data object of Perspector — one suite's PMU
// measurements. Rows are workloads, columns are counters (note the paper
// writes the transpose, m x n; the math is unchanged). Optionally carries
// the per-workload, per-counter sampled time series needed by the
// TrendScore.
#pragma once

#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "sim/machine_config.hpp"
#include "sim/simulator.hpp"
#include "sim/workload.hpp"

namespace perspector::core {

/// One benchmark suite's collected counter data.
class CounterMatrix {
 public:
  CounterMatrix() = default;

  /// Direct construction; series may be empty (aggregate-only data).
  /// `series[w][c]` is workload w's sampled series for counter c.
  /// Throws std::invalid_argument on any shape inconsistency.
  CounterMatrix(std::string suite_name, std::vector<std::string> workloads,
                std::vector<std::string> counters, la::Matrix values,
                std::vector<std::vector<std::vector<double>>> series = {});

  /// Builds from simulator output (counter order = Table IV enum order).
  static CounterMatrix from_sim_results(
      std::string suite_name, const std::vector<sim::SimResult>& results);

  /// Pools several suites into one candidate set (e.g. for suite design).
  /// All parts must share identical counter names; workload names are
  /// prefixed "<suite>/" to stay unique. Series are kept only if *every*
  /// part carries them.
  static CounterMatrix merge(std::string name,
                             const std::vector<CounterMatrix>& parts);

  const std::string& suite_name() const noexcept { return suite_name_; }
  const std::vector<std::string>& workload_names() const noexcept {
    return workloads_;
  }
  const std::vector<std::string>& counter_names() const noexcept {
    return counters_;
  }
  const la::Matrix& values() const noexcept { return values_; }
  bool has_series() const noexcept { return !series_.empty(); }

  std::size_t num_workloads() const noexcept { return workloads_.size(); }
  std::size_t num_counters() const noexcept { return counters_.size(); }

  /// Aggregate value of counter `c` for workload `w`.
  double value(std::size_t w, std::size_t c) const { return values_.at(w, c); }

  /// Sampled series of counter `c` for workload `w`; throws when series were
  /// not collected.
  const std::vector<double>& series(std::size_t w, std::size_t c) const;

  /// Index of a counter by name; throws std::invalid_argument when missing.
  std::size_t counter_index(const std::string& name) const;
  /// Index of a workload by name; throws std::invalid_argument when missing.
  std::size_t workload_index(const std::string& name) const;

  /// New CounterMatrix restricted to the given counter columns (in order).
  CounterMatrix select_counters(const std::vector<std::size_t>& indices) const;

  /// New CounterMatrix restricted to the given workload rows (in order).
  CounterMatrix select_workloads(const std::vector<std::size_t>& indices) const;

 private:
  std::string suite_name_;
  std::vector<std::string> workloads_;
  std::vector<std::string> counters_;
  la::Matrix values_;  // num_workloads x num_counters
  std::vector<std::vector<std::vector<double>>> series_;  // [w][c][sample]
};

/// Runs the simulator over a whole suite and packages the result.
CounterMatrix collect_counters(const sim::SuiteSpec& suite,
                               const sim::MachineConfig& machine,
                               const sim::SimOptions& options = {});

}  // namespace perspector::core
