// Score-stability analysis.
//
// A Perspector verdict on a suite is only actionable if the score would not
// change much had the suite contained slightly different workloads. The
// bootstrap resamples workloads with replacement and reports the spread of
// each score; the jackknife identifies the workloads each score is most
// sensitive to (useful when deciding what a suite is missing).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/counter_matrix.hpp"
#include "core/perspector.hpp"

namespace perspector::core {

/// Distribution summary of one score under resampling.
struct ScoreDistribution {
  double point = 0.0;    // score of the original suite
  double mean = 0.0;     // bootstrap mean
  double stddev = 0.0;   // bootstrap standard deviation
  double p05 = 0.0;      // 5th percentile
  double p95 = 0.0;      // 95th percentile
};

/// Bootstrap result for all four scores.
struct StabilityReport {
  ScoreDistribution cluster;
  ScoreDistribution trend;
  ScoreDistribution coverage;
  ScoreDistribution spread;
  std::size_t resamples = 0;
};

/// Knobs for the bootstrap.
struct StabilityOptions {
  std::size_t resamples = 100;
  std::uint64_t seed = 31337;
  /// Trend scoring is the expensive part (pairwise DTW); disable it to get
  /// cluster/coverage/spread stability quickly.
  bool include_trend = true;
  /// Scoring configuration applied to every resample.
  PerspectorOptions scoring;
};

/// Bootstrap over workloads (resampled with replacement; duplicate rows are
/// perturbation-free copies). Requires at least 4 workloads.
StabilityReport bootstrap_scores(const CounterMatrix& suite,
                                 const StabilityOptions& options = {});

/// The workload indices resample `resample` draws from a suite of `n`
/// workloads under `seed`. A pure function of its arguments: every
/// resample owns an RNG stream derived from (seed, resample), so the picks
/// are independent of the order — or the thread — the resamples run on.
/// Exposed so tests can assert that execution order cannot change output.
std::vector<std::size_t> bootstrap_picks(std::uint64_t seed,
                                         std::size_t resample, std::size_t n);

/// Jackknife influence: for each workload, the change in each score when
/// that workload is removed. `influence[w]` is (d_cluster, d_trend,
/// d_coverage, d_spread) for workload w, signed as (leave-one-out - full).
struct JackknifeReport {
  std::vector<std::string> workloads;
  std::vector<std::array<double, 4>> influence;

  /// Index of the workload with the largest absolute influence on the
  /// given score (0 = cluster, 1 = trend, 2 = coverage, 3 = spread).
  std::size_t most_influential(std::size_t score_index) const;
};

JackknifeReport jackknife_scores(const CounterMatrix& suite,
                                 const PerspectorOptions& scoring = {},
                                 bool include_trend = true);

}  // namespace perspector::core
