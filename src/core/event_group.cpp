#include "core/event_group.hpp"

#include <algorithm>
#include <stdexcept>

namespace perspector::core {

EventGroup::EventGroup(std::string name, std::vector<std::string> counters)
    : name_(std::move(name)), counters_(std::move(counters)) {}

EventGroup EventGroup::all() { return EventGroup("all", {}); }

EventGroup EventGroup::llc() {
  return EventGroup("llc", {"LLC-loads", "LLC-stores", "LLC-load-misses",
                            "LLC-store-misses"});
}

EventGroup EventGroup::tlb() {
  return EventGroup("tlb",
                    {"dTLB-loads", "dTLB-stores", "dTLB-load-misses",
                     "dTLB-store-misses", "dtlb_misses.walk_pending"});
}

EventGroup EventGroup::branch() {
  return EventGroup("branch", {"branch-instructions", "branch-misses"});
}

EventGroup EventGroup::custom(std::string name,
                              std::vector<std::string> counters) {
  if (counters.empty()) {
    throw std::invalid_argument(
        "EventGroup::custom: counter list must not be empty "
        "(use EventGroup::all() for the identity filter)");
  }
  return EventGroup(std::move(name), std::move(counters));
}

bool EventGroup::contains(const std::string& counter_name) const {
  if (is_all()) return true;
  return std::find(counters_.begin(), counters_.end(), counter_name) !=
         counters_.end();
}

std::vector<std::size_t> EventGroup::indices_in(
    const std::vector<std::string>& available) const {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < available.size(); ++i) {
    if (contains(available[i])) indices.push_back(i);
  }
  if (indices.empty()) {
    throw std::invalid_argument("EventGroup '" + name_ +
                                "': no matching counters available");
  }
  return indices;
}

}  // namespace perspector::core
