#include "core/counter_matrix.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"
#include "sim/pmu.hpp"

namespace perspector::core {

CounterMatrix::CounterMatrix(
    std::string suite_name, std::vector<std::string> workloads,
    std::vector<std::string> counters, la::Matrix values,
    std::vector<std::vector<std::vector<double>>> series)
    : suite_name_(std::move(suite_name)),
      workloads_(std::move(workloads)),
      counters_(std::move(counters)),
      values_(std::move(values)),
      series_(std::move(series)) {
  if (values_.rows() != workloads_.size() ||
      values_.cols() != counters_.size()) {
    throw std::invalid_argument(
        "CounterMatrix: matrix shape does not match name lists");
  }
  if (!series_.empty()) {
    if (series_.size() != workloads_.size()) {
      throw std::invalid_argument(
          "CounterMatrix: series workload count mismatch");
    }
    for (const auto& per_workload : series_) {
      if (per_workload.size() != counters_.size()) {
        throw std::invalid_argument(
            "CounterMatrix: series counter count mismatch");
      }
    }
  }
}

CounterMatrix CounterMatrix::from_sim_results(
    std::string suite_name, const std::vector<sim::SimResult>& results) {
  if (results.empty()) {
    throw std::invalid_argument("CounterMatrix::from_sim_results: no results");
  }
  std::vector<std::string> workloads;
  la::Matrix values;
  std::vector<std::vector<std::vector<double>>> series;
  const bool with_series = !results.front().series.empty();

  for (const auto& r : results) {
    workloads.push_back(r.workload);
    values.append_row(r.totals.as_vector());
    if (with_series) {
      if (r.series.empty()) {
        throw std::invalid_argument(
            "CounterMatrix::from_sim_results: inconsistent series presence");
      }
      series.push_back(r.series);
    }
  }
  return CounterMatrix(std::move(suite_name), std::move(workloads),
                       sim::pmu_event_names(), std::move(values),
                       std::move(series));
}

CounterMatrix CounterMatrix::merge(std::string name,
                                   const std::vector<CounterMatrix>& parts) {
  if (parts.empty()) {
    throw std::invalid_argument("CounterMatrix::merge: no parts");
  }
  const auto& counters = parts.front().counter_names();
  bool with_series = true;
  for (const auto& part : parts) {
    if (part.counter_names() != counters) {
      throw std::invalid_argument(
          "CounterMatrix::merge: counter name lists differ");
    }
    with_series = with_series && part.has_series();
  }

  std::vector<std::string> workloads;
  la::Matrix values;
  std::vector<std::vector<std::vector<double>>> series;
  for (const auto& part : parts) {
    for (std::size_t w = 0; w < part.num_workloads(); ++w) {
      workloads.push_back(part.suite_name() + "/" +
                          part.workload_names()[w]);
      values.append_row(part.values().row(w));
      if (with_series) {
        std::vector<std::vector<double>> per_counter;
        per_counter.reserve(part.num_counters());
        for (std::size_t c = 0; c < part.num_counters(); ++c) {
          per_counter.push_back(part.series(w, c));
        }
        series.push_back(std::move(per_counter));
      }
    }
  }
  return CounterMatrix(std::move(name), std::move(workloads), counters,
                       std::move(values), std::move(series));
}

const std::vector<double>& CounterMatrix::series(std::size_t w,
                                                 std::size_t c) const {
  if (series_.empty()) {
    throw std::logic_error("CounterMatrix::series: series not collected");
  }
  if (w >= series_.size() || c >= series_[w].size()) {
    throw std::out_of_range("CounterMatrix::series");
  }
  return series_[w][c];
}

std::size_t CounterMatrix::counter_index(const std::string& name) const {
  const auto it = std::find(counters_.begin(), counters_.end(), name);
  if (it == counters_.end()) {
    throw std::invalid_argument("CounterMatrix: unknown counter '" + name +
                                "'");
  }
  return static_cast<std::size_t>(it - counters_.begin());
}

std::size_t CounterMatrix::workload_index(const std::string& name) const {
  const auto it = std::find(workloads_.begin(), workloads_.end(), name);
  if (it == workloads_.end()) {
    throw std::invalid_argument("CounterMatrix: unknown workload '" + name +
                                "'");
  }
  return static_cast<std::size_t>(it - workloads_.begin());
}

CounterMatrix CounterMatrix::select_counters(
    const std::vector<std::size_t>& indices) const {
  std::vector<std::string> counters;
  for (std::size_t c : indices) {
    if (c >= counters_.size()) {
      throw std::out_of_range("CounterMatrix::select_counters");
    }
    counters.push_back(counters_[c]);
  }
  la::Matrix values = values_.select_cols(indices);
  std::vector<std::vector<std::vector<double>>> series;
  if (!series_.empty()) {
    series.reserve(series_.size());
    for (const auto& per_workload : series_) {
      std::vector<std::vector<double>> kept;
      kept.reserve(indices.size());
      for (std::size_t c : indices) kept.push_back(per_workload[c]);
      series.push_back(std::move(kept));
    }
  }
  return CounterMatrix(suite_name_, workloads_, std::move(counters),
                       std::move(values), std::move(series));
}

CounterMatrix CounterMatrix::select_workloads(
    const std::vector<std::size_t>& indices) const {
  std::vector<std::string> workloads;
  for (std::size_t w : indices) {
    if (w >= workloads_.size()) {
      throw std::out_of_range("CounterMatrix::select_workloads");
    }
    workloads.push_back(workloads_[w]);
  }
  la::Matrix values = values_.select_rows(indices);
  std::vector<std::vector<std::vector<double>>> series;
  if (!series_.empty()) {
    series.reserve(indices.size());
    for (std::size_t w : indices) series.push_back(series_[w]);
  }
  return CounterMatrix(suite_name_, std::move(workloads), counters_,
                       std::move(values), std::move(series));
}

CounterMatrix collect_counters(const sim::SuiteSpec& suite,
                               const sim::MachineConfig& machine,
                               const sim::SimOptions& options) {
  obs::Span span("collect_counters/" + suite.name);
  return CounterMatrix::from_sim_results(
      suite.name, sim::simulate_suite(suite, machine, options));
}

}  // namespace perspector::core
