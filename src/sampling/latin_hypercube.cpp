#include "sampling/latin_hypercube.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "par/parallel.hpp"

namespace perspector::sampling {

la::Matrix latin_hypercube(std::size_t samples, std::size_t dims,
                           const LhsOptions& options) {
  if (samples == 0 || dims == 0) {
    throw std::invalid_argument("latin_hypercube: samples and dims must be > 0");
  }
  stats::Rng rng(options.seed);
  la::Matrix points(samples, dims);
  const double width = 1.0 / static_cast<double>(samples);
  for (std::size_t d = 0; d < dims; ++d) {
    const auto strata = rng.permutation(samples);
    for (std::size_t s = 0; s < samples; ++s) {
      const double offset = options.centered ? 0.5 : rng.uniform(0.0, 1.0);
      points(s, d) = (static_cast<double>(strata[s]) + offset) * width;
    }
  }
  return points;
}

la::Matrix uniform_samples(std::size_t samples, std::size_t dims,
                           std::uint64_t seed) {
  if (samples == 0 || dims == 0) {
    throw std::invalid_argument("uniform_samples: samples and dims must be > 0");
  }
  stats::Rng rng(seed);
  la::Matrix points(samples, dims);
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t d = 0; d < dims; ++d) points(s, d) = rng.uniform();
  }
  return points;
}

bool is_latin(const la::Matrix& points) {
  const std::size_t n = points.rows();
  if (n == 0) return false;
  for (std::size_t d = 0; d < points.cols(); ++d) {
    std::vector<bool> seen(n, false);
    for (std::size_t s = 0; s < n; ++s) {
      const double v = points(s, d);
      if (v < 0.0 || v > 1.0) return false;
      auto stratum =
          static_cast<std::size_t>(v * static_cast<double>(n));
      stratum = std::min(stratum, n - 1);
      if (seen[stratum]) return false;
      seen[stratum] = true;
    }
  }
  return true;
}

double min_pairwise_distance(const la::Matrix& points) {
  if (points.rows() < 2) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < points.rows(); ++i) {
    for (std::size_t j = i + 1; j < points.rows(); ++j) {
      best = std::min(best,
                      la::euclidean_distance(points.row(i), points.row(j)));
    }
  }
  return best;
}

la::Matrix maximin_latin_hypercube(std::size_t samples, std::size_t dims,
                                   std::size_t candidates,
                                   const LhsOptions& options) {
  if (candidates == 0) {
    throw std::invalid_argument("maximin_latin_hypercube: candidates must be > 0");
  }
  // Candidate seeds are drawn serially in candidate order (the exact
  // sequence the serial loop used); generation and maximin scoring then run
  // in parallel into index-owned slots. The winner scan keeps the first
  // strict maximum in candidate order, matching the serial `>` update.
  stats::Rng seeder(options.seed);
  std::vector<std::uint64_t> seeds(candidates);
  for (auto& seed : seeds) seed = seeder.engine()();

  std::vector<la::Matrix> cands(candidates);
  std::vector<double> scores(candidates);
  par::parallel_for(candidates, [&](std::size_t c) {
    LhsOptions opt = options;
    opt.seed = seeds[c];
    cands[c] = latin_hypercube(samples, dims, opt);
    scores[c] = min_pairwise_distance(cands[c]);
  });

  la::Matrix best;
  double best_score = -1.0;
  for (std::size_t c = 0; c < candidates; ++c) {
    if (scores[c] > best_score) {
      best_score = scores[c];
      best = std::move(cands[c]);
    }
  }
  return best;
}

std::uint64_t candidate_seed(std::uint64_t seed, std::uint64_t index) {
  // splitmix64 finalizer over the combined words: cheap, stateless, and
  // avalanching, so adjacent candidate indices land on unrelated seeds.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

la::Matrix latin_hypercube_candidate(std::size_t samples, std::size_t dims,
                                     std::uint64_t seed, std::uint64_t index,
                                     bool centered) {
  LhsOptions options;
  options.centered = centered;
  options.seed = candidate_seed(seed, index);
  return latin_hypercube(samples, dims, options);
}

}  // namespace perspector::sampling
