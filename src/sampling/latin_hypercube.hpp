// Latin hypercube sampling (paper Section IV-C).
//
// LHS divides each of the M dimensions into k equal-probability strata and
// draws exactly one sample per stratum per dimension, giving far better
// space-filling than plain uniform sampling at the same budget.
#pragma once

#include <cstdint>

#include "la/matrix.hpp"
#include "stats/rng.hpp"

namespace perspector::sampling {

/// Options for LHS generation.
struct LhsOptions {
  /// When true, samples sit at stratum centers; otherwise they are jittered
  /// uniformly within each stratum.
  bool centered = false;
  std::uint64_t seed = 7;
};

/// Draws `samples` Latin-hypercube points in the unit cube [0,1]^dims.
/// Returns a samples x dims matrix. Throws std::invalid_argument when either
/// count is zero.
la::Matrix latin_hypercube(std::size_t samples, std::size_t dims,
                           const LhsOptions& options = {});

/// Plain uniform random sampling in [0,1]^dims (baseline for comparison).
la::Matrix uniform_samples(std::size_t samples, std::size_t dims,
                           std::uint64_t seed = 7);

/// Verifies the Latin property: in every dimension, each of the `samples`
/// strata contains exactly one point. Exposed for tests and benches.
bool is_latin(const la::Matrix& points);

/// Minimum pairwise Euclidean distance among sample points — the standard
/// space-filling quality criterion (larger is better).
double min_pairwise_distance(const la::Matrix& points);

/// "Maximin" LHS: draws `candidates` independent hypercubes and keeps the
/// one with the largest minimum pairwise distance.
la::Matrix maximin_latin_hypercube(std::size_t samples, std::size_t dims,
                                   std::size_t candidates = 16,
                                   const LhsOptions& options = {});

/// Derives the per-candidate RNG seed for candidate `index` of a search
/// rooted at `seed`. Pure function of (seed, index): no shared RNG stream
/// exists, so a search can evaluate candidates in any order — or resume
/// from any frontier after a crash — and draw identical hypercubes.
std::uint64_t candidate_seed(std::uint64_t seed, std::uint64_t index);

/// Re-entrant candidate draw: the hypercube candidate `index` of the
/// search rooted at `seed`, derived from (seed, index) alone. Checkpointed
/// searches record only their next candidate index; this function
/// reconstructs every remaining draw bit-identically on resume.
la::Matrix latin_hypercube_candidate(std::size_t samples, std::size_t dims,
                                     std::uint64_t seed, std::uint64_t index,
                                     bool centered = false);

}  // namespace perspector::sampling
