// Representative selection: matching sample points to concrete workloads.
//
// The subset generator (paper Section IV-C) draws LHS points in normalized
// counter space and picks, for each point, the nearest actual workload — a
// distinct workload per point, so k points yield k workloads.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace perspector::sampling {

/// For each row of `targets`, selects the index of the nearest row of
/// `candidates` (Euclidean), without reusing a candidate. Targets are
/// processed greedily in order of ascending nearest-distance so the tightest
/// matches claim their candidates first.
///
/// Throws std::invalid_argument when there are fewer candidates than targets
/// or the dimensionalities differ.
std::vector<std::size_t> match_nearest_distinct(const la::Matrix& targets,
                                                const la::Matrix& candidates);

/// Nearest candidate per target, allowing reuse (diagnostic baseline).
std::vector<std::size_t> match_nearest(const la::Matrix& targets,
                                       const la::Matrix& candidates);

}  // namespace perspector::sampling
