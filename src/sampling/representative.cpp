#include "sampling/representative.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace perspector::sampling {

namespace {

void validate(const la::Matrix& targets, const la::Matrix& candidates) {
  if (targets.rows() == 0 || candidates.rows() == 0) {
    throw std::invalid_argument("representative matching: empty input");
  }
  if (targets.cols() != candidates.cols()) {
    throw std::invalid_argument(
        "representative matching: dimensionality mismatch");
  }
}

}  // namespace

std::vector<std::size_t> match_nearest_distinct(const la::Matrix& targets,
                                                const la::Matrix& candidates) {
  validate(targets, candidates);
  if (candidates.rows() < targets.rows()) {
    throw std::invalid_argument(
        "match_nearest_distinct: fewer candidates than targets");
  }
  const std::size_t t = targets.rows();
  const std::size_t c = candidates.rows();

  la::Matrix dist(t, c);
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      dist(i, j) = la::euclidean_distance(targets.row(i), candidates.row(j));
    }
  }

  std::vector<std::size_t> result(t, 0);
  std::vector<bool> target_done(t, false);
  std::vector<bool> candidate_used(c, false);

  // Greedy global matching: repeatedly take the smallest remaining
  // (target, candidate) distance. O(t * t * c), fine at suite scale.
  for (std::size_t round = 0; round < t; ++round) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < t; ++i) {
      if (target_done[i]) continue;
      for (std::size_t j = 0; j < c; ++j) {
        if (candidate_used[j]) continue;
        if (dist(i, j) < best) {
          best = dist(i, j);
          bi = i;
          bj = j;
        }
      }
    }
    result[bi] = bj;
    target_done[bi] = true;
    candidate_used[bj] = true;
  }
  return result;
}

std::vector<std::size_t> match_nearest(const la::Matrix& targets,
                                       const la::Matrix& candidates) {
  validate(targets, candidates);
  std::vector<std::size_t> result(targets.rows(), 0);
  for (std::size_t i = 0; i < targets.rows(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < candidates.rows(); ++j) {
      const double d =
          la::euclidean_distance(targets.row(i), candidates.row(j));
      if (d < best) {
        best = d;
        result[i] = j;
      }
    }
  }
  return result;
}

}  // namespace perspector::sampling
