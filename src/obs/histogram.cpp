#include "obs/histogram.hpp"

#include <cmath>

namespace perspector::obs {

int Histogram::bucket_of(double value) noexcept {
  // NaN, infinities, zero and negatives all fail this test and share the
  // underflow bucket: record() must never branch on bad input.
  if (!(value > 0.0) || !std::isfinite(value)) return 0;
  int exp = 0;
  const double m = std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5,1)
  const int octave = exp - 1;  // value = (2m) * 2^octave, 2m in [1,2)
  if (octave < kMinExp) return 0;
  if (octave >= kMaxExp) return kBucketCount - 1;
  int sub = static_cast<int>((m * 2.0 - 1.0) * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 + (octave - kMinExp) * kSubBuckets + sub;
}

double Histogram::representative(int bucket) noexcept {
  if (bucket <= 0) return 0.0;
  if (bucket >= kBucketCount) bucket = kBucketCount - 1;
  const int idx = bucket - 1;
  const int octave = kMinExp + idx / kSubBuckets;
  const int sub = idx % kSubBuckets;
  // Bucket idx spans [2^octave*(1+sub/kSub), 2^octave*(1+(sub+1)/kSub));
  // the midpoint is exact in binary (kSubBuckets is a power of two).
  const double frac = (static_cast<double>(sub) + 0.5) / kSubBuckets;
  return std::ldexp(1.0 + frac, octave);
}

void Histogram::record(double value) noexcept {
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);

  const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
  if (n == 0) {
    // Same seeding discipline as Distribution::record: racing first
    // samples settle in the CAS loops below.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (value < lo &&
         !min_.compare_exchange_weak(lo, value, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (value > hi &&
         !max_.compare_exchange_weak(hi, value, std::memory_order_relaxed)) {
  }
}

double bucket_percentile(const std::uint64_t* buckets, int bucket_count,
                         double q) noexcept {
  std::uint64_t total = 0;
  for (int i = 0; i < bucket_count; ++i) total += buckets[i];
  if (total == 0) return 0.0;
  // Rank rule: the sample of rank max(1, ceil(q*total)), 1-based. Using
  // the bucket totals (not count_) keeps the walk self-consistent even
  // when writers race the snapshot.
  const double r = std::ceil(q * static_cast<double>(total));
  std::uint64_t rank = r < 1.0 ? 1 : static_cast<std::uint64_t>(r);
  if (rank > total) rank = total;
  std::uint64_t cum = 0;
  for (int i = 0; i < bucket_count; ++i) {
    cum += buckets[i];
    if (cum >= rank) return Histogram::representative(i);
  }
  return Histogram::representative(bucket_count - 1);
}

HistogramStats Histogram::stats() const noexcept {
  HistogramStats s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  std::uint64_t snap[kBucketCount];
  for (int i = 0; i < kBucketCount; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.p50 = bucket_percentile(snap, kBucketCount, 0.50);
  s.p90 = bucket_percentile(snap, kBucketCount, 0.90);
  s.p99 = bucket_percentile(snap, kBucketCount, 0.99);
  s.p999 = bucket_percentile(snap, kBucketCount, 0.999);
  return s;
}

std::vector<std::pair<int, std::uint64_t>> Histogram::nonzero_buckets() const {
  std::vector<std::pair<int, std::uint64_t>> out;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) out.emplace_back(i, c);
  }
  return out;
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace perspector::obs
