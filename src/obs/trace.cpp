#include "obs/trace.hpp"

#ifndef PERSPECTOR_DISABLE_TRACE

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace perspector::obs {

namespace {

// Dense per-thread id: the first thread to record becomes 0, the next 1, …
// Chrome's viewer groups spans into lanes by tid, so small stable numbers
// beat hashed OS ids.
std::uint32_t this_thread_id() {
  // lint:allow(par-static): atomic ticket counter; order only affects lane ids
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1);
  return id;
}

// Nesting depth of live spans on this thread.
thread_local std::uint32_t tls_depth = 0;

void json_escape(std::ostringstream& os, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  // getenv races with setenv, but the tracer singleton is constructed
  // once and nothing mutates the environment after main() starts.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("PERSPECTOR_TRACE")) {
    const std::string value = env;
    if (value == "0" || value == "off" || value == "false") {
      force_disabled_ = true;
    } else if (!value.empty()) {
      enabled_.store(true, std::memory_order_relaxed);
    }
  }
}

Tracer& Tracer::instance() {
  // lint:allow(par-static): the process-wide tracer; internally mutex-locked
  static Tracer tracer;
  return tracer;
}

void Tracer::enable() {
  if (force_disabled_) return;
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  events_.shrink_to_fit();
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

// Observability timestamps annotate spans in the trace JSON only; no
// scored value is derived from them.
// lint:seam(det-taint): trace timestamps never feed a score
double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::record(std::string_view name, double start_us, double end_us,
                    std::uint32_t depth) {
  TraceEvent event;
  event.name.assign(name.data(), name.size());
  event.start_us = start_us;
  event.duration_us = end_us - start_us;
  event.thread = this_thread_id();
  event.depth = depth;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<PhaseStat> Tracer::phase_summary() const {
  std::map<std::string, PhaseStat> by_name;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& event : events_) {
      auto [it, inserted] = by_name.try_emplace(event.name);
      PhaseStat& stat = it->second;
      if (inserted) {
        stat.name = event.name;
        stat.min_us = event.duration_us;
        stat.max_us = event.duration_us;
      }
      ++stat.count;
      stat.total_us += event.duration_us;
      stat.min_us = std::min(stat.min_us, event.duration_us);
      stat.max_us = std::max(stat.max_us, event.duration_us);
    }
  }
  std::vector<PhaseStat> out;
  out.reserve(by_name.size());
  for (auto& [name, stat] : by_name) out.push_back(std::move(stat));
  std::sort(out.begin(), out.end(), [](const PhaseStat& a, const PhaseStat& b) {
    return a.total_us > b.total_us;
  });
  return out;
}

std::string Tracer::chrome_trace_json() const {
  std::vector<TraceEvent> sorted = events();
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us < b.start_us;
            });

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const TraceEvent& e = sorted[i];
    if (i) os << ",";
    os << "\n{\"name\":\"";
    json_escape(os, e.name);
    os << "\",\"cat\":\"perspector\",\"ph\":\"X\",\"ts\":" << e.start_us
       << ",\"dur\":" << e.duration_us << ",\"pid\":1,\"tid\":" << e.thread
       << ",\"args\":{\"depth\":" << e.depth << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("Tracer::write_chrome_trace: cannot open '" +
                             path + "'");
  }
  out << chrome_trace_json();
  if (!out) {
    throw std::runtime_error("Tracer::write_chrome_trace: write failed for '" +
                             path + "'");
  }
}

void Span::begin(std::string_view name) {
  active_ = true;
  name_.assign(name.data(), name.size());
  depth_ = tls_depth++;
  start_us_ = Tracer::instance().now_us();
}

void Span::end() {
  Tracer& tracer = Tracer::instance();
  const double end_us = tracer.now_us();
  --tls_depth;
  // Spans that straddle a disable() still record: they were opened under an
  // enabled tracer and dropping them would corrupt nesting in the export.
  tracer.record(name_, start_us_, end_us, depth_);
}

}  // namespace perspector::obs

#endif  // PERSPECTOR_DISABLE_TRACE
