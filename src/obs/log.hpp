// Structured, leveled, rate-limited logging: the one sanctioned way to
// emit diagnostics from library code (the hyg-log lint rule steers raw
// fprintf(stderr)/std::cerr here).
//
// Lines are NDJSON, one object per line, written to stderr by default:
//
//   {"ts_us":1234,"level":"warn","event":"slow_request",
//    "trace":"9f86d081884c7d65","latency_ms":184.2}
//
// Logging is OFF by default — a library must be silent unless asked.
// Enable with the PERSPECTOR_LOG environment variable
// (off|error|warn|info|debug) or the CLI --log-level / --log-file flags.
// Timestamps are steady-clock microseconds since the logger was created
// (monotonic, unaffected by wall-clock steps); src/obs is det-clock
// allowlisted so the clock reads are legal here and nowhere above.
//
// A per-second rate limit (default 1000 lines/s) bounds the damage of a
// hot loop logging per item: excess lines are dropped and a single
// "log.dropped" line with the drop count is emitted when the window
// rolls over.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

namespace perspector::obs {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

/// Parses a level name ("off", "error", "warn", "info", "debug");
/// nullopt on anything else so callers can reject bad flag values.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// The canonical lowercase name, e.g. "warn".
const char* log_level_name(LogLevel level);

/// One key/value pair in a structured line. Build with the field()
/// helpers below; string payloads must outlive the log call (they are
/// views, copied during formatting).
struct LogField {
  enum class Kind { kString, kU64, kI64, kF64, kBool };
  std::string_view key;
  Kind kind = Kind::kString;
  std::string_view text{};
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  double f64 = 0.0;
  bool flag = false;
};

LogField field(std::string_view key, std::string_view value);
LogField field_u64(std::string_view key, std::uint64_t value);
LogField field_i64(std::string_view key, std::int64_t value);
LogField field_f64(std::string_view key, double value);
LogField field_bool(std::string_view key, bool value);

/// Process-wide logger. write() is mutex-serialized (logging is a cold
/// path); enabled() is a single relaxed load so disabled log sites cost
/// one branch.
class Logger {
 public:
  /// The singleton; first use reads PERSPECTOR_LOG to seed the level.
  static Logger& instance();

  void set_level(LogLevel level) noexcept;
  LogLevel level() const noexcept;
  bool enabled(LogLevel level) const noexcept;

  /// Redirects output to `path` (append mode); an empty path restores
  /// stderr. Returns false (and keeps the current sink) if the file
  /// cannot be opened.
  bool set_path(const std::string& path);

  /// Max lines emitted per steady-clock second; 0 means unlimited.
  void set_rate_limit(std::uint64_t lines_per_second) noexcept;

  /// Total lines dropped by the rate limiter since process start.
  std::uint64_t dropped() const noexcept;
  /// Total lines actually written since process start.
  std::uint64_t emitted() const noexcept;

  /// Emits one NDJSON line if `level` is enabled and the rate limiter
  /// admits it. `event` names the line; fields follow in order.
  void write(LogLevel level, std::string_view event,
             std::initializer_list<LogField> fields);

  /// Test seam: formats one line into a string instead of the sink
  /// (bypasses level/rate checks) so tests can assert exact bytes.
  std::string format_line(std::uint64_t ts_us, LogLevel level,
                          std::string_view event,
                          std::initializer_list<LogField> fields) const;

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

 private:
  Logger();
  struct Impl;
  Impl* impl_;  // never destroyed, same lifetime contract as the registry
};

/// Convenience wrappers: `log_warn("slow_request", {field_u64("id", 7)})`.
inline void log_line(LogLevel level, std::string_view event,
                     std::initializer_list<LogField> fields = {}) {
  Logger& logger = Logger::instance();
  if (logger.enabled(level)) logger.write(level, event, fields);
}
inline void log_error(std::string_view event,
                      std::initializer_list<LogField> fields = {}) {
  log_line(LogLevel::kError, event, fields);
}
inline void log_warn(std::string_view event,
                     std::initializer_list<LogField> fields = {}) {
  log_line(LogLevel::kWarn, event, fields);
}
inline void log_info(std::string_view event,
                     std::initializer_list<LogField> fields = {}) {
  log_line(LogLevel::kInfo, event, fields);
}
inline void log_debug(std::string_view event,
                      std::initializer_list<LogField> fields = {}) {
  log_line(LogLevel::kDebug, event, fields);
}

}  // namespace perspector::obs
