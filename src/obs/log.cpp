#include "obs/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace perspector::obs {

namespace {

// Minimal JSON string escaping (mirrors serve/json.hpp's append_quoted,
// re-implemented here because obs is the bottom layer and cannot include
// serve). Control characters become \u00XX.
void append_quoted(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void append_field(std::string& out, const LogField& f) {
  append_quoted(out, f.key);
  out.push_back(':');
  char buf[32];
  switch (f.kind) {
    case LogField::Kind::kString:
      append_quoted(out, f.text);
      break;
    case LogField::Kind::kU64:
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(f.u64));
      out += buf;
      break;
    case LogField::Kind::kI64:
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(f.i64));
      out += buf;
      break;
    case LogField::Kind::kF64:
      std::snprintf(buf, sizeof buf, "%.6g", f.f64);
      out += buf;
      break;
    case LogField::Kind::kBool:
      out += f.flag ? "true" : "false";
      break;
  }
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view text) {
  if (text == "off") return LogLevel::kOff;
  if (text == "error") return LogLevel::kError;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "info") return LogLevel::kInfo;
  if (text == "debug") return LogLevel::kDebug;
  return std::nullopt;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kOff:
      return "off";
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "off";
}

LogField field(std::string_view key, std::string_view value) {
  LogField f;
  f.key = key;
  f.kind = LogField::Kind::kString;
  f.text = value;
  return f;
}
LogField field_u64(std::string_view key, std::uint64_t value) {
  LogField f;
  f.key = key;
  f.kind = LogField::Kind::kU64;
  f.u64 = value;
  return f;
}
LogField field_i64(std::string_view key, std::int64_t value) {
  LogField f;
  f.key = key;
  f.kind = LogField::Kind::kI64;
  f.i64 = value;
  return f;
}
LogField field_f64(std::string_view key, double value) {
  LogField f;
  f.key = key;
  f.kind = LogField::Kind::kF64;
  f.f64 = value;
  return f;
}
LogField field_bool(std::string_view key, bool value) {
  LogField f;
  f.key = key;
  f.kind = LogField::Kind::kBool;
  f.flag = value;
  return f;
}

struct Logger::Impl {
  std::atomic<int> level{static_cast<int>(LogLevel::kOff)};
  std::atomic<std::uint64_t> emitted{0};
  std::atomic<std::uint64_t> dropped{0};

  std::mutex mutex;  // guards everything below
  std::FILE* sink = stderr;
  bool owns_sink = false;
  std::uint64_t rate_limit = 1000;  // lines per second; 0 = unlimited
  std::uint64_t window_start_s = 0;
  std::uint64_t window_emitted = 0;
  std::uint64_t window_dropped = 0;
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();

  std::uint64_t now_us() const {
    const auto elapsed = std::chrono::steady_clock::now() - epoch;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }
};

Logger::Logger() : impl_(new Impl()) {
  // getenv races with setenv, but the logger singleton is constructed
  // once and nothing mutates the environment after main() starts.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("PERSPECTOR_LOG")) {
    if (const auto level = parse_log_level(env)) {
      impl_->level.store(static_cast<int>(*level), std::memory_order_relaxed);
    }
    // An unparseable value keeps logging off: a misconfigured logger must
    // not spam a library consumer's stderr.
  }
}

Logger& Logger::instance() {
  // lint:allow(par-static): the process-wide logger; atomics + mutex inside
  static Logger* logger = new Logger();  // never destroyed, like the registry
  return *logger;
}

void Logger::set_level(LogLevel level) noexcept {
  impl_->level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::level() const noexcept {
  return static_cast<LogLevel>(impl_->level.load(std::memory_order_relaxed));
}

bool Logger::enabled(LogLevel level) const noexcept {
  return static_cast<int>(level) <=
             impl_->level.load(std::memory_order_relaxed) &&
         level != LogLevel::kOff;
}

bool Logger::set_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::FILE* next = stderr;
  bool owns = false;
  if (!path.empty()) {
    next = std::fopen(path.c_str(), "ae");
    if (next == nullptr) return false;
    owns = true;
  }
  if (impl_->owns_sink) std::fclose(impl_->sink);
  impl_->sink = next;
  impl_->owns_sink = owns;
  return true;
}

void Logger::set_rate_limit(std::uint64_t lines_per_second) noexcept {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->rate_limit = lines_per_second;
}

std::uint64_t Logger::dropped() const noexcept {
  return impl_->dropped.load(std::memory_order_relaxed);
}

std::uint64_t Logger::emitted() const noexcept {
  return impl_->emitted.load(std::memory_order_relaxed);
}

std::string Logger::format_line(std::uint64_t ts_us, LogLevel level,
                                std::string_view event,
                                std::initializer_list<LogField> fields) const {
  std::string line;
  line.reserve(64 + fields.size() * 24);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(ts_us));
  line += "{\"ts_us\":";
  line += buf;
  line += ",\"level\":";
  append_quoted(line, log_level_name(level));
  line += ",\"event\":";
  append_quoted(line, event);
  for (const LogField& f : fields) {
    line.push_back(',');
    append_field(line, f);
  }
  line.push_back('}');
  return line;
}

void Logger::write(LogLevel level, std::string_view event,
                   std::initializer_list<LogField> fields) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::uint64_t ts_us = impl_->now_us();
  const std::uint64_t second = ts_us / 1'000'000;

  if (second != impl_->window_start_s) {
    // Window rollover: surface what the limiter swallowed, as one line.
    if (impl_->window_dropped != 0) {
      const std::string note = format_line(
          ts_us, LogLevel::kWarn, "log.dropped",
          {field_u64("count", impl_->window_dropped),
           field_u64("window_s", impl_->window_start_s)});
      std::fputs(note.c_str(), impl_->sink);
      std::fputc('\n', impl_->sink);
      impl_->emitted.fetch_add(1, std::memory_order_relaxed);
    }
    impl_->window_start_s = second;
    impl_->window_emitted = 0;
    impl_->window_dropped = 0;
  }
  if (impl_->rate_limit != 0 && impl_->window_emitted >= impl_->rate_limit) {
    impl_->window_dropped += 1;
    impl_->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const std::string line = format_line(ts_us, level, event, fields);
  std::fputs(line.c_str(), impl_->sink);
  std::fputc('\n', impl_->sink);
  std::fflush(impl_->sink);
  impl_->window_emitted += 1;
  impl_->emitted.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace perspector::obs
