#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "obs/histogram.hpp"

namespace perspector::obs {

namespace {

// Nodes are heap-allocated and never destroyed while the process lives, so
// references handed out by counter()/distribution()/histogram() stay valid
// even as the map rehashes. transparent less<> lets string_view probe
// without allocating.
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Distribution>, std::less<>>
      distributions;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& registry() {
  // lint:allow(par-static): the metrics registry; mutex-guarded, atomic cells
  static Registry* r = new Registry();  // never destroyed: see note above
  return *r;
}

}  // namespace

void Distribution::record(double value) noexcept {
  const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);

  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }

  if (n == 0) {
    // First sample seeds min/max; racing first samples settle in the CAS
    // loops below because both contenders run them.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (value < lo &&
         !min_.compare_exchange_weak(lo, value, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (value > hi &&
         !max_.compare_exchange_weak(hi, value, std::memory_order_relaxed)) {
  }
}

DistributionStats Distribution::stats() const noexcept {
  DistributionStats s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

void Distribution::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Distribution& distribution(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.distributions.find(name);
  if (it == r.distributions.end()) {
    it = r.distributions
             .emplace(std::string(name), std::make_unique<Distribution>())
             .first;
  }
  return *it->second;
}

Histogram& histogram(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end()) {
    it = r.histograms.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<CounterSnapshot> counters_snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<CounterSnapshot> out;
  out.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) {
    out.push_back({name, c->value()});
  }
  return out;
}

std::vector<DistributionSnapshot> distributions_snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<DistributionSnapshot> out;
  out.reserve(r.distributions.size());
  for (const auto& [name, d] : r.distributions) {
    out.push_back({name, d->stats()});
  }
  return out;
}

std::vector<HistogramSnapshot> histograms_snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<HistogramSnapshot> out;
  out.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) {
    out.push_back({name, h->stats()});
  }
  return out;
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, d] : r.distributions) d->reset();
  for (auto& [name, h] : r.histograms) h->reset();
}

}  // namespace perspector::obs
