// Named metrics: monotonic counters and value distributions.
//
// The registry hands out references that stay valid for the life of the
// process, so hot paths pay the name lookup once:
//
//   static obs::Counter& cells = obs::counter("dtw.cells");
//   cells.add(visited);
//
// Registration takes a mutex; the increment itself is a single relaxed
// atomic add (counters) or a handful of CAS loops (distributions), so
// instrumentation can live inside kernels permanently. Prefer one bulk
// add per call over per-element increments.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace perspector::obs {

/// Monotonic counter. add() is wait-free; value() is a relaxed load.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Summary statistics over recorded samples.
struct DistributionStats {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/// Value distribution tracking count/min/max/sum without locks: min, max
/// and sum are maintained with CAS loops on atomic doubles.
class Distribution {
 public:
  void record(double value) noexcept;
  DistributionStats stats() const noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// RAII scope timer feeding a Distribution: records the elapsed wall time
/// in microseconds on destruction. Unlike a trace Span this is always on
/// (distributions are cheap) and survives --metrics-only runs where the
/// tracer stays disabled — the serving layer uses it for request latency.
class DistributionTimer {
 public:
  explicit DistributionTimer(Distribution& distribution) noexcept
      : distribution_(distribution),
        start_(std::chrono::steady_clock::now()) {}
  ~DistributionTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    distribution_.record(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

  DistributionTimer(const DistributionTimer&) = delete;
  DistributionTimer& operator=(const DistributionTimer&) = delete;

 private:
  Distribution& distribution_;
  std::chrono::steady_clock::time_point start_;
};

/// Returns the counter registered under `name`, creating it on first use.
/// The reference is valid for the remainder of the process.
Counter& counter(std::string_view name);

/// Returns the distribution registered under `name`, creating it on first
/// use. The reference is valid for the remainder of the process.
Distribution& distribution(std::string_view name);

/// Point-in-time snapshot of one named counter.
struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

/// Point-in-time snapshot of one named distribution.
struct DistributionSnapshot {
  std::string name;
  DistributionStats stats;
};

/// All registered counters, sorted by name. Zero-valued counters are
/// included — registration implies intent to report.
std::vector<CounterSnapshot> counters_snapshot();

/// All registered distributions, sorted by name.
std::vector<DistributionSnapshot> distributions_snapshot();

/// Resets every registered counter, distribution and histogram to zero
/// (test helper; registrations themselves are kept). Histograms live in
/// obs/histogram.hpp but share this registry.
void reset_metrics();

}  // namespace perspector::obs
