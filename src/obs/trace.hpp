// Pipeline tracing: RAII spans feeding a process-wide Tracer that can
// export Chrome trace-event JSON (load in chrome://tracing or
// https://ui.perfetto.dev) and a collapsed per-phase summary.
//
// Design constraints (see DESIGN.md "Observability"):
//   * zero dependencies — obs is a leaf library every other module may link;
//   * the disabled path is a single relaxed atomic load and NO allocation,
//     so instrumentation can stay in hot kernels permanently;
//   * a compile-time kill switch (-DPERSPECTOR_DISABLE_TRACE) turns Span
//     into an empty object for builds that must not even carry the branch.
//
// Runtime control:
//   * default: disabled;
//   * PERSPECTOR_TRACE=1 in the environment enables at process start;
//   * PERSPECTOR_TRACE=0 *force-disables*: later Tracer::enable() calls are
//     ignored (lets a user silence instrumented binaries wholesale);
//   * Tracer::enable()/disable() toggle at runtime otherwise.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef PERSPECTOR_DISABLE_TRACE
#include <atomic>
#include <chrono>
#endif

namespace perspector::obs {

/// One finished span as recorded by the Tracer.
struct TraceEvent {
  std::string name;
  double start_us = 0.0;  // relative to tracer epoch
  double duration_us = 0.0;
  std::uint32_t thread = 0;  // small dense id, not the OS tid
  std::uint32_t depth = 0;   // nesting depth at record time (0 = top level)
};

/// Collapsed per-name statistics over all recorded spans.
struct PhaseStat {
  std::string name;
  std::size_t count = 0;
  double total_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;
};

#ifndef PERSPECTOR_DISABLE_TRACE

/// Process-wide trace sink. All methods are thread-safe.
class Tracer {
 public:
  static Tracer& instance();

  /// Enables recording unless PERSPECTOR_TRACE=0 force-disabled the process.
  void enable();
  void disable();
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// True when the environment force-disabled tracing for good.
  bool force_disabled() const noexcept { return force_disabled_; }

  /// Drops all recorded events (test helper; also frees memory).
  void clear();

  std::size_t event_count() const;
  std::vector<TraceEvent> events() const;

  /// Per-name aggregation of all recorded spans, sorted by total time
  /// descending.
  std::vector<PhaseStat> phase_summary() const;

  /// Chrome trace-event JSON ("traceEvents" array of complete "X" events).
  std::string chrome_trace_json() const;

  /// Writes chrome_trace_json() to `path`; throws std::runtime_error on
  /// I/O failure.
  void write_chrome_trace(const std::string& path) const;

  /// Microseconds since the tracer epoch (first instance() call).
  double now_us() const;

  // Called by Span only.
  void record(std::string_view name, double start_us, double end_us,
              std::uint32_t depth);

 private:
  Tracer();

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  bool force_disabled_ = false;

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// RAII scope timer. Construction snapshots the clock when the tracer is
/// enabled; destruction records one complete event. When the tracer is
/// disabled both ends are a relaxed atomic load — no clock read, no
/// allocation.
class Span {
 public:
  explicit Span(std::string_view name) {
    if (!Tracer::instance().enabled()) return;
    begin(name);
  }
  ~Span() {
    if (!active_) return;
    end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(std::string_view name);
  void end();

  bool active_ = false;
  double start_us_ = 0.0;
  std::uint32_t depth_ = 0;
  std::string name_;
};

#else  // PERSPECTOR_DISABLE_TRACE

class Tracer {
 public:
  static Tracer& instance() {
    // lint:allow(par-static): no-op stub of the singleton (trace disabled)
    static Tracer t;
    return t;
  }
  void enable() {}
  void disable() {}
  bool enabled() const noexcept { return false; }
  bool force_disabled() const noexcept { return true; }
  void clear() {}
  std::size_t event_count() const { return 0; }
  std::vector<TraceEvent> events() const { return {}; }
  std::vector<PhaseStat> phase_summary() const { return {}; }
  std::string chrome_trace_json() const { return "{\"traceEvents\":[]}\n"; }
  void write_chrome_trace(const std::string&) const {}
  double now_us() const { return 0.0; }  // lint:seam(det-taint): stub
};

class Span {
 public:
  explicit Span(std::string_view) {}
};

#endif  // PERSPECTOR_DISABLE_TRACE

}  // namespace perspector::obs
