// Log-bucketed latency histograms with bounded relative error.
//
// An obs::Histogram complements obs::Distribution: the distribution keeps
// exact count/min/max/sum, the histogram keeps the whole shape so p50/p90/
// p99/p99.9 can be extracted after the fact. Buckets are HDR-style: each
// power-of-two octave is split into kSubBuckets linear sub-buckets, so the
// representative value of any bucket is within ~1/(2*kSubBuckets) relative
// error of every sample that landed there.
//
// record() is wait-free on the bucket path (one relaxed fetch_add on a
// uint64 cell, matching the Counter discipline); the min/max/sum side
// carries the same lock-free CAS loops Distribution uses. Percentiles are
// computed from a bucket snapshot with a deterministic rank rule, so two
// histograms fed the same multiset of samples report bit-identical
// percentiles regardless of arrival order or thread count.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace perspector::obs {

/// Summary extracted from one histogram: exact count/min/max/sum plus the
/// four standard percentiles. Percentile values are bucket representatives
/// (midpoints), not raw samples — see Histogram::representative().
struct HistogramStats {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/// Lock-free log-bucketed histogram. Values are doubles (the serving tier
/// records microseconds); anything <= 0 or non-finite lands in the
/// dedicated underflow bucket 0 so record() never branches on errors.
class Histogram {
 public:
  /// Linear sub-buckets per power-of-two octave. 32 bounds the relative
  /// error of a bucket midpoint at 1/64 (~1.6%) of the true value.
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;
  /// Octave range: values in [2^kMinExp, 2^kMaxExp) resolve to a real
  /// bucket; below goes to the underflow bucket, above clamps to the top
  /// bucket. In microseconds that spans ~1ms/1024 .. ~13 days.
  static constexpr int kMinExp = -10;
  static constexpr int kMaxExp = 40;
  static constexpr int kBucketCount =
      (kMaxExp - kMinExp) * kSubBuckets + 1;  // +1: underflow bucket 0

  void record(double value) noexcept;

  /// Snapshot of count/min/max/sum plus percentiles from a single pass
  /// over the buckets. Concurrent record()s may or may not be included;
  /// after all writers quiesce the totals reconcile exactly.
  HistogramStats stats() const noexcept;

  /// The (index, count) pairs of every non-empty bucket, for tests and
  /// reconciliation checks.
  std::vector<std::pair<int, std::uint64_t>> nonzero_buckets() const;

  void reset() noexcept;

  /// Bucket index for a value. Monotone non-decreasing in `value`, which
  /// is what makes histogram percentiles bit-comparable to a quantized
  /// sorted-vector reference.
  static int bucket_of(double value) noexcept;

  /// Deterministic representative (midpoint) of a bucket; the value
  /// percentile queries report. representative(0) == 0.0.
  static double representative(int bucket) noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
};

/// Deterministic percentile over an explicit bucket array: the
/// representative of the bucket holding the sample of rank
/// max(1, ceil(q * total)). Shared by Histogram::stats() and the tests'
/// sorted-vector cross-check. Returns 0.0 on an empty histogram.
double bucket_percentile(const std::uint64_t* buckets, int bucket_count,
                         double q) noexcept;

/// RAII scope timer recording elapsed wall microseconds into a Histogram
/// on destruction, and optionally mirroring the sample into a legacy
/// Distribution so existing count/min/max/sum consumers keep working.
/// Like DistributionTimer this is always on — histograms are cheap enough
/// to leave in the serving path permanently. The clock reads live in this
/// header (src/obs is det-clock allowlisted) so callers in ranked layers
/// stay free of raw clock tokens.
class LatencyTimer {
 public:
  // The construction-time clock read feeds the latency histogram only;
  // no scored value is derived from it.
  // lint:seam(det-taint): latency samples never feed a score
  explicit LatencyTimer(Histogram& histogram,
                        Distribution* mirror = nullptr) noexcept
      : histogram_(histogram),
        mirror_(mirror),
        start_(std::chrono::steady_clock::now()) {}
  ~LatencyTimer() {
    const double us = elapsed_us();
    histogram_.record(us);
    if (mirror_ != nullptr) mirror_->record(us);
  }

  /// Microseconds since construction (for callers that want to branch on
  /// the latency — e.g. slow-request logging — without reading a clock).
  double elapsed_us() const noexcept {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::micro>(elapsed).count();
  }

  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  Histogram& histogram_;
  Distribution* mirror_;
  std::chrono::steady_clock::time_point start_;
};

/// Returns the histogram registered under `name`, creating it on first
/// use. Same lifetime contract as counter()/distribution().
Histogram& histogram(std::string_view name);

/// Point-in-time snapshot of one named histogram.
struct HistogramSnapshot {
  std::string name;
  HistogramStats stats;
};

/// All registered histograms, sorted by name.
std::vector<HistogramSnapshot> histograms_snapshot();

}  // namespace perspector::obs
