#include "sim/access_pattern.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace perspector::sim {

const char* to_string(AccessPatternKind kind) {
  switch (kind) {
    case AccessPatternKind::Sequential:
      return "sequential";
    case AccessPatternKind::Strided:
      return "strided";
    case AccessPatternKind::RandomUniform:
      return "random-uniform";
    case AccessPatternKind::PointerChase:
      return "pointer-chase";
    case AccessPatternKind::Zipf:
      return "zipf";
    case AccessPatternKind::GraphTraversal:
      return "graph-traversal";
  }
  return "unknown";
}

AccessPatternGen::AccessPatternGen(const AccessPatternParams& params,
                                   std::uint64_t base_address, stats::Rng rng)
    : params_(params), base_(base_address), rng_(rng) {
  if (params.working_set_bytes < 8) {
    throw std::invalid_argument("AccessPatternGen: working set too small");
  }
  if (params.stride_bytes == 0) {
    throw std::invalid_argument("AccessPatternGen: stride must be > 0");
  }

  switch (params_.kind) {
    case AccessPatternKind::PointerChase: {
      // Random Hamiltonian cycle over line-sized slots: dependent accesses
      // with zero spatial locality beyond the slot itself.
      const std::uint64_t n = slots();
      const auto perm = rng_.permutation(static_cast<std::size_t>(n));
      chase_next_.resize(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        chase_next_[perm[i]] =
            static_cast<std::uint32_t>(perm[(i + 1) % n]);
      }
      chase_slot_ = perm[0];
      break;
    }
    case AccessPatternKind::Zipf: {
      zipf_objects_ = std::min<std::uint64_t>(slots(), kMaxZipfObjects);
      zipf_cdf_.resize(zipf_objects_);
      double cum = 0.0;
      for (std::uint64_t k = 1; k <= zipf_objects_; ++k) {
        cum += 1.0 / std::pow(static_cast<double>(k), params_.zipf_s);
        zipf_cdf_[k - 1] = cum;
      }
      for (double& v : zipf_cdf_) v /= cum;
      break;
    }
    default:
      break;
  }
}

std::uint64_t AccessPatternGen::slots() const {
  return std::max<std::uint64_t>(params_.working_set_bytes / kSlotBytes, 1);
}

std::uint64_t AccessPatternGen::next() {
  const std::uint64_t ws = params_.working_set_bytes;
  switch (params_.kind) {
    case AccessPatternKind::Sequential:
    case AccessPatternKind::Strided: {
      const std::uint64_t addr = base_ + cursor_;
      cursor_ = (cursor_ + params_.stride_bytes) % ws;
      return addr & ~std::uint64_t{7};
    }
    case AccessPatternKind::RandomUniform: {
      const std::uint64_t off = rng_.uniform_int(0, ws / 8 - 1) * 8;
      return base_ + off;
    }
    case AccessPatternKind::PointerChase: {
      chase_slot_ = chase_next_[chase_slot_];
      return base_ + static_cast<std::uint64_t>(chase_slot_) * kSlotBytes;
    }
    case AccessPatternKind::Zipf: {
      const double u = rng_.uniform();
      const auto it =
          std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
      const auto rank = static_cast<std::uint64_t>(
          std::min<std::ptrdiff_t>(it - zipf_cdf_.begin(),
                                   static_cast<std::ptrdiff_t>(zipf_objects_) - 1));
      // Scatter ranks across the working set so hot objects do not share
      // cache sets.
      const std::uint64_t slot = (rank * 2654435761ull) % slots();
      return base_ + slot * kSlotBytes;
    }
    case AccessPatternKind::GraphTraversal: {
      if (rng_.bernoulli(params_.jump_prob)) {
        cursor_ = rng_.uniform_int(0, ws / 8 - 1) * 8;
      } else {
        cursor_ = (cursor_ + params_.stride_bytes) % ws;
      }
      return (base_ + cursor_) & ~std::uint64_t{7};
    }
  }
  throw std::logic_error("AccessPatternGen: unknown kind");
}

}  // namespace perspector::sim
