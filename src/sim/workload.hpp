// Workload and phase specifications — the synthetic stand-ins for real
// benchmark binaries (see DESIGN.md, substitution table).
//
// A workload is an ordered list of phases; each phase fixes an instruction
// mix, a memory access pattern, and a branch-behaviour profile. Phases run
// sequentially, which is what gives workloads their time-varying (trend)
// structure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/access_pattern.hpp"

namespace perspector::sim {

/// One execution phase of a workload.
struct PhaseSpec {
  std::string name = "phase";
  /// Relative share of the workload's instruction budget.
  double weight = 1.0;

  // Instruction mix (fractions of all instructions; remainder is integer
  // ALU work). Must be non-negative and sum to <= 1.
  double load_frac = 0.25;
  double store_frac = 0.10;
  double branch_frac = 0.15;
  double fp_frac = 0.00;

  /// Data access stream for the loads/stores of this phase.
  AccessPatternParams pattern;

  // Branch behaviour.
  double branch_taken_prob = 0.85;  // per-site bias
  double branch_randomness = 0.10;  // fraction of fair-coin outcomes
  std::uint32_t branch_sites = 64;  // distinct static branches
};

/// A complete synthetic workload.
struct WorkloadSpec {
  std::string name;
  std::uint64_t instructions = 1'000'000;
  std::vector<PhaseSpec> phases;

  /// Validates mixes, weights, and patterns; throws std::invalid_argument
  /// with a message naming the offending phase.
  void validate() const;
};

/// A named collection of workloads — one benchmark suite.
struct SuiteSpec {
  std::string name;
  std::vector<WorkloadSpec> workloads;

  std::vector<std::string> workload_names() const;
  void validate() const;
};

}  // namespace perspector::sim
