#include "sim/address_space.hpp"

#include <bit>
#include <stdexcept>

namespace perspector::sim {

AddressSpace::AddressSpace(std::uint64_t page_bytes) {
  if (page_bytes == 0 || !std::has_single_bit(page_bytes)) {
    throw std::invalid_argument(
        "AddressSpace: page_bytes must be a power of two");
  }
  page_shift_ = static_cast<std::uint64_t>(std::countr_zero(page_bytes));
}

// pages_ is an unordered_set used only for insert() and size() —
// membership and cardinality are order-free, and nothing ever iterates
// it, so hash order cannot reach a counter.
// lint:seam(det-taint): page set is insert/size-only, order-free
bool AddressSpace::touch(std::uint64_t address) {
  const auto [it, inserted] = pages_.insert(address >> page_shift_);
  if (inserted) {
    ++stats_.faults;
    stats_.resident_pages = pages_.size();
  }
  return inserted;
}

bool AddressSpace::resident(std::uint64_t address) const {
  return pages_.contains(address >> page_shift_);
}

void AddressSpace::reset() {
  pages_.clear();
  stats_ = PageStats{};
}

}  // namespace perspector::sim
