#include "sim/multicore.hpp"

#include <cmath>
#include <functional>
#include <memory>
#include <stdexcept>

#include "sim/cache.hpp"
#include "sim/core_model.hpp"

namespace perspector::sim {

namespace {

// Per-core scheduling state: the workload's phase plan and progress.
struct CoreLane {
  const WorkloadSpec* workload = nullptr;
  std::unique_ptr<CoreModel> core;
  std::unique_ptr<PmuSampler> sampler;
  std::vector<std::uint64_t> phase_budgets;
  std::size_t phase_index = 0;
  std::uint64_t spent_in_phase = 0;
  bool phase_started = false;

  bool finished() const { return phase_index >= phase_budgets.size(); }
};

std::vector<std::uint64_t> plan_phases(const WorkloadSpec& workload) {
  double total_weight = 0.0;
  for (const auto& phase : workload.phases) total_weight += phase.weight;

  std::vector<std::uint64_t> budgets;
  std::uint64_t spent = 0;
  for (std::size_t p = 0; p < workload.phases.size(); ++p) {
    std::uint64_t budget;
    if (p + 1 == workload.phases.size()) {
      budget = workload.instructions - spent;
    } else {
      budget = static_cast<std::uint64_t>(std::llround(
          static_cast<double>(workload.instructions) *
          workload.phases[p].weight / total_weight));
      budget = std::min(budget, workload.instructions - spent);
    }
    budgets.push_back(budget);
    spent += budget;
  }
  return budgets;
}

}  // namespace

std::vector<SimResult> simulate_colocated(
    const std::vector<WorkloadSpec>& workloads, const MachineConfig& machine,
    const MulticoreOptions& options) {
  if (workloads.empty()) {
    throw std::invalid_argument("simulate_colocated: no workloads");
  }
  if (options.quantum == 0) {
    throw std::invalid_argument("simulate_colocated: quantum must be > 0");
  }
  for (const auto& w : workloads) w.validate();

  Cache shared_llc(machine.llc);

  std::vector<CoreLane> lanes(workloads.size());
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    CoreLane& lane = lanes[i];
    lane.workload = &workloads[i];
    // Distinct address offset per core: co-located processes do not share
    // their data regions.
    lane.core = std::make_unique<CoreModel>(
        machine, options.seed ^ std::hash<std::string>{}(workloads[i].name),
        &shared_llc, static_cast<std::uint64_t>(i) << 44);
    if (options.collect_series) {
      lane.sampler = std::make_unique<PmuSampler>(options.sample_interval);
    }
    lane.phase_budgets = plan_phases(workloads[i]);
  }

  // Round-robin quanta until every lane drains.
  bool any_running = true;
  while (any_running) {
    any_running = false;
    for (CoreLane& lane : lanes) {
      if (lane.finished()) continue;
      any_running = true;

      if (!lane.phase_started) {
        lane.core->start_phase(lane.workload->phases[lane.phase_index],
                               lane.phase_index);
        lane.phase_started = true;
        lane.spent_in_phase = 0;
      }
      const std::uint64_t remaining =
          lane.phase_budgets[lane.phase_index] - lane.spent_in_phase;
      const std::uint64_t chunk = std::min(options.quantum, remaining);
      lane.core->step(chunk, lane.sampler.get());
      lane.spent_in_phase += chunk;
      if (lane.spent_in_phase >= lane.phase_budgets[lane.phase_index]) {
        ++lane.phase_index;
        lane.phase_started = false;
      }
    }
  }

  std::vector<SimResult> results;
  results.reserve(lanes.size());
  for (CoreLane& lane : lanes) {
    if (lane.sampler) {
      lane.sampler->finalize(lane.core->instructions_retired(),
                             lane.core->counters());
    }
    SimResult result;
    result.workload = lane.workload->name;
    result.totals = lane.core->counters();
    result.instructions = lane.core->instructions_retired();
    result.cycles = lane.core->cycles();
    if (lane.sampler) result.series = lane.sampler->all_series();
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace perspector::sim
