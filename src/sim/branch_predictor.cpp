#include "sim/branch_predictor.hpp"

#include <stdexcept>

namespace perspector::sim {

namespace {

// 2-bit saturating counter transitions; >= 2 predicts taken.
std::uint8_t saturate(std::uint8_t counter, bool taken) {
  if (taken) return counter < 3 ? counter + 1 : 3;
  return counter > 0 ? counter - 1 : 0;
}

}  // namespace

bool BranchPredictor::predict_and_update(std::uint64_t pc, bool taken) {
  const bool predicted = predict(pc);
  update(pc, taken);
  ++stats_.branches;
  const bool correct = predicted == taken;
  if (!correct) ++stats_.mispredictions;
  return correct;
}

BimodalPredictor::BimodalPredictor(std::uint32_t table_bits) {
  if (table_bits == 0 || table_bits > 28) {
    throw std::invalid_argument("BimodalPredictor: table_bits out of range");
  }
  table_.assign(std::size_t{1} << table_bits, 2);  // weakly taken
  mask_ = (std::uint64_t{1} << table_bits) - 1;
}

std::size_t BimodalPredictor::index(std::uint64_t pc) const {
  // Drop the instruction alignment bits before indexing.
  return static_cast<std::size_t>((pc >> 2) & mask_);
}

bool BimodalPredictor::predict(std::uint64_t pc) {
  return table_[index(pc)] >= 2;
}

void BimodalPredictor::update(std::uint64_t pc, bool taken) {
  auto& counter = table_[index(pc)];
  counter = saturate(counter, taken);
}

GsharePredictor::GsharePredictor(std::uint32_t table_bits,
                                 std::uint32_t history_bits) {
  if (table_bits == 0 || table_bits > 28) {
    throw std::invalid_argument("GsharePredictor: table_bits out of range");
  }
  if (history_bits > 63) {
    throw std::invalid_argument("GsharePredictor: history_bits out of range");
  }
  table_.assign(std::size_t{1} << table_bits, 2);
  table_mask_ = (std::uint64_t{1} << table_bits) - 1;
  history_mask_ =
      history_bits == 0 ? 0 : (std::uint64_t{1} << history_bits) - 1;
}

std::size_t GsharePredictor::index(std::uint64_t pc) const {
  return static_cast<std::size_t>(((pc >> 2) ^ history_) & table_mask_);
}

bool GsharePredictor::predict(std::uint64_t pc) {
  return table_[index(pc)] >= 2;
}

void GsharePredictor::update(std::uint64_t pc, bool taken) {
  auto& counter = table_[index(pc)];
  counter = saturate(counter, taken);
  history_ = ((history_ << 1) | (taken ? 1 : 0)) & history_mask_;
}

std::unique_ptr<BranchPredictor> make_predictor(const MachineConfig& config) {
  switch (config.predictor) {
    case MachineConfig::Predictor::AlwaysTaken:
      return std::make_unique<AlwaysTakenPredictor>();
    case MachineConfig::Predictor::Bimodal:
      return std::make_unique<BimodalPredictor>(config.predictor_table_bits);
    case MachineConfig::Predictor::Gshare:
      return std::make_unique<GsharePredictor>(config.predictor_table_bits,
                                               config.gshare_history_bits);
  }
  throw std::logic_error("make_predictor: unknown predictor kind");
}

}  // namespace perspector::sim
