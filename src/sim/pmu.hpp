// PMU counter model — the 14 events of the paper's Table IV.
//
// `PmuCounterSet` is one snapshot of all counters; `PmuSampler` turns
// periodic snapshots into per-event time series (the equivalent of
// `perf stat -I`).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace perspector::sim {

/// The hardware events collected by the paper (Table IV).
enum class PmuEvent : std::size_t {
  CpuCycles = 0,        // cpu-cycles
  BranchInstructions,   // branch-instructions
  BranchMisses,         // branch-misses
  DtlbWalkPending,      // dtlb_load+store_misses.walk_pending (cycles)
  StallsMemAny,         // cycle_activity.stalls_mem_any (cycles)
  PageFaults,           // page-faults
  DtlbLoads,            // dTLB-loads
  DtlbStores,           // dTLB-stores
  DtlbLoadMisses,       // dTLB-load-misses
  DtlbStoreMisses,      // dTLB-store-misses
  LlcLoads,             // LLC-loads
  LlcStores,            // LLC-stores
  LlcLoadMisses,        // LLC-load-misses
  LlcStoreMisses,       // LLC-store-misses
};

inline constexpr std::size_t kPmuEventCount = 14;

/// perf-style event name ("cpu-cycles", "LLC-load-misses", ...).
std::string_view to_string(PmuEvent event);

/// All events in enum order.
std::span<const PmuEvent> all_pmu_events();

/// All event names in enum order.
std::vector<std::string> pmu_event_names();

/// One snapshot of all Table IV counters (monotonically increasing over a
/// run).
struct PmuCounterSet {
  std::array<std::uint64_t, kPmuEventCount> values{};

  std::uint64_t& operator[](PmuEvent e) {
    return values[static_cast<std::size_t>(e)];
  }
  std::uint64_t operator[](PmuEvent e) const {
    return values[static_cast<std::size_t>(e)];
  }

  /// Element-wise difference (this - earlier); throws std::invalid_argument
  /// if any counter would go negative (snapshots out of order).
  PmuCounterSet delta_since(const PmuCounterSet& earlier) const;

  /// Counter vector as doubles, enum order.
  std::vector<double> as_vector() const;

  bool operator==(const PmuCounterSet&) const = default;
};

/// Collects counter snapshots every `interval_instructions` and exposes the
/// per-event *delta* time series — the same data `perf stat -I` emits.
class PmuSampler {
 public:
  /// Throws std::invalid_argument when the interval is zero.
  explicit PmuSampler(std::uint64_t interval_instructions);

  /// Called by the core after every instruction block; takes a snapshot
  /// whenever the instruction count crosses a sampling boundary.
  void maybe_sample(std::uint64_t instructions_retired,
                    const PmuCounterSet& counters);

  /// Forces a final snapshot at end-of-run (if new instructions elapsed).
  void finalize(std::uint64_t instructions_retired,
                const PmuCounterSet& counters);

  std::uint64_t interval() const noexcept { return interval_; }
  std::size_t sample_count() const noexcept { return samples_.size(); }

  /// Delta time series for one event (length == sample_count()).
  std::vector<double> series(PmuEvent event) const;

  /// All series, indexed [event][sample].
  std::vector<std::vector<double>> all_series() const;

 private:
  std::uint64_t interval_;
  std::uint64_t next_boundary_;
  std::uint64_t last_sampled_instructions_ = 0;
  PmuCounterSet last_snapshot_{};
  std::vector<PmuCounterSet> samples_;  // per-interval deltas
};

}  // namespace perspector::sim
