#include "sim/simulator.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/parallel.hpp"

namespace perspector::sim {

namespace {

std::uint64_t workload_seed(std::uint64_t base, const std::string& name) {
  return base ^ std::hash<std::string>{}(name);
}

}  // namespace

const std::vector<double>& SimResult::series_for(PmuEvent event) const {
  const auto idx = static_cast<std::size_t>(event);
  if (idx >= series.size()) {
    throw std::out_of_range("SimResult::series_for: series not collected");
  }
  return series[idx];
}

SimResult simulate(const WorkloadSpec& workload, const MachineConfig& machine,
                   const SimOptions& options) {
  workload.validate();

  CoreModel core(machine, workload_seed(options.seed, workload.name));
  PmuSampler sampler(options.sample_interval);
  PmuSampler* sampler_ptr = options.collect_series ? &sampler : nullptr;

  // Apportion the instruction budget across phases by weight; rounding
  // remainders go to the last phase so the total is exact.
  double total_weight = 0.0;
  for (const auto& phase : workload.phases) total_weight += phase.weight;

  std::uint64_t spent = 0;
  for (std::size_t p = 0; p < workload.phases.size(); ++p) {
    std::uint64_t budget;
    if (p + 1 == workload.phases.size()) {
      budget = workload.instructions - spent;
    } else {
      budget = static_cast<std::uint64_t>(std::llround(
          static_cast<double>(workload.instructions) *
          workload.phases[p].weight / total_weight));
      budget = std::min(budget, workload.instructions - spent);
    }
    core.run_phase(workload.phases[p], budget, p, sampler_ptr);
    spent += budget;
  }

  if (sampler_ptr) {
    sampler.finalize(core.instructions_retired(), core.counters());
  }

  static obs::Counter& workloads = obs::counter("sim.workloads");
  static obs::Counter& instructions = obs::counter("sim.instructions");
  workloads.increment();
  instructions.add(core.instructions_retired());

  SimResult result;
  result.workload = workload.name;
  result.totals = core.counters();
  result.instructions = core.instructions_retired();
  result.cycles = core.cycles();
  if (options.collect_series) result.series = sampler.all_series();
  return result;
}

std::vector<SimResult> simulate_suite(const SuiteSpec& suite,
                                      const MachineConfig& machine,
                                      const SimOptions& options) {
  suite.validate();
  obs::Span span("simulate_suite");
  // Workload simulations never share state: each CoreModel draws from its
  // own RNG stream seeded by the workload name (see workload_seed), so the
  // counters are the same whether workloads run serially, in parallel, or
  // in any order. Results land in index-owned slots to keep suite order.
  std::vector<SimResult> results(suite.workloads.size());
  par::parallel_for(suite.workloads.size(), [&](std::size_t w) {
    obs::Span workload_span("sim/" + suite.workloads[w].name);
    results[w] = simulate(suite.workloads[w], machine, options);
  });
  return results;
}

}  // namespace perspector::sim
