#include "sim/cache.hpp"

#include <bit>
#include <stdexcept>

namespace perspector::sim {

Cache::Cache(const CacheGeometry& geometry, std::uint64_t seed)
    : geometry_(geometry), rng_(seed) {
  if (geometry.line_bytes == 0 || !std::has_single_bit(geometry.line_bytes)) {
    throw std::invalid_argument("Cache: line_bytes must be a power of two");
  }
  if (geometry.ways == 0) {
    throw std::invalid_argument("Cache: ways must be > 0");
  }
  const std::uint64_t lines_total = geometry.size_bytes / geometry.line_bytes;
  if (lines_total == 0 || lines_total % geometry.ways != 0) {
    throw std::invalid_argument("Cache: size/line/ways geometry inconsistent");
  }
  sets_ = lines_total / geometry.ways;
  pow2_sets_ = std::has_single_bit(sets_);
  set_shift_ =
      pow2_sets_ ? static_cast<std::uint32_t>(std::countr_zero(sets_)) : 0;
  line_shift_ = static_cast<std::uint64_t>(std::countr_zero(geometry.line_bytes));
  lines_.resize(sets_ * geometry.ways);

  if (geometry.replacement == ReplacementPolicy::Plru) {
    if (!std::has_single_bit(static_cast<std::uint64_t>(geometry.ways))) {
      throw std::invalid_argument(
          "Cache: tree-PLRU requires a power-of-two way count");
    }
    plru_bits_.assign(sets_, 0);
  }
}

std::uint32_t Cache::find_way(std::size_t set, std::uint64_t tag) const {
  const Line* base = &lines_[set * geometry_.ways];
  for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return w;
  }
  return geometry_.ways;
}

std::uint32_t Cache::pick_victim(std::size_t set) {
  Line* base = &lines_[set * geometry_.ways];
  // Invalid ways first, regardless of policy.
  for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
    if (!base[w].valid) return w;
  }
  switch (geometry_.replacement) {
    case ReplacementPolicy::Lru: {
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < geometry_.ways; ++w) {
        if (base[w].lru < base[victim].lru) victim = w;
      }
      return victim;
    }
    case ReplacementPolicy::Random: {
      return static_cast<std::uint32_t>(rng_() % geometry_.ways);
    }
    case ReplacementPolicy::Plru: {
      // Walk the tree following the cold direction at each node. Node
      // numbering: root = 1, children of n are 2n and 2n+1; leaves map to
      // ways. Bit set means "right subtree was used more recently", so the
      // cold path follows set bits to the LEFT... we use the standard
      // convention: bit==0 -> go left is cold? We store "last used side":
      // 0 = left used, so victim is right; 1 = right used, victim left.
      std::uint32_t node = 1;
      std::uint32_t levels = std::countr_zero(geometry_.ways);
      const std::uint32_t bits = plru_bits_[set];
      for (std::uint32_t level = 0; level < levels; ++level) {
        const bool right_used = (bits >> node) & 1u;
        node = 2 * node + (right_used ? 0 : 1);
      }
      return node - geometry_.ways;
    }
  }
  throw std::logic_error("Cache: unknown replacement policy");
}

void Cache::touch_way(std::size_t set, std::uint32_t way) {
  ++lru_clock_;
  lines_[set * geometry_.ways + way].lru = lru_clock_;
  if (geometry_.replacement == ReplacementPolicy::Plru) {
    // Update the path bits: record which side of each node was used.
    std::uint32_t leaf = way + geometry_.ways;
    std::uint32_t bits = plru_bits_[set];
    while (leaf > 1) {
      const std::uint32_t parent = leaf / 2;
      const bool is_right = (leaf & 1u) != 0;
      if (is_right) {
        bits |= (1u << parent);
      } else {
        bits &= ~(1u << parent);
      }
      leaf = parent;
    }
    plru_bits_[set] = bits;
  }
}

bool Cache::install(std::size_t set, std::uint64_t tag, bool dirty) {
  const std::uint32_t victim_way = pick_victim(set);
  Line& victim = lines_[set * geometry_.ways + victim_way];
  const bool writeback = victim.valid && victim.dirty;
  victim.valid = true;
  victim.dirty = dirty;
  victim.tag = tag;
  touch_way(set, victim_way);
  return writeback;
}

bool Cache::access(std::uint64_t address, AccessType type) {
  const std::uint64_t line_addr = address >> line_shift_;
  const std::size_t set = set_index(line_addr);
  const std::uint64_t tag = tag_of(line_addr);
  const bool is_store = type == AccessType::Store;
  if (is_store) {
    ++stats_.stores;
  } else {
    ++stats_.loads;
  }

  const std::uint32_t way = find_way(set, tag);
  if (way < geometry_.ways) {
    touch_way(set, way);
    if (is_store) lines_[set * geometry_.ways + way].dirty = true;
    return true;
  }

  if (is_store) {
    ++stats_.store_misses;
  } else {
    ++stats_.load_misses;
  }
  if (install(set, tag, is_store)) ++stats_.writebacks;
  return false;
}

bool Cache::prefetch_fill(std::uint64_t address) {
  const std::uint64_t line_addr = address >> line_shift_;
  const std::size_t set = set_index(line_addr);
  const std::uint64_t tag = tag_of(line_addr);
  if (find_way(set, tag) < geometry_.ways) return false;  // already present
  if (install(set, tag, /*dirty=*/false)) ++stats_.writebacks;
  ++stats_.prefetch_fills;
  return true;
}

bool Cache::contains(std::uint64_t address) const {
  const std::uint64_t line_addr = address >> line_shift_;
  return find_way(set_index(line_addr), tag_of(line_addr)) < geometry_.ways;
}

void Cache::flush() {
  for (Line& line : lines_) line = Line{};
  if (!plru_bits_.empty()) {
    plru_bits_.assign(plru_bits_.size(), 0);
  }
}

}  // namespace perspector::sim
